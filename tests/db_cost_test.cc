#include "db/cost_estimator.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "workload/synthetic.h"

namespace cqms::db {
namespace {

class CostEstimatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(workload::PopulateLakeDatabase(db_, 1000).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static CostEstimate Estimate(const std::string& sql) {
    auto stmt = sql::Parse(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    return EstimateQueryCost(*db_, **stmt);
  }

  static size_t ActualRows(const std::string& sql) {
    auto r = db_->ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << r.status();
    return r->rows.size();
  }

  static Database* db_;
};

Database* CostEstimatorTest::db_ = nullptr;

TEST_F(CostEstimatorTest, FullScanEstimateEqualsTableSize) {
  CostEstimate e = Estimate("SELECT * FROM WaterTemp");
  EXPECT_DOUBLE_EQ(e.estimated_rows, 1000.0);
  EXPECT_DOUBLE_EQ(e.estimated_scan_rows, 1000.0);
}

TEST_F(CostEstimatorTest, RangePredicateTracksActualSelectivity) {
  // temp is uniform in [5, 27]; the histogram should land within a few
  // percent of the true count.
  for (int threshold : {10, 16, 22}) {
    std::string sql = "SELECT * FROM WaterTemp WHERE temp < " +
                      std::to_string(threshold);
    double estimated = Estimate(sql).estimated_rows;
    double actual = static_cast<double>(ActualRows(sql));
    EXPECT_NEAR(estimated, actual, 0.15 * 1000.0) << sql;
  }
}

TEST_F(CostEstimatorTest, EstimateIsMonotoneInThreshold) {
  double prev = -1;
  for (int threshold : {8, 12, 16, 20, 24}) {
    double estimated = Estimate("SELECT * FROM WaterTemp WHERE temp < " +
                                std::to_string(threshold))
                           .estimated_rows;
    EXPECT_GE(estimated, prev);
    prev = estimated;
  }
}

TEST_F(CostEstimatorTest, EqualityUsesDistinctCount) {
  CostEstimate e = Estimate("SELECT * FROM WaterTemp WHERE lake = 'Union'");
  // 8 lakes -> selectivity 1/8 of 1000 rows.
  EXPECT_NEAR(e.estimated_rows, 125.0, 1.0);
}

TEST_F(CostEstimatorTest, EquiJoinUsesNdv) {
  CostEstimate e = Estimate(
      "SELECT * FROM WaterTemp T, WaterSalinity S WHERE T.loc_x = S.loc_x");
  // Cross product 1e6 scaled by 1/ndv(loc_x) (64 values) ~ 15625.
  EXPECT_GT(e.estimated_rows, 1000.0);
  EXPECT_LT(e.estimated_rows, 1e6);
  double actual = static_cast<double>(ActualRows(
      "SELECT * FROM WaterTemp T, WaterSalinity S WHERE T.loc_x = S.loc_x"));
  EXPECT_LT(std::abs(e.estimated_rows - actual) / actual, 0.5);
}

TEST_F(CostEstimatorTest, LimitCapsEstimate) {
  CostEstimate e = Estimate("SELECT * FROM WaterTemp LIMIT 7");
  EXPECT_DOUBLE_EQ(e.estimated_rows, 7.0);
}

TEST_F(CostEstimatorTest, InListScalesWithEntries) {
  double one = Estimate("SELECT * FROM WaterTemp WHERE lake IN ('Union')")
                   .estimated_rows;
  double three = Estimate(
                     "SELECT * FROM WaterTemp WHERE lake IN "
                     "('Union', 'Washington', 'Chelan')")
                     .estimated_rows;
  EXPECT_NEAR(three, 3 * one, 1.0);
}

TEST_F(CostEstimatorTest, BetweenUsesHistogramRange) {
  double estimated =
      Estimate("SELECT * FROM WaterTemp WHERE temp BETWEEN 10 AND 20")
          .estimated_rows;
  double actual = static_cast<double>(
      ActualRows("SELECT * FROM WaterTemp WHERE temp BETWEEN 10 AND 20"));
  EXPECT_NEAR(estimated, actual, 0.15 * 1000.0);
}

TEST_F(CostEstimatorTest, SelectivitiesAreExposed) {
  CostEstimate e = Estimate("SELECT * FROM WaterTemp WHERE temp < 16");
  ASSERT_EQ(e.selectivities.size(), 1u);
  const auto& [pred, sel] = *e.selectivities.begin();
  EXPECT_NE(pred.find("temp < 16"), std::string::npos);
  EXPECT_GT(sel, 0.0);
  EXPECT_LT(sel, 1.0);
}

TEST_F(CostEstimatorTest, UnknownTableFallsBackGracefully) {
  auto stmt = sql::Parse("SELECT * FROM NoSuchTable WHERE x = 1");
  ASSERT_TRUE(stmt.ok());
  CostEstimate e = EstimateQueryCost(*db_, **stmt);
  EXPECT_GT(e.estimated_rows, 0.0);  // guessed, not crashed
}

}  // namespace
}  // namespace cqms::db
