#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/printer.h"

namespace cqms::sql {
namespace {

std::string RoundTrip(const std::string& text) {
  auto r = Parse(text);
  EXPECT_TRUE(r.ok()) << r.status() << " for: " << text;
  if (!r.ok()) return "<parse error>";
  return PrintStatement(**r);
}

TEST(ParserTest, MinimalSelect) {
  auto r = Parse("SELECT 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->select_items.size(), 1u);
  EXPECT_FALSE((*r)->select_items[0].is_star);
}

TEST(ParserTest, SelectStarFromTable) {
  auto r = Parse("SELECT * FROM WaterTemp");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->select_items[0].is_star);
  ASSERT_EQ((*r)->from.size(), 1u);
  EXPECT_EQ((*r)->from[0].table, "WaterTemp");
}

TEST(ParserTest, TableAliasesWithAndWithoutAs) {
  auto r = Parse("SELECT S.loc_x FROM WaterSalinity AS S, WaterTemp T");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->from[0].alias, "S");
  EXPECT_EQ((*r)->from[1].alias, "T");
  EXPECT_EQ((*r)->from[1].join_type, JoinType::kCross);
  EXPECT_FALSE((*r)->from[1].explicit_join_syntax);
}

TEST(ParserTest, ExplicitJoinWithOn) {
  auto r = Parse(
      "SELECT * FROM WaterSalinity S JOIN WaterTemp T ON S.loc_x = T.loc_x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->from[1].join_type, JoinType::kInner);
  EXPECT_TRUE((*r)->from[1].explicit_join_syntax);
  ASSERT_NE((*r)->from[1].join_condition, nullptr);
}

TEST(ParserTest, LeftOuterJoinRequiresOn) {
  EXPECT_TRUE(Parse("SELECT * FROM a LEFT JOIN b ON a.x = b.x").ok());
  EXPECT_TRUE(Parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x").ok());
  EXPECT_FALSE(Parse("SELECT * FROM a LEFT JOIN b").ok());
}

TEST(ParserTest, WhereWithPrecedence) {
  auto r = Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(r.ok());
  // Must parse as a = 1 OR (b = 2 AND c = 3).
  const Expr* where = (*r)->where.get();
  ASSERT_EQ(where->kind, ExprKind::kBinary);
  EXPECT_EQ(where->bop, BinaryOp::kOr);
  EXPECT_EQ(where->right->bop, BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto r = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->bop, BinaryOp::kAdd);
  EXPECT_EQ((*r)->right->bop, BinaryOp::kMul);
}

TEST(ParserTest, NegativeNumberFolding) {
  auto r = ParseExpression("-5");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->kind, ExprKind::kLiteral);
  EXPECT_EQ((*r)->literal.int_value, -5);
}

TEST(ParserTest, InListAndInSubquery) {
  auto r = Parse("SELECT * FROM t WHERE x IN (1, 2, 3)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->where->kind, ExprKind::kInList);
  EXPECT_EQ((*r)->where->in_list.size(), 3u);

  auto r2 = Parse("SELECT * FROM t WHERE x NOT IN (SELECT y FROM u)");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->where->kind, ExprKind::kInSubquery);
  EXPECT_TRUE((*r2)->where->negated);
}

TEST(ParserTest, BetweenLikeIsNull) {
  auto r = Parse(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND name LIKE 'Lake%' "
      "AND note IS NOT NULL");
  ASSERT_TRUE(r.ok());
  auto conjuncts = SplitConjuncts((*r)->where.get());
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->kind, ExprKind::kBetween);
  EXPECT_EQ(conjuncts[1]->bop, BinaryOp::kLike);
  EXPECT_EQ(conjuncts[2]->kind, ExprKind::kIsNull);
  EXPECT_TRUE(conjuncts[2]->negated);
}

TEST(ParserTest, GroupByHavingOrderByLimit) {
  auto r = Parse(
      "SELECT city, COUNT(*) AS n FROM t GROUP BY city HAVING COUNT(*) > 5 "
      "ORDER BY n DESC, city LIMIT 10 OFFSET 20");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->group_by.size(), 1u);
  ASSERT_NE((*r)->having, nullptr);
  EXPECT_EQ((*r)->order_by.size(), 2u);
  EXPECT_TRUE((*r)->order_by[0].descending);
  EXPECT_FALSE((*r)->order_by[1].descending);
  EXPECT_EQ((*r)->limit, 10);
  EXPECT_EQ((*r)->offset, 20);
}

TEST(ParserTest, AggregatesWithDistinctAndStar) {
  auto r = Parse("SELECT COUNT(*), COUNT(DISTINCT city), AVG(temp) FROM t");
  ASSERT_TRUE(r.ok());
  const auto& items = (*r)->select_items;
  EXPECT_EQ(items[0].expr->function_name, "COUNT");
  EXPECT_EQ(items[0].expr->args[0]->kind, ExprKind::kStar);
  EXPECT_TRUE(items[1].expr->distinct_arg);
  EXPECT_EQ(items[2].expr->function_name, "AVG");
}

TEST(ParserTest, ExistsAndScalarSubquery) {
  auto r = Parse(
      "SELECT (SELECT MAX(x) FROM u) FROM t WHERE EXISTS (SELECT 1 FROM u)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->select_items[0].expr->kind, ExprKind::kScalarSubquery);
  EXPECT_EQ((*r)->where->kind, ExprKind::kExists);
}

TEST(ParserTest, CaseExpression) {
  auto r = ParseExpression(
      "CASE WHEN temp < 10 THEN 'cold' WHEN temp < 25 THEN 'mild' "
      "ELSE 'hot' END");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind, ExprKind::kCase);
  EXPECT_EQ((*r)->when_clauses.size(), 2u);
  ASSERT_NE((*r)->else_expr, nullptr);
}

TEST(ParserTest, UnionChain) {
  auto r = Parse("SELECT a FROM t UNION ALL SELECT b FROM u UNION SELECT c FROM v");
  ASSERT_TRUE(r.ok());
  ASSERT_NE((*r)->union_next, nullptr);
  EXPECT_TRUE((*r)->union_all);
  ASSERT_NE((*r)->union_next->union_next, nullptr);
  EXPECT_FALSE((*r)->union_next->union_all);
}

TEST(ParserTest, QualifiedStar) {
  auto r = Parse("SELECT t.* FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->select_items[0].is_star);
  EXPECT_EQ((*r)->select_items[0].star_table, "t");
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(Parse("SELECT 1;").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(Parse("SELECT 1 x y z !").ok());
  EXPECT_FALSE(Parse("SELECT FROM").ok());
  EXPECT_FALSE(Parse("SELECT * FROM").ok());
  EXPECT_FALSE(Parse("").ok());
}

TEST(ParserTest, ErrorMessagesCarryOffsets) {
  auto r = Parse("SELECT * FROM t WHERE");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

// Round-trip property: parse(print(parse(q))) == parse(q) textually.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintThenReparseIsStable) {
  std::string once = RoundTrip(GetParam());
  std::string twice = RoundTrip(once);
  EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "SELECT 1",
        "SELECT * FROM WaterTemp",
        "SELECT DISTINCT city FROM CityLocations ORDER BY city",
        "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L "
        "WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
        "SELECT city, COUNT(*) AS n FROM t GROUP BY city HAVING COUNT(*) > 5 "
        "ORDER BY n DESC LIMIT 10",
        "SELECT * FROM a LEFT JOIN b ON a.x = b.x WHERE a.y BETWEEN 1 AND 2",
        "SELECT CASE WHEN x < 0 THEN 'neg' ELSE 'pos' END FROM t",
        "SELECT a FROM t UNION SELECT b FROM u",
        "SELECT * FROM t WHERE x IN (SELECT y FROM u WHERE u.k = t.k)",
        "SELECT name || '!' FROM t WHERE name LIKE '%lake%'",
        "SELECT -x + 3 * (y - 2) FROM t WHERE NOT (a = 1 OR b = 2)"));

}  // namespace
}  // namespace cqms::sql
