#include <gtest/gtest.h>

#include "workload/synthetic.h"

namespace cqms::workload {
namespace {

TEST(PopulateTest, CreatesAllTablesWithData) {
  db::Database db;
  ASSERT_TRUE(PopulateLakeDatabase(&db, 100).ok());
  for (const char* table : {"WaterTemp", "WaterSalinity", "CityLocations",
                            "Sensors", "Readings", "Species"}) {
    const db::Table* t = db.GetTable(table);
    ASSERT_NE(t, nullptr) << table;
    EXPECT_GT(t->num_rows(), 0u) << table;
  }
  EXPECT_EQ(db.GetTable("WaterTemp")->num_rows(), 100u);
}

TEST(PopulateTest, DeterministicForSeed) {
  db::Database a, b;
  ASSERT_TRUE(PopulateLakeDatabase(&a, 50, 9).ok());
  ASSERT_TRUE(PopulateLakeDatabase(&b, 50, 9).ok());
  auto ra = a.ExecuteSql("SELECT * FROM WaterTemp ORDER BY loc_x, loc_y, temp");
  auto rb = b.ExecuteSql("SELECT * FROM WaterTemp ORDER BY loc_x, loc_y, temp");
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ(ra->rows.size(), rb->rows.size());
  for (size_t i = 0; i < ra->rows.size(); ++i) {
    EXPECT_EQ(db::RowToString(ra->rows[i]), db::RowToString(rb->rows[i]));
  }
}

TEST(GenerateLogTest, ProducesSessionsWithGroundTruth) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  ASSERT_TRUE(PopulateLakeDatabase(&db, 100).ok());
  storage::QueryStore store;
  profiler::QueryProfiler profiler(&db, &store, &clock);

  WorkloadOptions opts;
  opts.num_sessions = 10;
  opts.typo_rate = 0.1;
  RegisterUsers(&store, opts);
  GroundTruth truth = GenerateLog(&profiler, &store, &clock, opts);

  EXPECT_EQ(truth.sessions.size(), 10u);
  EXPECT_EQ(store.size(), truth.queries_generated);
  EXPECT_GT(truth.queries_generated, 10u * opts.min_session_length - 1);
  // Every logged query has a ground-truth session.
  for (const auto& r : store.records()) {
    EXPECT_TRUE(truth.session_of.count(r.id) > 0) << r.id;
  }
  // Most queries parse and run.
  size_t failed = 0;
  for (const auto& r : store.records()) {
    if (!r.stats.succeeded) ++failed;
  }
  EXPECT_EQ(failed, truth.typos_generated);
  EXPECT_LT(failed, store.size() / 2);
}

TEST(GenerateLogTest, DeterministicForSeed) {
  auto run = [](uint64_t seed) {
    SimulatedClock clock(0);
    db::Database db(&clock);
    Status s = PopulateLakeDatabase(&db, 50);
    storage::QueryStore store;
    profiler::QueryProfiler profiler(&db, &store, &clock);
    WorkloadOptions opts;
    opts.num_sessions = 5;
    opts.seed = seed;
    GenerateLog(&profiler, &store, &clock, opts);
    std::string all;
    for (const auto& r : store.records()) all += r.text + "\n";
    return all;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

TEST(GenerateLogTest, SessionsAreTemporallySeparated) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  ASSERT_TRUE(PopulateLakeDatabase(&db, 50).ok());
  storage::QueryStore store;
  profiler::QueryProfiler profiler(&db, &store, &clock);
  WorkloadOptions opts;
  opts.num_sessions = 6;
  opts.typo_rate = 0;
  GroundTruth truth = GenerateLog(&profiler, &store, &clock, opts);

  // Within a session: gaps below the generator's max think time; between
  // two sessions of the same user: at least session_gap.
  for (const auto& session : truth.sessions) {
    for (size_t i = 1; i < session.size(); ++i) {
      Micros gap = store.Get(session[i])->timestamp -
                   store.Get(session[i - 1])->timestamp;
      EXPECT_LE(gap, opts.max_think_time);
      EXPECT_GE(gap, opts.min_think_time);
    }
  }
}

TEST(GenerateLogTest, QueriesSpreadAcrossUsers) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  ASSERT_TRUE(PopulateLakeDatabase(&db, 50).ok());
  storage::QueryStore store;
  profiler::QueryProfiler profiler(&db, &store, &clock);
  WorkloadOptions opts;
  opts.num_sessions = 20;
  RegisterUsers(&store, opts);
  GenerateLog(&profiler, &store, &clock, opts);
  std::set<std::string> users;
  for (const auto& r : store.records()) users.insert(r.user);
  EXPECT_GT(users.size(), 2u);
  // Registered users carry group memberships.
  for (const std::string& u : users) {
    EXPECT_FALSE(store.acl().GroupsOf(u).empty()) << u;
  }
}

}  // namespace
}  // namespace cqms::workload
