#include <gtest/gtest.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "common/binary_codec.h"
#include "common/string_util.h"
#include "core/cqms.h"
#include "metaquery/knn.h"
#include "metaquery/meta_query_executor.h"
#include "sql/parser.h"
#include "storage/durable_store.h"
#include "storage/minhash.h"
#include "storage/persistence.h"
#include "storage/record_builder.h"
#include "storage/snapshot_v2.h"
#include "storage/wal.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace cqms::storage {
namespace {

using testing_util::Harness;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Clears every file a DurableStore may leave in `dir` — both snapshot
/// generations, both WAL generations, and stranded tmp files — so a
/// test rerun starts from a genuinely empty directory.
void RemoveDurableFiles(const std::string& dir) {
  for (const char* name :
       {"/snapshot.cqms", "/snapshot.cqms.1", "/snapshot.cqms.tmp",
        "/wal.log", "/wal.log.1"}) {
    std::remove((dir + name).c_str());
  }
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// A populated database plus a synthetic multi-user log of (at least)
/// `min_queries` profiled queries — the round-trip corpus.
struct LogFixture {
  SimulatedClock clock{0};
  db::Database database{&clock};
  QueryStore store;
  std::unique_ptr<profiler::QueryProfiler> profiler;
  workload::WorkloadOptions options;
  workload::GroundTruth truth;

  explicit LogFixture(size_t min_queries, size_t rows_per_table = 60) {
    Status s = workload::PopulateLakeDatabase(&database, rows_per_table);
    EXPECT_TRUE(s.ok());
    profiler = std::make_unique<profiler::QueryProfiler>(&database, &store,
                                                         &clock);
    options.num_sessions = min_queries / 5 + 1;
    workload::RegisterUsers(&store, options);
    truth = workload::GenerateLog(profiler.get(), &store, &clock, options);
  }
};

/// Cached ~5k-query fixture shared by the equality tests (generation
/// dominates their runtime). Mutated by no test — they snapshot it.
LogFixture& BigFixture() {
  static LogFixture* fixture = new LogFixture(5000);
  return *fixture;
}

void ExpectSignaturesEqual(const SimilaritySignature& a,
                           const SimilaritySignature& b, QueryId id) {
  EXPECT_EQ(a.valid, b.valid) << "id " << id;
  EXPECT_EQ(a.tables, b.tables) << "id " << id;
  EXPECT_EQ(a.predicate_skeletons, b.predicate_skeletons) << "id " << id;
  EXPECT_EQ(a.attributes, b.attributes) << "id " << id;
  EXPECT_EQ(a.projections, b.projections) << "id " << id;
  EXPECT_EQ(a.text_tokens, b.text_tokens) << "id " << id;
  EXPECT_EQ(a.output_rows, b.output_rows) << "id " << id;
  EXPECT_EQ(a.output_empty_computed, b.output_empty_computed) << "id " << id;
}

void ExpectRecordsEqual(const QueryRecord& a, const QueryRecord& b) {
  ASSERT_EQ(a.id, b.id);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.canonical_text, b.canonical_text);
  EXPECT_EQ(a.skeleton, b.skeleton);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.skeleton_fingerprint, b.skeleton_fingerprint);
  EXPECT_EQ(a.user, b.user);
  EXPECT_EQ(a.timestamp, b.timestamp);
  EXPECT_EQ(a.session_id, b.session_id);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.parse_failed(), b.parse_failed());

  EXPECT_EQ(a.stats.execution_micros, b.stats.execution_micros);
  EXPECT_EQ(a.stats.result_rows, b.stats.result_rows);
  EXPECT_EQ(a.stats.rows_scanned, b.stats.rows_scanned);
  EXPECT_EQ(a.stats.succeeded, b.stats.succeeded);
  EXPECT_EQ(a.stats.error, b.stats.error);
  EXPECT_EQ(a.stats.plan, b.stats.plan);

  ASSERT_EQ(a.annotations.size(), b.annotations.size());
  for (size_t i = 0; i < a.annotations.size(); ++i) {
    EXPECT_EQ(a.annotations[i].author, b.annotations[i].author);
    EXPECT_EQ(a.annotations[i].timestamp, b.annotations[i].timestamp);
    EXPECT_EQ(a.annotations[i].text, b.annotations[i].text);
    EXPECT_EQ(a.annotations[i].fragment, b.annotations[i].fragment);
  }

  const sql::QueryComponents& ca = a.components;
  const sql::QueryComponents& cb = b.components;
  EXPECT_EQ(ca.tables, cb.tables);
  EXPECT_EQ(ca.attributes, cb.attributes);
  EXPECT_EQ(ca.projections, cb.projections);
  ASSERT_EQ(ca.predicates.size(), cb.predicates.size());
  for (size_t i = 0; i < ca.predicates.size(); ++i) {
    EXPECT_TRUE(ca.predicates[i] == cb.predicates[i]) << "id " << a.id;
  }
  EXPECT_EQ(ca.group_by, cb.group_by);
  EXPECT_EQ(ca.order_by, cb.order_by);
  EXPECT_EQ(ca.aggregates, cb.aggregates);
  EXPECT_EQ(ca.has_subquery, cb.has_subquery);
  EXPECT_EQ(ca.has_distinct, cb.has_distinct);
  EXPECT_EQ(ca.select_star, cb.select_star);
  EXPECT_EQ(ca.num_joins, cb.num_joins);
  EXPECT_EQ(ca.num_tables, cb.num_tables);
  EXPECT_EQ(ca.max_nesting_depth, cb.max_nesting_depth);
  EXPECT_EQ(ca.limit, cb.limit);

  ExpectSignaturesEqual(a.signature, b.signature, a.id);
  EXPECT_EQ(a.sketch.valid, b.sketch.valid);
  EXPECT_EQ(a.sketch.mins, b.sketch.mins);
}

void ExpectSpansEqual(ScoringColumns::SymbolSpan a,
                      ScoringColumns::SymbolSpan b, QueryId id) {
  ASSERT_EQ(a.size, b.size) << "id " << id;
  for (size_t i = 0; i < a.size; ++i) EXPECT_EQ(a.data[i], b.data[i]);
}

void ExpectColumnsEqual(const QueryStore& a, const QueryStore& b, QueryId id) {
  const ScoringColumns& ca = a.scoring();
  const ScoringColumns& cb = b.scoring();
  EXPECT_EQ(ca.flags(id), cb.flags(id));
  EXPECT_EQ(ca.quality(id), cb.quality(id));
  EXPECT_EQ(ca.timestamp(id), cb.timestamp(id));
  EXPECT_EQ(ca.owner(id), cb.owner(id));
  EXPECT_EQ(ca.popularity(id), cb.popularity(id));
  EXPECT_EQ(ca.signature_valid(id), cb.signature_valid(id));
  EXPECT_EQ(ca.parse_failed(id), cb.parse_failed(id));
  EXPECT_EQ(ca.lowered_text(id), cb.lowered_text(id));
  ExpectSpansEqual(ca.tables(id), cb.tables(id), id);
  ExpectSpansEqual(ca.skeletons(id), cb.skeletons(id), id);
  ExpectSpansEqual(ca.attributes(id), cb.attributes(id), id);
  ExpectSpansEqual(ca.projections(id), cb.projections(id), id);
  ExpectSpansEqual(ca.tokens(id), cb.tokens(id), id);
  ScoringColumns::HashSpan oa = ca.output_rows(id);
  ScoringColumns::HashSpan ob = cb.output_rows(id);
  ASSERT_EQ(oa.size, ob.size) << "id " << id;
  for (size_t i = 0; i < oa.size; ++i) EXPECT_EQ(oa.data[i], ob.data[i]);
}

void ExpectResponsesEqual(const metaquery::MetaQueryResponse& a,
                          const metaquery::MetaQueryResponse& b,
                          const std::string& label) {
  ASSERT_EQ(a.matches.size(), b.matches.size()) << label;
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].id, b.matches[i].id) << label << " rank " << i;
    // Byte-identical, not nearly-equal: scoring reads restored state.
    EXPECT_EQ(a.matches[i].similarity, b.matches[i].similarity)
        << label << " rank " << i;
    EXPECT_EQ(a.matches[i].score, b.matches[i].score) << label << " rank " << i;
  }
}

TEST(SnapshotV2Test, RoundTripEqualityOnSeededLogWithoutRetokenizing) {
  LogFixture& f = BigFixture();
  QueryStore& store = f.store;
  ASSERT_GE(store.size(), 4000u);

  std::string path = TempPath("cqms_v2_roundtrip.snap");
  ASSERT_TRUE(SaveSnapshotV2(store, path).ok());

  // The tentpole guarantee: a binary restore never tokenizes and never
  // parses — cold-start is one sequential read, not a re-profiling run.
  uint64_t words_before = ExtractWordsCallCount();
  uint64_t parses_before = sql::ParseCallCount();
  QueryStore loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, path).ok());
  EXPECT_EQ(ExtractWordsCallCount() - words_before, 0u);
  EXPECT_EQ(sql::ParseCallCount() - parses_before, 0u);

  ASSERT_EQ(loaded.size(), store.size());
  EXPECT_EQ(loaded.max_timestamp(), store.max_timestamp());
  for (const QueryRecord& r : store.records()) {
    ExpectRecordsEqual(r, *loaded.Get(r.id));
    ExpectColumnsEqual(store, loaded, r.id);
  }

  // Secondary indexes answer identically (spot the load-bearing ones).
  EXPECT_EQ(loaded.QueriesUsingTable("watertemp"),
            store.QueriesUsingTable("watertemp"));
  EXPECT_EQ(loaded.QueriesWithKeyword("salinity"),
            store.QueriesWithKeyword("salinity"));
  EXPECT_EQ(loaded.lsh().entry_count(), store.lsh().entry_count());

  // ACL: every user sees exactly the same log slice.
  for (size_t u = 0; u < f.options.num_users; ++u) {
    std::string user = workload::UserName(u);
    EXPECT_EQ(loaded.VisibleIds(user), store.VisibleIds(user)) << user;
  }
}

TEST(SnapshotV2Test, PlannerResultsByteIdenticalAfterRestore) {
  LogFixture& f = BigFixture();
  QueryStore& store = f.store;
  std::string path = TempPath("cqms_v2_planner.snap");
  ASSERT_TRUE(SaveSnapshotV2(store, path).ok());
  QueryStore loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, path).ok());

  metaquery::MetaQueryExecutor before(&store);
  metaquery::MetaQueryExecutor after(&loaded);
  QueryRecord probe = BuildRecordFromText(
      "SELECT T.temp FROM WaterSalinity S, WaterTemp T "
      "WHERE S.loc_x = T.loc_x AND T.temp < 20",
      "user0", 0, SignatureMode::kTransient);

  const std::string viewer = "user1";
  {
    metaquery::MetaQueryRequest req;
    req.WithKeywords("salinity temp").Limit(25);
    ExpectResponsesEqual(before.Execute(viewer, req),
                         after.Execute(viewer, req), "keyword");
  }
  {
    metaquery::MetaQueryRequest req;
    req.WithSubstring("where").InLogOrder().Limit(50);
    ExpectResponsesEqual(before.Execute(viewer, req),
                         after.Execute(viewer, req), "substring");
  }
  {
    metaquery::StructuralPattern pattern;
    pattern.required_tables = {"WaterTemp"};
    pattern.requires_group_by = true;
    metaquery::MetaQueryRequest req;
    req.WithStructure(pattern).Limit(25);
    ExpectResponsesEqual(before.Execute(viewer, req),
                         after.Execute(viewer, req), "structure");
  }
  {
    // kNN through the planner, exhaustive candidates.
    metaquery::CandidateOptions exhaustive;
    exhaustive.use_lsh = false;
    metaquery::MetaQueryRequest req;
    req.SimilarTo(probe, {}, exhaustive).Limit(10);
    ExpectResponsesEqual(before.Execute(viewer, req),
                         after.Execute(viewer, req), "knn exhaustive");
  }
  {
    // LSH path: stored sketches were adopted verbatim (identity symbol
    // remap within one process), so even the approximate candidate set
    // is byte-identical.
    metaquery::CandidateOptions lsh;
    lsh.lsh_min_log_size = 0;
    metaquery::MetaQueryRequest req;
    req.SimilarTo(probe, {}, lsh).Limit(10);
    ExpectResponsesEqual(before.Execute(viewer, req),
                         after.Execute(viewer, req), "knn lsh");
  }
  {
    // Combined conjunction through the posting-intersection generator.
    metaquery::FeatureQuery feature;
    feature.UsesTable("WaterTemp");
    metaquery::MetaQueryRequest req;
    req.WithKeywords("temp").WithFeature(feature).SimilarTo(probe).Limit(10);
    ExpectResponsesEqual(before.Execute(viewer, req),
                         after.Execute(viewer, req), "combined");
  }

  // Raw kNN entry point too (legacy API surface).
  auto n_before = metaquery::KnnSearch(store, "user0", probe, 10);
  auto n_after = metaquery::KnnSearch(loaded, "user0", probe, 10);
  ASSERT_EQ(n_before.size(), n_after.size());
  for (size_t i = 0; i < n_before.size(); ++i) {
    EXPECT_EQ(n_before[i].id, n_after[i].id);
    EXPECT_EQ(n_before[i].similarity, n_after[i].similarity);
    EXPECT_EQ(n_before[i].score, n_after[i].score);
  }
}

TEST(SnapshotV2Test, MutatedStateSurvivesRoundTrip) {
  Harness h;
  QueryId a = h.Log("alice", "SELECT temp FROM WaterTemp WHERE temp < 18");
  QueryId b = h.Log("alice", "SELECT * FROM CityLocations");
  QueryId c = h.Log("bob", "SELEKT broken");
  h.store.acl().AddUser("alice", {"oceans"});
  h.store.acl().AddUser("bob", {"oceans"});
  ASSERT_TRUE(h.store.SetQuality(a, 0.9).ok());
  ASSERT_TRUE(h.store.AddFlag(a, kFlagRepaired).ok());
  ASSERT_TRUE(h.store.SetSession(a, 7).ok());
  ASSERT_TRUE(
      h.store.acl().SetVisibility(a, "alice", "alice", Visibility::kPublic).ok());
  ASSERT_TRUE(h.store.Delete(b, "alice").ok());
  Annotation note;
  note.author = "alice";
  note.timestamp = 1500;
  note.text = std::string(1, '\0') + "binary-safe \xF0 annotation\n";
  note.fragment = "temp < 18";
  ASSERT_TRUE(h.store.Annotate(a, note).ok());

  std::string path = TempPath("cqms_v2_mutated.snap");
  ASSERT_TRUE(SaveSnapshotV2(h.store, path).ok());
  QueryStore loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, path).ok());
  ASSERT_EQ(loaded.size(), 3u);
  for (const QueryRecord& r : h.store.records()) {
    ExpectRecordsEqual(r, *loaded.Get(r.id));
  }
  EXPECT_EQ(loaded.acl().GetVisibility(a), Visibility::kPublic);
  EXPECT_FALSE(loaded.Visible("carol", b));  // deleted stays deleted
  EXPECT_TRUE(loaded.Get(c)->parse_failed());
}

TEST(SnapshotV2Test, LazyAstMaterializesForMaintenance) {
  Harness h;
  QueryId id = h.Log("alice", "SELECT temp FROM WaterTemp WHERE temp < 18");
  std::string path = TempPath("cqms_v2_lazy_ast.snap");
  ASSERT_TRUE(SaveSnapshotV2(h.store, path).ok());
  QueryStore loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, path).ok());

  const QueryRecord* r = loaded.Get(id);
  EXPECT_FALSE(r->parse_failed());
  EXPECT_EQ(r->ast, nullptr);  // restored without parsing
  uint64_t parses_before = sql::ParseCallCount();
  ASSERT_NE(r->Ast(), nullptr);  // first consumer pays one parse
  EXPECT_EQ(sql::ParseCallCount() - parses_before, 1u);
  EXPECT_NE(r->Ast(), nullptr);
  EXPECT_EQ(sql::ParseCallCount() - parses_before, 1u);  // memoized
  EXPECT_FALSE(r->parse_failed());
}

// Simulates a snapshot written by a *different* process, whose interner
// assigned different ids: the stored table slice carries old ids that
// cannot match this process's, so the loader must remap every signature
// vector and rebuild the sketches. Hand-encodes the v2 framing (magic,
// CRC32-framed sections) — doubling as a format-stability check against
// docs/persistence.md.
TEST(SnapshotV2Test, ForeignProcessSnapshotRemapsSymbolsAndRebuildsSketch) {
  const std::string names[3] = {"zz_remap_aaa", "zz_remap_bbb", "zz_remap_ccc"};
  const Symbol old_ids[3] = {7000001, 7000005, 7000044};  // foreign ids

  BinaryWriter interner;
  interner.PutVarint(3);
  for (int i = 0; i < 3; ++i) {
    interner.PutVarint(old_ids[i]);
    interner.PutString(names[i]);
  }

  BinaryWriter acl;
  acl.PutVarint(1);  // one user
  acl.PutString("ruser");
  acl.PutVarint(1);
  acl.PutString("rgroup");
  acl.PutVarint(0);  // no visibility overrides

  BinaryWriter records;
  records.PutVarint(1);
  records.PutU8(0x0A);  // sig valid | sketch valid, not parsed
  records.PutString("zz_remap_aaa zz_remap_bbb zz_remap_ccc");
  records.PutString("ruser");
  records.PutZigzag(1234);  // timestamp
  records.PutZigzag(-1);    // session
  records.PutVarint(0);     // flags
  records.PutDouble(0.5);
  records.PutZigzag(10);  // exec micros
  records.PutVarint(0);   // result rows
  records.PutVarint(0);   // rows scanned
  records.PutU8(0);       // succeeded
  records.PutString("parse error");
  records.PutString("");  // plan
  records.PutVarint(0);   // annotations
  // Signature: empty tables/skeletons/attributes/projections, three
  // delta-encoded text tokens, no output rows.
  records.PutVarint(0);
  records.PutVarint(0);
  records.PutVarint(0);
  records.PutVarint(0);
  records.PutVarint(3);
  records.PutVarint(old_ids[0]);
  records.PutVarint(old_ids[1] - old_ids[0]);
  records.PutVarint(old_ids[2] - old_ids[1]);
  records.PutVarint(0);  // output rows
  for (int i = 0; i < 64; ++i) records.PutFixed64(0xDEADBEEFu + i);

  std::string file = "CQMSNAP2";
  BinaryWriter version;
  version.PutFixed32(2);
  file += version.data();
  auto append_section = [&file](uint8_t id, const std::string& payload) {
    BinaryWriter frame;
    frame.PutU8(id);
    frame.PutFixed64(payload.size());
    file += frame.data();
    file += payload;
    BinaryWriter crc;
    crc.PutFixed32(Crc32(payload));
    file += crc.data();
  };
  append_section(1, interner.data());
  append_section(2, acl.data());
  append_section(3, records.data());
  append_section(0xFF, std::string());

  std::string path = TempPath("cqms_v2_foreign.snap");
  WriteFile(path, file);

  QueryStore loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, path).ok());
  ASSERT_EQ(loaded.size(), 1u);
  const QueryRecord* r = loaded.Get(0);

  // Symbols remapped into this process's id space: the keyword index
  // resolves the names, and the signature stays sorted.
  EXPECT_EQ(loaded.QueriesWithKeyword("zz_remap_bbb"),
            (std::vector<QueryId>{0}));
  ASSERT_EQ(r->signature.text_tokens.size(), 3u);
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_LT(r->signature.text_tokens[i - 1], r->signature.text_tokens[i]);
  }
  for (const std::string& name : names) {
    Symbol s = GlobalInterner().Find(name);
    ASSERT_NE(s, kInvalidSymbol);
    EXPECT_TRUE(std::binary_search(r->signature.text_tokens.begin(),
                                   r->signature.text_tokens.end(), s))
        << name;
  }

  // The foreign sketch slots were discarded and rebuilt over the
  // remapped ids — exactly what a fresh ComputeMinHashSketch yields.
  ASSERT_TRUE(r->sketch.valid);
  MinHashSketch expected = ComputeMinHashSketch(r->signature);
  EXPECT_EQ(r->sketch.mins, expected.mins);
  EXPECT_TRUE(loaded.acl().GroupsOf("ruser").count("rgroup") > 0);
}

TEST(SnapshotV2Test, CorruptSnapshotsAreRejected) {
  Harness h;
  h.Log("alice", "SELECT temp FROM WaterTemp WHERE temp < 18");
  h.Log("bob", "SELECT * FROM CityLocations");
  std::string path = TempPath("cqms_v2_corrupt.snap");
  ASSERT_TRUE(SaveSnapshotV2(h.store, path).ok());
  std::string good = ReadFile(path);
  ASSERT_GT(good.size(), 120u);

  {  // Bad magic.
    std::string bad = good;
    bad[3] ^= 0x40;
    WriteFile(path, bad);
    QueryStore s;
    EXPECT_EQ(LoadSnapshot(&s, path).code(), StatusCode::kCorruption);
  }
  {  // Unsupported version.
    std::string bad = good;
    bad[8] = 9;
    WriteFile(path, bad);
    QueryStore s;
    EXPECT_EQ(LoadSnapshot(&s, path).code(), StatusCode::kIoError);
  }
  {  // Flipped payload bytes must fail the section CRC.
    for (size_t offset : {good.size() / 3, good.size() / 2}) {
      std::string bad = good;
      bad[offset] ^= 0x01;
      WriteFile(path, bad);
      QueryStore s;
      EXPECT_FALSE(LoadSnapshot(&s, path).ok()) << "offset " << offset;
    }
  }
  {  // Truncated mid-section.
    std::string bad = good.substr(0, good.size() - 30);
    WriteFile(path, bad);
    QueryStore s;
    EXPECT_EQ(LoadSnapshot(&s, path).code(), StatusCode::kCorruption);
  }
  // And the pristine bytes still load.
  WriteFile(path, good);
  QueryStore s;
  EXPECT_TRUE(LoadSnapshot(&s, path).ok());
  EXPECT_EQ(s.size(), 2u);
}

/// Applies a representative mutation of every WAL op through a durable
/// store; returns the ids (append order) for later comparison.
std::vector<QueryId> ApplyCommittedMutations(Harness* h) {
  QueryStore& store = h->store;
  store.acl().AddUser("alice", {"oceans"});
  store.acl().AddUser("bob", {"lakes"});
  QueryId a = h->Log("alice", "SELECT temp FROM WaterTemp WHERE temp < 18");
  QueryId b = h->Log("bob", "SELECT * FROM CityLocations");
  QueryId c = h->Log("alice", "SELEKT not sql");  // logged parse failure
  EXPECT_TRUE(store.RewriteQueryText(
                  b, "SELECT city FROM CityLocations WHERE city = 'oslo'")
                  .ok());
  Annotation note;
  note.author = "bob";
  note.timestamp = 42;
  note.text = "favorite city \xFF probe";
  EXPECT_TRUE(store.Annotate(b, note).ok());
  EXPECT_TRUE(store.AddFlag(a, kFlagStatsStale).ok());
  EXPECT_TRUE(store.ClearFlag(a, kFlagStatsStale).ok());
  EXPECT_TRUE(store.AddFlag(a, kFlagRepaired).ok());
  EXPECT_TRUE(store.SetSession(a, 3).ok());
  EXPECT_TRUE(store.SetQuality(a, 0.8).ok());
  EXPECT_TRUE(
      store.acl().SetVisibility(a, "alice", "alice", Visibility::kPrivate).ok());
  EXPECT_TRUE(store.Delete(c, "alice").ok());
  return {a, b, c};
}

/// `expect_output_rows` is false only for the v1 text-format migration
/// path: that format predates output-hash persistence, so a store
/// re-profiled from it legitimately carries none.
void ExpectStoresEquivalent(const QueryStore& a, const QueryStore& b,
                            bool expect_output_rows = true) {
  ASSERT_EQ(a.size(), b.size());
  for (const QueryRecord& r : a.records()) {
    const QueryRecord* o = b.Get(r.id);
    EXPECT_EQ(r.text, o->text);
    EXPECT_EQ(r.user, o->user);
    EXPECT_EQ(r.timestamp, o->timestamp);
    EXPECT_EQ(r.session_id, o->session_id);
    EXPECT_EQ(r.flags, o->flags);
    EXPECT_EQ(r.quality, o->quality);
    EXPECT_EQ(r.parse_failed(), o->parse_failed());
    EXPECT_EQ(r.fingerprint, o->fingerprint);
    if (expect_output_rows) {
      // Output-similarity ranking state survives WAL replay too (the
      // hashes ride in kAppend/kRewrite frames even though summaries
      // do not).
      EXPECT_EQ(r.signature.output_rows, o->signature.output_rows);
      EXPECT_EQ(r.signature.output_empty_computed,
                o->signature.output_empty_computed);
    }
    ASSERT_EQ(r.annotations.size(), o->annotations.size());
    for (size_t i = 0; i < r.annotations.size(); ++i) {
      EXPECT_EQ(r.annotations[i].text, o->annotations[i].text);
    }
    EXPECT_EQ(a.acl().GetVisibility(r.id), b.acl().GetVisibility(r.id));
  }
  EXPECT_EQ(a.acl().memberships(), b.acl().memberships());
}

TEST(WalTest, ReplayRecoversEveryCommittedMutationAfterTornWrite) {
  std::string dir = TempPath("cqms_wal_torn");
  RemoveDurableFiles(dir);

  Harness h;
  DurableStore durable(&h.store, dir);
  ASSERT_TRUE(durable.Open().ok());
  std::vector<QueryId> ids = ApplyCommittedMutations(&h);
  uint64_t committed = durable.wal_records();
  ASSERT_GE(committed, 12u);

  // Crash: the process dies mid-append. The WAL's committed prefix is
  // on disk; the final frame is torn (its payload never finished).
  {
    std::ofstream out(dir + "/wal.log",
                      std::ios::binary | std::ios::app);
    BinaryWriter torn;
    torn.PutFixed32(1000);       // claims a 1000-byte payload...
    torn.PutFixed32(0x12345678);  // ...bogus CRC...
    torn.PutU8(1);                // ...one byte of it ever landed
    out.write(torn.data().data(),
              static_cast<std::streamsize>(torn.data().size()));
  }

  // Recover into a fresh store.
  Harness h2;
  DurableStore recovered(&h2.store, dir);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.replay_stats().records_applied, committed);
  EXPECT_GT(recovered.replay_stats().torn_bytes, 0u);
  ExpectStoresEquivalent(h.store, h2.store);

  // The torn tail was truncated away: the log ends on a frame boundary.
  EXPECT_EQ(ReadFile(dir + "/wal.log").size(),
            recovered.replay_stats().bytes_valid);

  // Checkpoint folds the tail into a binary snapshot and resets the
  // WAL; a third recovery comes up from the snapshot alone.
  ASSERT_TRUE(recovered.Checkpoint().ok());
  EXPECT_EQ(recovered.wal_records(), 0u);
  Harness h3;
  DurableStore again(&h3.store, dir);
  ASSERT_TRUE(again.Open().ok());
  EXPECT_EQ(again.replay_stats().records_applied, 0u);
  ExpectStoresEquivalent(h.store, h3.store);
}

TEST(WalTest, MutationsAfterRecoveryKeepLogging) {
  std::string dir = TempPath("cqms_wal_continue");
  RemoveDurableFiles(dir);

  {
    Harness h;
    DurableStore durable(&h.store, dir);
    ASSERT_TRUE(durable.Open().ok());
    h.Log("alice", "SELECT temp FROM WaterTemp WHERE temp < 18");
  }
  Harness h2;
  {
    DurableStore durable(&h2.store, dir);
    ASSERT_TRUE(durable.Open().ok());
    ASSERT_EQ(h2.store.size(), 1u);
    // New mutations append after the replayed prefix.
    h2.Log("bob", "SELECT * FROM CityLocations");
    ASSERT_TRUE(h2.store.SetQuality(0, 0.25).ok());
  }
  Harness h3;
  DurableStore durable(&h3.store, dir);
  ASSERT_TRUE(durable.Open().ok());
  ExpectStoresEquivalent(h2.store, h3.store);
  EXPECT_EQ(h3.store.Get(0)->quality, 0.25);
}

TEST(WalTest, CrashBetweenSnapshotWriteAndWalTruncationIsIdempotent) {
  std::string dir = TempPath("cqms_wal_ckpt_crash");
  RemoveDurableFiles(dir);

  Harness h;
  DurableStore durable(&h.store, dir);
  ASSERT_TRUE(durable.Open().ok());
  ApplyCommittedMutations(&h);

  // Simulate a crash *between* Checkpoint's snapshot write and its WAL
  // truncation: take the checkpoint, then put the pre-checkpoint WAL
  // bytes back as if the truncation never hit the disk.
  std::string old_wal = ReadFile(dir + "/wal.log");
  ASSERT_TRUE(durable.Checkpoint().ok());
  WriteFile(dir + "/wal.log", old_wal);

  // Recovery must not re-apply what the snapshot already contains: the
  // sequence stamps make snapshot + stale-WAL replay idempotent.
  Harness h2;
  DurableStore recovered(&h2.store, dir);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_EQ(recovered.replay_stats().records_applied, 0u);
  EXPECT_GT(recovered.replay_stats().records_skipped, 0u);
  ExpectStoresEquivalent(h.store, h2.store);

  // New mutations resume with fresh sequence numbers past the stale
  // tail, and a further recovery applies exactly those.
  h2.Log("alice", "SELECT 42");
  Harness h3;
  DurableStore again(&h3.store, dir);
  ASSERT_TRUE(again.Open().ok());
  EXPECT_EQ(again.replay_stats().records_applied, 1u);
  ExpectStoresEquivalent(h2.store, h3.store);
}

TEST(WalTest, TornInitialHeaderRecoversToEmpty) {
  std::string dir = TempPath("cqms_wal_torn_header");
  ::mkdir(dir.c_str(), 0755);
  RemoveDurableFiles(dir);
  // The process died while writing the very first WAL header: only a
  // prefix of the magic ever landed.
  WriteFile(dir + "/wal.log", "CQMSW");

  Harness h;
  DurableStore durable(&h.store, dir);
  ASSERT_TRUE(durable.Open().ok());
  EXPECT_EQ(durable.replay_stats().records_applied, 0u);
  EXPECT_EQ(durable.replay_stats().torn_bytes, 5u);
  // And the log is writable again.
  h.Log("alice", "SELECT 1");
  EXPECT_EQ(durable.wal_records(), 1u);

  // A short file that is NOT a header prefix is foreign: refuse.
  WriteFile(dir + "/wal.log", "NOTAWAL");
  Harness h2;
  DurableStore foreign(&h2.store, dir);
  EXPECT_EQ(foreign.Open().code(), StatusCode::kCorruption);
}

TEST(MigrationTest, V1SnapshotLoadsAndCheckpointsToV2) {
  std::string dir = TempPath("cqms_migrate");
  ::mkdir(dir.c_str(), 0755);
  RemoveDurableFiles(dir);

  Harness h;
  QueryId a = h.Log("alice", "SELECT temp FROM WaterTemp WHERE temp < 18");
  ASSERT_TRUE(h.store.SetQuality(a, 0.75).ok());
  // A legacy deployment saved the v1 text format at this path.
  DurableStore layout(&h.store, dir);  // path helper only; never opened
  ASSERT_TRUE(SaveSnapshot(h.store, layout.snapshot_path()).ok());
  ASSERT_TRUE(ReadFile(layout.snapshot_path()).rfind("CQMS-SNAPSHOT", 0) == 0);

  // Open dispatches on the header and re-profiles the v1 text...
  Harness h2;
  DurableStore migrated(&h2.store, dir);
  ASSERT_TRUE(migrated.Open().ok());
  ExpectStoresEquivalent(h.store, h2.store, /*expect_output_rows=*/false);

  // ...and the first checkpoint upgrades the file to v2 in place.
  ASSERT_TRUE(migrated.Checkpoint().ok());
  EXPECT_EQ(ReadFile(migrated.snapshot_path()).substr(0, 8), "CQMSNAP2");
  uint64_t parses_before = sql::ParseCallCount();
  Harness h3;
  DurableStore reopened(&h3.store, dir);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(sql::ParseCallCount() - parses_before, 0u);  // binary now
  ExpectStoresEquivalent(h.store, h3.store, /*expect_output_rows=*/false);
}

TEST(DurableFacadeTest, MaintenanceCheckpointsWhenWalCrossesThreshold) {
  std::string dir = TempPath("cqms_facade_dur");
  RemoveDurableFiles(dir);

  SimulatedClock clock{1'000'000};
  CqmsOptions options;
  options.clock = &clock;
  storage::DurabilityOptions durability;
  durability.checkpoint_wal_records = 3;  // checkpoint almost immediately

  {
    Cqms system(options);
    ASSERT_TRUE(
        workload::PopulateLakeDatabase(system.database(), 50).ok());
    ASSERT_TRUE(system.EnableDurability(dir, durability).ok());
    system.RegisterUser("alice", {"oceans"});
    system.Execute("alice", "SELECT temp FROM WaterTemp WHERE temp < 18");
    system.Execute("alice", "SELECT * FROM CityLocations");
    auto report = system.RunMaintenance();
    EXPECT_TRUE(report.checkpointed);
    ASSERT_NE(system.durable(), nullptr);
    EXPECT_EQ(system.durable()->wal_records(), 0u);
    EXPECT_EQ(ReadFile(dir + "/snapshot.cqms").substr(0, 8), "CQMSNAP2");
  }

  // Cold restart: snapshot + (empty) WAL bring everything back.
  Cqms restarted(options);
  ASSERT_TRUE(
      workload::PopulateLakeDatabase(restarted.database(), 50).ok());
  ASSERT_TRUE(restarted.EnableDurability(dir, durability).ok());
  EXPECT_EQ(restarted.store()->size(), 2u);
  EXPECT_EQ(restarted.store()->Get(0)->user, "alice");
  EXPECT_TRUE(restarted.store()->acl().HasUser("alice"));
}

}  // namespace
}  // namespace cqms::storage
