#include <gtest/gtest.h>

#include <fstream>

#include "storage/persistence.h"
#include "storage/query_store.h"
#include "storage/record_builder.h"
#include "test_util.h"

namespace cqms::storage {
namespace {

using testing_util::Harness;

TEST(RecordBuilderTest, BuildsAllDerivedFields) {
  QueryRecord r = BuildRecordFromText(
      "SELECT T.temp FROM WaterTemp T WHERE T.temp < 18", "alice", 123);
  EXPECT_FALSE(r.parse_failed());
  EXPECT_EQ(r.user, "alice");
  EXPECT_EQ(r.timestamp, 123);
  EXPECT_NE(r.fingerprint, 0u);
  EXPECT_NE(r.skeleton_fingerprint, 0u);
  EXPECT_NE(r.canonical_text.find("watertemp"), std::string::npos);
  EXPECT_NE(r.skeleton.find("?"), std::string::npos);
  ASSERT_EQ(r.components.tables.size(), 1u);
}

TEST(RecordBuilderTest, ParseFailureKeepsText) {
  QueryRecord r = BuildRecordFromText("SELEKT oops", "bob", 5);
  EXPECT_TRUE(r.parse_failed());
  EXPECT_FALSE(r.stats.succeeded);
  EXPECT_FALSE(r.stats.error.empty());
  EXPECT_EQ(r.text, "SELEKT oops");
}

TEST(QueryStoreTest, AppendAssignsSequentialIds) {
  QueryStore store;
  QueryId a = store.Append(BuildRecordFromText("SELECT 1", "u", 1));
  QueryId b = store.Append(BuildRecordFromText("SELECT 2", "u", 2));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Get(a)->text, "SELECT 1");
  EXPECT_EQ(store.Get(99), nullptr);
}

TEST(QueryStoreTest, TableAndAttributeIndexes) {
  QueryStore store;
  QueryId a = store.Append(BuildRecordFromText(
      "SELECT temp FROM WaterTemp WHERE temp < 5", "u", 1));
  QueryId b = store.Append(
      BuildRecordFromText("SELECT * FROM CityLocations", "u", 2));
  EXPECT_EQ(store.QueriesUsingTable("watertemp"),
            (std::vector<QueryId>{a}));
  EXPECT_EQ(store.QueriesUsingTable("WATERTEMP"),
            (std::vector<QueryId>{a}));  // case-insensitive
  EXPECT_EQ(store.QueriesUsingTable("citylocations"),
            (std::vector<QueryId>{b}));
  EXPECT_EQ(store.QueriesUsingAttribute("watertemp", "temp"),
            (std::vector<QueryId>{a}));
  EXPECT_TRUE(store.QueriesUsingTable("nope").empty());
}

TEST(QueryStoreTest, KeywordIndexDeduplicatesWithinQuery) {
  QueryStore store;
  QueryId a =
      store.Append(BuildRecordFromText("SELECT temp, temp FROM t", "u", 1));
  EXPECT_EQ(store.QueriesWithKeyword("temp"), (std::vector<QueryId>{a}));
}

TEST(QueryStoreTest, PopularityCountsCanonicalDuplicates) {
  QueryStore store;
  QueryId a = store.Append(BuildRecordFromText("SELECT * FROM t", "u", 1));
  store.Append(BuildRecordFromText("select * from T", "v", 2));
  store.Append(BuildRecordFromText("SELECT  *  FROM  t", "w", 3));
  EXPECT_EQ(store.PopularityOf(store.Get(a)->fingerprint), 3u);
}

TEST(QueryStoreTest, SkeletonIndexGroupsConstantVariants) {
  QueryStore store;
  QueryId a = store.Append(
      BuildRecordFromText("SELECT * FROM t WHERE x < 22", "u", 1));
  QueryId b = store.Append(
      BuildRecordFromText("SELECT * FROM t WHERE x < 18", "u", 2));
  EXPECT_EQ(store.QueriesWithSkeleton(store.Get(a)->skeleton_fingerprint),
            (std::vector<QueryId>{a, b}));
}

TEST(QueryStoreTest, FlagsAndSessionAndQuality) {
  QueryStore store;
  QueryId id = store.Append(BuildRecordFromText("SELECT 1", "u", 1));
  ASSERT_TRUE(store.AddFlag(id, kFlagStatsStale).ok());
  EXPECT_TRUE(store.Get(id)->HasFlag(kFlagStatsStale));
  ASSERT_TRUE(store.ClearFlag(id, kFlagStatsStale).ok());
  EXPECT_FALSE(store.Get(id)->HasFlag(kFlagStatsStale));
  ASSERT_TRUE(store.SetSession(id, 7).ok());
  EXPECT_EQ(store.Get(id)->session_id, 7);
  ASSERT_TRUE(store.SetQuality(id, 2.0).ok());  // clamped
  EXPECT_DOUBLE_EQ(store.Get(id)->quality, 1.0);
  EXPECT_FALSE(store.AddFlag(99, kFlagStatsStale).ok());
}

TEST(QueryStoreTest, DeleteRequiresOwnerOrAdmin) {
  QueryStore store;
  QueryId id = store.Append(BuildRecordFromText("SELECT 1", "alice", 1));
  EXPECT_EQ(store.Delete(id, "mallory").code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(store.Delete(id, "mallory", /*is_admin=*/true).ok());
  EXPECT_TRUE(store.Get(id)->HasFlag(kFlagDeleted));
  EXPECT_FALSE(store.Visible("alice", id));  // deleted hides from everyone
}

TEST(AccessControlTest, GroupVisibilityRules) {
  QueryStore store;
  store.acl().AddUser("alice", {"oceans"});
  store.acl().AddUser("bob", {"oceans", "lakes"});
  store.acl().AddUser("carol", {"astro"});
  QueryId id = store.Append(BuildRecordFromText("SELECT 1", "alice", 1));

  // Default visibility is kGroup.
  EXPECT_TRUE(store.Visible("alice", id));
  EXPECT_TRUE(store.Visible("bob", id));
  EXPECT_FALSE(store.Visible("carol", id));

  // Private: owner only.
  ASSERT_TRUE(store.acl().SetVisibility(id, "alice", "alice",
                                        Visibility::kPrivate).ok());
  EXPECT_FALSE(store.Visible("bob", id));
  EXPECT_TRUE(store.Visible("alice", id));

  // Public: everyone.
  ASSERT_TRUE(store.acl().SetVisibility(id, "alice", "alice",
                                        Visibility::kPublic).ok());
  EXPECT_TRUE(store.Visible("carol", id));

  // Only the owner may change visibility.
  EXPECT_EQ(store.acl().SetVisibility(id, "alice", "bob",
                                      Visibility::kPrivate).code(),
            StatusCode::kPermissionDenied);
}

TEST(AccessControlTest, VisibleIdsFiltersWholeLog) {
  QueryStore store;
  store.acl().AddUser("alice", {"g1"});
  store.acl().AddUser("eve", {"g2"});
  store.Append(BuildRecordFromText("SELECT 1", "alice", 1));
  store.Append(BuildRecordFromText("SELECT 2", "alice", 2));
  EXPECT_EQ(store.VisibleIds("alice").size(), 2u);
  EXPECT_TRUE(store.VisibleIds("eve").empty());
}

TEST(QueryStoreTest, FeatureRelationsAreQueryable) {
  QueryStore store;
  store.Append(BuildRecordFromText(
      "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
      "WHERE S.loc_x = T.loc_x AND T.temp < 18",
      "alice", 1));
  store.Append(BuildRecordFromText("SELECT * FROM CityLocations", "bob", 2));

  // The Figure-1 meta-query, almost verbatim.
  auto result = store.feature_db().ExecuteSql(
      "SELECT Q.qid, Q.qtext FROM Queries Q, Attributes A1, Attributes A2 "
      "WHERE Q.qid = A1.qid AND Q.qid = A2.qid "
      "AND A1.attrname = 'salinity' AND A1.relname = 'watersalinity' "
      "AND A2.attrname = 'temp' AND A2.relname = 'watertemp'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), 0);
}

TEST(QueryStoreTest, RewriteQueryTextRebuildsEverything) {
  QueryStore store;
  QueryId id = store.Append(
      BuildRecordFromText("SELECT temp FROM OldName WHERE temp < 9", "u", 1));
  ASSERT_TRUE(store.RewriteQueryText(id, "SELECT temp FROM NewName WHERE temp < 9")
                  .ok());
  const QueryRecord* r = store.Get(id);
  EXPECT_EQ(r->components.tables, (std::vector<std::string>{"newname"}));
  EXPECT_EQ(r->user, "u");
  EXPECT_EQ(r->timestamp, 1);
  // Feature relations: old table gone, new present.
  auto rows = store.feature_db().ExecuteSql(
      "SELECT relname FROM DataSources WHERE qid = 0");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsString(), "newname");
  // Rewrite to unparsable text is rejected.
  EXPECT_FALSE(store.RewriteQueryText(id, "SELEKT").ok());
}

TEST(PersistenceTest, SaveLoadRoundTrip) {
  QueryStore store;
  store.acl().AddUser("alice", {"oceans", "lakes"});
  QueryId a = store.Append(BuildRecordFromText(
      "SELECT * FROM WaterTemp WHERE temp < 18 -- probe", "alice", 1000));
  store.Append(BuildRecordFromText("SELEKT broken", "bob", 2000));
  ASSERT_TRUE(store.SetSession(a, 3).ok());
  ASSERT_TRUE(store.SetQuality(a, 0.75).ok());
  ASSERT_TRUE(store.AddFlag(a, kFlagRepaired).ok());
  Annotation note;
  note.author = "alice";
  note.timestamp = 1500;
  note.text = "my favorite lake probe, with 'quotes' and\nnewlines";
  note.fragment = "temp < 18";
  ASSERT_TRUE(store.Annotate(a, note).ok());
  ASSERT_TRUE(
      store.acl().SetVisibility(a, "alice", "alice", Visibility::kPublic).ok());
  QueryRecord* rec = store.GetMutable(a);
  rec->stats.execution_micros = 4242;
  rec->stats.result_rows = 17;
  rec->stats.rows_scanned = 100;

  std::string path = ::testing::TempDir() + "/cqms_snapshot_test.log";
  ASSERT_TRUE(SaveSnapshot(store, path).ok());

  QueryStore loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, path).ok());
  ASSERT_EQ(loaded.size(), 2u);
  const QueryRecord* lr = loaded.Get(a);
  EXPECT_EQ(lr->text, store.Get(a)->text);
  EXPECT_EQ(lr->user, "alice");
  EXPECT_EQ(lr->timestamp, 1000);
  EXPECT_EQ(lr->session_id, 3);
  EXPECT_DOUBLE_EQ(lr->quality, 0.75);
  EXPECT_TRUE(lr->HasFlag(kFlagRepaired));
  EXPECT_EQ(lr->stats.execution_micros, 4242);
  EXPECT_EQ(lr->stats.result_rows, 17u);
  ASSERT_EQ(lr->annotations.size(), 1u);
  EXPECT_EQ(lr->annotations[0].text, note.text);
  EXPECT_EQ(lr->annotations[0].fragment, "temp < 18");
  // Indexes rebuilt.
  EXPECT_EQ(loaded.QueriesUsingTable("watertemp").size(), 1u);
  // ACL restored.
  EXPECT_EQ(loaded.acl().GetVisibility(a), Visibility::kPublic);
  EXPECT_TRUE(loaded.acl().GroupsOf("alice").count("lakes") > 0);
  // Parse-failed record survives.
  EXPECT_TRUE(loaded.Get(1)->parse_failed());
}

TEST(PersistenceTest, V1NulByteAndEmptyFieldsRoundTrip) {
  QueryStore store;
  QueryId a = store.Append(BuildRecordFromText("SELECT 1", "alice", 1));
  // A single-NUL field used to collide with the old "%00" empty-field
  // marker and come back as "".
  Annotation nul_note;
  nul_note.author = std::string(1, '\0');
  nul_note.timestamp = 2;
  nul_note.text = "t";
  ASSERT_TRUE(store.Annotate(a, nul_note).ok());
  Annotation empty_note;
  empty_note.author = "bob";
  empty_note.timestamp = 3;
  empty_note.text = "note";  // fragment stays empty
  ASSERT_TRUE(store.Annotate(a, empty_note).ok());

  std::string path = ::testing::TempDir() + "/cqms_snapshot_escape.log";
  ASSERT_TRUE(SaveSnapshot(store, path).ok());
  QueryStore loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, path).ok());
  ASSERT_EQ(loaded.Get(a)->annotations.size(), 2u);
  EXPECT_EQ(loaded.Get(a)->annotations[0].author, std::string(1, '\0'));
  EXPECT_EQ(loaded.Get(a)->annotations[1].author, "bob");
  EXPECT_EQ(loaded.Get(a)->annotations[1].fragment, "");
}

TEST(PersistenceTest, LegacyV1FilesDecodeEmptyFieldsByHeaderVersion) {
  // A file written by a pre-1.1 build: header "CQMS-SNAPSHOT 1" and
  // "%00" as the empty-field marker (here: an empty stats error). The
  // versioned reader must decode it as "", not as a NUL byte.
  std::string path = ::testing::TempDir() + "/cqms_snapshot_legacy.log";
  {
    std::ofstream out(path);
    out << "CQMS-SNAPSHOT 1\n"
        << "Q 0 1 -1 0 0.5 alice SELECT%201\n"
        << "S 10 1 1 1 %00\n"
        << "V 1\n";
  }
  QueryStore loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, path).ok());
  EXPECT_EQ(loaded.Get(0)->stats.error, "");
  EXPECT_EQ(loaded.Get(0)->text, "SELECT 1");
}

TEST(PersistenceTest, V1RejectsTruncatedOrMalformedEscapes) {
  std::string path = ::testing::TempDir() + "/cqms_snapshot_badescape.log";
  // A trailing "%4" is a truncated escape: corruption, not a literal
  // '%'. The old reader passed it through silently.
  {
    std::ofstream out(path);
    out << "CQMS-SNAPSHOT 1\n"
        << "Q 0 1 -1 0 0.5 alice SELECT%4\n";
  }
  QueryStore s1;
  EXPECT_EQ(LoadSnapshot(&s1, path).code(), StatusCode::kIoError);
  // Non-hex escape bodies are rejected too.
  {
    std::ofstream out(path);
    out << "CQMS-SNAPSHOT 1\n"
        << "Q 0 1 -1 0 0.5 al%ZZice SELECT\n";
  }
  QueryStore s2;
  EXPECT_EQ(LoadSnapshot(&s2, path).code(), StatusCode::kIoError);
}

TEST(PersistenceTest, SaveIsAtomicAndLeavesNoTmpFile) {
  QueryStore store;
  store.Append(BuildRecordFromText("SELECT 1", "u", 1));
  std::string path = ::testing::TempDir() + "/cqms_snapshot_atomic.log";
  // Pre-existing good snapshot...
  ASSERT_TRUE(SaveSnapshot(store, path).ok());
  // ...stays byte-identical when overwritten with equal content, and the
  // tmp staging file never survives a successful save.
  ASSERT_TRUE(SaveSnapshot(store, path).ok());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  QueryStore loaded;
  EXPECT_TRUE(LoadSnapshot(&loaded, path).ok());
  EXPECT_EQ(loaded.size(), 1u);
}

TEST(PersistenceTest, LoadRejectsNonEmptyStoreAndBadFiles) {
  QueryStore store;
  store.Append(BuildRecordFromText("SELECT 1", "u", 1));
  EXPECT_EQ(LoadSnapshot(&store, "/nonexistent").code(),
            StatusCode::kInvalidArgument);
  QueryStore empty;
  EXPECT_EQ(LoadSnapshot(&empty, "/nonexistent/x").code(), StatusCode::kIoError);
}

TEST(QueryStoreTest, CompactScoringArenasPreservesEveryRow) {
  Harness h;
  std::vector<storage::QueryId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(h.Log("alice", "SELECT lake, temp FROM WaterTemp WHERE temp < " +
                                     std::to_string(i)));
  }
  ASSERT_TRUE(h.store
                  .RewriteQueryText(ids[1],
                                    "SELECT city FROM CityLocations WHERE pop > 10")
                  .ok());
  ASSERT_TRUE(h.store
                  .RewriteQueryText(ids[3],
                                    "SELECT * FROM WaterSalinity WHERE salinity < 4")
                  .ok());
  const size_t garbage = h.store.scoring().arena_garbage();
  ASSERT_GT(garbage, 0u);

  // Snapshot every span before compaction...
  struct Row {
    std::vector<Symbol> tables, tokens;
    std::vector<uint64_t> output;
    std::string text;
  };
  std::vector<Row> before;
  for (storage::QueryId id : ids) {
    Row row;
    auto t = h.store.scoring().tables(id);
    row.tables.assign(t.data, t.data + t.size);
    auto k = h.store.scoring().tokens(id);
    row.tokens.assign(k.data, k.data + k.size);
    auto o = h.store.scoring().output_rows(id);
    row.output.assign(o.data, o.data + o.size);
    row.text = std::string(h.store.scoring().lowered_text(id));
    before.push_back(std::move(row));
  }

  // ...compact reclaims exactly the reported garbage...
  EXPECT_EQ(h.store.CompactScoringArenas(), garbage);
  EXPECT_EQ(h.store.scoring().arena_garbage(), 0u);

  // ...and every row reads back identically.
  for (size_t i = 0; i < ids.size(); ++i) {
    storage::QueryId id = ids[i];
    auto t = h.store.scoring().tables(id);
    EXPECT_EQ(std::vector<Symbol>(t.data, t.data + t.size), before[i].tables);
    auto k = h.store.scoring().tokens(id);
    EXPECT_EQ(std::vector<Symbol>(k.data, k.data + k.size), before[i].tokens);
    auto o = h.store.scoring().output_rows(id);
    EXPECT_EQ(std::vector<uint64_t>(o.data, o.data + o.size), before[i].output);
    EXPECT_EQ(std::string(h.store.scoring().lowered_text(id)), before[i].text);
  }
  // Compacting a clean store is a no-op.
  EXPECT_EQ(h.store.CompactScoringArenas(), 0u);
}

TEST(ProfilerIntegrationTest, ProfilerPopulatesStore) {
  Harness h;
  storage::QueryId id =
      h.Log("alice", "SELECT lake, temp FROM WaterTemp WHERE temp < 18");
  ASSERT_NE(id, kInvalidQueryId);
  const QueryRecord* r = h.store.Get(id);
  EXPECT_TRUE(r->stats.succeeded);
  EXPECT_GT(r->stats.result_rows, 0u);
  EXPECT_GT(r->stats.rows_scanned, 0u);
  EXPECT_FALSE(r->summary.column_names.empty());
}

}  // namespace
}  // namespace cqms::storage
