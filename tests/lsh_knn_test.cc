// MinHash/LSH candidate pruning tests: (1) a seeded statistical property
// test that the MinHash estimate converges to the exact Jaccard over the
// sketch element sets, (2) recall regression of LSH-pruned kNN against
// the brute-force reference on a 5k synthetic log (plus exact equality
// when the small-log fallback applies), and (3) lifecycle tests that
// RewriteQueryText and stats refresh keep the LshIndex consistent — no
// stale buckets, no duplicate candidates — mirroring the secondary-index
// purge tests.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "maintain/query_maintenance.h"
#include "metaquery/knn.h"
#include "metaquery/similarity.h"
#include "miner/clustering.h"
#include "storage/lsh_index.h"
#include "storage/minhash.h"
#include "storage/record_builder.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace cqms::metaquery {
namespace {

using storage::ComputeMinHashSketch;
using storage::EstimateJaccard;
using storage::LshIndex;
using storage::LshParams;
using storage::MinHashSketch;
using storage::QueryId;
using storage::QueryRecord;
using storage::SimilaritySignature;
using storage::SketchElements;
using testing_util::Harness;

/// Builds a signature whose only elements are the given table Symbols
/// (the tables field is not keyword-filtered, so the element set is
/// exactly controllable from here).
SimilaritySignature TableSignature(std::vector<Symbol> symbols) {
  std::sort(symbols.begin(), symbols.end());
  symbols.erase(std::unique(symbols.begin(), symbols.end()), symbols.end());
  SimilaritySignature sig;
  sig.tables = std::move(symbols);
  sig.valid = true;
  return sig;
}

// --- satellite 1: MinHash estimate converges to exact Jaccard ------------

TEST(MinHashSketchTest, EstimateConvergesToExactJaccard) {
  Rng rng(20260727);
  double max_err = 0;
  double total_err = 0;
  size_t trials = 0;
  for (size_t set_size : {20u, 50u, 100u, 200u}) {
    for (int overlap_tenths = 0; overlap_tenths <= 10; ++overlap_tenths) {
      for (int rep = 0; rep < 12; ++rep) {
        // Plant `shared` common symbols plus disjoint remainders.
        size_t shared = set_size * overlap_tenths / 10;
        std::set<Symbol> used;
        auto fresh = [&] {
          Symbol s;
          do {
            s = static_cast<Symbol>(rng.Uniform(1u << 30));
          } while (!used.insert(s).second);
          return s;
        };
        std::vector<Symbol> common;
        for (size_t i = 0; i < shared; ++i) common.push_back(fresh());
        std::vector<Symbol> a = common, b = common;
        while (a.size() < set_size) a.push_back(fresh());
        while (b.size() < set_size) b.push_back(fresh());

        SimilaritySignature sig_a = TableSignature(std::move(a));
        SimilaritySignature sig_b = TableSignature(std::move(b));
        double exact =
            SortedJaccard(SketchElements(sig_a), SketchElements(sig_b));
        double estimate = EstimateJaccard(ComputeMinHashSketch(sig_a),
                                          ComputeMinHashSketch(sig_b));
        double err = std::abs(estimate - exact);
        max_err = std::max(max_err, err);
        total_err += err;
        ++trials;
      }
    }
  }
  ASSERT_GE(trials, 500u);
  // With 64 permutations the per-pair standard error is
  // sqrt(J(1-J)/64) <= 0.0625: the mean |error| over a mixed-J workload
  // sits well under one sigma and no pair should stray past ~4.5 sigma.
  // Seeded RNG makes both bounds deterministic.
  EXPECT_LT(total_err / static_cast<double>(trials), 0.05);
  EXPECT_LT(max_err, 0.30);
}

TEST(MinHashSketchTest, ExactAtTheExtremes) {
  Rng rng(99);
  std::vector<Symbol> base;
  for (int i = 0; i < 80; ++i) {
    base.push_back(static_cast<Symbol>(rng.Uniform(1u << 30)));
  }
  SimilaritySignature sig = TableSignature(base);
  // Identical sets estimate exactly 1.0 — every slot matches.
  EXPECT_DOUBLE_EQ(
      EstimateJaccard(ComputeMinHashSketch(sig), ComputeMinHashSketch(sig)),
      1.0);
  // Disjoint sets estimate ~0 (a shared slot needs a 64-bit hash
  // coincidence between distinct elements).
  std::vector<Symbol> other;
  for (int i = 0; i < 80; ++i) {
    other.push_back(static_cast<Symbol>((1u << 30) + i));
  }
  EXPECT_LT(EstimateJaccard(ComputeMinHashSketch(sig),
                            ComputeMinHashSketch(TableSignature(other))),
            0.05);
  // Empty signatures produce the empty sketch, which is not indexable.
  SimilaritySignature empty;
  empty.valid = true;
  MinHashSketch empty_sketch = ComputeMinHashSketch(empty);
  EXPECT_TRUE(empty_sketch.valid);
  EXPECT_TRUE(empty_sketch.empty());
}

TEST(MinHashSketchTest, SqlKeywordsAreNotSketchElements) {
  // These two queries share *only* SQL keywords (SELECT/FROM). With
  // keywords excluded from the sketch elements, their element sets are
  // disjoint even though raw token Jaccard is well above zero.
  QueryRecord a = storage::BuildRecordFromText("SELECT alpha FROM Tweedle", "u", 0);
  QueryRecord b = storage::BuildRecordFromText("SELECT beta FROM Deedle", "u", 0);
  EXPECT_GT(TextSimilarity(a.signature, b.signature), 0.2);
  EXPECT_DOUBLE_EQ(
      SortedJaccard(SketchElements(a.signature), SketchElements(b.signature)),
      0.0);
  EXPECT_LT(EstimateJaccard(a.sketch, b.sketch), 0.05);
}

TEST(MinHashSketchTest, FieldSaltsKeepFieldsDistinct) {
  // The same Symbol placed in different signature fields must produce
  // different elements (a table named like a projection is not overlap).
  SimilaritySignature as_table;
  as_table.tables = {42};
  as_table.valid = true;
  SimilaritySignature as_projection;
  as_projection.projections = {42};
  as_projection.valid = true;
  EXPECT_DOUBLE_EQ(SortedJaccard(SketchElements(as_table),
                                 SketchElements(as_projection)),
                   0.0);
}

// --- LshIndex unit behavior ----------------------------------------------

TEST(LshIndexTest, InsertRemoveCandidates) {
  Rng rng(7);
  std::vector<Symbol> base;
  for (int i = 0; i < 60; ++i) {
    base.push_back(static_cast<Symbol>(rng.Uniform(1u << 30)));
  }
  MinHashSketch near = ComputeMinHashSketch(TableSignature(base));
  std::vector<Symbol> tweaked = base;
  tweaked[0] ^= 1;  // one element swapped: Jaccard ~ 59/61
  MinHashSketch near2 = ComputeMinHashSketch(TableSignature(tweaked));
  std::vector<Symbol> far_set;
  for (int i = 0; i < 60; ++i) far_set.push_back(static_cast<Symbol>(i + 1));
  MinHashSketch far = ComputeMinHashSketch(TableSignature(far_set));

  LshIndex index;
  index.Insert(1, near);
  index.Insert(2, near2);
  index.Insert(3, far);
  EXPECT_EQ(index.entry_count(), 3 * index.bands());
  EXPECT_TRUE(index.ContainsExactlyOnce(1, near));
  // Re-inserting must not duplicate postings.
  index.Insert(1, near);
  EXPECT_EQ(index.entry_count(), 3 * index.bands());

  std::vector<QueryId> c = index.Candidates(near);
  EXPECT_TRUE(std::binary_search(c.begin(), c.end(), QueryId{1}));
  // A near-duplicate sketch lands in (almost surely) some shared band.
  EXPECT_TRUE(std::binary_search(c.begin(), c.end(), QueryId{2}));
  EXPECT_FALSE(std::binary_search(c.begin(), c.end(), QueryId{3}));

  index.Remove(2, near2);
  EXPECT_EQ(index.entry_count(), 2 * index.bands());
  c = index.Candidates(near);
  EXPECT_FALSE(std::binary_search(c.begin(), c.end(), QueryId{2}));

  // Empty sketches are not indexable and yield no candidates.
  MinHashSketch empty;
  empty.valid = true;
  index.Insert(9, empty);
  EXPECT_EQ(index.entry_count(), 2 * index.bands());
  EXPECT_TRUE(index.Candidates(empty).empty());
}

TEST(LshIndexTest, BandingParamsClampToSketchSize) {
  LshIndex index({1000, 3});  // 3000 slots > 64: bands shrink to fit.
  EXPECT_LE(index.bands() * index.rows(), MinHashSketch::kSize);
  EXPECT_EQ(index.rows(), 3u);

  storage::QueryStore store(LshParams{16, 4});
  EXPECT_EQ(store.lsh().bands(), 16u);
  EXPECT_EQ(store.lsh().rows(), 4u);
}

TEST(LshIndexTest, ProbeBandsLimitsLookup) {
  Rng rng(11);
  std::vector<Symbol> base;
  for (int i = 0; i < 60; ++i) {
    base.push_back(static_cast<Symbol>(rng.Uniform(1u << 30)));
  }
  MinHashSketch sketch = ComputeMinHashSketch(TableSignature(base));
  LshIndex index;
  index.Insert(5, sketch);
  // Probing any prefix of bands still finds an identical sketch.
  EXPECT_EQ(index.Candidates(sketch, 1).size(), 1u);
  EXPECT_EQ(index.Candidates(sketch, index.bands()).size(), 1u);
}

// --- satellite 2: recall regression vs brute force -----------------------

/// One shared ~5k-query synthetic log (generation dominates test time,
/// so the recall cases reuse it). Leaked intentionally.
Harness& BigLog() {
  static Harness* harness = [] {
    auto* h = new Harness();
    workload::WorkloadOptions options;
    options.num_sessions = 1001;  // ~5 queries/session -> >= 5000 queries
    options.seed = 77;
    workload::RegisterUsers(&h->store, options);
    workload::GenerateLog(h->profiler.get(), &h->store, &h->clock, options);
    return h;
  }();
  return *harness;
}

/// Representative probes, one-plus per workload template family.
const char* kRecallProbes[] = {
    "SELECT T.lake, T.temp, S.salinity FROM WaterTemp T, WaterSalinity S "
    "WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
    "SELECT * FROM WaterTemp T WHERE T.temp < 14",
    "SELECT lake, AVG(temp) AS avg_temp, COUNT(*) AS n FROM WaterTemp "
    "WHERE temp > 6 GROUP BY lake",
    "SELECT city FROM CityLocations WHERE state = 'WA' AND pop > 300000",
    "SELECT R.ts, R.value FROM Sensors N, Readings R "
    "WHERE N.sensor_id = R.sensor_id AND N.kind = 'temp'",
    "SELECT lake, SUM(count_obs) AS total FROM Species "
    "WHERE species IN ('carp') GROUP BY lake",
};

TEST(LshKnnRecallTest, RecallAtLeast095On5kLog) {
  Harness& h = BigLog();
  ASSERT_GE(h.store.size(), 5000u);

  const size_t k = 10;
  CandidateOptions exhaustive;
  exhaustive.use_lsh = false;
  double recall_sum = 0;
  size_t probes = 0;
  size_t total_lsh_candidates = 0;
  size_t total_table_candidates = 0;
  for (const char* sql : kRecallProbes) {
    QueryRecord probe = storage::BuildRecordFromText(
        sql, "user0", 0, storage::SignatureMode::kTransient);
    ASSERT_FALSE(probe.parse_failed()) << sql;
    // The default path must actually take the LSH branch on this log.
    ASSERT_GE(h.store.size(), CandidateOptions{}.lsh_min_log_size);
    std::vector<Neighbor> lsh = KnnSearch(h.store, "user0", probe, k);
    std::vector<Neighbor> reference =
        KnnSearch(h.store, "user0", probe, k, {}, {}, exhaustive);
    ASSERT_EQ(reference.size(), k) << sql;

    std::set<QueryId> reference_ids;
    for (const Neighbor& n : reference) reference_ids.insert(n.id);
    size_t hits = 0;
    for (const Neighbor& n : lsh) hits += reference_ids.count(n.id);
    recall_sum += static_cast<double>(hits) / static_cast<double>(k);
    ++probes;

    // The point of LSH: per probe the candidate set is no larger than
    // what the table index would have scored...
    size_t lsh_candidates = h.store.LshCandidates(probe.sketch).size();
    size_t table_candidates =
        h.store.QueriesUsingAnyTable(probe.components.tables).size();
    EXPECT_LE(lsh_candidates, table_candidates) << sql;
    total_lsh_candidates += lsh_candidates;
    total_table_candidates += table_candidates;
  }
  double recall = recall_sum / static_cast<double>(probes);
  EXPECT_GE(recall, 0.95) << "mean recall@10 over " << probes << " probes";
  // ...and in aggregate the pruning is substantial (less than half the
  // brute-force candidate volume).
  EXPECT_LT(total_lsh_candidates, total_table_candidates / 2);
}

TEST(LshKnnRecallTest, FallbackBelowThresholdIsExactlyBruteForce) {
  Harness h;
  workload::WorkloadOptions options;
  options.num_sessions = 25;  // ~150 queries, far below lsh_min_log_size
  workload::RegisterUsers(&h.store, options);
  workload::GenerateLog(h.profiler.get(), &h.store, &h.clock, options);
  ASSERT_LT(h.store.size(), CandidateOptions{}.lsh_min_log_size);

  CandidateOptions exhaustive;
  exhaustive.use_lsh = false;
  for (const char* sql : kRecallProbes) {
    QueryRecord probe = storage::BuildRecordFromText(
        sql, "user0", 0, storage::SignatureMode::kTransient);
    ASSERT_FALSE(probe.parse_failed()) << sql;
    std::vector<Neighbor> defaulted = KnnSearch(h.store, "user0", probe, 10);
    std::vector<Neighbor> reference =
        KnnSearch(h.store, "user0", probe, 10, {}, {}, exhaustive);
    ASSERT_EQ(defaulted.size(), reference.size()) << sql;
    for (size_t i = 0; i < defaulted.size(); ++i) {
      EXPECT_EQ(defaulted[i].id, reference[i].id) << sql << " i=" << i;
      EXPECT_DOUBLE_EQ(defaulted[i].score, reference[i].score);
    }
  }
}

TEST(LshKnnRecallTest, DeletedRecordsStayInvisibleThroughLsh) {
  Harness h;
  QueryId id = h.Log("user0", "SELECT temp FROM WaterTemp WHERE temp < 20");
  h.Log("user0", "SELECT temp FROM WaterTemp WHERE temp < 21");
  ASSERT_TRUE(h.store.Delete(id, "user0").ok());

  QueryRecord probe = storage::BuildRecordFromText(
      "SELECT temp FROM WaterTemp WHERE temp < 20", "user0", 0,
      storage::SignatureMode::kTransient);
  CandidateOptions force_lsh;
  force_lsh.lsh_min_log_size = 0;
  std::vector<Neighbor> result =
      KnnSearch(h.store, "user0", probe, 10, {}, {}, force_lsh);
  ASSERT_FALSE(result.empty());
  for (const Neighbor& n : result) EXPECT_NE(n.id, id);
}

// --- satellite 3: lifecycle keeps the LshIndex consistent ----------------

TEST(LshLifecycleTest, RewritePurgesStaleLshBuckets) {
  Harness h;
  QueryId id = h.Log("user0", "SELECT temp FROM WaterTemp WHERE temp < 20");
  QueryId other = h.Log("user0", "SELECT name FROM Species");
  ASSERT_NE(id, storage::kInvalidQueryId);
  MinHashSketch old_sketch = h.store.Get(id)->sketch;
  ASSERT_TRUE(old_sketch.valid);
  ASSERT_TRUE(h.store.lsh().ContainsExactlyOnce(id, old_sketch));
  size_t entries_before = h.store.lsh().entry_count();
  EXPECT_EQ(entries_before, 2 * h.store.lsh().bands());

  ASSERT_TRUE(h.store
                  .RewriteQueryText(
                      id, "SELECT salinity FROM WaterSalinity WHERE salinity > 3")
                  .ok());

  const QueryRecord* after = h.store.Get(id);
  // The record is findable under its new sketch, exactly once per band...
  EXPECT_TRUE(h.store.lsh().ContainsExactlyOnce(id, after->sketch));
  // ...the old sketch's buckets no longer hold it...
  EXPECT_FALSE(h.store.lsh().ContainsExactlyOnce(id, old_sketch));
  std::vector<QueryId> via_old = h.store.LshCandidates(old_sketch);
  EXPECT_FALSE(std::binary_search(via_old.begin(), via_old.end(), id));
  // ...and the global posting count proves nothing leaked: still
  // exactly bands() postings per indexed record.
  EXPECT_EQ(h.store.lsh().entry_count(), 2 * h.store.lsh().bands());

  // Candidate lists stay duplicate-free and sorted after the re-index.
  std::vector<QueryId> candidates = h.store.LshCandidates(after->sketch);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  EXPECT_EQ(std::adjacent_find(candidates.begin(), candidates.end()),
            candidates.end());
  EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), id));
  // The untouched record is still indexed under its own sketch.
  EXPECT_TRUE(
      h.store.lsh().ContainsExactlyOnce(other, h.store.Get(other)->sketch));
}

TEST(LshLifecycleTest, RepeatedRewritesNeverAccumulateEntries) {
  Harness h;
  QueryId id = h.Log("user0", "SELECT temp FROM WaterTemp WHERE temp < 20");
  const char* rewrites[] = {
      "SELECT salinity FROM WaterSalinity WHERE salinity > 3",
      "SELECT name FROM Species WHERE name = 'carp'",
      "SELECT temp FROM WaterTemp WHERE temp < 25",
  };
  for (const char* sql : rewrites) {
    ASSERT_TRUE(h.store.RewriteQueryText(id, sql).ok());
    EXPECT_EQ(h.store.lsh().entry_count(), h.store.lsh().bands());
    EXPECT_TRUE(h.store.lsh().ContainsExactlyOnce(id, h.store.Get(id)->sketch));
  }
}

TEST(LshLifecycleTest, StatsRefreshKeepsLshConsistent) {
  Harness h(50);
  QueryId id = h.Log("u", "SELECT * FROM WaterTemp WHERE temp > 90");
  MinHashSketch sketch_before = h.store.Get(id)->sketch;
  size_t entries_before = h.store.lsh().entry_count();

  maintain::MaintenanceOptions opts;
  opts.drift_threshold = 0.2;
  opts.reexecute_budget = 10;
  maintain::QueryMaintenance maintenance(&h.database, &h.store, &h.clock, opts);
  maintenance.RefreshStatistics();  // baseline snapshot
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(h.database
                    .Insert("WaterTemp", {db::Value::String("Union"),
                                          db::Value::Int(1), db::Value::Int(1),
                                          db::Value::Double(95.0)})
                    .ok());
  }
  maintain::MaintenanceReport report = maintenance.RefreshStatistics();
  ASSERT_GE(report.stats_refreshed, 1u);

  // The refresh replaced the output summary, but output rows are not
  // sketch elements: the sketch is bit-identical, the record is still
  // indexed exactly once per band, and no postings appeared or vanished.
  const QueryRecord* r = h.store.Get(id);
  EXPECT_EQ(r->sketch.mins, sketch_before.mins);
  EXPECT_TRUE(h.store.lsh().ContainsExactlyOnce(id, r->sketch));
  EXPECT_EQ(h.store.lsh().entry_count(), entries_before);
}

// --- clustering pair pruning ---------------------------------------------

/// Forcing the sketch-pruned DistanceMatrix path (min_points = 1) must
/// reproduce the exact single-linkage clustering at a tight threshold:
/// every within-threshold pair has high combined similarity, hence high
/// element Jaccard, hence co-buckets in the wide 32x2 pruning banding
/// with near-certainty (deterministic under the fixed workload seed).
TEST(SketchPrunedClusteringTest, AgglomerativeMatchesExactAtTightThreshold) {
  Harness h;
  workload::WorkloadOptions options;
  options.num_sessions = 40;
  options.seed = 5;
  workload::RegisterUsers(&h.store, options);
  workload::GenerateLog(h.profiler.get(), &h.store, &h.clock, options);
  std::vector<QueryId> ids;
  for (const QueryRecord& r : h.store.records()) {
    if (!r.parse_failed()) ids.push_back(r.id);
  }
  ASSERT_GT(ids.size(), 100u);

  miner::Clustering exact =
      miner::AgglomerativeCluster(h.store, ids, 0.25, {}, /*prune=*/0);
  miner::Clustering pruned =
      miner::AgglomerativeCluster(h.store, ids, 0.25, {}, /*prune=*/1);
  ASSERT_EQ(exact.num_clusters(), pruned.num_clusters());
  EXPECT_GT(exact.num_clusters(), 1u);
  for (size_t c = 0; c < exact.num_clusters(); ++c) {
    EXPECT_EQ(exact.clusters[c], pruned.clusters[c]) << "cluster " << c;
    EXPECT_EQ(exact.medoids[c], pruned.medoids[c]) << "cluster " << c;
  }

  // KMedoids under forced pruning stays a valid partition of the input.
  miner::KMedoidsOptions km;
  km.k = 6;
  km.sketch_prune_min_points = 1;
  miner::Clustering km_pruned = miner::KMedoidsCluster(h.store, ids, km);
  size_t total = 0;
  for (const auto& cluster : km_pruned.clusters) total += cluster.size();
  EXPECT_EQ(total, ids.size());
  EXPECT_EQ(km_pruned.clusters.size(), km_pruned.medoids.size());
}

TEST(LshLifecycleTest, TransientProbeSketchIsRebuiltOnAppend) {
  Harness h;
  h.Log("user0", "SELECT temp FROM WaterTemp WHERE temp < 20");
  QueryRecord probe = storage::BuildRecordFromText(
      "SELECT temp, zzlshnovelcol FROM WaterTemp WHERE zzlshnovelcol = 1",
      "user0", 0, storage::SignatureMode::kTransient);
  ASSERT_TRUE(probe.sketch.valid);
  MinHashSketch transient_sketch = probe.sketch;

  QueryId id = h.store.Append(std::move(probe));
  const QueryRecord* stored = h.store.Get(id);
  // The transient sketch hashed probe-local ids for the novel column;
  // the stored record's sketch uses the interned ids and is what the
  // index was fed.
  EXPECT_NE(stored->sketch.mins, transient_sketch.mins);
  EXPECT_TRUE(h.store.lsh().ContainsExactlyOnce(id, stored->sketch));
}

}  // namespace
}  // namespace cqms::metaquery
