// Tests for two cross-cutting features: execution-plan capture (paper
// §4.1 runtime features) and session clustering (§4.3).

#include <gtest/gtest.h>

#include "client/browse.h"
#include "miner/session_clustering.h"
#include "storage/persistence.h"
#include "test_util.h"

namespace cqms {
namespace {

using testing_util::Harness;

TEST(PlanCaptureTest, ScanWithPushdownIsRecorded) {
  Harness h;
  auto r = h.database.ExecuteSql("SELECT * FROM WaterTemp WHERE temp < 18");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->plan.find("scan watertemp"), std::string::npos);
  EXPECT_NE(r->plan.find("pushdown"), std::string::npos);
  EXPECT_NE(r->plan.find("temp < 18"), std::string::npos);
}

TEST(PlanCaptureTest, HashJoinVsNestedLoopIsVisible) {
  Harness h;
  auto hash = h.database.ExecuteSql(
      "SELECT * FROM WaterTemp T, WaterSalinity S WHERE T.loc_x = S.loc_x");
  ASSERT_TRUE(hash.ok());
  EXPECT_NE(hash->plan.find("hash join watersalinity"), std::string::npos);

  auto nested = h.database.ExecuteSql(
      "SELECT * FROM WaterTemp T, WaterSalinity S WHERE T.loc_x < S.loc_x");
  ASSERT_TRUE(nested.ok());
  EXPECT_NE(nested->plan.find("nested-loop join"), std::string::npos);
}

TEST(PlanCaptureTest, AggregateSortLimitOperatorsListed) {
  Harness h;
  auto r = h.database.ExecuteSql(
      "SELECT lake, AVG(temp) FROM WaterTemp GROUP BY lake "
      "ORDER BY lake LIMIT 3");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->plan.find("aggregate 1 function(s), 1 group key(s)"),
            std::string::npos);
  EXPECT_NE(r->plan.find("sort 1 key(s)"), std::string::npos);
  EXPECT_NE(r->plan.find("limit 3"), std::string::npos);
}

TEST(PlanCaptureTest, SubqueryPlansAreNotRecorded) {
  Harness h;
  auto r = h.database.ExecuteSql(
      "SELECT lake FROM WaterTemp T WHERE EXISTS "
      "(SELECT 1 FROM WaterSalinity S WHERE S.loc_x = T.loc_x)");
  ASSERT_TRUE(r.ok());
  // Only the outer scan appears; the correlated subquery would repeat
  // per row and is deliberately excluded.
  EXPECT_NE(r->plan.find("scan watertemp"), std::string::npos);
  EXPECT_EQ(r->plan.find("scan watersalinity"), std::string::npos);
}

TEST(PlanCaptureTest, ProfilerStoresAndPersistsPlan) {
  Harness h;
  storage::QueryId id = h.Log(
      "alice", "SELECT * FROM WaterTemp T, WaterSalinity S "
               "WHERE T.loc_x = S.loc_x AND T.temp < 18");
  const storage::QueryRecord* rec = h.store.Get(id);
  EXPECT_NE(rec->stats.plan.find("hash join"), std::string::npos);

  // Shows up in the browse details.
  std::string details = client::RenderQueryDetails(h.store, id);
  EXPECT_NE(details.find("plan:"), std::string::npos);

  // Survives a snapshot round-trip.
  std::string path = ::testing::TempDir() + "/cqms_plan_snapshot.log";
  ASSERT_TRUE(storage::SaveSnapshot(h.store, path).ok());
  storage::QueryStore loaded;
  ASSERT_TRUE(storage::LoadSnapshot(&loaded, path).ok());
  EXPECT_EQ(loaded.Get(id)->stats.plan, rec->stats.plan);
}

TEST(PlanCaptureTest, UnionArmsAreMarked) {
  Harness h;
  auto r = h.database.ExecuteSql(
      "SELECT lake FROM WaterTemp UNION SELECT lake FROM WaterSalinity");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->plan.find("union (dedup)"), std::string::npos);
}

class SessionClusterFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    h_ = std::make_unique<Harness>();
    // alice and bob explore temperatures (same skeletons); carol looks
    // up cities (different skeletons).
    for (const char* user : {"alice", "bob"}) {
      for (int i = 0; i < 3; ++i) {
        h_->Log(user, "SELECT * FROM WaterTemp WHERE temp < " +
                          std::to_string(10 + i),
                10 * kMicrosPerSecond);
      }
      h_->clock.Advance(60 * kMicrosPerMinute);
    }
    for (int i = 0; i < 3; ++i) {
      h_->Log("carol", "SELECT city FROM CityLocations WHERE pop > " +
                           std::to_string(1000 * i),
              10 * kMicrosPerSecond);
    }
    sessions_ = miner::IdentifySessions(&h_->store);
  }

  std::unique_ptr<Harness> h_;
  std::vector<miner::Session> sessions_;
};

TEST_F(SessionClusterFixture, SimilarityReflectsSkeletonOverlap) {
  ASSERT_EQ(sessions_.size(), 3u);
  const miner::Session* alice = nullptr;
  const miner::Session* bob = nullptr;
  const miner::Session* carol = nullptr;
  for (const auto& s : sessions_) {
    if (s.user == "alice") alice = &s;
    if (s.user == "bob") bob = &s;
    if (s.user == "carol") carol = &s;
  }
  ASSERT_TRUE(alice && bob && carol);
  EXPECT_DOUBLE_EQ(miner::SessionSimilarity(h_->store, *alice, *bob), 1.0);
  EXPECT_DOUBLE_EQ(miner::SessionSimilarity(h_->store, *alice, *carol), 0.0);
  EXPECT_DOUBLE_EQ(miner::SessionSimilarity(h_->store, *alice, *alice), 1.0);
}

TEST_F(SessionClusterFixture, ClusteringSeparatesPatterns) {
  auto clustering = miner::ClusterSessions(h_->store, sessions_, 0.4);
  EXPECT_EQ(clustering.clusters.size(), 2u);
  // alice and bob share a cluster; carol sits alone.
  int alice_cluster = -1, bob_cluster = -1, carol_cluster = -1;
  for (size_t i = 0; i < sessions_.size(); ++i) {
    int c = clustering.ClusterOfIndex(i);
    if (sessions_[i].user == "alice") alice_cluster = c;
    if (sessions_[i].user == "bob") bob_cluster = c;
    if (sessions_[i].user == "carol") carol_cluster = c;
  }
  EXPECT_EQ(alice_cluster, bob_cluster);
  EXPECT_NE(alice_cluster, carol_cluster);
}

TEST_F(SessionClusterFixture, SimilarUsersFromSharedClusters) {
  auto clustering = miner::ClusterSessions(h_->store, sessions_, 0.4);
  auto peers = miner::SimilarSessionUsers(sessions_, clustering, "alice");
  EXPECT_EQ(peers, (std::vector<std::string>{"bob"}));
  auto carol_peers = miner::SimilarSessionUsers(sessions_, clustering, "carol");
  EXPECT_TRUE(carol_peers.empty());
}

TEST(SessionClusterEdgeTest, EmptyInput) {
  Harness h;
  auto clustering = miner::ClusterSessions(h.store, {}, 0.5);
  EXPECT_TRUE(clustering.clusters.empty());
  EXPECT_EQ(clustering.ClusterOfIndex(0), -1);
}

}  // namespace
}  // namespace cqms
