// Boundary-value coverage for the binary codec primitives the wire
// protocol and durability layer share, plus the frame codec that carries
// them over sockets.

#include "common/binary_codec.h"

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/frame_codec.h"

namespace cqms {
namespace {

// --- varint ----------------------------------------------------------------

TEST(VarintTest, BoundaryValuesRoundTrip) {
  const uint64_t cases[] = {
      0,
      1,
      127,                        // largest 1-byte varint
      128,                        // smallest 2-byte varint
      16383,
      16384,
      (uint64_t{1} << 32) - 1,
      uint64_t{1} << 32,
      (uint64_t{1} << 56) - 1,
      uint64_t{1} << 56,
      std::numeric_limits<uint64_t>::max(),
  };
  for (uint64_t v : cases) {
    BinaryWriter w;
    w.PutVarint(v);
    BinaryReader r(w.data());
    EXPECT_EQ(r.GetVarint(), v) << v;
    EXPECT_TRUE(r.AtEnd()) << v;
  }
}

TEST(VarintTest, EncodedSizes) {
  auto size_of = [](uint64_t v) {
    BinaryWriter w;
    w.PutVarint(v);
    return w.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(16383), 2u);
  EXPECT_EQ(size_of(16384), 3u);
  EXPECT_EQ(size_of(std::numeric_limits<uint64_t>::max()), 10u);
}

TEST(VarintTest, TruncatedDecodeFails) {
  BinaryWriter w;
  w.PutVarint(std::numeric_limits<uint64_t>::max());
  for (size_t keep = 0; keep < w.size(); ++keep) {
    BinaryReader r(std::string_view(w.data()).substr(0, keep));
    r.GetVarint();
    EXPECT_TRUE(r.failed()) << "kept " << keep << " bytes";
    EXPECT_FALSE(r.AtEnd());
  }
}

TEST(VarintTest, AllContinuationBytesFails) {
  // Ten 0x80 bytes: a varint that never terminates within the 64-bit
  // budget must latch failure, not loop or wrap.
  std::string bytes(10, '\x80');
  BinaryReader r(bytes);
  r.GetVarint();
  EXPECT_TRUE(r.failed());
}

TEST(VarintTest, FailureLatches) {
  BinaryWriter w;
  w.PutVarint(5);
  BinaryReader r(w.data());
  r.GetFixed64();  // overreads: 1 byte available
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.GetVarint(), 0u);  // every later read returns zero
  EXPECT_FALSE(r.AtEnd());
}

// --- zigzag ----------------------------------------------------------------

TEST(ZigzagTest, SignBoundariesRoundTrip) {
  const int64_t cases[] = {
      0,
      1,
      -1,
      63,
      64,
      -64,
      -65,
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::min() + 1,
  };
  for (int64_t v : cases) {
    BinaryWriter w;
    w.PutZigzag(v);
    BinaryReader r(w.data());
    EXPECT_EQ(r.GetZigzag(), v) << v;
    EXPECT_TRUE(r.AtEnd()) << v;
  }
}

TEST(ZigzagTest, SmallMagnitudesStaySmall) {
  // The point of zigzag: -1 must not balloon to ten bytes.
  for (int64_t v : {-64, -1, 0, 1, 63}) {
    BinaryWriter w;
    w.PutZigzag(v);
    EXPECT_EQ(w.size(), 1u) << v;
  }
}

// --- strings / fixed-width -------------------------------------------------

TEST(StringTest, EmptyAndBinaryRoundTrip) {
  std::string binary("\x00\xff\x7f\x80\n", 5);
  BinaryWriter w;
  w.PutString("");
  w.PutString(binary);
  BinaryReader r(w.data());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_EQ(r.GetString(), binary);
  EXPECT_TRUE(r.AtEnd());
}

TEST(StringTest, LengthPrefixBeyondBufferFails) {
  BinaryWriter w;
  w.PutVarint(1000);  // length prefix promising bytes that do not exist
  w.PutBytes("abc", 3);
  BinaryReader r(w.data());
  EXPECT_EQ(r.GetStringView(), std::string_view());
  EXPECT_TRUE(r.failed());
}

TEST(FixedTest, RoundTripAndTruncation) {
  BinaryWriter w;
  w.PutFixed32(0xdeadbeef);
  w.PutFixed64(0x0123456789abcdefULL);
  w.PutDouble(-2.5);
  BinaryReader r(w.data());
  EXPECT_EQ(r.GetFixed32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetFixed64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetDouble(), -2.5);
  EXPECT_TRUE(r.AtEnd());

  BinaryReader t(std::string_view(w.data()).substr(0, 3));
  t.GetFixed32();
  EXPECT_TRUE(t.failed());
}

// --- delta-encoded u64 vectors --------------------------------------------

TEST(DeltaU64Test, RoundTripSortedValues) {
  std::vector<uint64_t> values = {0, 1, 1, 100, 1000000,
                                  std::numeric_limits<uint64_t>::max()};
  BinaryWriter w;
  PutDeltaU64s(&w, values);
  BinaryReader r(w.data());
  EXPECT_EQ(GetDeltaU64s(&r), values);
  EXPECT_TRUE(r.AtEnd());
}

TEST(DeltaU64Test, HostileCountRejectedBeforeAllocation) {
  BinaryWriter w;
  w.PutVarint(std::numeric_limits<uint64_t>::max());  // count
  BinaryReader r(w.data());
  EXPECT_TRUE(GetDeltaU64s(&r).empty());
  EXPECT_TRUE(r.failed());
}

// --- crc32 -----------------------------------------------------------------

TEST(Crc32Test, KnownVectorsAndSensitivity) {
  // The standard IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
  EXPECT_NE(Crc32("abc"), Crc32(std::string("abc\0", 4)));
}

// --- frame codec -----------------------------------------------------------

TEST(FrameCodecTest, RoundTripMultipleFrames) {
  std::string stream;
  AppendFrame(&stream, "alpha");
  AppendFrame(&stream, "");
  AppendFrame(&stream, std::string(100000, 'z'));

  FrameDecoder decoder(kDefaultMaxFrameBytes);
  decoder.Feed(stream.data(), stream.size());
  std::string payload;
  ASSERT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kFrame);
  EXPECT_EQ(payload, "alpha");
  ASSERT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kFrame);
  EXPECT_EQ(payload, "");
  ASSERT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kFrame);
  EXPECT_EQ(payload, std::string(100000, 'z'));
  EXPECT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kNeedMore);
}

TEST(FrameCodecTest, ByteByByteFeed) {
  std::string stream;
  AppendFrame(&stream, "drip-fed payload");
  FrameDecoder decoder(kDefaultMaxFrameBytes);
  std::string payload;
  for (size_t i = 0; i + 1 < stream.size(); ++i) {
    decoder.Feed(&stream[i], 1);
    EXPECT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kNeedMore);
  }
  decoder.Feed(&stream[stream.size() - 1], 1);
  ASSERT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kFrame);
  EXPECT_EQ(payload, "drip-fed payload");
}

TEST(FrameCodecTest, CrcFlipIsTerminal) {
  std::string stream;
  AppendFrame(&stream, "payload");
  stream[stream.size() - 1] ^= 0x01;  // corrupt the payload
  AppendFrame(&stream, "after");      // a good frame behind the bad one

  FrameDecoder decoder(kDefaultMaxFrameBytes);
  decoder.Feed(stream.data(), stream.size());
  std::string payload;
  EXPECT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kError);
  EXPECT_EQ(decoder.error().code(), StatusCode::kCorruption);
  // Terminal: the decoder must not resynchronize past corruption.
  EXPECT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kError);
  EXPECT_TRUE(decoder.failed());
}

TEST(FrameCodecTest, OversizedFrameRejectedFromHeaderAlone) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  std::string stream;
  AppendFrame(&stream, std::string(17, 'x'));
  // Feed only the 8-byte header: the length check must fire before any
  // payload arrives (a hostile peer cannot make us buffer the body).
  decoder.Feed(stream.data(), kFrameHeaderBytes);
  std::string payload;
  EXPECT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kError);
  EXPECT_EQ(decoder.error().code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodecTest, MaxSizedFrameAccepted) {
  FrameDecoder decoder(/*max_frame_bytes=*/32);
  std::string stream;
  AppendFrame(&stream, std::string(32, 'y'));
  decoder.Feed(stream.data(), stream.size());
  std::string payload;
  ASSERT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kFrame);
  EXPECT_EQ(payload.size(), 32u);
}

}  // namespace
}  // namespace cqms
