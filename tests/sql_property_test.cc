// Property-style sweeps over a corpus of generated query texts: the
// invariants every sql-layer transformation must preserve.

#include <gtest/gtest.h>

#include "metaquery/similarity.h"
#include "sql/canonical.h"
#include "sql/components.h"
#include "sql/diff.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "storage/record_builder.h"

namespace cqms::sql {
namespace {

// A corpus spanning every construct the grammar supports.
const char* kCorpus[] = {
    "SELECT 1",
    "SELECT 1 + 2 * 3 - -4",
    "SELECT * FROM WaterTemp",
    "SELECT t.* FROM WaterTemp t",
    "SELECT DISTINCT lake FROM WaterTemp",
    "SELECT lake AS l, temp FROM WaterTemp WHERE temp < 18",
    "SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L "
    "WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
    "SELECT * FROM a JOIN b ON a.x = b.x",
    "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x WHERE a.y IS NOT NULL",
    "SELECT * FROM a RIGHT JOIN b ON a.x = b.x",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT city, COUNT(*) AS n FROM t GROUP BY city HAVING COUNT(*) > 5 "
    "ORDER BY n DESC, city LIMIT 10 OFFSET 5",
    "SELECT COUNT(DISTINCT lake), SUM(temp), AVG(temp), MIN(temp), MAX(temp) "
    "FROM WaterTemp",
    "SELECT * FROM t WHERE x IN (1, 2, 3) AND y NOT IN (4, 5)",
    "SELECT * FROM t WHERE x BETWEEN 1 AND 10 AND y NOT BETWEEN 2 AND 3",
    "SELECT * FROM t WHERE name LIKE 'Lake%' AND note NOT LIKE '%tmp%'",
    "SELECT * FROM t WHERE x IS NULL OR y IS NOT NULL",
    "SELECT * FROM t WHERE NOT (a = 1 OR b = 2) AND c <> 3",
    "SELECT * FROM t WHERE x IN (SELECT y FROM u WHERE u.k = t.k)",
    "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)",
    "SELECT (SELECT MAX(x) FROM u) AS best FROM t",
    "SELECT CASE WHEN temp < 10 THEN 'cold' WHEN temp < 25 THEN 'mild' "
    "ELSE 'hot' END FROM WaterTemp",
    "SELECT CASE x WHEN 1 THEN 'one' ELSE 'many' END FROM t",
    "SELECT UPPER(name) || '!' FROM t WHERE LENGTH(name) > 3",
    "SELECT a FROM t UNION SELECT b FROM u UNION ALL SELECT c FROM v",
    "SELECT -temp, +temp, temp % 2 FROM WaterTemp WHERE temp / 2 > 1.5e1",
    "SELECT \"Quoted Name\" FROM \"Quoted Table\"",
    "SELECT x FROM t WHERE s = 'it''s quoted'",
};

class CorpusTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(AllQueries, CorpusTest, ::testing::ValuesIn(kCorpus));

TEST_P(CorpusTest, PrintParsePrintIsAFixpoint) {
  auto first = Parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.status();
  std::string once = PrintStatement(**first);
  auto second = Parse(once);
  ASSERT_TRUE(second.ok()) << second.status() << " for printed: " << once;
  EXPECT_EQ(PrintStatement(**second), once);
}

TEST_P(CorpusTest, CanonicalizationIsIdempotent) {
  auto stmt = Parse(GetParam());
  ASSERT_TRUE(stmt.ok());
  std::string canon1 = CanonicalText(**stmt);
  auto reparsed = Parse(canon1);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << " for: " << canon1;
  EXPECT_EQ(CanonicalText(**reparsed), canon1);
}

TEST_P(CorpusTest, SkeletonReparsesAndKeepsStructure) {
  auto stmt = Parse(GetParam());
  ASSERT_TRUE(stmt.ok());
  // The skeleton replaces constants with '?', which is not re-parseable;
  // it must still be non-empty and stable across canonicalization.
  std::string s1 = CanonicalSkeleton(**stmt);
  std::string s2 = CanonicalSkeleton(*Canonicalize(**stmt));
  EXPECT_FALSE(s1.empty());
  EXPECT_EQ(s1, s2);
}

TEST_P(CorpusTest, CloneIsDeepAndEqual) {
  auto stmt = Parse(GetParam());
  ASSERT_TRUE(stmt.ok());
  auto clone = (*stmt)->Clone();
  EXPECT_EQ(PrintStatement(**stmt), PrintStatement(*clone));
  EXPECT_EQ(Fingerprint(**stmt), Fingerprint(*clone));
}

TEST_P(CorpusTest, ComponentsAreStableUnderReprint) {
  auto stmt = Parse(GetParam());
  ASSERT_TRUE(stmt.ok());
  auto reparsed = Parse(PrintStatement(**stmt));
  ASSERT_TRUE(reparsed.ok());
  QueryComponents a = CollectComponents(**stmt);
  QueryComponents b = CollectComponents(**reparsed);
  EXPECT_EQ(a.tables, b.tables);
  EXPECT_EQ(a.attributes, b.attributes);
  EXPECT_EQ(a.projections, b.projections);
  EXPECT_EQ(a.group_by, b.group_by);
  EXPECT_EQ(a.num_joins, b.num_joins);
  EXPECT_EQ(a.has_subquery, b.has_subquery);
  ASSERT_EQ(a.predicates.size(), b.predicates.size());
  for (size_t i = 0; i < a.predicates.size(); ++i) {
    EXPECT_EQ(a.predicates[i].ToString(), b.predicates[i].ToString());
  }
}

TEST_P(CorpusTest, SelfDiffIsEmptyAndDiffIsSymmetricInSize) {
  auto stmt = Parse(GetParam());
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(DiffQueries(**stmt, **stmt).Identical());
  // Against a fixed reference query, |diff(a,b)| == |diff(b,a)|.
  auto ref = Parse("SELECT * FROM WaterTemp WHERE temp < 18");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(DiffQueries(**stmt, **ref).Distance(),
            DiffQueries(**ref, **stmt).Distance());
}

TEST_P(CorpusTest, SimilarityIsReflexiveSymmetricAndBounded) {
  storage::QueryRecord a = storage::BuildRecordFromText(GetParam(), "u", 0);
  ASSERT_FALSE(a.parse_failed());
  storage::QueryRecord b = storage::BuildRecordFromText(
      "SELECT * FROM WaterTemp WHERE temp < 18", "u", 0);
  double self = metaquery::CombinedSimilarity(a, a);
  EXPECT_NEAR(self, 1.0, 1e-9);
  double ab = metaquery::CombinedSimilarity(a, b);
  double ba = metaquery::CombinedSimilarity(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

TEST_P(CorpusTest, FingerprintAgreesWithCanonicalText) {
  auto stmt = Parse(GetParam());
  ASSERT_TRUE(stmt.ok());
  for (const char* other_text : kCorpus) {
    auto other = Parse(other_text);
    ASSERT_TRUE(other.ok());
    bool same_canon = CanonicalText(**stmt) == CanonicalText(**other);
    bool same_fp = Fingerprint(**stmt) == Fingerprint(**other);
    EXPECT_EQ(same_canon, same_fp) << GetParam() << " vs " << other_text;
  }
}

TEST_P(CorpusTest, PrettyPrinterReparses) {
  auto stmt = Parse(GetParam());
  ASSERT_TRUE(stmt.ok());
  std::string pretty = PrettyPrintStatement(**stmt);
  auto reparsed = Parse(pretty);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\npretty:\n" << pretty;
  EXPECT_EQ(PrintStatement(**reparsed), PrintStatement(**stmt));
}

}  // namespace
}  // namespace cqms::sql
