// Observability tests: the metrics registry primitives (counter /
// gauge / power-of-two histogram semantics, exposition text), the
// leveled logger, the slow-query JSONL log, wire-protocol minor-1
// round-trips (trace bit, trace summary, extended stats) including
// pre-minor-1 payload compatibility, and trace correctness — the
// planner's ExecTrace counters must agree with the response and with
// independent oracle recounts across all four candidate-generator
// paths.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "metaquery/meta_query_planner.h"
#include "metaquery/text_search.h"
#include "net/wire.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "storage/record_builder.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace cqms {
namespace {

using metaquery::CandidateGenerator;
using metaquery::MetaQueryPlanner;
using metaquery::MetaQueryRequest;
using metaquery::MetaQueryResponse;
using testing_util::Harness;

// --- histogram -------------------------------------------------------------

TEST(HistogramTest, EmptyHistogramReportsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(HistogramTest, SingleSampleEveryPercentileIsThatSample) {
  obs::Histogram h;
  h.Record(37);
  // Bucket upper bound for 37 is 63; the clamp to the observed max must
  // bring every percentile back to the real sample.
  EXPECT_EQ(h.Percentile(0), 37u);
  EXPECT_EQ(h.Percentile(50), 37u);
  EXPECT_EQ(h.Percentile(99), 37u);
  EXPECT_EQ(h.Percentile(100), 37u);
  EXPECT_EQ(h.min(), 37u);
  EXPECT_EQ(h.max(), 37u);
  EXPECT_EQ(h.sum(), 37u);
}

TEST(HistogramTest, PercentileClampsBucketBoundToObservedRange) {
  obs::Histogram h;
  // Both land in bucket 3 (nominal upper bound 7); every percentile
  // resolves to that bound clamped into the observed [5, 6] range, so
  // nothing past the real maximum is ever reported.
  h.Record(5);
  h.Record(6);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 6u);
  EXPECT_EQ(h.Percentile(0), 6u);
  EXPECT_EQ(h.Percentile(100), 6u);
}

TEST(HistogramTest, ZeroSamplesLandInBucketZero) {
  obs::Histogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, PercentileWalksBuckets) {
  obs::Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(1);    // bucket 1, bound 1
  for (int i = 0; i < 10; ++i) h.Record(1000);  // bucket 10, bound 1023
  EXPECT_EQ(h.Percentile(50), 1u);
  EXPECT_EQ(h.Percentile(90), 1u);
  // p99 reaches the big-sample bucket; clamped to the observed max.
  EXPECT_EQ(h.Percentile(99), 1000u);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u + 10u * 1000u);
}

TEST(HistogramTest, BucketIndexing) {
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3);
  EXPECT_EQ(obs::Histogram::BucketIndex(~0ull), obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(3), 7u);
}

// --- registry --------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameResolvesToSameSeries) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* a = reg.GetCounter("obs_test_resolve_total");
  obs::Counter* b = reg.GetCounter("obs_test_resolve_total");
  EXPECT_EQ(a, b);
  a->Increment();
  a->Add(2);
  EXPECT_EQ(b->value(), 3u);
}

TEST(MetricsRegistryTest, ExpositionTextCoversEveryKind) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("obs_test_expo_total")->Add(7);
  reg.GetGauge("obs_test_expo_gauge")->Set(-4);
  obs::Histogram* h = reg.GetHistogram("obs_test_expo_micros");
  h->Record(3);
  h->Record(5);

  std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("obs_test_expo_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_gauge -4\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_micros_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_micros_sum 8\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_micros{stat=\"min\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_expo_micros{stat=\"max\"} 5\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, LabeledHistogramSuffixInsertsBeforeBrace) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram* h =
      reg.GetHistogram("obs_test_labeled_micros{stage=\"x\"}");
  h->Record(9);
  std::string text = reg.ExpositionText();
  EXPECT_NE(text.find("obs_test_labeled_micros_count{stage=\"x\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("obs_test_labeled_micros{stage=\"x\",stat=\"max\"} 9\n"),
      std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("obs_test_zzz_total");
  reg.GetCounter("obs_test_aaa_total");
  std::vector<obs::MetricSample> snap = reg.Snapshot();
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].name, snap[i].name);
  }
}

// --- logger ----------------------------------------------------------------

std::vector<std::string>* CapturedLines() {
  static auto* lines = new std::vector<std::string>();
  return lines;
}

void CaptureSink(obs::LogLevel /*level*/, const std::string& line) {
  CapturedLines()->push_back(line);
}

TEST(LogTest, ParseLogLevel) {
  obs::LogLevel level;
  EXPECT_TRUE(obs::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::ParseLogLevel("error", &level));
  EXPECT_EQ(level, obs::LogLevel::kError);
  EXPECT_FALSE(obs::ParseLogLevel("verbose", &level));
}

TEST(LogTest, LevelFiltersAndSinkReceivesFormattedLine) {
  CapturedLines()->clear();
  obs::SetLogSink(CaptureSink);
  obs::SetLogLevel(obs::LogLevel::kWarn);
  CQMS_LOG(kInfo, "dropped %d", 1);
  CQMS_LOG(kWarn, "kept %s", "one");
  CQMS_LOG(kError, "kept %s", "two");
  obs::SetLogSink(nullptr);
  obs::SetLogLevel(obs::LogLevel::kInfo);

  ASSERT_EQ(CapturedLines()->size(), 2u);
  const std::string& warn = (*CapturedLines())[0];
  EXPECT_NE(warn.find(" WARN kept one"), std::string::npos);
  // ISO8601 UTC stamp prefix: "YYYY-MM-DDTHH:MM:SS.mmmZ ".
  EXPECT_EQ(warn[4], '-');
  EXPECT_EQ(warn[10], 'T');
  EXPECT_EQ(warn[23], 'Z');
  EXPECT_NE((*CapturedLines())[1].find(" ERROR kept two"), std::string::npos);
}

// --- slow-query log --------------------------------------------------------

TEST(SlowQueryLogTest, WritesOneJsonObjectPerLine) {
  std::string path = ::testing::TempDir() + "/obs_test_slow.jsonl";
  std::remove(path.c_str());
  obs::SlowQueryLog log;
  ASSERT_TRUE(log.Open(path));
  ASSERT_TRUE(log.is_open());

  obs::ExecTrace trace;
  trace.generator = "full_scan";
  trace.Count("candidates", 12);
  trace.Span("filter_score", 34);
  log.Write("alice \"a\"", "Search", 4567, trace);
  log.Write("bob", "Search", 89, obs::ExecTrace());
  EXPECT_EQ(log.entries_written(), 2u);

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  std::vector<std::string> lines;
  while (std::fgets(buf, sizeof buf, f) != nullptr) lines.emplace_back(buf);
  std::fclose(f);

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"viewer\":\"alice \\\"a\\\"\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"op\":\"Search\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"micros\":4567"), std::string::npos);
  EXPECT_NE(lines[0].find("\"generator\":\"full_scan\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"candidates\":12"), std::string::npos);
  EXPECT_NE(lines[0].find("\"filter_score\":34"), std::string::npos);
  EXPECT_EQ(lines[0].back(), '\n');
  EXPECT_NE(lines[1].find("\"micros\":89"), std::string::npos);
}

TEST(ExecTraceTest, ToJsonPreservesInsertionOrder) {
  obs::ExecTrace trace;
  trace.generator = "lsh_buckets";
  trace.Count("b", 2);
  trace.Count("a", 1);
  trace.Span("s1", 10);
  EXPECT_EQ(trace.ToJson(),
            "{\"generator\":\"lsh_buckets\",\"counters\":{\"b\":2,\"a\":1},"
            "\"spans_micros\":{\"s1\":10}}");
  EXPECT_EQ(trace.CounterOr("a"), 1u);
  EXPECT_EQ(trace.CounterOr("missing", 99), 99u);
}

// --- wire minor-1 round-trips ----------------------------------------------

TEST(WireMinorOneTest, SearchRequestTraceBitRoundTrips) {
  net::SearchRequest req;
  req.viewer = "alice";
  req.spec.keyword = net::KeywordSpec{"lake temp", true};
  req.spec.limit = 5;
  req.spec.want_trace = true;

  BinaryWriter w;
  net::EncodeSearchRequest(&w, req);
  BinaryReader r(w.data());
  net::SearchRequest got;
  ASSERT_TRUE(net::DecodeSearchRequest(&r, &got));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(got.spec.want_trace);
  EXPECT_EQ(got.viewer, "alice");
}

TEST(WireMinorOneTest, PreMinorOneSearchRequestDecodesWithoutTraceBit) {
  net::SearchRequest req;
  req.viewer = "alice";
  req.spec.substring = "GROUP BY";
  req.spec.want_trace = false;

  BinaryWriter w;
  net::EncodeSearchRequest(&w, req);
  // A pre-1.1 client's payload is today's encoding minus the single
  // trailing want_trace byte.
  std::string old_payload(w.data().substr(0, w.data().size() - 1));
  BinaryReader r(old_payload);
  net::SearchRequest got;
  ASSERT_TRUE(net::DecodeSearchRequest(&r, &got));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(got.spec.want_trace);
  ASSERT_TRUE(got.spec.substring.has_value());
  EXPECT_EQ(*got.spec.substring, "GROUP BY");
}

TEST(WireMinorOneTest, SearchResultTraceRoundTrips) {
  net::SearchResult result;
  result.matches.push_back({7, 0.5, 0.9});
  result.generator = 1;
  result.candidates_considered = 42;
  result.trace.emplace();
  result.trace->generator = "lsh_buckets";
  result.trace->counters = {{"candidates", 42}, {"matches", 1}};
  result.trace->spans_micros = {{"rank", 3}};

  BinaryWriter w;
  net::EncodeSearchResult(&w, result);
  BinaryReader r(w.data());
  net::SearchResult got;
  ASSERT_TRUE(net::DecodeSearchResult(&r, &got));
  EXPECT_TRUE(r.AtEnd());
  ASSERT_TRUE(got.trace.has_value());
  EXPECT_EQ(got.trace->generator, "lsh_buckets");
  ASSERT_EQ(got.trace->counters.size(), 2u);
  EXPECT_EQ(got.trace->counters[0].first, "candidates");
  EXPECT_EQ(got.trace->counters[0].second, 42u);
  ASSERT_EQ(got.trace->spans_micros.size(), 1u);
  EXPECT_EQ(got.trace->spans_micros[0].first, "rank");
}

TEST(WireMinorOneTest, PreMinorOneSearchResultDecodesWithoutTrace) {
  net::SearchResult result;
  result.matches.push_back({7, 0.5, 0.9});
  result.candidates_considered = 42;

  BinaryWriter w;
  net::EncodeSearchResult(&w, result);
  // Minus the trailing has-trace bool = the pre-1.1 server's payload.
  std::string old_payload(w.data().substr(0, w.data().size() - 1));
  BinaryReader r(old_payload);
  net::SearchResult got;
  ASSERT_TRUE(net::DecodeSearchResult(&r, &got));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(got.trace.has_value());
  EXPECT_EQ(got.candidates_considered, 42u);
}

TEST(WireMinorOneTest, StatsResultExtendedFieldsRoundTrip) {
  net::StatsResult stats;
  stats.server_version = "test/1";
  stats.store_size = 10;
  stats.durable_read_only = true;
  stats.checkpoint_failure_streak = 3;
  stats.checkpoints_backed_off = 2;
  stats.arena_garbage_bytes = 4096;

  BinaryWriter w;
  net::EncodeStatsResult(&w, stats);
  BinaryReader r(w.data());
  net::StatsResult got;
  ASSERT_TRUE(net::DecodeStatsResult(&r, &got));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(got.durable_read_only);
  EXPECT_EQ(got.checkpoint_failure_streak, 3u);
  EXPECT_EQ(got.checkpoints_backed_off, 2u);
  EXPECT_EQ(got.arena_garbage_bytes, 4096u);
}

TEST(WireMinorOneTest, PreMinorOneStatsResultDecodesToDefaults) {
  // Hand-encode the pre-1.1 StatsResult layout (no trailing durability
  // fields) and run it through today's decoder: the compat contract is
  // that the defaults stand and decoding succeeds.
  BinaryWriter w;
  w.PutString("old/1");
  w.PutVarint(123);  // uptime
  w.PutVarint(1);    // active
  w.PutVarint(2);    // total
  w.PutVarint(0);    // rejected
  w.PutVarint(0);    // protocol errors
  w.PutVarint(50);   // store size
  w.PutVarint(4);    // published seq
  w.PutVarint(0);    // no per-op rows
  BinaryReader r(w.data());
  net::StatsResult got;
  ASSERT_TRUE(net::DecodeStatsResult(&r, &got));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(got.server_version, "old/1");
  EXPECT_EQ(got.store_size, 50u);
  EXPECT_FALSE(got.durable_read_only);
  EXPECT_EQ(got.checkpoint_failure_streak, 0u);
  EXPECT_EQ(got.checkpoints_backed_off, 0u);
  EXPECT_EQ(got.arena_garbage_bytes, 0u);
}

// --- trace correctness vs oracle recounts ----------------------------------

/// Shared seeded log for the generator-path tests.
Harness& TraceLog() {
  static Harness* harness = [] {
    auto* h = new Harness();
    workload::WorkloadOptions options;
    options.num_sessions = 301;  // ~1500 queries: enough for LSH banding
    options.seed = 7;
    workload::RegisterUsers(&h->store, options);
    workload::GenerateLog(h->profiler.get(), &h->store, &h->clock, options);
    return h;
  }();
  return *harness;
}

/// Runs `request` twice — traced and untraced — and checks that the
/// trace agrees with the (identical) response and with itself.
MetaQueryResponse RunTraced(const MetaQueryRequest& request,
                            const std::string& viewer, obs::ExecTrace* trace) {
  Harness& h = TraceLog();
  MetaQueryPlanner planner(&h.store);

  MetaQueryRequest untraced = request;
  untraced.trace = nullptr;
  MetaQueryResponse base = planner.Execute(viewer, untraced);

  MetaQueryRequest traced = request;
  traced.trace = trace;
  MetaQueryResponse resp = planner.Execute(viewer, traced);

  // Tracing must not change results.
  EXPECT_EQ(resp.Ids(), base.Ids());
  EXPECT_EQ(resp.generator, base.generator);
  EXPECT_EQ(resp.candidates_considered, base.candidates_considered);

  // The trace's counters must agree with the response's own accounting.
  EXPECT_EQ(trace->generator,
            metaquery::CandidateGeneratorName(resp.generator));
  EXPECT_EQ(trace->CounterOr("candidates"), resp.candidates_considered);
  EXPECT_EQ(trace->CounterOr("matches"), resp.matches.size());
  EXPECT_GE(trace->CounterOr("matches_prefilter"),
            trace->CounterOr("matches"));
  // Every candidate passed through exactly one visibility resolution,
  // as a cache hit or a miss.
  EXPECT_LE(trace->CounterOr("visibility_cache_hits") +
                trace->CounterOr("visibility_cache_misses"),
            resp.candidates_considered);

  // All four pipeline spans, in execution order.
  EXPECT_EQ(trace->spans.size(), 4u);
  if (trace->spans.size() == 4) {
    EXPECT_EQ(trace->spans[0].first, "resolve_predicates");
    EXPECT_EQ(trace->spans[1].first, "generate_candidates");
    EXPECT_EQ(trace->spans[2].first, "filter_score");
    EXPECT_EQ(trace->spans[3].first, "rank");
  }
  return resp;
}

TEST(TraceCorrectnessTest, PostingIntersectionPath) {
  obs::ExecTrace trace;
  MetaQueryRequest req;
  req.WithKeywords("lake temp", true).InLogOrder();
  MetaQueryResponse resp = RunTraced(req, "user1", &trace);
  EXPECT_EQ(resp.generator, CandidateGenerator::kPostingIntersection);

  // Oracle recount: the legacy keyword entry point returns the same
  // matches in log order; its size is the trace's "matches".
  Harness& h = TraceLog();
  std::vector<storage::QueryId> legacy =
      metaquery::KeywordSearch(h.store, "user1", "lake temp", true);
  EXPECT_EQ(trace.CounterOr("matches"), legacy.size());
  EXPECT_EQ(resp.Ids(), legacy);
}

TEST(TraceCorrectnessTest, LshBucketsPath) {
  Harness& h = TraceLog();
  storage::QueryRecord probe = storage::BuildRecordFromText(
      "SELECT lake, AVG(temp) FROM WaterTemp WHERE temp > 6 GROUP BY lake",
      "user1", 0, storage::SignatureMode::kTransient);

  obs::ExecTrace trace;
  metaquery::CandidateOptions copts;
  copts.lsh_min_log_size = 1;  // force the LSH generator on this log
  MetaQueryRequest req;
  req.SimilarTo(probe, {}, copts).Limit(10);
  MetaQueryResponse resp = RunTraced(req, "user1", &trace);
  EXPECT_EQ(resp.generator, CandidateGenerator::kLshBuckets);

  // Oracle recount: the shared generator must report the same candidate
  // set size the trace recorded.
  metaquery::KnnCandidates cands =
      metaquery::KnnCandidateIds(h.store, probe, copts);
  EXPECT_EQ(cands.source, metaquery::KnnCandidateSource::kLshBuckets);
  EXPECT_EQ(trace.CounterOr("candidates"), cands.ids.size());
}

TEST(TraceCorrectnessTest, TableUnionPath) {
  Harness& h = TraceLog();
  storage::QueryRecord probe = storage::BuildRecordFromText(
      "SELECT * FROM WaterTemp WHERE temp < 14", "user1", 0,
      storage::SignatureMode::kTransient);

  obs::ExecTrace trace;
  metaquery::CandidateOptions copts;
  copts.use_lsh = false;  // exhaustive table-union generator
  MetaQueryRequest req;
  req.SimilarTo(probe, {}, copts).Limit(10);
  MetaQueryResponse resp = RunTraced(req, "user1", &trace);
  EXPECT_EQ(resp.generator, CandidateGenerator::kTableUnion);

  metaquery::KnnCandidates cands =
      metaquery::KnnCandidateIds(h.store, probe, copts);
  EXPECT_EQ(cands.source, metaquery::KnnCandidateSource::kTableUnion);
  EXPECT_EQ(trace.CounterOr("candidates"), cands.ids.size());
}

TEST(TraceCorrectnessTest, FullScanPath) {
  obs::ExecTrace trace;
  MetaQueryRequest req;
  req.WithSubstring("GROUP BY").InLogOrder();
  MetaQueryResponse resp = RunTraced(req, "user1", &trace);
  EXPECT_EQ(resp.generator, CandidateGenerator::kFullScan);

  // Full scan considers every record in the store.
  Harness& h = TraceLog();
  EXPECT_EQ(trace.CounterOr("candidates"), h.store.size());
}

TEST(TraceCorrectnessTest, PlannerRegistrySeriesAdvance) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* queries = reg.GetCounter(
      "cqms_planner_queries_total{generator=\"posting_intersection\"}");
  uint64_t before = queries->value();
  MetaQueryRequest req;
  req.WithKeywords("lake", true);
  Harness& h = TraceLog();
  MetaQueryPlanner planner(&h.store);
  planner.Execute("user1", req);
  EXPECT_EQ(queries->value(), before + 1);
}

}  // namespace
}  // namespace cqms
