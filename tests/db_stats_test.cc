#include "db/stats.h"

#include <gtest/gtest.h>

#include "db/csv.h"
#include "db/database.h"

namespace cqms::db {
namespace {

std::vector<Value> Doubles(std::initializer_list<double> xs) {
  std::vector<Value> out;
  for (double x : xs) out.push_back(Value::Double(x));
  return out;
}

TEST(HistogramTest, EmptyInput) {
  Histogram h = Histogram::Build({});
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.EstimateSelectivity("<", 5), 0);
}

TEST(HistogramTest, ConstantInputIsDegenerate) {
  Histogram h = Histogram::Build(Doubles({4, 4, 4}));
  EXPECT_EQ(h.num_buckets(), 1);
  EXPECT_EQ(h.EstimateSelectivity("<", 5), 1.0);
  EXPECT_EQ(h.EstimateSelectivity("<", 3), 0.0);
  EXPECT_EQ(h.EstimateSelectivity("=", 4), 1.0);
}

TEST(HistogramTest, SelectivityInterpolation) {
  std::vector<Value> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(Value::Int(i));
  Histogram h = Histogram::Build(vals, 16);
  double sel = h.EstimateSelectivity("<", 500);
  EXPECT_NEAR(sel, 0.5, 0.05);
  EXPECT_NEAR(h.EstimateSelectivity(">", 900), 0.1, 0.05);
}

TEST(HistogramTest, DistanceZeroForIdenticalDistributions) {
  auto vals = Doubles({1, 2, 3, 4, 5, 6, 7, 8});
  Histogram a = Histogram::Build(vals);
  Histogram b = Histogram::Build(vals);
  EXPECT_NEAR(a.Distance(b), 0.0, 1e-9);
}

TEST(HistogramTest, DistanceLargeForShiftedDistributions) {
  std::vector<Value> low, high;
  for (int i = 0; i < 100; ++i) {
    low.push_back(Value::Double(i * 0.01));        // [0, 1)
    high.push_back(Value::Double(100 + i * 0.01)); // [100, 101)
  }
  Histogram a = Histogram::Build(low);
  Histogram b = Histogram::Build(high);
  EXPECT_GT(a.Distance(b), 0.9);
}

TEST(HistogramTest, NullsAndStringsIgnored) {
  std::vector<Value> vals = {Value::Null(), Value::String("x"), Value::Int(1),
                             Value::Int(2)};
  Histogram h = Histogram::Build(vals);
  EXPECT_EQ(h.total(), 2u);
}

TEST(TableStatsTest, BasicColumnStats) {
  Table t(TableSchema("m", {{"x", ValueType::kInt}, {"s", ValueType::kString}}));
  ASSERT_TRUE(t.Append({Value::Int(1), Value::String("a")}).ok());
  ASSERT_TRUE(t.Append({Value::Int(2), Value::String("a")}).ok());
  ASSERT_TRUE(t.Append({Value::Null(), Value::String("b")}).ok());
  TableStats stats = ComputeTableStats(t);
  EXPECT_EQ(stats.row_count, 3u);
  ASSERT_EQ(stats.columns.size(), 2u);
  const ColumnStats& x = stats.columns[0];
  EXPECT_EQ(x.nulls, 1u);
  EXPECT_EQ(x.distinct, 2u);
  EXPECT_EQ(x.min_value.AsInt(), 1);
  EXPECT_EQ(x.max_value.AsInt(), 2);
  const ColumnStats& s = stats.columns[1];
  EXPECT_EQ(s.distinct, 2u);
  ASSERT_FALSE(s.top_values.empty());
  EXPECT_EQ(s.top_values[0].first.AsString(), "a");
  EXPECT_EQ(s.top_values[0].second, 2u);
}

TEST(TableStatsTest, DriftDetectsRowCountChange) {
  Table t1(TableSchema("m", {{"x", ValueType::kInt}}));
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(t1.Append({Value::Int(i)}).ok());
  Table t2(TableSchema("m", {{"x", ValueType::kInt}}));
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(t2.Append({Value::Int(i)}).ok());
  TableStats a = ComputeTableStats(t1);
  TableStats b = ComputeTableStats(t2);
  EXPECT_GT(StatsDrift(a, b), 0.4);
  EXPECT_NEAR(StatsDrift(a, a), 0.0, 1e-9);
}

TEST(TableStatsTest, DriftDetectsDistributionShift) {
  Table t1(TableSchema("m", {{"x", ValueType::kDouble}}));
  Table t2(TableSchema("m", {{"x", ValueType::kDouble}}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t1.Append({Value::Double(i * 0.01)}).ok());
    ASSERT_TRUE(t2.Append({Value::Double(50 + i * 0.01)}).ok());
  }
  EXPECT_GT(StatsDrift(ComputeTableStats(t1), ComputeTableStats(t2)), 0.8);
}

TEST(CsvTest, ExportImportRoundTrip) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("src", {{"id", ValueType::kInt},
                                                 {"name", ValueType::kString},
                                                 {"score", ValueType::kDouble}}))
                  .ok());
  ASSERT_TRUE(db.Insert("src", {Value::Int(1), Value::String("alpha, beta"),
                                Value::Double(1.5)})
                  .ok());
  ASSERT_TRUE(db.Insert("src", {Value::Int(2), Value::String("with \"quote\""),
                                Value::Double(2.5)})
                  .ok());
  ASSERT_TRUE(
      db.Insert("src", {Value::Int(3), Value::Null(), Value::Double(3.5)}).ok());

  std::string path = ::testing::TempDir() + "/cqms_csv_test.csv";
  ASSERT_TRUE(ExportCsv(*db.GetTable("src"), path).ok());

  Database db2;
  ASSERT_TRUE(ImportCsv(&db2, "dst", path).ok());
  const Table* dst = db2.GetTable("dst");
  ASSERT_NE(dst, nullptr);
  ASSERT_EQ(dst->num_rows(), 3u);
  EXPECT_EQ(dst->rows()[0][1].AsString(), "alpha, beta");
  EXPECT_EQ(dst->rows()[1][1].AsString(), "with \"quote\"");
  EXPECT_TRUE(dst->rows()[2][1].is_null());
  EXPECT_EQ(dst->schema().columns()[0].type, ValueType::kInt);
  EXPECT_EQ(dst->schema().columns()[2].type, ValueType::kDouble);
}

TEST(CsvTest, MissingFileIsIoError) {
  Database db;
  EXPECT_EQ(ImportCsv(&db, "t", "/nonexistent/x.csv").code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace cqms::db
