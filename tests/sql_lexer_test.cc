#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace cqms::sql {
namespace {

TEST(LexerTest, EmptyInputYieldsEof) {
  auto r = Tokenize("");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].kind, TokenKind::kEof);
}

TEST(LexerTest, KeywordsAreNormalizedToUpperCase) {
  auto r = Tokenize("select Select SELECT sELeCt");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*r)[i].kind, TokenKind::kKeyword);
    EXPECT_EQ((*r)[i].text, "SELECT");
  }
}

TEST(LexerTest, IdentifiersKeepOriginalSpelling) {
  auto r = Tokenize("WaterTemp water_temp _x t1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].text, "WaterTemp");
  EXPECT_EQ((*r)[1].text, "water_temp");
  EXPECT_EQ((*r)[2].text, "_x");
  EXPECT_EQ((*r)[3].text, "t1");
  for (int i = 0; i < 4; ++i) EXPECT_EQ((*r)[i].kind, TokenKind::kIdentifier);
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  auto r = Tokenize("42 3.14 .5 1e3 2.5e-2 7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kInteger);
  EXPECT_EQ((*r)[0].int_value, 42);
  EXPECT_EQ((*r)[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*r)[1].double_value, 3.14);
  EXPECT_EQ((*r)[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*r)[2].double_value, 0.5);
  EXPECT_EQ((*r)[3].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*r)[3].double_value, 1000.0);
  EXPECT_EQ((*r)[4].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*r)[4].double_value, 0.025);
  EXPECT_EQ((*r)[5].kind, TokenKind::kInteger);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto r = Tokenize("'Lake Washington' 'O''Brien'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kString);
  EXPECT_EQ((*r)[0].text, "Lake Washington");
  EXPECT_EQ((*r)[1].text, "O'Brien");
}

TEST(LexerTest, UnterminatedStringIsParseError) {
  auto r = Tokenize("'oops");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, QuotedIdentifier) {
  auto r = Tokenize("\"Water Temp\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*r)[0].text, "Water Temp");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto r = Tokenize(", . ( ) * + - / % = != <> < <= > >= || ;");
  ASSERT_TRUE(r.ok());
  std::vector<TokenKind> expected = {
      TokenKind::kComma, TokenKind::kDot,   TokenKind::kLParen,
      TokenKind::kRParen, TokenKind::kStar,  TokenKind::kPlus,
      TokenKind::kMinus, TokenKind::kSlash, TokenKind::kPercent,
      TokenKind::kEq,    TokenKind::kNeq,   TokenKind::kNeq,
      TokenKind::kLt,    TokenKind::kLe,    TokenKind::kGt,
      TokenKind::kGe,    TokenKind::kConcat, TokenKind::kSemicolon,
      TokenKind::kEof};
  ASSERT_EQ(r->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*r)[i].kind, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, LineAndBlockComments) {
  auto r = Tokenize("SELECT -- this is a comment\n 1 /* block\n comment */ + 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 5u);  // SELECT 1 + 2 EOF
  EXPECT_EQ((*r)[0].text, "SELECT");
  EXPECT_EQ((*r)[1].int_value, 1);
  EXPECT_EQ((*r)[2].kind, TokenKind::kPlus);
  EXPECT_EQ((*r)[3].int_value, 2);
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  auto r = Tokenize("SELECT /* oops");
  EXPECT_FALSE(r.ok());
}

TEST(LexerTest, TokenOffsetsAreByteAccurate) {
  auto r = Tokenize("SELECT temp");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].offset, 0u);
  EXPECT_EQ((*r)[0].length, 6u);
  EXPECT_EQ((*r)[1].offset, 7u);
  EXPECT_EQ((*r)[1].length, 4u);
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  auto r = Tokenize("SELECT #");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, AggregateNamesAreKeywords) {
  auto r = Tokenize("count SUM avg MIN max");
  ASSERT_TRUE(r.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*r)[i].kind, TokenKind::kKeyword) << i;
  }
}

}  // namespace
}  // namespace cqms::sql
