#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/binary_codec.h"
#include "core/cqms.h"
#include "storage/durable_store.h"
#include "storage/fault_env.h"
#include "storage/wal.h"
#include "test_util.h"

namespace cqms::storage {
namespace {

using testing_util::Harness;

/// Small lake tables keep each crash-loop iteration (two Harness
/// constructions) cheap; the fingerprint below is row-count independent.
constexpr size_t kRows = 8;

/// Every store in the fault tests lives at this path inside a
/// FaultInjectingEnv — a private in-memory disk per test.
const char kDir[] = "/db";

const char* KindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIoError: return "io_error";
    case FaultKind::kEnospc: return "enospc";
    case FaultKind::kShortWrite: return "short_write";
    case FaultKind::kCrash: return "crash";
  }
  return "?";
}

DurabilityOptions FaultOptions(FaultInjectingEnv* env) {
  DurabilityOptions options;
  options.env = env;
  // Power-loss recovery is only promised for synced records; the
  // acked-prefix invariant below is exact under this mode.
  options.fsync_each_record = true;
  return options;
}

// --- the scripted workload -------------------------------------------------

constexpr int kNumSteps = 24;

bool IsCheckpointStep(int step) { return step == 5 || step == 16; }

/// Applies workload step `step` to `h` (and checkpoints through
/// `durable` on checkpoint steps; the model run passes null and skips
/// them). Returns whether the step's durable effect succeeded — for
/// mutations that is always true (they apply in memory regardless), for
/// checkpoints it is the Checkpoint() status.
bool ApplyStep(Harness* h, DurableStore* durable, int step,
               std::vector<QueryId>* ids) {
  QueryStore& store = h->store;
  switch (step) {
    case 0: store.acl().AddUser("alice", {"oceans"}); return true;
    case 1: store.acl().AddUser("bob", {"lakes"}); return true;
    case 2:
      ids->push_back(h->Log("alice", "SELECT temp FROM WaterTemp WHERE temp < 18"));
      return true;
    case 3:
      ids->push_back(h->Log("bob", "SELECT * FROM CityLocations"));
      return true;
    case 4:
      ids->push_back(h->Log("alice", "SELEKT not sql"));  // parse failure, still logged
      return true;
    case 5:
    case 16:
      return durable == nullptr ? true : durable->Checkpoint().ok();
    case 6:
      return store
          .RewriteQueryText((*ids)[1],
                            "SELECT city FROM CityLocations WHERE city = 'oslo'")
          .ok();
    case 7: {
      Annotation note;
      note.author = "bob";
      note.timestamp = 42;
      note.text = "checked against the buoy feed";
      return store.Annotate((*ids)[1], note).ok();
    }
    // Flag steps are ordered so no prefix ever reverts to an earlier
    // one exactly — every fp[k] below stays unique (FindPrefix relies
    // on it to attribute a recovered image to one workload position).
    case 8: return store.AddFlag((*ids)[0], kFlagStatsStale).ok();
    case 9: return store.AddFlag((*ids)[0], kFlagRepaired).ok();
    case 10: return store.ClearFlag((*ids)[0], kFlagStatsStale).ok();
    case 11: return store.SetSession((*ids)[0], 3).ok();
    case 12: return store.SetQuality((*ids)[0], 0.8).ok();
    case 13:
      return store.acl()
          .SetVisibility((*ids)[0], "alice", "alice", Visibility::kPrivate)
          .ok();
    case 14:
      ids->push_back(h->Log("bob", "SELECT city FROM CityLocations"));
      return true;
    case 15: return store.Delete((*ids)[2], "alice").ok();
    case 17:
      ids->push_back(h->Log("alice", "SELECT temp FROM WaterTemp"));
      return true;
    case 18: return store.AddFlag((*ids)[3], kFlagStatsStale).ok();
    case 19: {
      Annotation note;
      note.author = "alice";
      note.timestamp = 77;
      note.text = "cold-water sites only";
      note.fragment = "temp < 18";
      return store.Annotate((*ids)[0], note).ok();
    }
    case 20: return store.SetQuality((*ids)[1], 0.9).ok();
    case 21:
      ids->push_back(h->Log("bob", "SELECT * FROM WaterTemp"));
      return true;
    case 22:
      return store.acl()
          .SetVisibility((*ids)[1], "bob", "bob", Visibility::kPublic)
          .ok();
    case 23: return store.SetSession((*ids)[3], 4).ok();
  }
  ADD_FAILURE() << "no such step " << step;
  return false;
}

/// A deterministic digest of everything durability must preserve.
/// Volatile fields (runtime stats carry wall-clock micros) are
/// deliberately excluded, so the digest is identical across reruns and
/// between an original store and its recovered twin.
std::string Fingerprint(const QueryStore& store) {
  std::ostringstream out;
  for (const QueryRecord& r : store.records()) {
    out << r.id << '|' << r.text << '|' << r.user << '|' << r.timestamp << '|'
        << r.session_id << '|' << r.flags << '|' << r.quality << '|'
        << r.parse_failed() << '|' << r.fingerprint << '|'
        << static_cast<int>(store.acl().GetVisibility(r.id));
    for (const Annotation& a : r.annotations) {
      out << '|' << a.author << '|' << a.timestamp << '|' << a.text << '|'
          << a.fragment;
    }
    out << '\n';
  }
  out << "--acl--\n";
  for (const auto& [user, groups] : store.acl().memberships()) {
    out << user;
    for (const std::string& g : groups) out << '|' << g;
    out << '\n';
  }
  return out.str();
}

/// fingerprints[k] = the store after the first k workload steps.
std::vector<std::string> BuildModel() {
  std::vector<std::string> fingerprints;
  Harness h(kRows);
  std::vector<QueryId> ids;
  fingerprints.push_back(Fingerprint(h.store));
  for (int step = 0; step < kNumSteps; ++step) {
    ApplyStep(&h, nullptr, step, &ids);
    fingerprints.push_back(Fingerprint(h.store));
    // Guard the FindPrefix contract: every mutation must move the
    // digest (only checkpoint steps may leave it unchanged).
    if (!IsCheckpointStep(step)) {
      EXPECT_NE(fingerprints[step + 1], fingerprints[step])
          << "step " << step << " left no durable trace";
    }
  }
  return fingerprints;
}

/// Largest k with fingerprints[k] == fp, or -1: which workload prefix a
/// recovered store corresponds to. Largest, because checkpoint steps do
/// not change the store, so fp[k] == fp[k+1] across them — and a
/// recovered image reached through a checkpoint legitimately counts as
/// the later position. All mutation steps have unique fingerprints.
int FindPrefix(const std::vector<std::string>& fingerprints,
               const std::string& fp) {
  for (size_t k = fingerprints.size(); k-- > 0;) {
    if (fingerprints[k] == fp) return static_cast<int>(k);
  }
  return -1;
}

struct RunResult {
  Status open_status;
  bool opened = false;
  /// Steps [0, acked_steps) are guaranteed recoverable: after each one
  /// either the WAL was clean (every frame synced) or a checkpoint had
  /// just captured the whole store.
  int acked_steps = 0;
};

/// Runs the scripted workload against `dir` inside `env`. Mutations
/// always apply in memory; `acked_steps` advances only while the disk
/// keeps confirming them.
RunResult RunWorkload(FaultInjectingEnv* env, const std::string& dir) {
  RunResult result;
  Harness h(kRows);
  DurableStore durable(&h.store, dir, FaultOptions(env));
  result.open_status = durable.Open();
  if (!result.open_status.ok()) return result;
  result.opened = true;
  std::vector<QueryId> ids;
  for (int step = 0; step < kNumSteps; ++step) {
    bool step_ok = ApplyStep(&h, &durable, step, &ids);
    if (IsCheckpointStep(step)) {
      // A successful checkpoint snapshots the in-memory store wholesale,
      // so everything up to here is durable even after earlier failures.
      if (step_ok) result.acked_steps = step + 1;
    } else if (durable.wal_error().ok()) {
      result.acked_steps = step + 1;
    }
  }
  return result;
}

/// Opens the store from whatever `env` currently holds and checks the
/// two core invariants: recovery is clean, and the recovered state is a
/// workload prefix no shorter than the acknowledged one. Then proves a
/// checkpoint repairs the installation (and a further reopen agrees).
void ExpectRecoversToPrefix(FaultInjectingEnv* env,
                            const std::vector<std::string>& fingerprints,
                            int acked_steps, const std::string& context) {
  Harness h(kRows);
  DurableStore durable(&h.store, kDir, FaultOptions(env));
  Status open = durable.Open();
  ASSERT_TRUE(open.ok()) << context << ": recovery failed: " << open.ToString();
  const std::string fp = Fingerprint(h.store);
  const int k = FindPrefix(fingerprints, fp);
  ASSERT_GE(k, 0) << context << ": recovered state is not a workload prefix";
  EXPECT_GE(k, acked_steps)
      << context << ": lost an acknowledged mutation (recovered prefix " << k
      << ", acknowledged " << acked_steps << ")";

  // A checkpoint from the recovered state must always succeed (the WAL
  // may have latched during replay-era faults; this is the repair) and
  // the repaired installation must reopen to the same state.
  Status repair = durable.Checkpoint();
  ASSERT_TRUE(repair.ok()) << context << ": post-recovery checkpoint failed: "
                           << repair.ToString();
  EXPECT_TRUE(durable.wal_error().ok()) << context;
}

// --- the crash loop --------------------------------------------------------

TEST(CrashLoopTest, CleanRunIsFullyAckedAndRecoversExactly) {
  const std::vector<std::string> fingerprints = BuildModel();
  FaultInjectingEnv env;
  RunResult clean = RunWorkload(&env, kDir);
  ASSERT_TRUE(clean.open_status.ok());
  EXPECT_EQ(clean.acked_steps, kNumSteps);
  // The workload exercises hundreds of distinct fault points.
  EXPECT_GT(env.op_count(), 100u);

  env.Recover(/*power_loss=*/true);
  Harness h(kRows);
  DurableStore durable(&h.store, kDir, FaultOptions(&env));
  ASSERT_TRUE(durable.Open().ok());
  EXPECT_EQ(Fingerprint(h.store), fingerprints[kNumSteps]);
  EXPECT_FALSE(durable.recovered_from_fallback());
}

TEST(CrashLoopTest, EveryOpSurvivesInjectedErrorsAndCrashes) {
  const std::vector<std::string> fingerprints = BuildModel();
  uint64_t total_ops;
  {
    FaultInjectingEnv env;
    RunResult clean = RunWorkload(&env, kDir);
    ASSERT_TRUE(clean.open_status.ok());
    total_ops = env.op_count();
  }
  for (FaultKind kind :
       {FaultKind::kIoError, FaultKind::kShortWrite, FaultKind::kCrash}) {
    for (uint64_t op = 0; op < total_ops; ++op) {
      FaultInjectingEnv env;
      env.InjectAt(op, kind);
      RunResult run = RunWorkload(&env, kDir);
      // The fault may have hit Open itself (e.g. the initial mkdir);
      // nothing was acknowledged then, but the error must be typed.
      if (!run.opened) {
        EXPECT_FALSE(run.open_status.message().empty());
      }
      env.Recover(/*power_loss=*/true);
      const std::string context = std::string("fault ") + KindName(kind) +
                                  " at op " + std::to_string(op);
      ExpectRecoversToPrefix(&env, fingerprints,
                             run.opened ? run.acked_steps : 0, context);
      if (HasFatalFailure()) return;  // one diagnosed fault point is enough
    }
  }
}

TEST(CrashLoopTest, SeededRandomizedMultiFaultLoop) {
  int iterations = 60;
  if (const char* from_env = std::getenv("CQMS_CRASH_LOOP_ITERS")) {
    iterations = std::atoi(from_env);
  }
  const std::vector<std::string> fingerprints = BuildModel();
  uint64_t total_ops;
  {
    FaultInjectingEnv env;
    RunResult clean = RunWorkload(&env, kDir);
    ASSERT_TRUE(clean.open_status.ok());
    total_ops = env.op_count();
  }
  constexpr FaultKind kKinds[] = {FaultKind::kIoError, FaultKind::kEnospc,
                                  FaultKind::kShortWrite, FaultKind::kCrash};
  std::mt19937 rng(0xC0FFEE);
  for (int iter = 0; iter < iterations; ++iter) {
    FaultInjectingEnv env;
    std::string context = "iteration " + std::to_string(iter) + ":";
    const int fault_count = 1 + static_cast<int>(rng() % 3);
    for (int f = 0; f < fault_count; ++f) {
      const uint64_t op = rng() % total_ops;
      const FaultKind kind = kKinds[rng() % 4];
      env.InjectAt(op, kind);
      context += std::string(" ") + KindName(kind) + "@" + std::to_string(op);
    }
    RunResult run = RunWorkload(&env, kDir);
    env.Recover(/*power_loss=*/(rng() % 2) == 0);
    ExpectRecoversToPrefix(&env, fingerprints,
                           run.opened ? run.acked_steps : 0, context);
    if (HasFatalFailure()) return;
  }
}

TEST(CrashLoopTest, FaultsDuringRecoveryNeverCrashAndAreTyped) {
  const std::vector<std::string> fingerprints = BuildModel();
  FaultInjectingEnv env;
  RunResult clean = RunWorkload(&env, kDir);
  ASSERT_TRUE(clean.open_status.ok());

  // Count the ops a clean recovery performs.
  env.Recover(/*power_loss=*/false);
  uint64_t recovery_ops;
  {
    Harness h(kRows);
    DurableStore durable(&h.store, kDir, FaultOptions(&env));
    ASSERT_TRUE(durable.Open().ok());
    recovery_ops = env.op_count();
  }
  ASSERT_GT(recovery_ops, 5u);

  for (FaultKind kind : {FaultKind::kIoError, FaultKind::kCrash}) {
    for (uint64_t op = 0; op < recovery_ops; ++op) {
      env.Recover(/*power_loss=*/false);  // same disk, fresh fault space
      env.InjectAt(op, kind);
      Harness h(kRows);
      DurableStore durable(&h.store, kDir, FaultOptions(&env));
      Status open = durable.Open();
      if (open.ok()) {
        // The fault hit a non-fatal op (the tmp sweep, a skipped-frame
        // read...): recovery must still be complete.
        EXPECT_EQ(Fingerprint(h.store), fingerprints[kNumSteps])
            << KindName(kind) << " at recovery op " << op;
      } else {
        // Diagnosable, never a crash or a silent partial store serve.
        EXPECT_FALSE(open.message().empty());
      }
    }
  }

  // And with no fault armed the image still opens in full.
  env.Recover(/*power_loss=*/false);
  Harness h(kRows);
  DurableStore durable(&h.store, kDir, FaultOptions(&env));
  ASSERT_TRUE(durable.Open().ok());
  EXPECT_EQ(Fingerprint(h.store), fingerprints[kNumSteps]);
}

// --- degradation paths -----------------------------------------------------

TEST(DegradationTest, EnospcLatchesReadOnlyAndHealsOnCheckpoint) {
  FaultInjectingEnv env;
  Harness h(kRows);
  DurableStore durable(&h.store, kDir, FaultOptions(&env));
  ASSERT_TRUE(durable.Open().ok());
  std::vector<QueryId> ids;
  for (int step = 0; step <= 4; ++step) ApplyStep(&h, &durable, step, &ids);
  ASSERT_TRUE(durable.wal_error().ok());

  // The disk fills. Mutations keep applying in memory — degraded but
  // serving — while the WAL latches a typed ENOSPC.
  env.FailAllFrom(env.op_count(), FaultKind::kEnospc);
  const size_t size_before = h.store.size();
  for (int step = 6; step <= 15; ++step) ApplyStep(&h, &durable, step, &ids);
  EXPECT_GT(h.store.size(), size_before);
  EXPECT_TRUE(durable.read_only());
  EXPECT_EQ(durable.wal_error().code(), StatusCode::kResourceExhausted);

  // A latched error makes MaybeCheckpoint due regardless of thresholds;
  // on the full disk it fails typed, then backs off instead of
  // re-encoding a snapshot every cycle.
  Status first = durable.MaybeCheckpoint();
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(durable.checkpoint_failure_streak(), 1u);
  EXPECT_EQ(durable.checkpoint_backoff_remaining(), 1u);
  Status backed_off = durable.MaybeCheckpoint();
  EXPECT_FALSE(backed_off.ok());
  EXPECT_EQ(durable.checkpoints_backed_off(), 1u);
  EXPECT_EQ(durable.checkpoint_backoff_remaining(), 0u);
  // Second live attempt fails again: the streak grows, the skip doubles.
  Status second = durable.MaybeCheckpoint();
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(durable.checkpoint_failure_streak(), 2u);
  EXPECT_EQ(durable.checkpoint_backoff_remaining(), 2u);

  // Space returns: the next live attempt repairs everything.
  env.ClearFaults();
  (void)durable.MaybeCheckpoint();  // consumes a backed-off call
  (void)durable.MaybeCheckpoint();  // consumes the other
  bool checkpointed = false;
  Status healed = durable.MaybeCheckpoint(&checkpointed);
  EXPECT_TRUE(healed.ok()) << healed.ToString();
  EXPECT_TRUE(checkpointed);
  EXPECT_FALSE(durable.read_only());
  EXPECT_EQ(durable.checkpoint_failure_streak(), 0u);

  // Power loss now: the checkpoint made the whole degraded-era state
  // durable.
  const std::string expect = Fingerprint(h.store);
  env.Recover(/*power_loss=*/true);
  Harness h2(kRows);
  DurableStore reopened(&h2.store, kDir, FaultOptions(&env));
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(Fingerprint(h2.store), expect);
}

TEST(DegradationTest, BitRotInNewestSnapshotFallsBackWithZeroLoss) {
  const std::vector<std::string> fingerprints = BuildModel();
  FaultInjectingEnv env;
  RunResult clean = RunWorkload(&env, kDir);
  ASSERT_TRUE(clean.open_status.ok());
  const std::string snapshot = std::string(kDir) + "/snapshot.cqms";
  const std::string prev = std::string(kDir) + "/snapshot.cqms.1";
  ASSERT_TRUE(env.FileExists(snapshot));
  ASSERT_TRUE(env.FileExists(prev));  // two checkpoints ran

  std::string bytes;
  ASSERT_TRUE(env.ReadBack(snapshot, &bytes).ok());
  ASSERT_TRUE(env.CorruptFile(snapshot, bytes.size() / 2).ok());

  env.Recover(/*power_loss=*/false);
  {
    Harness h(kRows);
    DurableStore durable(&h.store, kDir, FaultOptions(&env));
    Status open = durable.Open();
    ASSERT_TRUE(open.ok()) << open.ToString();
    EXPECT_TRUE(durable.recovered_from_fallback());
    // The previous snapshot plus the longer two-log replay reconstructs
    // everything — a single bad sector costs nothing.
    EXPECT_EQ(Fingerprint(h.store), fingerprints[kNumSteps]);
  }

  // Both generations rotten: recovery must refuse with a typed
  // corruption status, not crash and not serve a partial store silently.
  std::string prev_bytes;
  ASSERT_TRUE(env.ReadBack(prev, &prev_bytes).ok());
  ASSERT_TRUE(env.CorruptFile(prev, prev_bytes.size() / 2).ok());
  env.Recover(/*power_loss=*/false);
  Harness h2(kRows);
  DurableStore durable2(&h2.store, kDir, FaultOptions(&env));
  Status open = durable2.Open();
  EXPECT_EQ(open.code(), StatusCode::kCorruption);
  EXPECT_FALSE(open.message().empty());
}

TEST(DegradationTest, StaleTmpFilesAreSweptOnOpen) {
  FaultInjectingEnv env;
  RunResult clean = RunWorkload(&env, kDir);
  ASSERT_TRUE(clean.open_status.ok());

  // A crash mid-save strands the tmp file; plant one.
  const std::string tmp = std::string(kDir) + "/snapshot.cqms.tmp";
  {
    std::unique_ptr<WritableFile> out;
    ASSERT_TRUE(env.NewWritableFile(tmp, Env::WriteMode::kTruncate, &out).ok());
    ASSERT_TRUE(out->Append("half a snapshot").ok());
    ASSERT_TRUE(out->Close().ok());
  }
  ASSERT_TRUE(env.FileExists(tmp));

  env.Recover(/*power_loss=*/false);
  Harness h(kRows);
  DurableStore durable(&h.store, kDir, FaultOptions(&env));
  ASSERT_TRUE(durable.Open().ok());
  EXPECT_FALSE(env.FileExists(tmp));
}

// --- misuse and hostile-input paths (real POSIX env) -----------------------

std::string PosixTempDir(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DurableStoreMisuseTest, DoubleOpenReturnsStatusNotAbort) {
  std::string dir = PosixTempDir("cqms_fault_double_open");
  std::filesystem::remove_all(dir);
  Harness h(kRows);
  DurableStore durable(&h.store, dir);
  ASSERT_TRUE(durable.Open().ok());
  Status again = durable.Open();
  EXPECT_EQ(again.code(), StatusCode::kInternal);
  EXPECT_FALSE(again.message().empty());
}

TEST(DurableStoreMisuseTest, OpenOnAFilePathReturnsStatusNotAbort) {
  std::string path = PosixTempDir("cqms_fault_not_a_dir");
  std::filesystem::remove_all(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is a file, not a directory";
  }
  Harness h(kRows);
  DurableStore durable(&h.store, path);
  Status open = durable.Open();
  EXPECT_FALSE(open.ok());
  EXPECT_FALSE(open.message().empty());
}

TEST(DurableStoreMisuseTest, CheckpointAfterDirectoryVanishesReturnsStatus) {
  std::string dir = PosixTempDir("cqms_fault_vanished");
  std::filesystem::remove_all(dir);
  Harness h(kRows);
  DurabilityOptions options;
  options.checkpoint_wal_records = 1;  // every MaybeCheckpoint is due
  DurableStore durable(&h.store, dir, options);
  ASSERT_TRUE(durable.Open().ok());
  h.Log("alice", "SELECT temp FROM WaterTemp");
  std::filesystem::remove_all(dir);
  Status s = durable.Checkpoint();
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
  // And the pacing machinery reports it instead of hammering the path.
  Status maybe = durable.MaybeCheckpoint();
  EXPECT_FALSE(maybe.ok());
  EXPECT_GE(durable.checkpoint_failure_streak(), 1u);
}

TEST(WalForwardCompatTest, UnknownRecordTagIsTypedCorruption) {
  std::string dir = PosixTempDir("cqms_fault_future_tag");
  std::filesystem::remove_all(dir);
  {
    Harness h(kRows);
    DurableStore durable(&h.store, dir);
    ASSERT_TRUE(durable.Open().ok());
    h.Log("alice", "SELECT temp FROM WaterTemp");  // sequence 1
  }
  // A future build wrote a record type this build does not know: a
  // well-formed frame (valid length and CRC) whose op tag is 200.
  {
    BinaryWriter payload;
    payload.PutVarint(2);  // sequence
    payload.PutU8(200);    // the unknown tag
    BinaryWriter frame;
    frame.PutFixed32(static_cast<uint32_t>(payload.data().size()));
    frame.PutFixed32(Crc32(payload.data()));
    frame.PutBytes(payload.data().data(), payload.data().size());
    std::ofstream out(dir + "/wal.log", std::ios::binary | std::ios::app);
    out.write(frame.data().data(),
              static_cast<std::streamsize>(frame.data().size()));
  }
  Harness h2(kRows);
  DurableStore durable(&h2.store, dir);
  Status open = durable.Open();
  EXPECT_EQ(open.code(), StatusCode::kCorruption);
  EXPECT_NE(open.message().find("unknown WAL record type"), std::string::npos)
      << open.ToString();
}

}  // namespace
}  // namespace cqms::storage
