#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "assist/assisted_composer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace cqms::assist {
namespace {

using storage::QueryId;
using testing_util::Harness;

/// Shared setup: a log where WaterSalinity strongly co-occurs with
/// WaterTemp while CityLocations is globally more popular — the paper's
/// context-aware completion scenario (§2.3).
class AssistFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    h_ = std::make_unique<Harness>();
    h_->store.acl().AddUser("alice", {"lab"});
    for (int i = 0; i < 12; ++i) {
      h_->Log("alice",
              "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
              "WHERE S.loc_x = T.loc_x AND T.temp < " + std::to_string(12 + i));
    }
    for (int i = 0; i < 25; ++i) {
      h_->Log("alice", "SELECT city FROM CityLocations WHERE pop > " +
                           std::to_string((i + 1) * 10000));
    }
    miner::QueryMinerOptions opts;
    opts.association.min_support = 0.02;
    opts.association.min_confidence = 0.3;
    miner_ = std::make_unique<miner::QueryMiner>(&h_->store, &h_->clock, opts);
    miner_->RunAll();
    composer_ = std::make_unique<AssistedComposer>(&h_->store, &h_->database,
                                                   miner_.get());
  }

  std::unique_ptr<Harness> h_;
  std::unique_ptr<miner::QueryMiner> miner_;
  std::unique_ptr<AssistedComposer> composer_;
};

TEST(ClauseInferenceTest, RecognizesClauses) {
  EXPECT_EQ(InferClause(""), ClauseContext::kStart);
  EXPECT_EQ(InferClause("SELECT x"), ClauseContext::kSelect);
  EXPECT_EQ(InferClause("SELECT x FROM "), ClauseContext::kFrom);
  EXPECT_EQ(InferClause("SELECT x FROM t WHERE "), ClauseContext::kWhere);
  EXPECT_EQ(InferClause("SELECT x FROM t JOIN u ON "), ClauseContext::kWhere);
  EXPECT_EQ(InferClause("SELECT x FROM t GROUP BY "), ClauseContext::kGroupBy);
  EXPECT_EQ(InferClause("SELECT x FROM t ORDER BY "), ClauseContext::kOrderBy);
  EXPECT_EQ(InferClause("SELECT x FROM t LIMIT "), ClauseContext::kOther);
}

TEST_F(AssistFixture, ContextAwareTableCompletion) {
  // The paper's example: after WaterSalinity, WaterTemp must outrank the
  // globally-more-popular CityLocations.
  auto response = composer_->Assist("alice", "SELECT * FROM WaterSalinity, ");
  ASSERT_FALSE(response.completions.empty());
  const CompletionSuggestion& top = response.completions[0];
  EXPECT_EQ(top.kind, CompletionSuggestion::Kind::kTable);
  EXPECT_EQ(top.text, "watertemp");
  // CityLocations appears later (popularity), not first.
  bool saw_cities = false;
  for (size_t i = 1; i < response.completions.size(); ++i) {
    if (response.completions[i].text == "citylocations") saw_cities = true;
  }
  EXPECT_TRUE(saw_cities);
}

TEST_F(AssistFixture, GlobalPopularityWithoutContext) {
  // With an empty FROM, popularity ranks CityLocations first.
  auto response = composer_->Assist("alice", "SELECT * FROM ");
  ASSERT_FALSE(response.completions.empty());
  EXPECT_EQ(response.completions[0].text, "citylocations");
}

TEST_F(AssistFixture, PrefixFiltersTableCompletion) {
  auto response = composer_->Assist("alice", "SELECT * FROM Wat");
  ASSERT_FALSE(response.completions.empty());
  for (const auto& c : response.completions) {
    if (c.kind == CompletionSuggestion::Kind::kTable) {
      EXPECT_EQ(c.text.rfind("wat", 0), 0u) << c.text;
    }
  }
}

TEST_F(AssistFixture, ColumnCompletionInWhere) {
  auto response =
      composer_->Assist("alice", "SELECT * FROM WaterTemp WHERE te");
  bool found_temp = false;
  for (const auto& c : response.completions) {
    if (c.kind == CompletionSuggestion::Kind::kColumn && c.text == "temp") {
      found_temp = true;
    }
  }
  EXPECT_TRUE(found_temp);
}

TEST_F(AssistFixture, PredicateSuggestionsFromRules) {
  auto response =
      composer_->Assist("alice", "SELECT * FROM WaterSalinity, WaterTemp WHERE ");
  bool found_predicate = false;
  for (const auto& c : response.completions) {
    if (c.kind == CompletionSuggestion::Kind::kPredicate) found_predicate = true;
  }
  EXPECT_TRUE(found_predicate);
}

TEST_F(AssistFixture, KeywordCompletionMidWord) {
  auto response = composer_->Assist("alice", "SELECT * FR");
  bool found_from = false;
  for (const auto& c : response.completions) {
    if (c.kind == CompletionSuggestion::Kind::kKeyword && c.text == "FROM") {
      found_from = true;
    }
  }
  EXPECT_TRUE(found_from);
}

TEST_F(AssistFixture, EmptyTextSuggestsSelect) {
  auto response = composer_->Assist("alice", "");
  ASSERT_FALSE(response.completions.empty());
  EXPECT_EQ(response.completions[0].text, "SELECT");
}

TEST_F(AssistFixture, SpellCheckCorrectsTableAndColumn) {
  CorrectionEngine engine(&h_->store, &h_->database);
  auto corrections =
      engine.CorrectIdentifiers("SELECT tem FROM WatrTemp WHERE temq < 5");
  ASSERT_GE(corrections.size(), 2u);
  bool fixed_table = false, fixed_column = false;
  for (const auto& c : corrections) {
    if (c.original == "WatrTemp" && c.replacement == "watertemp") fixed_table = true;
    if ((c.original == "temq" || c.original == "tem") && c.replacement == "temp") {
      fixed_column = true;
    }
  }
  EXPECT_TRUE(fixed_table);
  EXPECT_TRUE(fixed_column);
}

TEST_F(AssistFixture, SpellCheckLeavesAliasesAlone) {
  CorrectionEngine engine(&h_->store, &h_->database);
  auto corrections = engine.CorrectIdentifiers(
      "SELECT T.temp FROM WaterTemp T WHERE T.temp < 5");
  EXPECT_TRUE(corrections.empty());
}

TEST_F(AssistFixture, AutoCorrectSplicesReplacements) {
  CorrectionEngine engine(&h_->store, &h_->database);
  auto fixed = engine.AutoCorrect("SELECT temp FROM WatrTemp WHERE temp < 5");
  ASSERT_TRUE(fixed.ok()) << fixed.status();
  EXPECT_EQ(*fixed, "SELECT temp FROM watertemp WHERE temp < 5");
  EXPECT_TRUE(h_->database.ExecuteSql(*fixed).ok());
  // Nothing to fix -> NotFound.
  EXPECT_FALSE(engine.AutoCorrect("SELECT temp FROM WaterTemp").ok());
}

TEST_F(AssistFixture, PredicateRelaxationForEmptyResults) {
  // The user picks an impossible threshold; logged queries used sane
  // ones. The engine proposes the popular constant.
  auto stmt = sql::Parse(
      "SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x "
      "AND T.temp < -50");
  ASSERT_TRUE(stmt.ok());
  CorrectionEngine engine(&h_->store, &h_->database);
  auto relaxations = engine.SuggestPredicateRelaxations("alice", **stmt);
  ASSERT_FALSE(relaxations.empty());
  EXPECT_EQ(relaxations[0].kind, Correction::Kind::kPredicateConstant);
  EXPECT_NE(relaxations[0].original.find("-50"), std::string::npos);
  EXPECT_EQ(relaxations[0].replacement.find("-50"), std::string::npos);
}

TEST_F(AssistFixture, RecommendationsRankSimilarLoggedQueries) {
  RecommendationEngine engine(&h_->store, miner_.get());
  auto recs = engine.Recommend(
      "alice",
      "SELECT T.temp FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x",
      3);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  // The top recommendation is a correlate-template query.
  const storage::QueryRecord* top = h_->store.Get((*recs)[0].id);
  ASSERT_NE(top, nullptr);
  EXPECT_NE(top->text.find("WaterSalinity"), std::string::npos);
  EXPECT_FALSE((*recs)[0].diff.empty());
}

TEST_F(AssistFixture, RecommendationsDeduplicateByFingerprint) {
  RecommendationEngine engine(&h_->store, miner_.get());
  // Log the same query many times.
  for (int i = 0; i < 5; ++i) h_->Log("alice", "SELECT lake FROM WaterTemp");
  auto recs = engine.Recommend("alice", "SELECT lake FROM WaterTemp", 10);
  ASSERT_TRUE(recs.ok());
  std::set<std::string> texts;
  for (const auto& r : *recs) {
    EXPECT_TRUE(texts.insert(h_->store.Get(r.id)->canonical_text).second)
        << "duplicate recommendation: " << r.text;
  }
}

TEST_F(AssistFixture, RecommendationCarriesAnnotation) {
  QueryId id = h_->Log("alice", "SELECT lake, temp FROM WaterTemp WHERE temp < 14");
  ASSERT_TRUE(
      h_->store.Annotate(id, {"alice", 0, "cold-water probe", ""}).ok());
  RecommendationEngine engine(&h_->store, miner_.get());
  auto recs =
      engine.Recommend("alice", "SELECT lake, temp FROM WaterTemp WHERE temp < 13", 1);
  ASSERT_TRUE(recs.ok());
  ASSERT_FALSE(recs->empty());
  EXPECT_EQ((*recs)[0].annotation, "cold-water probe");
}

TEST_F(AssistFixture, SessionPatternRestrictionFiltersStrangers) {
  // A stranger in the same group issues a structurally alien query.
  h_->store.acl().AddUser("bob", {"lab"});
  h_->Log("bob", "SELECT sensor_id FROM Sensors WHERE kind = 'ph'");

  RecommendOptions opts;
  opts.restrict_to_similar_sessions = true;
  RecommendationEngine engine(&h_->store, miner_.get());
  auto recs = engine.Recommend("alice", "SELECT sensor_id FROM Sensors", 5, opts);
  ASSERT_TRUE(recs.ok());
  for (const auto& r : *recs) {
    EXPECT_NE(h_->store.Get(r.id)->user, "bob");  // no shared session skeletons
  }
}

TEST_F(AssistFixture, RecommendationRequiresParsableProbe) {
  RecommendationEngine engine(&h_->store, miner_.get());
  EXPECT_FALSE(engine.Recommend("alice", "SELEKT", 3).ok());
}

TEST_F(AssistFixture, AssistBundlesAllThreePanels) {
  auto response = composer_->Assist(
      "alice", "SELECT S.salinity FROM WaterSalinity S, WaterTemp T "
               "WHERE S.loc_x = T.loc_x");
  EXPECT_FALSE(response.completions.empty() && response.corrections.empty() &&
               response.recommendations.empty());
  EXPECT_FALSE(response.recommendations.empty());
}

}  // namespace
}  // namespace cqms::assist
