#include <algorithm>

#include <gtest/gtest.h>

#include "metaquery/meta_query_executor.h"
#include "sql/parser.h"
#include "test_util.h"

namespace cqms::metaquery {
namespace {

using storage::QueryId;
using testing_util::Harness;

TEST(SimilarityTest, IdenticalQueriesScoreOne) {
  auto a = storage::BuildRecordFromText("SELECT * FROM t WHERE x = 1", "u", 0);
  auto b = storage::BuildRecordFromText("SELECT * FROM t WHERE x = 1", "u", 0);
  EXPECT_DOUBLE_EQ(FeatureSimilarity(a.components, b.components), 1.0);
  EXPECT_DOUBLE_EQ(TextSimilarity(a, b), 1.0);
  EXPECT_NEAR(CombinedSimilarity(a, b), 1.0, 1e-9);
}

TEST(SimilarityTest, DisjointQueriesScoreLow) {
  auto a = storage::BuildRecordFromText("SELECT x FROM alpha WHERE x < 1", "u", 0);
  auto b = storage::BuildRecordFromText("SELECT y FROM beta WHERE y > 2", "u", 0);
  EXPECT_LT(CombinedSimilarity(a, b), 0.25);
}

TEST(SimilarityTest, ConstantChangeKeepsHighSimilarity) {
  auto a = storage::BuildRecordFromText(
      "SELECT * FROM WaterTemp WHERE temp < 22", "u", 0);
  auto b = storage::BuildRecordFromText(
      "SELECT * FROM WaterTemp WHERE temp < 18", "u", 0);
  // Same skeleton: feature similarity sees identical structure.
  EXPECT_GT(FeatureSimilarity(a.components, b.components), 0.95);
}

TEST(SimilarityTest, OutputSimilarityComparesBlackBox) {
  storage::OutputSummary a, b, c;
  a.column_names = b.column_names = c.column_names = {"x"};
  for (int i = 0; i < 10; ++i) {
    a.sample_rows.push_back({db::Value::Int(i)});
    b.sample_rows.push_back({db::Value::Int(i)});
    c.sample_rows.push_back({db::Value::Int(i + 100)});
  }
  EXPECT_DOUBLE_EQ(OutputSimilarity(a, b), 1.0);
  EXPECT_DOUBLE_EQ(OutputSimilarity(a, c), 0.0);
  storage::OutputSummary empty;
  EXPECT_LT(OutputSimilarity(a, empty), 0);  // unavailable
}

TEST(SimilarityTest, NormalizedEditDistanceBounds) {
  auto a = storage::BuildRecordFromText("SELECT * FROM t", "u", 0);
  auto b = storage::BuildRecordFromText("SELECT * FROM t", "u", 0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance(a.components, b.components), 0.0);
  auto c = storage::BuildRecordFromText(
      "SELECT z FROM other WHERE z IN (1,2)", "u", 0);
  double d = NormalizedEditDistance(a.components, c.components);
  EXPECT_GT(d, 0.5);
  EXPECT_LE(d, 1.0);
}

class MetaQueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    h_ = std::make_unique<Harness>();
    h_->store.acl().AddUser("alice", {"lab"});
    h_->store.acl().AddUser("bob", {"lab"});
    h_->store.acl().AddUser("eve", {"other"});
    correlate_ = h_->Log("alice",
                         "SELECT S.salinity, T.temp FROM WaterSalinity S, "
                         "WaterTemp T WHERE S.loc_x = T.loc_x AND T.temp < 18");
    city_ = h_->Log("bob",
                    "SELECT city FROM CityLocations WHERE state = 'WA' "
                    "ORDER BY pop DESC");
    agg_ = h_->Log("alice",
                   "SELECT lake, AVG(temp) FROM WaterTemp GROUP BY lake");
    nested_ = h_->Log("bob",
                      "SELECT lake FROM WaterTemp WHERE temp = "
                      "(SELECT MAX(temp) FROM WaterTemp)");
    executor_ = std::make_unique<MetaQueryExecutor>(&h_->store);
  }

  std::unique_ptr<Harness> h_;
  std::unique_ptr<MetaQueryExecutor> executor_;
  QueryId correlate_, city_, agg_, nested_;
};

TEST_F(MetaQueryFixture, KeywordSearchMatchesAllWords) {
  auto ids = executor_->Keyword("alice", "salinity temp");
  EXPECT_EQ(ids, (std::vector<QueryId>{correlate_}));
  // match-any unions.
  auto any = executor_->Keyword("alice", "salinity city", /*match_all=*/false);
  EXPECT_EQ(any.size(), 2u);
}

TEST_F(MetaQueryFixture, KeywordSearchRespectsAcl) {
  auto ids = executor_->Keyword("eve", "salinity");
  EXPECT_TRUE(ids.empty());  // eve shares no group with alice
}

TEST_F(MetaQueryFixture, SubstringSearch) {
  auto ids = executor_->Substring("bob", "ORDER BY pop");
  EXPECT_EQ(ids, (std::vector<QueryId>{city_}));
  EXPECT_TRUE(executor_->Substring("bob", "zzz").empty());
}

TEST_F(MetaQueryFixture, FeatureQueryByTableAndPredicate) {
  FeatureQuery q;
  q.UsesTable("WaterTemp").HasPredicateOn("watertemp", "temp", "<");
  auto ids = executor_->ByFeature("alice", q);
  EXPECT_EQ(ids, (std::vector<QueryId>{correlate_}));
}

TEST_F(MetaQueryFixture, FeatureQueryRuntimeConditions) {
  FeatureQuery q;
  q.UsesTable("CityLocations").SucceededOnly().MinResultRows(1);
  auto ids = executor_->ByFeature("bob", q);
  EXPECT_EQ(ids, (std::vector<QueryId>{city_}));
}

TEST_F(MetaQueryFixture, SqlMetaQueryOverFeatureRelations) {
  auto result = executor_->Sql(
      "alice",
      "SELECT Q.qid FROM Queries Q, DataSources D WHERE Q.qid = D.qid AND "
      "D.relname = 'watersalinity'");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), correlate_);
}

TEST_F(MetaQueryFixture, SqlMetaQueryFiltersInvisibleQids) {
  auto result = executor_->Sql("eve", "SELECT qid FROM Queries");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(MetaQueryFixture, GeneratedMetaQueryFindsCorrelatingQueries) {
  // The user has typed only: SELECT ... FROM WaterSalinity, WaterTemp
  // plus the attributes of interest; Figure 1's scenario.
  auto partial = sql::Parse(
      "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T");
  ASSERT_TRUE(partial.ok());
  auto meta_sql = GenerateMetaQueryFromPartial(**partial);
  ASSERT_TRUE(meta_sql.ok()) << meta_sql.status();
  auto result = executor_->Sql("alice", *meta_sql);
  ASSERT_TRUE(result.ok()) << result.status() << "\nSQL: " << *meta_sql;
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt(), correlate_);
}

TEST_F(MetaQueryFixture, GeneratedMetaQueryRequiresTables) {
  auto partial = sql::Parse("SELECT 1");
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(GenerateMetaQueryFromPartial(**partial).ok());
}

TEST_F(MetaQueryFixture, StructuralSearchByJoinsAndAggregates) {
  StructuralPattern joins;
  joins.min_joins = 1;
  auto ids = executor_->ByStructure("alice", joins);
  EXPECT_EQ(ids, (std::vector<QueryId>{correlate_}));

  StructuralPattern agg;
  agg.required_aggregates = {"AVG"};
  agg.requires_group_by = true;
  EXPECT_EQ(executor_->ByStructure("alice", agg),
            (std::vector<QueryId>{agg_}));

  StructuralPattern nested;
  nested.requires_subquery = true;
  EXPECT_EQ(executor_->ByStructure("alice", nested),
            (std::vector<QueryId>{nested_}));

  StructuralPattern skel;
  skel.required_predicate_skeletons = {"watertemp.temp < ?"};
  EXPECT_EQ(executor_->ByStructure("alice", skel),
            (std::vector<QueryId>{correlate_}));

  StructuralPattern forbidden;
  forbidden.required_tables = {"watertemp"};
  forbidden.forbidden_tables = {"watersalinity"};
  auto no_salinity = executor_->ByStructure("alice", forbidden);
  EXPECT_EQ(no_salinity, (std::vector<QueryId>{agg_, nested_}));
}

TEST_F(MetaQueryFixture, QueryByDataPositiveAndNegative) {
  // Find queries whose output includes state 'WA' (the city query).
  std::vector<DataExample> examples;
  examples.push_back({{db::Value::String("Seattle")}, true});
  QueryByDataOptions opts;
  opts.reexecute_on = &h_->database;
  auto ids = executor_->ByData("bob", examples, opts);
  EXPECT_EQ(ids, (std::vector<QueryId>{city_}));

  // Negative example: exclude Seattle -> the city query drops out.
  examples.push_back({{db::Value::String("Seattle")}, false});
  EXPECT_TRUE(executor_->ByData("bob", examples, opts).empty());
}

TEST_F(MetaQueryFixture, QueryByDataLakeWashingtonScenario) {
  // The paper's example: "all queries whose output includes Lake
  // Washington but not Lake Union" (here: lake names in aggregates).
  std::vector<DataExample> examples;
  examples.push_back({{db::Value::String("Washington")}, true});
  examples.push_back({{db::Value::String("Union")}, false});
  QueryByDataOptions opts;
  opts.reexecute_on = &h_->database;
  // Log a query that provably matches (includes Washington, not Union).
  QueryId filtered = h_->Log(
      "alice", "SELECT lake FROM WaterTemp WHERE lake = 'Washington'");
  auto ids = executor_->ByData("alice", examples, opts);
  EXPECT_NE(std::find(ids.begin(), ids.end(), filtered), ids.end());
  // The per-lake aggregate outputs Union too, so it must be excluded.
  EXPECT_EQ(std::find(ids.begin(), ids.end(), agg_), ids.end());
}

TEST_F(MetaQueryFixture, KnnFindsStructuralNeighbors) {
  auto neighbors = executor_->KnnText(
      "alice",
      "SELECT T.temp FROM WaterSalinity S, WaterTemp T WHERE "
      "S.loc_x = T.loc_x AND T.temp < 20",
      2);
  ASSERT_TRUE(neighbors.ok());
  ASSERT_FALSE(neighbors->empty());
  EXPECT_EQ((*neighbors)[0].id, correlate_);
  EXPECT_GT((*neighbors)[0].similarity, 0.5);
}

TEST_F(MetaQueryFixture, KnnRespectsAclAndFlags) {
  auto for_eve = executor_->KnnText("eve", "SELECT * FROM WaterTemp", 5);
  ASSERT_TRUE(for_eve.ok());
  EXPECT_TRUE(for_eve->empty());

  ASSERT_TRUE(h_->store.AddFlag(agg_, storage::kFlagObsolete).ok());
  auto neighbors = executor_->KnnText(
      "alice", "SELECT lake, AVG(temp) FROM WaterTemp GROUP BY lake", 10);
  ASSERT_TRUE(neighbors.ok());
  for (const Neighbor& n : *neighbors) EXPECT_NE(n.id, agg_);
}

TEST_F(MetaQueryFixture, KnnUnparsableProbeFails) {
  EXPECT_FALSE(executor_->KnnText("alice", "SELEKT", 3).ok());
}

TEST(RowMatchTest, SubsetSemantics) {
  db::Row row = {db::Value::String("Seattle"), db::Value::Int(750000)};
  EXPECT_TRUE(RowMatchesExample(row, {db::Value::String("Seattle")}));
  EXPECT_TRUE(RowMatchesExample(
      row, {db::Value::Int(750000), db::Value::String("Seattle")}));
  EXPECT_FALSE(RowMatchesExample(row, {db::Value::String("Tacoma")}));
  EXPECT_TRUE(RowMatchesExample(row, {}));  // empty example matches all
}

}  // namespace
}  // namespace cqms::metaquery
