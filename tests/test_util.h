#ifndef CQMS_TESTS_TEST_UTIL_H_
#define CQMS_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "common/clock.h"
#include "db/database.h"
#include "profiler/query_profiler.h"
#include "storage/query_store.h"
#include "storage/record_builder.h"
#include "workload/synthetic.h"

namespace cqms::testing_util {

/// A ready-to-use CQMS substrate: populated lake database, query store,
/// simulated clock and profiler. Tests drive the profiler directly or
/// append hand-built records.
struct Harness {
  SimulatedClock clock{1'000'000};
  db::Database database{&clock};
  storage::QueryStore store;
  std::unique_ptr<profiler::QueryProfiler> profiler;

  explicit Harness(size_t rows_per_table = 200) {
    Status s = workload::PopulateLakeDatabase(&database, rows_per_table);
    (void)s;
    profiler = std::make_unique<profiler::QueryProfiler>(&database, &store,
                                                         &clock);
  }

  /// Executes and logs a query as `user`, advancing the clock by
  /// `advance` afterwards. Returns the logged id.
  storage::QueryId Log(const std::string& user, const std::string& sql,
                       Micros advance = 10 * kMicrosPerSecond) {
    profiler::ProfiledExecution e = profiler->ExecuteAndProfile(sql, user);
    clock.Advance(advance);
    return e.query_id;
  }
};

}  // namespace cqms::testing_util

#endif  // CQMS_TESTS_TEST_UTIL_H_
