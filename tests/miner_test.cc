#include <gtest/gtest.h>

#include "client/session_view.h"
#include "miner/query_miner.h"
#include "miner/tutorial.h"
#include "test_util.h"

namespace cqms::miner {
namespace {

using storage::QueryId;
using testing_util::Harness;

TEST(SessionizerTest, TemporalGapSplitsSessions) {
  Harness h;
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 22",
        30 * kMicrosPerSecond);
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 18",
        30 * kMicrosPerMinute);  // long pause
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 15");
  auto sessions = IdentifySessions(&h.store);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].queries.size(), 2u);
  EXPECT_EQ(sessions[1].queries.size(), 1u);
  // Assignments written back.
  EXPECT_EQ(h.store.Get(0)->session_id, sessions[0].id);
  EXPECT_EQ(h.store.Get(2)->session_id, sessions[1].id);
}

TEST(SessionizerTest, StructuralJumpSplitsSessions) {
  Harness h;
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 22");
  h.Log("alice", "SELECT city FROM CityLocations WHERE state = 'MI'");
  auto sessions = IdentifySessions(&h.store);
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SessionizerTest, UsersNeverShareSessions) {
  Harness h;
  h.Log("alice", "SELECT * FROM WaterTemp", kMicrosPerSecond);
  h.Log("bob", "SELECT * FROM WaterTemp", kMicrosPerSecond);
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 18");
  auto sessions = IdentifySessions(&h.store);
  ASSERT_EQ(sessions.size(), 2u);
  for (const Session& s : sessions) {
    for (QueryId id : s.queries) {
      EXPECT_EQ(h.store.Get(id)->user, s.user);
    }
  }
}

TEST(SessionizerTest, EdgesCarryFigure2Diffs) {
  Harness h;
  h.Log("alice", "SELECT * FROM WaterTemp T WHERE T.temp < 22");
  h.Log("alice", "SELECT * FROM WaterTemp T WHERE T.temp < 18");
  h.Log("alice",
        "SELECT * FROM WaterTemp T, WaterSalinity S WHERE T.temp < 18 AND "
        "S.loc_x = T.loc_x");
  auto sessions = IdentifySessions(&h.store);
  ASSERT_EQ(sessions.size(), 1u);
  ASSERT_EQ(sessions[0].edges.size(), 2u);
  // Edge 1: constant modification.
  ASSERT_EQ(sessions[0].edges[0].diff.edits.size(), 1u);
  EXPECT_EQ(sessions[0].edges[0].diff.edits[0].kind,
            sql::QueryEdit::Kind::kModifyConstant);
  // Edge 2: added table + join predicate.
  bool saw_table = false;
  for (const auto& e : sessions[0].edges[1].diff.edits) {
    if (e.kind == sql::QueryEdit::Kind::kAddTable) saw_table = true;
  }
  EXPECT_TRUE(saw_table);
}

TEST(SessionizerTest, ParseFailedQueriesStayInSession) {
  Harness h;
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 22");
  h.Log("alice", "SELEKT * FORM WaterTemp");  // typo
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 18");
  auto sessions = IdentifySessions(&h.store);
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].queries.size(), 3u);
}

TEST(SessionViewTest, AsciiAndDotRenderings) {
  Harness h;
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 22");
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 18");
  auto sessions = IdentifySessions(&h.store);
  ASSERT_EQ(sessions.size(), 1u);
  std::string ascii = client::RenderSessionAscii(h.store, sessions[0]);
  EXPECT_NE(ascii.find("q0"), std::string::npos);
  EXPECT_NE(ascii.find("->"), std::string::npos);  // the constant edit label
  std::string dot = client::RenderSessionDot(h.store, sessions[0]);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q0 -> q1"), std::string::npos);
}

TEST(ClusteringTest, KMedoidsSeparatesStructurallyDistinctGroups) {
  Harness h;
  std::vector<QueryId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(h.Log("u", "SELECT * FROM WaterTemp WHERE temp < " +
                                 std::to_string(10 + i)));
  }
  for (int i = 0; i < 5; ++i) {
    ids.push_back(h.Log("u", "SELECT city FROM CityLocations WHERE pop > " +
                                 std::to_string(100000 * (i + 1))));
  }
  KMedoidsOptions opts;
  opts.k = 2;
  Clustering c = KMedoidsCluster(h.store, ids, opts);
  ASSERT_EQ(c.num_clusters(), 2u);
  // Every cluster must be pure: all members share their FROM table.
  for (const auto& cluster : c.clusters) {
    ASSERT_FALSE(cluster.empty());
    const auto& first_tables = h.store.Get(cluster[0])->components.tables;
    for (QueryId id : cluster) {
      EXPECT_EQ(h.store.Get(id)->components.tables, first_tables);
    }
  }
}

TEST(ClusteringTest, KMedoidsIsDeterministic) {
  Harness h;
  std::vector<QueryId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(h.Log("u", "SELECT * FROM WaterTemp WHERE temp < " +
                                 std::to_string(i)));
  }
  KMedoidsOptions opts;
  opts.k = 3;
  Clustering a = KMedoidsCluster(h.store, ids, opts);
  Clustering b = KMedoidsCluster(h.store, ids, opts);
  EXPECT_EQ(a.medoids, b.medoids);
}

TEST(ClusteringTest, ClusterOfAndEdgeCases) {
  Harness h;
  QueryId only = h.Log("u", "SELECT 1");
  Clustering c = KMedoidsCluster(h.store, {only}, {});
  ASSERT_EQ(c.num_clusters(), 1u);
  EXPECT_EQ(c.ClusterOf(only), 0);
  EXPECT_EQ(c.ClusterOf(999), -1);
  Clustering empty = KMedoidsCluster(h.store, {}, {});
  EXPECT_EQ(empty.num_clusters(), 0u);
}

TEST(ClusteringTest, AgglomerativeThresholdControlsGranularity) {
  Harness h;
  std::vector<QueryId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(h.Log("u", "SELECT * FROM WaterTemp WHERE temp < " +
                                 std::to_string(i)));
    ids.push_back(h.Log("u", "SELECT city FROM CityLocations WHERE pop > " +
                                 std::to_string(i * 1000)));
  }
  Clustering tight = AgglomerativeCluster(h.store, ids, 0.1);
  Clustering loose = AgglomerativeCluster(h.store, ids, 0.99);
  EXPECT_GT(tight.num_clusters(), 1u);
  EXPECT_EQ(loose.num_clusters(), 1u);
}

TEST(AssociationTest, MinesWaterSalinityImpliesWaterTemp) {
  // The paper's example: queries with WaterSalinity overwhelmingly also
  // use WaterTemp, while CityLocations is globally popular.
  Harness h;
  for (int i = 0; i < 10; ++i) {
    h.Log("u",
          "SELECT * FROM WaterSalinity S, WaterTemp T WHERE "
          "S.loc_x = T.loc_x AND T.temp < " + std::to_string(i));
  }
  for (int i = 0; i < 20; ++i) {
    h.Log("u", "SELECT city FROM CityLocations WHERE pop > " +
                   std::to_string(i * 1000));
  }
  std::vector<QueryId> ids;
  for (const auto& r : h.store.records()) ids.push_back(r.id);
  AssociationMinerOptions opts;
  opts.min_support = 0.05;
  opts.min_confidence = 0.5;
  auto transactions = BuildTransactions(h.store, ids, opts);
  auto rules = MineAssociationRules(transactions, opts);
  ASSERT_FALSE(rules.empty());

  auto suggestions = SuggestFromRules(rules, {"t:watersalinity"}, 10);
  ASSERT_FALSE(suggestions.empty());
  // The first *table* suggestion must be WaterTemp (predicate-skeleton
  // suggestions may interleave at equal confidence).
  bool found_table = false;
  for (const auto& [item, conf] : suggestions) {
    if (item.rfind("t:", 0) == 0) {
      EXPECT_EQ(item, "t:watertemp");
      EXPECT_GT(conf, 0.9);  // always co-occurs
      found_table = true;
      break;
    }
  }
  EXPECT_TRUE(found_table);

  // Without context, no rule fires for CityLocations.
  auto none = SuggestFromRules(rules, {"t:citylocations"});
  for (const auto& [item, conf] : none) {
    EXPECT_NE(item, "t:watertemp");  // cities never co-occur with temps
  }
}

TEST(AssociationTest, SupportAndConfidenceBounds) {
  std::vector<std::vector<std::string>> tx = {
      {"a", "b"}, {"a", "b"}, {"a"}, {"b"}, {"a", "b", "c"}};
  AssociationMinerOptions opts;
  opts.min_support = 0.2;
  opts.min_confidence = 0.1;
  auto rules = MineAssociationRules(tx, opts);
  for (const auto& r : rules) {
    EXPECT_GE(r.support, 0.2);
    EXPECT_GE(r.confidence, 0.1);
    EXPECT_LE(r.confidence, 1.0);
  }
  // a => b has confidence 3/4.
  bool found = false;
  for (const auto& r : rules) {
    if (r.antecedent == std::vector<std::string>{"a"} && r.consequent == "b") {
      EXPECT_NEAR(r.confidence, 0.75, 1e-9);
      EXPECT_NEAR(r.support, 0.6, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AssociationTest, EmptyTransactionsYieldNoRules) {
  EXPECT_TRUE(MineAssociationRules({}, {}).empty());
}

TEST(PopularityTest, CountsAndDecay) {
  Harness h;
  h.clock.Set(0);
  for (int i = 0; i < 5; ++i) h.Log("u", "SELECT * FROM WaterTemp");
  h.clock.Set(100 * kMicrosPerMinute);
  h.Log("u", "SELECT city FROM CityLocations");

  PopularityTracker no_decay;
  no_decay.Build(h.store, h.clock.Now());
  EXPECT_GT(no_decay.TableScore("watertemp"),
            no_decay.TableScore("citylocations"));

  // With a short half-life, the recent city query dominates.
  PopularityTracker decayed;
  PopularityTracker::Options opts;
  opts.half_life = 10 * kMicrosPerMinute;
  decayed.Build(h.store, h.clock.Now(), opts);
  EXPECT_GT(decayed.TableScore("citylocations"),
            decayed.TableScore("watertemp"));
}

TEST(PopularityTest, TopQueriesForTableDeduplicates) {
  Harness h;
  for (int i = 0; i < 3; ++i) h.Log("u", "SELECT * FROM WaterTemp");
  h.Log("u", "SELECT lake FROM WaterTemp");
  PopularityTracker p;
  p.Build(h.store, h.clock.Now());
  auto top = p.TopQueriesForTable(h.store, "watertemp", 5);
  ASSERT_EQ(top.size(), 2u);  // two distinct canonical forms
  EXPECT_EQ(h.store.Get(top[0])->canonical_text, "SELECT * FROM watertemp");
}

TEST(TutorialTest, GeneratesSectionsWithExamplesAndMistakes) {
  Harness h;
  for (int i = 0; i < 4; ++i) {
    h.Log("u", "SELECT lake, temp FROM WaterTemp WHERE temp < 18");
  }
  storage::QueryId annotated = h.Log("u", "SELECT * FROM WaterTemp");
  ASSERT_TRUE(h.store
                  .Annotate(annotated, {"u", 0, "full scan of temperatures", ""})
                  .ok());
  h.Log("u", "SELECT tempp FROM WaterTemp");  // bind error (mistake)

  PopularityTracker p;
  p.Build(h.store, h.clock.Now());
  auto sections = GenerateTutorial(h.store, h.database.catalog(), p);
  ASSERT_FALSE(sections.empty());
  EXPECT_EQ(sections[0].relation, "watertemp");
  EXPECT_FALSE(sections[0].columns.empty());
  EXPECT_FALSE(sections[0].example_queries.empty());
  EXPECT_FALSE(sections[0].common_mistakes.empty());

  std::string rendered = RenderTutorial(h.store, sections);
  EXPECT_NE(rendered.find("watertemp"), std::string::npos);
  EXPECT_NE(rendered.find("full scan of temperatures"), std::string::npos);
}

TEST(QueryMinerTest, RunAllPopulatesEverythingAndRefreshesIncrementally) {
  Harness h;
  for (int i = 0; i < 6; ++i) {
    h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < " + std::to_string(i),
          kMicrosPerSecond);
  }
  QueryMinerOptions opts;
  opts.refresh_threshold = 5;
  QueryMiner miner(&h.store, &h.clock, opts);
  miner.RunAll();
  EXPECT_FALSE(miner.sessions().empty());
  EXPECT_GT(miner.clustering().num_clusters(), 0u);
  EXPECT_EQ(miner.queries_mined(), 6u);
  EXPECT_FALSE(miner.SessionsOfUser("alice").empty());
  EXPECT_NE(miner.FindSession(miner.sessions()[0].id), nullptr);
  EXPECT_EQ(miner.FindSession(999), nullptr);

  // Below the threshold: no refresh.
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 99");
  EXPECT_FALSE(miner.MaybeRefresh());
  // Reaching the threshold triggers one.
  for (int i = 0; i < 4; ++i) h.Log("alice", "SELECT 1");
  EXPECT_TRUE(miner.MaybeRefresh());
  EXPECT_EQ(miner.queries_mined(), 11u);
}

}  // namespace
}  // namespace cqms::miner
