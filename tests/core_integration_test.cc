#include <gtest/gtest.h>

#include "core/cqms.h"
#include "workload/synthetic.h"

namespace cqms {
namespace {

/// End-to-end tests driving the whole system through the Cqms facade,
/// exercising the paper's four interaction modes in sequence.
class CqmsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CqmsOptions options;
    options.clock = &clock_;
    options.miner.refresh_threshold = 1;
    system_ = std::make_unique<Cqms>(options);
    ASSERT_TRUE(workload::PopulateLakeDatabase(system_->database(), 150).ok());
    system_->RegisterUser("alice", {"limnology"});
    system_->RegisterUser("bob", {"limnology"});
    system_->RegisterUser("eve", {"astronomy"});
  }

  storage::QueryId Run(const std::string& user, const std::string& sql) {
    auto e = system_->Execute(user, sql);
    clock_.Advance(20 * kMicrosPerSecond);
    return e.query_id;
  }

  SimulatedClock clock_{1'000'000};
  std::unique_ptr<Cqms> system_;
};

TEST_F(CqmsIntegrationTest, TraditionalModeExecutesAndLogs) {
  auto e = system_->Execute("alice", "SELECT lake, temp FROM WaterTemp WHERE temp < 18");
  EXPECT_TRUE(e.stats.succeeded);
  EXPECT_GT(e.result.rows.size(), 0u);
  EXPECT_EQ(system_->store()->size(), 1u);
}

TEST_F(CqmsIntegrationTest, AnnotationsWholeAndFragment) {
  storage::QueryId id =
      Run("alice", "SELECT lake FROM WaterTemp WHERE temp < 18");
  ASSERT_TRUE(system_->Annotate(id, "alice", "cold lakes baseline").ok());
  ASSERT_TRUE(system_->Annotate(id, "alice", "threshold from 2008 survey",
                                "temp < 18").ok());
  EXPECT_EQ(system_->store()->Get(id)->annotations.size(), 2u);
  // Fragment must exist in the text.
  EXPECT_EQ(system_->Annotate(id, "alice", "x", "no such fragment").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CqmsIntegrationTest, AnnotationRequestPolicy) {
  storage::QueryId simple = Run("alice", "SELECT * FROM CityLocations");
  storage::QueryId complex_query = Run(
      "alice",
      "SELECT T.lake FROM WaterTemp T, WaterSalinity S, CityLocations C "
      "WHERE T.loc_x = S.loc_x");
  EXPECT_FALSE(system_->ShouldRequestAnnotation(simple));
  EXPECT_TRUE(system_->ShouldRequestAnnotation(complex_query));
  ASSERT_TRUE(system_->Annotate(complex_query, "alice", "three-way probe").ok());
  EXPECT_FALSE(system_->ShouldRequestAnnotation(complex_query));
}

TEST_F(CqmsIntegrationTest, SearchAndBrowseMode) {
  Run("alice",
      "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
      "WHERE S.loc_x = T.loc_x AND T.temp < 18");
  Run("bob", "SELECT city FROM CityLocations WHERE state = 'WA'");
  system_->RunMining();

  // Keyword search.
  auto ids = system_->metaquery().Keyword("bob", "salinity");
  EXPECT_EQ(ids.size(), 1u);  // bob shares alice's group

  // SQL meta-query over the feature relations.
  auto rows = system_->metaquery().Sql(
      "bob", "SELECT qid FROM DataSources WHERE relname = 'watersalinity'");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 1u);

  // Browse and session view render.
  std::string browse = system_->BrowseLog("bob");
  EXPECT_NE(browse.find("session #"), std::string::npos);
  auto view = system_->ShowSession("bob", 0);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_NE(view->find("Session #0"), std::string::npos);
}

TEST_F(CqmsIntegrationTest, SessionViewRespectsAcl) {
  Run("alice", "SELECT * FROM WaterTemp");
  system_->RunMining();
  auto denied = system_->ShowSession("eve", 0);
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(system_->ShowSession("alice", 42).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CqmsIntegrationTest, AssistedModeEndToEnd) {
  // Build history creating the WaterSalinity->WaterTemp association.
  for (int i = 0; i < 10; ++i) {
    Run("alice",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
        "WHERE S.loc_x = T.loc_x AND T.temp < " + std::to_string(12 + i));
  }
  for (int i = 0; i < 15; ++i) {
    Run("bob", "SELECT city FROM CityLocations WHERE pop > " +
                   std::to_string((i + 1) * 5000));
  }
  system_->RunMining();

  auto response = system_->Assist("alice", "SELECT * FROM WaterSalinity, ");
  ASSERT_FALSE(response.completions.empty());
  EXPECT_EQ(response.completions[0].text, "watertemp");

  auto full = system_->Assist(
      "alice",
      "SELECT T.temp FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x");
  EXPECT_FALSE(full.recommendations.empty());
}

TEST_F(CqmsIntegrationTest, TutorialMentionsPopularRelations) {
  for (int i = 0; i < 5; ++i) Run("alice", "SELECT lake, temp FROM WaterTemp");
  system_->RunMining();
  std::string tutorial = system_->Tutorial();
  EXPECT_NE(tutorial.find("Relation: watertemp"), std::string::npos);
  EXPECT_NE(tutorial.find("temp DOUBLE"), std::string::npos);
}

TEST_F(CqmsIntegrationTest, AdministrativeModeVisibilityAndDeletion) {
  storage::QueryId id = Run("alice", "SELECT * FROM WaterTemp");
  // Group-mate sees it; stranger does not.
  EXPECT_TRUE(system_->store()->Visible("bob", id));
  EXPECT_FALSE(system_->store()->Visible("eve", id));

  // Owner widens to public.
  ASSERT_TRUE(system_->SetVisibility("alice", id, storage::Visibility::kPublic).ok());
  EXPECT_TRUE(system_->store()->Visible("eve", id));

  // Non-owner cannot change or delete.
  EXPECT_EQ(system_->SetVisibility("bob", id, storage::Visibility::kPrivate).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(system_->DeleteQuery("bob", id).code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(system_->DeleteQuery("alice", id).ok());
  EXPECT_FALSE(system_->store()->Visible("bob", id));
}

TEST_F(CqmsIntegrationTest, MaintenanceLifecycleAfterSchemaChange) {
  storage::QueryId id = Run("alice", "SELECT temp FROM WaterTemp WHERE temp < 18");
  auto r0 = system_->RunMaintenance();
  EXPECT_EQ(r0.flagged_broken, 0u);

  clock_.Advance(kMicrosPerMinute);
  ASSERT_TRUE(system_->database()->RenameTable("WaterTemp", "LakeTemp").ok());
  auto r1 = system_->RunMaintenance();
  EXPECT_EQ(r1.repaired, 1u);
  const storage::QueryRecord* rec = system_->store()->Get(id);
  EXPECT_TRUE(rec->HasFlag(storage::kFlagRepaired));
  // The repaired query is findable under the new table name.
  metaquery::FeatureQuery q;
  q.UsesTable("LakeTemp");
  EXPECT_EQ(system_->metaquery().ByFeature("alice", q).size(), 1u);
  // And it still executes through the traditional path.
  EXPECT_TRUE(system_->database()->Execute(*rec->ast).ok());
}

TEST_F(CqmsIntegrationTest, PersistenceThroughFacade) {
  Run("alice", "SELECT * FROM WaterTemp");
  std::string path = ::testing::TempDir() + "/cqms_facade_snapshot.log";
  ASSERT_TRUE(system_->SaveLog(path).ok());
  storage::QueryStore loaded;
  ASSERT_TRUE(storage::LoadSnapshot(&loaded, path).ok());
  EXPECT_EQ(loaded.size(), 1u);
}

TEST_F(CqmsIntegrationTest, FullWorkloadSmokeTest) {
  // Drive a realistic multi-user workload through the facade's profiler,
  // then exercise every subsystem on top of it.
  workload::WorkloadOptions opts;
  opts.num_sessions = 15;
  SimulatedClock* clock = &clock_;
  storage::QueryStore* store = system_->store();
  profiler::QueryProfiler facade_profiler(system_->database(), store, clock);
  workload::RegisterUsers(store, opts);
  workload::GroundTruth truth =
      workload::GenerateLog(&facade_profiler, store, clock, opts);
  ASSERT_GT(store->size(), 30u);

  system_->RunMining();
  EXPECT_GE(system_->miner().sessions().size(), opts.num_sessions - 1);

  auto report = system_->RunMaintenance();
  // Workload typos misspell table names: they parse but fail to bind, so
  // maintenance correctly flags them broken. Nothing else may be flagged.
  EXPECT_LE(report.flagged_broken, truth.typos_generated);
  EXPECT_GT(report.quality_updated, 0u);

  // Recommendations work for a workload user.
  auto response = system_->Assist(
      workload::UserName(0), "SELECT * FROM WaterTemp T WHERE T.temp < 15");
  EXPECT_FALSE(response.completions.empty() &&
               response.recommendations.empty());
  (void)truth;
}

}  // namespace
}  // namespace cqms
