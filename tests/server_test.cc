// End-to-end tests for the CQMS network daemon: a real CqmsServer on a
// loopback socket driven through the CqmsClient library, checked against
// the same Cqms instance called in process (the oracle), plus protocol
// hardening (fuzzed frames, wrong versions), resource limits (idle
// timeout, max connections, oversized frames) and graceful shutdown with
// durable state.

#include "server/server.h"

#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "netclient/client.h"
#include "storage/record_builder.h"
#include "workload/synthetic.h"

namespace cqms::server {
namespace {

using netclient::ClientOptions;
using netclient::CqmsClient;

/// A Cqms populated with the lake schema and a small deterministic
/// query log, served by a CqmsServer on an ephemeral loopback port.
struct ServerFixture {
  explicit ServerFixture(ServerOptions options = {}, size_t log_queries = 24,
                         bool start = true) {
    Status s = workload::PopulateLakeDatabase(cqms.database(), 60);
    EXPECT_TRUE(s.ok()) << s;
    cqms.RegisterUser("alice", {"lab0"});
    cqms.RegisterUser("bob", {"lab0"});
    SeedLog(log_queries);
    server = std::make_unique<CqmsServer>(&cqms, options);
    if (start) {
      Status st = server->Start();
      EXPECT_TRUE(st.ok()) << st;
    }
  }

  void SeedLog(size_t n) {
    const char* templates[] = {
        "SELECT * FROM Sensors WHERE sensor_id < %zu",
        "SELECT lake, temp FROM WaterTemp WHERE temp > %zu",
        "SELECT lake, salinity FROM WaterSalinity WHERE salinity < %zu",
        "SELECT species FROM Species WHERE count_obs > %zu",
        "SELECT city, pop FROM CityLocations WHERE pop > %zu",
        "SELECT sensor_id, value FROM Readings WHERE ts < %zu",
    };
    for (size_t i = 0; i < n; ++i) {
      char sql[160];
      std::snprintf(sql, sizeof(sql), templates[i % 6], i + 1);
      const char* user = (i % 2 == 0) ? "alice" : "bob";
      profiler::ProfiledExecution exec = cqms.Execute(user, sql);
      EXPECT_TRUE(exec.stats.succeeded) << sql << ": " << exec.stats.error;
    }
    Status s = cqms.Annotate(0, "alice", "the canonical sensor probe");
    EXPECT_TRUE(s.ok()) << s;
  }

  std::unique_ptr<CqmsClient> Client() {
    auto r = CqmsClient::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? std::move(*r) : nullptr;
  }

  Cqms cqms;
  std::unique_ptr<CqmsServer> server;
};

/// Raw TCP connection for feeding the server hostile bytes.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Write(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;  // server already disconnected us: fine
      off += static_cast<size_t>(n);
    }
  }

  /// Reads until the peer closes; returns everything received.
  std::string DrainUntilClose() {
    std::string out;
    char buf[4096];
    while (true) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::string FrameHello(uint32_t version) {
  BinaryWriter w;
  net::BeginRequest(&w, 1, net::Op::kHello);
  net::HelloRequest hello;
  hello.protocol_version = version;
  net::EncodeHelloRequest(&w, hello);
  std::string out;
  AppendFrame(&out, w.data());
  return out;
}

// --- oracle equality -------------------------------------------------------

TEST(ServerTest, SearchMatchesInProcessOracle) {
  ServerFixture fx;
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->server_hello().store_size, 24u);

  // A spread of specs across predicate types, each compared field by
  // field against the same Cqms instance called directly (the read-view
  // pipeline makes the in-process call safe while the server runs).
  std::vector<net::SearchSpec> specs;
  {
    net::SearchSpec spec;
    spec.keyword = net::KeywordSpec{"sensors", true};
    specs.push_back(spec);
  }
  {
    net::SearchSpec spec;
    spec.substring = "WaterTemp";
    spec.limit = 5;
    specs.push_back(spec);
  }
  {
    net::SearchSpec spec;
    net::FeatureSpec feature;
    feature.tables = {"Species"};
    feature.succeeded_only = true;
    spec.feature = feature;
    spec.order = metaquery::ResultOrder::kLogOrder;
    specs.push_back(spec);
  }
  {
    net::SearchSpec spec;
    spec.similarity = net::SimilaritySpec{};
    spec.similarity->probe_text = "SELECT * FROM Sensors WHERE sensor_id < 9";
    spec.limit = 10;
    specs.push_back(spec);
  }

  for (const net::SearchSpec& spec : specs) {
    auto wire = client->Search("alice", spec);
    ASSERT_TRUE(wire.ok()) << wire.status();

    storage::QueryRecord probe;
    const storage::QueryRecord* probe_ptr = nullptr;
    if (spec.similarity.has_value()) {
      probe = storage::BuildRecordFromText(spec.similarity->probe_text, "alice",
                                           0, storage::SignatureMode::kTransient);
      probe_ptr = &probe;
    }
    metaquery::MetaQueryResponse oracle =
        fx.cqms.Search("alice", net::ToMetaQueryRequest(spec, probe_ptr));

    ASSERT_EQ(wire->matches.size(), oracle.matches.size());
    for (size_t i = 0; i < oracle.matches.size(); ++i) {
      EXPECT_EQ(wire->matches[i].id, oracle.matches[i].id);
      EXPECT_EQ(wire->matches[i].similarity, oracle.matches[i].similarity);
      EXPECT_EQ(wire->matches[i].score, oracle.matches[i].score);
    }
    EXPECT_EQ(wire->generator, static_cast<uint8_t>(oracle.generator));
    EXPECT_EQ(wire->candidates_considered, oracle.candidates_considered);
  }

  // Browse and ShowSession render identically over the wire.
  auto browse = client->Browse("alice");
  ASSERT_TRUE(browse.ok()) << browse.status();
  EXPECT_EQ(*browse, fx.cqms.BrowseLog("alice"));
}

TEST(ServerTest, WriteOpsLandInTheStore) {
  ServerFixture fx;
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);

  net::AppendRequest append;
  append.user = "alice";
  append.sql = "SELECT * FROM Species WHERE count_obs > 3";
  auto appended = client->Append(append);
  ASSERT_TRUE(appended.ok()) << appended.status();
  EXPECT_TRUE(appended->succeeded) << appended->error;
  ASSERT_GE(appended->id, 0);

  EXPECT_TRUE(client->Annotate(appended->id, "alice", "wire note").ok());
  EXPECT_TRUE(client
                  ->SetVisibility("alice", appended->id,
                                  storage::Visibility::kPrivate)
                  .ok());
  // bob cannot see alice's now-private query.
  Status bobs = client->SetVisibility("bob", appended->id,
                                      storage::Visibility::kPublic);
  EXPECT_FALSE(bobs.ok());

  // Log-only append, then a rewrite of its text.
  append.sql = "SELECT lake FROM WaterTemp WHERE temp > 11";
  append.execute = false;
  auto logged = client->Append(append);
  ASSERT_TRUE(logged.ok()) << logged.status();
  EXPECT_TRUE(
      client->Rewrite(logged->id, "SELECT lake FROM WaterTemp WHERE temp > 12")
          .ok());

  EXPECT_TRUE(client->RegisterUser("carol", {"lab1"}).ok());
  EXPECT_TRUE(client->Maintain(/*run_mining=*/true).ok());

  auto recommend =
      client->Recommend("alice", "SELECT * FROM Sensors WHERE sensor_id < 2");
  ASSERT_TRUE(recommend.ok()) << recommend.status();
  ASSERT_FALSE(recommend->items.empty());
  EXPECT_NE(recommend->items[0].text, "");

  // Everything above is visible to a later reader through the store.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->store_size, 26u);
  EXPECT_GE(stats->per_op.size(), 5u);

  // Checkpoint without durability is a typed error, not a crash.
  Status ck = client->Checkpoint();
  EXPECT_EQ(ck.code(), StatusCode::kInvalidArgument);
}

// --- pipelining ------------------------------------------------------------

TEST(ServerTest, PipelinedBatchCompletesOutOfOrderWaits) {
  ServerFixture fx;
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);

  // Interleave reads and writes in one batch, flush once, then wait in
  // reverse order — the completion map must park early arrivals.
  std::vector<uint64_t> search_ids;
  std::vector<uint64_t> append_ids;
  for (int i = 0; i < 8; ++i) {
    net::SearchSpec spec;
    spec.keyword = net::KeywordSpec{"sensors", true};
    search_ids.push_back(client->SendSearch("alice", spec));
    net::AppendRequest append;
    append.user = "bob";
    append.sql = "SELECT * FROM Sensors WHERE sensor_id < " +
                 std::to_string(100 + i);
    append_ids.push_back(client->SendAppend(append));
  }
  ASSERT_TRUE(client->Flush().ok());

  for (int i = 7; i >= 0; --i) {
    auto append = client->WaitAppend(append_ids[i]);
    ASSERT_TRUE(append.ok()) << append.status();
    EXPECT_TRUE(append->succeeded);
    auto search = client->WaitSearch(search_ids[i]);
    ASSERT_TRUE(search.ok()) << search.status();
    EXPECT_FALSE(search->matches.empty());
  }

  // All 8 appends landed exactly once.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->store_size, 24u + 8u);
}

// --- protocol hardening ----------------------------------------------------

TEST(ServerTest, WrongProtocolVersionGetsTypedErrorThenDisconnect) {
  ServerFixture fx;
  RawConn conn(fx.server->port());
  ASSERT_TRUE(conn.connected());
  conn.Write(FrameHello(/*version=*/99));
  std::string raw = conn.DrainUntilClose();  // close proves the disconnect

  FrameDecoder decoder(kDefaultMaxFrameBytes);
  decoder.Feed(raw.data(), raw.size());
  std::string payload;
  ASSERT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kFrame);
  net::ResponseEnvelope env;
  ASSERT_TRUE(net::DecodeResponseEnvelope(payload, &env));
  EXPECT_EQ(env.code, StatusCode::kUnsupported);
  EXPECT_NE(env.message.find("version"), std::string::npos);
}

TEST(ServerTest, OpBeforeHandshakeIsRejected) {
  ServerFixture fx;
  RawConn conn(fx.server->port());
  ASSERT_TRUE(conn.connected());
  BinaryWriter w;
  net::BeginRequest(&w, 7, net::Op::kStats);
  std::string frame;
  AppendFrame(&frame, w.data());
  conn.Write(frame);
  std::string raw = conn.DrainUntilClose();

  FrameDecoder decoder(kDefaultMaxFrameBytes);
  decoder.Feed(raw.data(), raw.size());
  std::string payload;
  ASSERT_EQ(decoder.Poll(&payload), FrameDecoder::Next::kFrame);
  net::ResponseEnvelope env;
  ASSERT_TRUE(net::DecodeResponseEnvelope(payload, &env));
  EXPECT_EQ(env.code, StatusCode::kInvalidArgument);
}

TEST(ServerTest, RandomBytesAndBitFlipsNeverCrashTheServer) {
  ServerOptions options;
  options.max_frame_bytes = 64 << 10;
  // Short idle timeout: DrainUntilClose below relies on the server
  // hanging up on connections whose bytes never complete a frame.
  options.idle_timeout_ms = 100;
  ServerFixture fx(options, /*log_queries=*/6);
  Rng rng(20260808);

  for (int round = 0; round < 40; ++round) {
    RawConn conn(fx.server->port());
    ASSERT_TRUE(conn.connected());
    std::string bytes;
    if (round % 3 == 0) {
      // Pure noise: random length, random bytes.
      size_t len = 1 + rng.Uniform(512);
      for (size_t i = 0; i < len; ++i) {
        bytes.push_back(static_cast<char>(rng.Next() & 0xFF));
      }
    } else {
      // A well-formed handshake followed by a well-formed Search frame
      // with one random bit flipped somewhere.
      bytes = FrameHello(net::kProtocolVersion);
      BinaryWriter w;
      net::BeginRequest(&w, 2, net::Op::kSearch);
      net::SearchRequest req;
      req.viewer = "alice";
      req.spec.keyword = net::KeywordSpec{"sensors", true};
      net::EncodeSearchRequest(&w, req);
      std::string frame;
      AppendFrame(&frame, w.data());
      size_t bit = rng.Uniform(frame.size() * 8);
      frame[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      bytes += frame;
    }
    conn.Write(bytes);
    // Either a typed error arrives and the server disconnects, or the
    // flipped bit produced a benign frame and the server answers; both
    // end with the connection usable or cleanly closed — never a hang
    // or a crash. Half the rounds just slam the connection shut.
    if (round % 2 == 0) conn.DrainUntilClose();
  }

  // The server survived: a fresh client still gets full service.
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->protocol_errors, 10u);
}

TEST(ServerTest, OversizedFrameIsATypedErrorThenDisconnect) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  ServerFixture fx(options, /*log_queries=*/4);
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);

  BinaryWriter w;
  net::BeginRequest(&w, 3, net::Op::kSearch);
  net::SearchRequest req;
  req.viewer = "alice";
  req.spec.substring = std::string(4096, 'q');  // payload > 1024
  net::EncodeSearchRequest(&w, req);
  ASSERT_TRUE(client->SendRawPayload(w.data()).ok());

  auto raw = client->ReadRawPayload();
  ASSERT_TRUE(raw.ok()) << raw.status();
  net::ResponseEnvelope env;
  ASSERT_TRUE(net::DecodeResponseEnvelope(*raw, &env));
  EXPECT_EQ(env.code, StatusCode::kInvalidArgument);
  // The connection is then closed.
  auto next = client->ReadRawPayload();
  EXPECT_FALSE(next.ok());
}

TEST(ServerTest, TruncatedFrameThenCloseIsHandled) {
  ServerFixture fx(ServerOptions{}, /*log_queries=*/4);
  {
    RawConn conn(fx.server->port());
    ASSERT_TRUE(conn.connected());
    std::string frame = FrameHello(net::kProtocolVersion);
    conn.Write(frame.substr(0, frame.size() / 2));
  }  // close mid-frame
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Stats().ok());
}

// --- limits ----------------------------------------------------------------

TEST(ServerTest, IdleConnectionsAreClosed) {
  ServerOptions options;
  options.idle_timeout_ms = 150;
  ServerFixture fx(options, /*log_queries=*/4);
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);
  // The connection dies quietly after ~150ms of silence; the next read
  // reports it closed.
  auto read = client->ReadRawPayload();
  EXPECT_FALSE(read.ok());
}

TEST(ServerTest, MaxConnsRejectsTheOverflowConnection) {
  ServerOptions options;
  options.max_conns = 2;
  ServerFixture fx(options, /*log_queries=*/4);
  auto a = fx.Client();
  ASSERT_NE(a, nullptr);
  auto b_result = CqmsClient::Connect("127.0.0.1", fx.server->port());
  ASSERT_TRUE(b_result.ok()) << b_result.status();
  // The third connection is accepted and immediately closed: the
  // handshake cannot complete.
  auto c_result = CqmsClient::Connect("127.0.0.1", fx.server->port());
  EXPECT_FALSE(c_result.ok());

  auto stats = a->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->rejected_connections, 1u);
  EXPECT_LE(stats->active_connections, 2u);
}

// --- poll() fallback -------------------------------------------------------

TEST(ServerTest, PollFallbackServesTheSameProtocol) {
  ServerOptions options;
  options.use_poll = true;
  ServerFixture fx(options, /*log_queries=*/8);
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);

  net::SearchSpec spec;
  spec.keyword = net::KeywordSpec{"sensors", true};
  auto wire = client->Search("alice", spec);
  ASSERT_TRUE(wire.ok()) << wire.status();
  metaquery::MetaQueryResponse oracle =
      fx.cqms.Search("alice", net::ToMetaQueryRequest(spec, nullptr));
  ASSERT_EQ(wire->matches.size(), oracle.matches.size());
  for (size_t i = 0; i < oracle.matches.size(); ++i) {
    EXPECT_EQ(wire->matches[i].id, oracle.matches[i].id);
  }

  net::AppendRequest append;
  append.user = "bob";
  append.sql = "SELECT * FROM Species";
  auto appended = client->Append(append);
  ASSERT_TRUE(appended.ok()) << appended.status();
  EXPECT_TRUE(appended->succeeded);
}

// --- graceful shutdown -----------------------------------------------------

TEST(ServerTest, GracefulShutdownFlushesAcknowledgedWritesToDisk) {
  std::string dir = ::testing::TempDir() + "/cqms_server_shutdown";
  std::string cleanup = "rm -rf " + dir;
  std::system(cleanup.c_str());

  size_t acked = 0;
  {
    Cqms cqms;
    Status d = cqms.EnableDurability(dir);
    ASSERT_TRUE(d.ok()) << d;
    Status p = workload::PopulateLakeDatabase(cqms.database(), 40);
    ASSERT_TRUE(p.ok()) << p;
    cqms.RegisterUser("alice", {"lab0"});

    CqmsServer server(&cqms);
    ASSERT_TRUE(server.Start().ok());
    auto connected = CqmsClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(connected.ok()) << connected.status();
    CqmsClient& client = **connected;

    std::vector<uint64_t> ids;
    for (int i = 0; i < 10; ++i) {
      net::AppendRequest append;
      append.user = "alice";
      append.sql =
          "SELECT * FROM Sensors WHERE sensor_id < " + std::to_string(i + 1);
      ids.push_back(client.SendAppend(append));
    }
    ASSERT_TRUE(client.Flush().ok());
    for (uint64_t id : ids) {
      auto r = client.WaitAppend(id);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_TRUE(r->succeeded);
      ++acked;
    }
    server.Shutdown();  // graceful: drains, flushes, final checkpoint
    EXPECT_FALSE(server.running());
  }

  // Reopen: every acknowledged write must be there.
  Cqms reopened;
  Status d = reopened.EnableDurability(dir);
  ASSERT_TRUE(d.ok()) << d;
  EXPECT_EQ(reopened.store()->size(), acked);
  std::system(cleanup.c_str());
}

TEST(ServerTest, InFlightRequestsCompleteDuringShutdown) {
  ServerFixture fx;
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);

  // Queue a batch, flush, immediately request shutdown. The drain
  // contract: every request the server *dispatched* before the stop
  // still gets its (well-formed) response; requests still in the
  // kernel buffer may be dropped — but every Wait must return (answer
  // or clean close), never hang, and the server must terminate.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 16; ++i) {
    net::SearchSpec spec;
    spec.keyword = net::KeywordSpec{"sensors", true};
    ids.push_back(client->SendSearch("alice", spec));
  }
  ASSERT_TRUE(client->Flush().ok());
  fx.server->RequestShutdown();
  size_t returned = 0;
  for (uint64_t id : ids) {
    auto r = client->WaitSearch(id);
    if (r.ok()) EXPECT_FALSE(r->matches.empty());
    ++returned;
  }
  EXPECT_EQ(returned, ids.size());
  fx.server->Wait();
  EXPECT_FALSE(fx.server->running());
}

// --- observability over the wire -------------------------------------------

TEST(ServerTest, TracedSearchMatchesInProcessOracle) {
  ServerFixture fx;
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);

  net::SearchSpec spec;
  spec.keyword = net::KeywordSpec{"sensors", true};
  spec.want_trace = true;
  auto wire = client->Search("alice", spec);
  ASSERT_TRUE(wire.ok()) << wire.status();
  ASSERT_TRUE(wire->trace.has_value());

  // In-process oracle with its own trace: generator and the
  // deterministic candidate counters must agree exactly (span timings
  // are wall-clock and can differ).
  obs::ExecTrace oracle_trace;
  metaquery::MetaQueryRequest mreq = net::ToMetaQueryRequest(spec, nullptr);
  mreq.trace = &oracle_trace;
  metaquery::MetaQueryResponse oracle = fx.cqms.Search("alice", mreq);

  const net::TraceSummary& t = *wire->trace;
  EXPECT_EQ(t.generator, oracle_trace.generator);
  auto counter = [&](const char* name) -> uint64_t {
    for (const auto& [k, v] : t.counters) {
      if (k == name) return v;
    }
    return ~0ull;
  };
  EXPECT_EQ(counter("candidates"), oracle.candidates_considered);
  EXPECT_EQ(counter("matches"), oracle.matches.size());
  EXPECT_EQ(counter("matches"), wire->matches.size());
  EXPECT_EQ(counter("matches_prefilter"),
            oracle_trace.CounterOr("matches_prefilter"));
  EXPECT_EQ(t.spans_micros.size(), 4u);

  // An untraced search must not carry a trace.
  spec.want_trace = false;
  auto plain = client->Search("alice", spec);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_FALSE(plain->trace.has_value());
}

TEST(ServerTest, MetricsDumpCoversEveryLayer) {
  ServerFixture fx;
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);

  // Drive one op of each kind so the per-op and per-layer series exist.
  net::SearchSpec spec;
  spec.keyword = net::KeywordSpec{"sensors", true};
  ASSERT_TRUE(client->Search("alice", spec).ok());
  net::AppendRequest append;
  append.user = "alice";
  append.sql = "SELECT * FROM Sensors WHERE sensor_id < 3";
  ASSERT_TRUE(client->Append(append).ok());

  auto dump = client->MetricsDump();
  ASSERT_TRUE(dump.ok()) << dump.status();
  const std::string& text = *dump;
  // Planner layer (registry), server layer (per-op counters), and the
  // storage/publish layer must all be present in one dump.
  EXPECT_NE(text.find("cqms_planner_queries_total"), std::string::npos) << text;
  EXPECT_NE(text.find("cqms_search_total 1"), std::string::npos) << text;
  EXPECT_NE(text.find("cqms_append_total 1"), std::string::npos) << text;
  EXPECT_NE(text.find("cqms_views_published_total"), std::string::npos);
  EXPECT_NE(text.find("cqms_server_uptime_micros"), std::string::npos);
  EXPECT_NE(text.find("cqms_server_connections_total 1"), std::string::npos);
}

TEST(ServerTest, StatsCarriesDurabilityAndArenaFields) {
  std::string dir = ::testing::TempDir() + "/obs_stats_durable";
  std::string cleanup = "rm -rf " + dir;
  std::system(cleanup.c_str());

  // Durability must see a pristine store, so this test builds its own
  // Cqms instead of using the (pre-seeded) fixture.
  Cqms cqms;
  Status d = cqms.EnableDurability(dir);
  ASSERT_TRUE(d.ok()) << d;
  Status p = workload::PopulateLakeDatabase(cqms.database(), 40);
  ASSERT_TRUE(p.ok()) << p;
  cqms.RegisterUser("alice", {"lab0"});
  cqms.Execute("alice", "SELECT * FROM Sensors WHERE sensor_id < 5");

  CqmsServer server(&cqms);
  ASSERT_TRUE(server.Start().ok());
  auto connected = CqmsClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.status();

  auto stats = (*connected)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  // Healthy durable server: writable, no failures, no backoff.
  EXPECT_FALSE(stats->durable_read_only);
  EXPECT_EQ(stats->checkpoint_failure_streak, 0u);
  EXPECT_EQ(stats->checkpoints_backed_off, 0u);
  server.Shutdown();
  std::system(cleanup.c_str());
}

TEST(ServerTest, SlowQueryLogCapturesSlowSearches) {
  std::string path = ::testing::TempDir() + "/obs_server_slow.jsonl";
  std::remove(path.c_str());
  ServerOptions options;
  options.slow_query_micros = 1;  // every search is "slow"
  options.slow_query_log_path = path;
  ServerFixture fx(options);
  auto client = fx.Client();
  ASSERT_NE(client, nullptr);

  net::SearchSpec spec;
  spec.keyword = net::KeywordSpec{"sensors", true};
  ASSERT_TRUE(client->Search("alice", spec).ok());
  ASSERT_TRUE(client->Search("bob", spec).ok());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[8192];
  std::vector<std::string> lines;
  while (std::fgets(buf, sizeof buf, f) != nullptr) lines.emplace_back(buf);
  std::fclose(f);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"viewer\":\"alice\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"op\":\"Search\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"generator\":\"posting_intersection\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"viewer\":\"bob\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ServerTest, SlowQueryMicrosWithoutPathFailsStart) {
  ServerOptions options;
  options.slow_query_micros = 1000;
  ServerFixture fx(options, /*log_queries=*/4, /*start=*/false);
  Status s = fx.server->Start();
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace cqms::server
