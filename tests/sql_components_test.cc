#include "sql/components.h"

#include <gtest/gtest.h>

#include "sql/canonical.h"
#include "sql/diff.h"
#include "sql/parser.h"

namespace cqms::sql {
namespace {

QueryComponents Components(const std::string& text) {
  auto r = Parse(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return CollectComponents(**r);
}

TEST(ComponentsTest, TablesAreResolvedAndLowercased) {
  auto c = Components("SELECT * FROM WaterSalinity S, WaterTemp T");
  ASSERT_EQ(c.tables.size(), 2u);
  EXPECT_EQ(c.tables[0], "watersalinity");
  EXPECT_EQ(c.tables[1], "watertemp");
  EXPECT_EQ(c.num_joins, 1);
}

TEST(ComponentsTest, AliasResolutionInPredicates) {
  auto c = Components(
      "SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x "
      "AND T.temp < 18");
  ASSERT_EQ(c.predicates.size(), 2u);
  const PredicateFeature& join = c.predicates[0];
  EXPECT_TRUE(join.is_join);
  EXPECT_EQ(join.relation, "watersalinity");
  EXPECT_EQ(join.attribute, "loc_x");
  EXPECT_EQ(join.rhs_relation, "watertemp");
  const PredicateFeature& sel = c.predicates[1];
  EXPECT_FALSE(sel.is_join);
  EXPECT_EQ(sel.relation, "watertemp");
  EXPECT_EQ(sel.attribute, "temp");
  EXPECT_EQ(sel.op, "<");
  EXPECT_EQ(sel.constant, "18");
}

TEST(ComponentsTest, UnqualifiedColumnResolvesWithSingleTable) {
  auto c = Components("SELECT temp FROM WaterTemp WHERE temp > 5");
  ASSERT_FALSE(c.attributes.empty());
  EXPECT_EQ(c.attributes[0].first, "watertemp");
  EXPECT_EQ(c.attributes[0].second, "temp");
}

TEST(ComponentsTest, FlippedConstantComparisonIsNormalized) {
  auto c = Components("SELECT * FROM t WHERE 18 > temp");
  ASSERT_EQ(c.predicates.size(), 1u);
  EXPECT_EQ(c.predicates[0].op, "<");
  EXPECT_EQ(c.predicates[0].constant, "18");
}

TEST(ComponentsTest, JoinOrientationIsNormalized) {
  auto a = Components("SELECT * FROM a, b WHERE a.x = b.y");
  auto b = Components("SELECT * FROM a, b WHERE b.y = a.x");
  ASSERT_EQ(a.predicates.size(), 1u);
  ASSERT_EQ(b.predicates.size(), 1u);
  EXPECT_EQ(a.predicates[0].ToString(), b.predicates[0].ToString());
}

TEST(ComponentsTest, InBetweenIsNullPredicates) {
  auto c = Components(
      "SELECT * FROM t WHERE a IN (1,2) AND b BETWEEN 3 AND 4 AND c IS NULL");
  ASSERT_EQ(c.predicates.size(), 3u);
  EXPECT_EQ(c.predicates[0].op, "IN");
  EXPECT_EQ(c.predicates[0].constant, "(1, 2)");
  EXPECT_EQ(c.predicates[1].op, "BETWEEN");
  EXPECT_EQ(c.predicates[1].constant, "3 AND 4");
  EXPECT_EQ(c.predicates[2].op, "IS NULL");
}

TEST(ComponentsTest, SubqueryDetectionAndDepth) {
  auto c = Components(
      "SELECT * FROM t WHERE x IN (SELECT y FROM u WHERE y IN "
      "(SELECT z FROM v))");
  EXPECT_TRUE(c.has_subquery);
  EXPECT_EQ(c.max_nesting_depth, 2);
  // Tables from all nesting levels are collected.
  EXPECT_EQ(c.tables.size(), 3u);
}

TEST(ComponentsTest, AggregatesAndGroupBy) {
  auto c = Components(
      "SELECT city, AVG(temp), COUNT(*) FROM t GROUP BY city ORDER BY city");
  EXPECT_EQ(c.aggregates.size(), 2u);  // AVG, COUNT (sorted, deduped)
  EXPECT_EQ(c.group_by.size(), 1u);
  EXPECT_EQ(c.order_by.size(), 1u);
}

TEST(ComponentsTest, PredicateSkeletonStripsConstant) {
  auto c = Components("SELECT * FROM WaterTemp WHERE temp < 18");
  ASSERT_EQ(c.predicates.size(), 1u);
  EXPECT_EQ(c.predicates[0].Skeleton(), "watertemp.temp < ?");
}

TEST(CanonicalTest, ConjunctOrderDoesNotMatter) {
  auto a = Parse("SELECT * FROM t WHERE x = 1 AND y = 2");
  auto b = Parse("SELECT * FROM t WHERE y = 2 AND x = 1");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CanonicalText(**a), CanonicalText(**b));
  EXPECT_EQ(Fingerprint(**a), Fingerprint(**b));
}

TEST(CanonicalTest, IdentifierCaseDoesNotMatter) {
  auto a = Parse("SELECT Temp FROM WaterTemp");
  auto b = Parse("select temp from watertemp");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(Fingerprint(**a), Fingerprint(**b));
}

TEST(CanonicalTest, CommaJoinedTablesAreSorted) {
  auto a = Parse("SELECT * FROM b, a");
  auto b = Parse("SELECT * FROM a, b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CanonicalText(**a), CanonicalText(**b));
}

TEST(CanonicalTest, ExplicitJoinOrderIsPreserved) {
  auto a = Parse("SELECT * FROM b JOIN a ON a.x = b.x");
  auto b = Parse("SELECT * FROM a JOIN b ON a.x = b.x");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(CanonicalText(**a), CanonicalText(**b));
}

TEST(CanonicalTest, SkeletonEqualForDifferentConstants) {
  auto a = Parse("SELECT * FROM t WHERE temp < 22");
  auto b = Parse("SELECT * FROM t WHERE temp < 18");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CanonicalSkeleton(**a), CanonicalSkeleton(**b));
  EXPECT_NE(CanonicalText(**a), CanonicalText(**b));
  EXPECT_EQ(SkeletonFingerprint(**a), SkeletonFingerprint(**b));
}

TEST(DiffTest, IdenticalQueriesProduceEmptyDiff) {
  auto a = Parse("SELECT * FROM t WHERE x = 1");
  auto b = Parse("SELECT * FROM t WHERE x = 1");
  ASSERT_TRUE(a.ok() && b.ok());
  QueryDiff d = DiffQueries(**a, **b);
  EXPECT_TRUE(d.Identical());
  EXPECT_EQ(d.Summary(), "(identical)");
}

TEST(DiffTest, AddedTableDetected) {
  auto a = Parse("SELECT * FROM WaterTemp");
  auto b = Parse("SELECT * FROM WaterTemp, WaterSalinity");
  ASSERT_TRUE(a.ok() && b.ok());
  QueryDiff d = DiffQueries(**a, **b);
  ASSERT_GE(d.edits.size(), 1u);
  EXPECT_EQ(d.edits[0].kind, QueryEdit::Kind::kAddTable);
  EXPECT_EQ(d.edits[0].detail, "+watersalinity");
}

TEST(DiffTest, ConstantModificationDetectedAsSingleEdit) {
  // The Figure 2 scenario: the user tried temp < 22, then temp < 18.
  auto a = Parse("SELECT * FROM WaterTemp WHERE temp < 22");
  auto b = Parse("SELECT * FROM WaterTemp WHERE temp < 18");
  ASSERT_TRUE(a.ok() && b.ok());
  QueryDiff d = DiffQueries(**a, **b);
  ASSERT_EQ(d.edits.size(), 1u);
  EXPECT_EQ(d.edits[0].kind, QueryEdit::Kind::kModifyConstant);
  EXPECT_NE(d.edits[0].detail.find("->"), std::string::npos);
}

TEST(DiffTest, AddedPredicatesDetected) {
  auto a = Parse("SELECT * FROM s, t WHERE t.temp < 18");
  auto b = Parse(
      "SELECT * FROM s, t WHERE t.temp < 18 AND s.loc_x = t.loc_x AND "
      "s.loc_y = t.loc_y");
  ASSERT_TRUE(a.ok() && b.ok());
  QueryDiff d = DiffQueries(**a, **b);
  EXPECT_EQ(d.Distance(), 2u);
  for (const auto& e : d.edits) {
    EXPECT_EQ(e.kind, QueryEdit::Kind::kAddPredicate);
  }
}

TEST(DiffTest, ProjectionAndLimitChanges) {
  auto a = Parse("SELECT a FROM t");
  auto b = Parse("SELECT a, b FROM t LIMIT 10");
  ASSERT_TRUE(a.ok() && b.ok());
  QueryDiff d = DiffQueries(**a, **b);
  bool saw_projection = false, saw_limit = false;
  for (const auto& e : d.edits) {
    if (e.kind == QueryEdit::Kind::kAddProjection) saw_projection = true;
    if (e.kind == QueryEdit::Kind::kChangeLimit) saw_limit = true;
  }
  EXPECT_TRUE(saw_projection);
  EXPECT_TRUE(saw_limit);
}

TEST(DiffTest, DistinctToggleAndGroupByChange) {
  auto a = Parse("SELECT city FROM t");
  auto b = Parse("SELECT DISTINCT city FROM t GROUP BY city");
  ASSERT_TRUE(a.ok() && b.ok());
  QueryDiff d = DiffQueries(**a, **b);
  bool saw_distinct = false, saw_group = false;
  for (const auto& e : d.edits) {
    if (e.kind == QueryEdit::Kind::kToggleDistinct) saw_distinct = true;
    if (e.kind == QueryEdit::Kind::kChangeGroupBy) saw_group = true;
  }
  EXPECT_TRUE(saw_distinct);
  EXPECT_TRUE(saw_group);
}

}  // namespace
}  // namespace cqms::sql
