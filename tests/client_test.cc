#include <gtest/gtest.h>

#include "client/browse.h"
#include "common/string_util.h"
#include "client/session_view.h"
#include "miner/clustering.h"
#include "miner/sessionizer.h"
#include "test_util.h"

namespace cqms::client {
namespace {

using testing_util::Harness;

TEST(SessionViewTest, AsciiShowsOffsetsAndLabels) {
  Harness h;
  h.clock.Set(0);
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 22",
        95 * kMicrosPerSecond);
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 18");
  auto sessions = miner::IdentifySessions(&h.store);
  ASSERT_EQ(sessions.size(), 1u);
  std::string ascii = RenderSessionAscii(h.store, sessions[0]);
  EXPECT_NE(ascii.find("+0:00"), std::string::npos);
  EXPECT_NE(ascii.find("+1:35"), std::string::npos);
  EXPECT_NE(ascii.find("user alice"), std::string::npos);
}

TEST(SessionViewTest, LongTextsAreTruncated) {
  Harness h;
  std::string long_query = "SELECT lake, loc_x, loc_y, temp FROM WaterTemp "
                           "WHERE temp < 18 AND loc_x > 0 AND loc_y > 0 "
                           "ORDER BY temp DESC LIMIT 100";
  h.Log("alice", long_query, kMicrosPerSecond);
  auto sessions = miner::IdentifySessions(&h.store);
  std::string ascii = RenderSessionAscii(h.store, sessions[0], 40);
  for (const std::string& line : Split(ascii, '\n')) {
    EXPECT_LE(line.size(), 60u) << line;  // node label capped at ~40 + prefix
  }
}

TEST(SessionViewTest, DotEscapesQuotes) {
  Harness h;
  h.Log("alice", "SELECT * FROM CityLocations WHERE state = 'WA'");
  auto sessions = miner::IdentifySessions(&h.store);
  std::string dot = RenderSessionDot(h.store, sessions[0]);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_EQ(dot.find("state = \"WA\""), std::string::npos);  // quotes escaped
}

TEST(BrowseTest, SummaryGroupsBySessionAndFiltersAcl) {
  Harness h;
  h.store.acl().AddUser("alice", {"g1"});
  h.store.acl().AddUser("eve", {"g2"});
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 22", kMicrosPerSecond);
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 18");
  auto sessions = miner::IdentifySessions(&h.store);

  std::string for_alice = RenderLogSummary(h.store, sessions, "alice");
  EXPECT_NE(for_alice.find("session #"), std::string::npos);
  EXPECT_NE(for_alice.find("2 queries"), std::string::npos);

  std::string for_eve = RenderLogSummary(h.store, sessions, "eve");
  EXPECT_NE(for_eve.find("(no visible sessions)"), std::string::npos);
}

TEST(BrowseTest, QueryDetailsShowEverything) {
  Harness h;
  storage::QueryId id =
      h.Log("alice", "SELECT lake FROM WaterTemp WHERE temp < 18");
  ASSERT_TRUE(h.store.Annotate(id, {"alice", 0, "cold probe", "temp < 18"}).ok());
  ASSERT_TRUE(h.store.AddFlag(id, storage::kFlagStatsStale).ok());
  std::string details = RenderQueryDetails(h.store, id);
  EXPECT_NE(details.find("SELECT lake FROM WaterTemp"), std::string::npos);
  EXPECT_NE(details.find("status: ok"), std::string::npos);
  EXPECT_NE(details.find("stats-stale"), std::string::npos);
  EXPECT_NE(details.find("cold probe"), std::string::npos);
  EXPECT_NE(details.find("[on: temp < 18]"), std::string::npos);
  EXPECT_NE(details.find("output:"), std::string::npos);
  EXPECT_EQ(RenderQueryDetails(h.store, 999), "(no such query)\n");
}

TEST(BrowseTest, FailedQueryDetailsShowError) {
  Harness h;
  storage::QueryId id = h.Log("alice", "SELECT nope FROM WaterTemp");
  std::string details = RenderQueryDetails(h.store, id);
  EXPECT_NE(details.find("FAILED"), std::string::npos);
  EXPECT_NE(details.find("error:"), std::string::npos);
}

TEST(BrowseTest, ClusterViewShowsMedoidsAndSizes) {
  Harness h;
  std::vector<storage::QueryId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < " +
                                     std::to_string(i)));
    ids.push_back(h.Log("alice", "SELECT city FROM CityLocations WHERE pop > " +
                                     std::to_string(i * 1000)));
  }
  miner::KMedoidsOptions opts;
  opts.k = 2;
  auto clustering = miner::KMedoidsCluster(h.store, ids, opts);
  std::string view = RenderClusters(h.store, clustering, "alice");
  EXPECT_NE(view.find("cluster 0"), std::string::npos);
  EXPECT_NE(view.find("4 queries"), std::string::npos);
}

}  // namespace
}  // namespace cqms::client
