// Concurrency suite: the epoch/read-view publication pipeline
// (docs/concurrency.md) plus the single-thread bugs that blocked it —
// wall-anchored SystemClock, const-correct LSH probing, set-once Ast()
// materialization. The stress test at the bottom runs 8 readers against
// 1 writer and checks every sampled view against a serial replay
// oracle; CI runs this binary under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "metaquery/meta_query_executor.h"
#include "metaquery/meta_query_planner.h"
#include "metaquery/meta_query_request.h"
#include "storage/epoch.h"
#include "storage/query_store.h"
#include "storage/record_builder.h"
#include "storage/snapshot_v2.h"

namespace cqms::storage {
namespace {

// --- SystemClock: wall-anchored timestamps (the persistence bug) -----------

TEST(SystemClockTest, NowIsAnchoredToUnixEpoch) {
  // Regression: SystemClock::Now() used steady_clock, whose epoch is
  // arbitrary per boot (typically "time since power-on"). Timestamps
  // are persisted into snapshots and the WAL, so after a reboot fresh
  // stamps would compare wildly against restored ones. Unix-epoch
  // anchoring is the testable half of that fix: a per-boot epoch could
  // never land in this window.
  SystemClock clock;
  Micros now = clock.Now();
  EXPECT_GT(now, 1'577'836'800'000'000LL);  // 2020-01-01
  EXPECT_LT(now, 4'102'444'800'000'000LL);  // 2100-01-01
}

TEST(SystemClockTest, RestoreAcrossRebootKeepsLogOrder) {
  // Simulated two-boot run: the wall clock keeps advancing across the
  // "reboot" while the process restarts around the snapshot. Restored
  // timestamps must sort before anything the resumed wall clock stamps,
  // or sessionization gaps and recency ranking silently corrupt.
  SimulatedClock wall(1'700'000'000'000'000);  // wall epoch, 2023-ish
  QueryStore store;
  store.Append(BuildRecordFromText("SELECT a FROM sensors", "u", wall.Now()));
  wall.Advance(kMicrosPerMinute);
  store.Append(BuildRecordFromText("SELECT b FROM sensors", "u", wall.Now()));
  std::string path = ::testing::TempDir() + "/clock_epoch_snapshot.bin";
  ASSERT_TRUE(SaveSnapshotV2(store, path).ok());

  wall.Advance(30 * kMicrosPerMinute);  // downtime across the reboot
  QueryStore restored;
  ASSERT_TRUE(LoadSnapshotV2(&restored, path).ok());
  EXPECT_EQ(restored.max_timestamp(), store.max_timestamp());
  Micros fresh = wall.Now();
  EXPECT_GT(fresh, restored.max_timestamp());
  restored.Append(BuildRecordFromText("SELECT c FROM sensors", "u", fresh));
  EXPECT_EQ(restored.max_timestamp(), fresh);
}

// --- EpochDomain ----------------------------------------------------------

TEST(EpochDomainTest, ReclaimWaitsForEarlierPins) {
  EpochDomain domain;
  auto obj = std::make_shared<int>(42);
  std::weak_ptr<int> alive = obj;

  size_t slot = domain.Pin();  // stamped before the retire
  domain.Retire(std::shared_ptr<const void>(std::move(obj)));
  EXPECT_EQ(domain.retired_count(), 1u);
  domain.Reclaim();
  EXPECT_FALSE(alive.expired());  // the earlier pin blocks reclamation

  size_t late = domain.Pin();  // stamped after the retire: must not block
  domain.Unpin(slot);
  domain.Reclaim();
  EXPECT_TRUE(alive.expired());
  EXPECT_EQ(domain.retired_count(), 0u);
  domain.Unpin(late);
}

TEST(EpochDomainTest, TryPinReportsExhaustion) {
  EpochDomain domain;
  std::vector<size_t> slots;
  for (size_t i = 0; i < EpochDomain::kMaxSlots; ++i) {
    size_t s = domain.TryPin();
    ASSERT_NE(s, EpochDomain::kNoSlot);
    slots.push_back(s);
  }
  EXPECT_EQ(domain.TryPin(), EpochDomain::kNoSlot);
  for (size_t s : slots) domain.Unpin(s);
  EXPECT_NE(domain.TryPin(), EpochDomain::kNoSlot);
}

// --- LshIndex: const probing with caller scratch --------------------------

TEST(LshScratchTest, ConcurrentCandidatesMatchSerial) {
  // Regression: Candidates() was const but wrote mutable per-index
  // scratch, so two concurrent probes corrupted each other's dedup
  // state. Scratch now lives with the caller (or thread_local).
  QueryStore store;
  std::vector<QueryRecord> probes;
  for (int i = 0; i < 160; ++i) {
    std::string sql = "SELECT a, b FROM tbl" + std::to_string(i % 5) +
                      " WHERE a > " + std::to_string(i);
    store.Append(BuildRecordFromText(sql, "u", i + 1));
  }
  for (int i = 0; i < 4; ++i) {
    probes.push_back(BuildRecordFromText(
        "SELECT a FROM tbl" + std::to_string(i) + " WHERE a > 1", "u", 0,
        SignatureMode::kTransient));
  }

  std::vector<std::vector<QueryId>> expected;
  for (const QueryRecord& p : probes) {
    expected.push_back(store.lsh().Candidates(p.sketch));
  }

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      LshProbeScratch scratch;  // caller-owned, reused across probes
      for (int iter = 0; iter < 50; ++iter) {
        size_t pi = static_cast<size_t>((t + iter) % probes.size());
        std::vector<QueryId> got =
            store.lsh().Candidates(probes[pi].sketch, 0, &scratch);
        if (got != expected[pi]) mismatches.fetch_add(1);
        // Also exercise the thread_local fallback path.
        got = store.lsh().Candidates(probes[pi].sketch);
        if (got != expected[pi]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- QueryRecord::Ast(): set-once lazy materialization --------------------

TEST(QueryRecordTest, ConcurrentAstMaterializationAgrees) {
  QueryRecord r = BuildRecordFromText(
      "SELECT t.a FROM sensors t WHERE t.a > 5", "u", 1);
  ASSERT_TRUE(r.text_parses);
  r.ast = nullptr;  // simulate a snapshot-restored record (tree dropped)
  ASSERT_FALSE(r.parse_failed());

  constexpr int kThreads = 8;
  std::vector<const sql::SelectStatement*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() { seen[static_cast<size_t>(t)] = r.Ast(); });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_NE(seen[0], nullptr);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);  // one winner, shared
  }
}

// --- read-view publication semantics --------------------------------------

TEST(ReadViewTest, PinnedViewIsSnapshotIsolated) {
  QueryStore store;
  store.EnableViews();
  QueryId a =
      store.Append(BuildRecordFromText("SELECT a FROM sensors", "alice", 1));

  PinnedView view = store.PinView();
  ASSERT_TRUE(view);
  uint64_t pinned_seq = view->sequence();

  store.Append(BuildRecordFromText("SELECT b FROM plants", "alice", 2));
  ASSERT_TRUE(store.AddFlag(a, kFlagObsolete).ok());

  // The pinned view still shows the pre-mutation world.
  EXPECT_EQ(view->size(), 1u);
  EXPECT_FALSE(view->Get(a)->HasFlag(kFlagObsolete));  // COW protected
  EXPECT_EQ(view->postings().UsingTable("plants").size(), 0u);

  // A fresh pin sees everything.
  PinnedView fresh = store.PinView();
  EXPECT_GT(fresh->sequence(), pinned_seq);
  EXPECT_EQ(fresh->size(), 2u);
  EXPECT_TRUE(fresh->Get(a)->HasFlag(kFlagObsolete));
  EXPECT_EQ(fresh->postings().UsingTable("plants").size(), 1u);

  // The live store saw the mutations all along.
  EXPECT_TRUE(store.Get(a)->HasFlag(kFlagObsolete));
}

TEST(ReadViewTest, PublishEveryBatchesMutations) {
  QueryStore store;
  ViewOptions options;
  options.publish_every = 4;
  store.EnableViews(options);
  uint64_t seq0 = store.published_sequence();
  for (int i = 0; i < 3; ++i) {
    store.Append(BuildRecordFromText("SELECT " + std::to_string(i), "u", i + 1));
  }
  EXPECT_EQ(store.published_sequence(), seq0);  // 3 < publish_every
  store.Append(BuildRecordFromText("SELECT 99", "u", 99));
  EXPECT_EQ(store.published_sequence(), seq0 + 1);
  PinnedView view = store.PinView();
  EXPECT_EQ(view->size(), 4u);
}

TEST(ReadViewTest, ScopedPublishBatchDefersToScopeExit) {
  QueryStore store;
  store.EnableViews();
  uint64_t seq0 = store.published_sequence();
  {
    QueryStore::ScopedPublishBatch batch(&store);
    for (int i = 0; i < 10; ++i) {
      store.Append(
          BuildRecordFromText("SELECT " + std::to_string(i), "u", i + 1));
    }
    EXPECT_EQ(store.published_sequence(), seq0);  // nothing mid-batch
    EXPECT_EQ(store.PinView()->size(), 0u);
  }
  EXPECT_EQ(store.published_sequence(), seq0 + 1);  // exactly one publish
  EXPECT_EQ(store.PinView()->size(), 10u);
}

TEST(ReadViewTest, SharedViewOutlivesRetirement) {
  QueryStore store;
  store.EnableViews();
  store.Append(BuildRecordFromText("SELECT a FROM sensors", "u", 1));
  std::shared_ptr<const ReadViewState> held = store.SharedView();
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->size(), 1u);
  uint64_t held_seq = held->sequence();

  // Many republishes retire (and epoch-reclaim) the intermediate views;
  // the refcounted handle must keep exactly its own alive.
  for (int i = 0; i < 20; ++i) {
    store.Append(
        BuildRecordFromText("SELECT " + std::to_string(i), "u", i + 2));
  }
  EXPECT_EQ(held->sequence(), held_seq);
  EXPECT_EQ(held->size(), 1u);
  EXPECT_EQ(held->postings().UsingTable("sensors").size(), 1u);
  EXPECT_EQ(store.SharedView()->size(), 21u);
}

TEST(ReadViewTest, SnapshotSavedFromViewMatchesLive) {
  QueryStore store;
  store.acl().AddUser("alice", {"lab"});
  store.EnableViews();
  store.Append(BuildRecordFromText("SELECT a FROM sensors", "alice", 1));
  store.Append(BuildRecordFromText("SELECT b FROM plants", "alice", 2));

  std::shared_ptr<const ReadViewState> view = store.SharedView();
  std::string from_view, from_live;
  ASSERT_TRUE(EncodeSnapshotV2(*view, 0, &from_view).ok());
  ASSERT_TRUE(EncodeSnapshotV2(store, 0, &from_live).ok());
  EXPECT_EQ(from_view, from_live);  // byte-identical encodings

  std::string path = ::testing::TempDir() + "/view_snapshot.bin";
  ASSERT_TRUE(SaveSnapshotV2(*view, path).ok());
  QueryStore restored;
  ASSERT_TRUE(LoadSnapshotV2(&restored, path).ok());
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_TRUE(restored.acl().HasUser("alice"));
}

TEST(ReadViewTest, ExecutorUsesViewsAndMatchesLivePath) {
  // Same data, one store with views and one without: the executor must
  // return identical results through both paths.
  QueryStore with_views, live_only;
  for (QueryStore* s : {&with_views, &live_only}) {
    s->acl().AddUser("alice", {"lab"});
    for (int i = 0; i < 30; ++i) {
      std::string sql = "SELECT a, b FROM tbl" + std::to_string(i % 3) +
                        " WHERE a > " + std::to_string(i);
      s->Append(BuildRecordFromText(sql, "alice", i + 1));
    }
  }
  with_views.EnableViews();

  metaquery::MetaQueryExecutor ex_views(&with_views);
  metaquery::MetaQueryExecutor ex_live(&live_only);
  QueryRecord probe = BuildRecordFromText(
      "SELECT a FROM tbl1 WHERE a > 3", "alice", 0, SignatureMode::kTransient);

  metaquery::MetaQueryRequest request;
  request.SimilarTo(probe).Limit(5);
  metaquery::MetaQueryResponse a = ex_views.Execute("alice", request);
  metaquery::MetaQueryResponse b = ex_live.Execute("alice", request);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].id, b.matches[i].id);
    EXPECT_EQ(a.matches[i].score, b.matches[i].score);
  }

  metaquery::MetaQueryRequest kw;
  kw.WithKeywords("tbl2").InLogOrder();
  kw.ranking.exclude_flagged = false;
  EXPECT_EQ(ex_views.Execute("alice", kw).Ids(),
            ex_live.Execute("alice", kw).Ids());
}

// --- 8 readers x 1 writer stress with a serial replay oracle ---------------

// Deterministic mutation script: every step applies exactly one
// mutation, so after k steps both the stress store and the replay store
// have mutation_count() == base + k.
struct Step {
  enum Kind { kAppend, kFlag } kind = kAppend;
  std::string sql;       // kAppend
  std::string user;      // kAppend
  Micros timestamp = 0;  // kAppend
  QueryId flag_id = 0;   // kFlag
};

std::vector<Step> MakeScript(size_t steps) {
  const char* tables[] = {"sensors", "plants", "sites", "samples", "readings"};
  std::vector<Step> script;
  size_t appended = 0;
  uint64_t flagged = 0;
  for (size_t i = 0; i < steps; ++i) {
    Step s;
    // Every 10th step tombstone-flags a distinct earlier id; the rest
    // append. Flag targets stay deterministic and are never repeated
    // (AddFlag on an already-set flag would be a no-op non-mutation and
    // desynchronize the mutation counting).
    if (i % 10 == 7 && flagged < appended) {
      s.kind = Step::kFlag;
      s.flag_id = static_cast<QueryId>(flagged++);
    } else {
      s.kind = Step::kAppend;
      s.sql = "SELECT a, b FROM " + std::string(tables[i % 5]) +
              " WHERE a > " + std::to_string(i);
      s.user = "u" + std::to_string(i % 4);
      s.timestamp = static_cast<Micros>((i + 1) * kMicrosPerSecond);
      ++appended;
    }
    script.push_back(std::move(s));
  }
  return script;
}

void ApplyStep(QueryStore* store, const Step& s) {
  if (s.kind == Step::kAppend) {
    store->Append(BuildRecordFromText(s.sql, s.user, s.timestamp));
  } else {
    ASSERT_TRUE(store->AddFlag(s.flag_id, kFlagObsolete).ok());
  }
}

struct Sample {
  uint64_t mutations = 0;
  size_t view_size = 0;
  std::vector<std::pair<QueryId, double>> knn;  // (id, score)
  std::vector<QueryId> keyword_ids;
};

TEST(ConcurrencyStressTest, ReadersSeeConsistentPrefixes) {
  constexpr size_t kPrefix = 40;    // applied before readers start
  constexpr size_t kLive = 200;     // applied concurrently with readers
  constexpr int kReaders = 8;
  std::vector<Step> script = MakeScript(kPrefix + kLive);

  QueryStore store;
  for (int u = 0; u < 4; ++u) {
    store.acl().AddUser("u" + std::to_string(u), {"lab"});
  }
  for (size_t i = 0; i < kPrefix; ++i) ApplyStep(&store, script[i]);
  const uint64_t base = store.mutation_count();
  ASSERT_EQ(base, kPrefix);
  store.EnableViews();

  // Built after the prefix so the probe's table symbols are interned.
  const QueryRecord probe = BuildRecordFromText(
      "SELECT a FROM sensors WHERE a > 3", "u0", 0, SignatureMode::kTransient);
  auto make_knn_request = [&probe]() {
    metaquery::MetaQueryRequest request;
    request.SimilarTo(probe).Limit(8);
    return request;
  };
  auto make_keyword_request = []() {
    metaquery::MetaQueryRequest request;
    request.WithKeywords("plants").InLogOrder();
    request.ranking.exclude_flagged = false;
    return request;
  };

  // Expected log size after m mutations (appends among the first m steps).
  std::vector<size_t> size_after(script.size() + 1, 0);
  for (size_t k = 0; k < script.size(); ++k) {
    size_after[k + 1] =
        size_after[k] + (script[k].kind == Step::kAppend ? 1 : 0);
  }

  std::atomic<bool> writer_done{false};
  std::vector<std::vector<Sample>> samples(kReaders);

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      uint64_t last_m = 0;
      int iterations = 0;
      while (!writer_done.load(std::memory_order_acquire) ||
             iterations < 30) {
        ++iterations;
        PinnedView view = store.PinView();
        ASSERT_TRUE(view);
        Sample sample;
        sample.mutations = view->mutations();
        sample.view_size = view->size();
        // Views are published in order: a later pin never sees an
        // earlier snapshot.
        ASSERT_GE(sample.mutations, last_m);
        last_m = sample.mutations;

        StoreView sv(*view);
        metaquery::MetaQueryPlanner planner{sv};
        VisibilityCache& cache = view->CacheFor("u0");
        metaquery::MetaQueryResponse knn =
            planner.Execute(make_knn_request(), &cache);
        for (const metaquery::MetaQueryMatch& m : knn.matches) {
          sample.knn.emplace_back(m.id, m.score);
        }
        sample.keyword_ids =
            planner.Execute(make_keyword_request(), &cache).Ids();
        samples[static_cast<size_t>(t)].push_back(std::move(sample));
        if (iterations > 4000) break;  // safety bound
      }
    });
  }

  std::thread writer([&]() {
    for (size_t i = kPrefix; i < script.size(); ++i) {
      ApplyStep(&store, script[i]);
      if (i % 8 == 0) std::this_thread::yield();
    }
    writer_done.store(true, std::memory_order_release);
  });

  writer.join();
  for (std::thread& r : readers) r.join();

  // Serial replay oracle: re-apply the script into a fresh store and,
  // at every sampled mutation count, run the same requests serially.
  std::map<uint64_t, Sample> sampled;
  size_t total_samples = 0;
  for (const auto& reader : samples) {
    total_samples += reader.size();
    for (const Sample& s : reader) sampled.emplace(s.mutations, s);
  }
  ASSERT_GT(total_samples, 0u);

  QueryStore replay;
  for (int u = 0; u < 4; ++u) {
    replay.acl().AddUser("u" + std::to_string(u), {"lab"});
  }
  size_t applied = 0;
  for (const auto& [m, observed] : sampled) {
    ASSERT_GE(m, base);
    ASSERT_LE(m, script.size());
    while (applied < m) {
      ApplyStep(&replay, script[applied]);
      ++applied;
    }
    ASSERT_EQ(replay.mutation_count(), m);
    EXPECT_EQ(observed.view_size, size_after[m]) << "at mutation " << m;

    metaquery::MetaQueryPlanner planner(&replay);
    metaquery::MetaQueryResponse knn =
        planner.Execute("u0", make_knn_request());
    ASSERT_EQ(observed.knn.size(), knn.matches.size())
        << "kNN diverged from serial oracle at mutation " << m;
    for (size_t i = 0; i < knn.matches.size(); ++i) {
      EXPECT_EQ(observed.knn[i].first, knn.matches[i].id)
          << "at mutation " << m << " rank " << i;
      EXPECT_EQ(observed.knn[i].second, knn.matches[i].score)
          << "at mutation " << m << " rank " << i;
    }
    EXPECT_EQ(observed.keyword_ids,
              planner.Execute("u0", make_keyword_request()).Ids())
        << "keyword search diverged at mutation " << m;
  }
}

// A writer that also mutates the ACL mid-run: readers on old views keep
// the old visibility, new views see the new rules.
TEST(ReadViewTest, AclChangesPublishLikeMutations) {
  QueryStore store;
  store.acl().AddUser("owner", {"lab"});
  store.EnableViews();
  QueryId id =
      store.Append(BuildRecordFromText("SELECT a FROM sensors", "owner", 1));

  PinnedView before = store.PinView();
  // "stranger" shares no group: default kGroup visibility hides the
  // query from them on this view.
  {
    VisibilityCache cache{StoreView(*before), "stranger"};
    EXPECT_FALSE(cache.VisibleId(id));
  }

  // ACL mutations tick publication like record mutations do.
  uint64_t seq = store.published_sequence();
  store.acl().AddUser("stranger", {"lab"});
  EXPECT_GT(store.published_sequence(), seq);

  PinnedView after = store.PinView();
  VisibilityCache cache{StoreView(*after), "stranger"};
  EXPECT_TRUE(cache.VisibleId(id));
}

}  // namespace
}  // namespace cqms::storage
