// Equivalence and regression tests for the precomputed similarity
// signatures: the interned fast path must produce scores identical to the
// string-based reference path across the full synthetic workload, and kNN
// must return exactly the neighbors a brute-force reference search finds.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/interner.h"
#include "maintain/query_maintenance.h"
#include "metaquery/knn.h"
#include "storage/record_builder.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace cqms::metaquery {
namespace {

using storage::QueryId;
using storage::QueryRecord;
using testing_util::Harness;

TEST(InternerTest, AssignsStableIds) {
  StringInterner interner;
  Symbol a = interner.Intern("watertemp");
  Symbol b = interner.Intern("watersalinity");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("watertemp"), a);
  EXPECT_EQ(interner.Find("watertemp"), a);
  EXPECT_EQ(interner.Find("never-seen"), kInvalidSymbol);
  EXPECT_EQ(interner.NameOf(a), "watertemp");
  EXPECT_EQ(interner.size(), 2u);
  // Find() must not insert.
  EXPECT_EQ(interner.Find("still-never-seen"), kInvalidSymbol);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(SimilaritySignatureTest, BuildRecordComputesSignature) {
  QueryRecord r = storage::BuildRecordFromText(
      "SELECT temp FROM WaterTemp WHERE temp < 20", "u", 0);
  ASSERT_TRUE(r.signature.valid);
  EXPECT_EQ(r.signature.tables.size(), 1u);
  EXPECT_FALSE(r.signature.text_tokens.empty());
  EXPECT_TRUE(std::is_sorted(r.signature.text_tokens.begin(),
                             r.signature.text_tokens.end()));
  // Unparsable text still gets a text-token signature.
  QueryRecord broken = storage::BuildRecordFromText("SELEC nonsense FRM", "u", 0);
  ASSERT_TRUE(broken.signature.valid);
  EXPECT_TRUE(broken.signature.tables.empty());
  EXPECT_FALSE(broken.signature.text_tokens.empty());
}

TEST(SimilaritySignatureTest, IdenticalAndDisjointPairs) {
  QueryRecord a = storage::BuildRecordFromText(
      "SELECT temp FROM WaterTemp WHERE temp < 20", "u", 0);
  QueryRecord b = storage::BuildRecordFromText(
      "SELECT temp FROM WaterTemp WHERE temp < 20", "u", 0);
  QueryRecord c = storage::BuildRecordFromText(
      "SELECT name FROM Species WHERE name = 'carp'", "u", 0);
  EXPECT_DOUBLE_EQ(FeatureSimilarity(a.signature, b.signature), 1.0);
  EXPECT_DOUBLE_EQ(TextSimilarity(a.signature, b.signature), 1.0);
  EXPECT_LT(FeatureSimilarity(a.signature, c.signature), 0.2);
  // Only SQL keywords overlap (select/from/where = 3 of 9 tokens).
  EXPECT_NEAR(TextSimilarity(a.signature, c.signature), 1.0 / 3.0, 1e-12);
}

/// The workhorse: every pairwise combined similarity over a mixed
/// synthetic log (parsed queries, typo'd unparsable queries, output
/// summaries of varying sizes) must match the reference path to 1e-12,
/// for several weight mixes.
TEST(SimilaritySignatureTest, MatchesReferencePathOnSyntheticWorkload) {
  Harness h;
  workload::WorkloadOptions options;
  options.num_sessions = 30;
  options.typo_rate = 0.10;  // Make sure unparsable records participate.
  workload::RegisterUsers(&h.store, options);
  workload::GenerateLog(h.profiler.get(), &h.store, &h.clock, options);
  ASSERT_GT(h.store.size(), 100u);

  const SimilarityWeights mixes[] = {
      {},                 // default combined mix
      {1.0, 0.0, 0.0},    // feature-only
      {0.2, 0.8, 0.0},    // text-heavy
      {0.3, 0.2, 0.5},    // output-heavy
  };
  const auto& records = h.store.records();
  size_t compared = 0;
  for (const SimilarityWeights& weights : mixes) {
    for (size_t i = 0; i < records.size(); i += 3) {
      for (size_t j = i + 1; j < records.size(); j += 5) {
        double fast = CombinedSimilarity(records[i], records[j], weights);
        double reference =
            CombinedSimilarityReference(records[i], records[j], weights);
        ASSERT_NEAR(fast, reference, 1e-12)
            << "pair (" << i << ", " << j << ")";
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 1000u);
}

/// Brute-force reference kNN: full candidate generation with a std::set,
/// per-call max_ts scan, store.Visible, and reference similarity — the
/// pre-signature implementation, kept here as executable specification.
std::vector<Neighbor> ReferenceKnn(const storage::QueryStore& store,
                                   const std::string& viewer,
                                   const QueryRecord& probe, size_t k,
                                   const SimilarityWeights& weights,
                                   const RankingOptions& ranking) {
  std::set<QueryId> candidates;
  if (!probe.parse_failed() && !probe.components.tables.empty()) {
    for (const std::string& t : probe.components.tables) {
      for (QueryId id : store.QueriesUsingTable(t)) candidates.insert(id);
    }
  } else {
    for (const auto& r : store.records()) candidates.insert(r.id);
  }
  Micros max_ts = 1;
  for (const auto& r : store.records()) max_ts = std::max(max_ts, r.timestamp);

  std::vector<Neighbor> scored;
  for (QueryId id : candidates) {
    if (!store.Visible(viewer, id)) continue;
    const QueryRecord* r = store.Get(id);
    if (r == nullptr) continue;
    if (ranking.exclude_flagged &&
        (r->HasFlag(storage::kFlagSchemaBroken) ||
         r->HasFlag(storage::kFlagObsolete))) {
      continue;
    }
    double sim = CombinedSimilarityReference(probe, *r, weights);
    if (sim < ranking.min_similarity) continue;
    double popularity =
        std::log1p(static_cast<double>(store.PopularityOf(r->fingerprint))) /
        std::log1p(static_cast<double>(store.size()) + 1.0);
    double recency = static_cast<double>(r->timestamp) / static_cast<double>(max_ts);
    double score = ranking.w_similarity * sim + ranking.w_popularity * popularity +
                   ranking.w_quality * r->quality + ranking.w_recency * recency;
    scored.push_back({id, sim, score});
  }
  size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  scored.resize(keep);
  return scored;
}

TEST(SimilaritySignatureTest, KnnMatchesBruteForceReference) {
  Harness h;
  workload::WorkloadOptions options;
  options.num_sessions = 25;
  workload::RegisterUsers(&h.store, options);
  workload::GenerateLog(h.profiler.get(), &h.store, &h.clock, options);

  const char* probes[] = {
      "SELECT T.temp FROM WaterSalinity S, WaterTemp T "
      "WHERE S.loc_x = T.loc_x AND T.temp < 20",
      "SELECT avg(temp) FROM WaterTemp GROUP BY loc_x",
      "SELECT * FROM Species",
  };
  for (const char* sql : probes) {
    QueryRecord probe = storage::BuildRecordFromText(sql, "user0", 0);
    ASSERT_FALSE(probe.parse_failed()) << sql;
    for (size_t k : {1u, 10u, 50u}) {
      std::vector<Neighbor> fast = KnnSearch(h.store, "user0", probe, k);
      std::vector<Neighbor> reference = ReferenceKnn(h.store, "user0", probe, k,
                                                     {}, {});
      ASSERT_EQ(fast.size(), reference.size()) << sql << " k=" << k;
      for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(fast[i].id, reference[i].id) << sql << " k=" << k << " i=" << i;
        EXPECT_NEAR(fast[i].similarity, reference[i].similarity, 1e-12);
        EXPECT_NEAR(fast[i].score, reference[i].score, 1e-12);
      }
    }
  }
}

/// kNN top-k regression on a fixed seed: the exact ids are not asserted
/// (they depend on generator internals), but the result must be stable
/// across two identical searches and respect the ranking invariants.
TEST(SimilaritySignatureTest, KnnDeterministicAndRanked) {
  Harness h;
  workload::WorkloadOptions options;
  options.num_sessions = 25;
  options.seed = 1234;
  workload::RegisterUsers(&h.store, options);
  workload::GenerateLog(h.profiler.get(), &h.store, &h.clock, options);

  QueryRecord probe = storage::BuildRecordFromText(
      "SELECT T.temp FROM WaterTemp T WHERE T.temp < 18", "user1", 0);
  std::vector<Neighbor> first = KnnSearch(h.store, "user1", probe, 10);
  std::vector<Neighbor> second = KnnSearch(h.store, "user1", probe, 10);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_DOUBLE_EQ(first[i].score, second[i].score);
  }
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_GE(first[i - 1].score, first[i].score);
  }
}

TEST(SimilaritySignatureTest, TransientProbesDoNotGrowInterner) {
  Harness h;
  h.Log("user0", "SELECT temp FROM WaterTemp WHERE temp < 20");
  size_t interned_before = GlobalInterner().size();

  storage::QueryRecord probe = storage::BuildRecordFromText(
      "SELECT temp, zzneverloggedcol FROM WaterTemp WHERE zzneverloggedcol = 1",
      "user0", 0, storage::SignatureMode::kTransient);
  EXPECT_EQ(GlobalInterner().size(), interned_before);
  ASSERT_TRUE(probe.signature.valid);
  EXPECT_TRUE(probe.signature.transient);

  // Known tokens resolve to real interner ids, so probe-vs-log similarity
  // still matches the string reference exactly.
  const storage::QueryRecord& logged = h.store.records().front();
  EXPECT_NEAR(CombinedSimilarity(probe, logged),
              CombinedSimilarityReference(probe, logged), 1e-12);

  // Appending a transient-signature record re-interns it, so the keyword
  // index never sees hash-derived ids.
  storage::QueryId id = h.store.Append(std::move(probe));
  EXPECT_FALSE(h.store.Get(id)->signature.transient);
  EXPECT_GT(GlobalInterner().size(), interned_before);
  EXPECT_EQ(h.store.QueriesWithKeyword("zzneverloggedcol").size(), 1u);
}

TEST(SimilaritySignatureTest, AppendMaintainsMaxTimestamp) {
  Harness h;
  EXPECT_EQ(h.store.max_timestamp(), 0);
  h.Log("user0", "SELECT temp FROM WaterTemp");
  Micros first = h.store.max_timestamp();
  EXPECT_GT(first, 0);
  h.Log("user0", "SELECT salinity FROM WaterSalinity");
  EXPECT_GT(h.store.max_timestamp(), first);
  // Appending an older record must not move the maximum backwards.
  QueryRecord old_record = storage::BuildRecordFromText(
      "SELECT name FROM Species", "user0", 1);
  Micros before = h.store.max_timestamp();
  h.store.Append(std::move(old_record));
  EXPECT_EQ(h.store.max_timestamp(), before);
}

TEST(SimilaritySignatureTest, RewritePurgesStaleIndexEntries) {
  Harness h;
  QueryId id = h.Log("user0", "SELECT temp FROM WaterTemp WHERE temp < 20");
  ASSERT_NE(id, storage::kInvalidQueryId);
  const QueryRecord* before = h.store.Get(id);
  uint64_t old_skeleton = before->skeleton_fingerprint;

  auto contains = [](const std::vector<QueryId>& ids, QueryId target) {
    return std::find(ids.begin(), ids.end(), target) != ids.end();
  };
  ASSERT_TRUE(contains(h.store.QueriesUsingTable("watertemp"), id));
  ASSERT_TRUE(contains(h.store.QueriesWithKeyword("watertemp"), id));

  Status s = h.store.RewriteQueryText(
      id, "SELECT salinity FROM WaterSalinity WHERE salinity > 3");
  ASSERT_TRUE(s.ok()) << s.ToString();

  // Old features are gone from every index...
  EXPECT_FALSE(contains(h.store.QueriesUsingTable("watertemp"), id));
  EXPECT_FALSE(contains(h.store.QueriesWithKeyword("watertemp"), id));
  EXPECT_FALSE(contains(h.store.QueriesUsingAttribute("watertemp", "temp"), id));
  EXPECT_FALSE(contains(h.store.QueriesWithSkeleton(old_skeleton), id));
  // ...and the new ones are present.
  EXPECT_TRUE(contains(h.store.QueriesUsingTable("watersalinity"), id));
  EXPECT_TRUE(contains(h.store.QueriesWithKeyword("watersalinity"), id));
  const QueryRecord* after = h.store.Get(id);
  EXPECT_TRUE(
      contains(h.store.QueriesWithSkeleton(after->skeleton_fingerprint), id));

  // Posting lists stay sorted after a mid-log reinsertion.
  h.Log("user0", "SELECT salinity FROM WaterSalinity");
  const auto& ids = h.store.QueriesUsingTable("watersalinity");
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));

  // The signature was rebuilt: similarity against a salinity probe is now
  // identical between fast and reference paths.
  QueryRecord probe = storage::BuildRecordFromText(
      "SELECT salinity FROM WaterSalinity WHERE salinity > 5", "user0", 0);
  EXPECT_NEAR(CombinedSimilarity(probe, *after),
              CombinedSimilarityReference(probe, *after), 1e-12);
  EXPECT_GT(CombinedSimilarity(probe, *after), 0.5);
}

TEST(SimilaritySignatureTest, StatsRefreshRebuildsOutputSignature) {
  Harness h(50);
  QueryId id = h.Log("u", "SELECT * FROM WaterTemp WHERE temp > 90");
  maintain::MaintenanceOptions opts;
  opts.drift_threshold = 0.2;
  opts.reexecute_budget = 10;
  maintain::QueryMaintenance maintenance(&h.database, &h.store, &h.clock, opts);
  maintenance.RefreshStatistics();  // baseline snapshot

  // Drift the data so the refresh re-executes the query and replaces its
  // output summary with new rows.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(h.database
                    .Insert("WaterTemp", {db::Value::String("Union"),
                                          db::Value::Int(1), db::Value::Int(1),
                                          db::Value::Double(95.0)})
                    .ok());
  }
  uint64_t rows_before = h.store.Get(id)->stats.result_rows;
  maintain::MaintenanceReport r = maintenance.RefreshStatistics();
  ASSERT_GE(r.stats_refreshed, 1u);
  ASSERT_GT(h.store.Get(id)->stats.result_rows, rows_before);

  // The refreshed record's cached signature must describe the *new*
  // output: an output-heavy comparison through the fast path has to agree
  // with the reference path, which reads the summary directly.
  QueryId other = h.Log("u", "SELECT * FROM WaterTemp WHERE temp > 91");
  SimilarityWeights output_heavy{0.2, 0.1, 0.7};
  const storage::QueryRecord* a = h.store.Get(id);
  const storage::QueryRecord* b = h.store.Get(other);
  EXPECT_NEAR(CombinedSimilarity(*a, *b, output_heavy),
              CombinedSimilarityReference(*a, *b, output_heavy), 1e-12);
}

TEST(SimilaritySignatureTest, TextOnlyRecordsGetSignaturesOnAppend) {
  Harness h;
  h.profiler->set_level(profiler::ProfilingLevel::kTextOnly);
  QueryId id = h.Log("user0", "SELECT temp FROM WaterTemp WHERE temp < 20");
  ASSERT_NE(id, storage::kInvalidQueryId);
  const QueryRecord* r = h.store.Get(id);
  ASSERT_TRUE(r->parse_failed());  // kTextOnly skips parsing.
  ASSERT_TRUE(r->signature.valid);
  EXPECT_FALSE(r->signature.text_tokens.empty());

  QueryRecord probe = storage::BuildRecordFromText(
      "SELECT temp FROM WaterTemp WHERE temp < 25", "user0", 0);
  EXPECT_NEAR(CombinedSimilarity(probe, *r),
              CombinedSimilarityReference(probe, *r), 1e-12);
  EXPECT_GT(CombinedSimilarity(probe, *r), 0.0);
}

}  // namespace
}  // namespace cqms::metaquery
