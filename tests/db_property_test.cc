// Executor invariants checked over a family of generated queries against
// the synthetic lake database: relational-algebra properties that must
// hold regardless of plan choices (pushdown, hash vs nested-loop joins).

#include <gtest/gtest.h>

#include "db/database.h"
#include "workload/synthetic.h"

namespace cqms::db {
namespace {

class ExecutorPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    Status s = workload::PopulateLakeDatabase(db_, 400);
    ASSERT_TRUE(s.ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static QueryResult Exec(const std::string& sql) {
    auto r = db_->ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << r.status() << " for " << sql;
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  static Database* db_;
};

Database* ExecutorPropertyTest::db_ = nullptr;

/// Thresholds sweep for parameterized predicates.
class ThresholdTest : public ExecutorPropertyTest,
                      public ::testing::WithParamInterface<int> {};

INSTANTIATE_TEST_SUITE_P(Sweep, ThresholdTest,
                         ::testing::Values(0, 5, 10, 15, 20, 25, 30));

TEST_P(ThresholdTest, FilterIsMonotoneInThreshold) {
  int t = GetParam();
  size_t below = Exec("SELECT * FROM WaterTemp WHERE temp < " +
                      std::to_string(t)).rows.size();
  size_t below_next = Exec("SELECT * FROM WaterTemp WHERE temp < " +
                           std::to_string(t + 5)).rows.size();
  EXPECT_LE(below, below_next);
}

TEST_P(ThresholdTest, FilterPartitionsTheTable) {
  int t = GetParam();
  size_t all = Exec("SELECT * FROM WaterTemp").rows.size();
  size_t below = Exec("SELECT * FROM WaterTemp WHERE temp < " +
                      std::to_string(t)).rows.size();
  size_t at_or_above = Exec("SELECT * FROM WaterTemp WHERE temp >= " +
                            std::to_string(t)).rows.size();
  // temp is never NULL in the generated data, so the split is exact.
  EXPECT_EQ(below + at_or_above, all);
}

TEST_P(ThresholdTest, DistinctNeverIncreasesCardinality) {
  int t = GetParam();
  std::string where = " FROM WaterTemp WHERE temp < " + std::to_string(t);
  size_t plain = Exec("SELECT lake" + where).rows.size();
  size_t distinct = Exec("SELECT DISTINCT lake" + where).rows.size();
  EXPECT_LE(distinct, plain);
}

TEST_P(ThresholdTest, LimitCapsCardinality) {
  int t = GetParam();
  size_t limited = Exec("SELECT * FROM WaterTemp WHERE temp < " +
                        std::to_string(t) + " LIMIT 7").rows.size();
  EXPECT_LE(limited, 7u);
}

TEST_P(ThresholdTest, OrderByPreservesCardinalityAndSorts) {
  int t = GetParam();
  std::string base = "SELECT temp FROM WaterTemp WHERE temp < " +
                     std::to_string(t);
  QueryResult unordered = Exec(base);
  QueryResult ordered = Exec(base + " ORDER BY temp");
  ASSERT_EQ(ordered.rows.size(), unordered.rows.size());
  for (size_t i = 1; i < ordered.rows.size(); ++i) {
    EXPECT_LE(ordered.rows[i - 1][0].AsDouble(), ordered.rows[i][0].AsDouble());
  }
}

TEST_P(ThresholdTest, CountStarMatchesMaterializedRows) {
  int t = GetParam();
  std::string where = " FROM WaterTemp WHERE temp < " + std::to_string(t);
  size_t materialized = Exec("SELECT *" + where).rows.size();
  QueryResult counted = Exec("SELECT COUNT(*)" + where);
  ASSERT_EQ(counted.rows.size(), 1u);
  EXPECT_EQ(counted.rows[0][0].AsInt(), static_cast<int64_t>(materialized));
}

TEST_P(ThresholdTest, UnionAllIsSumUnionIsBoundedByIt) {
  int t = GetParam();
  std::string a = "SELECT lake FROM WaterTemp WHERE temp < " + std::to_string(t);
  std::string b = "SELECT lake FROM WaterSalinity WHERE salinity > 0.3";
  size_t na = Exec(a).rows.size();
  size_t nb = Exec(b).rows.size();
  size_t all = Exec(a + " UNION ALL " + b).rows.size();
  size_t dedup = Exec(a + " UNION " + b).rows.size();
  EXPECT_EQ(all, na + nb);
  EXPECT_LE(dedup, all);
}

TEST_P(ThresholdTest, HashJoinAgreesWithCrossProductFilter) {
  int t = GetParam();
  // The planner hash-joins the equi predicate; semantically this must
  // equal filtering the cross product (which the engine would run if the
  // predicate were not recognized — forced here via an OR tautology
  // wrapper that blocks equi-extraction).
  std::string fast =
      "SELECT COUNT(*) FROM WaterTemp T, WaterSalinity S "
      "WHERE T.loc_x = S.loc_x AND T.temp < " + std::to_string(t);
  std::string slow =
      "SELECT COUNT(*) FROM WaterTemp T, WaterSalinity S "
      "WHERE (T.loc_x = S.loc_x OR 1 = 2) AND T.temp < " + std::to_string(t);
  EXPECT_EQ(Exec(fast).rows[0][0].AsInt(), Exec(slow).rows[0][0].AsInt());
}

TEST_P(ThresholdTest, LeftJoinKeepsAllLeftRows) {
  int t = GetParam();
  std::string left_rows = "SELECT * FROM WaterTemp WHERE temp < " +
                          std::to_string(t);
  size_t n_left = Exec(left_rows).rows.size();
  // Rows can multiply on non-unique keys, but a LEFT JOIN can never
  // produce fewer rows than the left side.
  QueryResult lj = Exec(
      "SELECT T.lake FROM WaterTemp T LEFT JOIN CityLocations C "
      "ON T.lake = C.city WHERE T.temp < " + std::to_string(t));
  EXPECT_GE(lj.rows.size(), n_left == 0 ? 0 : n_left);
}

TEST_F(ExecutorPropertyTest, GroupSumsEqualTotalSum) {
  QueryResult total = Exec("SELECT SUM(temp) FROM WaterTemp");
  QueryResult groups = Exec("SELECT lake, SUM(temp) FROM WaterTemp GROUP BY lake");
  double sum = 0;
  for (const Row& r : groups.rows) sum += r[1].AsDouble();
  EXPECT_NEAR(sum, total.rows[0][0].AsDouble(), 1e-6);
}

TEST_F(ExecutorPropertyTest, GroupCountsEqualTotalCount) {
  QueryResult total = Exec("SELECT COUNT(*) FROM Readings");
  QueryResult groups =
      Exec("SELECT sensor_id, COUNT(*) FROM Readings GROUP BY sensor_id");
  int64_t sum = 0;
  for (const Row& r : groups.rows) sum += r[1].AsInt();
  EXPECT_EQ(sum, total.rows[0][0].AsInt());
}

TEST_F(ExecutorPropertyTest, AvgIsSumOverCountPerGroup) {
  QueryResult groups = Exec(
      "SELECT lake, SUM(temp), COUNT(temp), AVG(temp) FROM WaterTemp "
      "GROUP BY lake");
  for (const Row& r : groups.rows) {
    double expected = r[1].AsDouble() / static_cast<double>(r[2].AsInt());
    EXPECT_NEAR(r[3].AsDouble(), expected, 1e-9);
  }
}

TEST_F(ExecutorPropertyTest, CorrelatedExistsEqualsSemiJoin) {
  QueryResult exists = Exec(
      "SELECT T.lake, T.loc_x FROM WaterTemp T WHERE EXISTS "
      "(SELECT 1 FROM WaterSalinity S WHERE S.loc_x = T.loc_x AND "
      "S.loc_y = T.loc_y)");
  QueryResult semi = Exec(
      "SELECT DISTINCT T.lake, T.loc_x FROM WaterTemp T, WaterSalinity S "
      "WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y");
  // EXISTS keeps duplicates of T; compare distinct projections.
  QueryResult exists_distinct = Exec(
      "SELECT DISTINCT T.lake, T.loc_x FROM WaterTemp T WHERE EXISTS "
      "(SELECT 1 FROM WaterSalinity S WHERE S.loc_x = T.loc_x AND "
      "S.loc_y = T.loc_y)");
  EXPECT_EQ(exists_distinct.rows.size(), semi.rows.size());
  EXPECT_GE(exists.rows.size(), exists_distinct.rows.size());
}

TEST_F(ExecutorPropertyTest, InSubqueryEqualsExistsForm) {
  QueryResult in_form = Exec(
      "SELECT lake FROM WaterTemp WHERE loc_x IN "
      "(SELECT loc_x FROM WaterSalinity)");
  QueryResult exists_form = Exec(
      "SELECT lake FROM WaterTemp T WHERE EXISTS "
      "(SELECT 1 FROM WaterSalinity S WHERE S.loc_x = T.loc_x)");
  EXPECT_EQ(in_form.rows.size(), exists_form.rows.size());
}

}  // namespace
}  // namespace cqms::db
