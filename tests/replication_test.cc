// End-to-end and unit tests for WAL-shipping replication
// (docs/replication.md): a durable primary CqmsServer streaming to
// follower CqmsServers over loopback, checked for byte-identical
// convergence (snapshot-v2 encodings of both read views must match),
// zero acked-write loss under link faults injected by ChaosProxy (cuts
// mid-frame, bit flips, delays), snapshot re-bootstrap when a follower
// falls behind the retained WAL window, kNotPrimary redirects, and the
// failover-aware client. Runs under TSan in CI: every cross-thread
// observation goes through atomics, the wire, or published read views.

#include "repl/follower.h"

#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_codec.h"
#include "core/cqms.h"
#include "net/wire.h"
#include "netclient/client.h"
#include "netclient/failover.h"
#include "repl/chaos_proxy.h"
#include "server/server.h"
#include "storage/durable_store.h"
#include "storage/snapshot_v2.h"
#include "storage/wal.h"
#include "workload/synthetic.h"

namespace cqms::repl {
namespace {

using netclient::ClientOptions;
using netclient::CqmsClient;
using netclient::Endpoint;
using netclient::FailoverClient;
using netclient::FailoverOptions;
using netclient::ParseEndpoint;
using server::CqmsServer;
using server::ServerOptions;

bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_ms = 15000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Fresh empty directory under the test temp root (clears leftovers
/// from a previous run, including any number of retired WAL segments).
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  for (const char* base : {"snapshot.cqms", "snapshot.cqms.1",
                           "snapshot.cqms.tmp", "wal.log"}) {
    std::remove((dir + "/" + base).c_str());
  }
  for (int i = 1; i < 64; ++i) {
    if (std::remove((dir + "/wal.log." + std::to_string(i)).c_str()) != 0) {
      break;
    }
  }
  return dir;
}

/// Snapshot-v2 encoding of the latest published read view — the
/// byte-equality convergence oracle. Views are epoch-published
/// (acquire/release), so this is safe on any thread while the owning
/// server's writer is quiescent.
std::string ViewBytes(Cqms* cqms) {
  std::shared_ptr<const storage::ReadViewState> view = cqms->CurrentReadView();
  EXPECT_NE(view, nullptr);
  std::string out;
  Status s = storage::EncodeSnapshotV2(*view, 0, &out);
  EXPECT_TRUE(s.ok()) << s;
  return out;
}

/// A durable primary: lake database, registered users, CqmsServer with
/// fast replication heartbeats on an ephemeral loopback port.
struct Primary {
  /// `wipe` false reopens an existing durable dir (primary restart).
  explicit Primary(const std::string& dir_name,
                   storage::DurabilityOptions dopts = {},
                   uint16_t fixed_port = 0, bool wipe = true) {
    dir = wipe ? FreshDir(dir_name) : ::testing::TempDir() + "/" + dir_name;
    Status s = cqms.EnableDurability(dir, dopts);
    EXPECT_TRUE(s.ok()) << s;
    s = workload::PopulateLakeDatabase(cqms.database(), 30);
    EXPECT_TRUE(s.ok()) << s;
    cqms.RegisterUser("alice", {"lab0"});
    cqms.RegisterUser("bob", {"lab0"});
    sequence += 2;  // Two kAddUser WAL records.
    ServerOptions sopts;
    sopts.port = fixed_port;
    sopts.repl_heartbeat_ms = 40;
    server = std::make_unique<CqmsServer>(&cqms, sopts);
    s = server->Start();
    EXPECT_TRUE(s.ok()) << s;
  }

  uint16_t port() const { return server->port(); }
  std::string address() const {
    return "127.0.0.1:" + std::to_string(port());
  }

  std::unique_ptr<CqmsClient> Client() {
    auto r = CqmsClient::Connect("127.0.0.1", port());
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? std::move(*r) : nullptr;
  }

  /// Log-only appends through the wire (each is one WAL record). The
  /// returned OK responses are the "acked writes" the fault-matrix
  /// tests assert are never lost.
  void AppendN(CqmsClient* client, size_t n, const std::string& tag) {
    for (size_t i = 0; i < n; ++i) {
      net::AppendRequest req;
      req.user = (i % 2 == 0) ? "alice" : "bob";
      req.sql = "SELECT * FROM Sensors WHERE sensor_id < " +
                std::to_string(sequence + 100) + " /* " + tag + " */";
      req.execute = false;
      auto r = client->Append(req);
      ASSERT_TRUE(r.ok()) << r.status();
      ++sequence;
    }
  }

  Cqms cqms;
  std::unique_ptr<CqmsServer> server;
  std::string dir;
  /// WAL sequence the primary has acked through (tracked client-side:
  /// one record per registration/append this fixture performed).
  uint64_t sequence = 0;
};

/// A follower CqmsServer wired to a repl::Follower, exactly as
/// cqms_serverd --follow does, with test-fast backoff.
struct Replica {
  /// `advertised` is the primary address baked into kNotPrimary
  /// redirects; `connect_port` is where the replication link actually
  /// dials (a ChaosProxy port in the fault tests).
  Replica(const std::string& advertised, uint16_t connect_port,
          const std::string& name = "replica") {
    ServerOptions sopts;
    sopts.follow_primary = advertised;
    server = std::make_unique<CqmsServer>(&cqms, sopts);
    FollowerOptions fopts;
    fopts.primary_host = "127.0.0.1";
    fopts.primary_port = connect_port;
    fopts.name = name;
    fopts.liveness_timeout_ms = 2000;
    fopts.backoff_initial_ms = 20;
    fopts.backoff_max_ms = 200;
    std::shared_ptr<Cqms> live(&cqms, [](Cqms*) {});
    follower = std::make_unique<Follower>(server.get(), live, fopts);
    server->SetFollower(follower.get());
    Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s;
    s = follower->Start();
    EXPECT_TRUE(s.ok()) << s;
  }

  ~Replica() { Stop(); }

  void Stop() {
    if (server != nullptr && server->running()) server->Shutdown();
    if (follower != nullptr) follower->Stop();
  }

  uint16_t port() const { return server->port(); }

  std::unique_ptr<CqmsClient> Client() {
    auto r = CqmsClient::Connect("127.0.0.1", port());
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? std::move(*r) : nullptr;
  }

  /// True once the follower has applied everything the primary acked
  /// (>= min_sequence guards against a stale pre-write equality).
  bool ConvergedTo(uint64_t min_sequence) const {
    Follower::Stats s = follower->GetStats();
    return s.connected && s.applied_sequence >= min_sequence &&
           s.applied_sequence == s.primary_sequence;
  }

  Cqms cqms;
  std::unique_ptr<CqmsServer> server;
  std::unique_ptr<Follower> follower;
};

// --- wire codecs -----------------------------------------------------------

TEST(ReplWireTest, CodecRoundTrips) {
  {
    net::ReplSubscribeRequest m;
    m.from_sequence = 42;
    m.follower_name = "replica-7";
    m.force_snapshot = true;
    BinaryWriter w;
    net::EncodeReplSubscribeRequest(&w, m);
    std::string bytes = w.Take();
    BinaryReader r(bytes);
    net::ReplSubscribeRequest d;
    ASSERT_TRUE(net::DecodeReplSubscribeRequest(&r, &d));
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(d.from_sequence, 42u);
    EXPECT_EQ(d.follower_name, "replica-7");
    EXPECT_TRUE(d.force_snapshot);
  }
  {
    net::ReplSubscribeResult m;
    m.snapshot_bootstrap = true;
    m.primary_sequence = 99;
    BinaryWriter w;
    net::EncodeReplSubscribeResult(&w, m);
    std::string bytes = w.Take();
    BinaryReader r(bytes);
    net::ReplSubscribeResult d;
    ASSERT_TRUE(net::DecodeReplSubscribeResult(&r, &d));
    EXPECT_TRUE(r.AtEnd());
    EXPECT_TRUE(d.snapshot_bootstrap);
    EXPECT_EQ(d.primary_sequence, 99u);
  }
  {
    net::ReplFrameBatch m;
    m.frames.push_back({0xdeadbeef, "frame-one"});
    m.frames.push_back({7, std::string("\x00\x01\x02", 3)});
    m.primary_sequence = 1234;
    BinaryWriter w;
    net::EncodeReplFrameBatch(&w, m);
    std::string bytes = w.Take();
    BinaryReader r(bytes);
    net::ReplFrameBatch d;
    ASSERT_TRUE(net::DecodeReplFrameBatch(&r, &d));
    EXPECT_TRUE(r.AtEnd());
    ASSERT_EQ(d.frames.size(), 2u);
    EXPECT_EQ(d.frames[0].crc32, 0xdeadbeefu);
    EXPECT_EQ(d.frames[0].frame, "frame-one");
    EXPECT_EQ(d.frames[1].frame, std::string("\x00\x01\x02", 3));
    EXPECT_EQ(d.primary_sequence, 1234u);
  }
  {
    net::ReplSnapshotBegin m;
    m.covered_sequence = 5;
    m.total_bytes = 1 << 20;
    m.crc32 = 0xabcd;
    BinaryWriter w;
    net::EncodeReplSnapshotBegin(&w, m);
    std::string bytes = w.Take();
    BinaryReader r(bytes);
    net::ReplSnapshotBegin d;
    ASSERT_TRUE(net::DecodeReplSnapshotBegin(&r, &d));
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(d.covered_sequence, 5u);
    EXPECT_EQ(d.total_bytes, static_cast<uint64_t>(1 << 20));
    EXPECT_EQ(d.crc32, 0xabcdu);
  }
  {
    net::ReplHeartbeat m;
    m.primary_sequence = 77;
    BinaryWriter w;
    net::EncodeReplHeartbeat(&w, m);
    std::string bytes = w.Take();
    BinaryReader r(bytes);
    net::ReplHeartbeat d;
    ASSERT_TRUE(net::DecodeReplHeartbeat(&r, &d));
    EXPECT_EQ(d.primary_sequence, 77u);
  }
  {
    net::ReplAckRequest m;
    m.acked_sequence = 31;
    BinaryWriter w;
    net::EncodeReplAckRequest(&w, m);
    std::string bytes = w.Take();
    BinaryReader r(bytes);
    net::ReplAckRequest d;
    ASSERT_TRUE(net::DecodeReplAckRequest(&r, &d));
    EXPECT_EQ(d.acked_sequence, 31u);
  }
}

TEST(ReplWireTest, NotPrimaryMessageRoundTrips) {
  std::string msg = net::FormatNotPrimary("10.0.0.7:9911");
  EXPECT_EQ(net::ParseNotPrimaryLeader(msg), "10.0.0.7:9911");
  EXPECT_EQ(net::ParseNotPrimaryLeader("some other error"), "");
  EXPECT_EQ(net::ParseNotPrimaryLeader(net::FormatNotPrimary("")), "");
}

TEST(ReplWireTest, ParseEndpointAcceptsHostPortOnly) {
  auto ep = ParseEndpoint("127.0.0.1:8080");
  ASSERT_TRUE(ep.ok()) << ep.status();
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 8080);
  EXPECT_FALSE(ParseEndpoint("no-port").ok());
  EXPECT_FALSE(ParseEndpoint(":123").ok());
  EXPECT_FALSE(ParseEndpoint("host:").ok());
  EXPECT_FALSE(ParseEndpoint("host:99999").ok());
  EXPECT_FALSE(ParseEndpoint("host:12x").ok());
}

// --- WAL scanning and shipping retention -----------------------------------

TEST(ReplWalTest, ScanWalFramesEnumeratesCommittedFrames) {
  std::string dir = FreshDir("repl_scan_wal");
  Cqms cqms;
  ASSERT_TRUE(workload::PopulateLakeDatabase(cqms.database(), 20).ok());
  ASSERT_TRUE(cqms.EnableDurability(dir).ok());
  cqms.RegisterUser("alice", {"lab0"});
  for (int i = 0; i < 5; ++i) {
    cqms.Execute("alice", "SELECT * FROM Sensors WHERE sensor_id < " +
                              std::to_string(i + 2));
  }

  std::vector<uint64_t> sequences;
  Status s = storage::ScanWalFrames(
      cqms.durable()->wal_path(), nullptr,
      [&](uint64_t sequence, std::string_view frame) {
        EXPECT_FALSE(frame.empty());
        sequences.push_back(sequence);
        return true;
      });
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_EQ(sequences.size(), 6u);  // 1 registration + 5 appends.
  for (size_t i = 0; i < sequences.size(); ++i) {
    EXPECT_EQ(sequences[i], i + 1);  // Contiguous from 1.
  }

  // Early stop.
  size_t seen = 0;
  s = storage::ScanWalFrames(cqms.durable()->wal_path(), nullptr,
                             [&](uint64_t, std::string_view) {
                               ++seen;
                               return seen < 2;
                             });
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(seen, 2u);

  // Missing file scans zero frames successfully.
  s = storage::ScanWalFrames(dir + "/does_not_exist.log", nullptr,
                             [&](uint64_t, std::string_view) { return true; });
  EXPECT_TRUE(s.ok()) << s;
}

/// Stand-in shipper: pins retention to a configurable floor.
class FakeShippingHook : public storage::WalShippingHook {
 public:
  void OnWalFrame(uint64_t sequence, std::string_view) override {
    last_shipped = sequence;
  }
  uint64_t MinRequiredSequence() override { return min_required; }

  uint64_t min_required = 1;
  uint64_t last_shipped = 0;
};

TEST(ReplWalTest, RetentionKeepsSegmentsUntilFollowersAckPast) {
  std::string dir = FreshDir("repl_retention");
  storage::DurabilityOptions dopts;
  dopts.checkpoint_wal_bytes = 1ull << 40;  // Only explicit checkpoints.
  dopts.checkpoint_wal_records = 1ull << 40;
  dopts.repl_backlog_max_segments = 4;
  Cqms cqms;
  ASSERT_TRUE(workload::PopulateLakeDatabase(cqms.database(), 20).ok());
  ASSERT_TRUE(cqms.EnableDurability(dir, dopts).ok());
  FakeShippingHook hook;
  cqms.durable_store()->SetShippingHook(&hook);
  cqms.RegisterUser("alice", {"lab0"});
  EXPECT_EQ(hook.last_shipped, 1u);

  // A laggard follower (still needs sequence 1) pins every rotated
  // generation, up to the configured cap.
  for (int round = 0; round < 3; ++round) {
    cqms.Execute("alice", "SELECT * FROM Sensors WHERE sensor_id < " +
                              std::to_string(round + 2));
    ASSERT_TRUE(cqms.Checkpoint().ok());
  }
  EXPECT_EQ(cqms.durable()->retired_wal_segments().size(), 3u);
  EXPECT_GT(cqms.durable()->repl_backlog_bytes(), 0u);
  EXPECT_EQ(cqms.durable()->shippable_floor(), 0u);  // Seq 1 still on disk.

  // The cap bounds a dead follower's hold on disk.
  cqms.Execute("alice", "SELECT * FROM Sensors WHERE sensor_id < 90");
  ASSERT_TRUE(cqms.Checkpoint().ok());
  EXPECT_EQ(cqms.durable()->retired_wal_segments().size(), 4u);
  cqms.Execute("alice", "SELECT * FROM Sensors WHERE sensor_id < 91");
  ASSERT_TRUE(cqms.Checkpoint().ok());
  EXPECT_EQ(cqms.durable()->retired_wal_segments().size(), 4u);

  // Everyone acked past everything: retention collapses back to the
  // single recovery generation.
  hook.min_required = UINT64_MAX;
  cqms.Execute("alice", "SELECT * FROM Sensors WHERE sensor_id < 92");
  ASSERT_TRUE(cqms.Checkpoint().ok());
  EXPECT_EQ(cqms.durable()->retired_wal_segments().size(), 1u);
  EXPECT_GT(cqms.durable()->shippable_floor(), 0u);
  cqms.durable_store()->SetShippingHook(nullptr);
}

// --- live replication e2e --------------------------------------------------

TEST(ReplicationTest, FollowerServesReplicatedReads) {
  Primary primary("repl_e2e_primary");
  Replica replica(primary.address(), primary.port());
  auto writer = primary.Client();
  ASSERT_NE(writer, nullptr);
  primary.AppendN(writer.get(), 8, "e2e");

  ASSERT_TRUE(WaitUntil([&] { return replica.ConvergedTo(primary.sequence); }))
      << "follower never converged; applied="
      << replica.follower->GetStats().applied_sequence;

  // Reads on the replica see the replicated log.
  auto reader = replica.Client();
  ASSERT_NE(reader, nullptr);
  net::SearchSpec spec;
  spec.keyword = net::KeywordSpec{"Sensors", true};
  spec.limit = 50;
  auto found = reader->Search("alice", spec);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_GT(found->matches.size(), 0u);

  // Roles over the wire.
  auto pstats = writer->Stats();
  ASSERT_TRUE(pstats.ok()) << pstats.status();
  EXPECT_EQ(pstats->role, 1);
  EXPECT_EQ(pstats->repl_followers, 1u);
  auto fstats = reader->Stats();
  ASSERT_TRUE(fstats.ok()) << fstats.status();
  EXPECT_EQ(fstats->role, 2);
  EXPECT_EQ(fstats->primary_address, primary.address());
  EXPECT_TRUE(fstats->repl_connected);
  EXPECT_EQ(fstats->repl_applied_sequence, primary.sequence);

  // Byte-identical convergence: snapshot-v2 encodings of both read
  // views must match exactly.
  std::shared_ptr<Cqms> replica_cqms = replica.server->CurrentCqms();
  EXPECT_EQ(ViewBytes(&primary.cqms), ViewBytes(replica_cqms.get()));
}

TEST(ReplicationTest, FollowerRejectsMutationsWithTypedNotPrimary) {
  Primary primary("repl_notprimary");
  Replica replica(primary.address(), primary.port());
  ASSERT_TRUE(WaitUntil([&] { return replica.ConvergedTo(primary.sequence); }));

  auto client = replica.Client();
  ASSERT_NE(client, nullptr);
  net::AppendRequest req;
  req.user = "alice";
  req.sql = "SELECT * FROM Sensors";
  req.execute = false;
  auto r = client->Append(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotPrimary) << r.status();
  EXPECT_EQ(net::ParseNotPrimaryLeader(r.status().message()),
            primary.address());
  // The connection survives a typed rejection: reads still work.
  auto stats = client->Stats();
  EXPECT_TRUE(stats.ok()) << stats.status();
}

TEST(ReplicationTest, FailoverClientFollowsNotPrimaryRedirect) {
  Primary primary("repl_failover_redirect");
  Replica replica(primary.address(), primary.port());
  ASSERT_TRUE(WaitUntil([&] { return replica.ConvergedTo(primary.sequence); }));

  // The replica is listed first: the client's initial primary guess is
  // wrong and must be corrected by the redirect.
  FailoverOptions fopts;
  fopts.retry_backoff_ms = 5;
  FailoverClient failover({{"127.0.0.1", replica.port()},
                           {"127.0.0.1", primary.port()}},
                          fopts);
  net::AppendRequest req;
  req.user = "alice";
  req.sql = "SELECT * FROM Sensors WHERE sensor_id < 500";
  req.execute = false;
  auto r = failover.Append(req);
  ASSERT_TRUE(r.ok()) << r.status();
  ++primary.sequence;
  EXPECT_EQ(failover.primary_index(), 1u);  // Learned the real primary.
  ASSERT_TRUE(WaitUntil([&] { return replica.ConvergedTo(primary.sequence); }));

  // Reads go through regardless of which endpoint answers.
  auto stats = failover.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
}

TEST(ReplicationTest, FailoverReadsSurviveOutageAndMutationsResume) {
  uint16_t primary_port = 0;
  uint64_t acked = 0;
  std::string dir_name = "repl_failover_outage";
  auto primary = std::make_unique<Primary>(dir_name);
  primary_port = primary->port();
  Replica replica(primary->address(), primary_port);
  {
    auto writer = primary->Client();
    ASSERT_NE(writer, nullptr);
    primary->AppendN(writer.get(), 4, "pre-outage");
  }
  acked = primary->sequence;
  ASSERT_TRUE(WaitUntil([&] { return replica.ConvergedTo(acked); }));

  FailoverOptions fopts;
  fopts.retry_backoff_ms = 5;
  fopts.client.connect_timeout_ms = 500;
  fopts.client.timeout_ms = 2000;
  FailoverClient failover({{"127.0.0.1", primary_port},
                           {"127.0.0.1", replica.port()}},
                          fopts);

  // Take the primary down (graceful: all acked writes are durable).
  primary->server->Shutdown();
  primary.reset();

  // Reads keep flowing from the replica.
  net::SearchSpec spec;
  spec.keyword = net::KeywordSpec{"Sensors", true};
  spec.limit = 10;
  auto found = failover.Search("alice", spec);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_GT(found->matches.size(), 0u);

  // Mutations fail while no primary exists — typed, not hung.
  net::AppendRequest req;
  req.user = "alice";
  req.sql = "SELECT * FROM Sensors WHERE sensor_id < 600";
  req.execute = false;
  auto rejected = failover.Append(req);
  ASSERT_FALSE(rejected.ok());

  // Restart the primary on the same port from its durable state;
  // the follower reconnects and mutations resume through the same
  // failover client.
  storage::DurabilityOptions dopts;
  auto revived = std::make_unique<Primary>(dir_name, dopts, primary_port,
                                           /*wipe=*/false);
  revived->sequence = acked;
  ASSERT_TRUE(WaitUntil([&] {
    Follower::Stats s = replica.follower->GetStats();
    return s.connected && s.reconnects >= 1;
  })) << "follower never reconnected to the revived primary";

  auto resumed = failover.Append(req);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ++revived->sequence;
  ASSERT_TRUE(
      WaitUntil([&] { return replica.ConvergedTo(revived->sequence); }));
  std::shared_ptr<Cqms> replica_cqms = replica.server->CurrentCqms();
  EXPECT_EQ(ViewBytes(&revived->cqms), ViewBytes(replica_cqms.get()));
}

TEST(ReplicationTest, RegressedPrimaryForcesRebootstrap) {
  // A primary that comes back with a SHORTER timeline (wiped disk,
  // restore from an older backup) leaves the follower "ahead". The
  // follower must notice and adopt the primary's truth via a forced
  // snapshot — not skip the primary's frames as duplicates forever.
  uint16_t port = 0;
  auto primary = std::make_unique<Primary>("repl_regressed");
  port = primary->port();
  Replica replica(primary->address(), port);
  {
    auto writer = primary->Client();
    ASSERT_NE(writer, nullptr);
    primary->AppendN(writer.get(), 6, "doomed");
  }
  ASSERT_TRUE(
      WaitUntil([&] { return replica.ConvergedTo(primary->sequence); }));

  primary->server->Shutdown();
  primary.reset();
  // Revive WIPED on the same port: its history restarts near zero.
  auto wiped = std::make_unique<Primary>("repl_regressed",
                                         storage::DurabilityOptions{}, port);
  ASSERT_TRUE(WaitUntil([&] {
    Follower::Stats s = replica.follower->GetStats();
    return s.snapshots_loaded >= 1 && replica.ConvergedTo(wiped->sequence);
  })) << "follower never re-bootstrapped off the regressed primary";
  EXPECT_GE(replica.follower->GetStats().gaps_detected, 1u);
  std::shared_ptr<Cqms> replica_cqms = replica.server->CurrentCqms();
  EXPECT_EQ(ViewBytes(&wiped->cqms), ViewBytes(replica_cqms.get()));
}

TEST(ReplicationTest, SnapshotBootstrapWhenBehindRetainedWal) {
  storage::DurabilityOptions dopts;
  // Retention keeps only the newest rotated generation (the recovery
  // fallback): after TWO checkpoints the oldest frames are gone from
  // disk, so a subscriber from zero is behind the shippable floor and
  // must bootstrap.
  dopts.repl_backlog_max_segments = 0;
  dopts.checkpoint_wal_bytes = 1ull << 40;
  dopts.checkpoint_wal_records = 1ull << 40;
  Primary primary("repl_snapshot_bootstrap", dopts);
  auto writer = primary.Client();
  ASSERT_NE(writer, nullptr);
  primary.AppendN(writer.get(), 6, "pre-checkpoint");
  ASSERT_TRUE(writer->Checkpoint().ok());
  primary.AppendN(writer.get(), 3, "mid-checkpoint");
  ASSERT_TRUE(writer->Checkpoint().ok());
  primary.AppendN(writer.get(), 2, "post-checkpoint");

  Replica replica(primary.address(), primary.port());
  ASSERT_TRUE(WaitUntil([&] { return replica.ConvergedTo(primary.sequence); }));
  Follower::Stats stats = replica.follower->GetStats();
  EXPECT_GE(stats.snapshots_loaded, 1u);

  // The bootstrap replaced the served instance wholesale.
  std::shared_ptr<Cqms> replica_cqms = replica.server->CurrentCqms();
  EXPECT_NE(replica_cqms.get(), &replica.cqms);
  EXPECT_EQ(ViewBytes(&primary.cqms), ViewBytes(replica_cqms.get()));

  auto reader = replica.Client();
  ASSERT_NE(reader, nullptr);
  net::SearchSpec spec;
  spec.keyword = net::KeywordSpec{"Sensors", true};
  spec.limit = 50;
  auto found = reader->Search("alice", spec);
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_GT(found->matches.size(), 0u);
}

TEST(ReplicationTest, FollowerRestartCatchesUpFromScratch) {
  Primary primary("repl_follower_restart");
  auto writer = primary.Client();
  ASSERT_NE(writer, nullptr);
  {
    Replica first(primary.address(), primary.port(), "replica-a");
    primary.AppendN(writer.get(), 5, "first-replica");
    ASSERT_TRUE(
        WaitUntil([&] { return first.ConvergedTo(primary.sequence); }));
  }  // Follower killed; primary keeps accepting writes.
  primary.AppendN(writer.get(), 5, "while-down");

  Replica second(primary.address(), primary.port(), "replica-b");
  ASSERT_TRUE(WaitUntil([&] { return second.ConvergedTo(primary.sequence); }));
  std::shared_ptr<Cqms> replica_cqms = second.server->CurrentCqms();
  EXPECT_EQ(ViewBytes(&primary.cqms), ViewBytes(replica_cqms.get()));
}

// --- link fault injection --------------------------------------------------

TEST(ReplicationChaosTest, LinkCutMidFrameLosesNoAckedWrite) {
  Primary primary("repl_chaos_cut");
  ChaosProxy proxy("127.0.0.1", primary.port());
  ASSERT_TRUE(proxy.Start().ok());
  Replica replica(primary.address(), proxy.port(), "chaos-replica");
  auto writer = primary.Client();
  ASSERT_NE(writer, nullptr);
  primary.AppendN(writer.get(), 5, "before-cut");
  ASSERT_TRUE(WaitUntil([&] { return replica.ConvergedTo(primary.sequence); }));

  // Sever the stream mid-frame (the budget lands inside a frame almost
  // surely) with a slow link, then keep writing: every write below is
  // acked by the primary and must survive to the replica.
  proxy.SetDelayMs(5);
  proxy.CutAfter(64);
  primary.AppendN(writer.get(), 5, "during-cut");
  ASSERT_TRUE(WaitUntil([&] {
    return replica.follower->GetStats().reconnects >= 1;
  })) << "cut link never triggered a reconnect";
  proxy.CutAfter(-1);  // Heal the link.
  proxy.SetDelayMs(0);
  primary.AppendN(writer.get(), 5, "after-heal");

  ASSERT_TRUE(WaitUntil([&] { return replica.ConvergedTo(primary.sequence); }))
      << "replica never converged after link cut";
  Follower::Stats stats = replica.follower->GetStats();
  EXPECT_GE(stats.reconnects, 1u);
  std::shared_ptr<Cqms> replica_cqms = replica.server->CurrentCqms();
  EXPECT_EQ(ViewBytes(&primary.cqms), ViewBytes(replica_cqms.get()))
      << "acked writes lost or diverged across the cut";
  replica.Stop();
  proxy.Stop();
}

TEST(ReplicationChaosTest, CorruptedStreamRecoversAndConverges) {
  Primary primary("repl_chaos_corrupt");
  ChaosProxy proxy("127.0.0.1", primary.port());
  ASSERT_TRUE(proxy.Start().ok());
  Replica replica(primary.address(), proxy.port(), "corrupt-replica");
  auto writer = primary.Client();
  ASSERT_NE(writer, nullptr);
  primary.AppendN(writer.get(), 4, "clean");
  ASSERT_TRUE(WaitUntil([&] { return replica.ConvergedTo(primary.sequence); }));

  // Flip one bit in the next downstream chunk. Depending on where it
  // lands the follower sees a CRC divergence (forced snapshot
  // re-bootstrap) or a framing error (reconnect); both must converge to
  // byte-identical state with zero acked-write loss.
  proxy.CorruptNext();
  primary.AppendN(writer.get(), 4, "through-corruption");
  ASSERT_TRUE(WaitUntil([&] { return replica.ConvergedTo(primary.sequence); }))
      << "replica never recovered from stream corruption";
  Follower::Stats stats = replica.follower->GetStats();
  EXPECT_GE(stats.crc_failures + stats.gaps_detected + stats.reconnects, 1u)
      << "corruption was never even noticed";
  std::shared_ptr<Cqms> replica_cqms = replica.server->CurrentCqms();
  EXPECT_EQ(ViewBytes(&primary.cqms), ViewBytes(replica_cqms.get()));
  replica.Stop();
  proxy.Stop();
}

// --- client deadlines ------------------------------------------------------

TEST(ClientDeadlineTest, HungServerYieldsTypedDeadlineExceeded) {
  // A listener that accepts into its backlog but never answers the
  // handshake: without a deadline Connect would hang forever.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(fd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  uint16_t port = ntohs(addr.sin_port);

  ClientOptions options;
  options.connect_timeout_ms = 2000;
  options.timeout_ms = 200;
  auto start = std::chrono::steady_clock::now();
  auto r = CqmsClient::Connect("127.0.0.1", port, options);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded) << r.status();
  EXPECT_LT(elapsed.count(), 5000);
  ::close(fd);
}

TEST(ClientDeadlineTest, TimeoutsDoNotBreakHealthySessions) {
  Primary primary("repl_deadline_healthy");
  ClientOptions options;
  options.connect_timeout_ms = 2000;
  options.timeout_ms = 5000;
  auto r = CqmsClient::Connect("127.0.0.1", primary.port(), options);
  ASSERT_TRUE(r.ok()) << r.status();
  auto stats = (*r)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->role, 1);

  // Pipelined path under a deadline.
  uint64_t id1 = (*r)->SendStats();
  uint64_t id2 = (*r)->SendStats();
  ASSERT_TRUE((*r)->Flush().ok());
  EXPECT_TRUE((*r)->WaitStats(id2).ok());
  EXPECT_TRUE((*r)->WaitStats(id1).ok());
}

}  // namespace
}  // namespace cqms::repl
