#include <gtest/gtest.h>

#include "common/string_util.h"
#include "maintain/query_maintenance.h"
#include "sql/parser.h"
#include "test_util.h"

namespace cqms::maintain {
namespace {

using storage::QueryId;
using testing_util::Harness;

TEST(RepairTest, TableRenameIsRepaired) {
  Harness h;
  auto stmt = sql::Parse("SELECT temp FROM WaterTemp WHERE temp < 18");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(h.database.RenameTable("WaterTemp", "LakeTemp").ok());

  RepairResult r =
      RepairStatement(**stmt, h.database.catalog().changes(), h.database);
  ASSERT_TRUE(r.repaired) << r.failure_reason;
  EXPECT_NE(r.new_text.find("laketemp"), std::string::npos);
  EXPECT_TRUE(h.database.ExecuteSql(r.new_text).ok());
}

TEST(RepairTest, ColumnRenameIsRepaired) {
  Harness h;
  auto stmt = sql::Parse(
      "SELECT T.temp FROM WaterTemp T WHERE T.temp < 18 ORDER BY T.temp");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(h.database.RenameColumn("WaterTemp", "temp", "temperature").ok());

  RepairResult r =
      RepairStatement(**stmt, h.database.catalog().changes(), h.database);
  ASSERT_TRUE(r.repaired) << r.failure_reason;
  EXPECT_EQ(r.new_text.find("temp <"), std::string::npos);
  EXPECT_NE(r.new_text.find("temperature"), std::string::npos);
  EXPECT_TRUE(h.database.ExecuteSql(r.new_text).ok());
}

TEST(RepairTest, ChainedRenamesFold) {
  Harness h;
  auto stmt = sql::Parse("SELECT * FROM WaterTemp");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(h.database.RenameTable("WaterTemp", "TempA").ok());
  ASSERT_TRUE(h.database.RenameTable("TempA", "TempB").ok());
  RepairResult r =
      RepairStatement(**stmt, h.database.catalog().changes(), h.database);
  ASSERT_TRUE(r.repaired);
  EXPECT_NE(r.new_text.find("tempb"), std::string::npos);
}

TEST(RepairTest, UnqualifiedColumnRenameWithSingleTable) {
  Harness h;
  auto stmt = sql::Parse("SELECT temp FROM WaterTemp WHERE temp < 9");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(h.database.RenameColumn("WaterTemp", "temp", "celsius").ok());
  RepairResult r =
      RepairStatement(**stmt, h.database.catalog().changes(), h.database);
  ASSERT_TRUE(r.repaired) << r.failure_reason;
  EXPECT_TRUE(h.database.ExecuteSql(r.new_text).ok());
}

TEST(RepairTest, DroppedColumnIsIrreparable) {
  Harness h;
  auto stmt = sql::Parse("SELECT temp FROM WaterTemp");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(h.database.DropColumn("WaterTemp", "temp").ok());
  RepairResult r =
      RepairStatement(**stmt, h.database.catalog().changes(), h.database);
  EXPECT_FALSE(r.repaired);
  EXPECT_FALSE(r.failure_reason.empty());
}

TEST(RepairTest, AlreadyValidStatementIsNotTouched) {
  Harness h;
  auto stmt = sql::Parse("SELECT temp FROM WaterTemp");
  ASSERT_TRUE(stmt.ok());
  RepairResult r = RepairStatement(**stmt, {}, h.database);
  EXPECT_FALSE(r.repaired);
}

TEST(MaintenanceTest, FlagsBrokenQueriesAfterSchemaChange) {
  Harness h;
  QueryId ok_query = h.Log("u", "SELECT city FROM CityLocations");
  QueryId doomed = h.Log("u", "SELECT count_obs FROM Species");
  QueryMaintenance maintenance(&h.database, &h.store, &h.clock,
                               MaintenanceOptions{});
  // First run: everything valid.
  MaintenanceReport r0 = maintenance.CheckSchemaValidity();
  EXPECT_EQ(r0.flagged_broken, 0u);

  h.clock.Advance(100);
  ASSERT_TRUE(h.database.DropColumn("Species", "count_obs").ok());
  MaintenanceReport r1 = maintenance.CheckSchemaValidity();
  EXPECT_EQ(r1.flagged_broken, 1u);
  EXPECT_TRUE(h.store.Get(doomed)->HasFlag(storage::kFlagSchemaBroken));
  EXPECT_FALSE(h.store.Get(ok_query)->HasFlag(storage::kFlagSchemaBroken));
}

TEST(MaintenanceTest, IncrementalCheckOnlyTouchesAffectedQueries) {
  Harness h;
  h.Log("u", "SELECT city FROM CityLocations");
  h.Log("u", "SELECT temp FROM WaterTemp");
  QueryMaintenance maintenance(&h.database, &h.store, &h.clock,
                               MaintenanceOptions{});
  MaintenanceReport first = maintenance.CheckSchemaValidity();
  EXPECT_EQ(first.queries_checked, 2u);

  h.clock.Advance(100);
  ASSERT_TRUE(h.database.AddColumn("WaterTemp", {"ph", db::ValueType::kDouble}).ok());
  MaintenanceReport second = maintenance.CheckSchemaValidity();
  EXPECT_EQ(second.queries_checked, 1u);  // only the WaterTemp query
}

TEST(MaintenanceTest, AutoRepairRewritesRenamedReferences) {
  Harness h;
  QueryId id = h.Log("u", "SELECT temp FROM WaterTemp WHERE temp < 18");
  QueryMaintenance maintenance(&h.database, &h.store, &h.clock,
                               MaintenanceOptions{});
  maintenance.CheckSchemaValidity();

  h.clock.Advance(100);
  ASSERT_TRUE(h.database.RenameTable("WaterTemp", "LakeTemp").ok());
  MaintenanceReport report = maintenance.CheckSchemaValidity();
  EXPECT_EQ(report.repaired, 1u);
  EXPECT_EQ(report.flagged_broken, 0u);
  const storage::QueryRecord* r = h.store.Get(id);
  EXPECT_TRUE(r->HasFlag(storage::kFlagRepaired));
  EXPECT_FALSE(r->HasFlag(storage::kFlagSchemaBroken));
  EXPECT_EQ(r->components.tables, (std::vector<std::string>{"laketemp"}));
  // The repaired query executes.
  EXPECT_TRUE(h.database.Execute(*r->ast).ok());
}

TEST(MaintenanceTest, RepairDisabledJustFlags) {
  Harness h;
  QueryId id = h.Log("u", "SELECT temp FROM WaterTemp");
  MaintenanceOptions opts;
  opts.auto_repair = false;
  QueryMaintenance maintenance(&h.database, &h.store, &h.clock, opts);
  maintenance.CheckSchemaValidity();
  h.clock.Advance(100);
  ASSERT_TRUE(h.database.RenameTable("WaterTemp", "LakeTemp").ok());
  MaintenanceReport report = maintenance.CheckSchemaValidity();
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(report.flagged_broken, 1u);
  EXPECT_TRUE(h.store.Get(id)->HasFlag(storage::kFlagSchemaBroken));
}

TEST(MaintenanceTest, RecoveredQueriesAreUnflagged) {
  Harness h;
  QueryId id = h.Log("u", "SELECT temp FROM WaterTemp");
  MaintenanceOptions opts;
  opts.auto_repair = false;
  QueryMaintenance maintenance(&h.database, &h.store, &h.clock, opts);
  maintenance.CheckSchemaValidity();
  h.clock.Advance(100);
  ASSERT_TRUE(h.database.DropColumn("WaterTemp", "temp").ok());
  maintenance.CheckSchemaValidity();
  ASSERT_TRUE(h.store.Get(id)->HasFlag(storage::kFlagSchemaBroken));

  // The admin restores the column; the next run clears the flag.
  h.clock.Advance(100);
  ASSERT_TRUE(h.database.AddColumn("WaterTemp", {"temp", db::ValueType::kDouble})
                  .ok());
  MaintenanceReport report = maintenance.CheckSchemaValidity();
  EXPECT_EQ(report.unflagged, 1u);
  EXPECT_FALSE(h.store.Get(id)->HasFlag(storage::kFlagSchemaBroken));
}

TEST(MaintenanceTest, DataDriftFlagsAndRefreshesStats) {
  Harness h(50);
  QueryId id = h.Log("u", "SELECT * FROM WaterTemp WHERE temp < 18");
  MaintenanceOptions opts;
  opts.drift_threshold = 0.2;
  opts.reexecute_budget = 10;
  QueryMaintenance maintenance(&h.database, &h.store, &h.clock, opts);
  // First run takes the baseline snapshot; no drift yet.
  MaintenanceReport r0 = maintenance.RefreshStatistics();
  EXPECT_EQ(r0.tables_drifted, 0u);

  // Shift the distribution hard: add many hot readings.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(h.database
                    .Insert("WaterTemp", {db::Value::String("Union"),
                                          db::Value::Int(1), db::Value::Int(1),
                                          db::Value::Double(95.0)})
                    .ok());
  }
  uint64_t rows_before = h.store.Get(id)->stats.result_rows;
  MaintenanceReport r1 = maintenance.RefreshStatistics();
  EXPECT_GE(r1.tables_drifted, 1u);
  EXPECT_GE(r1.stats_refreshed, 1u);
  // Stats were refreshed against the new data and the flag cleared.
  EXPECT_FALSE(h.store.Get(id)->HasFlag(storage::kFlagStatsStale));
  EXPECT_EQ(h.store.Get(id)->stats.result_rows, rows_before);  // temp<18 unchanged
  EXPECT_GT(h.store.Get(id)->stats.rows_scanned, 0u);
}

TEST(MaintenanceTest, ReexecuteBudgetIsHonored) {
  Harness h(30);
  for (int i = 0; i < 5; ++i) {
    h.Log("u", "SELECT * FROM WaterTemp WHERE temp < " + std::to_string(10 + i));
  }
  MaintenanceOptions opts;
  opts.drift_threshold = 0.1;
  opts.reexecute_budget = 2;
  QueryMaintenance maintenance(&h.database, &h.store, &h.clock, opts);
  maintenance.RefreshStatistics();  // baseline
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(h.database
                    .Insert("WaterTemp", {db::Value::String("Union"),
                                          db::Value::Int(1), db::Value::Int(1),
                                          db::Value::Double(80.0)})
                    .ok());
  }
  MaintenanceReport r = maintenance.RefreshStatistics();
  EXPECT_EQ(r.stats_refreshed, 2u);
  // The rest remain flagged for the next cycle.
  size_t still_stale = 0;
  for (const auto& rec : h.store.records()) {
    if (rec.HasFlag(storage::kFlagStatsStale)) ++still_stale;
  }
  EXPECT_EQ(still_stale, 3u);
}

TEST(QualityTest, ComponentsInfluenceScoreAsDocumented) {
  Harness h;
  QueryId good = h.Log("u", "SELECT city FROM CityLocations WHERE state = 'WA'");
  QueryId broken = h.Log("u", "SELECT bogus FROM CityLocations");
  QueryId complex_query = h.Log(
      "u",
      "SELECT T.lake FROM WaterTemp T, WaterSalinity S, CityLocations C "
      "WHERE T.loc_x = S.loc_x AND T.temp < 18 AND C.state = 'WA' AND "
      "S.salinity > 0.1 AND T.loc_y = S.loc_y");

  double q_good = ComputeQuality(*h.store.Get(good), h.store);
  double q_broken = ComputeQuality(*h.store.Get(broken), h.store);
  double q_complex = ComputeQuality(*h.store.Get(complex_query), h.store);
  EXPECT_GT(q_good, q_broken);
  EXPECT_GT(q_good, q_complex);  // simplicity counts

  // Annotation raises quality.
  ASSERT_TRUE(h.store.Annotate(good, {"u", 0, "note", ""}).ok());
  EXPECT_GT(ComputeQuality(*h.store.Get(good), h.store), q_good);

  // Deleted queries score zero.
  ASSERT_TRUE(h.store.Delete(good, "u").ok());
  EXPECT_EQ(ComputeQuality(*h.store.Get(good), h.store), 0.0);
}

TEST(QualityTest, UpdateAllWritesBack) {
  Harness h;
  h.Log("u", "SELECT 1");
  h.Log("u", "SELECT city FROM CityLocations");
  EXPECT_EQ(UpdateAllQuality(&h.store), 2u);
  for (const auto& r : h.store.records()) {
    EXPECT_GT(r.quality, 0.0);
    EXPECT_LE(r.quality, 1.0);
  }
}

TEST(MaintenanceTest, RunAllCompactsScoringArenasPastThreshold) {
  Harness h;
  std::vector<QueryId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(h.Log("u", "SELECT lake, temp FROM WaterTemp WHERE temp < " +
                                 std::to_string(i)));
  }
  // Churn rewrites to orphan arena runs.
  for (int round = 0; round < 3; ++round) {
    for (QueryId id : ids) {
      ASSERT_TRUE(h.store
                      .RewriteQueryText(
                          id, "SELECT * FROM WaterSalinity WHERE salinity < " +
                                  std::to_string(round * 10 + id))
                      .ok());
    }
  }
  const size_t garbage = h.store.scoring().arena_garbage();
  ASSERT_GT(garbage, 0u);

  // Below threshold: nothing happens.
  MaintenanceOptions high;
  high.compact_arena_min_garbage = garbage + 1;
  MaintenanceReport untouched =
      QueryMaintenance(&h.database, &h.store, &h.clock, high).RunAll();
  EXPECT_EQ(untouched.arena_bytes_compacted, 0u);
  EXPECT_EQ(untouched.arena_garbage_bytes, h.store.scoring().arena_garbage());

  // At threshold: reclaimed exactly, garbage resets, columns coherent.
  MaintenanceOptions low;
  low.compact_arena_min_garbage = 1;
  const size_t garbage_before = h.store.scoring().arena_garbage();
  MaintenanceReport compacted =
      QueryMaintenance(&h.database, &h.store, &h.clock, low).RunAll();
  EXPECT_EQ(compacted.arena_bytes_compacted, garbage_before);
  EXPECT_EQ(compacted.arena_garbage_bytes, 0u);
  EXPECT_EQ(h.store.scoring().arena_garbage(), 0u);
  for (QueryId id : ids) {
    const storage::QueryRecord* r = h.store.Get(id);
    EXPECT_EQ(std::string(h.store.scoring().lowered_text(id)),
              ToLower(r->text));
    auto tables = h.store.scoring().tables(id);
    ASSERT_EQ(tables.size, r->signature.tables.size());
    for (size_t t = 0; t < tables.size; ++t) {
      EXPECT_EQ(tables.data[t], r->signature.tables[t]);
    }
  }
}

TEST(MaintenanceTest, RunAllCombinesEverything) {
  Harness h;
  h.Log("u", "SELECT temp FROM WaterTemp");
  QueryMaintenance maintenance(&h.database, &h.store, &h.clock,
                               MaintenanceOptions{});
  MaintenanceReport report = maintenance.RunAll();
  EXPECT_EQ(report.queries_checked, 1u);
  EXPECT_EQ(report.quality_updated, 1u);
}

}  // namespace
}  // namespace cqms::maintain
