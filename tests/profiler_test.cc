#include <gtest/gtest.h>

#include "profiler/output_summarizer.h"
#include "profiler/query_profiler.h"
#include "test_util.h"

namespace cqms::profiler {
namespace {

using testing_util::Harness;

db::QueryResult MakeResult(size_t rows) {
  db::QueryResult r;
  r.column_names = {"x"};
  for (size_t i = 0; i < rows; ++i) {
    r.rows.push_back({db::Value::Int(static_cast<int64_t>(i))});
  }
  return r;
}

TEST(SummarizerTest, BudgetGrowsWithExecutionTime) {
  SummarizerOptions opts;
  size_t fast = SummaryBudget(/*2ms*/ 2000, 1000, opts);
  size_t slow = SummaryBudget(/*2s*/ 2'000'000, 1000, opts);
  EXPECT_LT(fast, slow);
  EXPECT_GE(fast, opts.min_rows);
  EXPECT_LE(slow, opts.max_rows);
}

TEST(SummarizerTest, PaperPolicySlowSmallOutputStoredCompletely) {
  // "if a query takes two hours to complete and outputs ten rows, then
  // the system should store the whole output" (§4.1).
  auto summary = SummarizeOutput(MakeResult(10), /*2h*/ 7'200'000'000LL);
  EXPECT_TRUE(summary.complete);
  EXPECT_EQ(summary.sample_rows.size(), 10u);
}

TEST(SummarizerTest, PaperPolicyFastHugeOutputSampledTiny) {
  // "if a query takes only two seconds and outputs two million rows,
  // there is no need to store the output" — we keep only a tiny sample.
  auto summary = SummarizeOutput(MakeResult(200000), /*2s*/ 2'000'000);
  EXPECT_FALSE(summary.complete);
  EXPECT_LE(summary.sample_rows.size(), SummarizerOptions().max_rows);
  EXPECT_LT(summary.sample_rows.size(), 1000u);
  EXPECT_EQ(summary.total_rows, 200000u);
}

TEST(SummarizerTest, ReservoirSamplingIsDeterministicAndUniform) {
  auto a = SummarizeOutput(MakeResult(10000), 1000);
  auto b = SummarizeOutput(MakeResult(10000), 1000);
  ASSERT_EQ(a.sample_rows.size(), b.sample_rows.size());
  for (size_t i = 0; i < a.sample_rows.size(); ++i) {
    EXPECT_EQ(a.sample_rows[i][0].AsInt(), b.sample_rows[i][0].AsInt());
  }
  // Uniformity smoke check: sample mean near population mean.
  double sum = 0;
  for (const auto& row : a.sample_rows) sum += static_cast<double>(row[0].AsInt());
  double mean = sum / static_cast<double>(a.sample_rows.size());
  EXPECT_NEAR(mean, 5000.0, 1500.0);
}

TEST(SummarizerTest, EmptyResult) {
  auto summary = SummarizeOutput(MakeResult(0), 100);
  EXPECT_TRUE(summary.complete);
  EXPECT_EQ(summary.total_rows, 0u);
  EXPECT_EQ(summary.column_names.size(), 1u);
}

TEST(ProfilerTest, LevelOffLogsNothing) {
  Harness h;
  h.profiler->set_level(ProfilingLevel::kOff);
  ProfiledExecution e =
      h.profiler->ExecuteAndProfile("SELECT * FROM WaterTemp", "u");
  EXPECT_TRUE(e.stats.succeeded);
  EXPECT_EQ(e.query_id, storage::kInvalidQueryId);
  EXPECT_EQ(h.store.size(), 0u);
}

TEST(ProfilerTest, LevelTextOnlySkipsParsing) {
  Harness h;
  h.profiler->set_level(ProfilingLevel::kTextOnly);
  ProfiledExecution e =
      h.profiler->ExecuteAndProfile("SELECT * FROM WaterTemp", "u");
  ASSERT_NE(e.query_id, storage::kInvalidQueryId);
  const storage::QueryRecord* r = h.store.Get(e.query_id);
  EXPECT_TRUE(r->parse_failed());  // no AST at this level
  EXPECT_EQ(r->text, "SELECT * FROM WaterTemp");
  EXPECT_TRUE(r->stats.succeeded);
}

TEST(ProfilerTest, LevelFeaturesExtractsComponentsButNoSummary) {
  Harness h;
  h.profiler->set_level(ProfilingLevel::kFeatures);
  ProfiledExecution e =
      h.profiler->ExecuteAndProfile("SELECT * FROM WaterTemp", "u");
  const storage::QueryRecord* r = h.store.Get(e.query_id);
  EXPECT_FALSE(r->parse_failed());
  EXPECT_EQ(r->components.tables.size(), 1u);
  EXPECT_TRUE(r->summary.column_names.empty());
}

TEST(ProfilerTest, LevelFullAddsOutputSummary) {
  Harness h;
  ProfiledExecution e =
      h.profiler->ExecuteAndProfile("SELECT * FROM WaterTemp", "u");
  const storage::QueryRecord* r = h.store.Get(e.query_id);
  EXPECT_FALSE(r->summary.column_names.empty());
  EXPECT_EQ(r->summary.total_rows, e.result.rows.size());
}

TEST(ProfilerTest, FailedQueriesAreLoggedWithError) {
  Harness h;
  ProfiledExecution e =
      h.profiler->ExecuteAndProfile("SELECT * FROM NoSuchTable", "u");
  EXPECT_FALSE(e.stats.succeeded);
  ASSERT_NE(e.query_id, storage::kInvalidQueryId);
  const storage::QueryRecord* r = h.store.Get(e.query_id);
  EXPECT_FALSE(r->stats.succeeded);
  EXPECT_NE(r->stats.error.find("BindError"), std::string::npos);
}

TEST(ProfilerTest, FailedLoggingCanBeDisabled) {
  Harness h;
  ProfilerOptions opts;
  opts.log_failed_queries = false;
  QueryProfiler profiler(&h.database, &h.store, &h.clock, opts);
  ProfiledExecution e = profiler.ExecuteAndProfile("SELEKT nope", "u");
  EXPECT_FALSE(e.stats.succeeded);
  EXPECT_EQ(h.store.size(), 0u);
}

TEST(ProfilerTest, TimestampsComeFromClock) {
  Harness h;
  h.clock.Set(5'000'000);
  storage::QueryId id = h.Log("u", "SELECT 1");
  EXPECT_EQ(h.store.Get(id)->timestamp, 5'000'000);
}

TEST(ProfilerTest, LogOnlyDoesNotExecute) {
  Harness h;
  storage::QueryId id =
      h.profiler->LogOnly("SELECT * FROM WaterTemp WHERE temp < 5", "u");
  const storage::QueryRecord* r = h.store.Get(id);
  EXPECT_FALSE(r->parse_failed());
  EXPECT_EQ(r->stats.result_rows, 0u);
  EXPECT_TRUE(r->summary.column_names.empty());
}

}  // namespace
}  // namespace cqms::profiler
