// Incremental mining engine tests: (1) the headline equality suite — a
// seeded ~5k synthetic log driven through several MaybeRefresh cycles
// of interleaved appends / rewrites / deletes / flag flips / output
// syncs must leave sessions, association rules, popularity and
// clustering *bit-identical* to a from-scratch RunAll on the same final
// store; (2) DistanceCache unit behavior (lookup/insert/invalidate/
// grow/compact) and CachedDistanceMatrix-vs-DenseDistanceMatrix
// equality across mutations; (3) incremental sessionizer edge cases
// (out-of-order appends, undeletes); (4) the O(1)/indexed FindSession /
// SessionsOfUser / ClusterOf lookups against linear references.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "miner/distance_cache.h"
#include "miner/query_miner.h"
#include "storage/record_builder.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace cqms::miner {
namespace {

using storage::QueryId;
using testing_util::Harness;

void ExpectSessionsEqual(const std::vector<Session>& got,
                         const std::vector<Session>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    EXPECT_EQ(got[i].id, want[i].id);
    EXPECT_EQ(got[i].user, want[i].user);
    EXPECT_EQ(got[i].queries, want[i].queries);
    EXPECT_EQ(got[i].start, want[i].start);
    EXPECT_EQ(got[i].end, want[i].end);
    ASSERT_EQ(got[i].edges.size(), want[i].edges.size());
    for (size_t e = 0; e < got[i].edges.size(); ++e) {
      EXPECT_EQ(got[i].edges[e].from, want[i].edges[e].from);
      EXPECT_EQ(got[i].edges[e].to, want[i].edges[e].to);
      const auto& ge = got[i].edges[e].diff.edits;
      const auto& we = want[i].edges[e].diff.edits;
      ASSERT_EQ(ge.size(), we.size());
      for (size_t k = 0; k < ge.size(); ++k) {
        EXPECT_EQ(ge[k].kind, we[k].kind);
        EXPECT_EQ(ge[k].detail, we[k].detail);
      }
    }
  }
}

void ExpectRulesEqual(const std::vector<AssociationRule>& got,
                      const std::vector<AssociationRule>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("rule " + std::to_string(i));
    EXPECT_EQ(got[i].antecedent, want[i].antecedent);
    EXPECT_EQ(got[i].consequent, want[i].consequent);
    EXPECT_EQ(got[i].count, want[i].count);
    // Bit-identical, not approximately equal: both paths must compute
    // the ratios from the same integers.
    EXPECT_EQ(got[i].support, want[i].support);
    EXPECT_EQ(got[i].confidence, want[i].confidence);
  }
}

void ExpectClusteringEqual(const Clustering& got, const Clustering& want) {
  EXPECT_EQ(got.clusters, want.clusters);
  EXPECT_EQ(got.medoids, want.medoids);
}

void ExpectPopularityEqual(const PopularityTracker& got,
                           const PopularityTracker& want) {
  EXPECT_EQ(got.table_scores(), want.table_scores());
  EXPECT_EQ(got.skeleton_scores(), want.skeleton_scores());
  EXPECT_EQ(got.attribute_scores(), want.attribute_scores());
  EXPECT_EQ(got.fingerprint_scores(), want.fingerprint_scores());
}

void ExpectMinersEqual(const QueryMiner& got, const QueryMiner& want) {
  ExpectSessionsEqual(got.sessions(), want.sessions());
  ExpectRulesEqual(got.rules(), want.rules());
  ExpectClusteringEqual(got.clustering(), want.clustering());
  ExpectPopularityEqual(got.popularity(), want.popularity());
}

/// Parsed, non-deleted ids eligible for a rewrite/delete probe.
std::vector<QueryId> LiveParsedIds(const storage::QueryStore& store) {
  std::vector<QueryId> out;
  for (const auto& r : store.records()) {
    if (!r.HasFlag(storage::kFlagDeleted) && !r.parse_failed()) {
      out.push_back(r.id);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Headline: interleaved mutation cycles == from-scratch RunAll.

TEST(IncrementalMiningTest, InterleavedCyclesMatchFullRebuildOnSeededLog) {
  Harness h;
  workload::WorkloadOptions options;
  options.num_sessions = 1001;  // ~5 queries/session -> >= 5000 queries
  options.seed = 123;
  workload::RegisterUsers(&h.store, options);
  workload::GenerateLog(h.profiler.get(), &h.store, &h.clock, options);
  ASSERT_GE(h.store.size(), 5000u);

  QueryMinerOptions miner_options;
  miner_options.refresh_threshold = 1;
  miner_options.full_rebuild_interval = 0;  // force every cycle incremental
  QueryMiner miner(&h.store, &h.clock, miner_options);
  miner.RunAll();
  ASSERT_TRUE(miner.last_refresh_stats().full);

  for (int cycle = 0; cycle < 4; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle));
    // ~100 appended queries continuing on the same clock.
    workload::WorkloadOptions delta = options;
    delta.num_sessions = 20;
    delta.seed = 1000 + static_cast<uint64_t>(cycle);
    workload::GenerateLog(h.profiler.get(), &h.store, &h.clock, delta);

    std::vector<QueryId> live = LiveParsedIds(h.store);
    ASSERT_GT(live.size(), 100u);
    // Rewrites (repair-style): replace a few records' text.
    for (int i = 0; i < 3; ++i) {
      QueryId id = live[(cycle * 97 + i * 31) % (live.size() - 50)];
      ASSERT_TRUE(h.store
                      .RewriteQueryText(
                          id, "SELECT * FROM WaterTemp WHERE temp < " +
                                  std::to_string(40 + cycle * 10 + i))
                      .ok());
    }
    // Owner deletes.
    for (int i = 0; i < 3; ++i) {
      QueryId id = live[(cycle * 131 + i * 53) % (live.size() - 50) + 20];
      ASSERT_TRUE(h.store.Delete(id, h.store.Get(id)->user).ok());
    }
    // Flag flips: tombstone via AddFlag, and undelete a previously
    // deleted record.
    QueryId flagged = live[(cycle * 17 + 7) % (live.size() - 50) + 40];
    ASSERT_TRUE(h.store.AddFlag(flagged, storage::kFlagDeleted).ok());
    if (cycle > 0) {
      for (const auto& r : h.store.records()) {
        if (r.HasFlag(storage::kFlagDeleted)) {
          ASSERT_TRUE(h.store.ClearFlag(r.id, storage::kFlagDeleted).ok());
          break;
        }
      }
    }
    // Output-signature syncs (what the maintenance stats refresh emits).
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(
          h.store.SyncOutputSignature(live[(cycle * 11 + i) % live.size()])
              .ok());
    }

    ASSERT_TRUE(miner.MaybeRefresh());
    EXPECT_FALSE(miner.last_refresh_stats().full);
    EXPECT_GT(miner.last_refresh_stats().appended, 0u);
  }

  // The warm incremental miner must agree bit-for-bit with a
  // from-scratch rebuild over the same final store.
  QueryMiner reference(&h.store, &h.clock, miner_options);
  reference.RunAll();
  ExpectMinersEqual(miner, reference);

  // And the cache-backed clustering must match the dense oracle.
  std::vector<QueryId> sample;
  for (auto it = h.store.records().rbegin(); it != h.store.records().rend();
       ++it) {
    if (it->HasFlag(storage::kFlagDeleted) || it->parse_failed()) continue;
    sample.push_back(it->id);
    if (sample.size() >= miner_options.clustering_sample) break;
  }
  std::reverse(sample.begin(), sample.end());
  Clustering oracle =
      KMedoidsCluster(h.store, sample, miner_options.clustering);
  ExpectClusteringEqual(miner.clustering(), oracle);

  // The incremental path actually reused prior distances: almost
  // everything bulk-copies from the retained matrix, the rest splits
  // between cache hits and fresh computes touching the delta.
  const MinerRefreshStats& stats = miner.last_refresh_stats();
  EXPECT_GT(stats.pairs_copied, 0u);
  EXPECT_GT(stats.pairs_copied, stats.pairs_computed);
}

TEST(IncrementalMiningTest, FullRebuildIntervalForcesPeriodicRunAll) {
  Harness h;
  for (int i = 0; i < 10; ++i) {
    h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < " + std::to_string(i),
          kMicrosPerSecond);
  }
  QueryMinerOptions options;
  options.refresh_threshold = 1;
  options.full_rebuild_interval = 2;
  QueryMiner miner(&h.store, &h.clock, options);
  miner.RunAll();
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 90");
  ASSERT_TRUE(miner.MaybeRefresh());
  EXPECT_FALSE(miner.last_refresh_stats().full);
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 91");
  ASSERT_TRUE(miner.MaybeRefresh());  // second refresh hits the interval
  EXPECT_TRUE(miner.last_refresh_stats().full);
}

TEST(IncrementalMiningTest, OutOfOrderAppendStillMatchesFullRebuild) {
  Harness h;
  QueryMinerOptions options;
  options.refresh_threshold = 1;
  options.full_rebuild_interval = 0;
  for (int i = 0; i < 5; ++i) {
    h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < " + std::to_string(i),
          kMicrosPerMinute);
  }
  QueryMiner miner(&h.store, &h.clock, options);
  miner.RunAll();

  // Hand-append a record whose timestamp lands *before* alice's last
  // query: tail extension would be wrong, so the user must be
  // re-segmented — and still match the from-scratch result.
  storage::QueryRecord back_dated = storage::BuildRecordFromText(
      "SELECT * FROM WaterTemp WHERE temp < 99", "alice",
      h.store.Get(0)->timestamp + 1);
  h.store.Append(std::move(back_dated));
  ASSERT_TRUE(miner.MaybeRefresh());
  EXPECT_FALSE(miner.last_refresh_stats().full);
  EXPECT_EQ(miner.last_refresh_stats().users_resegmented, 1u);

  QueryMiner reference(&h.store, &h.clock, options);
  reference.RunAll();
  ExpectMinersEqual(miner, reference);
}

TEST(IncrementalMiningTest, DeleteThenUndeleteRoundTripsExactly) {
  Harness h;
  QueryMinerOptions options;
  options.refresh_threshold = 1;
  options.full_rebuild_interval = 0;
  std::vector<QueryId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(h.Log(i % 2 == 0 ? "alice" : "bob",
                        "SELECT * FROM WaterTemp WHERE temp < " +
                            std::to_string(i),
                        kMicrosPerSecond));
  }
  QueryMiner miner(&h.store, &h.clock, options);
  miner.RunAll();

  ASSERT_TRUE(h.store.Delete(ids[2], "alice").ok());
  h.Log("bob", "SELECT * FROM WaterSalinity WHERE salinity < 3");
  ASSERT_TRUE(miner.MaybeRefresh());
  EXPECT_FALSE(miner.last_refresh_stats().full);
  {
    QueryMiner reference(&h.store, &h.clock, options);
    reference.RunAll();
    ExpectMinersEqual(miner, reference);
  }

  ASSERT_TRUE(h.store.ClearFlag(ids[2], storage::kFlagDeleted).ok());
  h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 77");
  ASSERT_TRUE(miner.MaybeRefresh());
  EXPECT_FALSE(miner.last_refresh_stats().full);
  {
    QueryMiner reference(&h.store, &h.clock, options);
    reference.RunAll();
    ExpectMinersEqual(miner, reference);
  }
}

// ---------------------------------------------------------------------------
// DistanceCache unit behavior.

TEST(DistanceCacheTest, InsertLookupInvalidateOverwrite) {
  DistanceCache cache(64);
  double d = -1;
  EXPECT_FALSE(cache.Lookup(3, 7, &d));
  cache.Insert(7, 3, 0.25);  // unordered: {3,7}
  ASSERT_TRUE(cache.Lookup(3, 7, &d));
  EXPECT_EQ(d, 0.25);
  ASSERT_TRUE(cache.Lookup(7, 3, &d));
  EXPECT_EQ(d, 0.25);

  cache.Insert(3, 7, 0.5);  // overwrite in place
  ASSERT_TRUE(cache.Lookup(3, 7, &d));
  EXPECT_EQ(d, 0.5);
  EXPECT_EQ(cache.entries(), 1u);

  cache.Insert(3, 8, 0.75);
  cache.Invalidate(3);  // kills {3,7} and {3,8}...
  EXPECT_FALSE(cache.Lookup(3, 7, &d));
  EXPECT_FALSE(cache.Lookup(3, 8, &d));
  cache.Insert(3, 7, 0.125);  // ...and re-inserting revives the pair
  ASSERT_TRUE(cache.Lookup(3, 7, &d));
  EXPECT_EQ(d, 0.125);

  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.Lookup(3, 7, &d));
}

TEST(DistanceCacheTest, GrowPreservesLiveEntriesAndDropsStale) {
  DistanceCache cache(64);
  for (QueryId a = 0; a < 40; ++a) {
    for (QueryId b = a + 1; b < a + 4; ++b) {
      cache.Insert(a, b, static_cast<double>(a) + static_cast<double>(b) / 100);
    }
  }
  EXPECT_GT(cache.capacity(), 64u);  // grew past the initial table
  double d = -1;
  for (QueryId a = 0; a < 40; ++a) {
    for (QueryId b = a + 1; b < a + 4; ++b) {
      ASSERT_TRUE(cache.Lookup(a, b, &d));
      EXPECT_EQ(d, static_cast<double>(a) + static_cast<double>(b) / 100);
    }
  }

  const size_t before = cache.entries();
  cache.Invalidate(0);  // pairs {0,1},{0,2},{0,3} go stale
  EXPECT_EQ(cache.CompactIfNeeded(/*max_stale_fraction=*/0.0), 3u);
  EXPECT_EQ(cache.entries(), before - 3);
  ASSERT_TRUE(cache.Lookup(1, 2, &d));  // survivors intact
  EXPECT_EQ(d, 1.02);
}

TEST(DistanceCacheTest, CachedMatrixMatchesDenseOracleAcrossMutations) {
  Harness h;
  std::vector<QueryId> ids;
  for (int i = 0; i < 30; ++i) {
    ids.push_back(h.Log("user" + std::to_string(i % 3),
                        "SELECT * FROM WaterTemp WHERE temp < " +
                            std::to_string(i % 7),
                        kMicrosPerSecond));
  }
  metaquery::SimilarityWeights weights;
  DistanceCache cache;

  auto expect_matches_dense = [&](const char* label,
                                  CachedDistanceMatrix::BuildStats* stats) {
    SCOPED_TRACE(label);
    DenseDistanceMatrix dense(h.store, ids, weights, 512);
    CachedDistanceMatrix cached(h.store, ids, weights, 512, &cache);
    *stats = cached.build_stats();
    ASSERT_EQ(cached.size(), dense.size());
    for (size_t i = 0; i < dense.size(); ++i) {
      for (size_t j = 0; j < dense.size(); ++j) {
        ASSERT_EQ(cached.at(i, j), dense.at(i, j))
            << "pair (" << i << "," << j << ")";
      }
    }
  };

  CachedDistanceMatrix::BuildStats cold;
  expect_matches_dense("cold cache", &cold);
  EXPECT_EQ(cold.pairs_reused, 0u);
  EXPECT_EQ(cold.pairs_computed, cold.pairs_enumerated);

  CachedDistanceMatrix::BuildStats warm;
  expect_matches_dense("warm cache", &warm);
  EXPECT_EQ(warm.pairs_reused, warm.pairs_enumerated);
  EXPECT_EQ(warm.pairs_computed, 0u);

  // A rewrite changes one record's signature; after invalidation only
  // that record's row recomputes, and the matrix matches a fresh dense
  // build again.
  ASSERT_TRUE(
      h.store.RewriteQueryText(ids[5], "SELECT city FROM CityLocations").ok());
  cache.Invalidate(ids[5]);
  CachedDistanceMatrix::BuildStats after;
  expect_matches_dense("after rewrite + invalidate", &after);
  EXPECT_GT(after.pairs_reused, 0u);
  EXPECT_GT(after.pairs_computed, 0u);
  EXPECT_LT(after.pairs_computed, after.pairs_enumerated);
}

// ---------------------------------------------------------------------------
// Indexed lookups == linear references.

TEST(IncrementalMiningTest, SessionAndClusterLookupsMatchLinearReference) {
  Harness h;
  for (int u = 0; u < 3; ++u) {
    for (int i = 0; i < 6; ++i) {
      h.Log("user" + std::to_string(u),
            "SELECT * FROM WaterTemp WHERE temp < " + std::to_string(i),
            i == 2 ? 30 * kMicrosPerMinute : kMicrosPerSecond);
    }
  }
  QueryMiner miner(&h.store, &h.clock, {});
  miner.RunAll();
  ASSERT_GT(miner.sessions().size(), 3u);

  for (const Session& s : miner.sessions()) {
    EXPECT_EQ(miner.FindSession(s.id), &s);
  }
  EXPECT_EQ(miner.FindSession(999), nullptr);
  EXPECT_EQ(miner.FindSession(-1), nullptr);

  for (int u = 0; u < 3; ++u) {
    std::string user = "user" + std::to_string(u);
    std::vector<const Session*> linear;
    for (const Session& s : miner.sessions()) {
      if (s.user == user) linear.push_back(&s);
    }
    std::sort(linear.begin(), linear.end(),
              [](const Session* a, const Session* b) {
                return a->start > b->start;
              });
    std::vector<const Session*> indexed = miner.SessionsOfUser(user);
    ASSERT_EQ(indexed.size(), linear.size()) << user;
    for (size_t i = 0; i < indexed.size(); ++i) {
      EXPECT_EQ(indexed[i]->start, linear[i]->start);
      EXPECT_EQ(indexed[i]->user, user);
    }
  }
  EXPECT_TRUE(miner.SessionsOfUser("nobody").empty());

  // ClusterOf: indexed lookups agree with membership.
  const Clustering& c = miner.clustering();
  for (size_t i = 0; i < c.clusters.size(); ++i) {
    for (QueryId id : c.clusters[i]) {
      EXPECT_EQ(c.ClusterOf(id), static_cast<int>(i));
    }
  }
  EXPECT_EQ(c.ClusterOf(99999), -1);
}

}  // namespace
}  // namespace cqms::miner
