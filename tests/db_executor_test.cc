#include <gtest/gtest.h>

#include "db/database.h"
#include "sql/parser.h"

namespace cqms::db {
namespace {

/// Builds the small limnology database the paper's examples revolve
/// around (WaterTemp / WaterSalinity / CityLocations).
Database MakeLakeDb() {
  Database db;
  EXPECT_TRUE(db.CreateTable(TableSchema(
                                 "WaterTemp",
                                 {{"lake", ValueType::kString},
                                  {"loc_x", ValueType::kInt},
                                  {"loc_y", ValueType::kInt},
                                  {"temp", ValueType::kDouble}}))
                  .ok());
  EXPECT_TRUE(db.CreateTable(TableSchema(
                                 "WaterSalinity",
                                 {{"lake", ValueType::kString},
                                  {"loc_x", ValueType::kInt},
                                  {"loc_y", ValueType::kInt},
                                  {"salinity", ValueType::kDouble}}))
                  .ok());
  EXPECT_TRUE(db.CreateTable(TableSchema("CityLocations",
                                         {{"city", ValueType::kString},
                                          {"state", ValueType::kString},
                                          {"pop", ValueType::kInt}}))
                  .ok());
  auto ins = [&](const std::string& t, Row r) {
    EXPECT_TRUE(db.Insert(t, std::move(r)).ok());
  };
  ins("WaterTemp", {Value::String("Washington"), Value::Int(1), Value::Int(1),
                    Value::Double(15.5)});
  ins("WaterTemp", {Value::String("Washington"), Value::Int(2), Value::Int(1),
                    Value::Double(16.0)});
  ins("WaterTemp", {Value::String("Union"), Value::Int(3), Value::Int(2),
                    Value::Double(19.5)});
  ins("WaterTemp", {Value::String("Sammamish"), Value::Int(4), Value::Int(3),
                    Value::Double(12.0)});
  ins("WaterSalinity", {Value::String("Washington"), Value::Int(1), Value::Int(1),
                        Value::Double(0.2)});
  ins("WaterSalinity", {Value::String("Union"), Value::Int(3), Value::Int(2),
                        Value::Double(0.5)});
  ins("CityLocations",
      {Value::String("Seattle"), Value::String("WA"), Value::Int(750000)});
  ins("CityLocations",
      {Value::String("Bellevue"), Value::String("WA"), Value::Int(150000)});
  ins("CityLocations",
      {Value::String("Detroit"), Value::String("MI"), Value::Int(630000)});
  return db;
}

QueryResult Exec(const Database& db, const std::string& sql) {
  auto r = db.ExecuteSql(sql);
  EXPECT_TRUE(r.ok()) << r.status() << " for: " << sql;
  return r.ok() ? std::move(r).value() : QueryResult{};
}

TEST(ExecutorTest, SelectConstantWithoutFrom) {
  Database db;
  QueryResult r = Exec(db, "SELECT 1 + 2 * 3");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 7);
}

TEST(ExecutorTest, FullScanSelectStar) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db, "SELECT * FROM WaterTemp");
  EXPECT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.column_names,
            (std::vector<std::string>{"lake", "loc_x", "loc_y", "temp"}));
}

TEST(ExecutorTest, FilterComparison) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db, "SELECT lake FROM WaterTemp WHERE temp < 18");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST(ExecutorTest, ProjectionWithAliasAndExpression) {
  Database db = MakeLakeDb();
  QueryResult r =
      Exec(db, "SELECT temp * 2 AS double_temp FROM WaterTemp WHERE loc_x = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.column_names[0], "double_temp");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 31.0);
}

TEST(ExecutorTest, ImplicitJoinWithWhere) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT T.lake, S.salinity FROM WaterTemp T, "
                      "WaterSalinity S WHERE T.loc_x = S.loc_x AND "
                      "T.loc_y = S.loc_y");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(ExecutorTest, ExplicitInnerJoin) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT T.lake FROM WaterTemp T JOIN WaterSalinity S "
                      "ON T.loc_x = S.loc_x");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(ExecutorTest, LeftJoinPreservesUnmatchedRows) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT T.lake, S.salinity FROM WaterTemp T LEFT JOIN "
                      "WaterSalinity S ON T.loc_x = S.loc_x");
  EXPECT_EQ(r.rows.size(), 4u);
  int nulls = 0;
  for (const Row& row : r.rows) {
    if (row[1].is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 2);
}

TEST(ExecutorTest, RightJoinPreservesUnmatchedRight) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT S.lake FROM WaterSalinity S RIGHT JOIN "
                      "CityLocations C ON S.lake = C.city");
  // No salinity lake matches a city name: all three city rows survive
  // with NULL left sides.
  EXPECT_EQ(r.rows.size(), 3u);
  for (const Row& row : r.rows) EXPECT_TRUE(row[0].is_null());
}

TEST(ExecutorTest, GroupByWithAggregates) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT lake, COUNT(*) AS n, AVG(temp) FROM WaterTemp "
                      "GROUP BY lake ORDER BY lake");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Sammamish");
  EXPECT_EQ(r.rows[2][0].AsString(), "Washington");
  EXPECT_EQ(r.rows[2][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.rows[2][2].AsDouble(), 15.75);
}

TEST(ExecutorTest, HavingFiltersGroups) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT lake FROM WaterTemp GROUP BY lake "
                      "HAVING COUNT(*) > 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Washington");
}

TEST(ExecutorTest, AggregateOverEmptyInput) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db, "SELECT COUNT(*), MAX(temp) FROM WaterTemp WHERE temp > 100");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST(ExecutorTest, CountDistinct) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db, "SELECT COUNT(DISTINCT lake) FROM WaterTemp");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST(ExecutorTest, OrderByDescendingAndLimit) {
  Database db = MakeLakeDb();
  QueryResult r =
      Exec(db, "SELECT lake, temp FROM WaterTemp ORDER BY temp DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Union");
  EXPECT_EQ(r.rows[1][0].AsString(), "Washington");
}

TEST(ExecutorTest, OrderByAlias) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT lake, COUNT(*) AS n FROM WaterTemp GROUP BY lake "
                      "ORDER BY n DESC, lake LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Washington");
}

TEST(ExecutorTest, DistinctRemovesDuplicates) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db, "SELECT DISTINCT state FROM CityLocations");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(ExecutorTest, LimitOffset) {
  Database db = MakeLakeDb();
  QueryResult r =
      Exec(db, "SELECT lake FROM WaterTemp ORDER BY lake LIMIT 2 OFFSET 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Union");
}

TEST(ExecutorTest, InListAndBetween) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT lake FROM WaterTemp WHERE lake IN "
                      "('Union', 'Sammamish') AND temp BETWEEN 10 AND 20");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(ExecutorTest, LikePatterns) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db, "SELECT city FROM CityLocations WHERE city LIKE 'Se%'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Seattle");
  r = Exec(db, "SELECT city FROM CityLocations WHERE city LIKE '_e%e'");
  EXPECT_EQ(r.rows.size(), 2u);  // Seattle, Bellevue (both end in 'e')
  r = Exec(db, "SELECT city FROM CityLocations WHERE city LIKE 'B_ll%'");
  EXPECT_EQ(r.rows.size(), 1u);  // Bellevue
}

TEST(ExecutorTest, UncorrelatedInSubquery) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT lake FROM WaterTemp WHERE lake IN "
                      "(SELECT lake FROM WaterSalinity)");
  EXPECT_EQ(r.rows.size(), 3u);  // Washington x2, Union
}

TEST(ExecutorTest, CorrelatedExistsSubquery) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT T.lake FROM WaterTemp T WHERE EXISTS "
                      "(SELECT 1 FROM WaterSalinity S WHERE S.loc_x = T.loc_x)");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(ExecutorTest, ScalarSubquery) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT lake FROM WaterTemp WHERE temp = "
                      "(SELECT MAX(temp) FROM WaterTemp)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Union");
}

TEST(ExecutorTest, UnionDeduplicatesUnionAllDoesNot) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT lake FROM WaterTemp UNION SELECT lake FROM "
                      "WaterSalinity");
  EXPECT_EQ(r.rows.size(), 3u);
  r = Exec(db,
          "SELECT lake FROM WaterTemp UNION ALL SELECT lake FROM WaterSalinity");
  EXPECT_EQ(r.rows.size(), 6u);
}

TEST(ExecutorTest, NullComparisonsRejectRows) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"x", ValueType::kInt}})).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1)}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Null()}).ok());
  EXPECT_EQ(Exec(db, "SELECT x FROM t WHERE x = 1").rows.size(), 1u);
  EXPECT_EQ(Exec(db, "SELECT x FROM t WHERE x <> 1").rows.size(), 0u);
  EXPECT_EQ(Exec(db, "SELECT x FROM t WHERE x IS NULL").rows.size(), 1u);
  EXPECT_EQ(Exec(db, "SELECT x FROM t WHERE x IS NOT NULL").rows.size(), 1u);
}

TEST(ExecutorTest, ThreeValuedLogicInOr) {
  Database db;
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"x", ValueType::kInt}})).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Null()}).ok());
  // NULL OR TRUE is TRUE.
  EXPECT_EQ(Exec(db, "SELECT x FROM t WHERE x = 1 OR 1 = 1").rows.size(), 1u);
  // NULL AND TRUE is NULL -> rejected.
  EXPECT_EQ(Exec(db, "SELECT x FROM t WHERE x = 1 AND 1 = 1").rows.size(), 0u);
}

TEST(ExecutorTest, CaseExpression) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT lake, CASE WHEN temp < 13 THEN 'cold' WHEN temp "
                      "< 18 THEN 'mild' ELSE 'warm' END AS band FROM WaterTemp "
                      "ORDER BY lake, band");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][1].AsString(), "cold");  // Sammamish 12.0
}

TEST(ExecutorTest, ScalarFunctions) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db,
                      "SELECT UPPER(city), LENGTH(city), SUBSTR(city, 1, 3) "
                      "FROM CityLocations WHERE city = 'Seattle'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "SEATTLE");
  EXPECT_EQ(r.rows[0][1].AsInt(), 7);
  EXPECT_EQ(r.rows[0][2].AsString(), "Sea");
}

TEST(ExecutorTest, UnknownTableIsBindError) {
  Database db = MakeLakeDb();
  auto r = db.ExecuteSql("SELECT * FROM Nonexistent");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(ExecutorTest, UnknownColumnIsBindError) {
  Database db = MakeLakeDb();
  auto r = db.ExecuteSql("SELECT bogus FROM WaterTemp");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(ExecutorTest, RowsScannedIsReported) {
  Database db = MakeLakeDb();
  QueryResult r = Exec(db, "SELECT * FROM WaterTemp");
  EXPECT_GE(r.rows_scanned, 4u);
}

TEST(ValidateTest, AcceptsResolvableQueries) {
  Database db = MakeLakeDb();
  auto stmt = sql::Parse(
      "SELECT T.temp FROM WaterTemp T, WaterSalinity S WHERE "
      "T.loc_x = S.loc_x");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(db.Validate(**stmt).ok());
}

TEST(ValidateTest, RejectsUnknownTableAndColumn) {
  Database db = MakeLakeDb();
  auto s1 = sql::Parse("SELECT * FROM Gone");
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(db.Validate(**s1).code(), StatusCode::kBindError);

  auto s2 = sql::Parse("SELECT missing_col FROM WaterTemp");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(db.Validate(**s2).code(), StatusCode::kBindError);
}

TEST(ValidateTest, ValidatesSubqueriesWithCorrelation) {
  Database db = MakeLakeDb();
  auto good = sql::Parse(
      "SELECT lake FROM WaterTemp T WHERE EXISTS (SELECT 1 FROM "
      "WaterSalinity S WHERE S.loc_x = T.loc_x)");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(db.Validate(**good).ok());

  auto bad = sql::Parse(
      "SELECT lake FROM WaterTemp WHERE EXISTS (SELECT 1 FROM "
      "WaterSalinity WHERE bogus = 1)");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(db.Validate(**bad).ok());
}

TEST(ValidateTest, DetectsAmbiguousColumns) {
  Database db = MakeLakeDb();
  auto stmt = sql::Parse("SELECT loc_x FROM WaterTemp, WaterSalinity");
  ASSERT_TRUE(stmt.ok());
  Status s = db.Validate(**stmt);
  EXPECT_EQ(s.code(), StatusCode::kBindError);
  EXPECT_NE(s.message().find("ambiguous"), std::string::npos);
}

TEST(SchemaEvolutionTest, DropColumnInvalidatesQueries) {
  Database db = MakeLakeDb();
  auto stmt = sql::Parse("SELECT temp FROM WaterTemp");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(db.Validate(**stmt).ok());
  ASSERT_TRUE(db.DropColumn("WaterTemp", "temp").ok());
  EXPECT_FALSE(db.Validate(**stmt).ok());
}

TEST(SchemaEvolutionTest, RenameTablePropagatesToData) {
  Database db = MakeLakeDb();
  ASSERT_TRUE(db.RenameTable("WaterTemp", "LakeTemp").ok());
  EXPECT_EQ(Exec(db, "SELECT * FROM LakeTemp").rows.size(), 4u);
  EXPECT_FALSE(db.ExecuteSql("SELECT * FROM WaterTemp").ok());
}

TEST(SchemaEvolutionTest, AddColumnBackfillsNulls) {
  Database db = MakeLakeDb();
  ASSERT_TRUE(db.AddColumn("CityLocations", {"founded", ValueType::kInt}).ok());
  QueryResult r = Exec(db, "SELECT founded FROM CityLocations");
  ASSERT_EQ(r.rows.size(), 3u);
  for (const Row& row : r.rows) EXPECT_TRUE(row[0].is_null());
}

TEST(SchemaEvolutionTest, ChangeLogRecordsEvents) {
  SimulatedClock clock(1000);
  Database db(&clock);
  ASSERT_TRUE(db.CreateTable(TableSchema("t", {{"x", ValueType::kInt}})).ok());
  clock.Advance(10);
  ASSERT_TRUE(db.AddColumn("t", {"y", ValueType::kInt}).ok());
  const auto& changes = db.catalog().changes();
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].kind, SchemaChangeKind::kCreateTable);
  EXPECT_EQ(changes[1].kind, SchemaChangeKind::kAddColumn);
  EXPECT_EQ(changes[1].timestamp, 1010);
  EXPECT_EQ(db.catalog().LastChangeTime("t"), 1010);
  EXPECT_EQ(db.catalog().ChangesSince(1005).size(), 1u);
}

}  // namespace
}  // namespace cqms::db
