// Unified MetaQuery planner tests: (1) an equality suite asserting that
// every legacy single-predicate entry point returns exactly the same
// results through the planner pipeline as the pre-planner reference
// implementations on a seeded ~5k synthetic log, (2) combined-predicate
// requests checked against a brute-force filter-then-rank reference,
// (3) planner generator selection, (4) the executor-owned persistent
// VisibilityCache re-checking after ACL mutations, and (5) scoring-column
// coherence across every record mutation path (flags, quality, delete,
// rewrite, stats refresh).

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "metaquery/meta_query_executor.h"
#include "metaquery/meta_query_planner.h"
#include "storage/record_builder.h"
#include "test_util.h"
#include "workload/synthetic.h"

namespace cqms::metaquery {
namespace {

using storage::QueryId;
using storage::QueryRecord;
using testing_util::Harness;

/// One shared ~5k-query synthetic log (generation dominates test time,
/// so all equality cases reuse it). Leaked intentionally.
Harness& BigLog() {
  static Harness* harness = [] {
    auto* h = new Harness();
    workload::WorkloadOptions options;
    options.num_sessions = 1001;  // ~5 queries/session -> >= 5000 queries
    options.seed = 123;
    workload::RegisterUsers(&h->store, options);
    workload::GenerateLog(h->profiler.get(), &h->store, &h->clock, options);
    return h;
  }();
  return *harness;
}

const char* kProbes[] = {
    "SELECT T.lake, T.temp, S.salinity FROM WaterTemp T, WaterSalinity S "
    "WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
    "SELECT * FROM WaterTemp T WHERE T.temp < 14",
    "SELECT lake, AVG(temp) AS avg_temp, COUNT(*) AS n FROM WaterTemp "
    "WHERE temp > 6 GROUP BY lake",
    "SELECT city FROM CityLocations WHERE state = 'WA' AND pop > 300000",
    "SELECT R.ts, R.value FROM Sensors N, Readings R "
    "WHERE N.sensor_id = R.sensor_id AND N.kind = 'temp'",
};

const char* kViewers[] = {"user0", "user3", "user7"};

void ExpectNeighborsEqual(const std::vector<Neighbor>& got,
                          const std::vector<Neighbor>& want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << label << " rank " << i;
    EXPECT_DOUBLE_EQ(got[i].similarity, want[i].similarity)
        << label << " rank " << i;
    EXPECT_DOUBLE_EQ(got[i].score, want[i].score) << label << " rank " << i;
  }
}

// --- equality suite: every legacy entry point through the planner --------

TEST(PlannerEqualityTest, KeywordMatchesLegacyOn5kLog) {
  Harness& h = BigLog();
  ASSERT_GE(h.store.size(), 5000u);
  MetaQueryExecutor executor(&h.store);
  const char* word_sets[] = {"salinity temp", "lake avg",  "watertemp",
                             "sensors",       "zzz_nohit", "city pop state"};
  for (const char* viewer : kViewers) {
    for (const char* words : word_sets) {
      for (bool match_all : {true, false}) {
        EXPECT_EQ(executor.Keyword(viewer, words, match_all),
                  KeywordSearch(h.store, viewer, words, match_all))
            << viewer << " / " << words << " match_all=" << match_all;
      }
    }
  }
}

TEST(PlannerEqualityTest, SubstringMatchesBruteForceOn5kLog) {
  Harness& h = BigLog();
  MetaQueryExecutor executor(&h.store);
  const char* needles[] = {"GROUP BY lake", "temp <", "SaLiNiTy", "zzz", ""};
  for (const char* viewer : kViewers) {
    for (const char* needle : needles) {
      // Independent brute force straight off the record structs: the
      // planner and SubstringSearch both read the memoized lowered text,
      // so the reference must not.
      std::vector<QueryId> brute;
      if (*needle != '\0') {
        for (const QueryRecord& r : h.store.records()) {
          if (h.store.Visible(viewer, r.id) &&
              ContainsIgnoreCase(r.text, needle)) {
            brute.push_back(r.id);
          }
        }
      }
      EXPECT_EQ(executor.Substring(viewer, needle), brute)
          << viewer << " / '" << needle << "'";
      EXPECT_EQ(SubstringSearch(h.store, viewer, needle), brute)
          << viewer << " / '" << needle << "'";
    }
  }
}

TEST(PlannerEqualityTest, FeatureQueryMatchesLegacyOn5kLog) {
  Harness& h = BigLog();
  MetaQueryExecutor executor(&h.store);
  std::vector<FeatureQuery> queries;
  queries.emplace_back().UsesTable("WaterTemp");
  queries.emplace_back().UsesTable("WaterTemp").UsesTable("WaterSalinity");
  queries.emplace_back().HasPredicateOn("watertemp", "temp", "<");
  queries.emplace_back().UsesAttribute("citylocations", "state").ByUser("user2");
  queries.emplace_back().SucceededOnly().MaxResultRows(50);
  queries.emplace_back().UsesTable("NoSuchTable");
  for (const char* viewer : kViewers) {
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(executor.ByFeature(viewer, queries[i]),
                queries[i].Evaluate(h.store, viewer))
          << viewer << " / feature query " << i;
    }
  }
}

TEST(PlannerEqualityTest, StructuralMatchesLegacyOn5kLog) {
  Harness& h = BigLog();
  MetaQueryExecutor executor(&h.store);
  std::vector<StructuralPattern> patterns(4);
  patterns[0].min_joins = 1;
  patterns[1].required_aggregates = {"AVG"};
  patterns[1].requires_group_by = true;
  patterns[2].required_tables = {"watertemp"};
  patterns[2].forbidden_tables = {"watersalinity"};
  patterns[3].required_tables = {"sensors", "readings"};
  patterns[3].max_joins = 3;
  for (const char* viewer : kViewers) {
    for (size_t i = 0; i < patterns.size(); ++i) {
      EXPECT_EQ(executor.ByStructure(viewer, patterns[i]),
                StructuralSearch(h.store, viewer, patterns[i]))
          << viewer << " / pattern " << i;
    }
  }
}

TEST(PlannerEqualityTest, QueryByDataMatchesLegacyOn5kLog) {
  Harness& h = BigLog();
  MetaQueryExecutor executor(&h.store);
  std::vector<DataExample> examples;
  examples.push_back({{db::Value::String("Washington")}, true});
  examples.push_back({{db::Value::String("Union")}, false});
  QueryByDataOptions options;  // summaries only; no re-execution
  for (const char* viewer : kViewers) {
    EXPECT_EQ(executor.ByData(viewer, examples, options),
              QueryByData(h.store, viewer, examples, options))
        << viewer;
  }
}

TEST(PlannerEqualityTest, KnnMatchesReferenceOn5kLog) {
  Harness& h = BigLog();
  MetaQueryExecutor executor(&h.store);
  for (const char* viewer : kViewers) {
    for (const char* text : kProbes) {
      QueryRecord probe = storage::BuildRecordFromText(
          text, viewer, 0, storage::SignatureMode::kTransient);
      ASSERT_FALSE(probe.parse_failed()) << text;
      for (size_t k : {1u, 10u, 50u}) {
        std::string label = std::string(viewer) + " / k=" +
                            std::to_string(k) + " / " + text;
        // Through the executor (persistent cache)...
        ExpectNeighborsEqual(executor.Knn(viewer, probe, k),
                             KnnSearchReference(h.store, viewer, probe, k),
                             label + " (executor)");
        // ...and through the free function (call-local cache).
        ExpectNeighborsEqual(KnnSearch(h.store, viewer, probe, k),
                             KnnSearchReference(h.store, viewer, probe, k),
                             label + " (free fn)");
      }
    }
  }
}

TEST(PlannerEqualityTest, KnnExhaustivePathMatchesReference) {
  Harness& h = BigLog();
  CandidateOptions exhaustive;
  exhaustive.use_lsh = false;
  QueryRecord probe = storage::BuildRecordFromText(
      kProbes[0], "user0", 0, storage::SignatureMode::kTransient);
  ExpectNeighborsEqual(
      KnnSearch(h.store, "user0", probe, 25, {}, {}, exhaustive),
      KnnSearchReference(h.store, "user0", probe, 25, {}, {}, exhaustive),
      "exhaustive");
}

// --- combined predicates vs brute-force filter-then-rank -----------------

TEST(CombinedRequestTest, KeywordTableSimilarityMatchesBruteForce) {
  Harness& h = BigLog();
  MetaQueryExecutor executor(&h.store);
  const std::string viewer = "user1";
  QueryRecord probe = storage::BuildRecordFromText(
      kProbes[0], viewer, 0, storage::SignatureMode::kTransient);
  ASSERT_FALSE(probe.parse_failed());

  MetaQueryRequest request;
  FeatureQuery feature;
  feature.UsesTable("WaterTemp");
  RankingOptions ranking;
  ranking.w_popularity = 0.25;  // "ranked by popularity" flavor
  request.WithKeywords("salinity")
      .WithFeature(feature)
      .SimilarTo(probe)
      .RankedBy(ranking)
      .Limit(20);
  MetaQueryResponse response = executor.Execute(viewer, request);
  EXPECT_EQ(response.generator, CandidateGenerator::kPostingIntersection);

  // Brute force from the record structs, no planner machinery.
  Micros max_ts = std::max<Micros>(1, h.store.max_timestamp());
  double inv_log_size =
      1.0 / std::log1p(static_cast<double>(h.store.size()) + 1.0);
  std::vector<MetaQueryMatch> brute;
  for (const QueryRecord& r : h.store.records()) {
    if (!h.store.Visible(viewer, r.id)) continue;
    if (r.HasFlag(storage::kFlagSchemaBroken) ||
        r.HasFlag(storage::kFlagObsolete)) {
      continue;
    }
    std::vector<std::string> tokens = ExtractWords(r.text);
    if (std::find(tokens.begin(), tokens.end(), "salinity") == tokens.end()) {
      continue;
    }
    if (r.parse_failed() ||
        std::find(r.components.tables.begin(), r.components.tables.end(),
                  "watertemp") == r.components.tables.end()) {
      continue;
    }
    double sim = CombinedSimilarity(probe, r);
    if (sim < ranking.min_similarity) continue;
    double popularity =
        std::log1p(static_cast<double>(h.store.PopularityOf(r.fingerprint))) *
        inv_log_size;
    double recency = static_cast<double>(r.timestamp) /
                     static_cast<double>(max_ts);
    double score = ranking.w_similarity * sim +
                   ranking.w_popularity * popularity +
                   ranking.w_quality * r.quality + ranking.w_recency * recency;
    brute.push_back({r.id, sim, score});
  }
  std::sort(brute.begin(), brute.end(),
            [](const MetaQueryMatch& a, const MetaQueryMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (brute.size() > 20) brute.resize(20);

  ASSERT_EQ(response.matches.size(), brute.size());
  ASSERT_FALSE(response.matches.empty())
      << "combined request unexpectedly selective — fixture drifted?";
  for (size_t i = 0; i < brute.size(); ++i) {
    EXPECT_EQ(response.matches[i].id, brute[i].id) << "rank " << i;
    EXPECT_DOUBLE_EQ(response.matches[i].similarity, brute[i].similarity);
    EXPECT_DOUBLE_EQ(response.matches[i].score, brute[i].score);
  }
}

TEST(CombinedRequestTest, KeywordStructureLogOrderMatchesBruteForce) {
  Harness& h = BigLog();
  MetaQueryExecutor executor(&h.store);
  const std::string viewer = "user0";
  MetaQueryRequest request;
  StructuralPattern pattern;
  pattern.requires_group_by = true;
  request.WithKeywords("lake avg").WithStructure(pattern).InLogOrder();
  request.ranking.exclude_flagged = false;

  std::vector<QueryId> brute;
  for (const QueryRecord& r : h.store.records()) {
    if (!h.store.Visible(viewer, r.id)) continue;
    std::vector<std::string> tokens = ExtractWords(r.text);
    auto has = [&](const char* w) {
      return std::find(tokens.begin(), tokens.end(), w) != tokens.end();
    };
    if (!has("lake") || !has("avg")) continue;
    if (!MatchesPattern(r, pattern)) continue;
    brute.push_back(r.id);
  }
  EXPECT_EQ(executor.Execute(viewer, request).Ids(), brute);
  ASSERT_FALSE(brute.empty());
}

TEST(CombinedRequestTest, SubstringPlusDataOnSmallLog) {
  Harness h;
  h.store.acl().AddUser("alice", {"lab"});
  h.Log("alice", "SELECT lake FROM WaterTemp WHERE lake = 'Washington'");
  h.Log("alice", "SELECT lake FROM WaterTemp WHERE lake = 'Union'");
  h.Log("alice", "SELECT city FROM CityLocations WHERE state = 'WA'");
  MetaQueryExecutor executor(&h.store);

  MetaQueryRequest request;
  std::vector<DataExample> examples;
  examples.push_back({{db::Value::String("Washington")}, true});
  QueryByDataOptions options;
  options.reexecute_on = &h.database;
  request.WithSubstring("FROM WaterTemp").WithData(examples, options);
  request.InLogOrder();
  request.ranking.exclude_flagged = false;

  EXPECT_EQ(executor.Execute("alice", request).Ids(),
            (std::vector<QueryId>{0}));
}

// --- planner generator selection -----------------------------------------

TEST(PlannerGeneratorTest, PicksCheapestGenerator) {
  Harness& h = BigLog();
  MetaQueryPlanner planner(&h.store);
  QueryRecord probe = storage::BuildRecordFromText(
      kProbes[0], "user0", 0, storage::SignatureMode::kTransient);

  // Posting lists beat LSH whenever any indexed predicate exists.
  MetaQueryRequest combined;
  FeatureQuery feature;
  feature.UsesTable("WaterSalinity");
  combined.WithFeature(feature).SimilarTo(probe).Limit(5);
  EXPECT_EQ(planner.Execute("user0", combined).generator,
            CandidateGenerator::kPostingIntersection);

  // Similarity alone on a big log: LSH buckets.
  MetaQueryRequest knn_only;
  knn_only.SimilarTo(probe).Limit(5);
  EXPECT_EQ(planner.Execute("user0", knn_only).generator,
            CandidateGenerator::kLshBuckets);

  // Similarity with LSH disabled: the table-posting union.
  MetaQueryRequest exhaustive;
  CandidateOptions no_lsh;
  no_lsh.use_lsh = false;
  exhaustive.SimilarTo(probe, {}, no_lsh).Limit(5);
  EXPECT_EQ(planner.Execute("user0", exhaustive).generator,
            CandidateGenerator::kTableUnion);

  // Substring alone: nothing indexed, full scan.
  MetaQueryRequest substring_only;
  substring_only.WithSubstring("temp").InLogOrder();
  MetaQueryResponse scan = planner.Execute("user0", substring_only);
  EXPECT_EQ(scan.generator, CandidateGenerator::kFullScan);
  EXPECT_EQ(scan.candidates_considered, h.store.size());
}

// --- persistent VisibilityCache: invalidate on ACL mutation --------------

TEST(VisibilityCacheInvalidationTest, CachedViewerRechecksAfterGroupChange) {
  Harness h;
  h.store.acl().AddUser("alice", {"lab"});
  h.store.acl().AddUser("eve", {"other"});
  QueryId q = h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 20");
  MetaQueryExecutor executor(&h.store);

  // Cache eve's (negative) decision.
  EXPECT_TRUE(executor.Keyword("eve", "watertemp").empty());
  EXPECT_TRUE(executor.Knn("eve", *h.store.Get(q), 5).empty());

  // eve joins alice's group: the cached decision must be re-checked.
  h.store.acl().AddUser("eve", {"lab"});
  EXPECT_EQ(executor.Keyword("eve", "watertemp"), (std::vector<QueryId>{q}));
  EXPECT_FALSE(executor.Knn("eve", *h.store.Get(q), 5).empty());

  // Owner makes the query private: cached positive must drop too.
  ASSERT_TRUE(h.store.acl()
                  .SetVisibility(q, "alice", "alice", storage::Visibility::kPrivate)
                  .ok());
  EXPECT_TRUE(executor.Keyword("eve", "watertemp").empty());
  EXPECT_EQ(executor.Keyword("alice", "watertemp"),
            (std::vector<QueryId>{q}));  // owners always see their own
}

// --- scoring-column coherence across mutations ---------------------------

TEST(ScoringColumnsCoherenceTest, MutationsKeepPlannerEqualToReference) {
  Harness h;
  h.store.acl().AddUser("alice", {"lab"});
  h.store.acl().AddUser("bob", {"lab"});
  std::vector<QueryId> ids;
  ids.push_back(h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 20"));
  ids.push_back(h.Log("bob", "SELECT * FROM WaterTemp WHERE temp < 21"));
  ids.push_back(h.Log("alice", "SELECT * FROM WaterTemp WHERE temp < 20"));
  ids.push_back(h.Log("bob", "SELECT lake FROM WaterTemp GROUP BY lake"));
  MetaQueryExecutor executor(&h.store);
  QueryRecord probe = storage::BuildRecordFromText(
      "SELECT * FROM WaterTemp WHERE temp < 19", "alice", 0,
      storage::SignatureMode::kTransient);

  auto check = [&](const std::string& label) {
    ExpectNeighborsEqual(executor.Knn("alice", probe, 10),
                         KnnSearchReference(h.store, "alice", probe, 10),
                         label);
  };
  check("initial");

  ASSERT_TRUE(h.store.SetQuality(ids[1], 0.95).ok());
  check("after SetQuality");

  ASSERT_TRUE(h.store.AddFlag(ids[0], storage::kFlagObsolete).ok());
  check("after AddFlag");
  for (const Neighbor& n : executor.Knn("alice", probe, 10)) {
    EXPECT_NE(n.id, ids[0]);
  }

  ASSERT_TRUE(h.store.ClearFlag(ids[0], storage::kFlagObsolete).ok());
  check("after ClearFlag");

  ASSERT_TRUE(h.store.Delete(ids[2], "alice").ok());
  check("after Delete");
  for (const Neighbor& n : executor.Knn("alice", probe, 10)) {
    EXPECT_NE(n.id, ids[2]);
  }

  // Rewrite: popularity slots move, arena re-packs, lowered text updates.
  ASSERT_TRUE(
      h.store.RewriteQueryText(ids[1], "SELECT * FROM WaterSalinity WHERE salinity < 5")
          .ok());
  check("after RewriteQueryText");
  EXPECT_EQ(h.store.scoring().popularity(ids[1]),
            h.store.PopularityOf(h.store.Get(ids[1])->fingerprint));
  EXPECT_EQ(executor.Substring("bob", "watersalinity"),
            (std::vector<QueryId>{ids[1]}));
  EXPECT_TRUE(executor.Substring("bob", "temp < 21").empty());

  // Stats refresh path: summary replaced through SyncOutputSignature.
  QueryRecord* r = h.store.GetMutable(ids[3]);
  r->summary.total_rows = 0;
  r->summary.sample_rows.clear();
  r->summary.complete = true;
  ASSERT_TRUE(h.store.SyncOutputSignature(ids[3]).ok());
  check("after SyncOutputSignature");
  EXPECT_TRUE(h.store.scoring().output_empty_computed(ids[3]));
}

TEST(ScoringColumnsCoherenceTest, PopularityEqualsFingerprintIndex) {
  Harness& h = BigLog();
  for (const QueryRecord& r : h.store.records()) {
    EXPECT_EQ(h.store.scoring().popularity(r.id),
              r.parse_failed() ? 0 : h.store.PopularityOf(r.fingerprint))
        << "id " << r.id;
    if (r.id > 200) break;  // spot-check a prefix; the full log is uniform
  }
}

}  // namespace
}  // namespace cqms::metaquery
