#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace cqms {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("query 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: query 42");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    CQMS_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = 7;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);

  Result<int> bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("gone");
    return 5;
  };
  auto consumer = [&](bool fail) -> Result<int> {
    CQMS_ASSIGN_OR_RETURN(int v, producer(fail));
    return v * 2;
  };
  EXPECT_EQ(consumer(false).value(), 10);
  EXPECT_EQ(consumer(true).status().code(), StatusCode::kNotFound);
}

TEST(StringUtilTest, CaseConversions) {
  EXPECT_EQ(ToLower("WaterTemp"), "watertemp");
  EXPECT_EQ(ToUpper("select"), "SELECT");
}

TEST(StringUtilTest, TrimAndSplitAndJoin) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, CaseInsensitiveSearches) {
  EXPECT_TRUE(StartsWithIgnoreCase("SELECT * FROM t", "select"));
  EXPECT_FALSE(StartsWithIgnoreCase("SEL", "select"));
  EXPECT_TRUE(ContainsIgnoreCase("WHERE Temp < 18", "temp"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(EqualsIgnoreCase("WaterTemp", "watertemp"));
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("watertemp", "watertmp"), 1u);
  EXPECT_EQ(EditDistance("", "xyz"), 3u);
}

TEST(StringUtilTest, ExtractWords) {
  auto words = ExtractWords("SELECT T.temp, 'Lake Washington' FROM WaterTemp!");
  std::vector<std::string> expected = {"select", "t",    "temp",
                                       "lake",   "washington", "from",
                                       "watertemp"};
  EXPECT_EQ(words, expected);
}

TEST(StringUtilTest, SqlEscapeDoublesQuotes) {
  EXPECT_EQ(SqlEscape("O'Brien"), "O''Brien");
  EXPECT_EQ(SqlEscape("plain"), "plain");
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(18.0), "18");
  EXPECT_EQ(FormatDouble(3.14), "3.14");
}

TEST(HashTest, Fnv1aIsDeterministicAndSpreads) {
  EXPECT_EQ(Fnv1a64("query"), Fnv1a64("query"));
  EXPECT_NE(Fnv1a64("query"), Fnv1a64("Query"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64(" "));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(ClockTest, SimulatedClockAdvances) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.Set(10);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(ClockTest, WallTimerMeasuresNonNegative) {
  WallTimer timer;
  volatile int sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i;
  EXPECT_GE(timer.ElapsedMicros(), 0);
}

}  // namespace
}  // namespace cqms
