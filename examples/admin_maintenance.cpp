// Administrative scenario: schema evolution and data drift (§4.4).
//
// After a month of logged exploration the lab renames tables and columns,
// drops a column, and bulk-loads new data. The Query Maintenance
// component flags invalidated queries, repairs the rename victims
// automatically, refreshes stale statistics under a re-execution budget,
// recomputes quality, and the whole log round-trips through a snapshot.

#include <cstdio>

#include "core/cqms.h"
#include "storage/persistence.h"
#include "workload/synthetic.h"

int main() {
  cqms::SimulatedClock clock(0);
  cqms::CqmsOptions options;
  options.clock = &clock;
  options.maintenance.drift_threshold = 0.2;
  options.maintenance.reexecute_budget = 25;
  cqms::Cqms system(options);
  cqms::Status s = cqms::workload::PopulateLakeDatabase(system.database(), 400);
  if (!s.ok()) return 1;

  // A month of activity.
  cqms::workload::WorkloadOptions workload;
  workload.num_sessions = 40;
  workload.typo_rate = 0.0;  // clean log; we want schema breakage only
  cqms::workload::RegisterUsers(system.store(), workload);
  cqms::profiler::QueryProfiler profiler(system.database(), system.store(),
                                         &clock);
  (void)cqms::workload::GenerateLog(&profiler, system.store(), &clock, workload);
  std::printf("log contains %zu queries\n", system.store()->size());

  // Baseline maintenance pass (snapshots stats, validates everything).
  auto baseline = system.RunMaintenance();
  std::printf("baseline: %zu checked, %zu broken\n", baseline.queries_checked,
              baseline.flagged_broken);

  // --- schema evolution ------------------------------------------------
  clock.Advance(cqms::kMicrosPerMinute);
  (void)system.database()->RenameTable("WaterTemp", "LakeTemperature");
  (void)system.database()->RenameColumn("WaterSalinity", "salinity", "psu");
  (void)system.database()->DropColumn("Species", "count_obs");

  auto evolution = system.RunMaintenance();
  std::printf(
      "\nafter rename/rename/drop: %zu checked, %zu repaired, %zu broken\n",
      evolution.queries_checked, evolution.repaired, evolution.flagged_broken);
  for (auto id : evolution.repaired_ids) {
    const auto* r = system.store()->Get(id);
    std::printf("  repaired q%lld: %s\n", static_cast<long long>(id),
                r->text.substr(0, 70).c_str());
    if (evolution.repaired_ids.size() > 3 && id == evolution.repaired_ids[2]) {
      std::printf("  ... (%zu more)\n", evolution.repaired_ids.size() - 3);
      break;
    }
  }
  for (auto id : evolution.broken_ids) {
    std::printf("  irreparable q%lld (drops change semantics)\n",
                static_cast<long long>(id));
    if (evolution.broken_ids.size() > 3 && id == evolution.broken_ids[2]) {
      std::printf("  ... (%zu more)\n", evolution.broken_ids.size() - 3);
      break;
    }
  }

  // --- data drift --------------------------------------------------------
  for (int i = 0; i < 3000; ++i) {
    (void)system.database()->Insert(
        "LakeTemperature",
        {cqms::db::Value::String("Union"), cqms::db::Value::Int(1),
         cqms::db::Value::Int(1), cqms::db::Value::Double(38.0)});
  }
  auto drift = system.RunMaintenance();
  std::printf(
      "\nafter bulk load: %zu tables drifted, %zu stats flagged stale, "
      "%zu refreshed (budget %zu)\n",
      drift.tables_drifted, drift.stats_flagged_stale, drift.stats_refreshed,
      options.maintenance.reexecute_budget);

  // --- quality & persistence ---------------------------------------------
  double best = 0;
  cqms::storage::QueryId best_id = cqms::storage::kInvalidQueryId;
  for (const auto& record : system.store()->records()) {
    if (record.quality > best) {
      best = record.quality;
      best_id = record.id;
    }
  }
  if (best_id != cqms::storage::kInvalidQueryId) {
    std::printf("\nhighest-quality query (%.2f):\n%s", best,
                system.ShowQuery(best_id).c_str());
  }

  std::string path = "/tmp/cqms_admin_example.snapshot";
  if (system.SaveLog(path).ok()) {
    cqms::storage::QueryStore restored;
    if (cqms::storage::LoadSnapshot(&restored, path).ok()) {
      std::printf("\nsnapshot round-trip: %zu queries restored from %s\n",
                  restored.size(), path.c_str());
    }
  }
  return 0;
}
