// Scientific-exploration scenario: the paper's motivating setting.
//
// A simulated lab of scientists explores a shared limnology database.
// The CQMS profiles every query; afterwards we mine the log, visualize a
// query session exactly like the paper's Figure 2, inspect clusters, and
// auto-generate the dataset tutorial of Section 2.3.

#include <cstdio>

#include "client/browse.h"
#include "client/session_view.h"
#include "core/cqms.h"
#include "workload/synthetic.h"

int main() {
  cqms::SimulatedClock clock(0);
  cqms::CqmsOptions options;
  options.clock = &clock;
  cqms::Cqms system(options);

  // Populate the shared scientific database.
  cqms::Status s = cqms::workload::PopulateLakeDatabase(system.database(), 500);
  if (!s.ok()) {
    std::fprintf(stderr, "populate failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Simulate a month of lab activity: 60 exploration sessions by 8
  // scientists in 3 research groups, including typos and annotations.
  cqms::workload::WorkloadOptions workload;
  workload.num_sessions = 60;
  workload.typo_rate = 0.06;
  workload.annotation_rate = 0.10;
  cqms::workload::RegisterUsers(system.store(), workload);
  cqms::profiler::QueryProfiler profiler(system.database(), system.store(),
                                         &clock);
  cqms::workload::GroundTruth truth =
      cqms::workload::GenerateLog(&profiler, system.store(), &clock, workload);
  std::printf("generated %zu queries (%zu typos) in %zu sessions\n",
              truth.queries_generated, truth.typos_generated,
              truth.sessions.size());

  // Background mining: sessions, clusters, rules, popularity.
  system.RunMining();
  const auto& miner = system.miner();
  std::printf("mined %zu sessions, %zu clusters, %zu association rules\n\n",
              miner.sessions().size(), miner.clustering().num_clusters(),
              miner.rules().size());

  // Figure 2: visualize the longest session.
  const cqms::miner::Session* longest = nullptr;
  for (const auto& session : miner.sessions()) {
    if (longest == nullptr || session.queries.size() > longest->queries.size()) {
      longest = &session;
    }
  }
  if (longest != nullptr) {
    std::printf("--- longest session (Figure 2 view) ---\n%s\n",
                cqms::client::RenderSessionAscii(*system.store(), *longest)
                    .c_str());
    std::printf("--- same session as Graphviz DOT ---\n%s\n",
                cqms::client::RenderSessionDot(*system.store(), *longest)
                    .c_str());
  }

  // Cluster view: the deduplicated shape of the log.
  std::printf("--- clusters ---\n%s\n",
              cqms::client::RenderClusters(*system.store(), miner.clustering(),
                                           cqms::workload::UserName(0))
                  .c_str());

  // The auto-generated tutorial a new lab member would read.
  std::printf("--- auto-generated tutorial ---\n%s", system.Tutorial().c_str());
  return 0;
}
