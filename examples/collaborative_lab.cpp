// Collaborative assistance scenario: Figure 3 of the paper, headless.
//
// Alice's lab mates have explored the salinity/temperature correlation
// before. As Alice types a new query, the CQMS completes her FROM clause
// context-sensitively, spell-checks identifiers, relaxes her empty-result
// predicate, and recommends annotated queries from her group — while a
// stranger outside the group sees none of it.

#include <cstdio>

#include "core/cqms.h"
#include "sql/parser.h"
#include "storage/record_builder.h"
#include "workload/synthetic.h"

namespace {

void PrintAssist(const cqms::assist::AssistResponse& response) {
  std::printf("  completions:\n");
  for (const auto& c : response.completions) {
    std::printf("    %-24s (%.2f, %s)\n", c.text.c_str(), c.score,
                c.reason.c_str());
  }
  std::printf("  corrections:\n");
  for (const auto& c : response.corrections) {
    std::printf("    %s -> %s (%.2f)\n", c.original.c_str(),
                c.replacement.c_str(), c.confidence);
  }
  std::printf("  similar queries:\n");
  for (const auto& r : response.recommendations) {
    std::printf("    [%3.0f%%] %-60s | %s%s%s\n", r.score * 100,
                r.text.substr(0, 60).c_str(), r.diff.c_str(),
                r.annotation.empty() ? "" : " | note: ",
                r.annotation.c_str());
  }
}

}  // namespace

int main() {
  cqms::SimulatedClock clock(0);
  cqms::CqmsOptions options;
  options.clock = &clock;
  cqms::Cqms system(options);
  cqms::Status s = cqms::workload::PopulateLakeDatabase(system.database(), 300);
  if (!s.ok()) return 1;

  system.RegisterUser("alice", {"limnology"});
  system.RegisterUser("bob", {"limnology"});
  system.RegisterUser("carol", {"limnology"});
  system.RegisterUser("eve", {"astronomy"});

  // The lab's history: correlation probes (bob), city lookups (carol).
  for (int i = 0; i < 12; ++i) {
    auto e = system.Execute(
        "bob",
        "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
        "WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y AND T.temp < " +
            std::to_string(12 + i));
    if (i == 5) {
      (void)system.Annotate(e.query_id, "bob",
                            "the 17-degree cut matched the 2008 survey");
    }
    clock.Advance(30 * cqms::kMicrosPerSecond);
  }
  for (int i = 0; i < 20; ++i) {
    (void)system.Execute("carol", "SELECT city FROM CityLocations WHERE pop > " +
                                      std::to_string((i + 1) * 20000));
    clock.Advance(30 * cqms::kMicrosPerSecond);
  }
  system.RunMining();

  // 1. Context-aware completion: WaterTemp outranks the globally more
  //    popular CityLocations once WaterSalinity is in the FROM clause.
  std::printf("alice types: SELECT * FROM WaterSalinity, \n");
  PrintAssist(system.Assist("alice", "SELECT * FROM WaterSalinity, "));

  // 2. Spell check.
  std::printf("\nalice types: SELECT temp FROM WatrTemp\n");
  PrintAssist(system.Assist("alice", "SELECT temp FROM WatrTemp"));

  // 3. Empty-result predicate relaxation.
  auto broken = system.Execute(
      "alice",
      "SELECT T.temp FROM WaterSalinity S, WaterTemp T WHERE "
      "S.loc_x = T.loc_x AND T.temp < -40");
  std::printf("\nalice's probe returned %zu rows; the CQMS suggests:\n",
              broken.result.rows.size());
  auto parsed = cqms::sql::Parse(
      "SELECT T.temp FROM WaterSalinity S, WaterTemp T WHERE "
      "S.loc_x = T.loc_x AND T.temp < -40");
  cqms::assist::CorrectionEngine corrections(system.store(), system.database());
  for (const auto& c :
       corrections.SuggestPredicateRelaxations("alice", **parsed)) {
    std::printf("  %s  ->  %s (%.0f%% of logged uses)\n", c.original.c_str(),
                c.replacement.c_str(), c.confidence * 100);
  }

  // 4. Access control: eve (different group) gets no recommendations.
  auto eve_view = system.Assist("eve",
                                "SELECT T.temp FROM WaterSalinity S, WaterTemp T "
                                "WHERE S.loc_x = T.loc_x");
  std::printf("\neve (astronomy group) sees %zu recommendations\n",
              eve_view.recommendations.size());

  // 5. One combined meta-query (§2.3): "lab queries mentioning salinity
  //    that touch WaterTemp, most similar to what alice is writing,
  //    popularity-boosted" — a single MetaQueryRequest through the
  //    unified planner instead of four separate search calls.
  cqms::storage::QueryRecord probe = cqms::storage::BuildRecordFromText(
      "SELECT T.temp FROM WaterSalinity S, WaterTemp T WHERE "
      "S.loc_x = T.loc_x AND T.temp < 15",
      "alice", 0, cqms::storage::SignatureMode::kTransient);
  cqms::metaquery::MetaQueryRequest request;
  cqms::metaquery::FeatureQuery feature;
  feature.UsesTable("WaterTemp");
  cqms::metaquery::RankingOptions ranking;
  ranking.w_popularity = 0.3;
  request.WithKeywords("salinity")
      .WithFeature(feature)
      .SimilarTo(probe)
      .RankedBy(ranking)
      .Limit(3);
  auto combined = system.Search("alice", request);
  std::printf("\ncombined meta-query (%zu candidates considered):\n",
              combined.candidates_considered);
  for (const auto& m : combined.matches) {
    std::printf("  [%.2f] q%lld: %s\n", m.score,
                static_cast<long long>(m.id),
                system.store()->Get(m.id)->text.substr(0, 60).c_str());
  }
  return 0;
}
