// Quickstart: the smallest end-to-end tour of the CQMS public API.
//
// Creates a database, executes queries through the profiling path,
// searches the query log, and asks for assistance — the four interaction
// modes of the paper in ~80 lines.

#include <cstdio>
#include <string>

#include "core/cqms.h"

using cqms::db::ColumnDef;
using cqms::db::TableSchema;
using cqms::db::Value;
using cqms::db::ValueType;

int main() {
  cqms::Cqms system;

  // --- set up a tiny database (normally your DBMS already has data) ----
  cqms::Status s = system.database()->CreateTable(
      TableSchema("WaterTemp", {{"lake", ValueType::kString},
                                {"temp", ValueType::kDouble}}));
  if (!s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    return 1;
  }
  for (const auto& [lake, temp] :
       std::vector<std::pair<std::string, double>>{
           {"Washington", 15.5}, {"Union", 19.5}, {"Sammamish", 12.0}}) {
    (void)system.database()->Insert(
        "WaterTemp", {Value::String(lake), Value::Double(temp)});
  }
  system.RegisterUser("alice", {"limnology"});

  // --- Traditional mode: execute; the profiler logs behind the scenes --
  auto exec = system.Execute("alice",
                             "SELECT lake, temp FROM WaterTemp WHERE temp < 18");
  std::printf("query returned %zu rows (logged as q%lld)\n",
              exec.result.rows.size(),
              static_cast<long long>(exec.query_id));
  for (const auto& row : exec.result.rows) {
    std::printf("  %s\n", cqms::db::RowToString(row).c_str());
  }

  // Annotate it for your lab mates.
  (void)system.Annotate(exec.query_id, "alice", "lakes cold enough for trout");

  // Run a couple more so the log has something to mine.
  (void)system.Execute("alice", "SELECT lake FROM WaterTemp WHERE temp < 13");
  (void)system.Execute("alice", "SELECT AVG(temp) FROM WaterTemp");
  system.RunMining();

  // --- Search & Browse mode: find queries, view sessions ---------------
  auto hits = system.metaquery().Keyword("alice", "temp");
  std::printf("\nkeyword search 'temp' found %zu queries\n", hits.size());
  std::printf("%s", system.BrowseLog("alice").c_str());

  // --- Assisted mode: completions and similar queries ------------------
  auto assist = system.Assist("alice", "SELECT * FROM WaterTemp WHERE temp < 20");
  std::printf("\nsimilar queries for your draft:\n");
  for (const auto& rec : assist.recommendations) {
    std::printf("  [%.0f%%] %s   | diff: %s\n", rec.score * 100,
                rec.text.c_str(), rec.diff.c_str());
  }

  // --- Administrative mode: make the annotated query public ------------
  (void)system.SetVisibility("alice", exec.query_id,
                             cqms::storage::Visibility::kPublic);
  auto report = system.RunMaintenance();
  std::printf("\nmaintenance: %zu checked, %zu broken, quality updated on %zu\n",
              report.queries_checked, report.flagged_broken,
              report.quality_updated);
  return 0;
}
