// E8 — Adaptive output summarization & statistics refresh (paper §4.1,
// §4.4).
//
// (a) The summary-budget policy over an (execution time x result size)
// grid, reporting the stored-rows counter: slow+small stores everything,
// fast+huge stores a capped sample — the paper's two canonical cases.
// (b) Statistics refresh under data drift with a re-execution budget:
// detection cost (histogram snapshot + distance) vs the naive rerun-all.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "db/stats.h"
#include "maintain/query_maintenance.h"
#include "profiler/output_summarizer.h"

namespace cqms {
namespace {

db::QueryResult MakeResult(size_t rows) {
  db::QueryResult r;
  r.column_names = {"a", "b"};
  r.rows.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    r.rows.push_back({db::Value::Int(static_cast<int64_t>(i)),
                      db::Value::Double(static_cast<double>(i) * 0.5)});
  }
  return r;
}

void BM_SummarizePolicyGrid(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const Micros exec_micros = state.range(1) * 1000;  // ms -> us
  db::QueryResult result = MakeResult(rows);
  storage::OutputSummary summary;
  for (auto _ : state) {
    summary = profiler::SummarizeOutput(result, exec_micros);
    benchmark::DoNotOptimize(summary);
  }
  state.counters["stored_rows"] = static_cast<double>(summary.sample_rows.size());
  state.counters["complete"] = summary.complete ? 1 : 0;
}
BENCHMARK(BM_SummarizePolicyGrid)
    // The paper's two cases plus the grid between them.
    ->Args({10, 7'200'000})   // 2 hours, 10 rows -> store all
    ->Args({200000, 2'000})   // 2 seconds, 200k rows -> tiny sample
    ->Args({10, 2})           // fast & small -> store all (fits min budget)
    ->Args({1000, 100})
    ->Args({1000, 10'000})
    ->Args({100000, 60'000})
    ->ArgNames({"rows", "exec_ms"});

void BM_TableStatsComputation(benchmark::State& state) {
  SimulatedClock clock(0);
  db::Database database(&clock);
  Status s =
      workload::PopulateLakeDatabase(&database, static_cast<size_t>(state.range(0)));
  (void)s;
  const db::Table* table = database.GetTable("WaterTemp");
  for (auto _ : state) {
    auto stats = db::ComputeTableStats(*table);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(table->num_rows()));
}
BENCHMARK(BM_TableStatsComputation)
    ->Arg(1000)->Arg(10000)->Arg(50000)->ArgNames({"rows"});

void BM_HistogramDistance(benchmark::State& state) {
  std::vector<db::Value> a, b;
  for (int i = 0; i < 10000; ++i) {
    a.push_back(db::Value::Double(i * 0.01));
    b.push_back(db::Value::Double(50 + i * 0.01));
  }
  db::Histogram ha = db::Histogram::Build(a);
  db::Histogram hb = db::Histogram::Build(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ha.Distance(hb));
  }
}
BENCHMARK(BM_HistogramDistance);

/// Drift-triggered refresh vs the naive strategy the paper rejects
/// ("rerun all queries periodically [is] overly expensive"): we compare
/// one maintenance cycle (detect + budgeted re-execution) against
/// re-running every logged query.
void BM_BudgetedStatsRefresh(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedClock clock(0);
    db::Database database(&clock);
    Status s = workload::PopulateLakeDatabase(&database, 200);
    storage::QueryStore store;
    profiler::QueryProfiler profiler(&database, &store, &clock);
    workload::WorkloadOptions wopts;
    wopts.num_sessions = 100;
    wopts.typo_rate = 0;
    workload::GenerateLog(&profiler, &store, &clock, wopts);
    maintain::MaintenanceOptions mopts;
    mopts.reexecute_budget = static_cast<size_t>(state.range(0));
    mopts.drift_threshold = 0.15;
    maintain::QueryMaintenance maintenance(&database, &store, &clock, mopts);
    maintenance.RefreshStatistics();  // baseline snapshot
    for (int i = 0; i < 2000; ++i) {
      s = database.Insert("WaterTemp",
                          {db::Value::String("Union"), db::Value::Int(1),
                           db::Value::Int(1), db::Value::Double(70.0)});
    }
    state.ResumeTiming();
    auto report = maintenance.RefreshStatistics();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_BudgetedStatsRefresh)
    ->Arg(10)->Arg(50)->Arg(1000000)  // budget; the last ~= rerun-all
    ->ArgNames({"budget"});

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
