// E4 — Session identification (paper Figure 2 / §2.2).
//
// Measures (a) sessionizer throughput over growing logs and (b) accuracy
// against the workload generator's ground truth, reported as pairwise
// precision/recall/F1 counters while sweeping the temporal-gap
// threshold. Expected shape: near-linear throughput; F1 peaks when the
// gap threshold sits between the generator's think time (<=90 s) and its
// session gap (>=30 min), and degrades on both sides — the crossover the
// paper's tunable-parameter discussion (§2.4) anticipates.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "miner/sessionizer.h"

namespace cqms {
namespace {

struct PairwiseScores {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};

/// Pairwise clustering metric: over all pairs of queries of the same
/// user, a pair is positive when both sides place it in one session.
PairwiseScores ScoreSessions(const storage::QueryStore& store,
                             const workload::GroundTruth& truth) {
  // predicted[i] = session id assigned by the miner; actual from truth.
  uint64_t tp = 0, fp = 0, fn = 0;
  std::map<std::string, std::vector<storage::QueryId>> per_user;
  for (const auto& r : store.records()) per_user[r.user].push_back(r.id);
  for (const auto& [user, ids] : per_user) {
    for (size_t i = 0; i < ids.size(); ++i) {
      auto ti = truth.session_of.find(ids[i]);
      if (ti == truth.session_of.end()) continue;
      for (size_t j = i + 1; j < ids.size(); ++j) {
        auto tj = truth.session_of.find(ids[j]);
        if (tj == truth.session_of.end()) continue;
        bool same_truth = ti->second == tj->second;
        bool same_pred = store.Get(ids[i])->session_id ==
                         store.Get(ids[j])->session_id;
        if (same_pred && same_truth) ++tp;
        else if (same_pred && !same_truth) ++fp;
        else if (!same_pred && same_truth) ++fn;
      }
    }
  }
  PairwiseScores s;
  s.precision = tp + fp == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
  s.recall = tp + fn == 0 ? 1.0 : static_cast<double>(tp) / (tp + fn);
  s.f1 = s.precision + s.recall == 0
             ? 0
             : 2 * s.precision * s.recall / (s.precision + s.recall);
  return s;
}

void BM_SessionizerThroughput(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto sessions = miner::IdentifySessions(&f.store);
    benchmark::DoNotOptimize(sessions);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.store.size()));
}
BENCHMARK(BM_SessionizerThroughput)
    ->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

void BM_SessionizerAccuracyByGap(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(2000);
  miner::SessionizerOptions options;
  options.max_gap = static_cast<Micros>(state.range(0)) * kMicrosPerSecond;
  PairwiseScores scores;
  for (auto _ : state) {
    auto sessions = miner::IdentifySessions(&f.store, options);
    benchmark::DoNotOptimize(sessions);
    scores = ScoreSessions(f.store, f.truth);
  }
  state.counters["precision"] = scores.precision;
  state.counters["recall"] = scores.recall;
  state.counters["f1"] = scores.f1;
}
BENCHMARK(BM_SessionizerAccuracyByGap)
    ->Arg(10)      // below think time: over-splits, low recall
    ->Arg(120)     // just above think time: the sweet spot
    ->Arg(600)     // the default (10 min): still below session gap
    ->Arg(7200)    // above session gap: merges sessions, low precision
    ->ArgNames({"gap_s"});

void BM_SessionizerAccuracyByDistance(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(2000);
  miner::SessionizerOptions options;
  options.max_distance = static_cast<double>(state.range(0)) / 100.0;
  PairwiseScores scores;
  for (auto _ : state) {
    auto sessions = miner::IdentifySessions(&f.store, options);
    benchmark::DoNotOptimize(sessions);
    scores = ScoreSessions(f.store, f.truth);
  }
  state.counters["precision"] = scores.precision;
  state.counters["recall"] = scores.recall;
  state.counters["f1"] = scores.f1;
}
BENCHMARK(BM_SessionizerAccuracyByDistance)
    ->Arg(20)->Arg(50)->Arg(75)->Arg(100)->ArgNames({"maxdist_pct"});

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
