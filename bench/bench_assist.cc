// E5 — Assisted interaction quality & latency (paper Figure 3 / §2.3).
//
// Two questions: (a) are suggestions interactive (the paper: the CQMS
// "must provide hints and recommendations interactively, as a user types
// a new query")? (b) is context-aware completion better than plain
// popularity? We measure completion/recommendation latency vs log size,
// and completion hit-rate@k on held-out next-table prediction — with and
// without association-rule context (the ablation DESIGN.md calls out).
// Expected shape: sub-millisecond completions; context-aware hit-rate
// strictly above the popularity baseline.

#include <set>

#include <benchmark/benchmark.h>

#include "assist/assisted_composer.h"
#include "bench_util.h"

namespace cqms {
namespace {

void BM_CompletionLatency(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  miner::QueryMiner& miner = bench::GetMinedFixture(static_cast<size_t>(state.range(0)));
  assist::CompletionEngine engine(&f.store, &miner, &f.database.catalog());
  for (auto _ : state) {
    auto suggestions =
        engine.Complete("user0", "SELECT * FROM WaterSalinity, ");
    benchmark::DoNotOptimize(suggestions);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_CompletionLatency)
    ->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

void BM_RecommendationLatency(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  miner::QueryMiner& miner = bench::GetMinedFixture(static_cast<size_t>(state.range(0)));
  assist::RecommendationEngine engine(&f.store, &miner);
  for (auto _ : state) {
    auto recs = engine.Recommend(
        "user0",
        "SELECT T.temp FROM WaterSalinity S, WaterTemp T WHERE "
        "S.loc_x = T.loc_x AND T.temp < 15",
        5);
    benchmark::DoNotOptimize(recs);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_RecommendationLatency)
    ->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

void BM_CorrectionLatency(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  assist::CorrectionEngine engine(&f.store, &f.database);
  for (auto _ : state) {
    auto corrections =
        engine.CorrectIdentifiers("SELECT tmp FROM WatrTemp WHERE tmp < 18");
    benchmark::DoNotOptimize(corrections);
  }
}
BENCHMARK(BM_CorrectionLatency);

/// Hit-rate@k for next-table prediction: for every multi-table query in
/// the log, hide one table, present the rest as the typed FROM clause
/// and check whether the hidden table is suggested among the top k.
/// `use_context` toggles the association-rule scores (the ablation).
double CompletionHitRate(bench::LogFixture& f, miner::QueryMiner& miner,
                         size_t k, bool use_context) {
  // Baseline keeps popularity ranking but disables association-rule
  // context — isolating exactly the paper's §2.3 claim.
  assist::CompletionEngine engine(&f.store, &miner, &f.database.catalog());
  engine.set_use_association_rules(use_context);
  size_t trials = 0, hits = 0;
  for (const auto& record : f.store.records()) {
    if (record.parse_failed() || record.components.tables.size() < 2) continue;
    if (trials >= 300) break;  // cap work per measurement
    const std::string& hidden = record.components.tables.back();
    std::string partial = "SELECT * FROM ";
    for (size_t i = 0; i + 1 < record.components.tables.size(); ++i) {
      partial += record.components.tables[i] + ", ";
    }
    auto suggestions = engine.Complete(record.user, partial, k);
    ++trials;
    for (const auto& s : suggestions) {
      if (s.kind == assist::CompletionSuggestion::Kind::kTable &&
          s.text == hidden) {
        ++hits;
        break;
      }
    }
  }
  return trials == 0 ? 0 : static_cast<double>(hits) / trials;
}

void BM_CompletionHitRate(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  miner::QueryMiner& miner = bench::GetMinedFixture(5000);
  const size_t k = static_cast<size_t>(state.range(0));
  const bool use_context = state.range(1) != 0;
  double hit_rate = 0;
  for (auto _ : state) {
    hit_rate = CompletionHitRate(f, miner, k, use_context);
    benchmark::DoNotOptimize(hit_rate);
  }
  state.counters["hit_rate"] = hit_rate;
}
BENCHMARK(BM_CompletionHitRate)
    ->Args({1, 0})->Args({1, 1})
    ->Args({3, 0})->Args({3, 1})
    ->ArgNames({"k", "context"});

/// Recommendation usefulness: probe with a session's *first* query and
/// check whether the top-5 recommendations anticipate where the session
/// went — i.e. share a structure skeleton with a *later* query of the
/// same session while not being a verbatim duplicate of the probe.
/// This is the paper's "the system guides them from their rough query
/// attempts toward similar popular queries" (§2.3), measurable because
/// the workload generator labels sessions.
void BM_RecommendationGuidanceRecall(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  miner::QueryMiner& miner = bench::GetMinedFixture(5000);
  assist::RecommendationEngine engine(&f.store, &miner);
  double recall = 0;
  for (auto _ : state) {
    size_t trials = 0, hits = 0;
    for (const auto& session : f.truth.sessions) {
      if (session.size() < 3) continue;
      if (trials >= 50) break;
      const storage::QueryRecord* first = f.store.Get(session.front());
      if (first == nullptr || first->parse_failed()) continue;
      // Skeletons the session later evolved into (excluding the probe's).
      std::set<uint64_t> later_skeletons;
      for (size_t i = 1; i < session.size(); ++i) {
        const storage::QueryRecord* r = f.store.Get(session[i]);
        if (r != nullptr && !r->parse_failed() &&
            r->skeleton_fingerprint != first->skeleton_fingerprint) {
          later_skeletons.insert(r->skeleton_fingerprint);
        }
      }
      if (later_skeletons.empty()) continue;
      // Fetch generously, then look at the first 5 *structurally
      // distinct* recommendations: same-skeleton constant variants of
      // the probe are shown as one collapsed row in a real client.
      auto recs = engine.Recommend(first->user, first->text, 20);
      if (!recs.ok()) continue;
      ++trials;
      size_t distinct_seen = 0;
      for (const auto& rec : *recs) {
        const storage::QueryRecord* r = f.store.Get(rec.id);
        if (r == nullptr || r->skeleton_fingerprint == first->skeleton_fingerprint) {
          continue;
        }
        if (++distinct_seen > 5) break;
        if (later_skeletons.count(r->skeleton_fingerprint) > 0) {
          ++hits;
          break;
        }
      }
    }
    recall = trials == 0 ? 0 : static_cast<double>(hits) / trials;
  }
  state.counters["guidance_recall_at_5"] = recall;
}
BENCHMARK(BM_RecommendationGuidanceRecall);

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
