// E7 — Concurrent meta-query serving (docs/concurrency.md).
//
// The acceptance metric for the epoch-published read-view pipeline:
// aggregate meta-query throughput must scale with reader threads while
// a writer continuously mutates and republishes the store. Each
// BM_ConcurrentQps iteration is one full read: pin the published view,
// plan + score a kNN meta-query against it, unpin. A background writer
// (started per run via Setup/Teardown, so it is excluded from the
// measured threads) applies a mutation and republish as fast as it can
// the whole time. Compare items_per_second between threads:1 and
// threads:8 — on a multi-core host the 8-reader aggregate should be
// >= 5x the single-reader one; on a single hardware thread the runs
// only interleave and no scaling is measurable.
//
// BM_PinView / BM_PublishView isolate the two pipeline primitives: the
// reader's pin (a few atomic ops, O(1)) and the writer's
// copy-on-publish snapshot (O(log size)).

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench_util.h"
#include "metaquery/meta_query_planner.h"
#include "metaquery/meta_query_request.h"
#include "storage/record_builder.h"

namespace cqms {
namespace {

const char* kViewer = "user0";

/// The shared store the concurrent benchmark runs against, plus its
/// background writer. Built once (leaked, like the bench fixtures) and
/// reset around every benchmark run by Setup/Teardown.
struct ConcurrentFixture {
  explicit ConcurrentFixture(size_t log_size)
      : base(new bench::LogFixture(log_size)) {
    storage::ViewOptions options;
    options.publish_every = 1;  // worst-case publication churn
    base->store.EnableViews(options);
    probe = storage::BuildRecordFromText(
        "SELECT T.temp FROM WaterTemp T WHERE T.temp < 18", kViewer, 0,
        storage::SignatureMode::kTransient);
  }

  void StartWriter() {
    stop.store(false, std::memory_order_release);
    writer = std::thread([this]() {
      storage::QueryStore& store = base->store;
      const size_t n = store.size();
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // Quality flips always differ from the stored value, so every
        // call is a real mutation + republish; cycling ids keeps the
        // log size constant for the whole run.
        storage::QueryId id = static_cast<storage::QueryId>(i % n);
        Status s = store.SetQuality(id, (i & 1) != 0 ? 0.7 : 0.3);
        (void)s;
        ++i;
        std::this_thread::yield();
      }
      writes = i;
    });
  }

  void StopWriter() {
    stop.store(true, std::memory_order_release);
    if (writer.joinable()) writer.join();
  }

  bench::LogFixture* base;
  storage::QueryRecord probe;
  std::thread writer;
  std::atomic<bool> stop{false};
  uint64_t writes = 0;
};

ConcurrentFixture& GetConcurrentFixture() {
  static ConcurrentFixture* fixture = new ConcurrentFixture(5000);
  return *fixture;
}

void SetupConcurrentQps(const benchmark::State&) {
  GetConcurrentFixture().StartWriter();
}

void TeardownConcurrentQps(const benchmark::State&) {
  GetConcurrentFixture().StopWriter();
}

/// N reader threads, each running full kNN meta-queries against pinned
/// views, while the Setup-started writer mutates + republishes
/// continuously. items_per_second is the aggregate read throughput.
void BM_ConcurrentQps(benchmark::State& state) {
  ConcurrentFixture& f = GetConcurrentFixture();
  storage::QueryStore& store = f.base->store;
  metaquery::MetaQueryRequest request;
  request.SimilarTo(f.probe).Limit(10);
  for (auto _ : state) {
    storage::PinnedView view = store.PinView();
    metaquery::MetaQueryPlanner planner{storage::StoreView(*view)};
    metaquery::MetaQueryResponse resp =
        planner.Execute(request, &view->CacheFor(kViewer));
    benchmark::DoNotOptimize(resp);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["log_size"] = static_cast<double>(store.size());
    state.counters["writer_mutations"] = static_cast<double>(f.writes);
  }
}
BENCHMARK(BM_ConcurrentQps)
    ->Threads(1)
    ->Threads(8)
    ->Setup(SetupConcurrentQps)
    ->Teardown(TeardownConcurrentQps)
    ->UseRealTime();

/// Reader entry cost in isolation: one pin + published-pointer load +
/// unpin, no query executed.
void BM_PinView(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  if (!f.store.views_enabled()) f.store.EnableViews();
  for (auto _ : state) {
    storage::PinnedView view = f.store.PinView();
    benchmark::DoNotOptimize(view.get());
  }
}
BENCHMARK(BM_PinView)->Arg(5000)->ArgNames({"queries"});

/// Writer-side publication cost: one full copy-on-publish snapshot of
/// the scoring columns, posting lists, LSH index and ACL at this log
/// size (the record log itself is shared by pointer).
void BM_PublishView(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  if (!f.store.views_enabled()) f.store.EnableViews();
  for (auto _ : state) {
    f.store.PublishView();
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_PublishView)
    ->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
