// Observability overhead benchmarks: the registry primitives that sit
// on hot paths (counter add, histogram record, resolved-pointer
// lookup), the exposition encoder, and the headline pair — the same
// planner request executed untraced (trace == nullptr, the always-on
// production path) vs traced (ExecTrace attached). The untraced series
// is the one the <3% regression gate compares against the pre-obs
// baseline; the traced delta prices `--explain` / slow-query logging.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "metaquery/meta_query_planner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/record_builder.h"

namespace cqms::bench {
namespace {

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("bench_obs_counter_total");
  for (auto _ : state) {
    counter->Increment();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram* hist =
      obs::MetricsRegistry::Global().GetHistogram("bench_obs_micros");
  uint64_t v = 1;
  for (auto _ : state) {
    hist->Record(v);
    v = (v * 2862933555777941757ull + 3037000493ull) >> 40;  // cheap lcg
  }
  benchmark::DoNotOptimize(hist->count());
}
BENCHMARK(BM_HistogramRecord);

void BM_RegistryLookup(benchmark::State& state) {
  // The cost a call site pays when it does NOT cache the pointer —
  // motivates the function-local-static idiom the instrumentation uses.
  auto& reg = obs::MetricsRegistry::Global();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.GetCounter("bench_obs_lookup_total"));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_ExpositionText(benchmark::State& state) {
  auto& reg = obs::MetricsRegistry::Global();
  // Ensure a realistic series population (the planner/WAL/miner series
  // plus some bench-local ones).
  for (int i = 0; i < 32; ++i) {
    reg.GetCounter("bench_obs_expo_" + std::to_string(i) + "_total")->Add(i);
  }
  for (auto _ : state) {
    std::string text = reg.ExpositionText();
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_ExpositionText);

/// One keyword+ranked request through the planner; `traced` attaches a
/// fresh ExecTrace per iteration (the per-request cost a client pays for
/// --explain, including the span clock reads).
void RunPlannerSearch(benchmark::State& state, bool traced) {
  LogFixture& fixture = GetFixture(5000);
  metaquery::MetaQueryPlanner planner(&fixture.store);
  uint64_t matches = 0;
  for (auto _ : state) {
    metaquery::MetaQueryRequest req;
    req.WithKeywords("lake temp", true).Limit(10);
    obs::ExecTrace trace;
    if (traced) req.trace = &trace;
    metaquery::MetaQueryResponse resp = planner.Execute("user1", req);
    matches += resp.matches.size();
    benchmark::DoNotOptimize(resp.candidates_considered);
  }
  state.counters["matches"] =
      benchmark::Counter(static_cast<double>(matches),
                         benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations());
}

void BM_SearchUntraced(benchmark::State& state) {
  RunPlannerSearch(state, /*traced=*/false);
}
BENCHMARK(BM_SearchUntraced);

void BM_SearchTraced(benchmark::State& state) {
  RunPlannerSearch(state, /*traced=*/true);
}
BENCHMARK(BM_SearchTraced);

}  // namespace
}  // namespace cqms::bench

BENCHMARK_MAIN();
