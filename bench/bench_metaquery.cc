// E2 — Meta-query latency (paper Figure 1 / §2.2, §4.2).
//
// The paper requires interactive meta-querying. We measure, across log
// sizes: keyword search (inverted index), substring scan, native
// query-by-feature (index intersection), and the same Figure-1 search
// expressed as SQL over the feature relations (self-joining Attributes),
// including the auto-generated variant from a partial query.
// Expected shape: index-backed paths stay sub-millisecond as the log
// grows; the SQL path is slower but still interactive thanks to the
// engine's hash joins.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "metaquery/meta_query_executor.h"
#include "sql/parser.h"

namespace cqms {
namespace {

const char* kViewer = "user0";

void BM_KeywordSearch(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  metaquery::MetaQueryExecutor executor(&f.store);
  size_t found = 0;
  for (auto _ : state) {
    auto ids = executor.Keyword(kViewer, "salinity temp");
    found = ids.size();
    benchmark::DoNotOptimize(ids);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
  state.counters["hits"] = static_cast<double>(found);
}
BENCHMARK(BM_KeywordSearch)->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

void BM_SubstringSearch(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  metaquery::MetaQueryExecutor executor(&f.store);
  for (auto _ : state) {
    auto ids = executor.Substring(kViewer, "loc_x = T.loc_x");
    benchmark::DoNotOptimize(ids);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_SubstringSearch)->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

void BM_FeatureQueryNative(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  metaquery::MetaQueryExecutor executor(&f.store);
  metaquery::FeatureQuery query;
  query.UsesTable("WaterSalinity")
      .UsesAttribute("watertemp", "temp")
      .HasPredicateOn("watertemp", "temp", "<")
      .SucceededOnly();
  size_t found = 0;
  for (auto _ : state) {
    auto ids = executor.ByFeature(kViewer, query);
    found = ids.size();
    benchmark::DoNotOptimize(ids);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
  state.counters["hits"] = static_cast<double>(found);
}
BENCHMARK(BM_FeatureQueryNative)
    ->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

// The Figure-1 meta-query, verbatim SQL over the feature relations.
void BM_FeatureQuerySql(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  metaquery::MetaQueryExecutor executor(&f.store);
  const std::string meta_sql =
      "SELECT Q.qid, Q.qtext FROM Queries Q, Attributes A1, Attributes A2 "
      "WHERE Q.qid = A1.qid AND Q.qid = A2.qid "
      "AND A1.attrname = 'salinity' AND A1.relname = 'watersalinity' "
      "AND A2.attrname = 'temp' AND A2.relname = 'watertemp'";
  size_t found = 0;
  for (auto _ : state) {
    auto result = executor.Sql(kViewer, meta_sql);
    if (result.ok()) found = result->rows.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
  state.counters["hits"] = static_cast<double>(found);
}
BENCHMARK(BM_FeatureQuerySql)
    ->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

// Auto-generation of the meta-query from a partially written query
// (§2.2: "the CQMS could automatically generate these statements").
void BM_GenerateAndRunMetaQuery(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  metaquery::MetaQueryExecutor executor(&f.store);
  auto partial = sql::Parse(
      "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T");
  for (auto _ : state) {
    auto meta_sql = metaquery::GenerateMetaQueryFromPartial(**partial);
    auto result = executor.Sql(kViewer, *meta_sql);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GenerateAndRunMetaQuery);

// Structural (parse-tree) search.
void BM_StructuralSearch(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  metaquery::MetaQueryExecutor executor(&f.store);
  metaquery::StructuralPattern pattern;
  pattern.required_tables = {"watertemp"};
  pattern.required_predicate_skeletons = {"watertemp.temp < ?"};
  pattern.min_joins = 1;
  for (auto _ : state) {
    auto ids = executor.ByStructure(kViewer, pattern);
    benchmark::DoNotOptimize(ids);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_StructuralSearch)
    ->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
