// WAL write-path throughput: the per-mutation overhead durability adds
// to every logged query. The Env seam sits on this path, so these
// benches are the regression gate for it — appends route through
// Env::Default()'s WritableFile exactly as production does.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "storage/fault_env.h"
#include "storage/wal.h"

namespace cqms {
namespace {

/// Framed appends to a real file. fsync=0 is the default deployment
/// mode (flush-per-record: survives a process crash); fsync=1 adds the
/// per-record fsync(2) power-loss mode and is dominated by the disk.
void BM_WalAppend(benchmark::State& state) {
  const bool fsync_each_record = state.range(0) != 0;
  const std::string path = "/tmp/cqms_bench_wal.log";
  std::remove(path.c_str());
  storage::WalWriter writer;
  Status open = writer.Open(path, fsync_each_record);
  if (!open.ok()) {
    state.SkipWithError("WAL open failed");
    return;
  }
  const std::string payload(256, 'q');
  for (auto _ : state) {
    Status s = writer.Append(payload);
    if (!s.ok()) {
      state.SkipWithError("WAL append failed");
      break;
    }
  }
  writer.Close();
  std::remove(path.c_str());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1)->ArgNames({"fsync"});

/// The same appends against the in-memory FaultInjectingEnv — the cost
/// of a crash-loop iteration's logging, and an upper bound on the
/// fault-point bookkeeping (op counting + trace) the env adds.
void BM_WalAppendFaultEnv(benchmark::State& state) {
  storage::FaultInjectingEnv env;
  Status mk = env.CreateDirIfMissing("/db");
  storage::WalWriter writer;
  Status open = writer.Open("/db/wal.log", /*fsync_each_record=*/true, &env);
  if (!mk.ok() || !open.ok()) {
    state.SkipWithError("WAL open failed");
    return;
  }
  const std::string payload(256, 'q');
  for (auto _ : state) {
    Status s = writer.Append(payload);
    if (!s.ok()) {
      state.SkipWithError("WAL append failed");
      break;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_WalAppendFaultEnv);

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
