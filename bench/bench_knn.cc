// E9 — kNN similarity search latency (paper §3 / §4.2).
//
// "Meta-querying must be interactive" — kNN powers recommendations, so
// it runs on every pause in typing. We sweep log size, k, and the
// similarity mix (feature-only vs combined with output overlap).
// Expected shape: latency grows with candidate count (queries sharing a
// table with the probe), stays interactive (well under 100 ms) at tens
// of thousands of logged queries.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"
#include "metaquery/knn.h"
#include "metaquery/meta_query_executor.h"
#include "storage/persistence.h"
#include "storage/record_builder.h"
#include "storage/snapshot_v2.h"

namespace cqms {
namespace {

const char* kProbe =
    "SELECT T.temp FROM WaterSalinity S, WaterTemp T "
    "WHERE S.loc_x = T.loc_x AND T.temp < 20";

void BM_KnnByLogSize(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  storage::QueryRecord probe = storage::BuildRecordFromText(kProbe, "user0", 0);
  // Pin the exhaustive table-index path so this series stays the
  // brute-force baseline that BM_KnnLsh is compared against.
  metaquery::CandidateOptions exhaustive;
  exhaustive.use_lsh = false;
  for (auto _ : state) {
    auto neighbors =
        metaquery::KnnSearch(f.store, "user0", probe, 10, {}, {}, exhaustive);
    benchmark::DoNotOptimize(neighbors);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_KnnByLogSize)->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

// The LSH-pruned counterpart of BM_KnnByLogSize: candidates come from
// the store's MinHash band buckets (default banding) instead of the
// table posting lists. Sub-linear in practice — the gap to
// BM_KnnByLogSize widens with log size.
void BM_KnnLsh(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  storage::QueryRecord probe = storage::BuildRecordFromText(kProbe, "user0", 0);
  metaquery::CandidateOptions lsh;
  lsh.lsh_min_log_size = 0;  // measure the LSH path at every size
  for (auto _ : state) {
    auto neighbors =
        metaquery::KnnSearch(f.store, "user0", probe, 10, {}, {}, lsh);
    benchmark::DoNotOptimize(neighbors);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
  state.counters["lsh_candidates"] =
      static_cast<double>(f.store.LshCandidates(probe.sketch).size());
}
BENCHMARK(BM_KnnLsh)->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

// The pre-columnar scoring loop (KnnSearchReference reads candidates
// through the record deque and the fingerprint hash index) on the same
// LSH candidates — the denominator of the columnar-scoring speedup
// BM_KnnLsh / BM_KnnLshReference tracks per PR.
void BM_KnnLshReference(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  storage::QueryRecord probe = storage::BuildRecordFromText(kProbe, "user0", 0);
  metaquery::CandidateOptions lsh;
  lsh.lsh_min_log_size = 0;
  for (auto _ : state) {
    auto neighbors = metaquery::KnnSearchReference(f.store, "user0", probe, 10,
                                                   {}, {}, lsh);
    benchmark::DoNotOptimize(neighbors);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_KnnLshReference)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->ArgNames({"queries"});

// A combined meta-query — keyword + table condition + kNN ranking in one
// MetaQueryRequest — through the unified planner pipeline. Candidates
// come from the Symbol-keyed posting intersection; scoring streams the
// columnar side-table. This is the workload the unified API exists for:
// "queries mentioning salinity that touch WaterTemp, most similar to
// this probe first".
void BM_MetaQueryCombined(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  metaquery::MetaQueryExecutor executor(&f.store);
  storage::QueryRecord probe = storage::BuildRecordFromText(
      kProbe, "user0", 0, storage::SignatureMode::kTransient);
  metaquery::FeatureQuery feature;
  feature.UsesTable("WaterTemp");
  for (auto _ : state) {
    metaquery::MetaQueryRequest request;
    request.WithKeywords("salinity temp")
        .WithFeature(feature)
        .SimilarTo(probe)
        .Limit(10);
    auto response = executor.Execute("user0", request);
    benchmark::DoNotOptimize(response);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_MetaQueryCombined)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->ArgNames({"queries"});

void BM_KnnByK(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  storage::QueryRecord probe = storage::BuildRecordFromText(kProbe, "user0", 0);
  for (auto _ : state) {
    auto neighbors = metaquery::KnnSearch(f.store, "user0", probe,
                                          static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(neighbors);
  }
}
BENCHMARK(BM_KnnByK)->Arg(1)->Arg(10)->Arg(50)->ArgNames({"k"});

void BM_KnnSimilarityMix(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  storage::QueryRecord probe = storage::BuildRecordFromText(kProbe, "user0", 0);
  metaquery::SimilarityWeights weights;
  if (state.range(0) == 0) {  // feature-only
    weights.feature = 1.0;
    weights.text = 0;
    weights.output = 0;
  } else if (state.range(0) == 1) {  // text-heavy
    weights.feature = 0.2;
    weights.text = 0.8;
    weights.output = 0;
  }  // else default combined mix
  for (auto _ : state) {
    auto neighbors = metaquery::KnnSearch(f.store, "user0", probe, 10, weights);
    benchmark::DoNotOptimize(neighbors);
  }
}
BENCHMARK(BM_KnnSimilarityMix)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"mix"});

// Cold-start restore cost per snapshot format. format=1 is the v1 text
// reader, which re-profiles every record from its text (parse,
// canonicalize, collect components, tokenize, intern, sketch); format=2
// is the binary restore, which bulk-loads the precomputed state from
// one sequential read. Their ratio at 20k queries is the PR-4 headline
// speedup.
void BM_SnapshotLoad(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  const bool v2 = state.range(1) == 2;
  std::string path = "/tmp/cqms_bench_snapshot_" +
                     std::to_string(state.range(0)) + (v2 ? ".v2" : ".v1");
  Status saved = v2 ? storage::SaveSnapshotV2(f.store, path)
                    : storage::SaveSnapshot(f.store, path);
  if (!saved.ok()) {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    state.SkipWithError("snapshot save failed");
    return;
  }
  for (auto _ : state) {
    uint64_t words_before = ExtractWordsCallCount();
    storage::QueryStore loaded;
    Status s = storage::LoadSnapshot(&loaded, path);
    if (!s.ok()) {
      std::remove(path.c_str());
      state.SkipWithError("snapshot load failed");
      return;
    }
    // The binary restore promises zero re-tokenization at any log size;
    // enforce it here at 20k where the durability tests run smaller.
    if (v2 && ExtractWordsCallCount() != words_before) {
      std::remove(path.c_str());
      state.SkipWithError("v2 load called the tokenizer");
      return;
    }
    benchmark::DoNotOptimize(loaded.size());
  }
  std::remove(path.c_str());
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_SnapshotLoad)
    ->Args({1000, 1})
    ->Args({1000, 2})
    ->Args({5000, 1})
    ->Args({5000, 2})
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->ArgNames({"queries", "format"});

// Pairwise similarity micro-costs, the kNN inner loop.
void BM_PairwiseSimilarity(benchmark::State& state) {
  storage::QueryRecord a = storage::BuildRecordFromText(kProbe, "u", 0);
  storage::QueryRecord b = storage::BuildRecordFromText(
      "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
      "WHERE S.loc_x = T.loc_x AND S.loc_y = T.loc_y AND T.temp < 15 "
      "ORDER BY T.temp LIMIT 50",
      "u", 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metaquery::CombinedSimilarity(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairwiseSimilarity);

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
