// E9 — WAL-shipping replication (docs/replication.md).
//
// BM_ReplFollowerCatchup: the bootstrap headline. A fresh follower
// (CqmsServer in follower mode + repl::Follower, the exact wiring of
// cqms_serverd --follow) subscribes from sequence 0 against a durable
// primary holding a few thousand WAL records and must drain the whole
// backlog over loopback. items_per_second is WAL records replicated
// and applied per second — the rate at which a new replica becomes
// useful, and the rate a lagging one closes a gap.
//
// BM_ReplSteadyStateLag: the per-write replication latency. With a
// converged follower attached, each iteration appends one record on
// the primary and waits until the follower reports it applied —
// client encode -> primary writer -> WAL frame -> shipper push ->
// follower apply -> ack, end to end. real_time per iteration is the
// steady-state replica lag a read-your-writes client would observe.

#include <benchmark/benchmark.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "core/cqms.h"
#include "netclient/client.h"
#include "repl/follower.h"
#include "server/server.h"
#include "workload/synthetic.h"

namespace cqms {
namespace {

/// WAL records pre-loaded on the primary for the catch-up benchmark.
/// Kept under DurabilityOptions::checkpoint_wal_records so every record
/// is still in the active WAL: the follower catches up frame by frame
/// (the streaming path), never via snapshot bootstrap.
constexpr size_t kBacklogRecords = 2000;

/// Scratch durable dir (fresh per process; leftovers from a previous
/// run are cleared, including retired WAL segments).
std::string BenchDir() {
  std::string dir = "/tmp/cqms_bench_repl";
  ::mkdir(dir.c_str(), 0755);
  for (const char* base : {"snapshot.cqms", "snapshot.cqms.1",
                           "snapshot.cqms.tmp", "wal.log"}) {
    std::remove((dir + "/" + base).c_str());
  }
  for (int i = 1; i < 64; ++i) {
    if (std::remove((dir + "/wal.log." + std::to_string(i)).c_str()) != 0) {
      break;
    }
  }
  return dir;
}

/// One durable primary shared by every benchmark run (leaked, like the
/// other bench fixtures; the process exits right after the runs).
struct ReplBenchFixture {
  ReplBenchFixture() {
    if (!cqms.EnableDurability(BenchDir()).ok()) std::abort();
    if (!workload::PopulateLakeDatabase(cqms.database(), 30).ok()) std::abort();
    cqms.RegisterUser("alice", {"lab0"});
    cqms.RegisterUser("bob", {"lab0"});
    sequence = 2;  // Two kAddUser WAL records.
    server::ServerOptions sopts;
    sopts.repl_heartbeat_ms = 40;
    server = std::make_unique<server::CqmsServer>(&cqms, sopts);
    if (!server->Start().ok()) std::abort();

    auto client = Connect();
    for (size_t i = 0; i < kBacklogRecords; ++i) AppendOne(client.get());
  }

  std::unique_ptr<netclient::CqmsClient> Connect() {
    auto r = netclient::CqmsClient::Connect("127.0.0.1", server->port());
    if (!r.ok()) std::abort();
    return std::move(*r);
  }

  /// One log-only append = one WAL record = one shipped frame.
  void AppendOne(netclient::CqmsClient* client) {
    net::AppendRequest req;
    req.user = (sequence % 2 == 0) ? "alice" : "bob";
    req.sql = "SELECT * FROM Sensors WHERE sensor_id < " +
              std::to_string(sequence % 97 + 1);
    req.execute = false;
    if (!client->Append(req).ok()) std::abort();
    ++sequence;
  }

  Cqms cqms;
  std::unique_ptr<server::CqmsServer> server;
  uint64_t sequence = 0;  ///< WAL records the primary has acked.
};

ReplBenchFixture& Fixture() {
  static ReplBenchFixture* fixture = new ReplBenchFixture();
  return *fixture;
}

/// A follower CqmsServer wired to a repl::Follower — the cqms_serverd
/// --follow wiring, with bench-fast reconnect backoff.
struct BenchReplica {
  explicit BenchReplica(uint16_t primary_port) {
    server::ServerOptions sopts;
    sopts.follow_primary = "127.0.0.1:" + std::to_string(primary_port);
    server = std::make_unique<server::CqmsServer>(&cqms, sopts);
    repl::FollowerOptions fopts;
    fopts.primary_port = primary_port;
    fopts.name = "bench-replica";
    fopts.backoff_initial_ms = 20;
    fopts.backoff_max_ms = 200;
    std::shared_ptr<Cqms> live(&cqms, [](Cqms*) {});
    follower = std::make_unique<repl::Follower>(server.get(), live, fopts);
    server->SetFollower(follower.get());
    if (!server->Start().ok()) std::abort();
    if (!follower->Start().ok()) std::abort();
  }

  ~BenchReplica() {
    server->Shutdown();
    follower->Stop();
  }

  /// Blocks until the follower has applied through `sequence`.
  void WaitApplied(uint64_t sequence) {
    while (follower->GetStats().applied_sequence < sequence) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  Cqms cqms;
  std::unique_ptr<server::CqmsServer> server;
  std::unique_ptr<repl::Follower> follower;
};

void BM_ReplFollowerCatchup(benchmark::State& state) {
  ReplBenchFixture& fx = Fixture();
  for (auto _ : state) {
    {
      BenchReplica replica(fx.server->port());
      replica.WaitApplied(fx.sequence);
      state.PauseTiming();  // Teardown (thread joins) is not catch-up.
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.sequence));
}
BENCHMARK(BM_ReplFollowerCatchup)->Unit(benchmark::kMillisecond);

void BM_ReplSteadyStateLag(benchmark::State& state) {
  ReplBenchFixture& fx = Fixture();
  auto client = fx.Connect();
  BenchReplica replica(fx.server->port());
  replica.WaitApplied(fx.sequence);

  for (auto _ : state) {
    fx.AppendOne(client.get());
    replica.WaitApplied(fx.sequence);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplSteadyStateLag)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
