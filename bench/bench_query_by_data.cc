// E3 — Query-by-data (paper §2.2).
//
// "All queries whose output includes Lake Washington but not Lake
// Union": finds queries by conditions on their *outputs*. We measure the
// summary-only fast path vs the exact path with re-execution fallback,
// across log sizes — the efficiency/exactness trade-off the paper calls
// "a challenging problem". Expected shape: summary-only scales with log
// size alone; re-execution adds cost proportional to the number of
// incomplete summaries.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "metaquery/query_by_data.h"

namespace cqms {
namespace {

std::vector<metaquery::DataExample> LakeExamples() {
  std::vector<metaquery::DataExample> examples;
  examples.push_back({{db::Value::String("Washington")}, true});
  examples.push_back({{db::Value::String("Union")}, false});
  return examples;
}

void BM_QueryByDataSummaryOnly(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  auto examples = LakeExamples();
  metaquery::QueryByDataOptions options;  // no re-execution
  size_t hits = 0;
  for (auto _ : state) {
    auto ids = metaquery::QueryByData(f.store, "user0", examples, options);
    hits = ids.size();
    benchmark::DoNotOptimize(ids);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_QueryByDataSummaryOnly)
    ->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

void BM_QueryByDataWithReexecution(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  auto examples = LakeExamples();
  metaquery::QueryByDataOptions options;
  options.reexecute_on = &f.database;
  size_t hits = 0;
  for (auto _ : state) {
    auto ids = metaquery::QueryByData(f.store, "user0", examples, options);
    hits = ids.size();
    benchmark::DoNotOptimize(ids);
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
  state.counters["hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_QueryByDataWithReexecution)
    ->Arg(1000)->Arg(5000)->ArgNames({"queries"});

void BM_ExampleCountSweep(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  std::vector<metaquery::DataExample> examples;
  const char* lakes[] = {"Washington", "Union", "Sammamish", "Chelan",
                         "Crescent", "Whatcom"};
  for (int i = 0; i < state.range(0); ++i) {
    examples.push_back({{db::Value::String(lakes[i % 6])}, i % 2 == 0});
  }
  for (auto _ : state) {
    auto ids = metaquery::QueryByData(f.store, "user0", examples, {});
    benchmark::DoNotOptimize(ids);
  }
}
BENCHMARK(BM_ExampleCountSweep)->Arg(1)->Arg(4)->Arg(8)->ArgNames({"examples"});

void BM_RowMatchMicro(benchmark::State& state) {
  db::Row row = {db::Value::String("Washington"), db::Value::Int(1),
                 db::Value::Int(2), db::Value::Double(17.5)};
  db::Row example = {db::Value::String("Washington")};
  for (auto _ : state) {
    benchmark::DoNotOptimize(metaquery::RowMatchesExample(row, example));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowMatchMicro);

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
