// E8 — Network serving (docs/server.md).
//
// End-to-end daemon throughput over loopback through the real stack:
// client encode -> frame -> TCP -> epoll loop -> worker/writer ->
// response frame -> client decode.
//
// BM_ServerSearchPipelined/batch: the pipelining headline. batch:1 is
// one request per round trip (every request pays the full loopback
// latency); batch:8 and batch:64 keep that many requests in flight on
// one connection and the server answers out of order. items_per_second
// (requests/s) for batch:64 must clear batch:1 by a wide margin — the
// wire protocol exists so that clients are not serialized on latency.
//
// BM_ServerMixed/read_pct: a pipelined mixed workload (Search vs
// Append) at 95/5 (search-dominated exploration) and 50/50
// (append-heavy logging) — appends serialize on the single writer
// thread, searches fan out across workers against pinned views.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cqms.h"
#include "netclient/client.h"
#include "server/server.h"
#include "workload/synthetic.h"

namespace cqms {
namespace {

/// One daemon shared by every benchmark run (leaked, like the other
/// bench fixtures; the process exits right after the runs).
struct ServerBenchFixture {
  ServerBenchFixture() {
    Status s = workload::PopulateLakeDatabase(cqms.database(), 100);
    if (!s.ok()) std::abort();
    cqms.RegisterUser("user0", {"lab0"});
    for (size_t i = 0; i < 200; ++i) {
      cqms.Execute("user0", "SELECT * FROM Sensors WHERE sensor_id < " +
                                std::to_string(i % 40 + 1));
    }
    server = std::make_unique<server::CqmsServer>(&cqms);
    if (!server->Start().ok()) std::abort();
  }

  Cqms cqms;
  std::unique_ptr<server::CqmsServer> server;
};

ServerBenchFixture& Fixture() {
  static ServerBenchFixture* fixture = new ServerBenchFixture();
  return *fixture;
}

std::unique_ptr<netclient::CqmsClient> Connect() {
  auto r = netclient::CqmsClient::Connect("127.0.0.1", Fixture().server->port());
  if (!r.ok()) std::abort();
  return std::move(*r);
}

void BM_ServerSearchPipelined(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  auto client = Connect();
  net::SearchSpec spec;
  spec.keyword = net::KeywordSpec{"sensors", true};
  spec.limit = 10;
  std::vector<uint64_t> ids(batch);

  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      ids[i] = client->SendSearch("user0", spec);
    }
    if (!client->Flush().ok()) state.SkipWithError("flush failed");
    for (size_t i = 0; i < batch; ++i) {
      auto r = client->WaitSearch(ids[i]);
      if (!r.ok()) state.SkipWithError("search failed");
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_ServerSearchPipelined)->Arg(1)->Arg(8)->Arg(64);

void BM_ServerMixed(benchmark::State& state) {
  const int read_pct = static_cast<int>(state.range(0));
  const size_t batch = 20;
  auto client = Connect();
  net::SearchSpec spec;
  spec.keyword = net::KeywordSpec{"sensors", true};
  spec.limit = 10;

  size_t seq = 0;
  std::vector<std::pair<uint64_t, bool>> inflight(batch);  // id, is_search
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      bool is_search = static_cast<int>(seq++ % 100) < read_pct;
      if (is_search) {
        inflight[i] = {client->SendSearch("user0", spec), true};
      } else {
        net::AppendRequest append;
        append.user = "user0";
        append.sql = "SELECT * FROM Readings WHERE ts < " +
                     std::to_string(seq % 500 + 1);
        inflight[i] = {client->SendAppend(append), false};
      }
    }
    if (!client->Flush().ok()) state.SkipWithError("flush failed");
    for (const auto& [id, is_search] : inflight) {
      if (is_search) {
        auto r = client->WaitSearch(id);
        if (!r.ok()) state.SkipWithError("search failed");
      } else {
        auto r = client->WaitAppend(id);
        if (!r.ok()) state.SkipWithError("append failed");
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_ServerMixed)->Arg(95)->Arg(50);

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
