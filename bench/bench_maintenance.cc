// E7 — Schema-evolution maintenance (paper §4.4).
//
// Measures flagging + automatic repair after table/column renames and
// drops, the incremental-check advantage ("comparing the timestamp of a
// query with that of the last schema modification"), and reports repair
// success counters. Expected shape: first full check is O(log); later
// incremental checks touch only dependents of changed tables; renames
// repair at ~100%, drops at 0% (irreparable by design).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "maintain/query_maintenance.h"

namespace cqms {
namespace {

/// Fresh fixture per measurement: maintenance mutates flags and text.
struct MaintenanceBed {
  SimulatedClock clock{0};
  db::Database database{&clock};
  storage::QueryStore store;

  explicit MaintenanceBed(size_t min_queries) {
    Status s = workload::PopulateLakeDatabase(&database, 100);
    (void)s;
    profiler::QueryProfiler profiler(&database, &store, &clock);
    workload::WorkloadOptions options;
    options.num_sessions = min_queries / 5 + 1;
    options.typo_rate = 0;
    workload::RegisterUsers(&store, options);
    workload::GenerateLog(&profiler, &store, &clock, options);
  }
};

void BM_FullValidityCheck(benchmark::State& state) {
  MaintenanceBed bed(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    maintain::QueryMaintenance maintenance(&bed.database, &bed.store,
                                           &bed.clock, {});
    auto report = maintenance.CheckSchemaValidity();
    benchmark::DoNotOptimize(report);
  }
  state.counters["log_size"] = static_cast<double>(bed.store.size());
}
BENCHMARK(BM_FullValidityCheck)
    ->Arg(500)->Arg(2000)->Arg(8000)->ArgNames({"queries"});

void BM_IncrementalCheckAfterLocalChange(benchmark::State& state) {
  MaintenanceBed bed(static_cast<size_t>(state.range(0)));
  maintain::QueryMaintenance maintenance(&bed.database, &bed.store, &bed.clock,
                                         {});
  maintenance.CheckSchemaValidity();  // baseline full pass
  size_t checked = 0;
  for (auto _ : state) {
    state.PauseTiming();
    bed.clock.Advance(kMicrosPerMinute);
    // A change touching only the Species table.
    Status s = bed.database.AddColumn(
        "Species", {"col_" + std::to_string(state.iterations()),
                    db::ValueType::kInt});
    (void)s;
    state.ResumeTiming();
    auto report = maintenance.CheckSchemaValidity();
    checked = report.queries_checked;
    benchmark::DoNotOptimize(report);
  }
  state.counters["log_size"] = static_cast<double>(bed.store.size());
  state.counters["checked"] = static_cast<double>(checked);
}
BENCHMARK(BM_IncrementalCheckAfterLocalChange)
    ->Arg(500)->Arg(2000)->Arg(8000)->ArgNames({"queries"});

void BM_RepairAfterRename(benchmark::State& state) {
  size_t repaired = 0, broken = 0, log_size = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MaintenanceBed bed(1000);
    maintain::QueryMaintenance maintenance(&bed.database, &bed.store,
                                           &bed.clock, {});
    maintenance.CheckSchemaValidity();
    bed.clock.Advance(kMicrosPerMinute);
    Status s = bed.database.RenameTable("WaterTemp", "LakeTemperature");
    s = bed.database.RenameColumn("WaterSalinity", "salinity", "psu");
    log_size = bed.store.size();
    state.ResumeTiming();

    auto report = maintenance.CheckSchemaValidity();
    repaired = report.repaired;
    broken = report.flagged_broken;
    benchmark::DoNotOptimize(report);
  }
  state.counters["log_size"] = static_cast<double>(log_size);
  state.counters["repaired"] = static_cast<double>(repaired);
  state.counters["still_broken"] = static_cast<double>(broken);
}
BENCHMARK(BM_RepairAfterRename);

void BM_FlagAfterDrop(benchmark::State& state) {
  size_t repaired = 0, broken = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MaintenanceBed bed(1000);
    maintain::QueryMaintenance maintenance(&bed.database, &bed.store,
                                           &bed.clock, {});
    maintenance.CheckSchemaValidity();
    bed.clock.Advance(kMicrosPerMinute);
    Status s = bed.database.DropColumn("WaterTemp", "temp");
    (void)s;
    state.ResumeTiming();

    auto report = maintenance.CheckSchemaValidity();
    repaired = report.repaired;
    broken = report.flagged_broken;
    benchmark::DoNotOptimize(report);
  }
  state.counters["repaired"] = static_cast<double>(repaired);
  state.counters["flagged_broken"] = static_cast<double>(broken);
}
BENCHMARK(BM_FlagAfterDrop);

void BM_QualityRecomputation(benchmark::State& state) {
  MaintenanceBed bed(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(maintain::UpdateAllQuality(&bed.store));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(bed.store.size()));
}
BENCHMARK(BM_QualityRecomputation)->Arg(2000)->ArgNames({"queries"});

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
