// E1 — Profiler overhead (paper §2.1 / Figure 4).
//
// The paper's first requirement: the Query Profiler "does not impose
// significant runtime overhead". We measure end-to-end latency of the
// same query mix at every profiling level, against raw execution.
// Expected shape: kTextOnly ~ raw; kFeatures adds parsing+extraction;
// kFull adds summarization; all small relative to query execution.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "storage/record_builder.h"

namespace cqms {
namespace {

const char* kQueryMix[] = {
    "SELECT * FROM WaterTemp WHERE temp < 18",
    "SELECT S.salinity, T.temp FROM WaterSalinity S, WaterTemp T "
    "WHERE S.loc_x = T.loc_x AND T.temp < 18",
    "SELECT lake, AVG(temp) FROM WaterTemp GROUP BY lake",
    "SELECT city FROM CityLocations WHERE pop > 100000 ORDER BY pop DESC",
};

void BM_RawExecution(benchmark::State& state) {
  SimulatedClock clock(0);
  db::Database database(&clock);
  Status s = workload::PopulateLakeDatabase(&database, 300);
  (void)s;
  size_t i = 0;
  for (auto _ : state) {
    auto r = database.ExecuteSql(kQueryMix[i++ % 4]);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RawExecution);

void BM_ProfiledExecution(benchmark::State& state) {
  SimulatedClock clock(0);
  db::Database database(&clock);
  Status s = workload::PopulateLakeDatabase(&database, 300);
  (void)s;
  storage::QueryStore store;
  profiler::ProfilerOptions options;
  options.level = static_cast<profiler::ProfilingLevel>(state.range(0));
  profiler::QueryProfiler profiler(&database, &store, &clock, options);
  size_t i = 0;
  for (auto _ : state) {
    auto r = profiler.ExecuteAndProfile(kQueryMix[i++ % 4], "bench");
    benchmark::DoNotOptimize(r);
  }
  state.counters["logged"] = static_cast<double>(store.size());
}
BENCHMARK(BM_ProfiledExecution)
    ->Arg(static_cast<int>(profiler::ProfilingLevel::kOff))
    ->Arg(static_cast<int>(profiler::ProfilingLevel::kTextOnly))
    ->Arg(static_cast<int>(profiler::ProfilingLevel::kFeatures))
    ->Arg(static_cast<int>(profiler::ProfilingLevel::kFull))
    ->ArgNames({"level"});

// Marginal cost of the profiler-side work alone (no query execution):
// record building at each level, on a representative 3-way join query.
void BM_RecordBuildOnly(benchmark::State& state) {
  const std::string text =
      "SELECT T.lake, AVG(T.temp) FROM WaterTemp T, WaterSalinity S, "
      "CityLocations C WHERE T.loc_x = S.loc_x AND T.temp < 18 "
      "GROUP BY T.lake ORDER BY T.lake LIMIT 10";
  for (auto _ : state) {
    auto record = storage::BuildRecordFromText(text, "bench", 0);
    benchmark::DoNotOptimize(record);
  }
}
BENCHMARK(BM_RecordBuildOnly);

// Store append throughput (index + feature-relation maintenance).
void BM_StoreAppend(benchmark::State& state) {
  storage::QueryStore store;
  auto record = storage::BuildRecordFromText(
      "SELECT * FROM WaterTemp WHERE temp < 18", "bench", 0);
  for (auto _ : state) {
    storage::QueryRecord copy = record;
    benchmark::DoNotOptimize(store.Append(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreAppend);

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
