// E6 — Background mining cost (paper §4.3).
//
// Clustering, association-rule mining and the full miner cycle over
// growing logs; plus the min-support sweep that trades rule count
// against mining time, and incremental refresh (threshold-gated) vs
// always re-mining. Expected shape: Apriori cost grows with transactions
// and shrinking support; k-medoids is quadratic in its (capped) sample;
// incremental refresh amortizes to near-zero between thresholds.

#include <algorithm>
#include <map>
#include <utility>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "miner/query_miner.h"
#include "workload/synthetic.h"

namespace cqms {
namespace {

std::vector<storage::QueryId> AllIds(const storage::QueryStore& store) {
  std::vector<storage::QueryId> ids;
  ids.reserve(store.size());
  for (const auto& r : store.records()) ids.push_back(r.id);
  return ids;
}

void BM_AssociationMining(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  miner::AssociationMinerOptions options;
  auto transactions = miner::BuildTransactions(f.store, AllIds(f.store), options);
  size_t rules = 0;
  for (auto _ : state) {
    auto mined = miner::MineAssociationRules(transactions, options);
    rules = mined.size();
    benchmark::DoNotOptimize(mined);
  }
  state.counters["transactions"] = static_cast<double>(transactions.size());
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_AssociationMining)
    ->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

void BM_AssociationMinSupportSweep(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  miner::AssociationMinerOptions options;
  options.min_support = static_cast<double>(state.range(0)) / 1000.0;
  auto transactions = miner::BuildTransactions(f.store, AllIds(f.store), options);
  size_t rules = 0;
  for (auto _ : state) {
    auto mined = miner::MineAssociationRules(transactions, options);
    rules = mined.size();
    benchmark::DoNotOptimize(mined);
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_AssociationMinSupportSweep)
    ->Arg(100)->Arg(10)->Arg(1)->ArgNames({"minsup_permille"});

void BM_KMedoidsClustering(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  std::vector<storage::QueryId> ids = AllIds(f.store);
  ids.resize(std::min<size_t>(ids.size(), static_cast<size_t>(state.range(0))));
  miner::KMedoidsOptions options;
  options.k = 8;
  for (auto _ : state) {
    auto clustering = miner::KMedoidsCluster(f.store, ids, options);
    benchmark::DoNotOptimize(clustering);
  }
  state.counters["points"] = static_cast<double>(ids.size());
}
BENCHMARK(BM_KMedoidsClustering)
    ->Arg(100)->Arg(400)->Arg(1000)->ArgNames({"sample"});

void BM_AgglomerativeClustering(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  std::vector<storage::QueryId> ids = AllIds(f.store);
  ids.resize(std::min<size_t>(ids.size(), 400));
  size_t clusters = 0;
  for (auto _ : state) {
    auto clustering = miner::AgglomerativeCluster(f.store, ids, 0.4);
    clusters = clustering.num_clusters();
    benchmark::DoNotOptimize(clustering);
  }
  state.counters["clusters"] = static_cast<double>(clusters);
}
BENCHMARK(BM_AgglomerativeClustering);

void BM_FullMiningCycle(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  miner::QueryMinerOptions options;
  options.clustering_sample = 500;
  for (auto _ : state) {
    miner::QueryMiner miner(&f.store, &f.clock, options);
    miner.RunAll();
    benchmark::DoNotOptimize(miner.rules().size());
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_FullMiningCycle)->Arg(1000)->Arg(5000)->ArgNames({"queries"});

// Tentpole headline (§4.3/§4.4): the cost of absorbing a ~1% append
// delta into every mining output — full from-scratch RunAll vs the
// delta-aware refresh (tail-resumed sessions, in-place popularity and
// transaction updates, persistent DistanceCache). One warm miner per
// (size, mode); each iteration appends the delta off the clock, then
// times the refresh. The log grows ~1% per iteration in both modes, so
// the full/incremental ratio stays honest.
struct RefreshFixture {
  bench::LogFixture log;
  miner::QueryMiner miner;
  workload::WorkloadOptions delta_options;
  uint64_t delta_seed = 10'000;

  explicit RefreshFixture(size_t queries, bool incremental)
      : log(queries), miner(&log.store, &log.clock, [&] {
          miner::QueryMinerOptions options;
          options.refresh_threshold = 1;
          options.incremental = incremental;
          // Measure the steady-state incremental cost; the escape-hatch
          // rebuild would make one iteration pay the full price.
          options.full_rebuild_interval = 0;
          return options;
        }()) {
    delta_options = log.workload_options;
    // ~1% of the log: sessions average ~5-6 queries.
    delta_options.num_sessions = std::max<size_t>(1, queries / 100 / 5);
    miner.RunAll();
  }

  void AppendDelta() {
    delta_options.seed = delta_seed++;
    workload::GenerateLog(log.profiler.get(), &log.store, &log.clock,
                          delta_options);
  }
};

RefreshFixture& GetRefreshFixture(size_t queries, bool incremental) {
  static auto* cache = new std::map<std::pair<size_t, bool>, RefreshFixture*>();
  auto key = std::make_pair(queries, incremental);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, new RefreshFixture(queries, incremental)).first;
  }
  return *it->second;
}

void BM_MinerRefresh(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  const bool incremental = state.range(1) != 0;
  RefreshFixture& f = GetRefreshFixture(queries, incremental);
  size_t before = f.log.store.size();
  for (auto _ : state) {
    state.PauseTiming();
    f.AppendDelta();
    state.ResumeTiming();
    bool ran = f.miner.MaybeRefresh();
    benchmark::DoNotOptimize(ran);
  }
  const miner::MinerRefreshStats& stats = f.miner.last_refresh_stats();
  state.counters["appended_per_iter"] =
      static_cast<double>(f.log.store.size() - before) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
  state.counters["pairs_copied"] = static_cast<double>(stats.pairs_copied);
  state.counters["pairs_reused"] = static_cast<double>(stats.pairs_reused);
  state.counters["pairs_computed"] = static_cast<double>(stats.pairs_computed);
}
BENCHMARK(BM_MinerRefresh)
    ->Args({1000, 0})->Args({1000, 1})
    ->Args({5000, 0})->Args({5000, 1})
    ->Args({20000, 0})->Args({20000, 1})
    ->ArgNames({"queries", "incremental"})
    ->Unit(benchmark::kMillisecond);

// Incremental maintenance (§4.3): MaybeRefresh below the threshold is a
// cheap no-op; this is what a background timer pays almost every tick.
void BM_IncrementalRefreshNoop(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  miner::QueryMinerOptions options;
  options.refresh_threshold = 1000000;  // never re-mine
  miner::QueryMiner miner(&f.store, &f.clock, options);
  miner.RunAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(miner.MaybeRefresh());
  }
}
BENCHMARK(BM_IncrementalRefreshNoop);

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
