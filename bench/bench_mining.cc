// E6 — Background mining cost (paper §4.3).
//
// Clustering, association-rule mining and the full miner cycle over
// growing logs; plus the min-support sweep that trades rule count
// against mining time, and incremental refresh (threshold-gated) vs
// always re-mining. Expected shape: Apriori cost grows with transactions
// and shrinking support; k-medoids is quadratic in its (capped) sample;
// incremental refresh amortizes to near-zero between thresholds.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "miner/query_miner.h"

namespace cqms {
namespace {

std::vector<storage::QueryId> AllIds(const storage::QueryStore& store) {
  std::vector<storage::QueryId> ids;
  ids.reserve(store.size());
  for (const auto& r : store.records()) ids.push_back(r.id);
  return ids;
}

void BM_AssociationMining(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  miner::AssociationMinerOptions options;
  auto transactions = miner::BuildTransactions(f.store, AllIds(f.store), options);
  size_t rules = 0;
  for (auto _ : state) {
    auto mined = miner::MineAssociationRules(transactions, options);
    rules = mined.size();
    benchmark::DoNotOptimize(mined);
  }
  state.counters["transactions"] = static_cast<double>(transactions.size());
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_AssociationMining)
    ->Arg(1000)->Arg(5000)->Arg(20000)->ArgNames({"queries"});

void BM_AssociationMinSupportSweep(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  miner::AssociationMinerOptions options;
  options.min_support = static_cast<double>(state.range(0)) / 1000.0;
  auto transactions = miner::BuildTransactions(f.store, AllIds(f.store), options);
  size_t rules = 0;
  for (auto _ : state) {
    auto mined = miner::MineAssociationRules(transactions, options);
    rules = mined.size();
    benchmark::DoNotOptimize(mined);
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_AssociationMinSupportSweep)
    ->Arg(100)->Arg(10)->Arg(1)->ArgNames({"minsup_permille"});

void BM_KMedoidsClustering(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  std::vector<storage::QueryId> ids = AllIds(f.store);
  ids.resize(std::min<size_t>(ids.size(), static_cast<size_t>(state.range(0))));
  miner::KMedoidsOptions options;
  options.k = 8;
  for (auto _ : state) {
    auto clustering = miner::KMedoidsCluster(f.store, ids, options);
    benchmark::DoNotOptimize(clustering);
  }
  state.counters["points"] = static_cast<double>(ids.size());
}
BENCHMARK(BM_KMedoidsClustering)
    ->Arg(100)->Arg(400)->Arg(1000)->ArgNames({"sample"});

void BM_AgglomerativeClustering(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  std::vector<storage::QueryId> ids = AllIds(f.store);
  ids.resize(std::min<size_t>(ids.size(), 400));
  size_t clusters = 0;
  for (auto _ : state) {
    auto clustering = miner::AgglomerativeCluster(f.store, ids, 0.4);
    clusters = clustering.num_clusters();
    benchmark::DoNotOptimize(clustering);
  }
  state.counters["clusters"] = static_cast<double>(clusters);
}
BENCHMARK(BM_AgglomerativeClustering);

void BM_FullMiningCycle(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(static_cast<size_t>(state.range(0)));
  miner::QueryMinerOptions options;
  options.clustering_sample = 500;
  for (auto _ : state) {
    miner::QueryMiner miner(&f.store, &f.clock, options);
    miner.RunAll();
    benchmark::DoNotOptimize(miner.rules().size());
  }
  state.counters["log_size"] = static_cast<double>(f.store.size());
}
BENCHMARK(BM_FullMiningCycle)->Arg(1000)->Arg(5000)->ArgNames({"queries"});

// Incremental maintenance (§4.3): MaybeRefresh below the threshold is a
// cheap no-op; this is what a background timer pays almost every tick.
void BM_IncrementalRefreshNoop(benchmark::State& state) {
  bench::LogFixture& f = bench::GetFixture(5000);
  miner::QueryMinerOptions options;
  options.refresh_threshold = 1000000;  // never re-mine
  miner::QueryMiner miner(&f.store, &f.clock, options);
  miner.RunAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(miner.MaybeRefresh());
  }
}
BENCHMARK(BM_IncrementalRefreshNoop);

}  // namespace
}  // namespace cqms

BENCHMARK_MAIN();
