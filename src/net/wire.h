#ifndef CQMS_NET_WIRE_H_
#define CQMS_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/binary_codec.h"
#include "common/status.h"
#include "db/value.h"
#include "metaquery/knn.h"
#include "metaquery/meta_query_request.h"
#include "metaquery/parse_tree_query.h"
#include "storage/access_control.h"
#include "storage/query_record.h"

namespace cqms::net {

/// Wire protocol version. Bumped on any incompatible envelope or body
/// change; the Hello handshake rejects mismatches with kWrongVersion
/// semantics (StatusCode::kUnsupported) before any other op is accepted.
constexpr uint32_t kProtocolVersion = 1;

/// Minor protocol revision: backward-compatible additions only (trailing
/// fields guarded by AtEnd() on decode, new ops old servers reject with
/// a typed error). Never checked by the handshake — it exists so server
/// version strings and docs can name the feature level.
/// 1: MetricsDump op, SearchSpec.want_trace + SearchResult.trace,
///    StatsResult durability/arena tail.
/// 2: WAL-shipping replication (ReplSubscribe / ReplStream / ReplAck),
///    StatusCode::kNotPrimary, StatsResult replication tail.
constexpr uint32_t kProtocolMinorVersion = 2;

/// Operation codes carried in every request and echoed in the response.
/// Values are wire-stable: append only, never renumber.
enum class Op : uint8_t {
  kHello = 1,
  kSearch = 2,
  kAppend = 3,
  kRewrite = 4,
  kAnnotate = 5,
  kSetVisibility = 6,
  kDelete = 7,
  kRecommend = 8,
  kBrowse = 9,
  kShowSession = 10,
  kStats = 11,
  kCheckpoint = 12,
  kRegisterUser = 13,
  kMaintain = 14,
  /// Returns the process's metrics registry as Prometheus-style text
  /// (TextResult body). Protocol minor 1.
  kMetricsDump = 15,
  /// Replication (protocol minor 2; docs/replication.md). A follower
  /// subscribes to the primary's WAL stream from a sequence number; the
  /// primary answers with a ReplSubscribeResult and then pushes
  /// kReplStream messages (frames / heartbeats / snapshot bootstrap)
  /// tagged with the subscribe request id for the life of the
  /// connection.
  kReplSubscribe = 16,
  /// Server-push stream message (never a request). The body begins with
  /// a ReplStreamKind discriminant.
  kReplStream = 17,
  /// Follower -> primary progress report: highest contiguously applied
  /// sequence. Drives primary-side WAL segment retention.
  kReplAck = 18,
};

constexpr uint8_t kMinOp = 1;
constexpr uint8_t kMaxOp = 18;
const char* OpName(Op op);

// --- envelopes -------------------------------------------------------------
//
// Request payload:  varint request_id, u8 op, body...
// Response payload: varint request_id, u8 op, varint status code,
//                   string message (empty when OK), body... (only when OK)
//
// request_id is chosen by the client and echoed verbatim; clients
// pipeline many requests on one connection and match responses by id
// (the server may answer out of order).

struct RequestEnvelope {
  uint64_t request_id = 0;
  Op op = Op::kHello;
  std::string_view body;  ///< Aliases the decoded payload buffer.
};

struct ResponseEnvelope {
  uint64_t request_id = 0;
  Op op = Op::kHello;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::string_view body;  ///< Aliases the decoded payload buffer.

  bool ok() const { return code == StatusCode::kOk; }
  Status ToStatus() const { return Status(code, message); }
};

/// Starts a request payload; append the body to `w` afterwards.
void BeginRequest(BinaryWriter* w, uint64_t request_id, Op op);
/// Starts an OK response payload; append the body afterwards.
void BeginResponse(BinaryWriter* w, uint64_t request_id, Op op);
/// A complete typed-error response payload (no body follows).
void EncodeErrorResponse(BinaryWriter* w, uint64_t request_id, Op op,
                         const Status& error);

/// False on malformed envelope (unknown op, truncated). `payload` must
/// outlive the envelope (body aliases it).
bool DecodeRequestEnvelope(std::string_view payload, RequestEnvelope* out);
bool DecodeResponseEnvelope(std::string_view payload, ResponseEnvelope* out);

// --- hello -----------------------------------------------------------------

struct HelloRequest {
  uint32_t protocol_version = kProtocolVersion;
  std::string client_name;
};

struct HelloResponse {
  uint32_t protocol_version = kProtocolVersion;
  std::string server_version;
  uint64_t store_size = 0;
};

// --- search ----------------------------------------------------------------
//
// SearchSpec mirrors metaquery::MetaQueryRequest with two wire-induced
// differences: the similarity probe travels as SQL text (the server
// builds the transient probe record), and query-by-data re-execution is
// a flag (the server would supply its own database) — v1 rejects it as
// kUnsupported because re-execution is a writer-thread feature.

struct FeatureSpec {
  std::vector<std::string> tables;
  std::vector<std::pair<std::string, std::string>> attributes;  // rel, attr
  struct Predicate {
    std::string relation;
    std::string attribute;
    std::string op;  // empty = any operator
  };
  std::vector<Predicate> predicates;
  std::optional<std::string> user;
  std::optional<int64_t> max_execution_micros;
  std::optional<uint64_t> max_result_rows;
  std::optional<uint64_t> min_result_rows;
  bool succeeded_only = false;
};

struct DataExampleSpec {
  std::vector<db::Value> cells;
  bool positive = true;
};

struct DataSpec {
  std::vector<DataExampleSpec> examples;
  /// Ask the server to re-execute inconclusive queries against its own
  /// database. Unsupported in protocol v1 (typed kUnsupported error).
  bool reexecute = false;
  bool skip_without_summary = true;
};

struct SimilaritySpec {
  std::string probe_text;
  metaquery::SimilarityWeights weights;
  metaquery::CandidateOptions candidates;
};

struct KeywordSpec {
  std::string words;
  bool match_all = true;
};

struct SearchSpec {
  std::optional<KeywordSpec> keyword;
  std::optional<std::string> substring;
  std::optional<FeatureSpec> feature;
  std::optional<metaquery::StructuralPattern> structure;
  std::optional<DataSpec> data;
  std::optional<SimilaritySpec> similarity;
  metaquery::RankingOptions ranking;
  metaquery::ResultOrder order = metaquery::ResultOrder::kScore;
  uint64_t limit = 0;
  /// Ask the server to run the planner with an ExecTrace attached and
  /// return it in SearchResult::trace. Trailing wire field (minor 1):
  /// absent on old clients decodes as false, old servers ignore it.
  bool want_trace = false;
};

struct SearchRequest {
  std::string viewer;
  SearchSpec spec;
};

/// Wire form of obs::ExecTrace (generator + ordered counter/span pairs).
struct TraceSummary {
  std::string generator;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, uint64_t>> spans_micros;
};

struct SearchResult {
  struct Match {
    storage::QueryId id = storage::kInvalidQueryId;
    double similarity = 0;
    double score = 0;
  };
  std::vector<Match> matches;
  uint8_t generator = 0;  ///< metaquery::CandidateGenerator
  uint64_t candidates_considered = 0;
  /// Present iff the request set want_trace and the server supports
  /// minor 1 (trailing optional block on the wire).
  std::optional<TraceSummary> trace;
};

/// Builds the in-process request from a spec. `probe` backs the
/// similarity predicate and must outlive the returned request (null =
/// spec has no similarity predicate). Used by the server handler and by
/// tests to run the byte-identical oracle in process.
metaquery::MetaQueryRequest ToMetaQueryRequest(const SearchSpec& spec,
                                               const storage::QueryRecord* probe);

// --- append ----------------------------------------------------------------

struct AppendRequest {
  std::string user;
  std::string sql;
  /// True: execute against the server's database and profile (§2.1).
  /// False: log-only import (historical logs, results unknown).
  bool execute = true;
};

struct AppendResult {
  storage::QueryId id = storage::kInvalidQueryId;
  bool succeeded = false;
  std::string error;
  uint64_t result_rows = 0;
  int64_t exec_micros = 0;
};

// --- small record ops ------------------------------------------------------

struct RewriteRequest {
  storage::QueryId id = storage::kInvalidQueryId;
  std::string new_text;
};

struct AnnotateRequest {
  storage::QueryId id = storage::kInvalidQueryId;
  std::string author;
  std::string text;
  std::string fragment;
};

struct SetVisibilityRequest {
  std::string requester;
  storage::QueryId id = storage::kInvalidQueryId;
  storage::Visibility visibility = storage::Visibility::kGroup;
};

struct DeleteRequest {
  std::string requester;
  storage::QueryId id = storage::kInvalidQueryId;
  bool is_admin = false;
};

struct RegisterUserRequest {
  std::string user;
  std::vector<std::string> groups;
};

// --- recommend / browse ----------------------------------------------------

struct RecommendRequest {
  std::string viewer;
  std::string sql_text;
  uint64_t k = 5;
};

struct RecommendationItem {
  storage::QueryId id = storage::kInvalidQueryId;
  double score = 0;
  double similarity = 0;
  std::string text;
  std::string diff;
  std::string annotation;
};

struct RecommendResult {
  std::vector<RecommendationItem> items;
};

struct BrowseRequest {
  std::string viewer;
  uint64_t max_sessions = 20;
};

struct ShowSessionRequest {
  std::string viewer;
  storage::SessionId session_id = -1;
};

struct TextResult {
  std::string text;
};

// --- stats / admin ---------------------------------------------------------

struct OpStatsRow {
  uint8_t op = 0;
  uint64_t count = 0;
  uint64_t errors = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t p50_micros = 0;
  uint64_t p99_micros = 0;
  uint64_t max_micros = 0;
};

struct StatsResult {
  std::string server_version;
  uint64_t uptime_micros = 0;
  uint64_t active_connections = 0;
  uint64_t total_connections = 0;
  uint64_t rejected_connections = 0;
  uint64_t protocol_errors = 0;
  uint64_t store_size = 0;
  uint64_t published_sequence = 0;
  std::vector<OpStatsRow> per_op;
  /// Durability / maintenance health (trailing fields, minor 1: decode
  /// against an old server leaves the defaults).
  bool durable_read_only = false;
  uint64_t checkpoint_failure_streak = 0;
  uint64_t checkpoints_backed_off = 0;
  uint64_t arena_garbage_bytes = 0;
  /// Replication (trailing fields, minor 2). role: 0 = standalone
  /// pre-minor-2 server, 1 = primary, 2 = follower.
  uint8_t role = 0;
  std::string primary_address;      ///< Follower only: who it follows.
  bool repl_connected = false;      ///< Follower: link to primary is up.
  uint64_t repl_applied_sequence = 0;   ///< Follower: applied through here.
  uint64_t repl_primary_sequence = 0;   ///< Follower: primary's last seq seen.
  uint64_t repl_followers = 0;          ///< Primary: live subscriptions.
  uint64_t repl_min_acked_sequence = 0; ///< Primary: slowest follower ack.
  uint64_t repl_backlog_bytes = 0;      ///< Primary: retained retired WAL.
};

struct MaintainRequest {
  bool run_mining = true;
};

// --- replication (protocol minor 2) ----------------------------------------
//
// A follower opens a normal connection, handshakes, then sends one
// kReplSubscribe request. The primary answers with ReplSubscribeResult
// and afterwards pushes kReplStream response frames that reuse the
// subscribe request id. Stream bodies start with a ReplStreamKind byte.
// The follower reports progress with fire-and-forget kReplAck requests
// (the OK responses are ignored); the primary uses the minimum acked
// sequence across followers to bound retired-WAL-segment retention.

struct ReplSubscribeRequest {
  /// Highest sequence already applied by the follower; the stream begins
  /// at from_sequence + 1. Zero asks for everything.
  uint64_t from_sequence = 0;
  std::string follower_name;
  /// Skip catch-up and bootstrap from a fresh snapshot regardless of
  /// from_sequence (set after the follower detects a gap or divergence).
  bool force_snapshot = false;
};

struct ReplSubscribeResult {
  /// True: a SnapshotBegin/Chunk/End sequence precedes live frames.
  bool snapshot_bootstrap = false;
  uint64_t primary_sequence = 0;
};

enum class ReplStreamKind : uint8_t {
  kFrames = 1,
  kHeartbeat = 2,
  kSnapshotBegin = 3,
  kSnapshotChunk = 4,
  kSnapshotEnd = 5,
};

/// One WAL frame payload (varint sequence + op payload) plus its CRC as
/// computed on the primary; a mismatch on the follower means link or
/// primary-side corruption and forces a snapshot re-bootstrap.
struct ReplFramed {
  uint32_t crc32 = 0;
  std::string frame;
};

struct ReplFrameBatch {
  std::vector<ReplFramed> frames;
  uint64_t primary_sequence = 0;
};

struct ReplHeartbeat {
  uint64_t primary_sequence = 0;
};

struct ReplSnapshotBegin {
  /// WAL sequence the snapshot covers; live frames resume at covered + 1.
  uint64_t covered_sequence = 0;
  uint64_t total_bytes = 0;
  uint32_t crc32 = 0;  ///< CRC of the whole snapshot image.
};

struct ReplSnapshotChunk {
  std::string data;
};

struct ReplAckRequest {
  uint64_t acked_sequence = 0;
};

/// Renders the canonical kNotPrimary message, "not primary; leader=host:port"
/// (or no leader suffix when the address is unknown).
std::string FormatNotPrimary(const std::string& leader);
/// Extracts "host:port" from a kNotPrimary message; empty if absent.
std::string ParseNotPrimaryLeader(const std::string& message);

// --- body codecs -----------------------------------------------------------
//
// Every EncodeX appends the body to an open payload (after BeginRequest /
// BeginResponse); every DecodeX reads the body from a BinaryReader over
// the envelope's `body` view and returns false when the bytes are
// malformed (truncated, bad discriminant) — the reader's failure bit and
// an exhausted-buffer check decide. Empty-bodied messages (Stats,
// Checkpoint requests; plain-status responses) have no codec.

void EncodeHelloRequest(BinaryWriter* w, const HelloRequest& m);
bool DecodeHelloRequest(BinaryReader* r, HelloRequest* m);
void EncodeHelloResponse(BinaryWriter* w, const HelloResponse& m);
bool DecodeHelloResponse(BinaryReader* r, HelloResponse* m);

void EncodeSearchRequest(BinaryWriter* w, const SearchRequest& m);
bool DecodeSearchRequest(BinaryReader* r, SearchRequest* m);
void EncodeSearchResult(BinaryWriter* w, const SearchResult& m);
bool DecodeSearchResult(BinaryReader* r, SearchResult* m);

void EncodeAppendRequest(BinaryWriter* w, const AppendRequest& m);
bool DecodeAppendRequest(BinaryReader* r, AppendRequest* m);
void EncodeAppendResult(BinaryWriter* w, const AppendResult& m);
bool DecodeAppendResult(BinaryReader* r, AppendResult* m);

void EncodeRewriteRequest(BinaryWriter* w, const RewriteRequest& m);
bool DecodeRewriteRequest(BinaryReader* r, RewriteRequest* m);
void EncodeAnnotateRequest(BinaryWriter* w, const AnnotateRequest& m);
bool DecodeAnnotateRequest(BinaryReader* r, AnnotateRequest* m);
void EncodeSetVisibilityRequest(BinaryWriter* w, const SetVisibilityRequest& m);
bool DecodeSetVisibilityRequest(BinaryReader* r, SetVisibilityRequest* m);
void EncodeDeleteRequest(BinaryWriter* w, const DeleteRequest& m);
bool DecodeDeleteRequest(BinaryReader* r, DeleteRequest* m);
void EncodeRegisterUserRequest(BinaryWriter* w, const RegisterUserRequest& m);
bool DecodeRegisterUserRequest(BinaryReader* r, RegisterUserRequest* m);

void EncodeRecommendRequest(BinaryWriter* w, const RecommendRequest& m);
bool DecodeRecommendRequest(BinaryReader* r, RecommendRequest* m);
void EncodeRecommendResult(BinaryWriter* w, const RecommendResult& m);
bool DecodeRecommendResult(BinaryReader* r, RecommendResult* m);

void EncodeBrowseRequest(BinaryWriter* w, const BrowseRequest& m);
bool DecodeBrowseRequest(BinaryReader* r, BrowseRequest* m);
void EncodeShowSessionRequest(BinaryWriter* w, const ShowSessionRequest& m);
bool DecodeShowSessionRequest(BinaryReader* r, ShowSessionRequest* m);
void EncodeTextResult(BinaryWriter* w, const TextResult& m);
bool DecodeTextResult(BinaryReader* r, TextResult* m);

void EncodeStatsResult(BinaryWriter* w, const StatsResult& m);
bool DecodeStatsResult(BinaryReader* r, StatsResult* m);
void EncodeMaintainRequest(BinaryWriter* w, const MaintainRequest& m);
bool DecodeMaintainRequest(BinaryReader* r, MaintainRequest* m);

void EncodeReplSubscribeRequest(BinaryWriter* w, const ReplSubscribeRequest& m);
bool DecodeReplSubscribeRequest(BinaryReader* r, ReplSubscribeRequest* m);
void EncodeReplSubscribeResult(BinaryWriter* w, const ReplSubscribeResult& m);
bool DecodeReplSubscribeResult(BinaryReader* r, ReplSubscribeResult* m);
void EncodeReplFrameBatch(BinaryWriter* w, const ReplFrameBatch& m);
bool DecodeReplFrameBatch(BinaryReader* r, ReplFrameBatch* m);
void EncodeReplHeartbeat(BinaryWriter* w, const ReplHeartbeat& m);
bool DecodeReplHeartbeat(BinaryReader* r, ReplHeartbeat* m);
void EncodeReplSnapshotBegin(BinaryWriter* w, const ReplSnapshotBegin& m);
bool DecodeReplSnapshotBegin(BinaryReader* r, ReplSnapshotBegin* m);
void EncodeReplSnapshotChunk(BinaryWriter* w, const ReplSnapshotChunk& m);
bool DecodeReplSnapshotChunk(BinaryReader* r, ReplSnapshotChunk* m);
void EncodeReplAckRequest(BinaryWriter* w, const ReplAckRequest& m);
bool DecodeReplAckRequest(BinaryReader* r, ReplAckRequest* m);

}  // namespace cqms::net

#endif  // CQMS_NET_WIRE_H_
