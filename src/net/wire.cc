#include "net/wire.h"

namespace cqms::net {

namespace {

// Shared small-field helpers. Decoders never trust a count further than
// "each element needs at least one byte": a hostile varint count larger
// than the remaining buffer is rejected before any reserve/resize, so a
// 16-byte frame cannot demand a 4 GB allocation.

bool CheckedCount(BinaryReader* r, uint64_t count) {
  if (count > r->remaining()) {
    r->Invalidate();
    return false;
  }
  return true;
}

void PutBool(BinaryWriter* w, bool v) { w->PutU8(v ? 1 : 0); }
bool GetBool(BinaryReader* r) { return r->GetU8() != 0; }

void PutOptString(BinaryWriter* w, const std::optional<std::string>& v) {
  PutBool(w, v.has_value());
  if (v.has_value()) w->PutString(*v);
}

std::optional<std::string> GetOptString(BinaryReader* r) {
  if (!GetBool(r)) return std::nullopt;
  return r->GetString();
}

void PutOptZigzag(BinaryWriter* w, const std::optional<int64_t>& v) {
  PutBool(w, v.has_value());
  if (v.has_value()) w->PutZigzag(*v);
}

std::optional<int64_t> GetOptZigzag(BinaryReader* r) {
  if (!GetBool(r)) return std::nullopt;
  return r->GetZigzag();
}

void PutOptVarint(BinaryWriter* w, const std::optional<uint64_t>& v) {
  PutBool(w, v.has_value());
  if (v.has_value()) w->PutVarint(*v);
}

std::optional<uint64_t> GetOptVarint(BinaryReader* r) {
  if (!GetBool(r)) return std::nullopt;
  return r->GetVarint();
}

void PutOptInt(BinaryWriter* w, const std::optional<int>& v) {
  PutBool(w, v.has_value());
  if (v.has_value()) w->PutZigzag(*v);
}

std::optional<int> GetOptInt(BinaryReader* r) {
  if (!GetBool(r)) return std::nullopt;
  return std::optional<int>(static_cast<int>(r->GetZigzag()));
}

void PutOptBool(BinaryWriter* w, const std::optional<bool>& v) {
  PutBool(w, v.has_value());
  if (v.has_value()) PutBool(w, *v);
}

std::optional<bool> GetOptBool(BinaryReader* r) {
  if (!GetBool(r)) return std::nullopt;
  return GetBool(r);
}

void PutStrings(BinaryWriter* w, const std::vector<std::string>& v) {
  w->PutVarint(v.size());
  for (const std::string& s : v) w->PutString(s);
}

bool GetStrings(BinaryReader* r, std::vector<std::string>* out) {
  uint64_t n = r->GetVarint();
  if (!CheckedCount(r, n)) return false;
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) out->push_back(r->GetString());
  return !r->failed();
}

void PutValue(BinaryWriter* w, const db::Value& v) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case db::ValueType::kNull:
      break;
    case db::ValueType::kInt:
      w->PutZigzag(v.AsInt());
      break;
    case db::ValueType::kDouble:
      w->PutDouble(v.AsDouble());
      break;
    case db::ValueType::kString:
      w->PutString(v.AsString());
      break;
    case db::ValueType::kBool:
      PutBool(w, v.AsBool());
      break;
  }
}

bool GetValue(BinaryReader* r, db::Value* out) {
  uint8_t tag = r->GetU8();
  if (tag > static_cast<uint8_t>(db::ValueType::kBool)) {
    r->Invalidate();
    return false;
  }
  switch (static_cast<db::ValueType>(tag)) {
    case db::ValueType::kNull:
      *out = db::Value::Null();
      break;
    case db::ValueType::kInt:
      *out = db::Value::Int(r->GetZigzag());
      break;
    case db::ValueType::kDouble:
      *out = db::Value::Double(r->GetDouble());
      break;
    case db::ValueType::kString:
      *out = db::Value::String(r->GetString());
      break;
    case db::ValueType::kBool:
      *out = db::Value::Bool(GetBool(r));
      break;
  }
  return !r->failed();
}

void PutRanking(BinaryWriter* w, const metaquery::RankingOptions& v) {
  w->PutDouble(v.w_similarity);
  w->PutDouble(v.w_popularity);
  w->PutDouble(v.w_quality);
  w->PutDouble(v.w_recency);
  PutBool(w, v.exclude_flagged);
  w->PutDouble(v.min_similarity);
}

void GetRanking(BinaryReader* r, metaquery::RankingOptions* v) {
  v->w_similarity = r->GetDouble();
  v->w_popularity = r->GetDouble();
  v->w_quality = r->GetDouble();
  v->w_recency = r->GetDouble();
  v->exclude_flagged = GetBool(r);
  v->min_similarity = r->GetDouble();
}

void PutFeatureSpec(BinaryWriter* w, const FeatureSpec& v) {
  PutStrings(w, v.tables);
  w->PutVarint(v.attributes.size());
  for (const auto& [rel, attr] : v.attributes) {
    w->PutString(rel);
    w->PutString(attr);
  }
  w->PutVarint(v.predicates.size());
  for (const FeatureSpec::Predicate& p : v.predicates) {
    w->PutString(p.relation);
    w->PutString(p.attribute);
    w->PutString(p.op);
  }
  PutOptString(w, v.user);
  PutOptZigzag(w, v.max_execution_micros);
  PutOptVarint(w, v.max_result_rows);
  PutOptVarint(w, v.min_result_rows);
  PutBool(w, v.succeeded_only);
}

bool GetFeatureSpec(BinaryReader* r, FeatureSpec* v) {
  if (!GetStrings(r, &v->tables)) return false;
  uint64_t n = r->GetVarint();
  if (!CheckedCount(r, n)) return false;
  v->attributes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string rel = r->GetString();
    std::string attr = r->GetString();
    v->attributes.emplace_back(std::move(rel), std::move(attr));
  }
  n = r->GetVarint();
  if (!CheckedCount(r, n)) return false;
  v->predicates.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    FeatureSpec::Predicate p;
    p.relation = r->GetString();
    p.attribute = r->GetString();
    p.op = r->GetString();
    v->predicates.push_back(std::move(p));
  }
  v->user = GetOptString(r);
  v->max_execution_micros = GetOptZigzag(r);
  v->max_result_rows = GetOptVarint(r);
  v->min_result_rows = GetOptVarint(r);
  v->succeeded_only = GetBool(r);
  return !r->failed();
}

void PutStructure(BinaryWriter* w, const metaquery::StructuralPattern& v) {
  PutStrings(w, v.required_tables);
  PutStrings(w, v.forbidden_tables);
  PutStrings(w, v.required_predicate_skeletons);
  PutStrings(w, v.required_aggregates);
  PutOptBool(w, v.requires_subquery);
  PutOptBool(w, v.requires_group_by);
  PutOptInt(w, v.min_joins);
  PutOptInt(w, v.max_joins);
  PutOptInt(w, v.min_nesting_depth);
}

bool GetStructure(BinaryReader* r, metaquery::StructuralPattern* v) {
  if (!GetStrings(r, &v->required_tables)) return false;
  if (!GetStrings(r, &v->forbidden_tables)) return false;
  if (!GetStrings(r, &v->required_predicate_skeletons)) return false;
  if (!GetStrings(r, &v->required_aggregates)) return false;
  v->requires_subquery = GetOptBool(r);
  v->requires_group_by = GetOptBool(r);
  v->min_joins = GetOptInt(r);
  v->max_joins = GetOptInt(r);
  v->min_nesting_depth = GetOptInt(r);
  return !r->failed();
}

void PutDataSpec(BinaryWriter* w, const DataSpec& v) {
  w->PutVarint(v.examples.size());
  for (const DataExampleSpec& ex : v.examples) {
    w->PutVarint(ex.cells.size());
    for (const db::Value& cell : ex.cells) PutValue(w, cell);
    PutBool(w, ex.positive);
  }
  PutBool(w, v.reexecute);
  PutBool(w, v.skip_without_summary);
}

bool GetDataSpec(BinaryReader* r, DataSpec* v) {
  uint64_t n = r->GetVarint();
  if (!CheckedCount(r, n)) return false;
  v->examples.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DataExampleSpec ex;
    uint64_t cells = r->GetVarint();
    if (!CheckedCount(r, cells)) return false;
    ex.cells.reserve(cells);
    for (uint64_t c = 0; c < cells; ++c) {
      db::Value cell;
      if (!GetValue(r, &cell)) return false;
      ex.cells.push_back(std::move(cell));
    }
    ex.positive = GetBool(r);
    v->examples.push_back(std::move(ex));
  }
  v->reexecute = GetBool(r);
  v->skip_without_summary = GetBool(r);
  return !r->failed();
}

void PutSimilaritySpec(BinaryWriter* w, const SimilaritySpec& v) {
  w->PutString(v.probe_text);
  w->PutDouble(v.weights.feature);
  w->PutDouble(v.weights.text);
  w->PutDouble(v.weights.output);
  PutBool(w, v.candidates.use_lsh);
  w->PutVarint(v.candidates.lsh_min_log_size);
  w->PutVarint(v.candidates.probe_bands);
}

bool GetSimilaritySpec(BinaryReader* r, SimilaritySpec* v) {
  v->probe_text = r->GetString();
  v->weights.feature = r->GetDouble();
  v->weights.text = r->GetDouble();
  v->weights.output = r->GetDouble();
  v->candidates.use_lsh = GetBool(r);
  v->candidates.lsh_min_log_size = r->GetVarint();
  v->candidates.probe_bands = r->GetVarint();
  return !r->failed();
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kHello:
      return "Hello";
    case Op::kSearch:
      return "Search";
    case Op::kAppend:
      return "Append";
    case Op::kRewrite:
      return "Rewrite";
    case Op::kAnnotate:
      return "Annotate";
    case Op::kSetVisibility:
      return "SetVisibility";
    case Op::kDelete:
      return "Delete";
    case Op::kRecommend:
      return "Recommend";
    case Op::kBrowse:
      return "Browse";
    case Op::kShowSession:
      return "ShowSession";
    case Op::kStats:
      return "Stats";
    case Op::kCheckpoint:
      return "Checkpoint";
    case Op::kRegisterUser:
      return "RegisterUser";
    case Op::kMaintain:
      return "Maintain";
    case Op::kMetricsDump:
      return "MetricsDump";
    case Op::kReplSubscribe:
      return "ReplSubscribe";
    case Op::kReplStream:
      return "ReplStream";
    case Op::kReplAck:
      return "ReplAck";
  }
  return "Unknown";
}

void BeginRequest(BinaryWriter* w, uint64_t request_id, Op op) {
  w->PutVarint(request_id);
  w->PutU8(static_cast<uint8_t>(op));
}

void BeginResponse(BinaryWriter* w, uint64_t request_id, Op op) {
  w->PutVarint(request_id);
  w->PutU8(static_cast<uint8_t>(op));
  w->PutVarint(static_cast<uint64_t>(StatusCode::kOk));
  w->PutString("");
}

void EncodeErrorResponse(BinaryWriter* w, uint64_t request_id, Op op,
                         const Status& error) {
  w->PutVarint(request_id);
  w->PutU8(static_cast<uint8_t>(op));
  w->PutVarint(static_cast<uint64_t>(error.code()));
  w->PutString(error.message());
}

bool DecodeRequestEnvelope(std::string_view payload, RequestEnvelope* out) {
  BinaryReader r(payload);
  out->request_id = r.GetVarint();
  uint8_t op = r.GetU8();
  if (r.failed() || op < kMinOp || op > kMaxOp) return false;
  out->op = static_cast<Op>(op);
  out->body = payload.substr(payload.size() - r.remaining());
  return true;
}

bool DecodeResponseEnvelope(std::string_view payload, ResponseEnvelope* out) {
  BinaryReader r(payload);
  out->request_id = r.GetVarint();
  uint8_t op = r.GetU8();
  uint64_t code = r.GetVarint();
  out->message = r.GetString();
  if (r.failed() || op < kMinOp || op > kMaxOp ||
      code > static_cast<uint64_t>(StatusCode::kNotPrimary)) {
    return false;
  }
  out->op = static_cast<Op>(op);
  out->code = static_cast<StatusCode>(code);
  out->body = payload.substr(payload.size() - r.remaining());
  return true;
}

// --- hello -----------------------------------------------------------------

void EncodeHelloRequest(BinaryWriter* w, const HelloRequest& m) {
  w->PutVarint(m.protocol_version);
  w->PutString(m.client_name);
}

bool DecodeHelloRequest(BinaryReader* r, HelloRequest* m) {
  m->protocol_version = static_cast<uint32_t>(r->GetVarint());
  m->client_name = r->GetString();
  return !r->failed();
}

void EncodeHelloResponse(BinaryWriter* w, const HelloResponse& m) {
  w->PutVarint(m.protocol_version);
  w->PutString(m.server_version);
  w->PutVarint(m.store_size);
}

bool DecodeHelloResponse(BinaryReader* r, HelloResponse* m) {
  m->protocol_version = static_cast<uint32_t>(r->GetVarint());
  m->server_version = r->GetString();
  m->store_size = r->GetVarint();
  return !r->failed();
}

// --- search ----------------------------------------------------------------

void EncodeSearchRequest(BinaryWriter* w, const SearchRequest& m) {
  w->PutString(m.viewer);
  const SearchSpec& s = m.spec;
  PutBool(w, s.keyword.has_value());
  if (s.keyword.has_value()) {
    w->PutString(s.keyword->words);
    PutBool(w, s.keyword->match_all);
  }
  PutOptString(w, s.substring);
  PutBool(w, s.feature.has_value());
  if (s.feature.has_value()) PutFeatureSpec(w, *s.feature);
  PutBool(w, s.structure.has_value());
  if (s.structure.has_value()) PutStructure(w, *s.structure);
  PutBool(w, s.data.has_value());
  if (s.data.has_value()) PutDataSpec(w, *s.data);
  PutBool(w, s.similarity.has_value());
  if (s.similarity.has_value()) PutSimilaritySpec(w, *s.similarity);
  PutRanking(w, s.ranking);
  w->PutU8(static_cast<uint8_t>(s.order));
  w->PutVarint(s.limit);
  // Minor-1 trailing field: old decoders stop before it (their AtEnd
  // check tolerates trailing bytes only on the server side, which reads
  // requests through DecodeSearchRequest below and consumes it).
  PutBool(w, s.want_trace);
}

bool DecodeSearchRequest(BinaryReader* r, SearchRequest* m) {
  m->viewer = r->GetString();
  SearchSpec& s = m->spec;
  if (GetBool(r)) {
    s.keyword.emplace();
    s.keyword->words = r->GetString();
    s.keyword->match_all = GetBool(r);
  }
  s.substring = GetOptString(r);
  if (GetBool(r)) {
    s.feature.emplace();
    if (!GetFeatureSpec(r, &*s.feature)) return false;
  }
  if (GetBool(r)) {
    s.structure.emplace();
    if (!GetStructure(r, &*s.structure)) return false;
  }
  if (GetBool(r)) {
    s.data.emplace();
    if (!GetDataSpec(r, &*s.data)) return false;
  }
  if (GetBool(r)) {
    s.similarity.emplace();
    if (!GetSimilaritySpec(r, &*s.similarity)) return false;
  }
  GetRanking(r, &s.ranking);
  uint8_t order = r->GetU8();
  if (order > static_cast<uint8_t>(metaquery::ResultOrder::kLogOrder)) {
    r->Invalidate();
    return false;
  }
  s.order = static_cast<metaquery::ResultOrder>(order);
  s.limit = r->GetVarint();
  // Pre-minor-1 clients end the body here; want_trace defaults false.
  if (!r->AtEnd()) s.want_trace = GetBool(r);
  return !r->failed();
}

void EncodeSearchResult(BinaryWriter* w, const SearchResult& m) {
  w->PutVarint(m.matches.size());
  for (const SearchResult::Match& match : m.matches) {
    w->PutZigzag(match.id);
    w->PutDouble(match.similarity);
    w->PutDouble(match.score);
  }
  w->PutU8(m.generator);
  w->PutVarint(m.candidates_considered);
  // Minor-1 trailing block: present-flag, then the trace.
  PutBool(w, m.trace.has_value());
  if (m.trace.has_value()) {
    w->PutString(m.trace->generator);
    w->PutVarint(m.trace->counters.size());
    for (const auto& [name, value] : m.trace->counters) {
      w->PutString(name);
      w->PutVarint(value);
    }
    w->PutVarint(m.trace->spans_micros.size());
    for (const auto& [name, value] : m.trace->spans_micros) {
      w->PutString(name);
      w->PutVarint(value);
    }
  }
}

bool DecodeSearchResult(BinaryReader* r, SearchResult* m) {
  uint64_t n = r->GetVarint();
  if (!CheckedCount(r, n)) return false;
  m->matches.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SearchResult::Match match;
    match.id = r->GetZigzag();
    match.similarity = r->GetDouble();
    match.score = r->GetDouble();
    m->matches.push_back(match);
  }
  m->generator = r->GetU8();
  m->candidates_considered = r->GetVarint();
  // Old servers end the body here; no trace then.
  if (!r->AtEnd() && GetBool(r)) {
    m->trace.emplace();
    m->trace->generator = r->GetString();
    uint64_t nc = r->GetVarint();
    if (!CheckedCount(r, nc)) return false;
    m->trace->counters.reserve(nc);
    for (uint64_t i = 0; i < nc; ++i) {
      std::string name = r->GetString();
      uint64_t value = r->GetVarint();
      m->trace->counters.emplace_back(std::move(name), value);
    }
    uint64_t ns = r->GetVarint();
    if (!CheckedCount(r, ns)) return false;
    m->trace->spans_micros.reserve(ns);
    for (uint64_t i = 0; i < ns; ++i) {
      std::string name = r->GetString();
      uint64_t value = r->GetVarint();
      m->trace->spans_micros.emplace_back(std::move(name), value);
    }
  }
  return !r->failed();
}

metaquery::MetaQueryRequest ToMetaQueryRequest(const SearchSpec& spec,
                                               const storage::QueryRecord* probe) {
  metaquery::MetaQueryRequest req;
  if (spec.keyword.has_value()) {
    req.WithKeywords(spec.keyword->words, spec.keyword->match_all);
  }
  if (spec.substring.has_value()) req.WithSubstring(*spec.substring);
  if (spec.feature.has_value()) {
    metaquery::FeatureQuery fq;
    const FeatureSpec& f = *spec.feature;
    for (const std::string& t : f.tables) fq.UsesTable(t);
    for (const auto& [rel, attr] : f.attributes) fq.UsesAttribute(rel, attr);
    for (const FeatureSpec::Predicate& p : f.predicates) {
      fq.HasPredicateOn(p.relation, p.attribute, p.op);
    }
    if (f.user.has_value()) fq.ByUser(*f.user);
    if (f.max_execution_micros.has_value()) {
      fq.MaxExecutionMicros(*f.max_execution_micros);
    }
    if (f.max_result_rows.has_value()) fq.MaxResultRows(*f.max_result_rows);
    if (f.min_result_rows.has_value()) fq.MinResultRows(*f.min_result_rows);
    if (f.succeeded_only) fq.SucceededOnly();
    req.WithFeature(std::move(fq));
  }
  if (spec.structure.has_value()) req.WithStructure(*spec.structure);
  if (spec.data.has_value()) {
    std::vector<metaquery::DataExample> examples;
    examples.reserve(spec.data->examples.size());
    for (const DataExampleSpec& ex : spec.data->examples) {
      metaquery::DataExample e;
      e.cells = ex.cells;
      e.positive = ex.positive;
      examples.push_back(std::move(e));
    }
    metaquery::QueryByDataOptions options;
    options.skip_without_summary = spec.data->skip_without_summary;
    req.WithData(std::move(examples), options);
  }
  if (spec.similarity.has_value() && probe != nullptr) {
    req.SimilarTo(*probe, spec.similarity->weights, spec.similarity->candidates);
  }
  req.ranking = spec.ranking;
  req.order = spec.order;
  req.limit = spec.limit;
  return req;
}

// --- append ----------------------------------------------------------------

void EncodeAppendRequest(BinaryWriter* w, const AppendRequest& m) {
  w->PutString(m.user);
  w->PutString(m.sql);
  PutBool(w, m.execute);
}

bool DecodeAppendRequest(BinaryReader* r, AppendRequest* m) {
  m->user = r->GetString();
  m->sql = r->GetString();
  m->execute = GetBool(r);
  return !r->failed();
}

void EncodeAppendResult(BinaryWriter* w, const AppendResult& m) {
  w->PutZigzag(m.id);
  PutBool(w, m.succeeded);
  w->PutString(m.error);
  w->PutVarint(m.result_rows);
  w->PutZigzag(m.exec_micros);
}

bool DecodeAppendResult(BinaryReader* r, AppendResult* m) {
  m->id = r->GetZigzag();
  m->succeeded = GetBool(r);
  m->error = r->GetString();
  m->result_rows = r->GetVarint();
  m->exec_micros = r->GetZigzag();
  return !r->failed();
}

// --- small record ops ------------------------------------------------------

void EncodeRewriteRequest(BinaryWriter* w, const RewriteRequest& m) {
  w->PutZigzag(m.id);
  w->PutString(m.new_text);
}

bool DecodeRewriteRequest(BinaryReader* r, RewriteRequest* m) {
  m->id = r->GetZigzag();
  m->new_text = r->GetString();
  return !r->failed();
}

void EncodeAnnotateRequest(BinaryWriter* w, const AnnotateRequest& m) {
  w->PutZigzag(m.id);
  w->PutString(m.author);
  w->PutString(m.text);
  w->PutString(m.fragment);
}

bool DecodeAnnotateRequest(BinaryReader* r, AnnotateRequest* m) {
  m->id = r->GetZigzag();
  m->author = r->GetString();
  m->text = r->GetString();
  m->fragment = r->GetString();
  return !r->failed();
}

void EncodeSetVisibilityRequest(BinaryWriter* w, const SetVisibilityRequest& m) {
  w->PutString(m.requester);
  w->PutZigzag(m.id);
  w->PutU8(static_cast<uint8_t>(m.visibility));
}

bool DecodeSetVisibilityRequest(BinaryReader* r, SetVisibilityRequest* m) {
  m->requester = r->GetString();
  m->id = r->GetZigzag();
  uint8_t vis = r->GetU8();
  if (vis > static_cast<uint8_t>(storage::Visibility::kPublic)) {
    r->Invalidate();
    return false;
  }
  m->visibility = static_cast<storage::Visibility>(vis);
  return !r->failed();
}

void EncodeDeleteRequest(BinaryWriter* w, const DeleteRequest& m) {
  w->PutString(m.requester);
  w->PutZigzag(m.id);
  PutBool(w, m.is_admin);
}

bool DecodeDeleteRequest(BinaryReader* r, DeleteRequest* m) {
  m->requester = r->GetString();
  m->id = r->GetZigzag();
  m->is_admin = GetBool(r);
  return !r->failed();
}

void EncodeRegisterUserRequest(BinaryWriter* w, const RegisterUserRequest& m) {
  w->PutString(m.user);
  PutStrings(w, m.groups);
}

bool DecodeRegisterUserRequest(BinaryReader* r, RegisterUserRequest* m) {
  m->user = r->GetString();
  return GetStrings(r, &m->groups) && !r->failed();
}

// --- recommend / browse ----------------------------------------------------

void EncodeRecommendRequest(BinaryWriter* w, const RecommendRequest& m) {
  w->PutString(m.viewer);
  w->PutString(m.sql_text);
  w->PutVarint(m.k);
}

bool DecodeRecommendRequest(BinaryReader* r, RecommendRequest* m) {
  m->viewer = r->GetString();
  m->sql_text = r->GetString();
  m->k = r->GetVarint();
  return !r->failed();
}

void EncodeRecommendResult(BinaryWriter* w, const RecommendResult& m) {
  w->PutVarint(m.items.size());
  for (const RecommendationItem& item : m.items) {
    w->PutZigzag(item.id);
    w->PutDouble(item.score);
    w->PutDouble(item.similarity);
    w->PutString(item.text);
    w->PutString(item.diff);
    w->PutString(item.annotation);
  }
}

bool DecodeRecommendResult(BinaryReader* r, RecommendResult* m) {
  uint64_t n = r->GetVarint();
  if (!CheckedCount(r, n)) return false;
  m->items.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    RecommendationItem item;
    item.id = r->GetZigzag();
    item.score = r->GetDouble();
    item.similarity = r->GetDouble();
    item.text = r->GetString();
    item.diff = r->GetString();
    item.annotation = r->GetString();
    m->items.push_back(std::move(item));
  }
  return !r->failed();
}

void EncodeBrowseRequest(BinaryWriter* w, const BrowseRequest& m) {
  w->PutString(m.viewer);
  w->PutVarint(m.max_sessions);
}

bool DecodeBrowseRequest(BinaryReader* r, BrowseRequest* m) {
  m->viewer = r->GetString();
  m->max_sessions = r->GetVarint();
  return !r->failed();
}

void EncodeShowSessionRequest(BinaryWriter* w, const ShowSessionRequest& m) {
  w->PutString(m.viewer);
  w->PutZigzag(m.session_id);
}

bool DecodeShowSessionRequest(BinaryReader* r, ShowSessionRequest* m) {
  m->viewer = r->GetString();
  m->session_id = r->GetZigzag();
  return !r->failed();
}

void EncodeTextResult(BinaryWriter* w, const TextResult& m) {
  w->PutString(m.text);
}

bool DecodeTextResult(BinaryReader* r, TextResult* m) {
  m->text = r->GetString();
  return !r->failed();
}

// --- stats / admin ---------------------------------------------------------

void EncodeStatsResult(BinaryWriter* w, const StatsResult& m) {
  w->PutString(m.server_version);
  w->PutVarint(m.uptime_micros);
  w->PutVarint(m.active_connections);
  w->PutVarint(m.total_connections);
  w->PutVarint(m.rejected_connections);
  w->PutVarint(m.protocol_errors);
  w->PutVarint(m.store_size);
  w->PutVarint(m.published_sequence);
  w->PutVarint(m.per_op.size());
  for (const OpStatsRow& row : m.per_op) {
    w->PutU8(row.op);
    w->PutVarint(row.count);
    w->PutVarint(row.errors);
    w->PutVarint(row.bytes_in);
    w->PutVarint(row.bytes_out);
    w->PutVarint(row.p50_micros);
    w->PutVarint(row.p99_micros);
    w->PutVarint(row.max_micros);
  }
  // Minor-1 trailing fields (durability / maintenance health).
  PutBool(w, m.durable_read_only);
  w->PutVarint(m.checkpoint_failure_streak);
  w->PutVarint(m.checkpoints_backed_off);
  w->PutVarint(m.arena_garbage_bytes);
  // Minor-2 trailing fields (replication).
  w->PutU8(m.role);
  w->PutString(m.primary_address);
  PutBool(w, m.repl_connected);
  w->PutVarint(m.repl_applied_sequence);
  w->PutVarint(m.repl_primary_sequence);
  w->PutVarint(m.repl_followers);
  w->PutVarint(m.repl_min_acked_sequence);
  w->PutVarint(m.repl_backlog_bytes);
}

bool DecodeStatsResult(BinaryReader* r, StatsResult* m) {
  m->server_version = r->GetString();
  m->uptime_micros = r->GetVarint();
  m->active_connections = r->GetVarint();
  m->total_connections = r->GetVarint();
  m->rejected_connections = r->GetVarint();
  m->protocol_errors = r->GetVarint();
  m->store_size = r->GetVarint();
  m->published_sequence = r->GetVarint();
  uint64_t n = r->GetVarint();
  if (!CheckedCount(r, n)) return false;
  m->per_op.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    OpStatsRow row;
    row.op = r->GetU8();
    row.count = r->GetVarint();
    row.errors = r->GetVarint();
    row.bytes_in = r->GetVarint();
    row.bytes_out = r->GetVarint();
    row.p50_micros = r->GetVarint();
    row.p99_micros = r->GetVarint();
    row.max_micros = r->GetVarint();
    m->per_op.push_back(row);
  }
  // Pre-minor-1 servers end the body here; the defaults stand.
  if (!r->AtEnd()) {
    m->durable_read_only = GetBool(r);
    m->checkpoint_failure_streak = r->GetVarint();
    m->checkpoints_backed_off = r->GetVarint();
    m->arena_garbage_bytes = r->GetVarint();
  }
  // Pre-minor-2 servers end the body here; role 0 = standalone.
  if (!r->AtEnd()) {
    m->role = r->GetU8();
    m->primary_address = r->GetString();
    m->repl_connected = GetBool(r);
    m->repl_applied_sequence = r->GetVarint();
    m->repl_primary_sequence = r->GetVarint();
    m->repl_followers = r->GetVarint();
    m->repl_min_acked_sequence = r->GetVarint();
    m->repl_backlog_bytes = r->GetVarint();
  }
  return !r->failed();
}

void EncodeMaintainRequest(BinaryWriter* w, const MaintainRequest& m) {
  PutBool(w, m.run_mining);
}

bool DecodeMaintainRequest(BinaryReader* r, MaintainRequest* m) {
  m->run_mining = GetBool(r);
  return !r->failed();
}

// --- replication -----------------------------------------------------------

void EncodeReplSubscribeRequest(BinaryWriter* w, const ReplSubscribeRequest& m) {
  w->PutVarint(m.from_sequence);
  w->PutString(m.follower_name);
  PutBool(w, m.force_snapshot);
}

bool DecodeReplSubscribeRequest(BinaryReader* r, ReplSubscribeRequest* m) {
  m->from_sequence = r->GetVarint();
  m->follower_name = r->GetString();
  m->force_snapshot = GetBool(r);
  return !r->failed();
}

void EncodeReplSubscribeResult(BinaryWriter* w, const ReplSubscribeResult& m) {
  PutBool(w, m.snapshot_bootstrap);
  w->PutVarint(m.primary_sequence);
}

bool DecodeReplSubscribeResult(BinaryReader* r, ReplSubscribeResult* m) {
  m->snapshot_bootstrap = GetBool(r);
  m->primary_sequence = r->GetVarint();
  return !r->failed();
}

void EncodeReplFrameBatch(BinaryWriter* w, const ReplFrameBatch& m) {
  w->PutVarint(m.frames.size());
  for (const ReplFramed& f : m.frames) {
    w->PutFixed32(f.crc32);
    w->PutString(f.frame);
  }
  w->PutVarint(m.primary_sequence);
}

bool DecodeReplFrameBatch(BinaryReader* r, ReplFrameBatch* m) {
  uint64_t n = r->GetVarint();
  if (!CheckedCount(r, n)) return false;
  m->frames.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ReplFramed f;
    f.crc32 = r->GetFixed32();
    f.frame = r->GetString();
    m->frames.push_back(std::move(f));
  }
  m->primary_sequence = r->GetVarint();
  return !r->failed();
}

void EncodeReplHeartbeat(BinaryWriter* w, const ReplHeartbeat& m) {
  w->PutVarint(m.primary_sequence);
}

bool DecodeReplHeartbeat(BinaryReader* r, ReplHeartbeat* m) {
  m->primary_sequence = r->GetVarint();
  return !r->failed();
}

void EncodeReplSnapshotBegin(BinaryWriter* w, const ReplSnapshotBegin& m) {
  w->PutVarint(m.covered_sequence);
  w->PutVarint(m.total_bytes);
  w->PutFixed32(m.crc32);
}

bool DecodeReplSnapshotBegin(BinaryReader* r, ReplSnapshotBegin* m) {
  m->covered_sequence = r->GetVarint();
  m->total_bytes = r->GetVarint();
  m->crc32 = r->GetFixed32();
  return !r->failed();
}

void EncodeReplSnapshotChunk(BinaryWriter* w, const ReplSnapshotChunk& m) {
  w->PutString(m.data);
}

bool DecodeReplSnapshotChunk(BinaryReader* r, ReplSnapshotChunk* m) {
  m->data = r->GetString();
  return !r->failed();
}

void EncodeReplAckRequest(BinaryWriter* w, const ReplAckRequest& m) {
  w->PutVarint(m.acked_sequence);
}

bool DecodeReplAckRequest(BinaryReader* r, ReplAckRequest* m) {
  m->acked_sequence = r->GetVarint();
  return !r->failed();
}

std::string FormatNotPrimary(const std::string& leader) {
  if (leader.empty()) return "not primary";
  return "not primary; leader=" + leader;
}

std::string ParseNotPrimaryLeader(const std::string& message) {
  static constexpr char kTag[] = "leader=";
  size_t pos = message.find(kTag);
  if (pos == std::string::npos) return "";
  size_t start = pos + sizeof(kTag) - 1;
  size_t end = message.find_first_of(" ;,", start);
  if (end == std::string::npos) end = message.size();
  return message.substr(start, end - start);
}

}  // namespace cqms::net
