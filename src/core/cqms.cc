#include "core/cqms.h"

namespace cqms {

namespace {

const Clock* ResolveClock(const CqmsOptions& options,
                          std::unique_ptr<Clock>* owned) {
  if (options.clock != nullptr) return options.clock;
  *owned = std::make_unique<SystemClock>();
  return owned->get();
}

}  // namespace

Cqms::Cqms(CqmsOptions options)
    : clock_(ResolveClock(options, &owned_clock_)),
      database_(clock_),
      store_(),
      profiler_(&database_, &store_, clock_, options.profiler),
      metaquery_(&store_),
      miner_(&store_, clock_, options.miner),
      maintenance_(&database_, &store_, clock_, options.maintenance),
      composer_(&store_, &database_, &miner_, options.assist) {}

Status Cqms::EnableDurability(const std::string& dir,
                              storage::DurabilityOptions options) {
  if (durable_ != nullptr) {
    return Status::InvalidArgument("durability is already enabled");
  }
  auto durable = std::make_unique<storage::DurableStore>(&store_, dir, options);
  CQMS_RETURN_IF_ERROR(durable->Open());
  durable_ = std::move(durable);
  maintenance_.AttachDurability(durable_.get());
  return Status::Ok();
}

Status Cqms::Annotate(storage::QueryId id, const std::string& author,
                      const std::string& text, const std::string& fragment) {
  storage::Annotation note;
  note.author = author;
  note.timestamp = clock_->Now();
  note.text = text;
  note.fragment = fragment;
  if (!fragment.empty()) {
    const storage::QueryRecord* r = store_.Get(id);
    if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));
    if (r->text.find(fragment) == std::string::npos) {
      return Status::InvalidArgument(
          "fragment is not a substring of the query text");
    }
  }
  return store_.Annotate(id, std::move(note));
}

bool Cqms::ShouldRequestAnnotation(storage::QueryId id,
                                   size_t table_threshold) const {
  const storage::QueryRecord* r = store_.Get(id);
  if (r == nullptr || r->parse_failed()) return false;
  if (!r->annotations.empty()) return false;
  return r->components.tables.size() >= table_threshold ||
         r->components.has_subquery;
}

Result<std::string> Cqms::ShowSession(const std::string& viewer,
                                      storage::SessionId session_id) const {
  const miner::Session* session = miner_.FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("no session " + std::to_string(session_id) +
                            " (has mining run?)");
  }
  bool any_visible = false;
  for (storage::QueryId id : session->queries) {
    if (store_.Visible(viewer, id)) {
      any_visible = true;
      break;
    }
  }
  if (!any_visible) {
    return Status::PermissionDenied("session " + std::to_string(session_id) +
                                    " is not visible to " + viewer);
  }
  return client::RenderSessionAscii(store_, *session);
}

std::string Cqms::Tutorial() const {
  auto sections = miner::GenerateTutorial(store_, database_.catalog(),
                                          miner_.popularity());
  return miner::RenderTutorial(store_, sections);
}

Status Cqms::SetVisibility(const std::string& requester, storage::QueryId id,
                           storage::Visibility visibility) {
  const storage::QueryRecord* r = store_.Get(id);
  if (r == nullptr) return Status::NotFound("no query " + std::to_string(id));
  return store_.acl().SetVisibility(id, r->user, requester, visibility);
}

}  // namespace cqms
