#ifndef CQMS_CORE_CQMS_H_
#define CQMS_CORE_CQMS_H_

#include <memory>
#include <string>
#include <vector>

#include "assist/assisted_composer.h"
#include "client/browse.h"
#include "client/session_view.h"
#include "common/clock.h"
#include "db/database.h"
#include "maintain/query_maintenance.h"
#include "metaquery/meta_query_executor.h"
#include "miner/query_miner.h"
#include "miner/tutorial.h"
#include "profiler/query_profiler.h"
#include "storage/durable_store.h"
#include "storage/persistence.h"
#include "storage/query_store.h"
#include "storage/snapshot_v2.h"

namespace cqms {

/// Top-level configuration of a CQMS instance.
struct CqmsOptions {
  /// External clock; null = wall clock (owned internally).
  const Clock* clock = nullptr;
  profiler::ProfilerOptions profiler;
  miner::QueryMinerOptions miner;
  maintain::MaintenanceOptions maintenance;
  assist::AssistOptions assist;
};

/// The Collaborative Query Management System: the server of Figure 4,
/// wiring the Query Profiler and Meta-Query Executor (online) with the
/// Query Miner and Query Maintenance (background) over a shared Query
/// Storage, on top of the embedded relational engine.
///
/// The API groups methods by the paper's four interaction modes (§2).
class Cqms {
 public:
  explicit Cqms(CqmsOptions options = {});

  /// The underlying DBMS: load data / evolve schemas through this.
  db::Database* database() { return &database_; }
  const db::Database& database() const { return database_; }

  storage::QueryStore* store() { return &store_; }
  const storage::QueryStore& store() const { return store_; }

  const Clock& clock() const { return *clock_; }

  // --- user management -----------------------------------------------------

  /// Registers a user with their collaboration groups.
  void RegisterUser(const std::string& user, const std::vector<std::string>& groups) {
    store_.acl().AddUser(user, groups);
  }

  // --- Traditional Interaction Mode (§2.1) ----------------------------------

  /// Executes a query with background profiling.
  profiler::ProfiledExecution Execute(const std::string& user,
                                      std::string_view sql_text) {
    return profiler_.ExecuteAndProfile(sql_text, user);
  }

  /// The profiler itself, for callers that need the non-executing entry
  /// points (LogOnly imports; the network server's Append op).
  profiler::QueryProfiler& profiler() { return profiler_; }

  /// Annotates a query (whole query, or a fragment of its text).
  Status Annotate(storage::QueryId id, const std::string& author,
                  const std::string& text, const std::string& fragment = "");

  /// §2.1: the CQMS "occasionally even requests query annotations ...
  /// for queries that are difficult to re-use without documentation".
  /// True when the query is complex (many tables or nesting) and not yet
  /// annotated.
  bool ShouldRequestAnnotation(storage::QueryId id, size_t table_threshold = 3) const;

  // --- Search & Browse Interaction Mode (§2.2) ------------------------------

  metaquery::MetaQueryExecutor& metaquery() { return metaquery_; }

  /// The unified meta-query entry point: any conjunction of composable
  /// predicates (keywords, substring, features, structure, data
  /// examples, similarity-to-probe) ranked by one RankingOptions — e.g.
  /// "queries touching `lineage` with skeleton X, similar to this probe,
  /// ranked by popularity" as a single request.
  metaquery::MetaQueryResponse Search(
      const std::string& viewer,
      const metaquery::MetaQueryRequest& request) const {
    return metaquery_.Execute(viewer, request);
  }

  /// Session-grouped log summary for `viewer`.
  std::string BrowseLog(const std::string& viewer, size_t max_sessions = 20) const {
    return client::RenderLogSummary(store_, miner_.sessions(), viewer, max_sessions);
  }

  /// Figure-2 ASCII rendering of one session (viewer must see at least
  /// one of its queries).
  Result<std::string> ShowSession(const std::string& viewer,
                                  storage::SessionId session_id) const;

  std::string ShowQuery(storage::QueryId id) const {
    return client::RenderQueryDetails(store_, id);
  }

  // --- Assisted Interaction Mode (§2.3) --------------------------------------

  /// Per-keystroke assistance: completions, corrections, recommendations.
  assist::AssistResponse Assist(const std::string& viewer,
                                const std::string& partial_text) const {
    return composer_.Assist(viewer, partial_text);
  }

  /// Auto-generated tutorial for the current dataset (§2.3).
  std::string Tutorial() const;

  // --- Administrative Interaction Mode (§2.4) ---------------------------------

  Status SetVisibility(const std::string& requester, storage::QueryId id,
                       storage::Visibility visibility);
  Status DeleteQuery(const std::string& requester, storage::QueryId id,
                     bool is_admin = false) {
    return store_.Delete(id, requester, is_admin);
  }

  /// Background cycles (a deployment would run these on timers).
  maintain::MaintenanceReport RunMaintenance() { return maintenance_.RunAll(); }
  void RunMining() { miner_.RunAll(); }

  /// Delta-aware mining refresh: when the refresh threshold is met,
  /// folds the change feed accumulated since the last run into every
  /// mining output (sessions resume from the tail, popularity and
  /// association transactions update in place, clustering reuses the
  /// persistent distance cache) — see MiningStats() for what it did.
  bool MaybeRefreshMining() { return miner_.MaybeRefresh(); }

  const miner::QueryMiner& miner() const { return miner_; }

  /// Delta sizes and distance-cache effectiveness of the last mining
  /// run (operator telemetry: pairs_reused / pairs_enumerated is the
  /// cache hit rate an append-heavy deployment should see near 1).
  const miner::MinerRefreshStats& MiningStats() const {
    return miner_.last_refresh_stats();
  }

  /// Compacts the scoring-column arenas now, returning bytes reclaimed;
  /// RunMaintenance() also does this automatically past the
  /// MaintenanceOptions::compact_arena_min_garbage threshold.
  size_t CompactScoringArenas() { return store_.CompactScoringArenas(); }

  /// Snapshot persistence of the query log (binary v2; LoadSnapshot
  /// reads both formats, so older text snapshots remain loadable).
  /// With concurrent reads enabled, the snapshot encodes from the
  /// current published view — a consistent mutation prefix — instead of
  /// the live structures, so it may run off the writer thread.
  Status SaveLog(const std::string& path) const {
    if (store_.views_enabled()) {
      std::shared_ptr<const storage::ReadViewState> view = store_.SharedView();
      return storage::SaveSnapshotV2(*view, path);
    }
    return storage::SaveSnapshotV2(store_, path);
  }

  // --- concurrent reads ----------------------------------------------------

  /// Turns on the store's epoch-published read-view pipeline
  /// (docs/concurrency.md): from here on, Search / metaquery() calls
  /// execute against immutable published snapshots and are safe from
  /// any number of threads concurrently with this instance's writer
  /// thread (Execute, maintenance, mining). Call from the writer
  /// thread, typically right after construction or restore.
  void EnableConcurrentReads(storage::ViewOptions options = {}) {
    store_.EnableViews(options);
  }

  /// Refcounted handle on the latest published view (null until
  /// EnableConcurrentReads) — for long-lived consumers like backups.
  std::shared_ptr<const storage::ReadViewState> CurrentReadView() const {
    return store_.SharedView();
  }

  // --- durability ----------------------------------------------------------

  /// Enables crash-safe storage under `dir`: restores any existing
  /// snapshot (v2 binary or legacy v1 text), replays the WAL tail, and
  /// write-ahead-logs every subsequent mutation. Must be called before
  /// any query is logged *and* before any user is registered (the
  /// store and its ACL must be pristine — earlier state would exist
  /// only in memory and evaporate at the next recovery). Once enabled,
  /// RunMaintenance() checkpoints automatically when the WAL crosses
  /// its thresholds; Checkpoint() forces one.
  ///
  /// A non-OK return means the on-disk state was unusable (corrupt
  /// snapshot or WAL). A corrupt snapshot can abort mid-restore, so
  /// the store may be left *partially* populated — discard this Cqms
  /// instance rather than continuing to serve from it; nothing it logs
  /// afterwards would be durable.
  ///
  /// All I/O goes through `options.env` (null = the real POSIX
  /// filesystem); tests inject a storage::FaultInjectingEnv there to
  /// exercise crash and error paths deterministically.
  Status EnableDurability(const std::string& dir,
                          storage::DurabilityOptions options = {});

  /// Forces a snapshot + WAL truncation now. Durability must be enabled.
  Status Checkpoint() {
    if (durable_ == nullptr) {
      return Status::InvalidArgument("durability is not enabled");
    }
    return durable_->Checkpoint();
  }

  /// The durability engine, when enabled (WAL stats, paths); else null.
  const storage::DurableStore* durable() const { return durable_.get(); }

  /// Mutable handle for writer-thread wiring (the replication shipper
  /// registers its WAL hook and reads segment state through it).
  storage::DurableStore* durable_store() { return durable_.get(); }

 private:
  std::unique_ptr<Clock> owned_clock_;
  const Clock* clock_;

  db::Database database_;
  storage::QueryStore store_;
  std::unique_ptr<storage::DurableStore> durable_;
  profiler::QueryProfiler profiler_;
  metaquery::MetaQueryExecutor metaquery_;
  miner::QueryMiner miner_;
  maintain::QueryMaintenance maintenance_;
  assist::AssistedComposer composer_;
};

}  // namespace cqms

#endif  // CQMS_CORE_CQMS_H_
