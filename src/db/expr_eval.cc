#include "db/expr_eval.h"

#include <cmath>

#include "common/string_util.h"
#include "db/database.h"
#include "sql/printer.h"

namespace cqms::db {

namespace {

/// Kleene three-valued logic encoding: -1 unknown, 0 false, 1 true.
int ToTernary(const Value& v) {
  if (v.is_null()) return -1;
  if (v.type() == ValueType::kBool) return v.AsBool() ? 1 : 0;
  // Numeric truthiness (nonzero == true) for robustness.
  if (v.is_numeric()) return v.AsDouble() != 0 ? 1 : 0;
  return -1;
}

}  // namespace

int Layout::Find(const std::string& qualifier, const std::string& column) const {
  int found = -1;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const auto& [q, c] = slots_[i];
    if (c != column) continue;
    if (!qualifier.empty() && q != qualifier) continue;
    if (found >= 0) return -2;  // ambiguous
    found = static_cast<int>(i);
  }
  return found;
}

std::vector<int> Layout::SlotsForQualifier(const std::string& qualifier) const {
  std::vector<int> out;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].first == qualifier) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool Evaluator::LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard matcher with backtracking over the last `%`.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> Evaluator::EvalColumn(const sql::Expr& expr, const Env& env) const {
  std::string qualifier = ToLower(expr.table);
  std::string column = ToLower(expr.column);
  for (const Env* e = &env; e != nullptr; e = e->parent) {
    if (e->layout == nullptr) continue;
    int idx = e->layout->Find(qualifier, column);
    if (idx == -2) {
      return Status::BindError("ambiguous column reference: " + column);
    }
    if (idx >= 0) return (*e->row)[idx];
  }
  return Status::BindError("unknown column: " +
                           (qualifier.empty() ? column : qualifier + "." + column));
}

Result<Value> Evaluator::EvalBinary(const sql::Expr& expr, const Env& env) const {
  using sql::BinaryOp;
  // AND/OR get short-circuit Kleene treatment.
  if (expr.bop == BinaryOp::kAnd || expr.bop == BinaryOp::kOr) {
    CQMS_ASSIGN_OR_RETURN(Value lv, Eval(*expr.left, env));
    int l = ToTernary(lv);
    if (expr.bop == BinaryOp::kAnd && l == 0) return Value::Bool(false);
    if (expr.bop == BinaryOp::kOr && l == 1) return Value::Bool(true);
    CQMS_ASSIGN_OR_RETURN(Value rv, Eval(*expr.right, env));
    int r = ToTernary(rv);
    if (expr.bop == BinaryOp::kAnd) {
      if (r == 0) return Value::Bool(false);
      if (l == 1 && r == 1) return Value::Bool(true);
      return Value::Null();
    }
    if (r == 1) return Value::Bool(true);
    if (l == 0 && r == 0) return Value::Bool(false);
    return Value::Null();
  }

  CQMS_ASSIGN_OR_RETURN(Value lv, Eval(*expr.left, env));
  CQMS_ASSIGN_OR_RETURN(Value rv, Eval(*expr.right, env));

  switch (expr.bop) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      if (!lv.is_numeric() || !rv.is_numeric()) {
        return Status::ExecutionError("arithmetic on non-numeric value");
      }
      bool both_int =
          lv.type() == ValueType::kInt && rv.type() == ValueType::kInt;
      if (expr.bop == BinaryOp::kDiv) {
        double denom = rv.AsDouble();
        if (denom == 0) return Value::Null();  // SQL engines vary; NULL is safe.
        if (both_int && lv.AsInt() % rv.AsInt() == 0) {
          return Value::Int(lv.AsInt() / rv.AsInt());
        }
        return Value::Double(lv.AsDouble() / denom);
      }
      if (expr.bop == BinaryOp::kMod) {
        if (!both_int) return Status::ExecutionError("modulo requires integers");
        if (rv.AsInt() == 0) return Value::Null();
        return Value::Int(lv.AsInt() % rv.AsInt());
      }
      if (both_int) {
        int64_t a = lv.AsInt(), b = rv.AsInt();
        switch (expr.bop) {
          case BinaryOp::kAdd: return Value::Int(a + b);
          case BinaryOp::kSub: return Value::Int(a - b);
          default: return Value::Int(a * b);
        }
      }
      double a = lv.AsDouble(), b = rv.AsDouble();
      switch (expr.bop) {
        case BinaryOp::kAdd: return Value::Double(a + b);
        case BinaryOp::kSub: return Value::Double(a - b);
        default: return Value::Double(a * b);
      }
    }
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      int cmp = lv.Compare(rv);
      switch (expr.bop) {
        case BinaryOp::kEq: return Value::Bool(cmp == 0);
        case BinaryOp::kNeq: return Value::Bool(cmp != 0);
        case BinaryOp::kLt: return Value::Bool(cmp < 0);
        case BinaryOp::kLe: return Value::Bool(cmp <= 0);
        case BinaryOp::kGt: return Value::Bool(cmp > 0);
        default: return Value::Bool(cmp >= 0);
      }
    }
    case BinaryOp::kLike:
    case BinaryOp::kNotLike: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      if (lv.type() != ValueType::kString || rv.type() != ValueType::kString) {
        return Status::ExecutionError("LIKE requires string operands");
      }
      bool match = LikeMatch(lv.AsString(), rv.AsString());
      return Value::Bool(expr.bop == BinaryOp::kLike ? match : !match);
    }
    case BinaryOp::kConcat: {
      if (lv.is_null() || rv.is_null()) return Value::Null();
      return Value::String(lv.ToString() + rv.ToString());
    }
    default:
      return Status::Internal("unhandled binary operator");
  }
}

Result<Value> Evaluator::EvalFunction(const sql::Expr& expr, const Env& env) const {
  const std::string& name = expr.function_name;

  // Aggregates must have been pre-computed by the executor and exposed
  // through the environment.
  if (sql::IsAggregateFunction(name)) {
    for (const Env* e = &env; e != nullptr; e = e->parent) {
      if (e->aggregates == nullptr) continue;
      auto it = e->aggregates->find(sql::PrintExpr(expr, {}));
      if (it != e->aggregates->end()) return it->second;
    }
    return Status::BindError("aggregate function " + name +
                             " used outside an aggregation context");
  }

  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const auto& a : expr.args) {
    CQMS_ASSIGN_OR_RETURN(Value v, Eval(*a, env));
    args.push_back(std::move(v));
  }

  auto require_args = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::ExecutionError(name + " expects " + std::to_string(n) +
                                    " argument(s)");
    }
    return Status::Ok();
  };

  if (name == "UPPER" || name == "LOWER") {
    CQMS_RETURN_IF_ERROR(require_args(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() != ValueType::kString) {
      return Status::ExecutionError(name + " requires a string");
    }
    return Value::String(name == "UPPER" ? ToUpper(args[0].AsString())
                                         : ToLower(args[0].AsString()));
  }
  if (name == "LENGTH") {
    CQMS_RETURN_IF_ERROR(require_args(1));
    if (args[0].is_null()) return Value::Null();
    return Value::Int(static_cast<int64_t>(args[0].ToString().size()));
  }
  if (name == "ABS") {
    CQMS_RETURN_IF_ERROR(require_args(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == ValueType::kInt) {
      return Value::Int(std::abs(args[0].AsInt()));
    }
    if (args[0].type() == ValueType::kDouble) {
      return Value::Double(std::fabs(args[0].AsDouble()));
    }
    return Status::ExecutionError("ABS requires a numeric argument");
  }
  if (name == "ROUND") {
    if (args.size() != 1 && args.size() != 2) {
      return Status::ExecutionError("ROUND expects 1 or 2 arguments");
    }
    if (args[0].is_null()) return Value::Null();
    if (!args[0].is_numeric()) {
      return Status::ExecutionError("ROUND requires a numeric argument");
    }
    int64_t digits = args.size() == 2 && !args[1].is_null() ? args[1].AsInt() : 0;
    double scale = std::pow(10.0, static_cast<double>(digits));
    double rounded = std::round(args[0].AsDouble() * scale) / scale;
    if (digits <= 0) return Value::Double(rounded);
    return Value::Double(rounded);
  }
  if (name == "SUBSTR" || name == "SUBSTRING") {
    if (args.size() != 2 && args.size() != 3) {
      return Status::ExecutionError("SUBSTR expects 2 or 3 arguments");
    }
    if (args[0].is_null()) return Value::Null();
    const std::string& s = args[0].AsString();
    int64_t start = args[1].is_null() ? 1 : args[1].AsInt();  // 1-based
    if (start < 1) start = 1;
    size_t begin = static_cast<size_t>(start - 1);
    if (begin >= s.size()) return Value::String("");
    size_t len = s.size() - begin;
    if (args.size() == 3 && !args[2].is_null()) {
      int64_t want = args[2].AsInt();
      if (want < 0) want = 0;
      len = std::min(len, static_cast<size_t>(want));
    }
    return Value::String(s.substr(begin, len));
  }
  if (name == "COALESCE") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  return Status::ExecutionError("unknown function: " + name);
}

Result<Value> Evaluator::Eval(const sql::Expr& expr, const Env& env) const {
  using sql::ExprKind;
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return Value::FromLiteral(expr.literal);
    case ExprKind::kColumnRef:
      return EvalColumn(expr, env);
    case ExprKind::kStar:
      return Status::ExecutionError("'*' is not a value expression");
    case ExprKind::kUnary: {
      CQMS_ASSIGN_OR_RETURN(Value v, Eval(*expr.left, env));
      if (expr.uop == sql::UnaryOp::kNot) {
        int t = ToTernary(v);
        if (t < 0) return Value::Null();
        return Value::Bool(t == 0);
      }
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt) return Value::Int(-v.AsInt());
      if (v.type() == ValueType::kDouble) return Value::Double(-v.AsDouble());
      return Status::ExecutionError("negation requires a numeric value");
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, env);
    case ExprKind::kFunctionCall:
      return EvalFunction(expr, env);
    case ExprKind::kInList: {
      CQMS_ASSIGN_OR_RETURN(Value needle, Eval(*expr.left, env));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (const auto& item : expr.in_list) {
        CQMS_ASSIGN_OR_RETURN(Value v, Eval(*item, env));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (needle.Compare(v) == 0) {
          return Value::Bool(!expr.negated);
        }
      }
      if (saw_null) return Value::Null();
      return Value::Bool(expr.negated);
    }
    case ExprKind::kInSubquery: {
      if (!subquery_runner_) {
        return Status::Unsupported("subqueries not supported in this context");
      }
      CQMS_ASSIGN_OR_RETURN(Value needle, Eval(*expr.left, env));
      if (needle.is_null()) return Value::Null();
      CQMS_ASSIGN_OR_RETURN(QueryResult sub, subquery_runner_(*expr.subquery, &env));
      if (!sub.rows.empty() && sub.rows[0].size() != 1) {
        return Status::ExecutionError("IN subquery must produce one column");
      }
      bool saw_null = false;
      for (const Row& r : sub.rows) {
        if (r[0].is_null()) {
          saw_null = true;
          continue;
        }
        if (needle.Compare(r[0]) == 0) return Value::Bool(!expr.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(expr.negated);
    }
    case ExprKind::kBetween: {
      CQMS_ASSIGN_OR_RETURN(Value v, Eval(*expr.left, env));
      CQMS_ASSIGN_OR_RETURN(Value lo, Eval(*expr.low, env));
      CQMS_ASSIGN_OR_RETURN(Value hi, Eval(*expr.high, env));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in_range = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      return Value::Bool(expr.negated ? !in_range : in_range);
    }
    case ExprKind::kIsNull: {
      CQMS_ASSIGN_OR_RETURN(Value v, Eval(*expr.left, env));
      bool is_null = v.is_null();
      return Value::Bool(expr.negated ? !is_null : is_null);
    }
    case ExprKind::kCase: {
      if (expr.case_operand) {
        CQMS_ASSIGN_OR_RETURN(Value op, Eval(*expr.case_operand, env));
        for (const auto& [when, then] : expr.when_clauses) {
          CQMS_ASSIGN_OR_RETURN(Value w, Eval(*when, env));
          if (!op.is_null() && !w.is_null() && op.Compare(w) == 0) {
            return Eval(*then, env);
          }
        }
      } else {
        for (const auto& [when, then] : expr.when_clauses) {
          CQMS_ASSIGN_OR_RETURN(Value w, Eval(*when, env));
          if (ToTernary(w) == 1) return Eval(*then, env);
        }
      }
      if (expr.else_expr) return Eval(*expr.else_expr, env);
      return Value::Null();
    }
    case ExprKind::kExists: {
      if (!subquery_runner_) {
        return Status::Unsupported("subqueries not supported in this context");
      }
      CQMS_ASSIGN_OR_RETURN(QueryResult sub, subquery_runner_(*expr.subquery, &env));
      bool nonempty = !sub.rows.empty();
      return Value::Bool(expr.negated ? !nonempty : nonempty);
    }
    case ExprKind::kScalarSubquery: {
      if (!subquery_runner_) {
        return Status::Unsupported("subqueries not supported in this context");
      }
      CQMS_ASSIGN_OR_RETURN(QueryResult sub, subquery_runner_(*expr.subquery, &env));
      if (sub.rows.empty()) return Value::Null();
      if (sub.rows.size() > 1) {
        return Status::ExecutionError("scalar subquery returned more than one row");
      }
      if (sub.rows[0].size() != 1) {
        return Status::ExecutionError("scalar subquery must produce one column");
      }
      return sub.rows[0][0];
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> Evaluator::EvalPredicate(const sql::Expr& expr, const Env& env) const {
  CQMS_ASSIGN_OR_RETURN(Value v, Eval(expr, env));
  return ToTernary(v) == 1;
}

}  // namespace cqms::db
