#include "db/cost_estimator.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"
#include "sql/components.h"

namespace cqms::db {

namespace {

constexpr double kDefaultSelectivity = 1.0 / 3.0;

const ColumnStats* FindColumnStats(const std::map<std::string, TableStats>& stats,
                                   const std::string& table,
                                   const std::string& column) {
  auto it = stats.find(table);
  if (it == stats.end()) return nullptr;
  for (const ColumnStats& cs : it->second.columns) {
    if (cs.name == column) return &cs;
  }
  return nullptr;
}

/// Parses a printed constant back to a double when it is numeric.
bool ParseNumeric(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

double PredicateSelectivity(const sql::PredicateFeature& pred,
                            const std::map<std::string, TableStats>& stats) {
  if (pred.is_join) {
    // Equi-join: 1 / max(ndv of the two sides); unknown -> default.
    const ColumnStats* l = FindColumnStats(stats, pred.relation, pred.attribute);
    const ColumnStats* r =
        FindColumnStats(stats, pred.rhs_relation, pred.rhs_attribute);
    uint64_t ndv = 0;
    if (l != nullptr) ndv = std::max(ndv, l->distinct);
    if (r != nullptr) ndv = std::max(ndv, r->distinct);
    if (pred.op != "=" || ndv == 0) return kDefaultSelectivity;
    return 1.0 / static_cast<double>(ndv);
  }
  const ColumnStats* cs = FindColumnStats(stats, pred.relation, pred.attribute);
  if (cs == nullptr) return kDefaultSelectivity;

  double constant = 0;
  const bool numeric = ParseNumeric(pred.constant, &constant);

  if (pred.op == "=") {
    if (cs->distinct > 0) return 1.0 / static_cast<double>(cs->distinct);
    return kDefaultSelectivity;
  }
  if ((pred.op == "<" || pred.op == "<=" || pred.op == ">" || pred.op == ">=") &&
      numeric && cs->histogram.total() > 0) {
    return cs->histogram.EstimateSelectivity(pred.op, constant);
  }
  if (pred.op == "IS NULL" && cs->count > 0) {
    return static_cast<double>(cs->nulls) / static_cast<double>(cs->count);
  }
  if (pred.op == "IS NOT NULL" && cs->count > 0) {
    return 1.0 - static_cast<double>(cs->nulls) / static_cast<double>(cs->count);
  }
  if (pred.op == "BETWEEN") {
    // "lo AND hi": estimate as sel(<= hi) - sel(< lo).
    auto parts = Split(pred.constant, ' ');
    double lo = 0, hi = 0;
    if (parts.size() == 3 && ParseNumeric(parts[0], &lo) &&
        ParseNumeric(parts[2], &hi) && cs->histogram.total() > 0) {
      double below_hi = cs->histogram.EstimateSelectivity("<=", hi);
      double below_lo = cs->histogram.EstimateSelectivity("<", lo);
      return std::max(0.0, below_hi - below_lo);
    }
    return kDefaultSelectivity;
  }
  if (pred.op == "IN") {
    // Count the list entries; each contributes 1/ndv.
    size_t entries = 1 + static_cast<size_t>(std::count(
                             pred.constant.begin(), pred.constant.end(), ','));
    if (cs->distinct > 0) {
      return std::min(1.0, static_cast<double>(entries) /
                               static_cast<double>(cs->distinct));
    }
    return kDefaultSelectivity;
  }
  return kDefaultSelectivity;
}

}  // namespace

CostEstimate EstimateQueryCost(const Database& database,
                               const sql::SelectStatement& stmt,
                               const std::map<std::string, TableStats>& stats) {
  CostEstimate estimate;
  sql::QueryComponents components = sql::CollectComponents(stmt);

  double rows = 1;
  double scan_rows = 0;
  bool any_table = false;
  for (const std::string& table : components.tables) {
    const Table* t = database.GetTable(table);
    double card =
        t != nullptr ? static_cast<double>(t->num_rows()) : 1000.0;  // guess
    auto it = stats.find(table);
    if (it != stats.end()) card = static_cast<double>(it->second.row_count);
    rows *= std::max(1.0, card);
    scan_rows += card;
    any_table = true;
  }
  if (!any_table) rows = 1;

  for (const sql::PredicateFeature& pred : components.predicates) {
    double sel = PredicateSelectivity(pred, stats);
    estimate.selectivities[pred.ToString()] = sel;
    rows *= sel;
  }
  if (components.has_distinct || !components.group_by.empty()) {
    // Grouping collapses duplicates; a crude 1/2 haircut without
    // per-group statistics.
    rows *= 0.5;
  }
  if (components.limit.has_value()) {
    rows = std::min(rows, static_cast<double>(*components.limit));
  }
  estimate.estimated_rows = std::max(0.0, rows);
  estimate.estimated_scan_rows = scan_rows;
  return estimate;
}

CostEstimate EstimateQueryCost(const Database& database,
                               const sql::SelectStatement& stmt) {
  std::map<std::string, TableStats> stats;
  for (const std::string& table : sql::CollectComponents(stmt).tables) {
    const Table* t = database.GetTable(table);
    if (t != nullptr) stats[table] = ComputeTableStats(*t);
  }
  return EstimateQueryCost(database, stmt, stats);
}

}  // namespace cqms::db
