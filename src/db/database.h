#ifndef CQMS_DB_DATABASE_H_
#define CQMS_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "db/expr_eval.h"
#include "db/schema.h"
#include "db/table.h"
#include "db/value.h"
#include "sql/ast.h"

namespace cqms::db {

/// Materialized result of a query execution.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  /// Rows examined by scans and join probes — the engine's work measure,
  /// reported to the Query Profiler as a runtime feature.
  uint64_t rows_scanned = 0;
  /// Human-readable execution plan: one line per operator, recording the
  /// planner's choices (filter pushdown, hash vs nested-loop join,
  /// aggregation, sort). The Query Profiler logs this — the paper (§4.1)
  /// lists "the query execution plan" among the runtime features existing
  /// profilers capture.
  std::string plan;

  size_t num_rows() const { return rows.size(); }
};

/// The relational engine substrate: catalog + tables + SELECT executor.
///
/// This plays the role of the production DBMS under the CQMS (Figure 4 of
/// the paper): it parses nothing itself — the `sql` library does — but
/// binds, plans and executes statements, exposing the catalog and
/// execution statistics the CQMS components need.
///
/// Execution strategy: scans with pushed-down single-table filters, then
/// left-to-right join folding with a hash-join fast path for equi-join
/// conditions (essential for the paper's Figure-1 style meta-queries that
/// self-join the Attributes feature relation), then grouping/aggregation,
/// HAVING, projection, DISTINCT, ORDER BY, LIMIT/OFFSET, UNION.
class Database {
 public:
  explicit Database(const Clock* clock = nullptr) : catalog_(clock) {}

  // Not copyable (owns table storage); movable.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  const Catalog& catalog() const { return catalog_; }

  // --- DDL (keeps catalog and row storage in sync) -----------------------

  Status CreateTable(const TableSchema& schema);
  Status DropTable(const std::string& table);
  Status RenameTable(const std::string& table, const std::string& new_name);
  Status AddColumn(const std::string& table, const ColumnDef& column);
  Status DropColumn(const std::string& table, const std::string& column);
  Status RenameColumn(const std::string& table, const std::string& column,
                      const std::string& new_name);

  // --- DML ----------------------------------------------------------------

  /// Appends a row to `table`; arity-checked.
  Status Insert(const std::string& table, Row row);

  /// Read access to stored rows (nullptr if absent).
  const Table* GetTable(const std::string& table) const;
  Table* GetMutableTable(const std::string& table);

  // --- Queries ------------------------------------------------------------

  /// Parses and executes SQL text.
  Result<QueryResult> ExecuteSql(std::string_view sql_text) const;

  /// Executes a parsed statement.
  Result<QueryResult> Execute(const sql::SelectStatement& stmt) const;

  /// Binds the statement against the catalog without executing: verifies
  /// that every referenced table and column exists and is unambiguous.
  /// This is the primitive Query Maintenance uses to flag queries broken
  /// by schema evolution (§4.4).
  Status Validate(const sql::SelectStatement& stmt) const;

 private:
  friend class ExecutorImpl;

  Catalog catalog_;
  std::map<std::string, Table> tables_;  // key: lower-cased table name
};

}  // namespace cqms::db

#endif  // CQMS_DB_DATABASE_H_
