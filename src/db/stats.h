#ifndef CQMS_DB_STATS_H_
#define CQMS_DB_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/table.h"
#include "db/value.h"

namespace cqms::db {

/// Equi-width histogram over numeric values. Used by Query Maintenance to
/// detect data-distribution drift (paper §4.4: re-execute queries "only
/// when there is reason to believe their statistics have significantly
/// changed") and by the profiler's output summaries.
class Histogram {
 public:
  /// Builds a histogram with `num_buckets` over [min, max] of `values`
  /// (nulls and non-numerics ignored). An empty/constant input produces a
  /// degenerate single-bucket histogram.
  static Histogram Build(const std::vector<Value>& values, int num_buckets = 16);

  int num_buckets() const { return static_cast<int>(counts_.size()); }
  double min() const { return min_; }
  double max() const { return max_; }
  uint64_t total() const { return total_; }
  const std::vector<uint64_t>& counts() const { return counts_; }

  /// Estimated selectivity of `v OP const` predicates via interpolation.
  /// `op` in {"<", "<=", ">", ">=", "="}.
  double EstimateSelectivity(const std::string& op, double constant) const;

  /// Normalized L1 distance between two distributions in [0, 1].
  /// Histograms over different ranges are compared over the union range.
  double Distance(const Histogram& other) const;

 private:
  double min_ = 0;
  double max_ = 0;
  uint64_t total_ = 0;
  std::vector<uint64_t> counts_;
};

/// Per-column summary statistics.
struct ColumnStats {
  std::string name;
  uint64_t count = 0;       ///< Rows (incl. nulls).
  uint64_t nulls = 0;
  uint64_t distinct = 0;    ///< Exact up to a cap, then approximate.
  Value min_value;          ///< Null for empty columns.
  Value max_value;
  Histogram histogram;      ///< Numeric columns only (empty otherwise).
  /// Most frequent values with counts (top 8); all column types.
  std::vector<std::pair<Value, uint64_t>> top_values;
};

/// Statistics for a whole table.
struct TableStats {
  std::string table;
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;
};

/// Computes full statistics for `table`.
TableStats ComputeTableStats(const Table& table);

/// Aggregate drift score between two stats snapshots of the same table:
/// max over columns of histogram distance, also accounting for row-count
/// change. Returns a value in [0, 1].
double StatsDrift(const TableStats& before, const TableStats& after);

}  // namespace cqms::db

#endif  // CQMS_DB_STATS_H_
