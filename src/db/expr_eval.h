#ifndef CQMS_DB_EXPR_EVAL_H_
#define CQMS_DB_EXPR_EVAL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"
#include "sql/ast.h"

namespace cqms::db {

struct QueryResult;

/// Describes how the columns of an intermediate row are addressed:
/// slot i answers to (qualifier, column), both lower-cased. The qualifier
/// is the table alias if present, else the table name.
class Layout {
 public:
  void Add(std::string qualifier, std::string column) {
    slots_.push_back({std::move(qualifier), std::move(column)});
  }

  size_t size() const { return slots_.size(); }
  const std::pair<std::string, std::string>& slot(size_t i) const { return slots_[i]; }

  /// Finds the slot for a (possibly unqualified) column reference.
  /// Returns the slot index, -1 when not found, -2 when ambiguous.
  int Find(const std::string& qualifier, const std::string& column) const;

  /// All slot indices whose qualifier equals `qualifier` (for `t.*`).
  std::vector<int> SlotsForQualifier(const std::string& qualifier) const;

 private:
  std::vector<std::pair<std::string, std::string>> slots_;
};

/// Evaluation environment: a row interpreted through a layout, chained to
/// an optional parent environment so correlated subqueries can see outer
/// rows. Aggregate contexts additionally expose computed aggregate values
/// keyed by their canonical printed expression.
struct Env {
  const Layout* layout = nullptr;
  const Row* row = nullptr;
  const Env* parent = nullptr;
  /// Aggregate values by canonical printed call text, e.g. "AVG(t.temp)".
  const std::map<std::string, Value>* aggregates = nullptr;
};

/// Callback used by the evaluator to run subqueries. `outer` provides the
/// correlation environment (may be null for top level).
using SubqueryRunner =
    std::function<Result<QueryResult>(const sql::SelectStatement&, const Env*)>;

/// Interprets expression trees with SQL three-valued logic.
///
/// NULL handling follows SQL-92: arithmetic and comparisons with NULL
/// yield NULL; AND/OR use Kleene logic; WHERE treats non-TRUE as reject.
class Evaluator {
 public:
  explicit Evaluator(SubqueryRunner subquery_runner = nullptr)
      : subquery_runner_(std::move(subquery_runner)) {}

  /// Evaluates `expr` in `env`.
  Result<Value> Eval(const sql::Expr& expr, const Env& env) const;

  /// Evaluates `expr` as a predicate: NULL and FALSE both reject.
  Result<bool> EvalPredicate(const sql::Expr& expr, const Env& env) const;

  /// SQL LIKE with `%` and `_` wildcards (case-sensitive).
  static bool LikeMatch(const std::string& text, const std::string& pattern);

 private:
  Result<Value> EvalBinary(const sql::Expr& expr, const Env& env) const;
  Result<Value> EvalFunction(const sql::Expr& expr, const Env& env) const;
  Result<Value> EvalColumn(const sql::Expr& expr, const Env& env) const;

  SubqueryRunner subquery_runner_;
};

}  // namespace cqms::db

#endif  // CQMS_DB_EXPR_EVAL_H_
