#include "db/value.h"

#include "common/hash.h"
#include "common/string_util.h"

namespace cqms::db {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
    case ValueType::kBool: return "BOOL";
  }
  return "NULL";
}

Value Value::FromLiteral(const sql::Literal& lit) {
  switch (lit.kind) {
    case sql::Literal::Kind::kNull:
      return Null();
    case sql::Literal::Kind::kInteger:
      return Int(lit.int_value);
    case sql::Literal::Kind::kFloat:
      return Double(lit.double_value);
    case sql::Literal::Kind::kString:
      return String(lit.string_value);
    case sql::Literal::Kind::kBool:
      return Bool(lit.bool_value);
  }
  return Null();
}

int Value::Compare(const Value& other) const {
  // NULLs first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  // Numeric cross-type comparison.
  if (is_numeric() && other.is_numeric()) {
    if (type_ == ValueType::kInt && other.type_ == ValueType::kInt) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case ValueType::kString:
      return string_.compare(other.string_) < 0   ? -1
             : string_.compare(other.string_) > 0 ? 1
                                                  : 0;
    case ValueType::kBool:
      return bool_ == other.bool_ ? 0 : (bool_ ? 1 : -1);
    default:
      return 0;
  }
}

uint64_t Value::Hash() const {
  switch (type_) {
    case ValueType::kNull:
      return 0x6e756c6cULL;
    case ValueType::kInt:
      return HashMix(static_cast<uint64_t>(int_));
    case ValueType::kDouble: {
      // Hash ints and integral doubles identically so cross-type
      // grouping matches Compare()==0.
      double d = double_;
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return HashMix(static_cast<uint64_t>(as_int));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashMix(bits);
    }
    case ValueType::kString:
      return Fnv1a64(string_);
    case ValueType::kBool:
      return bool_ ? 0xb001ULL : 0xb000ULL;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(int_);
    case ValueType::kDouble: return FormatDouble(double_);
    case ValueType::kString: return string_;
    case ValueType::kBool: return bool_ ? "TRUE" : "FALSE";
  }
  return "NULL";
}

std::string Value::ToSqlLiteral() const {
  if (type_ == ValueType::kString) return "'" + SqlEscape(string_) + "'";
  return ToString();
}

uint64_t HashRow(const Row& row) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const Value& v : row) h = HashCombine(h, v.Hash());
  return h;
}

std::string RowToString(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  return out;
}

}  // namespace cqms::db
