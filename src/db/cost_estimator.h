#ifndef CQMS_DB_COST_ESTIMATOR_H_
#define CQMS_DB_COST_ESTIMATOR_H_

#include <map>
#include <string>

#include "db/database.h"
#include "db/stats.h"
#include "sql/ast.h"

namespace cqms::db {

/// Pre-execution estimate for one statement.
struct CostEstimate {
  double estimated_rows = 0;     ///< Expected output cardinality.
  double estimated_scan_rows = 0;  ///< Work measure: rows touched by scans.
  /// Per-predicate selectivities that went into the estimate (relation.
  /// attribute op constant -> selectivity), for inspection/testing.
  std::map<std::string, double> selectivities;
};

/// Histogram-based selectivity estimation (the paper connects output
/// summarization to "selectivity estimation [16]", §4.1; the related
/// Query Patroller "analyzes queries before execution to ensure good
/// performance" — this is that analysis primitive).
///
/// Model: output = product of FROM cardinalities, scaled by predicate
/// selectivities. Numeric comparison predicates use the column histogram;
/// equality uses 1/ndv; equi-joins use 1/max(ndv); everything else a
/// default of 1/3. LIMIT caps the estimate. Subqueries/OR-expressions
/// fall back to the default selectivity.
CostEstimate EstimateQueryCost(const Database& database,
                               const sql::SelectStatement& stmt,
                               const std::map<std::string, TableStats>& stats);

/// Convenience: computes fresh statistics for the referenced tables
/// first (fine for occasional admission checks; cache `TableStats` for
/// hot paths).
CostEstimate EstimateQueryCost(const Database& database,
                               const sql::SelectStatement& stmt);

}  // namespace cqms::db

#endif  // CQMS_DB_COST_ESTIMATOR_H_
