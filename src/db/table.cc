#include "db/table.h"

namespace cqms::db {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema arity " +
        std::to_string(schema_.num_columns()) + " for table " + schema_.name());
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

void Table::AddColumn(const ColumnDef& def) {
  schema_ = TableSchema(schema_.name(), [&] {
    auto cols = schema_.columns();
    cols.push_back(def);
    return cols;
  }());
  for (Row& r : rows_) r.push_back(Value::Null());
}

void Table::DropColumnAt(int index) {
  auto cols = schema_.columns();
  cols.erase(cols.begin() + index);
  schema_ = TableSchema(schema_.name(), std::move(cols));
  for (Row& r : rows_) r.erase(r.begin() + index);
}

}  // namespace cqms::db
