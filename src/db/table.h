#ifndef CQMS_DB_TABLE_H_
#define CQMS_DB_TABLE_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/schema.h"
#include "db/value.h"

namespace cqms::db {

/// Row-oriented in-memory storage for one relation.
class Table {
 public:
  Table() = default;
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row; its arity must match the schema.
  Status Append(Row row);

  /// Bulk append without per-row checks (trusted loaders).
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Clear() { rows_.clear(); }

  /// Removes every row for which `pred` returns true; returns the count.
  template <typename Pred>
  size_t RemoveRowsIf(const Pred& pred) {
    size_t before = rows_.size();
    rows_.erase(std::remove_if(rows_.begin(), rows_.end(), pred), rows_.end());
    return before - rows_.size();
  }

  /// Structural mutations mirroring catalog evolution; used when the
  /// database applies ALTER-style changes.
  void AddColumn(const ColumnDef& def);
  void DropColumnAt(int index);

  /// Mutable schema access for rename propagation.
  TableSchema* mutable_schema() { return &schema_; }

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
};

}  // namespace cqms::db

#endif  // CQMS_DB_TABLE_H_
