#include "db/database.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace cqms::db {

namespace {

/// An intermediate relation flowing between executor stages.
struct Intermediate {
  Layout layout;
  std::vector<Row> rows;
};

/// How an expression's column references relate to a layout.
struct BindInfo {
  bool resolvable = true;        ///< Every column ref found in the layout.
  bool ambiguous = false;        ///< Some ref matched multiple slots.
  bool has_subquery = false;     ///< Conservative: treat as non-pushable.
  std::set<std::string> qualifiers;  ///< Qualifiers of resolved slots.
};

BindInfo AnalyzeBinding(const sql::Expr& expr, const Layout& layout) {
  BindInfo info;
  sql::WalkExpr(
      const_cast<sql::Expr*>(&expr),
      [&](sql::Expr* e) {
        if (e->subquery) info.has_subquery = true;
        if (e->kind != sql::ExprKind::kColumnRef) return;
        int idx = layout.Find(ToLower(e->table), ToLower(e->column));
        if (idx == -2) {
          info.ambiguous = true;
        } else if (idx < 0) {
          info.resolvable = false;
        } else {
          info.qualifiers.insert(layout.slot(idx).first);
        }
      },
      /*enter_subqueries=*/false);
  return info;
}

/// True when every FROM entry after the first is an implicit or inner
/// join — the precondition for pushing WHERE conjuncts below the joins.
bool AllJoinsInner(const sql::SelectStatement& stmt) {
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    sql::JoinType t = stmt.from[i].join_type;
    if (t == sql::JoinType::kLeft || t == sql::JoinType::kRight) return false;
  }
  return true;
}

/// Aggregate accumulator for one aggregate call within one group.
struct AggAccum {
  int64_t star_count = 0;       ///< Rows seen (COUNT(*)).
  int64_t non_null = 0;         ///< Non-null inputs.
  bool sum_is_double = false;
  int64_t int_sum = 0;
  double double_sum = 0;
  Value min_value;              ///< Null until first input.
  Value max_value;
  std::set<Value> distinct;     ///< Populated only for DISTINCT variants.

  void AddValue(const Value& v, bool want_distinct) {
    if (v.is_null()) return;
    ++non_null;
    if (want_distinct) distinct.insert(v);
    if (v.is_numeric()) {
      if (v.type() == ValueType::kDouble) sum_is_double = true;
      if (v.type() == ValueType::kInt) int_sum += v.AsInt();
      double_sum += v.AsDouble();
    }
    if (min_value.is_null() || v.Compare(min_value) < 0) min_value = v;
    if (max_value.is_null() || v.Compare(max_value) > 0) max_value = v;
  }

  Result<Value> Finalize(const std::string& func, bool is_star,
                         bool want_distinct) const {
    if (func == "COUNT") {
      if (is_star) return Value::Int(star_count);
      if (want_distinct) return Value::Int(static_cast<int64_t>(distinct.size()));
      return Value::Int(non_null);
    }
    if (func == "SUM") {
      if (non_null == 0) return Value::Null();
      if (want_distinct) {
        double s = 0;
        bool dbl = false;
        int64_t is = 0;
        for (const Value& v : distinct) {
          if (!v.is_numeric()) return Status::ExecutionError("SUM over non-numeric");
          if (v.type() == ValueType::kDouble) dbl = true;
          else is += v.AsInt();
          s += v.AsDouble();
        }
        return dbl ? Value::Double(s) : Value::Int(is);
      }
      return sum_is_double ? Value::Double(double_sum) : Value::Int(int_sum);
    }
    if (func == "AVG") {
      if (want_distinct) {
        if (distinct.empty()) return Value::Null();
        double s = 0;
        for (const Value& v : distinct) s += v.AsDouble();
        return Value::Double(s / static_cast<double>(distinct.size()));
      }
      if (non_null == 0) return Value::Null();
      return Value::Double(double_sum / static_cast<double>(non_null));
    }
    if (func == "MIN") return min_value;
    if (func == "MAX") return max_value;
    return Status::Internal("unknown aggregate: " + func);
  }
};

/// One distinct aggregate call appearing in the statement.
struct AggSpec {
  std::string key;             ///< Canonical printed call text.
  const sql::Expr* call;       ///< The call expression.
  bool is_star = false;        ///< COUNT(*).
};

class ExecutorImpl {
 public:
  explicit ExecutorImpl(const Database* db)
      : db_(db), evaluator_([this](const sql::SelectStatement& s, const Env* outer) {
          return ExecuteSelect(s, outer);
        }) {}

  Result<QueryResult> Run(const sql::SelectStatement& stmt) {
    CQMS_ASSIGN_OR_RETURN(QueryResult result, ExecuteSelect(stmt, nullptr));
    result.rows_scanned = rows_scanned_;
    result.plan = plan_;
    return result;
  }

 private:
  /// Appends one operator line to the recorded plan. Only the top-level
  /// statement is recorded; (possibly correlated, repeatedly executed)
  /// subqueries would bloat the plan text.
  void Plan(const std::string& line) {
    if (depth_ == 1) plan_ += line + "\n";
  }

  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };

  Result<QueryResult> ExecuteSelect(const sql::SelectStatement& stmt,
                                    const Env* outer) {
    DepthGuard guard(&depth_);
    // ---- FROM: scans -----------------------------------------------------
    std::vector<Intermediate> scans;
    Layout full_layout;
    for (const sql::TableRef& tr : stmt.from) {
      const Table* table = db_->GetTable(tr.table);
      if (table == nullptr) {
        return Status::BindError("unknown table: " + ToLower(tr.table));
      }
      Intermediate scan;
      std::string qualifier = ToLower(tr.EffectiveName());
      for (const ColumnDef& col : table->schema().columns()) {
        scan.layout.Add(qualifier, col.name);
        full_layout.Add(qualifier, col.name);
      }
      scan.rows = table->rows();
      rows_scanned_ += scan.rows.size();
      Plan("scan " + ToLower(tr.table) + " (" +
           std::to_string(scan.rows.size()) + " rows)");
      scans.push_back(std::move(scan));
    }

    // ---- WHERE conjunct classification ------------------------------------
    std::vector<const sql::Expr*> where_conjuncts;
    if (stmt.where) where_conjuncts = sql::SplitConjuncts(stmt.where.get());
    std::vector<bool> conjunct_used(where_conjuncts.size(), false);
    const bool pushable = !stmt.from.empty() && AllJoinsInner(stmt);

    if (pushable) {
      // Push single-table conjuncts into their scans.
      for (size_t ci = 0; ci < where_conjuncts.size(); ++ci) {
        const sql::Expr& conjunct = *where_conjuncts[ci];
        BindInfo info = AnalyzeBinding(conjunct, full_layout);
        if (info.ambiguous) {
          return Status::BindError("ambiguous column reference in WHERE");
        }
        if (!info.resolvable || info.has_subquery || info.qualifiers.size() != 1) {
          continue;
        }
        const std::string& q = *info.qualifiers.begin();
        for (size_t si = 0; si < scans.size(); ++si) {
          if (ToLower(stmt.from[si].EffectiveName()) != q) continue;
          CQMS_RETURN_IF_ERROR(
              FilterInPlace(&scans[si], conjunct, outer));
          Plan("scan " + ToLower(stmt.from[si].table) + " [pushdown: " +
               sql::PrintExpr(conjunct, {}) + "]");
          conjunct_used[ci] = true;
          break;
        }
      }
    }

    // ---- Joins -------------------------------------------------------------
    Intermediate acc;
    if (stmt.from.empty()) {
      acc.rows.push_back(Row{});  // single empty row: SELECT 1+1
    } else {
      acc = std::move(scans[0]);
      for (size_t i = 1; i < scans.size(); ++i) {
        const sql::TableRef& tr = stmt.from[i];
        // Gather predicates applicable at this join step.
        std::vector<const sql::Expr*> join_preds;
        if (tr.join_condition) {
          auto on = sql::SplitConjuncts(tr.join_condition.get());
          join_preds.insert(join_preds.end(), on.begin(), on.end());
        }
        Layout combined = CombineLayouts(acc.layout, scans[i].layout);
        if (pushable) {
          for (size_t ci = 0; ci < where_conjuncts.size(); ++ci) {
            if (conjunct_used[ci]) continue;
            BindInfo info = AnalyzeBinding(*where_conjuncts[ci], combined);
            if (!info.resolvable || info.has_subquery || info.ambiguous) continue;
            join_preds.push_back(where_conjuncts[ci]);
            conjunct_used[ci] = true;
          }
        }
        CQMS_ASSIGN_OR_RETURN(
            acc, JoinStep(std::move(acc), std::move(scans[i]), tr.join_type,
                          join_preds, outer, ToLower(tr.table)));
      }
    }

    // ---- Residual WHERE ----------------------------------------------------
    for (size_t ci = 0; ci < where_conjuncts.size(); ++ci) {
      if (conjunct_used[ci]) continue;
      Plan("filter " + sql::PrintExpr(*where_conjuncts[ci], {}));
      CQMS_RETURN_IF_ERROR(FilterInPlace(&acc, *where_conjuncts[ci], outer));
    }

    // ---- Aggregation detection --------------------------------------------
    std::vector<AggSpec> agg_specs;
    CollectAggSpecs(stmt, &agg_specs);
    const bool aggregate_mode = !agg_specs.empty() || !stmt.group_by.empty();

    // Output units: each unit is (representative env row, agg values).
    std::vector<UnitOut> units;

    if (aggregate_mode) {
      Plan("aggregate " + std::to_string(agg_specs.size()) + " function(s), " +
           std::to_string(stmt.group_by.size()) + " group key(s)");
      CQMS_ASSIGN_OR_RETURN(units, BuildGroups(stmt, acc, agg_specs, outer));
      // HAVING.
      if (stmt.having) {
        std::vector<UnitOut> kept;
        for (UnitOut& u : units) {
          Env env{&acc.layout, &u.rep_row, outer, &u.aggregates};
          CQMS_ASSIGN_OR_RETURN(bool pass, evaluator_.EvalPredicate(*stmt.having, env));
          if (pass) kept.push_back(std::move(u));
        }
        units = std::move(kept);
      }
    } else {
      units.reserve(acc.rows.size());
      for (Row& r : acc.rows) {
        units.push_back(UnitOut{std::move(r), {}});
      }
    }

    // ---- Projection ----------------------------------------------------------
    QueryResult result;
    struct OutputExpr {
      const sql::Expr* expr = nullptr;  // null => star slot
      int star_slot = -1;
    };
    std::vector<OutputExpr> outputs;
    for (const sql::SelectItem& item : stmt.select_items) {
      if (item.is_star) {
        std::string qualifier = ToLower(item.star_table);
        if (!qualifier.empty()) {
          std::vector<int> slots = acc.layout.SlotsForQualifier(qualifier);
          if (slots.empty()) {
            return Status::BindError("unknown qualifier in select list: " + qualifier);
          }
          for (int s : slots) {
            outputs.push_back({nullptr, s});
            result.column_names.push_back(acc.layout.slot(s).second);
          }
        } else {
          if (acc.layout.size() == 0) {
            return Status::BindError("SELECT * with no FROM clause");
          }
          for (size_t s = 0; s < acc.layout.size(); ++s) {
            outputs.push_back({nullptr, static_cast<int>(s)});
            result.column_names.push_back(acc.layout.slot(s).second);
          }
        }
        continue;
      }
      outputs.push_back({item.expr.get(), -1});
      if (!item.alias.empty()) {
        result.column_names.push_back(ToLower(item.alias));
      } else if (item.expr->kind == sql::ExprKind::kColumnRef) {
        result.column_names.push_back(ToLower(item.expr->column));
      } else {
        result.column_names.push_back(sql::PrintExpr(*item.expr, {}));
      }
    }

    result.rows.reserve(units.size());
    std::vector<Row> order_keys;
    const bool need_order = !stmt.order_by.empty();
    if (need_order) order_keys.reserve(units.size());

    for (UnitOut& u : units) {
      Env env{&acc.layout, &u.rep_row, outer,
              aggregate_mode ? &u.aggregates : nullptr};
      Row out;
      out.reserve(outputs.size());
      for (const OutputExpr& oe : outputs) {
        if (oe.expr == nullptr) {
          out.push_back(u.rep_row[oe.star_slot]);
        } else {
          CQMS_ASSIGN_OR_RETURN(Value v, evaluator_.Eval(*oe.expr, env));
          out.push_back(std::move(v));
        }
      }
      if (need_order) {
        Row keys;
        keys.reserve(stmt.order_by.size());
        for (const sql::OrderItem& oi : stmt.order_by) {
          CQMS_ASSIGN_OR_RETURN(
              Value v, EvalOrderExpr(*oi.expr, env, stmt.select_items, out));
          keys.push_back(std::move(v));
        }
        order_keys.push_back(std::move(keys));
      }
      result.rows.push_back(std::move(out));
    }

    // ---- ORDER BY -------------------------------------------------------------
    if (need_order) {
      Plan("sort " + std::to_string(stmt.order_by.size()) + " key(s)");
      std::vector<size_t> perm(result.rows.size());
      for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
        for (size_t k = 0; k < stmt.order_by.size(); ++k) {
          int cmp = order_keys[a][k].Compare(order_keys[b][k]);
          if (cmp != 0) return stmt.order_by[k].descending ? cmp > 0 : cmp < 0;
        }
        return false;
      });
      std::vector<Row> sorted;
      sorted.reserve(result.rows.size());
      for (size_t i : perm) sorted.push_back(std::move(result.rows[i]));
      result.rows = std::move(sorted);
    }

    // ---- DISTINCT ---------------------------------------------------------------
    if (stmt.distinct) {
      Plan("distinct");
      DeduplicateRows(&result.rows);
    }

    // ---- LIMIT / OFFSET ------------------------------------------------------------
    if (stmt.offset.has_value()) {
      size_t off = static_cast<size_t>(std::max<int64_t>(0, *stmt.offset));
      if (off >= result.rows.size()) {
        result.rows.clear();
      } else {
        result.rows.erase(result.rows.begin(), result.rows.begin() + off);
      }
    }
    if (stmt.limit.has_value()) {
      Plan("limit " + std::to_string(*stmt.limit));
      size_t lim = static_cast<size_t>(std::max<int64_t>(0, *stmt.limit));
      if (result.rows.size() > lim) result.rows.resize(lim);
    }

    // ---- UNION ------------------------------------------------------------------
    if (stmt.union_next) {
      Plan(stmt.union_all ? "union all" : "union (dedup)");
      CQMS_ASSIGN_OR_RETURN(QueryResult rest, ExecuteSelect(*stmt.union_next, outer));
      if (rest.column_names.size() != result.column_names.size()) {
        return Status::ExecutionError("UNION arms have different arity");
      }
      for (Row& r : rest.rows) result.rows.push_back(std::move(r));
      if (!stmt.union_all) DeduplicateRows(&result.rows);
    }
    return result;
  }

  // Applies `predicate` to every row of `rel` in place.
  Status FilterInPlace(Intermediate* rel, const sql::Expr& predicate,
                       const Env* outer) {
    std::vector<Row> kept;
    kept.reserve(rel->rows.size());
    for (Row& r : rel->rows) {
      Env env{&rel->layout, &r, outer, nullptr};
      CQMS_ASSIGN_OR_RETURN(bool pass, evaluator_.EvalPredicate(predicate, env));
      if (pass) kept.push_back(std::move(r));
    }
    rel->rows = std::move(kept);
    return Status::Ok();
  }

  static Layout CombineLayouts(const Layout& a, const Layout& b) {
    Layout out;
    for (size_t i = 0; i < a.size(); ++i) out.Add(a.slot(i).first, a.slot(i).second);
    for (size_t i = 0; i < b.size(); ++i) out.Add(b.slot(i).first, b.slot(i).second);
    return out;
  }

  static Row ConcatRows(const Row& a, const Row& b) {
    Row out;
    out.reserve(a.size() + b.size());
    out.insert(out.end(), a.begin(), a.end());
    out.insert(out.end(), b.begin(), b.end());
    return out;
  }

  /// Detects `left_col = right_col` equi-predicates where one side binds
  /// in `a` and the other in `b`. Returns slot indices or {-1,-1}.
  static std::pair<int, int> FindEquiSlots(const sql::Expr& pred, const Layout& a,
                                           const Layout& b) {
    if (pred.kind != sql::ExprKind::kBinary || pred.bop != sql::BinaryOp::kEq) {
      return {-1, -1};
    }
    const sql::Expr* l = pred.left.get();
    const sql::Expr* r = pred.right.get();
    if (l == nullptr || r == nullptr) return {-1, -1};
    if (l->kind != sql::ExprKind::kColumnRef || r->kind != sql::ExprKind::kColumnRef) {
      return {-1, -1};
    }
    int la = a.Find(ToLower(l->table), ToLower(l->column));
    int lb = b.Find(ToLower(l->table), ToLower(l->column));
    int ra = a.Find(ToLower(r->table), ToLower(r->column));
    int rb = b.Find(ToLower(r->table), ToLower(r->column));
    if (la >= 0 && rb >= 0 && lb == -1 && ra == -1) return {la, rb};
    if (ra >= 0 && lb >= 0 && rb == -1 && la == -1) return {ra, lb};
    return {-1, -1};
  }

  Result<Intermediate> JoinStep(Intermediate left, Intermediate right,
                                sql::JoinType join_type,
                                const std::vector<const sql::Expr*>& preds,
                                const Env* outer, const std::string& label) {
    Intermediate out;
    out.layout = CombineLayouts(left.layout, right.layout);

    // Find a hash-join key among the predicates.
    int left_key = -1, right_key = -1;
    std::vector<const sql::Expr*> residual;
    for (const sql::Expr* p : preds) {
      if (left_key < 0) {
        auto [lk, rk] = FindEquiSlots(*p, left.layout, right.layout);
        if (lk >= 0) {
          left_key = lk;
          right_key = rk;
          continue;
        }
      }
      residual.push_back(p);
    }
    Plan(std::string(left_key >= 0 ? "hash join " : "nested-loop join ") +
         label +
         (residual.empty() ? "" : " [+" + std::to_string(residual.size()) +
                                      " residual pred(s)]"));

    const bool is_left = join_type == sql::JoinType::kLeft;
    const bool is_right = join_type == sql::JoinType::kRight;
    std::vector<bool> right_matched(is_right ? right.rows.size() : 0, false);

    auto match_row = [&](const Row& combined) -> Result<bool> {
      Env env{&out.layout, &combined, outer, nullptr};
      for (const sql::Expr* p : residual) {
        CQMS_ASSIGN_OR_RETURN(bool pass, evaluator_.EvalPredicate(*p, env));
        if (!pass) return false;
      }
      return true;
    };

    if (left_key >= 0) {
      // Hash join: build on the right side, probe with the left.
      std::unordered_map<uint64_t, std::vector<size_t>> ht;
      ht.reserve(right.rows.size() * 2);
      for (size_t i = 0; i < right.rows.size(); ++i) {
        const Value& v = right.rows[i][right_key];
        if (v.is_null()) continue;  // NULL keys never join.
        ht[v.Hash()].push_back(i);
      }
      for (const Row& lrow : left.rows) {
        bool matched = false;
        const Value& key = lrow[left_key];
        if (!key.is_null()) {
          auto it = ht.find(key.Hash());
          if (it != ht.end()) {
            for (size_t ri : it->second) {
              ++rows_scanned_;
              if (key.Compare(right.rows[ri][right_key]) != 0) continue;
              Row combined = ConcatRows(lrow, right.rows[ri]);
              CQMS_ASSIGN_OR_RETURN(bool pass, match_row(combined));
              if (!pass) continue;
              matched = true;
              if (is_right) right_matched[ri] = true;
              out.rows.push_back(std::move(combined));
            }
          }
        }
        if (is_left && !matched) {
          Row nulls(right.layout.size(), Value::Null());
          out.rows.push_back(ConcatRows(lrow, nulls));
        }
      }
    } else {
      // Nested-loop join.
      for (const Row& lrow : left.rows) {
        bool matched = false;
        for (size_t ri = 0; ri < right.rows.size(); ++ri) {
          ++rows_scanned_;
          Row combined = ConcatRows(lrow, right.rows[ri]);
          CQMS_ASSIGN_OR_RETURN(bool pass, match_row(combined));
          if (!pass) continue;
          matched = true;
          if (is_right) right_matched[ri] = true;
          out.rows.push_back(std::move(combined));
        }
        if (is_left && !matched) {
          Row nulls(right.layout.size(), Value::Null());
          out.rows.push_back(ConcatRows(lrow, nulls));
        }
      }
    }

    if (is_right) {
      for (size_t ri = 0; ri < right.rows.size(); ++ri) {
        if (right_matched[ri]) continue;
        Row nulls(left.layout.size(), Value::Null());
        out.rows.push_back(ConcatRows(nulls, right.rows[ri]));
      }
    }
    return out;
  }

  /// Collects the distinct aggregate calls used by the statement itself
  /// (select list, HAVING, ORDER BY), not those inside subqueries.
  static void CollectAggSpecs(const sql::SelectStatement& stmt,
                              std::vector<AggSpec>* specs) {
    auto visit = [&](const sql::Expr* root) {
      if (root == nullptr) return;
      sql::WalkExpr(
          const_cast<sql::Expr*>(root),
          [&](sql::Expr* e) {
            if (e->kind != sql::ExprKind::kFunctionCall ||
                !sql::IsAggregateFunction(e->function_name)) {
              return;
            }
            std::string key = sql::PrintExpr(*e, {});
            for (const AggSpec& s : *specs) {
              if (s.key == key) return;
            }
            AggSpec spec;
            spec.key = std::move(key);
            spec.call = e;
            spec.is_star =
                !e->args.empty() && e->args[0]->kind == sql::ExprKind::kStar;
            specs->push_back(spec);
          },
          /*enter_subqueries=*/false);
    };
    for (const sql::SelectItem& item : stmt.select_items) visit(item.expr.get());
    visit(stmt.having.get());
    for (const sql::OrderItem& oi : stmt.order_by) visit(oi.expr.get());
  }

  struct UnitOut {
    Row rep_row;
    std::map<std::string, Value> aggregates;
  };

  Result<std::vector<UnitOut>> BuildGroups(const sql::SelectStatement& stmt,
                                           const Intermediate& acc,
                                           const std::vector<AggSpec>& specs,
                                           const Env* outer) {
    struct Group {
      Row key;
      Row rep_row;
      std::vector<AggAccum> accums;
    };
    // Master list owns the groups (std::deque: stable element addresses);
    // the hash table maps key hashes to indices into it.
    std::deque<Group> order;
    std::unordered_map<uint64_t, std::vector<size_t>> groups;

    for (const Row& r : acc.rows) {
      Env env{&acc.layout, &r, outer, nullptr};
      Row key;
      key.reserve(stmt.group_by.size());
      for (const auto& g : stmt.group_by) {
        CQMS_ASSIGN_OR_RETURN(Value v, evaluator_.Eval(*g, env));
        key.push_back(std::move(v));
      }
      uint64_t h = HashRow(key);
      auto& bucket = groups[h];
      Group* group = nullptr;
      for (size_t gi : bucket) {
        Group& g = order[gi];
        if (g.key.size() == key.size()) {
          bool equal = true;
          for (size_t i = 0; i < key.size(); ++i) {
            if (g.key[i].Compare(key[i]) != 0) {
              equal = false;
              break;
            }
          }
          if (equal) {
            group = &g;
            break;
          }
        }
      }
      if (group == nullptr) {
        bucket.push_back(order.size());
        order.push_back(Group{key, r, std::vector<AggAccum>(specs.size())});
        group = &order.back();
      }
      // Accumulate.
      for (size_t si = 0; si < specs.size(); ++si) {
        AggAccum& a = group->accums[si];
        ++a.star_count;
        if (specs[si].is_star) continue;
        if (specs[si].call->args.empty()) continue;
        CQMS_ASSIGN_OR_RETURN(Value v,
                              evaluator_.Eval(*specs[si].call->args[0], env));
        a.AddValue(v, specs[si].call->distinct_arg);
      }
    }

    std::vector<UnitOut> units;
    if (order.empty() && stmt.group_by.empty()) {
      // Aggregate over empty input: one group of empty accumulators.
      UnitOut u;
      u.rep_row = Row(acc.layout.size(), Value::Null());
      for (const AggSpec& s : specs) {
        AggAccum empty;
        CQMS_ASSIGN_OR_RETURN(
            Value v, empty.Finalize(s.call->function_name, s.is_star,
                                    s.call->distinct_arg));
        u.aggregates[s.key] = std::move(v);
      }
      units.push_back(std::move(u));
      return units;
    }

    units.reserve(order.size());
    for (const Group& g : order) {
      UnitOut u;
      u.rep_row = g.rep_row;
      for (size_t si = 0; si < specs.size(); ++si) {
        CQMS_ASSIGN_OR_RETURN(
            Value v, g.accums[si].Finalize(specs[si].call->function_name,
                                           specs[si].is_star,
                                           specs[si].call->distinct_arg));
        u.aggregates[specs[si].key] = std::move(v);
      }
      units.push_back(std::move(u));
    }
    return units;
  }

  /// Evaluates an ORDER BY expression: a bare column that matches a
  /// select-list alias refers to the projected value; everything else is
  /// evaluated in the unit environment.
  Result<Value> EvalOrderExpr(const sql::Expr& expr, const Env& env,
                              const std::vector<sql::SelectItem>& items,
                              const Row& projected) {
    if (expr.kind == sql::ExprKind::kColumnRef && expr.table.empty()) {
      size_t out_idx = 0;
      for (const sql::SelectItem& item : items) {
        if (item.is_star) break;  // star expansion shifts indices; skip aliases
        if (!item.alias.empty() && EqualsIgnoreCase(item.alias, expr.column)) {
          return projected[out_idx];
        }
        ++out_idx;
      }
    }
    return evaluator_.Eval(expr, env);
  }

  static void DeduplicateRows(std::vector<Row>* rows) {
    std::unordered_map<uint64_t, std::vector<size_t>> seen;
    std::vector<Row> out;
    out.reserve(rows->size());
    for (Row& r : *rows) {
      uint64_t h = HashRow(r);
      auto& bucket = seen[h];
      bool dup = false;
      for (size_t idx : bucket) {
        const Row& prev = out[idx];
        if (prev.size() != r.size()) continue;
        bool equal = true;
        for (size_t i = 0; i < r.size(); ++i) {
          if (prev[i].Compare(r[i]) != 0) {
            equal = false;
            break;
          }
        }
        if (equal) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        bucket.push_back(out.size());
        out.push_back(std::move(r));
      }
    }
    *rows = std::move(out);
  }

  const Database* db_;
  Evaluator evaluator_;
  uint64_t rows_scanned_ = 0;
  std::string plan_;
  int depth_ = 0;
};

/// Scope chain used by Validate().
struct ValidateScope {
  Layout layout;
  const ValidateScope* parent = nullptr;
};

Status ValidateExprInScope(const sql::Expr& expr, const ValidateScope& scope,
                           const Catalog& catalog);

Status ValidateSelectInScope(const sql::SelectStatement& stmt,
                             const ValidateScope* parent, const Catalog& catalog) {
  ValidateScope scope;
  scope.parent = parent;
  for (const sql::TableRef& tr : stmt.from) {
    const TableSchema* schema = catalog.FindTable(tr.table);
    if (schema == nullptr) {
      return Status::BindError("unknown table: " + ToLower(tr.table));
    }
    std::string qualifier = ToLower(tr.EffectiveName());
    for (const ColumnDef& col : schema->columns()) {
      scope.layout.Add(qualifier, col.name);
    }
  }
  for (const sql::SelectItem& item : stmt.select_items) {
    if (item.is_star) {
      if (!item.star_table.empty() &&
          scope.layout.SlotsForQualifier(ToLower(item.star_table)).empty()) {
        return Status::BindError("unknown qualifier: " + ToLower(item.star_table));
      }
      if (item.star_table.empty() && stmt.from.empty()) {
        return Status::BindError("SELECT * requires a FROM clause");
      }
      continue;
    }
    CQMS_RETURN_IF_ERROR(ValidateExprInScope(*item.expr, scope, catalog));
  }
  for (const sql::TableRef& tr : stmt.from) {
    if (tr.join_condition) {
      CQMS_RETURN_IF_ERROR(ValidateExprInScope(*tr.join_condition, scope, catalog));
    }
  }
  if (stmt.where) {
    CQMS_RETURN_IF_ERROR(ValidateExprInScope(*stmt.where, scope, catalog));
  }
  for (const auto& g : stmt.group_by) {
    CQMS_RETURN_IF_ERROR(ValidateExprInScope(*g, scope, catalog));
  }
  if (stmt.having) {
    CQMS_RETURN_IF_ERROR(ValidateExprInScope(*stmt.having, scope, catalog));
  }
  for (const sql::OrderItem& oi : stmt.order_by) {
    // ORDER BY may reference select aliases; accept those before binding.
    if (oi.expr->kind == sql::ExprKind::kColumnRef && oi.expr->table.empty()) {
      bool is_alias = false;
      for (const sql::SelectItem& item : stmt.select_items) {
        if (!item.alias.empty() && EqualsIgnoreCase(item.alias, oi.expr->column)) {
          is_alias = true;
          break;
        }
      }
      if (is_alias) continue;
    }
    CQMS_RETURN_IF_ERROR(ValidateExprInScope(*oi.expr, scope, catalog));
  }
  if (stmt.union_next) {
    CQMS_RETURN_IF_ERROR(ValidateSelectInScope(*stmt.union_next, parent, catalog));
  }
  return Status::Ok();
}

Status ValidateExprInScope(const sql::Expr& expr, const ValidateScope& scope,
                           const Catalog& catalog) {
  Status status = Status::Ok();
  sql::WalkExpr(
      const_cast<sql::Expr*>(&expr),
      [&](sql::Expr* e) {
        if (!status.ok()) return;
        if (e->kind == sql::ExprKind::kColumnRef) {
          std::string qualifier = ToLower(e->table);
          std::string column = ToLower(e->column);
          for (const ValidateScope* s = &scope; s != nullptr; s = s->parent) {
            int idx = s->layout.Find(qualifier, column);
            if (idx == -2) {
              status = Status::BindError("ambiguous column: " + column);
              return;
            }
            if (idx >= 0) return;
          }
          status = Status::BindError(
              "unknown column: " +
              (qualifier.empty() ? column : qualifier + "." + column));
        } else if (e->subquery) {
          Status sub = ValidateSelectInScope(*e->subquery, &scope, catalog);
          if (!sub.ok()) status = sub;
        }
      },
      /*enter_subqueries=*/false);
  return status;
}

}  // namespace

Status Database::CreateTable(const TableSchema& schema) {
  CQMS_RETURN_IF_ERROR(catalog_.CreateTable(schema));
  tables_[schema.name()] = Table(*catalog_.FindTable(schema.name()));
  return Status::Ok();
}

Status Database::DropTable(const std::string& table) {
  CQMS_RETURN_IF_ERROR(catalog_.DropTable(table));
  tables_.erase(ToLower(table));
  return Status::Ok();
}

Status Database::RenameTable(const std::string& table, const std::string& new_name) {
  CQMS_RETURN_IF_ERROR(catalog_.RenameTable(table, new_name));
  auto node = tables_.extract(ToLower(table));
  Table moved = std::move(node.mapped());
  *moved.mutable_schema() = *catalog_.FindTable(new_name);
  tables_[ToLower(new_name)] = std::move(moved);
  return Status::Ok();
}

Status Database::AddColumn(const std::string& table, const ColumnDef& column) {
  CQMS_RETURN_IF_ERROR(catalog_.AddColumn(table, column));
  tables_[ToLower(table)].AddColumn({ToLower(column.name), column.type});
  return Status::Ok();
}

Status Database::DropColumn(const std::string& table, const std::string& column) {
  Table& t = tables_[ToLower(table)];
  int idx = t.schema().FindColumn(column);
  CQMS_RETURN_IF_ERROR(catalog_.DropColumn(table, column));
  t.DropColumnAt(idx);
  return Status::Ok();
}

Status Database::RenameColumn(const std::string& table, const std::string& column,
                              const std::string& new_name) {
  CQMS_RETURN_IF_ERROR(catalog_.RenameColumn(table, column, new_name));
  *tables_[ToLower(table)].mutable_schema() = *catalog_.FindTable(table);
  return Status::Ok();
}

Status Database::Insert(const std::string& table, Row row) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + ToLower(table));
  }
  return it->second.Append(std::move(row));
}

const Table* Database::GetTable(const std::string& table) const {
  auto it = tables_.find(ToLower(table));
  return it == tables_.end() ? nullptr : &it->second;
}

Table* Database::GetMutableTable(const std::string& table) {
  auto it = tables_.find(ToLower(table));
  return it == tables_.end() ? nullptr : &it->second;
}

Result<QueryResult> Database::ExecuteSql(std::string_view sql_text) const {
  CQMS_ASSIGN_OR_RETURN(auto stmt, sql::Parse(sql_text));
  return Execute(*stmt);
}

Result<QueryResult> Database::Execute(const sql::SelectStatement& stmt) const {
  ExecutorImpl executor(this);
  return executor.Run(stmt);
}

Status Database::Validate(const sql::SelectStatement& stmt) const {
  return ValidateSelectInScope(stmt, nullptr, catalog_);
}

}  // namespace cqms::db
