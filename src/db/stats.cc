#include "db/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace cqms::db {

Histogram Histogram::Build(const std::vector<Value>& values, int num_buckets) {
  Histogram h;
  std::vector<double> nums;
  nums.reserve(values.size());
  for (const Value& v : values) {
    if (v.is_numeric()) nums.push_back(v.AsDouble());
  }
  if (nums.empty()) {
    h.counts_.assign(1, 0);
    return h;
  }
  auto [mn, mx] = std::minmax_element(nums.begin(), nums.end());
  h.min_ = *mn;
  h.max_ = *mx;
  if (h.min_ == h.max_) {
    h.counts_.assign(1, nums.size());
    h.total_ = nums.size();
    return h;
  }
  h.counts_.assign(std::max(1, num_buckets), 0);
  double width = (h.max_ - h.min_) / static_cast<double>(h.counts_.size());
  for (double x : nums) {
    int b = static_cast<int>((x - h.min_) / width);
    if (b >= static_cast<int>(h.counts_.size())) b = static_cast<int>(h.counts_.size()) - 1;
    if (b < 0) b = 0;
    ++h.counts_[b];
    ++h.total_;
  }
  return h;
}

double Histogram::EstimateSelectivity(const std::string& op, double constant) const {
  if (total_ == 0) return 0;
  if (min_ == max_) {
    // Degenerate: all values equal min_.
    if (op == "=") return constant == min_ ? 1.0 : 0.0;
    if (op == "<") return constant > min_ ? 1.0 : 0.0;
    if (op == "<=") return constant >= min_ ? 1.0 : 0.0;
    if (op == ">") return constant < min_ ? 1.0 : 0.0;
    if (op == ">=") return constant <= min_ ? 1.0 : 0.0;
    return 0.5;
  }
  double width = (max_ - min_) / static_cast<double>(counts_.size());
  // Fraction of values strictly below `constant`, with in-bucket
  // linear interpolation.
  auto frac_below = [&](double c) {
    if (c <= min_) return 0.0;
    if (c >= max_) return 1.0;
    int b = static_cast<int>((c - min_) / width);
    if (b >= static_cast<int>(counts_.size())) b = static_cast<int>(counts_.size()) - 1;
    uint64_t below = 0;
    for (int i = 0; i < b; ++i) below += counts_[i];
    double in_bucket = (c - (min_ + b * width)) / width;
    double est = static_cast<double>(below) +
                 in_bucket * static_cast<double>(counts_[b]);
    return est / static_cast<double>(total_);
  };
  if (op == "<") return frac_below(constant);
  if (op == "<=") return frac_below(constant + 1e-12 * (max_ - min_));
  if (op == ">") return 1.0 - frac_below(constant);
  if (op == ">=") return 1.0 - frac_below(constant - 1e-12 * (max_ - min_));
  if (op == "=") {
    // Assume uniform within a bucket.
    int b = static_cast<int>((constant - min_) / width);
    if (b < 0 || b >= static_cast<int>(counts_.size())) return 0;
    double bucket_frac =
        static_cast<double>(counts_[b]) / static_cast<double>(total_);
    return bucket_frac / std::max(1.0, width);
  }
  return 0.5;
}

double Histogram::Distance(const Histogram& other) const {
  if (total_ == 0 && other.total_ == 0) return 0;
  if (total_ == 0 || other.total_ == 0) return 1;
  // Re-bucket both onto a shared 32-bucket grid over the union range.
  double lo = std::min(min_, other.min_);
  double hi = std::max(max_, other.max_);
  if (lo == hi) return 0;
  constexpr int kGrid = 32;
  auto project = [&](const Histogram& h) {
    std::vector<double> grid(kGrid, 0);
    double width = (h.max_ - h.min_) / static_cast<double>(h.counts_.size());
    for (size_t b = 0; b < h.counts_.size(); ++b) {
      double center = h.counts_.size() == 1
                          ? h.min_
                          : h.min_ + (static_cast<double>(b) + 0.5) * width;
      int g = static_cast<int>((center - lo) / (hi - lo) * kGrid);
      if (g >= kGrid) g = kGrid - 1;
      if (g < 0) g = 0;
      grid[g] += static_cast<double>(h.counts_[b]) / static_cast<double>(h.total_);
    }
    return grid;
  };
  std::vector<double> a = project(*this);
  std::vector<double> b = project(other);
  double l1 = 0;
  for (int i = 0; i < kGrid; ++i) l1 += std::fabs(a[i] - b[i]);
  return l1 / 2.0;  // total-variation distance in [0,1]
}

TableStats ComputeTableStats(const Table& table) {
  TableStats stats;
  stats.table = table.schema().name();
  stats.row_count = table.num_rows();
  const size_t num_cols = table.schema().num_columns();
  constexpr size_t kDistinctCap = 100000;

  for (size_t c = 0; c < num_cols; ++c) {
    ColumnStats cs;
    cs.name = table.schema().columns()[c].name;
    cs.count = table.num_rows();
    std::vector<Value> values;
    values.reserve(table.num_rows());
    std::unordered_map<uint64_t, uint64_t> freq;
    std::map<uint64_t, Value> representative;
    for (const Row& r : table.rows()) {
      const Value& v = r[c];
      if (v.is_null()) {
        ++cs.nulls;
        continue;
      }
      values.push_back(v);
      if (freq.size() < kDistinctCap) {
        uint64_t h = v.Hash();
        ++freq[h];
        representative.emplace(h, v);
      }
      if (cs.min_value.is_null() || v.Compare(cs.min_value) < 0) cs.min_value = v;
      if (cs.max_value.is_null() || v.Compare(cs.max_value) > 0) cs.max_value = v;
    }
    cs.distinct = freq.size();
    cs.histogram = Histogram::Build(values);
    // Top values.
    std::vector<std::pair<uint64_t, uint64_t>> by_freq(freq.begin(), freq.end());
    std::sort(by_freq.begin(), by_freq.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (size_t i = 0; i < by_freq.size() && i < 8; ++i) {
      cs.top_values.emplace_back(representative[by_freq[i].first],
                                 by_freq[i].second);
    }
    stats.columns.push_back(std::move(cs));
  }
  return stats;
}

double StatsDrift(const TableStats& before, const TableStats& after) {
  double drift = 0;
  // Row-count component.
  double rows_before = static_cast<double>(before.row_count);
  double rows_after = static_cast<double>(after.row_count);
  if (rows_before > 0 || rows_after > 0) {
    drift = std::fabs(rows_after - rows_before) /
            std::max(rows_before, rows_after);
  }
  // Distribution component: match columns by name.
  for (const ColumnStats& b : before.columns) {
    for (const ColumnStats& a : after.columns) {
      if (a.name != b.name) continue;
      drift = std::max(drift, b.histogram.Distance(a.histogram));
      break;
    }
  }
  return std::min(1.0, drift);
}

}  // namespace cqms::db
