#include "db/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace cqms::db {

namespace {

std::string CsvQuote(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

/// Splits one CSV record honoring quotes. Assumes records do not span
/// lines (fields with embedded newlines are not produced by ExportCsv).
std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

Status ExportCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const auto& cols = table.schema().columns();
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out << ",";
    out << CsvQuote(cols[i].name);
  }
  out << "\n";
  for (const Row& r : table.rows()) {
    for (size_t i = 0; i < r.size(); ++i) {
      if (i > 0) out << ",";
      if (!r[i].is_null()) out << CsvQuote(r[i].ToString());
    }
    out << "\n";
  }
  return out.good() ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status ImportCsv(Database* db, const std::string& table_name,
                 const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty CSV file: " + path);
  std::vector<std::string> header = ParseCsvLine(line);

  std::vector<std::vector<std::string>> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = ParseCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::IoError("CSV arity mismatch in " + path);
    }
    records.push_back(std::move(fields));
  }

  // Infer types per column.
  std::vector<ValueType> types(header.size(), ValueType::kInt);
  for (size_t c = 0; c < header.size(); ++c) {
    for (const auto& rec : records) {
      const std::string& f = rec[c];
      if (f.empty()) continue;  // NULL
      if (types[c] == ValueType::kInt && !LooksLikeInt(f)) {
        types[c] = ValueType::kDouble;
      }
      if (types[c] == ValueType::kDouble && !LooksLikeDouble(f)) {
        types[c] = ValueType::kString;
        break;
      }
    }
  }

  std::vector<ColumnDef> defs;
  defs.reserve(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    defs.push_back({header[c], types[c]});
  }
  CQMS_RETURN_IF_ERROR(db->CreateTable(TableSchema(table_name, std::move(defs))));

  for (const auto& rec : records) {
    Row row;
    row.reserve(rec.size());
    for (size_t c = 0; c < rec.size(); ++c) {
      const std::string& f = rec[c];
      if (f.empty()) {
        row.push_back(Value::Null());
      } else if (types[c] == ValueType::kInt) {
        row.push_back(Value::Int(std::strtoll(f.c_str(), nullptr, 10)));
      } else if (types[c] == ValueType::kDouble) {
        row.push_back(Value::Double(std::strtod(f.c_str(), nullptr)));
      } else {
        row.push_back(Value::String(f));
      }
    }
    CQMS_RETURN_IF_ERROR(db->Insert(table_name, std::move(row)));
  }
  return Status::Ok();
}

}  // namespace cqms::db
