#ifndef CQMS_DB_VALUE_H_
#define CQMS_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace cqms::db {

/// Column data types supported by the engine.
enum class ValueType { kNull, kInt, kDouble, kString, kBool };

/// Returns "INT", "DOUBLE", "STRING", "BOOL" or "NULL".
const char* ValueTypeToString(ValueType t);

/// A dynamically typed SQL value with three-valued-logic-aware
/// comparisons. Small enough to copy freely.
class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.double_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = std::move(v);
    return out;
  }
  static Value Bool(bool v) {
    Value out;
    out.type_ = ValueType::kBool;
    out.bool_ = v;
    return out;
  }

  /// Converts a parsed SQL literal.
  static Value FromLiteral(const sql::Literal& lit);

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_numeric() const {
    return type_ == ValueType::kInt || type_ == ValueType::kDouble;
  }

  int64_t AsInt() const { return int_; }
  bool AsBool() const { return bool_; }
  const std::string& AsString() const { return string_; }

  /// Numeric view: ints widen to double. Only valid for numeric values.
  double AsDouble() const {
    return type_ == ValueType::kInt ? static_cast<double>(int_) : double_;
  }

  /// Three-way comparison for ORDER BY and comparison operators.
  /// NULLs sort first; cross numeric types compare by value; comparing a
  /// string with a number orders by type id (stable, engine-defined).
  /// Returns -1, 0 or 1.
  int Compare(const Value& other) const;

  /// SQL equality (NULL-insensitive; used for grouping/DISTINCT where
  /// NULLs compare equal to each other).
  bool GroupEquals(const Value& other) const { return Compare(other) == 0; }

  /// Hash consistent with Compare()==0 for grouping.
  uint64_t Hash() const;

  /// Display rendering (NULL prints as "NULL"; strings unquoted).
  std::string ToString() const;

  /// SQL-literal rendering (strings quoted/escaped) for re-parseable text.
  std::string ToSqlLiteral() const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  ValueType type_;
  int64_t int_ = 0;
  double double_ = 0;
  bool bool_ = false;
  std::string string_;
};

/// A tuple of values.
using Row = std::vector<Value>;

/// Hash of a full row (order-sensitive); used by DISTINCT/UNION/grouping.
uint64_t HashRow(const Row& row);

/// Renders a row as comma-separated values.
std::string RowToString(const Row& row);

}  // namespace cqms::db

#endif  // CQMS_DB_VALUE_H_
