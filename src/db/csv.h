#ifndef CQMS_DB_CSV_H_
#define CQMS_DB_CSV_H_

#include <string>

#include "common/status.h"
#include "db/database.h"

namespace cqms::db {

/// Writes `table` as CSV (header row, RFC-4180 quoting) to `path`.
Status ExportCsv(const Table& table, const std::string& path);

/// Loads CSV from `path` into a new table `table_name` in `db`, inferring
/// column types (INT, then DOUBLE, then STRING) from the data.
Status ImportCsv(Database* db, const std::string& table_name,
                 const std::string& path);

}  // namespace cqms::db

#endif  // CQMS_DB_CSV_H_
