#ifndef CQMS_DB_SCHEMA_H_
#define CQMS_DB_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "db/value.h"

namespace cqms::db {

/// A column definition.
struct ColumnDef {
  std::string name;  ///< Stored lower-cased.
  ValueType type = ValueType::kNull;
};

/// Schema of one relation. Column lookups are case-insensitive (names are
/// normalized to lower case at construction).
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `column_name` (case-insensitive), or -1.
  int FindColumn(const std::string& column_name) const;

  bool HasColumn(const std::string& column_name) const {
    return FindColumn(column_name) >= 0;
  }

 private:
  friend class Catalog;
  std::string name_;
  std::vector<ColumnDef> columns_;
};

/// Kinds of schema evolution events the catalog records. The Query
/// Maintenance component replays this log to find queries invalidated by
/// schema change (paper §4.4).
enum class SchemaChangeKind {
  kCreateTable,
  kDropTable,
  kRenameTable,
  kAddColumn,
  kDropColumn,
  kRenameColumn,
};

/// One schema evolution event.
struct SchemaChange {
  SchemaChangeKind kind;
  Micros timestamp = 0;
  std::string table;     ///< Affected table (old name for renames).
  std::string column;    ///< Affected column; empty for table-level events.
  std::string new_name;  ///< New table/column name for renames.
};

/// The system catalog: named table schemas plus a timestamped change log.
///
/// Every mutation bumps `version()` and appends to `changes()`, giving
/// Query Maintenance an efficient "what changed since t" primitive —
/// the paper suggests "comparing the timestamp of a query with that of
/// the last schema modification on any input relation".
class Catalog {
 public:
  explicit Catalog(const Clock* clock = nullptr) : clock_(clock) {}

  Status CreateTable(const TableSchema& schema);
  Status DropTable(const std::string& table);
  Status RenameTable(const std::string& table, const std::string& new_name);
  Status AddColumn(const std::string& table, const ColumnDef& column);
  Status DropColumn(const std::string& table, const std::string& column);
  Status RenameColumn(const std::string& table, const std::string& column,
                      const std::string& new_name);

  /// Case-insensitive lookup; nullptr when absent.
  const TableSchema* FindTable(const std::string& table) const;

  std::vector<std::string> TableNames() const;

  int64_t version() const { return version_; }
  const std::vector<SchemaChange>& changes() const { return changes_; }

  /// Changes strictly after `since` (timestamp order == append order).
  std::vector<SchemaChange> ChangesSince(Micros since) const;

  /// Timestamp of the last change touching `table` (0 if never).
  Micros LastChangeTime(const std::string& table) const;

 private:
  void Record(SchemaChange change);
  Micros Now() const { return clock_ != nullptr ? clock_->Now() : 0; }

  const Clock* clock_;
  std::map<std::string, TableSchema> tables_;  // key: lower-cased name
  std::vector<SchemaChange> changes_;
  std::map<std::string, Micros> last_change_;  // key: lower-cased name
  int64_t version_ = 0;
};

}  // namespace cqms::db

#endif  // CQMS_DB_SCHEMA_H_
