#include "db/schema.h"

#include "common/string_util.h"

namespace cqms::db {

TableSchema::TableSchema(std::string name, std::vector<ColumnDef> columns)
    : name_(ToLower(name)), columns_(std::move(columns)) {
  for (ColumnDef& c : columns_) c.name = ToLower(c.name);
}

int TableSchema::FindColumn(const std::string& column_name) const {
  std::string lower = ToLower(column_name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == lower) return static_cast<int>(i);
  }
  return -1;
}

Status Catalog::CreateTable(const TableSchema& schema) {
  std::string key = schema.name();
  if (key.empty()) return Status::InvalidArgument("table name must be non-empty");
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + key);
  }
  tables_[key] = schema;
  Record({SchemaChangeKind::kCreateTable, Now(), key, "", ""});
  return Status::Ok();
}

Status Catalog::DropTable(const std::string& table) {
  std::string key = ToLower(table);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("no such table: " + key);
  }
  Record({SchemaChangeKind::kDropTable, Now(), key, "", ""});
  return Status::Ok();
}

Status Catalog::RenameTable(const std::string& table, const std::string& new_name) {
  std::string key = ToLower(table);
  std::string new_key = ToLower(new_name);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::NotFound("no such table: " + key);
  if (tables_.count(new_key) > 0) {
    return Status::AlreadyExists("table already exists: " + new_key);
  }
  TableSchema schema = std::move(it->second);
  tables_.erase(it);
  schema.name_ = new_key;
  tables_[new_key] = std::move(schema);
  Record({SchemaChangeKind::kRenameTable, Now(), key, "", new_key});
  return Status::Ok();
}

Status Catalog::AddColumn(const std::string& table, const ColumnDef& column) {
  std::string key = ToLower(table);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::NotFound("no such table: " + key);
  std::string col = ToLower(column.name);
  if (it->second.HasColumn(col)) {
    return Status::AlreadyExists("column already exists: " + key + "." + col);
  }
  it->second.columns_.push_back({col, column.type});
  Record({SchemaChangeKind::kAddColumn, Now(), key, col, ""});
  return Status::Ok();
}

Status Catalog::DropColumn(const std::string& table, const std::string& column) {
  std::string key = ToLower(table);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::NotFound("no such table: " + key);
  int idx = it->second.FindColumn(column);
  if (idx < 0) {
    return Status::NotFound("no such column: " + key + "." + ToLower(column));
  }
  it->second.columns_.erase(it->second.columns_.begin() + idx);
  Record({SchemaChangeKind::kDropColumn, Now(), key, ToLower(column), ""});
  return Status::Ok();
}

Status Catalog::RenameColumn(const std::string& table, const std::string& column,
                             const std::string& new_name) {
  std::string key = ToLower(table);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::NotFound("no such table: " + key);
  int idx = it->second.FindColumn(column);
  if (idx < 0) {
    return Status::NotFound("no such column: " + key + "." + ToLower(column));
  }
  std::string new_col = ToLower(new_name);
  if (it->second.HasColumn(new_col)) {
    return Status::AlreadyExists("column already exists: " + key + "." + new_col);
  }
  it->second.columns_[idx].name = new_col;
  Record({SchemaChangeKind::kRenameColumn, Now(), key, ToLower(column), new_col});
  return Status::Ok();
}

const TableSchema* Catalog::FindTable(const std::string& table) const {
  auto it = tables_.find(ToLower(table));
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, schema] : tables_) names.push_back(name);
  return names;
}

std::vector<SchemaChange> Catalog::ChangesSince(Micros since) const {
  std::vector<SchemaChange> out;
  for (const SchemaChange& c : changes_) {
    if (c.timestamp > since) out.push_back(c);
  }
  return out;
}

Micros Catalog::LastChangeTime(const std::string& table) const {
  auto it = last_change_.find(ToLower(table));
  return it == last_change_.end() ? 0 : it->second;
}

void Catalog::Record(SchemaChange change) {
  ++version_;
  last_change_[change.table] = change.timestamp;
  if (!change.new_name.empty() && change.kind == SchemaChangeKind::kRenameTable) {
    last_change_[change.new_name] = change.timestamp;
  }
  changes_.push_back(std::move(change));
}

}  // namespace cqms::db
