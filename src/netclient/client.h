#ifndef CQMS_NETCLIENT_CLIENT_H_
#define CQMS_NETCLIENT_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/frame_codec.h"
#include "common/result.h"
#include "common/status.h"
#include "net/wire.h"

namespace cqms::netclient {

struct ClientOptions {
  /// Reported to the server in the Hello handshake (logs, debugging).
  std::string client_name = "cqms_client";
  /// Ceiling on response frames this client will accept.
  size_t max_frame_bytes = 64u << 20;
  /// TCP connect deadline; 0 blocks indefinitely (kernel default). A
  /// partitioned or blackholed server yields kDeadlineExceeded instead
  /// of hanging the caller.
  int64_t connect_timeout_ms = 0;
  /// Per-socket-operation deadline (SO_RCVTIMEO/SO_SNDTIMEO) applied to
  /// every request path, one-shot and pipelined; 0 blocks indefinitely.
  /// An expired deadline surfaces as a *sticky* kDeadlineExceeded: the
  /// response stream position is unknown, so the connection is dead —
  /// reconnect to retry.
  int64_t timeout_ms = 0;
};

/// Synchronous client for the CQMS wire protocol (docs/server.md) with
/// explicit pipelining: every op has a one-shot wrapper (Search, Append,
/// ...) and a Send*/Wait* pair. Send* encodes the request into a local
/// buffer and returns its request id; Flush() pushes the batch down the
/// socket in one write; Wait*(id) blocks for that specific response,
/// parking any other responses that arrive first (the server answers out
/// of order: reads overtake writes).
///
/// Not thread-safe: one CqmsClient per thread, or external locking.
class CqmsClient {
 public:
  /// Connects and runs the version handshake; fails on connection
  /// errors and on protocol version mismatch.
  static Result<std::unique_ptr<CqmsClient>> Connect(const std::string& host,
                                                     uint16_t port,
                                                     ClientOptions options = {});
  ~CqmsClient();

  CqmsClient(const CqmsClient&) = delete;
  CqmsClient& operator=(const CqmsClient&) = delete;

  /// Handshake results.
  const net::HelloResponse& server_hello() const { return hello_; }

  // --- one-shot synchronous wrappers ---------------------------------------

  Result<net::SearchResult> Search(const std::string& viewer,
                                   const net::SearchSpec& spec);
  Result<net::AppendResult> Append(const net::AppendRequest& request);
  Status Rewrite(int64_t id, const std::string& new_text);
  Status Annotate(int64_t id, const std::string& author, const std::string& text,
                  const std::string& fragment = "");
  Status SetVisibility(const std::string& requester, int64_t id,
                       storage::Visibility visibility);
  Status Delete(const std::string& requester, int64_t id, bool is_admin = false);
  Status RegisterUser(const std::string& user,
                      const std::vector<std::string>& groups);
  Result<net::RecommendResult> Recommend(const std::string& viewer,
                                         const std::string& sql_text,
                                         uint64_t k = 5);
  Result<std::string> Browse(const std::string& viewer,
                             uint64_t max_sessions = 20);
  Result<std::string> ShowSession(const std::string& viewer,
                                  int64_t session_id);
  Result<net::StatsResult> Stats();
  /// Prometheus-style exposition text covering every layer's metric
  /// series plus the server's own per-op counters.
  Result<std::string> MetricsDump();
  Status Checkpoint();
  Status Maintain(bool run_mining = true);

  // --- pipelining ----------------------------------------------------------

  uint64_t SendSearch(const std::string& viewer, const net::SearchSpec& spec);
  uint64_t SendAppend(const net::AppendRequest& request);
  uint64_t SendRecommend(const std::string& viewer, const std::string& sql_text,
                         uint64_t k = 5);
  uint64_t SendStats();

  /// Writes every buffered request down the socket.
  Status Flush();

  Result<net::SearchResult> WaitSearch(uint64_t request_id);
  Result<net::AppendResult> WaitAppend(uint64_t request_id);
  Result<net::RecommendResult> WaitRecommend(uint64_t request_id);
  Result<net::StatsResult> WaitStats(uint64_t request_id);

  /// Raw escape hatches for tests: frame an arbitrary payload / read one
  /// raw response payload.
  Status SendRawPayload(const std::string& payload);
  Result<std::string> ReadRawPayload();

  /// Shuts the socket down both ways, unblocking any in-progress read
  /// with kUnavailable. The only method safe to call from another
  /// thread; the replication follower's Stop() uses it to interrupt its
  /// streaming thread.
  void Abort();

  /// Sticky transport failure, if any (kOk while the connection is
  /// healthy). Typed server *responses* never set this; a non-OK value
  /// means the response stream position is unknown and the connection
  /// must be abandoned. FailoverClient keys its at-most-once mutation
  /// rule on this: an error with a healthy transport was a server
  /// rejection (safe to retry elsewhere), an error with a broken
  /// transport may have executed (never retried).
  const Status& transport_status() const { return broken_; }

 private:
  CqmsClient(int fd, ClientOptions options);

  /// Begins a request in the send buffer and returns its id. The body
  /// encoder appends to `w` after the envelope.
  template <typename EncodeBody>
  uint64_t Enqueue(net::Op op, EncodeBody&& encode);

  /// Blocks until the response for `request_id` is available, filing
  /// out-of-order arrivals in `parked_`.
  Result<std::string> WaitPayload(uint64_t request_id);

  /// Decodes a full response payload for `op`: checks the envelope,
  /// surfaces typed errors, returns the body bytes.
  template <typename T>
  Result<T> WaitDecoded(uint64_t request_id, net::Op op,
                        bool (*decode)(BinaryReader*, T*));
  Status WaitOk(uint64_t request_id, net::Op op);

  Status ReadMore();  ///< One blocking read into the decoder.

  int fd_ = -1;
  ClientOptions options_;
  net::HelloResponse hello_;
  uint64_t next_request_id_ = 1;
  std::string sendbuf_;
  FrameDecoder decoder_;
  /// Responses read while waiting for a different id (payload owned).
  std::unordered_map<uint64_t, std::string> parked_;
  /// Sticky transport failure: every later call returns it.
  Status broken_;
};

}  // namespace cqms::netclient

#endif  // CQMS_NETCLIENT_CLIENT_H_
