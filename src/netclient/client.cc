#include "netclient/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

namespace cqms::netclient {

namespace {

Status ErrnoStatus(const std::string& what) {
  // SO_RCVTIMEO/SO_SNDTIMEO expiry surfaces as EAGAIN/EWOULDBLOCK on a
  // blocking socket; report it as the typed deadline error.
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    return Status::DeadlineExceeded(what + " timed out");
  }
  return Status::IoError(what + ": " + std::string(strerror(errno)));
}

Status WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ErrnoStatus("send");
  }
  return Status::Ok();
}

/// connect(2) with a deadline: non-blocking connect, poll for
/// writability, then read SO_ERROR for the real outcome. Restores the
/// blocking flag on success.
Status ConnectWithTimeout(int fd, const sockaddr_in& addr, int64_t timeout_ms,
                          const std::string& label) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl " + label);
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) return ErrnoStatus("connect " + label);
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    int ready;
    do {
      ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) return ErrnoStatus("poll " + label);
    if (ready == 0) {
      return Status::DeadlineExceeded("connect " + label + " timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      return ErrnoStatus("getsockopt " + label);
    }
    if (err != 0) {
      errno = err;
      return ErrnoStatus("connect " + label);
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) return ErrnoStatus("fcntl " + label);
  return Status::Ok();
}

void SetIoTimeout(int fd, int64_t timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

CqmsClient::CqmsClient(int fd, ClientOptions options)
    : fd_(fd),
      options_(std::move(options)),
      decoder_(options_.max_frame_bytes) {}

CqmsClient::~CqmsClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<CqmsClient>> CqmsClient::Connect(const std::string& host,
                                                        uint16_t port,
                                                        ClientOptions options) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparsable address: " + host);
  }
  const std::string label = host + ":" + std::to_string(port);
  if (options.connect_timeout_ms > 0) {
    Status s = ConnectWithTimeout(fd, addr, options.connect_timeout_ms, label);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    Status s = ErrnoStatus("connect " + label);
    ::close(fd);
    return s;
  }
  if (options.timeout_ms > 0) SetIoTimeout(fd, options.timeout_ms);

  std::unique_ptr<CqmsClient> client(new CqmsClient(fd, std::move(options)));

  net::HelloRequest hello;
  hello.protocol_version = net::kProtocolVersion;
  hello.client_name = client->options_.client_name;
  uint64_t id = client->Enqueue(net::Op::kHello, [&](BinaryWriter* w) {
    net::EncodeHelloRequest(w, hello);
  });
  Status s = client->Flush();
  if (!s.ok()) return s;
  Result<net::HelloResponse> resp =
      client->WaitDecoded(id, net::Op::kHello, net::DecodeHelloResponse);
  if (!resp.ok()) return resp.status();
  client->hello_ = std::move(resp).value();
  return client;
}

template <typename EncodeBody>
uint64_t CqmsClient::Enqueue(net::Op op, EncodeBody&& encode) {
  uint64_t id = next_request_id_++;
  BinaryWriter w;
  net::BeginRequest(&w, id, op);
  encode(&w);
  AppendFrame(&sendbuf_, w.data());
  return id;
}

Status CqmsClient::Flush() {
  if (!broken_.ok()) return broken_;
  if (sendbuf_.empty()) return Status::Ok();
  Status s = WriteAll(fd_, sendbuf_.data(), sendbuf_.size());
  sendbuf_.clear();
  if (!s.ok()) broken_ = s;
  return s;
}

Status CqmsClient::ReadMore() {
  char buf[65536];
  while (true) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      return Status::Ok();
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("recv");
  }
}

Result<std::string> CqmsClient::WaitPayload(uint64_t request_id) {
  if (!broken_.ok()) return broken_;
  while (true) {
    auto it = parked_.find(request_id);
    if (it != parked_.end()) {
      std::string payload = std::move(it->second);
      parked_.erase(it);
      return payload;
    }
    std::string payload;
    FrameDecoder::Next next = decoder_.Poll(&payload);
    if (next == FrameDecoder::Next::kError) {
      broken_ = decoder_.error();
      return broken_;
    }
    if (next == FrameDecoder::Next::kNeedMore) {
      Status s = ReadMore();
      if (!s.ok()) {
        broken_ = s;
        return s;
      }
      continue;
    }
    net::ResponseEnvelope env;
    if (!net::DecodeResponseEnvelope(payload, &env)) {
      broken_ = Status::Corruption("malformed response envelope");
      return broken_;
    }
    if (env.request_id == request_id) return payload;
    parked_.emplace(env.request_id, std::move(payload));
  }
}

template <typename T>
Result<T> CqmsClient::WaitDecoded(uint64_t request_id, net::Op op,
                                  bool (*decode)(BinaryReader*, T*)) {
  Result<std::string> payload = WaitPayload(request_id);
  if (!payload.ok()) return payload.status();
  net::ResponseEnvelope env;
  if (!net::DecodeResponseEnvelope(*payload, &env)) {
    return Status::Corruption("malformed response envelope");
  }
  if (env.op != op) {
    return Status::Corruption("response op mismatch: expected " +
                              std::string(net::OpName(op)) + ", got " +
                              net::OpName(env.op));
  }
  if (!env.ok()) return env.ToStatus();
  BinaryReader r(env.body);
  T out;
  if (!decode(&r, &out) || !r.AtEnd()) {
    return Status::Corruption(std::string("malformed ") + net::OpName(op) +
                              " response body");
  }
  return out;
}

Status CqmsClient::WaitOk(uint64_t request_id, net::Op op) {
  Result<std::string> payload = WaitPayload(request_id);
  if (!payload.ok()) return payload.status();
  net::ResponseEnvelope env;
  if (!net::DecodeResponseEnvelope(*payload, &env)) {
    return Status::Corruption("malformed response envelope");
  }
  if (env.op != op) return Status::Corruption("response op mismatch");
  return env.ToStatus();
}

// --- pipelined sends -------------------------------------------------------

uint64_t CqmsClient::SendSearch(const std::string& viewer,
                                const net::SearchSpec& spec) {
  net::SearchRequest req;
  req.viewer = viewer;
  req.spec = spec;
  return Enqueue(net::Op::kSearch,
                 [&](BinaryWriter* w) { net::EncodeSearchRequest(w, req); });
}

uint64_t CqmsClient::SendAppend(const net::AppendRequest& request) {
  return Enqueue(net::Op::kAppend,
                 [&](BinaryWriter* w) { net::EncodeAppendRequest(w, request); });
}

uint64_t CqmsClient::SendRecommend(const std::string& viewer,
                                   const std::string& sql_text, uint64_t k) {
  net::RecommendRequest req;
  req.viewer = viewer;
  req.sql_text = sql_text;
  req.k = k;
  return Enqueue(net::Op::kRecommend, [&](BinaryWriter* w) {
    net::EncodeRecommendRequest(w, req);
  });
}

uint64_t CqmsClient::SendStats() {
  return Enqueue(net::Op::kStats, [](BinaryWriter*) {});
}

Result<net::SearchResult> CqmsClient::WaitSearch(uint64_t request_id) {
  return WaitDecoded(request_id, net::Op::kSearch, net::DecodeSearchResult);
}

Result<net::AppendResult> CqmsClient::WaitAppend(uint64_t request_id) {
  return WaitDecoded(request_id, net::Op::kAppend, net::DecodeAppendResult);
}

Result<net::RecommendResult> CqmsClient::WaitRecommend(uint64_t request_id) {
  return WaitDecoded(request_id, net::Op::kRecommend,
                     net::DecodeRecommendResult);
}

Result<net::StatsResult> CqmsClient::WaitStats(uint64_t request_id) {
  return WaitDecoded(request_id, net::Op::kStats, net::DecodeStatsResult);
}

// --- one-shot wrappers -----------------------------------------------------

Result<net::SearchResult> CqmsClient::Search(const std::string& viewer,
                                             const net::SearchSpec& spec) {
  uint64_t id = SendSearch(viewer, spec);
  Status s = Flush();
  if (!s.ok()) return s;
  return WaitSearch(id);
}

Result<net::AppendResult> CqmsClient::Append(const net::AppendRequest& request) {
  uint64_t id = SendAppend(request);
  Status s = Flush();
  if (!s.ok()) return s;
  return WaitAppend(id);
}

Status CqmsClient::Rewrite(int64_t id, const std::string& new_text) {
  net::RewriteRequest req;
  req.id = id;
  req.new_text = new_text;
  uint64_t rid = Enqueue(net::Op::kRewrite, [&](BinaryWriter* w) {
    net::EncodeRewriteRequest(w, req);
  });
  CQMS_RETURN_IF_ERROR(Flush());
  return WaitOk(rid, net::Op::kRewrite);
}

Status CqmsClient::Annotate(int64_t id, const std::string& author,
                            const std::string& text,
                            const std::string& fragment) {
  net::AnnotateRequest req;
  req.id = id;
  req.author = author;
  req.text = text;
  req.fragment = fragment;
  uint64_t rid = Enqueue(net::Op::kAnnotate, [&](BinaryWriter* w) {
    net::EncodeAnnotateRequest(w, req);
  });
  CQMS_RETURN_IF_ERROR(Flush());
  return WaitOk(rid, net::Op::kAnnotate);
}

Status CqmsClient::SetVisibility(const std::string& requester, int64_t id,
                                 storage::Visibility visibility) {
  net::SetVisibilityRequest req;
  req.requester = requester;
  req.id = id;
  req.visibility = visibility;
  uint64_t rid = Enqueue(net::Op::kSetVisibility, [&](BinaryWriter* w) {
    net::EncodeSetVisibilityRequest(w, req);
  });
  CQMS_RETURN_IF_ERROR(Flush());
  return WaitOk(rid, net::Op::kSetVisibility);
}

Status CqmsClient::Delete(const std::string& requester, int64_t id,
                          bool is_admin) {
  net::DeleteRequest req;
  req.requester = requester;
  req.id = id;
  req.is_admin = is_admin;
  uint64_t rid = Enqueue(net::Op::kDelete, [&](BinaryWriter* w) {
    net::EncodeDeleteRequest(w, req);
  });
  CQMS_RETURN_IF_ERROR(Flush());
  return WaitOk(rid, net::Op::kDelete);
}

Status CqmsClient::RegisterUser(const std::string& user,
                                const std::vector<std::string>& groups) {
  net::RegisterUserRequest req;
  req.user = user;
  req.groups = groups;
  uint64_t rid = Enqueue(net::Op::kRegisterUser, [&](BinaryWriter* w) {
    net::EncodeRegisterUserRequest(w, req);
  });
  CQMS_RETURN_IF_ERROR(Flush());
  return WaitOk(rid, net::Op::kRegisterUser);
}

Result<net::RecommendResult> CqmsClient::Recommend(const std::string& viewer,
                                                   const std::string& sql_text,
                                                   uint64_t k) {
  uint64_t id = SendRecommend(viewer, sql_text, k);
  Status s = Flush();
  if (!s.ok()) return s;
  return WaitRecommend(id);
}

Result<std::string> CqmsClient::Browse(const std::string& viewer,
                                       uint64_t max_sessions) {
  net::BrowseRequest req;
  req.viewer = viewer;
  req.max_sessions = max_sessions;
  uint64_t id = Enqueue(net::Op::kBrowse, [&](BinaryWriter* w) {
    net::EncodeBrowseRequest(w, req);
  });
  CQMS_RETURN_IF_ERROR(Flush());
  Result<net::TextResult> text =
      WaitDecoded(id, net::Op::kBrowse, net::DecodeTextResult);
  if (!text.ok()) return text.status();
  return std::move(text->text);
}

Result<std::string> CqmsClient::ShowSession(const std::string& viewer,
                                            int64_t session_id) {
  net::ShowSessionRequest req;
  req.viewer = viewer;
  req.session_id = session_id;
  uint64_t id = Enqueue(net::Op::kShowSession, [&](BinaryWriter* w) {
    net::EncodeShowSessionRequest(w, req);
  });
  CQMS_RETURN_IF_ERROR(Flush());
  Result<net::TextResult> text =
      WaitDecoded(id, net::Op::kShowSession, net::DecodeTextResult);
  if (!text.ok()) return text.status();
  return std::move(text->text);
}

Result<net::StatsResult> CqmsClient::Stats() {
  uint64_t id = SendStats();
  Status s = Flush();
  if (!s.ok()) return s;
  return WaitStats(id);
}

Result<std::string> CqmsClient::MetricsDump() {
  uint64_t id = Enqueue(net::Op::kMetricsDump, [](BinaryWriter*) {});
  CQMS_RETURN_IF_ERROR(Flush());
  Result<net::TextResult> text =
      WaitDecoded(id, net::Op::kMetricsDump, net::DecodeTextResult);
  if (!text.ok()) return text.status();
  return std::move(text->text);
}

Status CqmsClient::Checkpoint() {
  uint64_t id = Enqueue(net::Op::kCheckpoint, [](BinaryWriter*) {});
  CQMS_RETURN_IF_ERROR(Flush());
  return WaitOk(id, net::Op::kCheckpoint);
}

Status CqmsClient::Maintain(bool run_mining) {
  net::MaintainRequest req;
  req.run_mining = run_mining;
  uint64_t id = Enqueue(net::Op::kMaintain, [&](BinaryWriter* w) {
    net::EncodeMaintainRequest(w, req);
  });
  CQMS_RETURN_IF_ERROR(Flush());
  return WaitOk(id, net::Op::kMaintain);
}

// --- raw escape hatches ----------------------------------------------------

Status CqmsClient::SendRawPayload(const std::string& payload) {
  AppendFrame(&sendbuf_, payload);
  return Flush();
}

Result<std::string> CqmsClient::ReadRawPayload() {
  if (!broken_.ok()) return broken_;
  while (true) {
    std::string payload;
    FrameDecoder::Next next = decoder_.Poll(&payload);
    if (next == FrameDecoder::Next::kError) {
      broken_ = decoder_.error();
      return broken_;
    }
    if (next == FrameDecoder::Next::kFrame) return payload;
    Status s = ReadMore();
    if (!s.ok()) {
      broken_ = s;
      return s;
    }
  }
}

void CqmsClient::Abort() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace cqms::netclient
