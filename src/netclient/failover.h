#ifndef CQMS_NETCLIENT_FAILOVER_H_
#define CQMS_NETCLIENT_FAILOVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/wire.h"
#include "netclient/client.h"

namespace cqms::netclient {

/// One server address in a replication group.
struct Endpoint {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const;
};

/// Parses "host:port" (the format kNotPrimary redirects carry).
Result<Endpoint> ParseEndpoint(const std::string& spec);

struct FailoverOptions {
  /// Per-connection options (timeouts apply to every hop).
  ClientOptions client;
  /// Upper bound on endpoint hops for one logical operation; 0 derives
  /// 2 * endpoints + 1 (enough to chase one redirect past a full
  /// rotation).
  int max_attempts = 0;
  /// Flat pause between failed attempts, so a group that is briefly
  /// electing / restarting is not hammered. 0 disables.
  int64_t retry_backoff_ms = 20;
};

/// Replication-aware client over a group of cqms_serverd endpoints
/// (one primary, any number of live read replicas — docs/replication.md).
///
/// Reads (Search, Recommend, Browse, ShowSession, Stats) are served by
/// whichever endpoint answers: the client keeps one read connection and
/// rotates to the next endpoint on any failure, so reads keep flowing
/// from a replica while the primary is down or restarting.
///
/// Mutations (Append, Rewrite, Annotate, SetVisibility, Delete,
/// RegisterUser) target the believed primary. A typed kNotPrimary
/// response carries the leader's address; the client switches and
/// retries there. Retries happen ONLY on outcomes where the mutation is
/// known not to have executed — connect failure (nothing sent) or a
/// typed server rejection (kNotPrimary, kUnavailable, kDeadlineExceeded
/// sent as a response, i.e. rejected before execution). A transport
/// error after the request was flushed is never retried: the server may
/// have applied it, and this client promises at-most-once mutations.
/// Such outcomes surface the original error to the caller, who owns the
/// read-your-write / dedup decision.
///
/// Not thread-safe: one FailoverClient per thread, or external locking.
class FailoverClient {
 public:
  explicit FailoverClient(std::vector<Endpoint> endpoints,
                          FailoverOptions options = {});
  ~FailoverClient();

  FailoverClient(const FailoverClient&) = delete;
  FailoverClient& operator=(const FailoverClient&) = delete;

  // --- reads (any endpoint) ------------------------------------------------

  Result<net::SearchResult> Search(const std::string& viewer,
                                   const net::SearchSpec& spec);
  Result<net::RecommendResult> Recommend(const std::string& viewer,
                                         const std::string& sql_text,
                                         uint64_t k = 5);
  Result<std::string> Browse(const std::string& viewer,
                             uint64_t max_sessions = 20);
  Result<std::string> ShowSession(const std::string& viewer,
                                  int64_t session_id);
  Result<net::StatsResult> Stats();

  // --- mutations (primary only) --------------------------------------------

  Result<net::AppendResult> Append(const net::AppendRequest& request);
  Status Rewrite(int64_t id, const std::string& new_text);
  Status Annotate(int64_t id, const std::string& author, const std::string& text,
                  const std::string& fragment = "");
  Status SetVisibility(const std::string& requester, int64_t id,
                       storage::Visibility visibility);
  Status Delete(const std::string& requester, int64_t id, bool is_admin = false);
  Status RegisterUser(const std::string& user,
                      const std::vector<std::string>& groups);

  // --- introspection (tests, CLI) ------------------------------------------

  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  /// Endpoint index the next mutation will try first (updated by
  /// kNotPrimary redirects and connect failures).
  size_t primary_index() const { return primary_index_; }
  /// Endpoint index the last successful read used.
  size_t read_index() const { return read_index_; }

 private:
  /// Runs `fn` against some endpoint's connection, rotating freely on
  /// failure (reads are idempotent).
  Status ReadWithFailover(const std::function<Status(CqmsClient&)>& fn);
  /// Runs `fn` against the believed primary, following kNotPrimary
  /// redirects; retries only known-not-executed outcomes (see class
  /// comment).
  Status MutateWithFailover(const std::function<Status(CqmsClient&)>& fn);

  /// Index of `ep` in endpoints_, appending it if the group did not
  /// list it (a redirect can name an endpoint the caller did not know).
  size_t FindOrAddEndpoint(const Endpoint& ep);
  void Backoff();

  std::vector<Endpoint> endpoints_;
  FailoverOptions options_;

  size_t primary_index_ = 0;
  std::unique_ptr<CqmsClient> primary_conn_;
  size_t primary_conn_index_ = 0;

  size_t read_index_ = 0;
  std::unique_ptr<CqmsClient> read_conn_;
  size_t read_conn_index_ = 0;
};

}  // namespace cqms::netclient

#endif  // CQMS_NETCLIENT_FAILOVER_H_
