#include "netclient/failover.h"

#include <chrono>
#include <thread>
#include <utility>

namespace cqms::netclient {

std::string Endpoint::ToString() const {
  return host + ":" + std::to_string(port);
}

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return Status::InvalidArgument("endpoint must be host:port, got \"" +
                                   spec + "\"");
  }
  Endpoint ep;
  ep.host = spec.substr(0, colon);
  long port = 0;
  for (size_t i = colon + 1; i < spec.size(); ++i) {
    char c = spec[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint port is not numeric: \"" +
                                     spec + "\"");
    }
    port = port * 10 + (c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("endpoint port out of range: \"" + spec +
                                     "\"");
    }
  }
  ep.port = static_cast<uint16_t>(port);
  return ep;
}

FailoverClient::FailoverClient(std::vector<Endpoint> endpoints,
                               FailoverOptions options)
    : endpoints_(std::move(endpoints)), options_(std::move(options)) {}

FailoverClient::~FailoverClient() = default;

void FailoverClient::Backoff() {
  if (options_.retry_backoff_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.retry_backoff_ms));
  }
}

size_t FailoverClient::FindOrAddEndpoint(const Endpoint& ep) {
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    if (endpoints_[i].host == ep.host && endpoints_[i].port == ep.port) {
      return i;
    }
  }
  endpoints_.push_back(ep);
  return endpoints_.size() - 1;
}

Status FailoverClient::ReadWithFailover(
    const std::function<Status(CqmsClient&)>& fn) {
  if (endpoints_.empty()) return Status::Unavailable("no endpoints configured");
  const int max_attempts =
      options_.max_attempts > 0
          ? options_.max_attempts
          : static_cast<int>(2 * endpoints_.size() + 1);
  Status last = Status::Unavailable("read failover exhausted");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) Backoff();
    size_t index = read_index_ % endpoints_.size();
    if (read_conn_ == nullptr || read_conn_index_ != index ||
        !read_conn_->transport_status().ok()) {
      read_conn_.reset();
      auto conn = CqmsClient::Connect(endpoints_[index].host,
                                      endpoints_[index].port, options_.client);
      if (!conn.ok()) {
        last = conn.status();
        read_index_ = (index + 1) % endpoints_.size();
        continue;
      }
      read_conn_ = std::move(conn).value();
      read_conn_index_ = index;
    }
    Status s = fn(*read_conn_);
    if (s.ok()) return s;
    if (read_conn_->transport_status().ok()) {
      // A typed server rejection over a healthy link. Reads are
      // idempotent, so an availability-flavored rejection (draining
      // server, queue deadline) is worth one hop to another replica;
      // anything else (not found, permission) is the real answer.
      if (s.code() != StatusCode::kUnavailable &&
          s.code() != StatusCode::kDeadlineExceeded) {
        return s;
      }
    } else {
      read_conn_.reset();
    }
    last = std::move(s);
    read_index_ = (index + 1) % endpoints_.size();
  }
  return last;
}

Status FailoverClient::MutateWithFailover(
    const std::function<Status(CqmsClient&)>& fn) {
  if (endpoints_.empty()) return Status::Unavailable("no endpoints configured");
  const int max_attempts =
      options_.max_attempts > 0
          ? options_.max_attempts
          : static_cast<int>(2 * endpoints_.size() + 1);
  Status last = Status::Unavailable("mutation failover exhausted");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) Backoff();
    size_t index = primary_index_ % endpoints_.size();
    if (primary_conn_ == nullptr || primary_conn_index_ != index ||
        !primary_conn_->transport_status().ok()) {
      primary_conn_.reset();
      auto conn = CqmsClient::Connect(endpoints_[index].host,
                                      endpoints_[index].port, options_.client);
      if (!conn.ok()) {
        // Nothing reached a server: known not executed, try the next
        // endpoint (the primary may have moved).
        last = conn.status();
        primary_index_ = (index + 1) % endpoints_.size();
        continue;
      }
      primary_conn_ = std::move(conn).value();
      primary_conn_index_ = index;
    }
    Status s = fn(*primary_conn_);
    if (s.ok()) return s;
    if (!primary_conn_->transport_status().ok()) {
      // The link died after the request was flushed; the server may
      // have executed the mutation. At-most-once forbids a blind retry:
      // surface the failure and let the caller decide.
      primary_conn_.reset();
      return s;
    }
    // Typed server responses: the request was parsed and rejected
    // without executing, so retrying cannot double-apply.
    switch (s.code()) {
      case StatusCode::kNotPrimary: {
        std::string leader = net::ParseNotPrimaryLeader(s.message());
        if (!leader.empty()) {
          auto ep = ParseEndpoint(leader);
          if (ep.ok()) {
            primary_index_ = FindOrAddEndpoint(ep.value());
            break;
          }
        }
        // Redirect without a usable leader address: probe the ring.
        primary_index_ = (index + 1) % endpoints_.size();
        break;
      }
      case StatusCode::kUnavailable:
      case StatusCode::kDeadlineExceeded:
        // Draining server / request expired in queue — rejected before
        // execution. Try the next endpoint.
        primary_index_ = (index + 1) % endpoints_.size();
        break;
      default:
        // A real application error (invalid argument, permission, ...).
        return s;
    }
    last = std::move(s);
  }
  return last;
}

// --- reads -----------------------------------------------------------------

Result<net::SearchResult> FailoverClient::Search(const std::string& viewer,
                                                 const net::SearchSpec& spec) {
  Result<net::SearchResult> out = Status::Unavailable("not attempted");
  Status s = ReadWithFailover([&](CqmsClient& c) {
    out = c.Search(viewer, spec);
    return out.ok() ? Status::Ok() : out.status();
  });
  if (!s.ok()) return s;
  return out;
}

Result<net::RecommendResult> FailoverClient::Recommend(
    const std::string& viewer, const std::string& sql_text, uint64_t k) {
  Result<net::RecommendResult> out = Status::Unavailable("not attempted");
  Status s = ReadWithFailover([&](CqmsClient& c) {
    out = c.Recommend(viewer, sql_text, k);
    return out.ok() ? Status::Ok() : out.status();
  });
  if (!s.ok()) return s;
  return out;
}

Result<std::string> FailoverClient::Browse(const std::string& viewer,
                                           uint64_t max_sessions) {
  Result<std::string> out = Status::Unavailable("not attempted");
  Status s = ReadWithFailover([&](CqmsClient& c) {
    out = c.Browse(viewer, max_sessions);
    return out.ok() ? Status::Ok() : out.status();
  });
  if (!s.ok()) return s;
  return out;
}

Result<std::string> FailoverClient::ShowSession(const std::string& viewer,
                                                int64_t session_id) {
  Result<std::string> out = Status::Unavailable("not attempted");
  Status s = ReadWithFailover([&](CqmsClient& c) {
    out = c.ShowSession(viewer, session_id);
    return out.ok() ? Status::Ok() : out.status();
  });
  if (!s.ok()) return s;
  return out;
}

Result<net::StatsResult> FailoverClient::Stats() {
  Result<net::StatsResult> out = Status::Unavailable("not attempted");
  Status s = ReadWithFailover([&](CqmsClient& c) {
    out = c.Stats();
    return out.ok() ? Status::Ok() : out.status();
  });
  if (!s.ok()) return s;
  return out;
}

// --- mutations -------------------------------------------------------------

Result<net::AppendResult> FailoverClient::Append(
    const net::AppendRequest& request) {
  Result<net::AppendResult> out = Status::Unavailable("not attempted");
  Status s = MutateWithFailover([&](CqmsClient& c) {
    out = c.Append(request);
    return out.ok() ? Status::Ok() : out.status();
  });
  if (!s.ok()) return s;
  return out;
}

Status FailoverClient::Rewrite(int64_t id, const std::string& new_text) {
  return MutateWithFailover(
      [&](CqmsClient& c) { return c.Rewrite(id, new_text); });
}

Status FailoverClient::Annotate(int64_t id, const std::string& author,
                                const std::string& text,
                                const std::string& fragment) {
  return MutateWithFailover(
      [&](CqmsClient& c) { return c.Annotate(id, author, text, fragment); });
}

Status FailoverClient::SetVisibility(const std::string& requester, int64_t id,
                                     storage::Visibility visibility) {
  return MutateWithFailover(
      [&](CqmsClient& c) { return c.SetVisibility(requester, id, visibility); });
}

Status FailoverClient::Delete(const std::string& requester, int64_t id,
                              bool is_admin) {
  return MutateWithFailover(
      [&](CqmsClient& c) { return c.Delete(requester, id, is_admin); });
}

Status FailoverClient::RegisterUser(const std::string& user,
                                    const std::vector<std::string>& groups) {
  return MutateWithFailover(
      [&](CqmsClient& c) { return c.RegisterUser(user, groups); });
}

}  // namespace cqms::netclient
