// cqms_client: command-line client for cqms_serverd.
//
//   cqms_client --port P [--host H] [--user U] <command> [args...]
//
// Commands:
//   search [--explain] <keywords...>
//                               keyword search over the log; --explain
//                               prints the server's execution trace
//   append <sql>                execute+log a query as --user
//   log-only <sql>              log without executing
//   recommend <sql>             recommendations for a draft query
//   browse                      session-grouped log summary
//   show-session <id>           Figure-2 rendering of one session
//   annotate <id> <text>        annotate a query
//   register <user> <groups...> register a user
//   stats                       server counters
//   metrics                     full metrics exposition text
//   checkpoint                  force snapshot + WAL truncation
//   maintain                    run maintenance (+ mining) now

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "netclient/client.h"

namespace {

int Fail(const cqms::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

void PrintStats(const cqms::net::StatsResult& stats) {
  std::printf("server    %s\n", stats.server_version.c_str());
  std::printf("uptime    %.1fs\n",
              static_cast<double>(stats.uptime_micros) / 1e6);
  std::printf("conns     active=%llu total=%llu rejected=%llu\n",
              static_cast<unsigned long long>(stats.active_connections),
              static_cast<unsigned long long>(stats.total_connections),
              static_cast<unsigned long long>(stats.rejected_connections));
  std::printf("proto_err %llu\n",
              static_cast<unsigned long long>(stats.protocol_errors));
  std::printf("store     size=%llu published_seq=%llu\n",
              static_cast<unsigned long long>(stats.store_size),
              static_cast<unsigned long long>(stats.published_sequence));
  std::printf("durable   read_only=%s failure_streak=%llu backed_off=%llu\n",
              stats.durable_read_only ? "yes" : "no",
              static_cast<unsigned long long>(stats.checkpoint_failure_streak),
              static_cast<unsigned long long>(stats.checkpoints_backed_off));
  std::printf("arena     garbage_bytes=%llu\n",
              static_cast<unsigned long long>(stats.arena_garbage_bytes));
  if (stats.role == 1) {
    std::printf("repl      role=primary followers=%llu min_acked=%llu "
                "backlog_bytes=%llu\n",
                static_cast<unsigned long long>(stats.repl_followers),
                static_cast<unsigned long long>(stats.repl_min_acked_sequence),
                static_cast<unsigned long long>(stats.repl_backlog_bytes));
  } else if (stats.role == 2) {
    std::printf("repl      role=follower primary=%s connected=%s "
                "applied_seq=%llu primary_seq=%llu\n",
                stats.primary_address.c_str(),
                stats.repl_connected ? "yes" : "no",
                static_cast<unsigned long long>(stats.repl_applied_sequence),
                static_cast<unsigned long long>(stats.repl_primary_sequence));
  }
  for (const cqms::net::OpStatsRow& row : stats.per_op) {
    std::printf("op %-14s n=%-8llu err=%-6llu in=%-10llu out=%-10llu "
                "p50=%lluus p99=%lluus max=%lluus\n",
                cqms::net::OpName(static_cast<cqms::net::Op>(row.op)),
                static_cast<unsigned long long>(row.count),
                static_cast<unsigned long long>(row.errors),
                static_cast<unsigned long long>(row.bytes_in),
                static_cast<unsigned long long>(row.bytes_out),
                static_cast<unsigned long long>(row.p50_micros),
                static_cast<unsigned long long>(row.p99_micros),
                static_cast<unsigned long long>(row.max_micros));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string user = "cli";
  uint16_t port = 0;
  cqms::netclient::ClientOptions client_options;
  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--user" && i + 1 < argc) {
      user = argv[++i];
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      client_options.timeout_ms = std::atoll(argv[++i]);
    } else if (arg == "--connect-timeout-ms" && i + 1 < argc) {
      client_options.connect_timeout_ms = std::atoll(argv[++i]);
    } else {
      break;
    }
  }
  if (port == 0 || i >= argc) {
    std::fprintf(stderr,
                 "usage: %s --port P [--host H] [--user U]\n"
                 "       [--timeout-ms N] [--connect-timeout-ms N]\n"
                 "       <command> [args]\n"
                 "A hung or partitioned server fails typed "
                 "(kDeadlineExceeded) when --timeout-ms is set.\n",
                 argv[0]);
    return 2;
  }
  std::string cmd = argv[i++];
  std::vector<std::string> args(argv + i, argv + argc);
  auto joined = [&args] {
    std::string out;
    for (const std::string& a : args) {
      if (!out.empty()) out += ' ';
      out += a;
    }
    return out;
  };

  auto connected = cqms::netclient::CqmsClient::Connect(host, port,
                                                        client_options);
  if (!connected.ok()) return Fail(connected.status());
  cqms::netclient::CqmsClient& client = **connected;

  if (cmd == "search") {
    bool explain = false;
    if (!args.empty() && args[0] == "--explain") {
      explain = true;
      args.erase(args.begin());
    }
    cqms::net::SearchSpec spec;
    spec.keyword = cqms::net::KeywordSpec{joined(), true};
    spec.limit = 20;
    spec.want_trace = explain;
    auto result = client.Search(user, spec);
    if (!result.ok()) return Fail(result.status());
    for (const auto& m : result->matches) {
      std::printf("#%lld score=%.3f sim=%.3f\n",
                  static_cast<long long>(m.id), m.score, m.similarity);
    }
    std::printf("(%zu matches, %llu candidates)\n", result->matches.size(),
                static_cast<unsigned long long>(result->candidates_considered));
    if (explain && result->trace.has_value()) {
      const cqms::net::TraceSummary& t = *result->trace;
      std::printf("trace generator=%s\n", t.generator.c_str());
      for (const auto& [name, value] : t.counters) {
        std::printf("trace   %-24s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
      for (const auto& [name, micros] : t.spans_micros) {
        std::printf("trace   %-24s %lluus\n", name.c_str(),
                    static_cast<unsigned long long>(micros));
      }
    } else if (explain) {
      std::printf("trace (server returned none — pre-1.1 server?)\n");
    }
  } else if (cmd == "append" || cmd == "log-only") {
    cqms::net::AppendRequest req;
    req.user = user;
    req.sql = joined();
    req.execute = cmd == "append";
    auto result = client.Append(req);
    if (!result.ok()) return Fail(result.status());
    if (result->succeeded) {
      std::printf("#%lld rows=%llu %lldus\n",
                  static_cast<long long>(result->id),
                  static_cast<unsigned long long>(result->result_rows),
                  static_cast<long long>(result->exec_micros));
    } else {
      std::printf("#%lld FAILED: %s\n", static_cast<long long>(result->id),
                  result->error.c_str());
    }
  } else if (cmd == "recommend") {
    auto result = client.Recommend(user, joined());
    if (!result.ok()) return Fail(result.status());
    for (const auto& item : result->items) {
      std::printf("#%lld score=%.3f %s\n    diff: %s\n",
                  static_cast<long long>(item.id), item.score,
                  item.text.c_str(), item.diff.c_str());
      if (!item.annotation.empty()) {
        std::printf("    note: %s\n", item.annotation.c_str());
      }
    }
  } else if (cmd == "browse") {
    auto result = client.Browse(user);
    if (!result.ok()) return Fail(result.status());
    std::fputs(result->c_str(), stdout);
  } else if (cmd == "show-session") {
    if (args.empty()) return Fail(cqms::Status::InvalidArgument("need id"));
    auto result = client.ShowSession(user, std::atoll(args[0].c_str()));
    if (!result.ok()) return Fail(result.status());
    std::fputs(result->c_str(), stdout);
  } else if (cmd == "annotate") {
    if (args.size() < 2) {
      return Fail(cqms::Status::InvalidArgument("need <id> <text>"));
    }
    long long id = std::atoll(args[0].c_str());
    std::string text;
    for (size_t j = 1; j < args.size(); ++j) {
      if (j > 1) text += ' ';
      text += args[j];
    }
    cqms::Status s = client.Annotate(id, user, text);
    if (!s.ok()) return Fail(s);
    std::printf("annotated #%lld\n", id);
  } else if (cmd == "register") {
    if (args.empty()) return Fail(cqms::Status::InvalidArgument("need user"));
    std::vector<std::string> groups(args.begin() + 1, args.end());
    cqms::Status s = client.RegisterUser(args[0], groups);
    if (!s.ok()) return Fail(s);
    std::printf("registered %s\n", args[0].c_str());
  } else if (cmd == "stats") {
    auto result = client.Stats();
    if (!result.ok()) return Fail(result.status());
    PrintStats(*result);
  } else if (cmd == "metrics") {
    auto result = client.MetricsDump();
    if (!result.ok()) return Fail(result.status());
    std::fputs(result->c_str(), stdout);
  } else if (cmd == "checkpoint") {
    cqms::Status s = client.Checkpoint();
    if (!s.ok()) return Fail(s);
    std::printf("checkpointed\n");
  } else if (cmd == "maintain") {
    cqms::Status s = client.Maintain();
    if (!s.ok()) return Fail(s);
    std::printf("maintenance complete\n");
  } else {
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return 2;
  }
  return 0;
}
