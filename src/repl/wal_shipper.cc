#include "repl/wal_shipper.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/binary_codec.h"
#include "obs/metrics.h"
#include "storage/snapshot_v2.h"
#include "storage/wal.h"

namespace cqms::repl {

namespace {

/// Snapshot images ship in chunks well under the server's default
/// 4 MiB frame ceiling so a follower with default limits can always
/// bootstrap.
constexpr size_t kSnapshotChunkBytes = 1u << 20;
/// Catch-up frame batches flush at this many payload bytes.
constexpr size_t kCatchUpBatchBytes = 256u << 10;

struct ShipperSeries {
  obs::Counter* frames_shipped;
  obs::Counter* snapshot_bootstraps;
  obs::Gauge* followers;
};

const ShipperSeries& Series() {
  static const ShipperSeries s = [] {
    auto& reg = obs::MetricsRegistry::Global();
    ShipperSeries d;
    d.frames_shipped = reg.GetCounter("cqms_repl_frames_shipped_total");
    d.snapshot_bootstraps =
        reg.GetCounter("cqms_repl_snapshot_bootstraps_total");
    d.followers = reg.GetGauge("cqms_repl_followers");
    return d;
  }();
  return s;
}

/// A complete kReplStream push payload: OK envelope, kind byte, body.
template <typename EncodeBody>
std::string StreamMessage(uint64_t request_id, net::ReplStreamKind kind,
                          EncodeBody&& body) {
  BinaryWriter w;
  net::BeginResponse(&w, request_id, net::Op::kReplStream);
  w.PutU8(static_cast<uint8_t>(kind));
  body(&w);
  return w.Take();
}

std::string FrameBatchMessage(uint64_t request_id,
                              const net::ReplFrameBatch& batch) {
  return StreamMessage(request_id, net::ReplStreamKind::kFrames,
                       [&](BinaryWriter* w) { EncodeReplFrameBatch(w, batch); });
}

}  // namespace

WalShipper::WalShipper(storage::DurableStore* durable,
                       const storage::QueryStore* store)
    : durable_(durable), store_(store) {
  primary_sequence_.store(durable_->last_sequence(),
                          std::memory_order_relaxed);
}

void WalShipper::OnWalFrame(uint64_t sequence, std::string_view frame) {
  primary_sequence_.store(sequence, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (followers_.empty()) return;
  net::ReplFrameBatch batch;
  batch.frames.push_back({Crc32(frame), std::string(frame)});
  batch.primary_sequence = sequence;
  for (auto& [id, follower] : followers_) {
    follower.send(FrameBatchMessage(follower.request_id, batch));
    Series().frames_shipped->Increment();
  }
}

uint64_t WalShipper::MinRequiredSequence() {
  std::lock_guard<std::mutex> lock(mu_);
  if (followers_.empty()) return ~0ull;
  uint64_t min_acked = ~0ull;
  for (const auto& [id, follower] : followers_) {
    min_acked = std::min(min_acked, follower.acked_sequence);
  }
  return min_acked + 1;
}

void WalShipper::SendSnapshot(uint64_t request_id, const SendFn& send) {
  const uint64_t covered = durable_->last_sequence();
  std::string image;
  Status s = storage::EncodeSnapshotV2(*store_, covered, &image);
  if (!s.ok()) {
    // An unencodable store is an invariant violation; ship an empty
    // image whose CRC cannot match so the follower retries rather than
    // silently serving nothing.
    image.clear();
  }
  net::ReplSnapshotBegin begin;
  begin.covered_sequence = covered;
  begin.total_bytes = image.size();
  begin.crc32 = Crc32(image);
  send(StreamMessage(request_id, net::ReplStreamKind::kSnapshotBegin,
                     [&](BinaryWriter* w) { EncodeReplSnapshotBegin(w, begin); }));
  for (size_t off = 0; off < image.size(); off += kSnapshotChunkBytes) {
    net::ReplSnapshotChunk chunk;
    chunk.data = image.substr(off, kSnapshotChunkBytes);
    send(StreamMessage(request_id, net::ReplStreamKind::kSnapshotChunk,
                       [&](BinaryWriter* w) { EncodeReplSnapshotChunk(w, chunk); }));
  }
  send(StreamMessage(request_id, net::ReplStreamKind::kSnapshotEnd,
                     [](BinaryWriter*) {}));
  Series().snapshot_bootstraps->Increment();
}

Status WalShipper::SendCatchUp(uint64_t from_sequence, uint64_t request_id,
                               const SendFn& send) {
  const uint64_t primary_sequence = durable_->last_sequence();
  net::ReplFrameBatch batch;
  batch.primary_sequence = primary_sequence;
  size_t batch_bytes = 0;
  auto flush = [&] {
    if (batch.frames.empty()) return;
    Series().frames_shipped->Add(batch.frames.size());
    send(FrameBatchMessage(request_id, batch));
    batch.frames.clear();
    batch_bytes = 0;
  };
  auto visit = [&](uint64_t sequence, std::string_view frame) {
    if (sequence > from_sequence) {
      batch.frames.push_back({Crc32(frame), std::string(frame)});
      batch_bytes += frame.size();
      if (batch_bytes >= kCatchUpBatchBytes) flush();
    }
    return true;
  };
  // Oldest retired generation first, then the active log — file order
  // is sequence order within each, and retention keeps the chain
  // contiguous.
  const auto& segments = durable_->retired_wal_segments();
  for (size_t i = segments.size(); i-- > 0;) {
    if (segments[i].max_sequence <= from_sequence) continue;
    CQMS_RETURN_IF_ERROR(
        storage::ScanWalFrames(segments[i].path, durable_->env(), visit));
  }
  CQMS_RETURN_IF_ERROR(
      storage::ScanWalFrames(durable_->wal_path(), durable_->env(), visit));
  flush();
  return Status::Ok();
}

uint64_t WalShipper::Subscribe(const net::ReplSubscribeRequest& req,
                               uint64_t request_id, SendFn send) {
  const uint64_t primary_sequence = durable_->last_sequence();
  primary_sequence_.store(primary_sequence, std::memory_order_relaxed);
  bool snapshot = req.force_snapshot ||
                  req.from_sequence < durable_->shippable_floor();
  {
    BinaryWriter w;
    net::BeginResponse(&w, request_id, net::Op::kReplSubscribe);
    net::ReplSubscribeResult result;
    result.snapshot_bootstrap = snapshot;
    result.primary_sequence = primary_sequence;
    EncodeReplSubscribeResult(&w, result);
    send(w.Take());
  }
  uint64_t base = req.from_sequence;
  if (snapshot) {
    SendSnapshot(request_id, send);
    base = primary_sequence;
  } else if (!SendCatchUp(req.from_sequence, request_id, send).ok()) {
    // A retired segment went unreadable under us (bit rot since the
    // last open). The follower will detect the gap and resubscribe
    // with force_snapshot; pre-empt the round trip.
    SendSnapshot(request_id, send);
    base = primary_sequence;
  }
  // Register only after the bootstrap stream: this runs on the writer
  // thread, so no live frame can interleave before registration, and
  // the connection's outbox preserves send order afterwards.
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_follower_id_++;
  Follower follower;
  follower.name = req.follower_name;
  follower.request_id = request_id;
  follower.send = std::move(send);
  follower.acked_sequence = base;
  followers_.emplace(id, std::move(follower));
  Series().followers->Set(static_cast<int64_t>(followers_.size()));
  return id;
}

void WalShipper::Ack(uint64_t follower_id, uint64_t acked_sequence) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = followers_.find(follower_id);
  if (it == followers_.end()) return;
  it->second.acked_sequence = std::max(it->second.acked_sequence,
                                       acked_sequence);
}

void WalShipper::RemoveFollower(uint64_t follower_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (followers_.erase(follower_id) > 0) {
    Series().followers->Set(static_cast<int64_t>(followers_.size()));
  }
}

void WalShipper::HeartbeatTick() {
  const uint64_t primary_sequence =
      primary_sequence_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, follower] : followers_) {
    net::ReplHeartbeat hb;
    hb.primary_sequence = primary_sequence;
    follower.send(StreamMessage(follower.request_id,
                                net::ReplStreamKind::kHeartbeat,
                                [&](BinaryWriter* w) { EncodeReplHeartbeat(w, hb); }));
  }
}

WalShipper::Stats WalShipper::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.followers = followers_.size();
  if (!followers_.empty()) {
    uint64_t min_acked = ~0ull;
    for (const auto& [id, follower] : followers_) {
      min_acked = std::min(min_acked, follower.acked_sequence);
    }
    stats.min_acked_sequence = min_acked;
  }
  return stats;
}

}  // namespace cqms::repl
