#ifndef CQMS_REPL_FOLLOWER_H_
#define CQMS_REPL_FOLLOWER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "core/cqms.h"
#include "netclient/client.h"
#include "repl/follower_host.h"
#include "storage/query_store.h"

namespace cqms::repl {

struct FollowerOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// Reported to the primary in the handshake and the subscription.
  std::string name = "follower";
  /// Read deadline on the replication link. The primary heartbeats well
  /// under this, so a silent link (partition, hung primary) surfaces as
  /// kDeadlineExceeded and triggers a reconnect.
  int64_t liveness_timeout_ms = 2000;
  /// Reconnect backoff: capped exponential, reset after a healthy
  /// subscription.
  int64_t backoff_initial_ms = 100;
  int64_t backoff_max_ms = 5000;
  /// View publication knobs for freshly bootstrapped stores.
  storage::ViewOptions view_options;
};

/// Follower-side replication engine: one thread that subscribes to the
/// primary's WAL stream, pre-validates frame batches (CRC, sequence
/// continuity) and applies them to the live store on the host's writer
/// thread, acking applied progress back to the primary. A sequence gap
/// or CRC divergence — or falling behind the primary's retained WAL
/// window — triggers an automatic snapshot re-bootstrap: a fresh Cqms
/// is restored from the streamed image off the writer thread and then
/// atomically installed via FollowerHost::InstallCqms.
class Follower {
 public:
  /// `host` must outlive the follower. `live` is the (typically empty)
  /// instance the host currently serves; the follower either catches it
  /// up frame by frame or replaces it wholesale.
  Follower(FollowerHost* host, std::shared_ptr<Cqms> live,
           FollowerOptions options);
  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Spawns the replication thread. The thread retries connection
  /// failures forever (capped backoff) until Stop().
  Status Start();

  /// Stops the replication thread: aborts any blocking socket read,
  /// interrupts backoff sleeps, joins. Call before stopping the host —
  /// a queued apply closure still needs the host's writer thread.
  void Stop();

  struct Stats {
    bool connected = false;
    uint64_t applied_sequence = 0;
    uint64_t primary_sequence = 0;  ///< Last heard from the primary.
    uint64_t snapshots_loaded = 0;
    uint64_t gaps_detected = 0;
    uint64_t crc_failures = 0;
    uint64_t reconnects = 0;
    uint64_t frames_applied = 0;
    uint64_t duplicates_skipped = 0;
  };
  Stats GetStats() const;

  const std::string& primary_address() const { return primary_address_; }

 private:
  void Run();
  /// One connection lifecycle: connect, subscribe, stream until error
  /// or Stop. A non-OK return reconnects after backoff; `*subscribed`
  /// reports whether a subscription was established (resets backoff).
  Status RunOnce(bool* subscribed);
  /// Reads the snapshot bootstrap stream (Begin already decoded into
  /// `begin`) and installs the restored instance.
  Status BootstrapFromSnapshot(netclient::CqmsClient* client,
                               const net::ReplSnapshotBegin& begin);
  Status ApplyFrameBatch(const net::ReplFrameBatch& batch,
                         netclient::CqmsClient* client);
  Status SendAck(netclient::CqmsClient* client);
  /// Interruptible sleep; false when Stop() arrived.
  bool SleepMs(int64_t ms);

  FollowerHost* host_;
  FollowerOptions options_;
  std::string primary_address_;

  std::mutex mu_;  ///< Guards live_, client_ and the cv below.
  std::condition_variable cv_;
  std::shared_ptr<Cqms> live_;
  netclient::CqmsClient* client_ = nullptr;  ///< Borrowed; for Abort().

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  /// True after a gap / CRC failure: the next subscription demands a
  /// snapshot regardless of position.
  bool force_snapshot_ = false;
  uint64_t applied_ = 0;  ///< Replication-thread-owned working copy.

  // Cross-thread stats mirrors.
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> applied_sequence_{0};
  std::atomic<uint64_t> primary_sequence_{0};
  std::atomic<uint64_t> snapshots_loaded_{0};
  std::atomic<uint64_t> gaps_detected_{0};
  std::atomic<uint64_t> crc_failures_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> frames_applied_{0};
  std::atomic<uint64_t> duplicates_skipped_{0};
};

}  // namespace cqms::repl

#endif  // CQMS_REPL_FOLLOWER_H_
