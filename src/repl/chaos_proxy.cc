#include "repl/chaos_proxy.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

namespace cqms::repl {

namespace {

bool SendAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

ChaosProxy::ChaosProxy(std::string target_host, uint16_t target_port)
    : target_host_(std::move(target_host)), target_port_(target_port) {}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("chaos proxy socket failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // Ephemeral.
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("chaos proxy bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("chaos proxy getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread(&ChaosProxy::AcceptLoop, this);
  return Status::Ok();
}

void ChaosProxy::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  KillAll();
  std::lock_guard<std::mutex> lock(links_mu_);
  for (auto& link : links_) {
    if (link->up.joinable()) link->up.join();
    if (link->down.joinable()) link->down.join();
    ::close(link->client_fd);
    ::close(link->server_fd);
  }
  links_.clear();
}

void ChaosProxy::KillAll() {
  std::lock_guard<std::mutex> lock(links_mu_);
  for (auto& link : links_) Sever(link.get());
}

void ChaosProxy::Sever(Link* link) {
  ::shutdown(link->client_fd, SHUT_RDWR);
  ::shutdown(link->server_fd, SHUT_RDWR);
}

void ChaosProxy::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener shut down.
    }
    if (refuse_.load(std::memory_order_relaxed)) {
      ::close(client_fd);
      continue;
    }
    int server_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(target_port_);
    if (server_fd < 0 ||
        inet_pton(AF_INET, target_host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(server_fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (server_fd >= 0) ::close(server_fd);
      ::close(client_fd);
      continue;
    }
    int one = 1;
    setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    setsockopt(server_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto link = std::make_unique<Link>();
    link->client_fd = client_fd;
    link->server_fd = server_fd;
    Link* raw = link.get();
    link->up = std::thread(&ChaosProxy::Pump, this, raw, client_fd, server_fd,
                           /*downstream=*/false);
    link->down = std::thread(&ChaosProxy::Pump, this, raw, server_fd,
                             client_fd, /*downstream=*/true);
    std::lock_guard<std::mutex> lock(links_mu_);
    links_.push_back(std::move(link));
  }
}

void ChaosProxy::Pump(Link* link, int from_fd, int to_fd, bool downstream) {
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(from_fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    if (downstream) {
      int64_t delay = delay_ms_.load(std::memory_order_relaxed);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      if (corrupt_next_.exchange(false, std::memory_order_relaxed)) {
        buf[static_cast<size_t>(n) / 2] ^= 0x20;
      }
      if (cut_budget_.load(std::memory_order_relaxed) >= 0) {
        int64_t before = cut_budget_.fetch_sub(n, std::memory_order_relaxed);
        if (before <= 0) {
          Sever(link);
          break;
        }
        if (before < n) {
          // Forward a prefix, then sever: the peer sees a torn frame.
          SendAll(to_fd, buf, static_cast<size_t>(before));
          Sever(link);
          break;
        }
      }
    }
    if (!SendAll(to_fd, buf, static_cast<size_t>(n))) break;
  }
  // Propagate the close so the other pump and both peers unwind.
  ::shutdown(to_fd, SHUT_WR);
  ::shutdown(from_fd, SHUT_RD);
}

}  // namespace cqms::repl
