#ifndef CQMS_REPL_CHAOS_PROXY_H_
#define CQMS_REPL_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace cqms::repl {

/// Fault-injecting TCP proxy for replication-link testing: listens on an
/// ephemeral port and forwards byte-for-byte to a target server, with
/// switchable faults on the server->client (stream) direction:
///
///   - SetDelayMs:   delay every forwarded chunk (slow link).
///   - CorruptNext:  flip one bit in the next forwarded chunk (CRC
///                   divergence downstream).
///   - CutAfter:     forward N more bytes, then sever every link — lands
///                   mid-frame for any N not on a frame boundary
///                   (partial write / disconnect mid-frame).
///   - SetRefuse:    reject new connections (primary unreachable).
///   - KillAll:      sever every active link now (link drop).
///
/// Test-only: links are reaped at Stop(), not as they die, so a test
/// that churns thousands of connections through one proxy would
/// accumulate threads.
class ChaosProxy {
 public:
  ChaosProxy(std::string target_host, uint16_t target_port);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds an ephemeral port and starts accepting.
  Status Start();
  void Stop();

  uint16_t port() const { return port_; }

  void SetDelayMs(int64_t ms) {
    delay_ms_.store(ms, std::memory_order_relaxed);
  }
  void SetRefuse(bool refuse) {
    refuse_.store(refuse, std::memory_order_relaxed);
  }
  void CorruptNext() { corrupt_next_.store(true, std::memory_order_relaxed); }
  /// -1 (the default) disables the cut.
  void CutAfter(int64_t bytes) {
    cut_budget_.store(bytes, std::memory_order_relaxed);
  }
  void KillAll();

  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Link {
    int client_fd = -1;
    int server_fd = -1;
    std::thread up;    ///< client -> server
    std::thread down;  ///< server -> client (fault injection side)
  };

  void AcceptLoop();
  void Pump(Link* link, int from_fd, int to_fd, bool downstream);
  static void Sever(Link* link);

  std::string target_host_;
  uint16_t target_port_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};

  std::atomic<int64_t> delay_ms_{0};
  std::atomic<bool> refuse_{false};
  std::atomic<bool> corrupt_next_{false};
  std::atomic<int64_t> cut_budget_{-1};
  std::atomic<uint64_t> accepted_{0};

  std::mutex links_mu_;
  std::list<std::unique_ptr<Link>> links_;
};

}  // namespace cqms::repl

#endif  // CQMS_REPL_CHAOS_PROXY_H_
