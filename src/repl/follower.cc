#include "repl/follower.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/binary_codec.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "storage/snapshot_v2.h"
#include "storage/wal.h"

namespace cqms::repl {

namespace {

/// Ack responses are ignored, so every ack can reuse one request id;
/// the subscription owns id 1.
constexpr uint64_t kSubscribeRequestId = 1;
constexpr uint64_t kAckRequestId = 2;

struct FollowerSeries {
  obs::Counter* frames_applied;
  obs::Counter* snapshots_loaded;
  obs::Counter* gaps;
  obs::Counter* crc_failures;
  obs::Counter* reconnects;
  obs::Gauge* connected;
  obs::Gauge* applied_sequence;
  obs::Gauge* lag;
};

const FollowerSeries& Series() {
  static const FollowerSeries s = [] {
    auto& reg = obs::MetricsRegistry::Global();
    FollowerSeries d;
    d.frames_applied = reg.GetCounter("cqms_repl_frames_applied_total");
    d.snapshots_loaded = reg.GetCounter("cqms_repl_snapshots_loaded_total");
    d.gaps = reg.GetCounter("cqms_repl_gaps_total");
    d.crc_failures = reg.GetCounter("cqms_repl_crc_failures_total");
    d.reconnects = reg.GetCounter("cqms_repl_reconnects_total");
    d.connected = reg.GetGauge("cqms_repl_connected");
    d.applied_sequence = reg.GetGauge("cqms_repl_applied_sequence");
    d.lag = reg.GetGauge("cqms_repl_lag");
    return d;
  }();
  return s;
}

}  // namespace

Follower::Follower(FollowerHost* host, std::shared_ptr<Cqms> live,
                   FollowerOptions options)
    : host_(host),
      options_(std::move(options)),
      primary_address_(options_.primary_host + ":" +
                       std::to_string(options_.primary_port)),
      live_(std::move(live)) {}

Follower::~Follower() { Stop(); }

Status Follower::Start() {
  if (started_) return Status::InvalidArgument("follower already started");
  if (live_ == nullptr) {
    return Status::InvalidArgument("follower needs a live Cqms instance");
  }
  started_ = true;
  thread_ = std::thread(&Follower::Run, this);
  return Status::Ok();
}

void Follower::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (client_ != nullptr) client_->Abort();
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Follower::Run() {
  int64_t backoff = options_.backoff_initial_ms;
  while (!stop_.load(std::memory_order_relaxed)) {
    bool subscribed = false;
    RunOnce(&subscribed);
    connected_.store(false, std::memory_order_relaxed);
    Series().connected->Set(0);
    if (stop_.load(std::memory_order_relaxed)) break;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    Series().reconnects->Increment();
    if (subscribed) backoff = options_.backoff_initial_ms;
    if (!SleepMs(backoff)) break;
    backoff = std::min(backoff * 2, options_.backoff_max_ms);
  }
}

Status Follower::RunOnce(bool* subscribed) {
  netclient::ClientOptions copts;
  copts.client_name = options_.name;
  copts.connect_timeout_ms = options_.liveness_timeout_ms;
  // The primary heartbeats well under this, so an expired read deadline
  // means the link (or the primary) is dead — reconnect.
  copts.timeout_ms = options_.liveness_timeout_ms;
  Result<std::unique_ptr<netclient::CqmsClient>> connected =
      netclient::CqmsClient::Connect(options_.primary_host,
                                     options_.primary_port, copts);
  if (!connected.ok()) return connected.status();
  std::unique_ptr<netclient::CqmsClient> client = std::move(connected).value();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("follower stopping");
    }
    client_ = client.get();  // Publish for Stop()'s Abort().
  }
  Status s = [&]() -> Status {
    {
      BinaryWriter w;
      net::BeginRequest(&w, kSubscribeRequestId, net::Op::kReplSubscribe);
      net::ReplSubscribeRequest req;
      req.from_sequence = applied_;
      req.follower_name = options_.name;
      req.force_snapshot = force_snapshot_;
      EncodeReplSubscribeRequest(&w, req);
      CQMS_RETURN_IF_ERROR(client->SendRawPayload(w.Take()));
    }
    while (!stop_.load(std::memory_order_relaxed)) {
      Result<std::string> payload = client->ReadRawPayload();
      if (!payload.ok()) return payload.status();
      net::ResponseEnvelope env;
      if (!net::DecodeResponseEnvelope(*payload, &env)) {
        return Status::Corruption("malformed replication payload");
      }
      if (!env.ok()) return env.ToStatus();
      switch (env.op) {
        case net::Op::kReplSubscribe: {
          BinaryReader r(env.body);
          net::ReplSubscribeResult result;
          if (!DecodeReplSubscribeResult(&r, &result)) {
            return Status::Corruption("malformed subscribe result");
          }
          if (result.primary_sequence < applied_ &&
              !result.snapshot_bootstrap) {
            // The primary is BEHIND us: it lost durable state (restore
            // from an older backup, wiped disk) and now owns a shorter
            // timeline. Our extra frames are orphans — adopt the
            // primary's truth via a forced snapshot instead of silently
            // skipping its "duplicate" frames forever.
            gaps_detected_.fetch_add(1, std::memory_order_relaxed);
            Series().gaps->Increment();
            force_snapshot_ = true;
            return Status::Corruption(
                "primary regressed below our applied sequence " +
                std::to_string(applied_) + " (primary at " +
                std::to_string(result.primary_sequence) +
                "); forcing snapshot re-bootstrap");
          }
          primary_sequence_.store(result.primary_sequence,
                                  std::memory_order_relaxed);
          force_snapshot_ = false;
          *subscribed = true;
          connected_.store(true, std::memory_order_relaxed);
          Series().connected->Set(1);
          break;
        }
        case net::Op::kReplStream: {
          BinaryReader r(env.body);
          auto kind = static_cast<net::ReplStreamKind>(r.GetU8());
          if (r.failed()) {
            return Status::Corruption("empty replication stream message");
          }
          switch (kind) {
            case net::ReplStreamKind::kFrames: {
              net::ReplFrameBatch batch;
              if (!DecodeReplFrameBatch(&r, &batch)) {
                return Status::Corruption("malformed frame batch");
              }
              CQMS_RETURN_IF_ERROR(ApplyFrameBatch(batch, client.get()));
              break;
            }
            case net::ReplStreamKind::kHeartbeat: {
              net::ReplHeartbeat hb;
              if (!DecodeReplHeartbeat(&r, &hb)) {
                return Status::Corruption("malformed heartbeat");
              }
              primary_sequence_.store(hb.primary_sequence,
                                      std::memory_order_relaxed);
              Series().lag->Set(static_cast<int64_t>(
                  hb.primary_sequence > applied_ ? hb.primary_sequence - applied_
                                                 : 0));
              break;
            }
            case net::ReplStreamKind::kSnapshotBegin: {
              net::ReplSnapshotBegin begin;
              if (!DecodeReplSnapshotBegin(&r, &begin)) {
                return Status::Corruption("malformed snapshot begin");
              }
              CQMS_RETURN_IF_ERROR(BootstrapFromSnapshot(client.get(), begin));
              CQMS_RETURN_IF_ERROR(SendAck(client.get()));
              break;
            }
            default:
              // Chunk/End are only valid inside BootstrapFromSnapshot.
              return Status::Corruption("unexpected snapshot chunk");
          }
          break;
        }
        case net::Op::kReplAck:
          break;  // Response to a fire-and-forget ack; nothing to do.
        default:
          return Status::Corruption("unexpected op on replication link");
      }
    }
    return Status::Unavailable("follower stopping");
  }();
  {
    std::lock_guard<std::mutex> lock(mu_);
    client_ = nullptr;
  }
  return s;
}

Status Follower::BootstrapFromSnapshot(netclient::CqmsClient* client,
                                       const net::ReplSnapshotBegin& begin) {
  std::string image;
  image.reserve(begin.total_bytes);
  bool done = false;
  while (!done) {
    if (stop_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("follower stopping");
    }
    Result<std::string> payload = client->ReadRawPayload();
    if (!payload.ok()) return payload.status();
    net::ResponseEnvelope env;
    if (!net::DecodeResponseEnvelope(*payload, &env)) {
      return Status::Corruption("malformed snapshot stream payload");
    }
    if (!env.ok()) return env.ToStatus();
    if (env.op != net::Op::kReplStream) {
      return Status::Corruption("unexpected op inside snapshot stream");
    }
    BinaryReader r(env.body);
    auto kind = static_cast<net::ReplStreamKind>(r.GetU8());
    switch (kind) {
      case net::ReplStreamKind::kSnapshotChunk: {
        net::ReplSnapshotChunk chunk;
        if (!DecodeReplSnapshotChunk(&r, &chunk)) {
          return Status::Corruption("malformed snapshot chunk");
        }
        image += chunk.data;
        break;
      }
      case net::ReplStreamKind::kSnapshotEnd:
        done = true;
        break;
      default:
        return Status::Corruption("unexpected message inside snapshot stream");
    }
  }
  if (image.size() != begin.total_bytes || Crc32(image) != begin.crc32) {
    crc_failures_.fetch_add(1, std::memory_order_relaxed);
    Series().crc_failures->Increment();
    force_snapshot_ = true;  // Retry the bootstrap on reconnect.
    return Status::Corruption("snapshot image failed verification");
  }
  // Restore into a fresh instance off the writer thread: the host keeps
  // serving reads from the old one until the install.
  auto fresh = std::make_shared<Cqms>();
  uint64_t wal_sequence = 0;
  Status s = storage::LoadSnapshotV2FromString(fresh->store(), image,
                                               "repl-snapshot", &wal_sequence);
  if (!s.ok()) {
    force_snapshot_ = true;
    return s;
  }
  fresh->EnableConcurrentReads(options_.view_options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_ = fresh;
  }
  host_->InstallCqms(std::move(fresh));
  applied_ = begin.covered_sequence;
  applied_sequence_.store(applied_, std::memory_order_relaxed);
  Series().applied_sequence->Set(static_cast<int64_t>(applied_));
  snapshots_loaded_.fetch_add(1, std::memory_order_relaxed);
  Series().snapshots_loaded->Increment();
  return Status::Ok();
}

Status Follower::ApplyFrameBatch(const net::ReplFrameBatch& batch,
                                 netclient::CqmsClient* client) {
  primary_sequence_.store(batch.primary_sequence, std::memory_order_relaxed);
  // Pre-validate off the writer thread: CRC every frame and demand
  // contiguous sequences. Duplicates (catch-up overlap after a
  // reconnect) are skipped; a gap or divergence poisons the store copy,
  // so it forces a snapshot re-bootstrap instead of a partial apply.
  std::vector<std::string_view> pending;
  pending.reserve(batch.frames.size());
  uint64_t expected = applied_;
  for (const net::ReplFramed& f : batch.frames) {
    if (Crc32(f.frame) != f.crc32) {
      crc_failures_.fetch_add(1, std::memory_order_relaxed);
      Series().crc_failures->Increment();
      force_snapshot_ = true;
      return Status::Corruption("replicated frame failed its CRC");
    }
    BinaryReader r(f.frame);
    uint64_t sequence = r.GetVarint();
    if (r.failed()) {
      force_snapshot_ = true;
      return Status::Corruption("replicated frame missing sequence");
    }
    if (sequence <= expected) {
      duplicates_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (sequence != expected + 1) {
      gaps_detected_.fetch_add(1, std::memory_order_relaxed);
      Series().gaps->Increment();
      force_snapshot_ = true;
      return Status::Corruption("sequence gap in replication stream");
    }
    pending.push_back(f.frame);
    expected = sequence;
  }
  if (!pending.empty()) {
    Status s = host_->RunOnWriter([&]() -> Status {
      std::shared_ptr<Cqms> live;
      {
        std::lock_guard<std::mutex> lock(mu_);
        live = live_;
      }
      storage::QueryStore* store = live->store();
      storage::QueryStore::ScopedPublishBatch publish(store);
      for (std::string_view frame : pending) {
        BinaryReader r(frame);
        r.GetVarint();  // Sequence, validated above.
        CQMS_RETURN_IF_ERROR(
            storage::ApplyWalRecord(&r, store, "replication stream"));
      }
      return Status::Ok();
    });
    if (!s.ok()) {
      // The batch may have half-applied; this copy can no longer be
      // trusted to match the primary byte for byte.
      force_snapshot_ = true;
      return s;
    }
    applied_ = expected;
    applied_sequence_.store(applied_, std::memory_order_relaxed);
    Series().applied_sequence->Set(static_cast<int64_t>(applied_));
    frames_applied_.fetch_add(pending.size(), std::memory_order_relaxed);
    Series().frames_applied->Add(pending.size());
  }
  Series().lag->Set(static_cast<int64_t>(
      batch.primary_sequence > applied_ ? batch.primary_sequence - applied_
                                        : 0));
  return SendAck(client);
}

Status Follower::SendAck(netclient::CqmsClient* client) {
  BinaryWriter w;
  net::BeginRequest(&w, kAckRequestId, net::Op::kReplAck);
  net::ReplAckRequest ack;
  ack.acked_sequence = applied_;
  EncodeReplAckRequest(&w, ack);
  return client->SendRawPayload(w.Take());
}

bool Follower::SleepMs(int64_t ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(ms), [&] {
    return stop_.load(std::memory_order_relaxed);
  });
  return !stop_.load(std::memory_order_relaxed);
}

Follower::Stats Follower::GetStats() const {
  Stats s;
  s.connected = connected_.load(std::memory_order_relaxed);
  s.applied_sequence = applied_sequence_.load(std::memory_order_relaxed);
  s.primary_sequence = primary_sequence_.load(std::memory_order_relaxed);
  s.snapshots_loaded = snapshots_loaded_.load(std::memory_order_relaxed);
  s.gaps_detected = gaps_detected_.load(std::memory_order_relaxed);
  s.crc_failures = crc_failures_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.frames_applied = frames_applied_.load(std::memory_order_relaxed);
  s.duplicates_skipped = duplicates_skipped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace cqms::repl
