#ifndef CQMS_REPL_FOLLOWER_HOST_H_
#define CQMS_REPL_FOLLOWER_HOST_H_

#include <functional>
#include <memory>

#include "common/status.h"

namespace cqms {
class Cqms;
}

namespace cqms::repl {

/// The surface a follower needs from the process hosting it (in
/// production, CqmsServer running with --follow). The replication layer
/// depends on this interface instead of the server so the dependency
/// points one way: server -> repl.
class FollowerHost {
 public:
  virtual ~FollowerHost() = default;

  /// Runs `fn` on the host's single writer thread and returns its
  /// status. Every mutation of the live store — frame application —
  /// goes through here, preserving the store's single-writer contract
  /// while reads keep executing against published views. Returns
  /// kUnavailable without running `fn` when the host is shutting down.
  virtual Status RunOnWriter(std::function<Status()> fn) = 0;

  /// Atomically replaces the Cqms instance the host serves reads from —
  /// the snapshot re-bootstrap path. The new instance must already have
  /// concurrent reads enabled; in-flight requests finish against the
  /// instance they started with (they hold the shared_ptr).
  virtual void InstallCqms(std::shared_ptr<Cqms> cqms) = 0;
};

}  // namespace cqms::repl

#endif  // CQMS_REPL_FOLLOWER_HOST_H_
