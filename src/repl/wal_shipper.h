#ifndef CQMS_REPL_WAL_SHIPPER_H_
#define CQMS_REPL_WAL_SHIPPER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "net/wire.h"
#include "storage/durable_store.h"
#include "storage/query_store.h"

namespace cqms::repl {

/// Primary-side replication engine (docs/replication.md): tails the
/// durable WAL through DurableStore's shipping hook and pushes
/// CRC-framed, sequence-stamped frames to every subscribed follower.
///
/// Threading: Subscribe and OnWalFrame run on the store's writer thread
/// (subscription is a write op, so the store is quiescent while the
/// catch-up stream or snapshot image is built — no torn reads, no
/// missed frames). Ack, RemoveFollower and HeartbeatTick run on the
/// server's loop thread. The follower table is mutex-protected; the
/// send functions must themselves be callable from any thread (the
/// server's SendPayload is).
class WalShipper : public storage::WalShippingHook {
 public:
  /// Delivers one encoded wire payload (a complete ResponseEnvelope) to
  /// the follower's connection. Must be cheap and non-blocking — the
  /// server implementation appends to the connection's outbox.
  using SendFn = std::function<void(std::string payload)>;

  /// `durable` and `store` must outlive the shipper; both are touched
  /// only from the writer thread. Registers nothing — the server calls
  /// durable->SetShippingHook(this) once the writer thread exists.
  WalShipper(storage::DurableStore* durable, const storage::QueryStore* store);

  // --- storage::WalShippingHook (writer thread) ----------------------------
  void OnWalFrame(uint64_t sequence, std::string_view frame) override;
  uint64_t MinRequiredSequence() override;

  /// Handles one ReplSubscribe request (writer thread). Sends the
  /// subscribe response plus the bootstrap stream — a chunked snapshot
  /// image when the follower is behind the retained WAL window or asked
  /// for one, a frame catch-up scan otherwise — through `send`, then
  /// registers the follower for live shipping. Returns the follower id
  /// the connection should remember for Ack / RemoveFollower routing.
  uint64_t Subscribe(const net::ReplSubscribeRequest& req, uint64_t request_id,
                     SendFn send);

  /// Records a follower's progress report (any thread). Retention picks
  /// it up at the next checkpoint via MinRequiredSequence.
  void Ack(uint64_t follower_id, uint64_t acked_sequence);

  /// Drops a follower (its connection closed). Any thread; idempotent.
  void RemoveFollower(uint64_t follower_id);

  /// Sends a heartbeat carrying the primary's last shipped sequence to
  /// every live follower — the follower's liveness signal during write
  /// silence. Any thread (the server's loop thread ticks it).
  void HeartbeatTick();

  struct Stats {
    uint64_t followers = 0;
    uint64_t min_acked_sequence = 0;  ///< 0 when no follower registered.
  };
  Stats GetStats() const;

 private:
  struct Follower {
    std::string name;
    uint64_t request_id = 0;  ///< Subscribe id; every push echoes it.
    SendFn send;
    uint64_t acked_sequence = 0;
  };

  /// Streams every retained frame with sequence > from_sequence (retired
  /// segments oldest-first, then the active log), batched.
  Status SendCatchUp(uint64_t from_sequence, uint64_t request_id,
                     const SendFn& send);
  void SendSnapshot(uint64_t request_id, const SendFn& send);

  storage::DurableStore* durable_;
  const storage::QueryStore* store_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Follower> followers_;
  uint64_t next_follower_id_ = 1;
  /// Mirror of the last sequence shipped or covered, readable off the
  /// writer thread (heartbeats must not touch DurableStore internals).
  std::atomic<uint64_t> primary_sequence_{0};
};

}  // namespace cqms::repl

#endif  // CQMS_REPL_WAL_SHIPPER_H_
