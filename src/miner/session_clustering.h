#ifndef CQMS_MINER_SESSION_CLUSTERING_H_
#define CQMS_MINER_SESSION_CLUSTERING_H_

#include <string>
#include <vector>

#include "miner/sessionizer.h"

namespace cqms::miner {

/// Similarity between two *sessions* (§4.3: "if the CQMS clusters entire
/// query sessions, it can provide better services"): Jaccard overlap of
/// the sets of query skeletons the sessions visited. Two sessions that
/// explored the same query structures — regardless of constants — score
/// high. In [0, 1].
double SessionSimilarity(const storage::QueryStore& store, const Session& a,
                         const Session& b);

/// A clustering of sessions. Cluster members are indices into the input
/// session vector.
struct SessionClustering {
  std::vector<std::vector<size_t>> clusters;

  /// Index of the cluster containing session index `i`, or -1.
  int ClusterOfIndex(size_t i) const;
};

/// Single-linkage agglomerative clustering of sessions: sessions within
/// `max_distance` (= 1 - similarity) are merged transitively.
SessionClustering ClusterSessions(const storage::QueryStore& store,
                                  const std::vector<Session>& sessions,
                                  double max_distance = 0.5);

/// Users whose session patterns resemble `user`'s: authors of sessions
/// sharing a cluster with any of `user`'s sessions. This implements the
/// paper's "recommendations can be limited to queries from users who
/// have similar query session patterns as the current user". Sorted,
/// excludes `user` itself.
std::vector<std::string> SimilarSessionUsers(const std::vector<Session>& sessions,
                                             const SessionClustering& clustering,
                                             const std::string& user);

}  // namespace cqms::miner

#endif  // CQMS_MINER_SESSION_CLUSTERING_H_
