#include "miner/distance_cache.h"

#include <algorithm>
#include <utility>

namespace cqms::miner {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 64;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

DistanceCache::DistanceCache(size_t initial_capacity) {
  table_.resize(RoundUpPow2(initial_capacity));
}

uint64_t DistanceCache::PairHash(uint32_t a, uint32_t b) {
  // splitmix64 over the packed unordered pair: cheap, well-mixed, and
  // id-order independent because callers normalize a < b first.
  uint64_t x = (static_cast<uint64_t>(a) << 32) | b;
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

size_t DistanceCache::FindSlot(const std::vector<Entry>& table, uint32_t a,
                               uint32_t b) const {
  const size_t mask = table.size() - 1;
  size_t slot = PairHash(a, b) & mask;
  while (true) {
    const Entry& e = table[slot];
    if (e.a == kEmptyId || (e.a == a && e.b == b)) return slot;
    slot = (slot + 1) & mask;
  }
}

bool DistanceCache::Lookup(storage::QueryId a, storage::QueryId b,
                           double* distance) const {
  if (!Cacheable(a) || !Cacheable(b)) {
    ++stats_.misses;
    return false;
  }
  uint32_t lo = static_cast<uint32_t>(a), hi = static_cast<uint32_t>(b);
  if (lo > hi) std::swap(lo, hi);
  const Entry& e = table_[FindSlot(table_, lo, hi)];
  if (e.a == kEmptyId || !Live(e)) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *distance = e.distance;
  return true;
}

void DistanceCache::Insert(storage::QueryId a, storage::QueryId b,
                           double distance) {
  if (!Cacheable(a) || !Cacheable(b)) return;
  uint32_t lo = static_cast<uint32_t>(a), hi = static_cast<uint32_t>(b);
  if (lo > hi) std::swap(lo, hi);
  size_t slot = FindSlot(table_, lo, hi);
  Entry& e = table_[slot];
  if (e.a == kEmptyId) {
    if (used_ + 1 > table_.size() - table_.size() / 4) {
      Grow();
      slot = FindSlot(table_, lo, hi);
    }
    ++used_;
  }
  table_[slot] = Entry{lo, hi, VersionOf(lo), VersionOf(hi), distance};
  ++stats_.inserts;
}

void DistanceCache::Invalidate(storage::QueryId id) {
  if (!Cacheable(id)) return;  // nothing with this endpoint was ever stored
  size_t idx = static_cast<size_t>(id);
  if (idx >= versions_.size()) versions_.resize(idx + 1, 0);
  ++versions_[idx];
  ++stats_.invalidations;
}

void DistanceCache::Clear() {
  std::fill(table_.begin(), table_.end(), Entry{});
  versions_.clear();
  used_ = 0;
}

size_t DistanceCache::Rebuild(size_t new_capacity) {
  std::vector<Entry> fresh(new_capacity);
  size_t kept = 0;
  for (const Entry& e : table_) {
    if (!Live(e)) continue;
    fresh[FindSlot(fresh, e.a, e.b)] = e;
    ++kept;
  }
  const size_t dropped = used_ - kept;
  table_ = std::move(fresh);
  used_ = kept;
  return dropped;
}

void DistanceCache::Grow() { Rebuild(table_.size() * 2); }

size_t DistanceCache::CompactIfNeeded(double max_stale_fraction) {
  if (used_ == 0) return 0;
  size_t stale = 0;
  for (const Entry& e : table_) {
    if (e.a != kEmptyId && !Live(e)) ++stale;
  }
  if (static_cast<double>(stale) <=
      max_stale_fraction * static_cast<double>(used_)) {
    return 0;
  }
  // Live count may now fit a smaller table; shrink to the smallest
  // power of two keeping load below the growth threshold.
  const size_t live = used_ - stale;
  size_t cap = table_.size();
  while (cap > 64 && live <= (cap / 2) - (cap / 2) / 4) cap /= 2;
  ++stats_.compactions;
  return Rebuild(cap);
}

}  // namespace cqms::miner
