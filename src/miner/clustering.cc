#include "miner/clustering.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>

#include "common/rng.h"

namespace cqms::miner {

namespace {

/// Pairwise distance matrix over the given ids. Below
/// `sketch_prune_min_points` every pair is scored exactly (dense O(n^2)
/// over the precomputed signatures). At or above it, the records'
/// MinHash sketches prune the pair enumeration: only pairs sharing at
/// least one LSH band bucket are scored, and the rest are approximated
/// by the maximal distance 1.0 — a conservative overestimate that only
/// touches pairs the sketches already deem dissimilar, so threshold
/// clustering and medoid selection are virtually unaffected while the
/// scored-pair count drops from n^2 to near-linear on clustered logs.
class DistanceMatrix {
 public:
  DistanceMatrix(const storage::QueryStore& store,
                 const std::vector<storage::QueryId>& ids,
                 const metaquery::SimilarityWeights& weights,
                 size_t sketch_prune_min_points)
      : n_(ids.size()) {
    // Resolve ids once; the loops below then run entirely on the
    // records' precomputed similarity signatures.
    std::vector<const storage::QueryRecord*> records(n_);
    for (size_t i = 0; i < n_; ++i) records[i] = store.Get(ids[i]);
    // Shared by both branches so the exact and pruned paths provably
    // compute the same quantity for every pair they both score.
    auto score_pair = [&](size_t i, size_t j) {
      double d =
          1.0 - metaquery::CombinedSimilarity(*records[i], *records[j], weights);
      data_[i * n_ + j] = d;
      data_[j * n_ + i] = d;
    };
    if (sketch_prune_min_points == 0 || n_ < sketch_prune_min_points) {
      data_.assign(n_ * n_, 0.0);
      for (size_t i = 0; i < n_; ++i) {
        for (size_t j = i + 1; j < n_; ++j) score_pair(i, j);
      }
      return;
    }
    // Sketch-pruned: re-bucket this subset through a local LshIndex
    // keyed by local index, then score only co-bucketed pairs. The
    // banding is deliberately much wider than the store's kNN default
    // (32x2: s-curve midpoint ~0.18): a missed pair here silently
    // inflates a distance to 1.0, so pruning must only drop pairs that
    // are nowhere near any clustering threshold. Records with empty
    // sketches stay at distance 1.0 from everything. (The matrix itself
    // is still dense O(n^2) memory; a sparse scored-pair layout is the
    // natural next step once inputs outgrow it — see ROADMAP's
    // incremental-clustering item.)
    data_.assign(n_ * n_, 1.0);
    for (size_t i = 0; i < n_; ++i) data_[i * n_ + i] = 0.0;
    storage::LshIndex local({/*bands=*/32, /*rows=*/2});
    for (size_t i = 0; i < n_; ++i) {
      local.Insert(static_cast<storage::QueryId>(i), records[i]->sketch);
    }
    for (size_t i = 0; i < n_; ++i) {
      for (storage::QueryId j : local.Candidates(records[i]->sketch)) {
        size_t other = static_cast<size_t>(j);
        if (other > i) score_pair(i, other);
      }
    }
  }

  double at(size_t i, size_t j) const { return data_[i * n_ + j]; }
  size_t size() const { return n_; }

 private:
  size_t n_;
  std::vector<double> data_;
};

}  // namespace

int Clustering::ClusterOf(storage::QueryId id) const {
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (storage::QueryId q : clusters[i]) {
      if (q == id) return static_cast<int>(i);
    }
  }
  return -1;
}

Clustering KMedoidsCluster(const storage::QueryStore& store,
                           const std::vector<storage::QueryId>& ids,
                           const KMedoidsOptions& options) {
  Clustering out;
  if (ids.empty()) return out;
  const size_t n = ids.size();
  const size_t k = std::min(options.k == 0 ? 1 : options.k, n);
  DistanceMatrix dist(store, ids, options.weights,
                      options.sketch_prune_min_points);

  // Seed medoids: shuffle indices deterministically, take the first k.
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Rng rng(options.seed);
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Uniform(i)]);
  }
  std::vector<size_t> medoids(perm.begin(), perm.begin() + k);

  std::vector<size_t> assignment(n, 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Assign each point to its nearest medoid.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t m = 0; m < k; ++m) {
        double d = dist.at(i, medoids[m]);
        if (d < best_d) {
          best_d = d;
          best = m;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    // Update: medoid = member minimizing total intra-cluster distance.
    for (size_t m = 0; m < k; ++m) {
      double best_total = std::numeric_limits<double>::infinity();
      size_t best_idx = medoids[m];
      for (size_t i = 0; i < n; ++i) {
        if (assignment[i] != m) continue;
        double total = 0;
        for (size_t j = 0; j < n; ++j) {
          if (assignment[j] == m) total += dist.at(i, j);
        }
        if (total < best_total) {
          best_total = total;
          best_idx = i;
        }
      }
      if (medoids[m] != best_idx) {
        medoids[m] = best_idx;
        changed = true;
      }
    }
    if (!changed) break;
  }

  out.clusters.assign(k, {});
  out.medoids.assign(k, storage::kInvalidQueryId);
  for (size_t m = 0; m < k; ++m) out.medoids[m] = ids[medoids[m]];
  for (size_t i = 0; i < n; ++i) out.clusters[assignment[i]].push_back(ids[i]);
  // Drop empty clusters (possible when duplicate points collapse).
  for (size_t m = out.clusters.size(); m > 0; --m) {
    if (out.clusters[m - 1].empty()) {
      out.clusters.erase(out.clusters.begin() + (m - 1));
      out.medoids.erase(out.medoids.begin() + (m - 1));
    }
  }
  return out;
}

Clustering AgglomerativeCluster(const storage::QueryStore& store,
                                const std::vector<storage::QueryId>& ids,
                                double max_distance,
                                const metaquery::SimilarityWeights& weights,
                                size_t sketch_prune_min_points) {
  Clustering out;
  if (ids.empty()) return out;
  const size_t n = ids.size();
  DistanceMatrix dist(store, ids, weights, sketch_prune_min_points);

  // Union-find over points; single linkage = union every pair within
  // threshold (equivalent to connected components of the threshold graph).
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (dist.at(i, j) <= max_distance) {
        parent[find(i)] = find(j);
      }
    }
  }

  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < n; ++i) components[find(i)].push_back(i);
  for (auto& [root, members] : components) {
    // Medoid: member with minimal total distance.
    size_t best = members[0];
    double best_total = std::numeric_limits<double>::infinity();
    for (size_t i : members) {
      double total = 0;
      for (size_t j : members) total += dist.at(i, j);
      if (total < best_total) {
        best_total = total;
        best = i;
      }
    }
    std::vector<storage::QueryId> cluster;
    cluster.reserve(members.size());
    for (size_t i : members) cluster.push_back(ids[i]);
    out.clusters.push_back(std::move(cluster));
    out.medoids.push_back(ids[best]);
  }
  return out;
}

}  // namespace cqms::miner
