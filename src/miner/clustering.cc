#include "miner/clustering.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>

#include "common/rng.h"
#include "common/sorted_vector.h"

namespace cqms::miner {

namespace {

/// Shared pair enumeration of both matrix implementations: below
/// `sketch_prune_min_points` every (i, j < i) pair, otherwise only
/// pairs co-bucketed by a local wide-banded LshIndex (32x2: s-curve
/// midpoint ~0.18 — a missed pair silently inflates a distance to 1.0,
/// so pruning must only drop pairs nowhere near any clustering
/// threshold). Because the enumeration depends only on the records'
/// current sketches — never on cache state — the dense and cached
/// paths score exactly the same pair set, which is what makes them
/// bit-identical. `score(i, j)` must return the pair's distance; the
/// matrix is initialized to 1.0 (pruned) or 0.0 (exact) beforehand by
/// the caller via `fill`.
template <typename ScoreFn>
void FillPairDistances(const std::vector<const storage::QueryRecord*>& records,
                       size_t sketch_prune_min_points,
                       std::vector<double>* data, ScoreFn score) {
  const size_t n = records.size();
  auto set_pair = [&](size_t i, size_t j) {
    double d = score(i, j);
    (*data)[i * n + j] = d;
    (*data)[j * n + i] = d;
  };
  if (sketch_prune_min_points == 0 || n < sketch_prune_min_points) {
    data->assign(n * n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) set_pair(i, j);
    }
    return;
  }
  data->assign(n * n, 1.0);
  for (size_t i = 0; i < n; ++i) (*data)[i * n + i] = 0.0;
  storage::LshIndex local({/*bands=*/32, /*rows=*/2});
  for (size_t i = 0; i < n; ++i) {
    local.Insert(static_cast<storage::QueryId>(i), records[i]->sketch);
  }
  for (size_t i = 0; i < n; ++i) {
    for (storage::QueryId j : local.Candidates(records[i]->sketch)) {
      size_t other = static_cast<size_t>(j);
      if (other > i) set_pair(i, other);
    }
  }
}

std::vector<const storage::QueryRecord*> ResolveRecords(
    const storage::QueryStore& store,
    const std::vector<storage::QueryId>& ids) {
  std::vector<const storage::QueryRecord*> records(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) records[i] = store.Get(ids[i]);
  return records;
}

/// Pair scorer of the cached matrix: reads signatures from the scoring
/// columns' shared arenas (contiguous — no per-record vector chasing in
/// the hot loop) and falls back to the record dispatch for rows the
/// columns mark invalid. This is exactly the dispatch the dense oracle's
/// CombinedSimilarity(record, record) performs, over the same data, so
/// the two paths stay bit-identical.
class ColumnarPairScorer {
 public:
  ColumnarPairScorer(const storage::QueryStore& store,
                     const std::vector<storage::QueryId>& ids,
                     const std::vector<const storage::QueryRecord*>& records,
                     const metaquery::SimilarityWeights& weights)
      : records_(records), weights_(weights) {
    const storage::ScoringColumns& cols = store.scoring();
    views_.resize(ids.size());
    column_valid_.resize(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      column_valid_[i] = cols.signature_valid(ids[i]);
      if (column_valid_[i]) views_[i] = metaquery::ViewOfColumns(cols, ids[i]);
    }
  }

  double Distance(size_t i, size_t j) const {
    if (column_valid_[i] && column_valid_[j]) {
      return 1.0 - metaquery::CombinedSimilarity(views_[i], views_[j], weights_);
    }
    return 1.0 -
           metaquery::CombinedSimilarity(*records_[i], *records_[j], weights_);
  }

 private:
  const std::vector<const storage::QueryRecord*>& records_;
  metaquery::SimilarityWeights weights_;
  std::vector<metaquery::SignatureView> views_;
  std::vector<char> column_valid_;
};

}  // namespace

DenseDistanceMatrix::DenseDistanceMatrix(
    const storage::QueryStore& store, const std::vector<storage::QueryId>& ids,
    const metaquery::SimilarityWeights& weights,
    size_t sketch_prune_min_points) {
  n_ = ids.size();
  auto records = ResolveRecords(store, ids);
  FillPairDistances(records, sketch_prune_min_points, &data_,
                    [&](size_t i, size_t j) {
                      return 1.0 - metaquery::CombinedSimilarity(
                                       *records[i], *records[j], weights);
                    });
}

void CachedDistanceMatrix::BuildFull(const storage::QueryStore& store,
                                     const std::vector<storage::QueryId>& ids,
                                     const metaquery::SimilarityWeights& weights,
                                     size_t sketch_prune_min_points,
                                     DistanceCache* cache) {
  n_ = ids.size();
  pruned_ = !(sketch_prune_min_points == 0 || n_ < sketch_prune_min_points);
  auto records = ResolveRecords(store, ids);
  ColumnarPairScorer scorer(store, ids, records, weights);
  FillPairDistances(
      records, sketch_prune_min_points, &data_, [&](size_t i, size_t j) {
        ++stats_.pairs_enumerated;
        double d;
        if (cache->Lookup(ids[i], ids[j], &d)) {
          ++stats_.pairs_reused;
          return d;
        }
        d = scorer.Distance(i, j);
        cache->Insert(ids[i], ids[j], d);
        ++stats_.pairs_computed;
        return d;
      });
}

CachedDistanceMatrix::CachedDistanceMatrix(
    const storage::QueryStore& store, const std::vector<storage::QueryId>& ids,
    const metaquery::SimilarityWeights& weights, size_t sketch_prune_min_points,
    DistanceCache* cache) {
  BuildFull(store, ids, weights, sketch_prune_min_points, cache);
}

CachedDistanceMatrix::CachedDistanceMatrix(
    const storage::QueryStore& store, const std::vector<storage::QueryId>& ids,
    const metaquery::SimilarityWeights& weights, size_t sketch_prune_min_points,
    DistanceCache* cache, const RetainedMatrix* previous,
    const std::vector<storage::QueryId>& dirty) {
  n_ = ids.size();
  pruned_ = !(sketch_prune_min_points == 0 || n_ < sketch_prune_min_points);
  // The retained matrix is only a shortcut for pairs both builds score
  // the same way: same enumeration mode, endpoints unchanged. Anything
  // else falls back to the per-pair cache path.
  if (previous == nullptr || !previous->valid || previous->pruned != pruned_) {
    BuildFull(store, ids, weights, sketch_prune_min_points, cache);
    return;
  }

  // Position map: new index -> previous index for clean survivors, -1
  // for fresh or dirty ids. Both windows are ascending, so one merge
  // suffices; `dirty` is sorted for the same reason.
  const size_t m = previous->ids.size();
  std::vector<int32_t> old_of(n_, -1);
  {
    size_t j = 0, d = 0;
    for (size_t i = 0; i < n_; ++i) {
      while (j < m && previous->ids[j] < ids[i]) ++j;
      while (d < dirty.size() && dirty[d] < ids[i]) ++d;
      bool is_dirty = d < dirty.size() && dirty[d] == ids[i];
      if (j < m && previous->ids[j] == ids[i] && !is_dirty) {
        old_of[i] = static_cast<int32_t>(j);
      }
    }
  }

  auto records = ResolveRecords(store, ids);
  if (pruned_) {
    data_.assign(n_ * n_, 1.0);
    for (size_t i = 0; i < n_; ++i) data_[i * n_ + i] = 0.0;
  } else {
    data_.assign(n_ * n_, 0.0);
  }

  // Bulk-copy the clean-survivor submatrix row-wise.
  std::vector<std::pair<uint32_t, uint32_t>> mapped;  // (new j, old j)
  mapped.reserve(n_);
  for (size_t j = 0; j < n_; ++j) {
    if (old_of[j] >= 0) mapped.emplace_back(j, old_of[j]);
  }
  for (size_t i = 0; i < n_; ++i) {
    if (old_of[i] < 0) continue;
    const double* src = previous->data.data() + static_cast<size_t>(old_of[i]) * m;
    double* dst = data_.data() + i * n_;
    for (const auto& [nj, oj] : mapped) dst[nj] = src[oj];
  }
  stats_.pairs_copied =
      mapped.empty() ? 0 : mapped.size() * (mapped.size() - 1) / 2;

  // Score every pair touching a fresh/dirty id: the (fresh, clean)
  // pairs once from the fresh side, the (fresh, fresh) pairs deduped by
  // index order. The enumeration predicate is exactly the full build's,
  // so the scored-pair set — and with the shared kernel the values —
  // match a from-scratch matrix bit for bit. Fresh computes are NOT
  // written back to the cache here: the retained matrix carries them to
  // the next refresh (where these ids are clean survivors and copy),
  // and skipping ~hundreds of thousands of table probes per refresh is
  // a measurable slice of the delta cost. The cache is (re)filled by
  // full builds and consulted for window recompositions.
  ColumnarPairScorer scorer(store, ids, records, weights);
  auto score_pair = [&](size_t i, size_t j) {
    ++stats_.pairs_enumerated;
    double d;
    if (!cache->Lookup(ids[i], ids[j], &d)) {
      d = scorer.Distance(i, j);
      ++stats_.pairs_computed;
    } else {
      ++stats_.pairs_reused;
    }
    data_[i * n_ + j] = d;
    data_[j * n_ + i] = d;
  };
  if (pruned_) {
    storage::LshIndex local({/*bands=*/32, /*rows=*/2});
    for (size_t i = 0; i < n_; ++i) {
      local.Insert(static_cast<storage::QueryId>(i), records[i]->sketch);
    }
    for (size_t i = 0; i < n_; ++i) {
      if (old_of[i] >= 0) continue;
      for (storage::QueryId cand : local.Candidates(records[i]->sketch)) {
        size_t j = static_cast<size_t>(cand);
        if (j == i) continue;
        if (old_of[j] < 0 && j < i) continue;  // fresh-fresh: score once
        score_pair(i, j);
      }
    }
  } else {
    for (size_t i = 0; i < n_; ++i) {
      if (old_of[i] >= 0) continue;
      for (size_t j = 0; j < n_; ++j) {
        if (j == i) continue;
        if (old_of[j] < 0 && j < i) continue;
        score_pair(i, j);
      }
    }
  }
}

int Clustering::ClusterOf(storage::QueryId id) const {
  if (!member_index_.empty()) {
    auto it = std::lower_bound(
        member_index_.begin(), member_index_.end(),
        std::make_pair(id, std::numeric_limits<int>::min()));
    if (it != member_index_.end() && it->first == id) return it->second;
    return -1;
  }
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (storage::QueryId q : clusters[i]) {
      if (q == id) return static_cast<int>(i);
    }
  }
  return -1;
}

void Clustering::BuildMemberIndex() {
  member_index_.clear();
  size_t total = 0;
  for (const auto& c : clusters) total += c.size();
  member_index_.reserve(total);
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (storage::QueryId q : clusters[i]) {
      member_index_.emplace_back(q, static_cast<int>(i));
    }
  }
  std::sort(member_index_.begin(), member_index_.end());
}

Clustering KMedoidsFromDistances(const DistanceSource& dist,
                                 const std::vector<storage::QueryId>& ids,
                                 const KMedoidsOptions& options) {
  Clustering out;
  if (ids.empty()) return out;
  const size_t n = ids.size();
  const size_t k = std::min(options.k == 0 ? 1 : options.k, n);

  // Seed medoids: shuffle indices deterministically, take the first k.
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Rng rng(options.seed);
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Uniform(i)]);
  }
  std::vector<size_t> medoids(perm.begin(), perm.begin() + k);

  std::vector<size_t> assignment(n, 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Assign each point to its nearest medoid.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t m = 0; m < k; ++m) {
        double d = dist.at(i, medoids[m]);
        if (d < best_d) {
          best_d = d;
          best = m;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    // Update: medoid = member minimizing total intra-cluster distance.
    // Materializing member lists first turns the scan from k * n^2
    // skip-checks into sum(|cluster|^2) distance reads; members stay in
    // ascending index order, so the floating-point summation order —
    // and the tie-broken medoid choice — match the naive loop exactly.
    std::vector<std::vector<size_t>> members(k);
    for (size_t i = 0; i < n; ++i) members[assignment[i]].push_back(i);
    for (size_t m = 0; m < k; ++m) {
      double best_total = std::numeric_limits<double>::infinity();
      size_t best_idx = medoids[m];
      for (size_t i : members[m]) {
        double total = 0;
        for (size_t j : members[m]) total += dist.at(i, j);
        if (total < best_total) {
          best_total = total;
          best_idx = i;
        }
      }
      if (medoids[m] != best_idx) {
        medoids[m] = best_idx;
        changed = true;
      }
    }
    if (!changed) break;
  }

  out.clusters.assign(k, {});
  out.medoids.assign(k, storage::kInvalidQueryId);
  for (size_t m = 0; m < k; ++m) out.medoids[m] = ids[medoids[m]];
  for (size_t i = 0; i < n; ++i) out.clusters[assignment[i]].push_back(ids[i]);
  // Drop empty clusters (possible when duplicate points collapse).
  for (size_t m = out.clusters.size(); m > 0; --m) {
    if (out.clusters[m - 1].empty()) {
      out.clusters.erase(out.clusters.begin() + (m - 1));
      out.medoids.erase(out.medoids.begin() + (m - 1));
    }
  }
  out.BuildMemberIndex();
  return out;
}

Clustering KMedoidsCluster(const storage::QueryStore& store,
                           const std::vector<storage::QueryId>& ids,
                           const KMedoidsOptions& options) {
  DenseDistanceMatrix dist(store, ids, options.weights,
                           options.sketch_prune_min_points);
  return KMedoidsFromDistances(dist, ids, options);
}

Clustering KMedoidsCluster(const storage::QueryStore& store,
                           const std::vector<storage::QueryId>& ids,
                           const KMedoidsOptions& options, DistanceCache* cache,
                           CachedDistanceMatrix::BuildStats* stats) {
  if (cache == nullptr) return KMedoidsCluster(store, ids, options);
  CachedDistanceMatrix dist(store, ids, options.weights,
                            options.sketch_prune_min_points, cache);
  if (stats != nullptr) *stats = dist.build_stats();
  return KMedoidsFromDistances(dist, ids, options);
}

Clustering AgglomerativeFromDistances(const DistanceSource& dist,
                                      const std::vector<storage::QueryId>& ids,
                                      double max_distance) {
  Clustering out;
  if (ids.empty()) return out;
  const size_t n = ids.size();

  // Union-find over points; single linkage = union every pair within
  // threshold (equivalent to connected components of the threshold graph).
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (dist.at(i, j) <= max_distance) {
        parent[find(i)] = find(j);
      }
    }
  }

  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < n; ++i) components[find(i)].push_back(i);
  for (auto& [root, members] : components) {
    // Medoid: member with minimal total distance.
    size_t best = members[0];
    double best_total = std::numeric_limits<double>::infinity();
    for (size_t i : members) {
      double total = 0;
      for (size_t j : members) total += dist.at(i, j);
      if (total < best_total) {
        best_total = total;
        best = i;
      }
    }
    std::vector<storage::QueryId> cluster;
    cluster.reserve(members.size());
    for (size_t i : members) cluster.push_back(ids[i]);
    out.clusters.push_back(std::move(cluster));
    out.medoids.push_back(ids[best]);
  }
  out.BuildMemberIndex();
  return out;
}

Clustering AgglomerativeCluster(const storage::QueryStore& store,
                                const std::vector<storage::QueryId>& ids,
                                double max_distance,
                                const metaquery::SimilarityWeights& weights,
                                size_t sketch_prune_min_points) {
  DenseDistanceMatrix dist(store, ids, weights, sketch_prune_min_points);
  return AgglomerativeFromDistances(dist, ids, max_distance);
}

Clustering AgglomerativeCluster(const storage::QueryStore& store,
                                const std::vector<storage::QueryId>& ids,
                                double max_distance,
                                const metaquery::SimilarityWeights& weights,
                                size_t sketch_prune_min_points,
                                DistanceCache* cache) {
  if (cache == nullptr) {
    return AgglomerativeCluster(store, ids, max_distance, weights,
                                sketch_prune_min_points);
  }
  CachedDistanceMatrix dist(store, ids, weights, sketch_prune_min_points,
                            cache);
  return AgglomerativeFromDistances(dist, ids, max_distance);
}

}  // namespace cqms::miner
