#include "miner/clustering.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>

#include "common/rng.h"

namespace cqms::miner {

namespace {

/// Dense pairwise distance matrix over the given ids.
class DistanceMatrix {
 public:
  DistanceMatrix(const storage::QueryStore& store,
                 const std::vector<storage::QueryId>& ids,
                 const metaquery::SimilarityWeights& weights)
      : n_(ids.size()), data_(n_ * n_, 0) {
    // Resolve ids once; the O(n^2) loop below then runs entirely on the
    // records' precomputed similarity signatures.
    std::vector<const storage::QueryRecord*> records(n_);
    for (size_t i = 0; i < n_; ++i) records[i] = store.Get(ids[i]);
    for (size_t i = 0; i < n_; ++i) {
      for (size_t j = i + 1; j < n_; ++j) {
        double d =
            1.0 - metaquery::CombinedSimilarity(*records[i], *records[j], weights);
        data_[i * n_ + j] = d;
        data_[j * n_ + i] = d;
      }
    }
  }

  double at(size_t i, size_t j) const { return data_[i * n_ + j]; }
  size_t size() const { return n_; }

 private:
  size_t n_;
  std::vector<double> data_;
};

}  // namespace

int Clustering::ClusterOf(storage::QueryId id) const {
  for (size_t i = 0; i < clusters.size(); ++i) {
    for (storage::QueryId q : clusters[i]) {
      if (q == id) return static_cast<int>(i);
    }
  }
  return -1;
}

Clustering KMedoidsCluster(const storage::QueryStore& store,
                           const std::vector<storage::QueryId>& ids,
                           const KMedoidsOptions& options) {
  Clustering out;
  if (ids.empty()) return out;
  const size_t n = ids.size();
  const size_t k = std::min(options.k == 0 ? 1 : options.k, n);
  DistanceMatrix dist(store, ids, options.weights);

  // Seed medoids: shuffle indices deterministically, take the first k.
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Rng rng(options.seed);
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Uniform(i)]);
  }
  std::vector<size_t> medoids(perm.begin(), perm.begin() + k);

  std::vector<size_t> assignment(n, 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Assign each point to its nearest medoid.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t m = 0; m < k; ++m) {
        double d = dist.at(i, medoids[m]);
        if (d < best_d) {
          best_d = d;
          best = m;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    // Update: medoid = member minimizing total intra-cluster distance.
    for (size_t m = 0; m < k; ++m) {
      double best_total = std::numeric_limits<double>::infinity();
      size_t best_idx = medoids[m];
      for (size_t i = 0; i < n; ++i) {
        if (assignment[i] != m) continue;
        double total = 0;
        for (size_t j = 0; j < n; ++j) {
          if (assignment[j] == m) total += dist.at(i, j);
        }
        if (total < best_total) {
          best_total = total;
          best_idx = i;
        }
      }
      if (medoids[m] != best_idx) {
        medoids[m] = best_idx;
        changed = true;
      }
    }
    if (!changed) break;
  }

  out.clusters.assign(k, {});
  out.medoids.assign(k, storage::kInvalidQueryId);
  for (size_t m = 0; m < k; ++m) out.medoids[m] = ids[medoids[m]];
  for (size_t i = 0; i < n; ++i) out.clusters[assignment[i]].push_back(ids[i]);
  // Drop empty clusters (possible when duplicate points collapse).
  for (size_t m = out.clusters.size(); m > 0; --m) {
    if (out.clusters[m - 1].empty()) {
      out.clusters.erase(out.clusters.begin() + (m - 1));
      out.medoids.erase(out.medoids.begin() + (m - 1));
    }
  }
  return out;
}

Clustering AgglomerativeCluster(const storage::QueryStore& store,
                                const std::vector<storage::QueryId>& ids,
                                double max_distance,
                                const metaquery::SimilarityWeights& weights) {
  Clustering out;
  if (ids.empty()) return out;
  const size_t n = ids.size();
  DistanceMatrix dist(store, ids, weights);

  // Union-find over points; single linkage = union every pair within
  // threshold (equivalent to connected components of the threshold graph).
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (dist.at(i, j) <= max_distance) {
        parent[find(i)] = find(j);
      }
    }
  }

  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < n; ++i) components[find(i)].push_back(i);
  for (auto& [root, members] : components) {
    // Medoid: member with minimal total distance.
    size_t best = members[0];
    double best_total = std::numeric_limits<double>::infinity();
    for (size_t i : members) {
      double total = 0;
      for (size_t j : members) total += dist.at(i, j);
      if (total < best_total) {
        best_total = total;
        best = i;
      }
    }
    std::vector<storage::QueryId> cluster;
    cluster.reserve(members.size());
    for (size_t i : members) cluster.push_back(ids[i]);
    out.clusters.push_back(std::move(cluster));
    out.medoids.push_back(ids[best]);
  }
  return out;
}

}  // namespace cqms::miner
