#include "miner/query_miner.h"

#include <algorithm>

#include "common/clock.h"
#include "common/sorted_vector.h"
#include "obs/metrics.h"

namespace cqms::miner {

namespace {

// Per-stage refresh timings plus DistanceCache pair-flow counters,
// labeled so full and incremental refreshes share the same series.
struct MinerSeries {
  obs::Histogram* sessionize;
  obs::Histogram* association;
  obs::Histogram* popularity;
  obs::Histogram* cluster;
  obs::Counter* refreshes_full;
  obs::Counter* refreshes_incremental;
  obs::Counter* pairs_enumerated;
  obs::Counter* pairs_reused;
  obs::Counter* pairs_computed;
  obs::Counter* pairs_copied;
};

const MinerSeries& Series() {
  static const MinerSeries s = [] {
    auto& reg = obs::MetricsRegistry::Global();
    MinerSeries m;
    m.sessionize = reg.GetHistogram("cqms_miner_stage_micros{stage=\"sessionize\"}");
    m.association = reg.GetHistogram("cqms_miner_stage_micros{stage=\"association\"}");
    m.popularity = reg.GetHistogram("cqms_miner_stage_micros{stage=\"popularity\"}");
    m.cluster = reg.GetHistogram("cqms_miner_stage_micros{stage=\"cluster\"}");
    m.refreshes_full = reg.GetCounter("cqms_miner_refreshes_total{kind=\"full\"}");
    m.refreshes_incremental =
        reg.GetCounter("cqms_miner_refreshes_total{kind=\"incremental\"}");
    m.pairs_enumerated = reg.GetCounter("cqms_miner_pairs_enumerated_total");
    m.pairs_reused = reg.GetCounter("cqms_miner_pairs_reused_total");
    m.pairs_computed = reg.GetCounter("cqms_miner_pairs_computed_total");
    m.pairs_copied = reg.GetCounter("cqms_miner_pairs_copied_total");
    return m;
  }();
  return s;
}

// Marks stage boundaries: each call records the elapsed slice since the
// previous one into the given histogram.
class StageTimer {
 public:
  void Finish(obs::Histogram* h) {
    Micros now = timer_.ElapsedMicros();
    h->Record(static_cast<uint64_t>(now - last_));
    last_ = now;
  }

 private:
  WallTimer timer_;
  Micros last_ = 0;
};

}  // namespace

QueryMiner::QueryMiner(storage::QueryStore* store, const Clock* clock,
                       QueryMinerOptions options)
    : store_(store), clock_(clock), options_(options) {
  tracker_.Attach(store_);
  popularity_.EnableDeltas(options_.incremental);
}

std::vector<storage::QueryId> QueryMiner::ClusteringSample() const {
  std::vector<storage::QueryId> cluster_ids;
  const auto& records = store_->records();
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->HasFlag(storage::kFlagDeleted) || it->parse_failed()) continue;
    cluster_ids.push_back(it->id);
    if (options_.clustering_sample != 0 &&
        cluster_ids.size() >= options_.clustering_sample) {
      break;
    }
  }
  std::reverse(cluster_ids.begin(), cluster_ids.end());
  return cluster_ids;
}

void QueryMiner::Recluster(const std::vector<storage::QueryId>& dirty) {
  std::vector<storage::QueryId> sample = ClusteringSample();
  CachedDistanceMatrix dist(*store_, sample, options_.clustering.weights,
                            options_.clustering.sketch_prune_min_points,
                            &distance_cache_, &retained_matrix_, dirty);
  clustering_ = KMedoidsFromDistances(dist, sample, options_.clustering);
  last_stats_.pairs_enumerated = dist.build_stats().pairs_enumerated;
  last_stats_.pairs_reused = dist.build_stats().pairs_reused;
  last_stats_.pairs_computed = dist.build_stats().pairs_computed;
  last_stats_.pairs_copied = dist.build_stats().pairs_copied;
  const MinerSeries& series = Series();
  series.pairs_enumerated->Add(last_stats_.pairs_enumerated);
  series.pairs_reused->Add(last_stats_.pairs_reused);
  series.pairs_computed->Add(last_stats_.pairs_computed);
  series.pairs_copied->Add(last_stats_.pairs_copied);
  // Retain this window's matrix: the next refresh bulk-copies every
  // pair of unchanged survivors instead of re-probing the cache.
  retained_matrix_.pruned = dist.pruned();
  retained_matrix_.data = dist.TakeData();
  retained_matrix_.ids = std::move(sample);
  retained_matrix_.valid = true;
}

void QueryMiner::RunAll() {
  // The sessionizer writes session ids back record by record; one
  // republish for the whole mining cycle.
  storage::QueryStore::ScopedPublishBatch batch(store_);
  // Everything is rebuilt from scratch below, so whatever the change
  // feed accumulated is covered — absorb it.
  tracker_.Drain();
  last_stats_ = MinerRefreshStats{};
  last_stats_.ran = true;
  last_stats_.full = true;
  Series().refreshes_full->Increment();
  StageTimer stages;

  {
    // The session write-back is this miner's own derived state, not
    // external dirt.
    storage::ChangeTracker::ScopedSuppress suppress(&tracker_);
    sessions_ = IdentifySessions(store_, options_.sessionizer);
  }
  stages.Finish(Series().sessionize);

  // Association rules over all parsed queries.
  std::vector<storage::QueryId> all_ids;
  all_ids.reserve(store_->size());
  for (const storage::QueryRecord& r : store_->records()) {
    if (!r.HasFlag(storage::kFlagDeleted)) all_ids.push_back(r.id);
  }
  association_state_.Rebuild(*store_, all_ids, options_.association);
  rules_ = association_state_.Mine();
  last_stats_.rules_fresh_counts = association_state_.last_fresh_counts();
  stages.Finish(Series().association);

  popularity_.Build(*store_, clock_->Now(), options_.popularity);
  stages.Finish(Series().popularity);

  // Clustering over the most recent window. The full rebuild drops the
  // persistent distance cache and the retained matrix (the drift
  // escape hatch) and re-warms both, so the next incremental refresh
  // starts from fully re-derived state.
  distance_cache_.Clear();
  retained_matrix_.valid = false;
  Recluster(/*dirty=*/{});
  stages.Finish(Series().cluster);

  last_mined_size_ = store_->size();
  refreshes_since_full_ = 0;
  RebuildSessionIndex();
}

void QueryMiner::RefreshIncremental(storage::ChangeDelta delta) {
  storage::QueryStore::ScopedPublishBatch batch(store_);
  last_stats_ = MinerRefreshStats{};
  last_stats_.ran = true;
  last_stats_.full = false;
  last_stats_.appended = delta.appended.size();
  last_stats_.structurally_dirty = delta.StructuralSize();
  Series().refreshes_incremental->Increment();
  StageTimer stages;

  // Sessions: tail-extend append-only users, re-segment the rest.
  {
    SessionDelta session_delta;
    session_delta.appended = delta.appended;
    session_delta.structurally_dirty = delta.rewritten;
    session_delta.structurally_dirty.insert(
        session_delta.structurally_dirty.end(), delta.deleted.begin(),
        delta.deleted.end());
    session_delta.structurally_dirty.insert(
        session_delta.structurally_dirty.end(), delta.undeleted.begin(),
        delta.undeleted.end());
    session_delta.structurally_dirty.insert(
        session_delta.structurally_dirty.end(),
        delta.session_reassigned.begin(), delta.session_reassigned.end());
    storage::ChangeTracker::ScopedSuppress suppress(&tracker_);
    SessionUpdateStats s = UpdateSessions(store_, options_.sessionizer,
                                          &sessions_, session_delta);
    last_stats_.users_extended = s.users_extended;
    last_stats_.users_resegmented = s.users_resegmented;
  }
  stages.Finish(Series().sessionize);

  // Transactions and popularity: point-resync every dirty id against
  // the store's current state (order-free, so overlapping sets — an id
  // appended then deleted in one cycle — need no special casing).
  // Output-signature syncs change neither features nor visibility, so
  // they stay out of this loop.
  auto resync_all = [&](const std::vector<storage::QueryId>& ids) {
    for (storage::QueryId id : ids) {
      association_state_.Resync(*store_, id);
      if (popularity_.CanApplyDeltas()) popularity_.Resync(*store_, id);
    }
  };
  resync_all(delta.appended);
  resync_all(delta.rewritten);
  resync_all(delta.deleted);
  resync_all(delta.undeleted);
  rules_ = association_state_.Mine();
  last_stats_.rules_fresh_counts = association_state_.last_fresh_counts();
  stages.Finish(Series().association);
  if (!popularity_.CanApplyDeltas()) {
    // Decay enabled: scores depend on "now", so deltas cannot reproduce
    // a rebuild. Still O(n) — never the refresh bottleneck.
    popularity_.Build(*store_, clock_->Now(), options_.popularity);
  }
  stages.Finish(Series().popularity);

  // Clustering: invalidate cached distances whose endpoint signatures
  // changed (rewrites replace the whole signature, output syncs its
  // output-row section — both feed CombinedSimilarity; tombstone flips
  // conservatively too), then rebuild the window's matrix through the
  // retained matrix + cache: only pairs touching the delta compute.
  std::vector<storage::QueryId> dirty = delta.rewritten;
  dirty.insert(dirty.end(), delta.output_synced.begin(),
               delta.output_synced.end());
  dirty.insert(dirty.end(), delta.deleted.begin(), delta.deleted.end());
  dirty.insert(dirty.end(), delta.undeleted.begin(), delta.undeleted.end());
  SortUnique(&dirty);
  for (storage::QueryId id : dirty) distance_cache_.Invalidate(id);
  Recluster(dirty);
  // The stale sweep is O(cache capacity): only worth it when this cycle
  // actually invalidated something. Pure-append refreshes skip it.
  if (!dirty.empty()) distance_cache_.CompactIfNeeded();
  stages.Finish(Series().cluster);

  last_mined_size_ = store_->size();
  RebuildSessionIndex();
}

bool QueryMiner::MaybeRefresh() {
  if (store_->size() < last_mined_size_ + options_.refresh_threshold &&
      last_mined_size_ != 0) {
    return false;
  }
  if (last_mined_size_ == 0 || !options_.incremental) {
    RunAll();
    return true;
  }
  if (options_.full_rebuild_interval != 0 &&
      refreshes_since_full_ + 1 >= options_.full_rebuild_interval) {
    RunAll();
    return true;
  }
  storage::ChangeDelta delta = tracker_.Drain();
  // Consistency guard: bulk restores (RestoreAppend) bypass the change
  // feed by design; if the store grew more than the feed saw, the delta
  // is not the whole story — rebuild.
  if (last_mined_size_ + delta.appended.size() != store_->size()) {
    RunAll();
    return true;
  }
  ++refreshes_since_full_;
  RefreshIncremental(std::move(delta));
  return true;
}

const Session* QueryMiner::FindSession(storage::SessionId id) const {
  // RenumberAndAssign makes session ids their own index.
  if (id >= 0 && static_cast<size_t>(id) < sessions_.size() &&
      sessions_[static_cast<size_t>(id)].id == id) {
    return &sessions_[static_cast<size_t>(id)];
  }
  return nullptr;
}

std::vector<const Session*> QueryMiner::SessionsOfUser(
    const std::string& user) const {
  std::vector<const Session*> out;
  auto it = sessions_of_user_.find(user);
  if (it == sessions_of_user_.end()) return out;
  out.reserve(it->second.size());
  for (size_t idx : it->second) out.push_back(&sessions_[idx]);
  return out;
}

void QueryMiner::RebuildSessionIndex() {
  sessions_of_user_.clear();
  for (size_t i = 0; i < sessions_.size(); ++i) {
    sessions_of_user_[sessions_[i].user].push_back(i);
  }
  for (auto& [user, idxs] : sessions_of_user_) {
    std::sort(idxs.begin(), idxs.end(), [&](size_t a, size_t b) {
      if (sessions_[a].start != sessions_[b].start) {
        return sessions_[a].start > sessions_[b].start;
      }
      return a > b;
    });
  }
}

}  // namespace cqms::miner
