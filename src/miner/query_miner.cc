#include "miner/query_miner.h"

#include <algorithm>

namespace cqms::miner {

QueryMiner::QueryMiner(storage::QueryStore* store, const Clock* clock,
                       QueryMinerOptions options)
    : store_(store), clock_(clock), options_(options) {}

void QueryMiner::RunAll() {
  sessions_ = IdentifySessions(store_, options_.sessionizer);

  // Association rules over all parsed queries.
  std::vector<storage::QueryId> all_ids;
  all_ids.reserve(store_->size());
  for (const storage::QueryRecord& r : store_->records()) {
    if (!r.HasFlag(storage::kFlagDeleted)) all_ids.push_back(r.id);
  }
  auto transactions = BuildTransactions(*store_, all_ids, options_.association);
  rules_ = MineAssociationRules(transactions, options_.association);

  popularity_.Build(*store_, clock_->Now(), options_.popularity);

  // Clustering over the most recent window (distance matrix is O(n^2)).
  std::vector<storage::QueryId> cluster_ids;
  for (auto it = all_ids.rbegin(); it != all_ids.rend(); ++it) {
    const storage::QueryRecord* r = store_->Get(*it);
    if (r->parse_failed()) continue;
    cluster_ids.push_back(*it);
    if (options_.clustering_sample != 0 &&
        cluster_ids.size() >= options_.clustering_sample) {
      break;
    }
  }
  std::reverse(cluster_ids.begin(), cluster_ids.end());
  clustering_ = KMedoidsCluster(*store_, cluster_ids, options_.clustering);

  last_mined_size_ = store_->size();
}

bool QueryMiner::MaybeRefresh() {
  if (store_->size() < last_mined_size_ + options_.refresh_threshold &&
      last_mined_size_ != 0) {
    return false;
  }
  RunAll();
  return true;
}

const Session* QueryMiner::FindSession(storage::SessionId id) const {
  for (const Session& s : sessions_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::vector<const Session*> QueryMiner::SessionsOfUser(const std::string& user) const {
  std::vector<const Session*> out;
  for (const Session& s : sessions_) {
    if (s.user == user) out.push_back(&s);
  }
  std::sort(out.begin(), out.end(),
            [](const Session* a, const Session* b) { return a->start > b->start; });
  return out;
}

}  // namespace cqms::miner
