#ifndef CQMS_MINER_QUERY_MINER_H_
#define CQMS_MINER_QUERY_MINER_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "miner/association_rules.h"
#include "miner/clustering.h"
#include "miner/popularity.h"
#include "miner/sessionizer.h"

namespace cqms::miner {

/// Configuration of the background Query Miner (Figure 4).
struct QueryMinerOptions {
  SessionizerOptions sessionizer;
  AssociationMinerOptions association;
  KMedoidsOptions clustering;
  PopularityTracker::Options popularity;
  /// Re-mine when at least this many new queries arrived since the last
  /// run (incremental maintenance, §4.3).
  size_t refresh_threshold = 100;
  /// Cap on the number of queries fed to O(n^2) clustering; the most
  /// recent ones are used. 0 = no cap.
  size_t clustering_sample = 2000;
};

/// The background mining component: runs sessionization, association-rule
/// mining, popularity tracking and query clustering over the store, and
/// exposes the latest results to the assisted-interaction layer.
class QueryMiner {
 public:
  /// `store` and `clock` must outlive the miner.
  QueryMiner(storage::QueryStore* store, const Clock* clock,
             QueryMinerOptions options = {});

  /// Runs every mining task now.
  void RunAll();

  /// Runs mining only when `refresh_threshold` new queries have arrived
  /// since the last run. Returns true when a run happened. This is the
  /// hook a background scheduler would call periodically.
  bool MaybeRefresh();

  // Latest results (valid after the first RunAll).
  const std::vector<Session>& sessions() const { return sessions_; }
  const std::vector<AssociationRule>& rules() const { return rules_; }
  const Clustering& clustering() const { return clustering_; }
  const PopularityTracker& popularity() const { return popularity_; }

  /// Session lookup by id; nullptr when unknown.
  const Session* FindSession(storage::SessionId id) const;

  /// Sessions of one user, most recent first.
  std::vector<const Session*> SessionsOfUser(const std::string& user) const;

  size_t queries_mined() const { return last_mined_size_; }

 private:
  storage::QueryStore* store_;
  const Clock* clock_;
  QueryMinerOptions options_;

  std::vector<Session> sessions_;
  std::vector<AssociationRule> rules_;
  Clustering clustering_;
  PopularityTracker popularity_;
  size_t last_mined_size_ = 0;
};

}  // namespace cqms::miner

#endif  // CQMS_MINER_QUERY_MINER_H_
