#ifndef CQMS_MINER_QUERY_MINER_H_
#define CQMS_MINER_QUERY_MINER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "miner/association_rules.h"
#include "miner/clustering.h"
#include "miner/distance_cache.h"
#include "miner/popularity.h"
#include "miner/sessionizer.h"
#include "storage/change_tracker.h"

namespace cqms::miner {

/// Configuration of the background Query Miner (Figure 4).
struct QueryMinerOptions {
  SessionizerOptions sessionizer;
  AssociationMinerOptions association;
  KMedoidsOptions clustering;
  PopularityTracker::Options popularity;
  /// Re-mine when at least this many new queries arrived since the last
  /// run (incremental maintenance, §4.3).
  size_t refresh_threshold = 100;
  /// Cap on the number of queries fed to clustering; the most recent
  /// ones are used. 0 = no cap.
  size_t clustering_sample = 2000;
  /// Delta-aware refresh: MaybeRefresh folds in only the dirty sets the
  /// store's change feed accumulated since the last run (sessions
  /// resume from the tail, popularity and transactions update in
  /// place, clustering reuses the persistent distance cache). Off =
  /// every refresh is a full RunAll.
  bool incremental = true;
  /// Escape hatch: every this-many incremental refreshes, one full
  /// RunAll runs instead (clearing the distance cache), so any drift —
  /// there should be none; incremental results are asserted
  /// bit-identical — can never accumulate unboundedly. 0 disables the
  /// periodic rebuild.
  size_t full_rebuild_interval = 64;
};

/// What the last RunAll / MaybeRefresh actually did — delta sizes and
/// cache effectiveness, surfaced for operators and benchmarks.
struct MinerRefreshStats {
  bool ran = false;
  bool full = true;
  size_t appended = 0;
  size_t structurally_dirty = 0;  ///< Rewrites + deletes + undeletes + reassigns.
  size_t users_extended = 0;
  size_t users_resegmented = 0;
  size_t pairs_enumerated = 0;  ///< Clustering pairs scored one by one.
  size_t pairs_reused = 0;      ///< ... served from the distance cache.
  size_t pairs_computed = 0;    ///< ... computed fresh (and cached).
  size_t pairs_copied = 0;      ///< Pairs bulk-copied from the retained matrix.
  size_t rules_fresh_counts = 0;  ///< Candidate itemsets counted by full scan.
};

/// The background mining component: runs sessionization, association-rule
/// mining, popularity tracking and query clustering over the store, and
/// exposes the latest results to the assisted-interaction layer.
///
/// The miner subscribes a storage::ChangeTracker to the store at
/// construction, so MaybeRefresh can consume exact per-cycle dirty sets
/// instead of re-deriving everything: an append-heavy refresh costs
/// O(delta * avg_bucket) similarity work instead of O(n^2), while
/// producing results bit-identical to a from-scratch RunAll (asserted
/// in tests/incremental_mining_test.cc).
class QueryMiner {
 public:
  /// `store` and `clock` must outlive the miner.
  QueryMiner(storage::QueryStore* store, const Clock* clock,
             QueryMinerOptions options = {});

  /// Runs every mining task now, from scratch (the distance cache is
  /// cleared first and re-warmed by the run).
  void RunAll();

  /// Runs mining only when `refresh_threshold` new queries have arrived
  /// since the last run. Returns true when a run happened. This is the
  /// hook a background scheduler would call periodically. Routes
  /// through the incremental path when enabled and safe (see
  /// QueryMinerOptions::incremental / full_rebuild_interval).
  bool MaybeRefresh();

  // Latest results (valid after the first RunAll).
  const std::vector<Session>& sessions() const { return sessions_; }
  const std::vector<AssociationRule>& rules() const { return rules_; }
  const Clustering& clustering() const { return clustering_; }
  const PopularityTracker& popularity() const { return popularity_; }

  /// Session lookup by id; nullptr when unknown. O(1): renumbered
  /// session ids are their own index into sessions().
  const Session* FindSession(storage::SessionId id) const;

  /// Sessions of one user, most recent first. Served from a per-user
  /// index rebuilt at the end of each mining run.
  std::vector<const Session*> SessionsOfUser(const std::string& user) const;

  size_t queries_mined() const { return last_mined_size_; }

  /// What the last refresh did (full vs delta, cache hit rates).
  const MinerRefreshStats& last_refresh_stats() const { return last_stats_; }

  /// The persistent pair-distance store behind clustering refreshes.
  const DistanceCache& distance_cache() const { return distance_cache_; }

 private:
  /// Applies one change-feed delta to every mining output.
  void RefreshIncremental(storage::ChangeDelta delta);
  /// The most recent `clustering_sample` parsed, non-deleted ids, in
  /// log order.
  std::vector<storage::QueryId> ClusteringSample() const;
  /// Builds the window's distances (retained-matrix + cache), clusters,
  /// and retains the new matrix for the next refresh. `dirty` (sorted)
  /// lists ids whose signatures changed since the last build.
  void Recluster(const std::vector<storage::QueryId>& dirty);
  void RebuildSessionIndex();

  storage::QueryStore* store_;
  const Clock* clock_;
  QueryMinerOptions options_;

  storage::ChangeTracker tracker_;
  DistanceCache distance_cache_;
  RetainedMatrix retained_matrix_;
  AssociationMinerState association_state_;

  std::vector<Session> sessions_;
  std::vector<AssociationRule> rules_;
  Clustering clustering_;
  PopularityTracker popularity_;
  size_t last_mined_size_ = 0;
  size_t refreshes_since_full_ = 0;
  MinerRefreshStats last_stats_;
  /// user -> indexes into sessions_, sorted by start descending.
  std::unordered_map<std::string, std::vector<size_t>> sessions_of_user_;
};

}  // namespace cqms::miner

#endif  // CQMS_MINER_QUERY_MINER_H_
