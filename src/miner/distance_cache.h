#ifndef CQMS_MINER_DISTANCE_CACHE_H_
#define CQMS_MINER_DISTANCE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/query_record.h"

namespace cqms::miner {

/// Persistent sparse store of pair distances, keyed on the unordered
/// query-id pair — the structure that turns the per-run O(n^2)
/// DistanceMatrix into an O(delta * avg_bucket) refresh. Distances are
/// pure functions of the two records' similarity signatures, so an
/// entry stays valid across mining runs until one endpoint's signature
/// changes.
///
/// Layout: one open-addressed table (power-of-two capacity, linear
/// probing) of 24-byte entries {a, b, version_a, version_b, distance}
/// with a == kEmptyId marking free slots. Invalidation is O(1) and
/// touch-free: a per-id version counter is bumped, and an entry is live
/// only while both stored versions match — no tombstones, no probe-chain
/// surgery. Stale entries are dropped wholesale when the table grows and
/// by CompactIfNeeded() (called once per mining refresh).
///
/// Single-threaded like the rest of the miner.
class DistanceCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t invalidations = 0;
    uint64_t compactions = 0;
  };

  /// `initial_capacity` is rounded up to a power of two (minimum 64).
  explicit DistanceCache(size_t initial_capacity = 1 << 12);

  /// True (and `*distance` set) when a live entry for the unordered
  /// pair {a, b} exists.
  bool Lookup(storage::QueryId a, storage::QueryId b, double* distance) const;

  /// Stores the distance of the unordered pair {a, b}, stamped with the
  /// endpoints' current versions. Overwrites any (live or stale) entry
  /// for the same pair.
  void Insert(storage::QueryId a, storage::QueryId b, double distance);

  /// Invalidates every cached pair touching `id` in O(1) by bumping the
  /// id's version. Rewrites and output-signature refreshes must call
  /// this; appends need not (new ids were never cached).
  void Invalidate(storage::QueryId id);

  /// Drops everything (the full-rebuild escape hatch).
  void Clear();

  /// Rebuilds the table without its stale entries when they exceed
  /// `max_stale_fraction` of the occupied slots. O(capacity) scan —
  /// call once per refresh, not per lookup. Returns entries dropped.
  size_t CompactIfNeeded(double max_stale_fraction = 0.5);

  /// Occupied slots, live or stale.
  size_t entries() const { return used_; }
  size_t capacity() const { return table_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kEmptyId = 0xFFFFFFFFu;

  /// Entries pack ids as u32 with kEmptyId as the free-slot sentinel.
  /// Ids outside [0, kEmptyId) — negative, or a log past 2^32-1 records
  /// — are simply never cached (Lookup misses, Insert/Invalidate
  /// no-op), so they compute fresh instead of silently aliasing.
  static bool Cacheable(storage::QueryId id) {
    return id >= 0 && static_cast<uint64_t>(id) < kEmptyId;
  }

  struct Entry {
    uint32_t a = kEmptyId;
    uint32_t b = kEmptyId;
    uint32_t version_a = 0;
    uint32_t version_b = 0;
    double distance = 0.0;
  };

  static uint64_t PairHash(uint32_t a, uint32_t b);
  uint32_t VersionOf(uint32_t id) const {
    return id < versions_.size() ? versions_[id] : 0;
  }
  bool Live(const Entry& e) const {
    return e.a != kEmptyId && e.version_a == VersionOf(e.a) &&
           e.version_b == VersionOf(e.b);
  }
  /// Slot of the pair's entry, or of the first empty slot on its probe
  /// chain when absent.
  size_t FindSlot(const std::vector<Entry>& table, uint32_t a,
                  uint32_t b) const;
  void Grow();
  /// Re-inserts live entries into a table of `new_capacity`; drops
  /// stale ones. Returns entries dropped.
  size_t Rebuild(size_t new_capacity);

  std::vector<Entry> table_;
  std::vector<uint32_t> versions_;
  size_t used_ = 0;
  mutable Stats stats_;
};

}  // namespace cqms::miner

#endif  // CQMS_MINER_DISTANCE_CACHE_H_
