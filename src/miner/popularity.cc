#include "miner/popularity.h"

#include <algorithm>
#include <cmath>

namespace cqms::miner {

double PopularityTracker::Decay(Micros age) const {
  if (options_.half_life <= 0) return 1.0;
  return std::exp2(-static_cast<double>(age) /
                   static_cast<double>(options_.half_life));
}

void PopularityTracker::Build(const storage::QueryStore& store, Micros now) {
  Build(store, now, Options());
}

void PopularityTracker::Build(const storage::QueryStore& store, Micros now,
                              Options options) {
  options_ = options;
  now_ = now;
  table_scores_.clear();
  skeleton_scores_.clear();
  attribute_scores_.clear();
  fingerprint_scores_.clear();
  contributions_.clear();
  contributions_built_ = track_contributions_;

  for (const storage::QueryRecord& r : store.records()) {
    if (r.HasFlag(storage::kFlagDeleted) || r.parse_failed()) continue;
    double w = Decay(std::max<Micros>(0, now - r.timestamp));
    for (const std::string& t : r.components.tables) table_scores_[t] += w;
    for (const auto& [rel, attr] : r.components.attributes) {
      attribute_scores_[rel + "." + attr] += w;
    }
    skeleton_scores_[r.skeleton_fingerprint] += w;
    fingerprint_scores_[r.fingerprint] += w;
    if (track_contributions_) contributions_[r.id] = ContributionOf(r);
  }
}

PopularityTracker::Contribution PopularityTracker::ContributionOf(
    const storage::QueryRecord& record) {
  Contribution c;
  c.tables = record.components.tables;
  c.attribute_keys.reserve(record.components.attributes.size());
  for (const auto& [rel, attr] : record.components.attributes) {
    c.attribute_keys.push_back(rel + "." + attr);
  }
  c.skeleton_fp = record.skeleton_fingerprint;
  c.fingerprint = record.fingerprint;
  return c;
}

void PopularityTracker::Apply(const Contribution& c, double weight) {
  auto bump = [&](auto* map, const auto& key) {
    auto [it, inserted] = map->try_emplace(key, 0.0);
    it->second += weight;
    // Unit weights keep scores exactly integer-valued, so a fully
    // retracted key lands on exactly 0.0 — erase it to match the maps a
    // fresh Build (which never sees the key) would hold.
    if (it->second <= 0.0) map->erase(it);
  };
  for (const std::string& t : c.tables) bump(&table_scores_, t);
  for (const std::string& a : c.attribute_keys) bump(&attribute_scores_, a);
  bump(&skeleton_scores_, c.skeleton_fp);
  bump(&fingerprint_scores_, c.fingerprint);
}

void PopularityTracker::Resync(const storage::QueryStore& store,
                               storage::QueryId id) {
  auto it = contributions_.find(id);
  if (it != contributions_.end()) {
    Apply(it->second, -1.0);
    contributions_.erase(it);
  }
  const storage::QueryRecord* r = store.Get(id);
  if (r == nullptr || r->HasFlag(storage::kFlagDeleted) || r->parse_failed()) {
    return;
  }
  Contribution c = ContributionOf(*r);
  Apply(c, 1.0);
  contributions_[id] = std::move(c);
}

double PopularityTracker::TableScore(const std::string& table) const {
  auto it = table_scores_.find(table);
  return it == table_scores_.end() ? 0 : it->second;
}

double PopularityTracker::SkeletonScore(uint64_t skeleton_fp) const {
  auto it = skeleton_scores_.find(skeleton_fp);
  return it == skeleton_scores_.end() ? 0 : it->second;
}

double PopularityTracker::AttributeScore(const std::string& relation,
                                         const std::string& attribute) const {
  auto it = attribute_scores_.find(relation + "." + attribute);
  return it == attribute_scores_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, double>> PopularityTracker::TopTables(
    size_t n) const {
  std::vector<std::pair<std::string, double>> out(table_scores_.begin(),
                                                  table_scores_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<storage::QueryId> PopularityTracker::TopQueriesForTable(
    const storage::QueryStore& store, const std::string& table, size_t n) const {
  // One representative (first occurrence) per canonical fingerprint.
  std::map<uint64_t, storage::QueryId> representative;
  for (storage::QueryId id : store.QueriesUsingTable(table)) {
    const storage::QueryRecord* r = store.Get(id);
    if (r == nullptr || r->HasFlag(storage::kFlagDeleted) || !r->stats.succeeded) {
      continue;
    }
    representative.emplace(r->fingerprint, id);
  }
  std::vector<std::pair<double, storage::QueryId>> scored;
  scored.reserve(representative.size());
  for (const auto& [fp, id] : representative) {
    auto it = fingerprint_scores_.find(fp);
    double score = it == fingerprint_scores_.end() ? 0 : it->second;
    scored.emplace_back(score, id);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<storage::QueryId> out;
  for (size_t i = 0; i < scored.size() && i < n; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace cqms::miner
