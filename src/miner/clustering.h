#ifndef CQMS_MINER_CLUSTERING_H_
#define CQMS_MINER_CLUSTERING_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "metaquery/similarity.h"
#include "miner/distance_cache.h"
#include "storage/query_store.h"

namespace cqms::miner {

/// A clustering of query ids. Cluster `i`'s representative (medoid) is
/// `medoids[i]` — the paper uses clusters to deduplicate meta-query
/// results and group recommendations (§4.3).
struct Clustering {
  std::vector<std::vector<storage::QueryId>> clusters;
  std::vector<storage::QueryId> medoids;

  size_t num_clusters() const { return clusters.size(); }

  /// Index of the cluster containing `id`, or -1. Binary search over
  /// the member index when built (the factories build it); falls back
  /// to a linear scan for hand-assembled clusterings.
  int ClusterOf(storage::QueryId id) const;

  /// (Re)builds the sorted id -> cluster index. Called by the clustering
  /// factories; call again after mutating `clusters` by hand.
  void BuildMemberIndex();

 private:
  std::vector<std::pair<storage::QueryId, int>> member_index_;
};

/// Dense pairwise distances over one clustering input subset, indexed
/// by *position* in the ids vector the subclass was built from. The
/// k-medoids and agglomerative passes consume this interface; the two
/// implementations differ only in where each scored pair's distance
/// comes from (fresh computation vs. the persistent DistanceCache), so
/// their matrices — and therefore the clusterings — are bit-identical.
class DistanceSource {
 public:
  virtual ~DistanceSource() = default;
  DistanceSource(const DistanceSource&) = delete;
  DistanceSource& operator=(const DistanceSource&) = delete;

  double at(size_t i, size_t j) const { return data_[i * n_ + j]; }
  size_t size() const { return n_; }

 protected:
  DistanceSource() = default;

  size_t n_ = 0;
  std::vector<double> data_;
};

/// Throwaway matrix scoring every pair fresh — the test oracle the
/// cache-backed path is asserted bit-identical against. Below
/// `sketch_prune_min_points` every pair is scored exactly (dense O(n^2)
/// over the precomputed signatures). At or above it, the records'
/// MinHash sketches prune the pair enumeration: only pairs sharing at
/// least one LSH band bucket are scored, and the rest are approximated
/// by the maximal distance 1.0 — a conservative overestimate that only
/// touches pairs the sketches already deem dissimilar, so threshold
/// clustering and medoid selection are virtually unaffected while the
/// scored-pair count drops from n^2 to near-linear on clustered logs.
class DenseDistanceMatrix : public DistanceSource {
 public:
  DenseDistanceMatrix(const storage::QueryStore& store,
                      const std::vector<storage::QueryId>& ids,
                      const metaquery::SimilarityWeights& weights,
                      size_t sketch_prune_min_points);
};

/// A dense matrix retained from the previous refresh together with the
/// window it was built over. Because the pair-scoring predicate is
/// pairwise (two sketches co-bucket iff a band's slots agree — no other
/// record matters), a pair of *unchanged* ids has exactly the same
/// distance in any later window, so the next build can bulk-copy those
/// rows instead of re-probing the cache pair by pair. The sparse
/// DistanceCache stays the source of truth across arbitrary window
/// recompositions (ids re-entering after deletions undo, rewrites);
/// this is the contiguous fast path for the common sliding-window case.
struct RetainedMatrix {
  std::vector<storage::QueryId> ids;  ///< Ascending (log order).
  std::vector<double> data;           ///< ids.size()^2, row-major.
  bool pruned = false;                ///< Which enumeration mode built it.
  bool valid = false;
};

/// The incremental-refresh matrix: identical pair enumeration, but each
/// scored pair is served in preference order — bulk-copied from the
/// retained previous matrix (both endpoints unchanged), looked up in
/// the persistent DistanceCache, and only computed (then inserted) on a
/// miss. On an append-heavy refresh nearly everything copies or hits,
/// which is what turns the mining pass's per-run O(n^2) similarity bill
/// into O(delta * avg_bucket).
class CachedDistanceMatrix : public DistanceSource {
 public:
  struct BuildStats {
    size_t pairs_enumerated = 0;  ///< Pairs individually scored this build.
    size_t pairs_reused = 0;      ///< ... of those, served by cache hits.
    size_t pairs_computed = 0;    ///< ... computed fresh (and cached).
    size_t pairs_copied = 0;      ///< Pairs bulk-copied from the retained matrix.
  };

  CachedDistanceMatrix(const storage::QueryStore& store,
                       const std::vector<storage::QueryId>& ids,
                       const metaquery::SimilarityWeights& weights,
                       size_t sketch_prune_min_points, DistanceCache* cache);

  /// Reuse-aware build: `previous` may be null/invalid (full build);
  /// `dirty` (sorted) lists ids whose signatures changed since
  /// `previous` was built — their pairs are never copied.
  CachedDistanceMatrix(const storage::QueryStore& store,
                       const std::vector<storage::QueryId>& ids,
                       const metaquery::SimilarityWeights& weights,
                       size_t sketch_prune_min_points, DistanceCache* cache,
                       const RetainedMatrix* previous,
                       const std::vector<storage::QueryId>& dirty);

  const BuildStats& build_stats() const { return stats_; }

  /// True when this build used the sketch-pruned enumeration.
  bool pruned() const { return pruned_; }

  /// Moves the dense data out for retention; the matrix is unusable
  /// afterwards.
  std::vector<double> TakeData() { return std::move(data_); }

 private:
  void BuildFull(const storage::QueryStore& store,
                 const std::vector<storage::QueryId>& ids,
                 const metaquery::SimilarityWeights& weights,
                 size_t sketch_prune_min_points, DistanceCache* cache);

  BuildStats stats_;
  bool pruned_ = false;
};

struct KMedoidsOptions {
  size_t k = 8;
  int max_iterations = 20;
  uint64_t seed = 42;
  metaquery::SimilarityWeights weights;
  /// From this many points on, the distance matrix scores only pairs
  /// whose MinHash sketches share an LSH band bucket; the rest are
  /// approximated as maximally distant (see DenseDistanceMatrix). 0
  /// disables pruning. Small inputs stay exact either way.
  size_t sketch_prune_min_points = 512;
};

/// Partitions `ids` into k clusters by k-medoids (PAM-style alternation)
/// over the given distances (dist.size() must equal ids.size()).
/// Deterministic for a seed. Requires ids.size() >= 1; k is clamped to
/// ids.size().
Clustering KMedoidsFromDistances(const DistanceSource& dist,
                                 const std::vector<storage::QueryId>& ids,
                                 const KMedoidsOptions& options);

/// Convenience wrapper: fresh dense matrix (the oracle path).
Clustering KMedoidsCluster(const storage::QueryStore& store,
                           const std::vector<storage::QueryId>& ids,
                           const KMedoidsOptions& options = {});

/// Cache-backed wrapper: distances come from (and warm) `cache`; null
/// falls back to the dense oracle.
Clustering KMedoidsCluster(const storage::QueryStore& store,
                           const std::vector<storage::QueryId>& ids,
                           const KMedoidsOptions& options, DistanceCache* cache,
                           CachedDistanceMatrix::BuildStats* stats = nullptr);

/// Single-linkage agglomerative clustering over the given distances:
/// merges clusters while the closest pair is within `max_distance`. No
/// k needed; used when the number of query groups is unknown.
Clustering AgglomerativeFromDistances(const DistanceSource& dist,
                                      const std::vector<storage::QueryId>& ids,
                                      double max_distance);

/// Dense-oracle wrapper. `sketch_prune_min_points` as in
/// KMedoidsOptions: large inputs score only sketch-co-bucketed pairs.
Clustering AgglomerativeCluster(const storage::QueryStore& store,
                                const std::vector<storage::QueryId>& ids,
                                double max_distance,
                                const metaquery::SimilarityWeights& weights = {},
                                size_t sketch_prune_min_points = 512);

/// Cache-backed wrapper; null cache falls back to the dense oracle.
Clustering AgglomerativeCluster(const storage::QueryStore& store,
                                const std::vector<storage::QueryId>& ids,
                                double max_distance,
                                const metaquery::SimilarityWeights& weights,
                                size_t sketch_prune_min_points,
                                DistanceCache* cache);

}  // namespace cqms::miner

#endif  // CQMS_MINER_CLUSTERING_H_
