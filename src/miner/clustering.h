#ifndef CQMS_MINER_CLUSTERING_H_
#define CQMS_MINER_CLUSTERING_H_

#include <cstddef>
#include <vector>

#include "metaquery/similarity.h"
#include "storage/query_store.h"

namespace cqms::miner {

/// A clustering of query ids. Cluster `i`'s representative (medoid) is
/// `medoids[i]` — the paper uses clusters to deduplicate meta-query
/// results and group recommendations (§4.3).
struct Clustering {
  std::vector<std::vector<storage::QueryId>> clusters;
  std::vector<storage::QueryId> medoids;

  size_t num_clusters() const { return clusters.size(); }

  /// Index of the cluster containing `id`, or -1.
  int ClusterOf(storage::QueryId id) const;
};

struct KMedoidsOptions {
  size_t k = 8;
  int max_iterations = 20;
  uint64_t seed = 42;
  metaquery::SimilarityWeights weights;
  /// From this many points on, the distance matrix scores only pairs
  /// whose MinHash sketches share an LSH band bucket; the rest are
  /// approximated as maximally distant (see DistanceMatrix). 0 disables
  /// pruning. Small inputs stay exact either way.
  size_t sketch_prune_min_points = 512;
};

/// Partitions `ids` into k clusters by k-medoids (PAM-style alternation)
/// under distance = 1 - CombinedSimilarity. Deterministic for a seed.
/// Requires ids.size() >= 1; k is clamped to ids.size().
Clustering KMedoidsCluster(const storage::QueryStore& store,
                           const std::vector<storage::QueryId>& ids,
                           const KMedoidsOptions& options = {});

/// Single-linkage agglomerative clustering: merges clusters while the
/// closest pair is within `max_distance`. No k needed; used when the
/// number of query groups is unknown. `sketch_prune_min_points` as in
/// KMedoidsOptions: large inputs score only sketch-co-bucketed pairs.
Clustering AgglomerativeCluster(const storage::QueryStore& store,
                                const std::vector<storage::QueryId>& ids,
                                double max_distance,
                                const metaquery::SimilarityWeights& weights = {},
                                size_t sketch_prune_min_points = 512);

}  // namespace cqms::miner

#endif  // CQMS_MINER_CLUSTERING_H_
