#ifndef CQMS_MINER_ASSOCIATION_RULES_H_
#define CQMS_MINER_ASSOCIATION_RULES_H_

#include <map>
#include <string>
#include <vector>

#include "storage/query_store.h"

namespace cqms::miner {

/// An association rule "antecedent => consequent" mined from the query
/// log (§4.3). Items are namespaced feature strings:
///   "t:<table>"      — relation in the FROM clause
///   "p:<skeleton>"   — predicate skeleton in WHERE/HAVING
///   "a:<rel.attr>"   — referenced attribute
/// The paper's driving example: t:watersalinity => t:watertemp with
/// higher confidence than t:watersalinity => t:citylocations enables
/// context-aware table completion (§2.3).
struct AssociationRule {
  std::vector<std::string> antecedent;  ///< Sorted items.
  std::string consequent;               ///< Single item.
  double support = 0;                   ///< Fraction of transactions with both.
  double confidence = 0;                ///< support(both) / support(antecedent).
  size_t count = 0;                     ///< Absolute transaction count.
};

struct AssociationMinerOptions {
  double min_support = 0.01;
  double min_confidence = 0.3;
  size_t max_antecedent_size = 2;
  /// Include predicate-skeleton and attribute items, not just tables.
  bool include_predicates = true;
  bool include_attributes = false;
};

/// Builds one transaction (item set) per visible, parsed query.
std::vector<std::vector<std::string>> BuildTransactions(
    const storage::QueryStore& store, const std::vector<storage::QueryId>& ids,
    const AssociationMinerOptions& options);

/// Apriori over the transactions: frequent itemsets up to
/// `max_antecedent_size + 1`, then rules with a single consequent.
/// Rules are returned sorted by (confidence, support) descending.
std::vector<AssociationRule> MineAssociationRules(
    const std::vector<std::vector<std::string>>& transactions,
    const AssociationMinerOptions& options);

/// Incrementally maintained transaction log plus memoized itemset
/// support counts — the association half of the delta-aware mining
/// engine. Instead of rebuilding every transaction and recounting every
/// candidate per refresh, the state keeps one transaction per live
/// parsed query and exact counts for every itemset the Apriori pass has
/// ever had to count; a mutation delta folds in via Resync (O(delta x
/// tracked itemsets)), and Mine() re-runs only the candidate-lattice
/// *logic* — counting from scratch exclusively for candidates that
/// become frequent-adjacent for the first time (rare once the item
/// frequency structure stabilizes).
///
/// Because every count is exact integer bookkeeping over the same
/// transaction multiset, Mine() is bit-identical to
/// MineAssociationRules(BuildTransactions(...)) over the store's
/// current state, regardless of the mutation history.
class AssociationMinerState {
 public:
  /// Full rebuild over `ids` (same eligibility as BuildTransactions:
  /// parsed, non-deleted, non-empty item set). Captures `options`.
  void Rebuild(const storage::QueryStore& store,
               const std::vector<storage::QueryId>& ids,
               const AssociationMinerOptions& options);

  /// Re-derives one query's transaction from its current state:
  /// retracts the stored transaction (if any), then re-adds the current
  /// one when the record is live. Order-free and idempotent — feed it
  /// every dirty id of a change-feed delta.
  void Resync(const storage::QueryStore& store, storage::QueryId id);

  /// Memoized-count Apriori + rule generation; see class comment.
  std::vector<AssociationRule> Mine();

  size_t transaction_count() const { return transactions_.size(); }
  /// Memoized k>=2 candidate counts currently tracked.
  size_t tracked_itemsets() const { return tracked_.size(); }
  /// Candidates counted by a full transaction scan in the last Mine().
  size_t last_fresh_counts() const { return last_fresh_counts_; }

 private:
  void AddTransaction(storage::QueryId id, std::vector<std::string> items);
  void RemoveTransaction(storage::QueryId id);

  /// One memoized multi-item candidate: its exact support count plus
  /// the Mine() generation that last needed it. Entries untouched for
  /// several generations are swept (see kRetainGenerations), so the
  /// memo tracks the *current* frequency structure instead of growing
  /// with every itemset the workload ever surfaced — dropping an entry
  /// is always safe, it just recounts if the candidate ever returns.
  struct TrackedCount {
    size_t count = 0;
    uint64_t last_needed_gen = 0;
  };
  /// Mine() generations a candidate may go unreferenced before the
  /// post-mine sweep drops it.
  static constexpr uint64_t kRetainGenerations = 8;

  AssociationMinerOptions options_;
  std::map<storage::QueryId, std::vector<std::string>> transactions_;
  std::map<std::string, size_t> item_counts_;
  std::map<std::vector<std::string>, TrackedCount> tracked_;
  uint64_t mine_generation_ = 0;
  size_t last_fresh_counts_ = 0;
};

/// Context-aware suggestion: given the items already present in a
/// partially written query, returns consequents of matching rules
/// (antecedent fully contained in `context`, consequent absent), best
/// first, deduplicated.
std::vector<std::pair<std::string, double>> SuggestFromRules(
    const std::vector<AssociationRule>& rules,
    const std::vector<std::string>& context, size_t limit = 5);

}  // namespace cqms::miner

#endif  // CQMS_MINER_ASSOCIATION_RULES_H_
