#ifndef CQMS_MINER_ASSOCIATION_RULES_H_
#define CQMS_MINER_ASSOCIATION_RULES_H_

#include <string>
#include <vector>

#include "storage/query_store.h"

namespace cqms::miner {

/// An association rule "antecedent => consequent" mined from the query
/// log (§4.3). Items are namespaced feature strings:
///   "t:<table>"      — relation in the FROM clause
///   "p:<skeleton>"   — predicate skeleton in WHERE/HAVING
///   "a:<rel.attr>"   — referenced attribute
/// The paper's driving example: t:watersalinity => t:watertemp with
/// higher confidence than t:watersalinity => t:citylocations enables
/// context-aware table completion (§2.3).
struct AssociationRule {
  std::vector<std::string> antecedent;  ///< Sorted items.
  std::string consequent;               ///< Single item.
  double support = 0;                   ///< Fraction of transactions with both.
  double confidence = 0;                ///< support(both) / support(antecedent).
  size_t count = 0;                     ///< Absolute transaction count.
};

struct AssociationMinerOptions {
  double min_support = 0.01;
  double min_confidence = 0.3;
  size_t max_antecedent_size = 2;
  /// Include predicate-skeleton and attribute items, not just tables.
  bool include_predicates = true;
  bool include_attributes = false;
};

/// Builds one transaction (item set) per visible, parsed query.
std::vector<std::vector<std::string>> BuildTransactions(
    const storage::QueryStore& store, const std::vector<storage::QueryId>& ids,
    const AssociationMinerOptions& options);

/// Apriori over the transactions: frequent itemsets up to
/// `max_antecedent_size + 1`, then rules with a single consequent.
/// Rules are returned sorted by (confidence, support) descending.
std::vector<AssociationRule> MineAssociationRules(
    const std::vector<std::vector<std::string>>& transactions,
    const AssociationMinerOptions& options);

/// Context-aware suggestion: given the items already present in a
/// partially written query, returns consequents of matching rules
/// (antecedent fully contained in `context`, consequent absent), best
/// first, deduplicated.
std::vector<std::pair<std::string, double>> SuggestFromRules(
    const std::vector<AssociationRule>& rules,
    const std::vector<std::string>& context, size_t limit = 5);

}  // namespace cqms::miner

#endif  // CQMS_MINER_ASSOCIATION_RULES_H_
