#include "miner/sessionizer.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "metaquery/similarity.h"

namespace cqms::miner {

namespace {

/// Sorts a single user's ids into submission order: (timestamp, id).
void SortByTime(const storage::QueryStore& store,
                std::vector<storage::QueryId>* ids) {
  std::sort(ids->begin(), ids->end(),
            [&](storage::QueryId a, storage::QueryId b) {
              const auto* ra = store.Get(a);
              const auto* rb = store.Get(b);
              if (ra->timestamp != rb->timestamp) {
                return ra->timestamp < rb->timestamp;
              }
              return a < b;
            });
}

/// The segmentation core shared by the full and incremental paths:
/// folds `ids` (one user, sorted by (timestamp, id)) into sessions
/// appended to `staged`. When `carry` is non-null it is moved into
/// `staged` first and segmentation resumes from its last query — the
/// tail-extension fast path. Produces exactly what a from-scratch run
/// over carry-queries + ids would.
void SegmentUserIds(const storage::QueryStore& store,
                    const SessionizerOptions& options, const std::string& user,
                    const std::vector<storage::QueryId>& ids, Session* carry,
                    std::vector<Session>* staged) {
  Session* current = nullptr;
  const storage::QueryRecord* prev = nullptr;
  if (carry != nullptr && !carry->queries.empty()) {
    staged->push_back(std::move(*carry));
    current = &staged->back();
    prev = store.Get(current->queries.back());
  }
  for (storage::QueryId id : ids) {
    const storage::QueryRecord* rec = store.Get(id);
    bool cut = current == nullptr;
    if (!cut && prev != nullptr) {
      if (rec->timestamp - prev->timestamp > options.max_gap) {
        cut = true;
      } else if (!rec->parse_failed() && !prev->parse_failed()) {
        double dist = metaquery::NormalizedEditDistance(prev->components,
                                                        rec->components);
        if (dist > options.max_distance) cut = true;
      }
      // Unparsable queries stay in the current session (they are
      // usually typos of the previous attempt).
    }
    if (cut) {
      Session s;
      s.user = user;
      s.start = rec->timestamp;
      staged->push_back(std::move(s));
      current = &staged->back();
      prev = nullptr;
    }
    if (prev != nullptr && !prev->parse_failed() && !rec->parse_failed()) {
      SessionEdge edge;
      edge.from = prev->id;
      edge.to = rec->id;
      edge.diff = sql::DiffQueries(prev->components, rec->components);
      current->edges.push_back(std::move(edge));
    } else if (prev != nullptr) {
      // Parse-failed endpoint: keep an unlabeled edge for continuity.
      SessionEdge edge;
      edge.from = prev->id;
      edge.to = rec->id;
      current->edges.push_back(std::move(edge));
    }
    current->queries.push_back(id);
    current->end = rec->timestamp;
    prev = rec;
  }
}

/// Renumbers sessions by start time for stable, meaningful ids and
/// writes every assignment back (SetSession no-ops on unchanged
/// values, so only real reassignments reach the store's listeners).
/// The first-query-id tiebreak makes the order — and therefore the
/// ids — deterministic even when one user cuts two sessions at the
/// same timestamp, which full and incremental runs must agree on.
void RenumberAndAssign(storage::QueryStore* store,
                       std::vector<Session>* sessions) {
  std::sort(sessions->begin(), sessions->end(),
            [](const Session& a, const Session& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.user != b.user) return a.user < b.user;
              return a.queries.front() < b.queries.front();
            });
  for (size_t i = 0; i < sessions->size(); ++i) {
    (*sessions)[i].id = static_cast<storage::SessionId>(i);
    for (storage::QueryId qid : (*sessions)[i].queries) {
      Status s = store->SetSession(qid, (*sessions)[i].id);
      (void)s;  // ids come from the store; cannot fail
    }
  }
}

}  // namespace

std::vector<Session> IdentifySessions(storage::QueryStore* store,
                                      const SessionizerOptions& options) {
  // Group record ids per user, then sort each group by (timestamp, id).
  std::map<std::string, std::vector<storage::QueryId>> per_user;
  for (const storage::QueryRecord& r : store->records()) {
    if (r.HasFlag(storage::kFlagDeleted)) continue;
    per_user[r.user].push_back(r.id);
  }

  std::vector<Session> sessions;
  for (auto& [user, ids] : per_user) {
    SortByTime(*store, &ids);
    SegmentUserIds(*store, options, user, ids, /*carry=*/nullptr, &sessions);
  }
  RenumberAndAssign(store, &sessions);
  return sessions;
}

SessionUpdateStats UpdateSessions(storage::QueryStore* store,
                                  const SessionizerOptions& options,
                                  std::vector<Session>* sessions,
                                  const SessionDelta& delta) {
  SessionUpdateStats stats;

  // Bucket the dirt per user. Appends that were deleted again within
  // the cycle contribute nothing (their user need not even be touched
  // unless otherwise dirty — a never-mined record can't sit in any
  // session).
  std::map<std::string, std::vector<storage::QueryId>> appends_of;
  std::set<std::string> dirty_users;
  for (storage::QueryId id : delta.appended) {
    const storage::QueryRecord* r = store->Get(id);
    if (r == nullptr || r->HasFlag(storage::kFlagDeleted)) continue;
    appends_of[r->user].push_back(id);
  }
  for (storage::QueryId id : delta.structurally_dirty) {
    const storage::QueryRecord* r = store->Get(id);
    if (r != nullptr) dirty_users.insert(r->user);
  }
  if (appends_of.empty() && dirty_users.empty()) return stats;

  // Partition the previous result: sessions of unaffected users carry
  // over untouched; affected users' sessions are pulled aside (ordered,
  // so a user's last vector entry is their chronological tail — the
  // renumber order sorts by start with the first-query-id tiebreak).
  std::set<std::string> affected = dirty_users;
  for (const auto& [user, ids] : appends_of) affected.insert(user);
  std::vector<Session> result;
  result.reserve(sessions->size() + appends_of.size());
  std::map<std::string, std::vector<Session>> previous_of;
  for (Session& s : *sessions) {
    if (affected.count(s.user) > 0) {
      previous_of[s.user].push_back(std::move(s));
    } else {
      result.push_back(std::move(s));
    }
  }

  for (const std::string& user : affected) {
    std::vector<storage::QueryId> appends;
    auto ait = appends_of.find(user);
    if (ait != appends_of.end()) {
      appends = std::move(ait->second);
      SortByTime(*store, &appends);
    }
    std::vector<Session>* previous = nullptr;
    auto pit = previous_of.find(user);
    if (pit != previous_of.end()) previous = &pit->second;

    // Tail extension applies when the user's only dirt is appends that
    // all land at or after their last mined query in (timestamp, id)
    // order — new ids are always larger, so a timestamp tie still
    // sorts after.
    bool extend = dirty_users.count(user) == 0 && previous != nullptr &&
                  !previous->empty();
    if (extend && !appends.empty()) {
      const Session& tail = previous->back();
      const storage::QueryRecord* last = store->Get(tail.queries.back());
      const storage::QueryRecord* first = store->Get(appends.front());
      if (first->timestamp < last->timestamp) extend = false;
    }

    if (extend) {
      ++stats.users_extended;
      Session tail = std::move(previous->back());
      previous->pop_back();
      for (Session& s : *previous) result.push_back(std::move(s));
      SegmentUserIds(*store, options, user, appends, &tail, &result);
    } else {
      ++stats.users_resegmented;
      std::vector<storage::QueryId> ids;
      for (storage::QueryId id : store->QueriesByUser(user)) {
        const storage::QueryRecord* r = store->Get(id);
        if (!r->HasFlag(storage::kFlagDeleted)) ids.push_back(id);
      }
      SortByTime(*store, &ids);
      SegmentUserIds(*store, options, user, ids, /*carry=*/nullptr, &result);
    }
  }

  RenumberAndAssign(store, &result);
  *sessions = std::move(result);
  return stats;
}

}  // namespace cqms::miner
