#include "miner/sessionizer.h"

#include <algorithm>
#include <map>

#include "metaquery/similarity.h"

namespace cqms::miner {

std::vector<Session> IdentifySessions(storage::QueryStore* store,
                                      const SessionizerOptions& options) {
  // Group record ids per user, then sort each group by (timestamp, id).
  std::map<std::string, std::vector<storage::QueryId>> per_user;
  for (const storage::QueryRecord& r : store->records()) {
    if (r.HasFlag(storage::kFlagDeleted)) continue;
    per_user[r.user].push_back(r.id);
  }

  std::vector<Session> sessions;
  storage::SessionId next_id = 0;

  for (auto& [user, ids] : per_user) {
    std::sort(ids.begin(), ids.end(),
              [&](storage::QueryId a, storage::QueryId b) {
                const auto* ra = store->Get(a);
                const auto* rb = store->Get(b);
                if (ra->timestamp != rb->timestamp) {
                  return ra->timestamp < rb->timestamp;
                }
                return a < b;
              });

    Session* current = nullptr;
    const storage::QueryRecord* prev = nullptr;
    for (storage::QueryId id : ids) {
      const storage::QueryRecord* rec = store->Get(id);
      bool cut = current == nullptr;
      if (!cut && prev != nullptr) {
        if (rec->timestamp - prev->timestamp > options.max_gap) {
          cut = true;
        } else if (!rec->parse_failed() && !prev->parse_failed()) {
          double dist = metaquery::NormalizedEditDistance(prev->components,
                                                          rec->components);
          if (dist > options.max_distance) cut = true;
        }
        // Unparsable queries stay in the current session (they are
        // usually typos of the previous attempt).
      }
      if (cut) {
        Session s;
        s.id = next_id++;
        s.user = user;
        s.start = rec->timestamp;
        sessions.push_back(std::move(s));
        current = &sessions.back();
        prev = nullptr;
      }
      if (prev != nullptr && !prev->parse_failed() && !rec->parse_failed()) {
        SessionEdge edge;
        edge.from = prev->id;
        edge.to = rec->id;
        edge.diff = sql::DiffQueries(prev->components, rec->components);
        current->edges.push_back(std::move(edge));
      } else if (prev != nullptr) {
        // Parse-failed endpoint: keep an unlabeled edge for continuity.
        SessionEdge edge;
        edge.from = prev->id;
        edge.to = rec->id;
        current->edges.push_back(std::move(edge));
      }
      current->queries.push_back(id);
      current->end = rec->timestamp;
      prev = rec;
    }
  }

  // Write assignments back. Sessions were appended per user; renumber by
  // start time for stable, meaningful ids.
  std::sort(sessions.begin(), sessions.end(), [](const Session& a, const Session& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.user < b.user;
  });
  for (size_t i = 0; i < sessions.size(); ++i) {
    sessions[i].id = static_cast<storage::SessionId>(i);
    for (storage::QueryId qid : sessions[i].queries) {
      Status s = store->SetSession(qid, sessions[i].id);
      (void)s;  // ids come from the store; cannot fail
    }
  }
  return sessions;
}

}  // namespace cqms::miner
