#include "miner/tutorial.h"

#include <set>

namespace cqms::miner {

std::vector<TutorialSection> GenerateTutorial(const storage::QueryStore& store,
                                              const db::Catalog& catalog,
                                              const PopularityTracker& popularity,
                                              const TutorialOptions& options) {
  std::vector<TutorialSection> sections;
  for (const auto& [table, score] : popularity.TopTables(options.max_relations)) {
    TutorialSection section;
    section.relation = table;
    if (const db::TableSchema* schema = catalog.FindTable(table)) {
      for (const db::ColumnDef& c : schema->columns()) {
        section.columns.push_back(c.name + " " +
                                  db::ValueTypeToString(c.type));
      }
    }
    section.example_queries = popularity.TopQueriesForTable(
        store, table, options.examples_per_relation);

    // Common mistakes: distinct error digests of failed queries whose
    // text mentions the relation.
    std::set<std::string> seen_errors;
    for (storage::QueryId id : store.QueriesWithKeyword(table)) {
      if (section.common_mistakes.size() >= options.mistakes_per_relation) break;
      const storage::QueryRecord* r = store.Get(id);
      if (r == nullptr || r->stats.succeeded || r->stats.error.empty()) continue;
      if (seen_errors.insert(r->stats.error).second) {
        section.common_mistakes.push_back(r->text + "  -- " + r->stats.error);
      }
    }
    sections.push_back(std::move(section));
  }
  return sections;
}

std::string RenderTutorial(const storage::QueryStore& store,
                           const std::vector<TutorialSection>& sections) {
  std::string out = "# Auto-generated dataset tutorial\n";
  out += "# (from " + std::to_string(store.size()) + " logged queries)\n\n";
  for (const TutorialSection& s : sections) {
    out += "## Relation: " + s.relation + "\n";
    if (!s.columns.empty()) {
      out += "Schema:\n";
      for (const std::string& c : s.columns) out += "  - " + c + "\n";
    }
    if (!s.example_queries.empty()) {
      out += "Popular queries:\n";
      for (storage::QueryId id : s.example_queries) {
        const storage::QueryRecord* r = store.Get(id);
        if (r == nullptr) continue;
        out += "  " + r->text + "\n";
        for (const storage::Annotation& a : r->annotations) {
          out += "    -- " + a.author + ": " + a.text + "\n";
        }
      }
    }
    if (!s.common_mistakes.empty()) {
      out += "Common mistakes:\n";
      for (const std::string& m : s.common_mistakes) out += "  " + m + "\n";
    }
    out += "\n";
  }
  return out;
}

}  // namespace cqms::miner
