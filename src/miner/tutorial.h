#ifndef CQMS_MINER_TUTORIAL_H_
#define CQMS_MINER_TUTORIAL_H_

#include <string>
#include <vector>

#include "db/schema.h"
#include "miner/popularity.h"
#include "storage/query_store.h"

namespace cqms::miner {

/// One section of the auto-generated tutorial: a relation, its schema,
/// its most popular queries (with annotations when present) and common
/// mistakes observed against it.
struct TutorialSection {
  std::string relation;
  std::vector<std::string> columns;             ///< "name TYPE" strings.
  std::vector<storage::QueryId> example_queries;
  std::vector<std::string> common_mistakes;     ///< Failed-query digests.
};

struct TutorialOptions {
  size_t max_relations = 8;
  size_t examples_per_relation = 3;
  size_t mistakes_per_relation = 2;
};

/// Generates a data-set tutorial from the query log (§2.3: "a CQMS may be
/// able to automatically produce a tutorial on the new data set ... the
/// system could introduce each relation and its schema by showing the
/// user the most popular queries that include the relation").
std::vector<TutorialSection> GenerateTutorial(const storage::QueryStore& store,
                                              const db::Catalog& catalog,
                                              const PopularityTracker& popularity,
                                              const TutorialOptions& options = {});

/// Renders the sections as a human-readable text document.
std::string RenderTutorial(const storage::QueryStore& store,
                           const std::vector<TutorialSection>& sections);

}  // namespace cqms::miner

#endif  // CQMS_MINER_TUTORIAL_H_
