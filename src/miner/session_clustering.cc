#include "miner/session_clustering.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/sorted_vector.h"
#include "metaquery/similarity.h"

namespace cqms::miner {

namespace {

/// Sorted, deduplicated skeleton fingerprints of a session's queries —
/// the allocation-light replacement for a std::set, compared with the
/// same linear merge the similarity signatures use.
std::vector<uint64_t> SessionSkeletons(const storage::QueryStore& store,
                                       const Session& session) {
  std::vector<uint64_t> out;
  out.reserve(session.queries.size());
  for (storage::QueryId id : session.queries) {
    const storage::QueryRecord* r = store.Get(id);
    if (r != nullptr && !r->parse_failed()) out.push_back(r->skeleton_fingerprint);
  }
  SortUnique(&out);
  return out;
}

}  // namespace

double SessionSimilarity(const storage::QueryStore& store, const Session& a,
                         const Session& b) {
  // SortedJaccard scores both-empty pairs 1.0 and one-empty pairs 0.0,
  // which is exactly the session-similarity edge policy.
  return metaquery::SortedJaccard(SessionSkeletons(store, a),
                                  SessionSkeletons(store, b));
}

int SessionClustering::ClusterOfIndex(size_t i) const {
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t member : clusters[c]) {
      if (member == i) return static_cast<int>(c);
    }
  }
  return -1;
}

SessionClustering ClusterSessions(const storage::QueryStore& store,
                                  const std::vector<Session>& sessions,
                                  double max_distance) {
  SessionClustering out;
  const size_t n = sessions.size();
  if (n == 0) return out;

  // Precompute skeleton vectors once; union-find over the threshold graph.
  std::vector<std::vector<uint64_t>> skeletons(n);
  for (size_t i = 0; i < n; ++i) {
    skeletons[i] = SessionSkeletons(store, sessions[i]);
  }
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (1.0 - metaquery::SortedJaccard(skeletons[i], skeletons[j]) <=
          max_distance) {
        parent[find(i)] = find(j);
      }
    }
  }
  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < n; ++i) components[find(i)].push_back(i);
  for (auto& [root, members] : components) {
    out.clusters.push_back(std::move(members));
  }
  return out;
}

std::vector<std::string> SimilarSessionUsers(const std::vector<Session>& sessions,
                                             const SessionClustering& clustering,
                                             const std::string& user) {
  std::set<std::string> users;
  for (const auto& cluster : clustering.clusters) {
    bool involves_user = false;
    for (size_t i : cluster) {
      if (sessions[i].user == user) {
        involves_user = true;
        break;
      }
    }
    if (!involves_user) continue;
    for (size_t i : cluster) {
      if (sessions[i].user != user) users.insert(sessions[i].user);
    }
  }
  return std::vector<std::string>(users.begin(), users.end());
}

}  // namespace cqms::miner
