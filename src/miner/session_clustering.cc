#include "miner/session_clustering.h"

#include <algorithm>
#include <map>
#include <set>

namespace cqms::miner {

namespace {

std::set<uint64_t> SessionSkeletons(const storage::QueryStore& store,
                                    const Session& session) {
  std::set<uint64_t> out;
  for (storage::QueryId id : session.queries) {
    const storage::QueryRecord* r = store.Get(id);
    if (r != nullptr && !r->parse_failed()) out.insert(r->skeleton_fingerprint);
  }
  return out;
}

}  // namespace

double SessionSimilarity(const storage::QueryStore& store, const Session& a,
                         const Session& b) {
  std::set<uint64_t> sa = SessionSkeletons(store, a);
  std::set<uint64_t> sb = SessionSkeletons(store, b);
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  size_t inter = 0;
  const auto& small = sa.size() <= sb.size() ? sa : sb;
  const auto& large = sa.size() <= sb.size() ? sb : sa;
  for (uint64_t fp : small) {
    if (large.count(fp) > 0) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

int SessionClustering::ClusterOfIndex(size_t i) const {
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t member : clusters[c]) {
      if (member == i) return static_cast<int>(c);
    }
  }
  return -1;
}

SessionClustering ClusterSessions(const storage::QueryStore& store,
                                  const std::vector<Session>& sessions,
                                  double max_distance) {
  SessionClustering out;
  const size_t n = sessions.size();
  if (n == 0) return out;

  // Precompute skeleton sets once; union-find over the threshold graph.
  std::vector<std::set<uint64_t>> skeletons(n);
  for (size_t i = 0; i < n; ++i) {
    skeletons[i] = SessionSkeletons(store, sessions[i]);
  }
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto jaccard = [&](size_t i, size_t j) {
    const auto& a = skeletons[i];
    const auto& b = skeletons[j];
    if (a.empty() && b.empty()) return 1.0;
    if (a.empty() || b.empty()) return 0.0;
    size_t inter = 0;
    const auto& small = a.size() <= b.size() ? a : b;
    const auto& large = a.size() <= b.size() ? b : a;
    for (uint64_t fp : small) {
      if (large.count(fp) > 0) ++inter;
    }
    return static_cast<double>(inter) /
           static_cast<double>(a.size() + b.size() - inter);
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (1.0 - jaccard(i, j) <= max_distance) parent[find(i)] = find(j);
    }
  }
  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < n; ++i) components[find(i)].push_back(i);
  for (auto& [root, members] : components) {
    out.clusters.push_back(std::move(members));
  }
  return out;
}

std::vector<std::string> SimilarSessionUsers(const std::vector<Session>& sessions,
                                             const SessionClustering& clustering,
                                             const std::string& user) {
  std::set<std::string> users;
  for (const auto& cluster : clustering.clusters) {
    bool involves_user = false;
    for (size_t i : cluster) {
      if (sessions[i].user == user) {
        involves_user = true;
        break;
      }
    }
    if (!involves_user) continue;
    for (size_t i : cluster) {
      if (sessions[i].user != user) users.insert(sessions[i].user);
    }
  }
  return std::vector<std::string>(users.begin(), users.end());
}

}  // namespace cqms::miner
