#ifndef CQMS_MINER_SESSIONIZER_H_
#define CQMS_MINER_SESSIONIZER_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "sql/diff.h"
#include "storage/query_store.h"

namespace cqms::miner {

/// Controls session segmentation. A *query session* is "a series of
/// (often similar) queries with the same information goal in mind"
/// (§2.2); we cut a new session when the user pauses too long or jumps
/// to a structurally unrelated query.
struct SessionizerOptions {
  /// Temporal cut: gap between consecutive queries of one user.
  Micros max_gap = 10 * kMicrosPerMinute;
  /// Structural cut: normalized edit distance above which consecutive
  /// queries are considered different goals (0 = identical, 1 = disjoint).
  double max_distance = 0.75;
};

/// A labeled edge of the session graph (Figure 2): the typed diff between
/// consecutive queries.
struct SessionEdge {
  storage::QueryId from = storage::kInvalidQueryId;
  storage::QueryId to = storage::kInvalidQueryId;
  sql::QueryDiff diff;
};

/// One identified session.
struct Session {
  storage::SessionId id = storage::kInvalidSessionId;
  std::string user;
  std::vector<storage::QueryId> queries;  ///< In submission order.
  std::vector<SessionEdge> edges;         ///< queries.size() - 1 edges.
  Micros start = 0;
  Micros end = 0;
};

/// Segments the whole log into sessions (per user, by time order) and
/// writes the assigned session ids back into the store. Re-running
/// re-segments from scratch (deterministic).
std::vector<Session> IdentifySessions(storage::QueryStore* store,
                                      const SessionizerOptions& options = {});

/// The dirty inputs of one incremental session refresh (derived from
/// the store's ChangeTracker delta).
struct SessionDelta {
  /// Newly appended ids. Ids that were deleted again within the cycle
  /// are filtered out internally.
  std::vector<storage::QueryId> appended;
  /// Ids whose record changed in a way that can move session cuts:
  /// rewrites (components changed), deletions, undeletions, external
  /// session reassignments. Their *users* are re-segmented from
  /// scratch.
  std::vector<storage::QueryId> structurally_dirty;
};

struct SessionUpdateStats {
  size_t users_extended = 0;     ///< Tail-resumed (appends only).
  size_t users_resegmented = 0;  ///< Fully re-segmented.
};

/// Incremental counterpart of IdentifySessions: updates `sessions` (a
/// previous full or incremental result over the same store) to what
/// IdentifySessions would produce on the store's current state —
/// bit-identically — touching only affected users. Users whose dirt is
/// purely in-(time)-order appends resume from their tail session, so
/// the per-pair diff/similarity work is O(appends); users with
/// structural dirt (or out-of-order appends) are re-segmented from
/// scratch; everyone else's sessions are untouched. Session ids are
/// renumbered globally by start time (as in IdentifySessions) and
/// assignments written back through the store.
SessionUpdateStats UpdateSessions(storage::QueryStore* store,
                                  const SessionizerOptions& options,
                                  std::vector<Session>* sessions,
                                  const SessionDelta& delta);

}  // namespace cqms::miner

#endif  // CQMS_MINER_SESSIONIZER_H_
