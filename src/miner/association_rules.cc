#include "miner/association_rules.h"

#include <algorithm>
#include <set>

namespace cqms::miner {

namespace {

using Itemset = std::vector<std::string>;  // sorted

/// The (sorted, deduplicated) transaction items of one parsed record —
/// shared by the batch builder and the incremental state so both
/// produce literally the same transactions.
Itemset ItemsOf(const storage::QueryRecord& record,
                const AssociationMinerOptions& options) {
  std::set<std::string> items;
  for (const std::string& t : record.components.tables) items.insert("t:" + t);
  if (options.include_predicates) {
    for (const auto& p : record.components.predicates) {
      if (!p.is_join) items.insert("p:" + p.Skeleton());
    }
  }
  if (options.include_attributes) {
    for (const auto& [rel, attr] : record.components.attributes) {
      items.insert("a:" + rel + "." + attr);
    }
  }
  return Itemset(items.begin(), items.end());
}

bool Contains(const Itemset& haystack, const Itemset& needle) {
  return std::includes(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end());
}

/// Counts occurrences of each candidate itemset across transactions.
std::map<Itemset, size_t> CountSupport(
    const std::vector<std::vector<std::string>>& transactions,
    const std::vector<Itemset>& candidates) {
  std::map<Itemset, size_t> counts;
  for (const auto& tx : transactions) {
    for (const Itemset& c : candidates) {
      if (Contains(tx, c)) ++counts[c];
    }
  }
  return counts;
}

/// Apriori candidate generation: joins frequent (k)-itemsets sharing a
/// (k-1)-prefix; prunes candidates with an infrequent subset.
std::vector<Itemset> GenerateCandidates(const std::vector<Itemset>& frequent,
                                        const std::set<Itemset>& frequent_set) {
  std::vector<Itemset> candidates;
  for (size_t i = 0; i < frequent.size(); ++i) {
    for (size_t j = i + 1; j < frequent.size(); ++j) {
      const Itemset& a = frequent[i];
      const Itemset& b = frequent[j];
      if (!std::equal(a.begin(), a.end() - 1, b.begin())) continue;
      Itemset joined = a;
      joined.push_back(b.back());
      std::sort(joined.begin(), joined.end());
      // Prune: every (k-1)-subset must be frequent.
      bool all_frequent = true;
      for (size_t drop = 0; drop < joined.size(); ++drop) {
        Itemset subset;
        for (size_t x = 0; x < joined.size(); ++x) {
          if (x != drop) subset.push_back(joined[x]);
        }
        if (frequent_set.count(subset) == 0) {
          all_frequent = false;
          break;
        }
      }
      if (all_frequent) candidates.push_back(std::move(joined));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

/// Rules with a single consequent from the frequent-itemset lattice —
/// the tail both mining paths share, so a given `all_counts` always
/// yields the identical rule list.
std::vector<AssociationRule> RulesFromCounts(
    const std::map<Itemset, size_t>& all_counts, double n,
    const AssociationMinerOptions& options) {
  std::vector<AssociationRule> rules;
  for (const auto& [itemset, count] : all_counts) {
    if (itemset.size() < 2) continue;
    for (size_t drop = 0; drop < itemset.size(); ++drop) {
      Itemset antecedent;
      for (size_t x = 0; x < itemset.size(); ++x) {
        if (x != drop) antecedent.push_back(itemset[x]);
      }
      auto it = all_counts.find(antecedent);
      if (it == all_counts.end() || it->second == 0) continue;
      double confidence =
          static_cast<double>(count) / static_cast<double>(it->second);
      if (confidence < options.min_confidence) continue;
      AssociationRule rule;
      rule.antecedent = antecedent;
      rule.consequent = itemset[drop];
      rule.count = count;
      rule.support = static_cast<double>(count) / n;
      rule.confidence = confidence;
      rules.push_back(std::move(rule));
    }
  }

  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) return a.confidence > b.confidence;
              if (a.support != b.support) return a.support > b.support;
              return a.consequent < b.consequent;
            });
  return rules;
}

}  // namespace

std::vector<std::vector<std::string>> BuildTransactions(
    const storage::QueryStore& store, const std::vector<storage::QueryId>& ids,
    const AssociationMinerOptions& options) {
  std::vector<std::vector<std::string>> transactions;
  transactions.reserve(ids.size());
  for (storage::QueryId id : ids) {
    const storage::QueryRecord* r = store.Get(id);
    if (r == nullptr || r->parse_failed()) continue;
    Itemset items = ItemsOf(*r, options);
    if (!items.empty()) transactions.push_back(std::move(items));
  }
  return transactions;
}

std::vector<AssociationRule> MineAssociationRules(
    const std::vector<std::vector<std::string>>& transactions,
    const AssociationMinerOptions& options) {
  if (transactions.empty()) return {};
  const double n = static_cast<double>(transactions.size());
  const size_t min_count = static_cast<size_t>(
      std::max(1.0, options.min_support * n));

  // L1: frequent single items.
  std::map<std::string, size_t> item_counts;
  for (const auto& tx : transactions) {
    for (const std::string& item : tx) ++item_counts[item];
  }
  std::vector<Itemset> frequent;
  std::map<Itemset, size_t> all_counts;
  for (const auto& [item, count] : item_counts) {
    if (count >= min_count) {
      frequent.push_back({item});
      all_counts[{item}] = count;
    }
  }
  std::sort(frequent.begin(), frequent.end());

  // Lk for k = 2 .. max_antecedent_size + 1.
  const size_t max_size = options.max_antecedent_size + 1;
  std::vector<Itemset> current = frequent;
  for (size_t k = 2; k <= max_size && current.size() > 1; ++k) {
    std::set<Itemset> frequent_set(current.begin(), current.end());
    std::vector<Itemset> candidates = GenerateCandidates(current, frequent_set);
    if (candidates.empty()) break;
    std::map<Itemset, size_t> counts = CountSupport(transactions, candidates);
    std::vector<Itemset> next;
    for (const auto& [itemset, count] : counts) {
      if (count >= min_count) {
        next.push_back(itemset);
        all_counts[itemset] = count;
      }
    }
    std::sort(next.begin(), next.end());
    current = std::move(next);
  }

  return RulesFromCounts(all_counts, n, options);
}

void AssociationMinerState::Rebuild(const storage::QueryStore& store,
                                    const std::vector<storage::QueryId>& ids,
                                    const AssociationMinerOptions& options) {
  options_ = options;
  transactions_.clear();
  item_counts_.clear();
  tracked_.clear();
  last_fresh_counts_ = 0;
  for (storage::QueryId id : ids) {
    Resync(store, id);
  }
}

void AssociationMinerState::AddTransaction(storage::QueryId id,
                                           std::vector<std::string> items) {
  for (const std::string& item : items) ++item_counts_[item];
  for (auto& [itemset, tracked] : tracked_) {
    if (Contains(items, itemset)) ++tracked.count;
  }
  transactions_.emplace(id, std::move(items));
}

void AssociationMinerState::RemoveTransaction(storage::QueryId id) {
  auto it = transactions_.find(id);
  if (it == transactions_.end()) return;
  const Itemset& items = it->second;
  for (const std::string& item : items) {
    auto cit = item_counts_.find(item);
    if (cit != item_counts_.end() && --cit->second == 0) {
      item_counts_.erase(cit);
    }
  }
  for (auto tit = tracked_.begin(); tit != tracked_.end();) {
    if (Contains(items, tit->first) && --tit->second.count == 0) {
      tit = tracked_.erase(tit);
    } else {
      ++tit;
    }
  }
  transactions_.erase(it);
}

void AssociationMinerState::Resync(const storage::QueryStore& store,
                                   storage::QueryId id) {
  RemoveTransaction(id);
  const storage::QueryRecord* r = store.Get(id);
  if (r == nullptr || r->parse_failed() ||
      r->HasFlag(storage::kFlagDeleted)) {
    return;
  }
  Itemset items = ItemsOf(*r, options_);
  if (items.empty()) return;
  AddTransaction(id, std::move(items));
}

std::vector<AssociationRule> AssociationMinerState::Mine() {
  last_fresh_counts_ = 0;
  ++mine_generation_;
  if (transactions_.empty()) return {};
  const double n = static_cast<double>(transactions_.size());
  const size_t min_count =
      static_cast<size_t>(std::max(1.0, options_.min_support * n));

  // L1 straight from the maintained single-item counts.
  std::vector<Itemset> frequent;
  std::map<Itemset, size_t> all_counts;
  for (const auto& [item, count] : item_counts_) {
    if (count >= min_count) {
      frequent.push_back({item});
      all_counts[{item}] = count;
    }
  }
  std::sort(frequent.begin(), frequent.end());

  // Lk: identical candidate lattice to the batch path, but counts come
  // from the memo; only never-before-tracked candidates pay a
  // transaction scan (and are tracked from then on).
  const size_t max_size = options_.max_antecedent_size + 1;
  std::vector<Itemset> current = frequent;
  for (size_t k = 2; k <= max_size && current.size() > 1; ++k) {
    std::set<Itemset> frequent_set(current.begin(), current.end());
    std::vector<Itemset> candidates = GenerateCandidates(current, frequent_set);
    if (candidates.empty()) break;
    std::vector<Itemset> next;
    for (const Itemset& c : candidates) {
      auto tit = tracked_.find(c);
      size_t count;
      if (tit != tracked_.end()) {
        count = tit->second.count;
        tit->second.last_needed_gen = mine_generation_;
      } else {
        count = 0;
        for (const auto& [id, tx] : transactions_) {
          if (Contains(tx, c)) ++count;
        }
        ++last_fresh_counts_;
        // Track even zero counts: the candidate will be regenerated on
        // every future Mine() while its subsets stay frequent, and the
        // memo keeps those re-counts O(delta).
        tracked_[c] = TrackedCount{count, mine_generation_};
      }
      if (count >= min_count) {
        // Matches the batch path, which iterates a sorted counts map —
        // candidates are sorted, so `next` stays sorted too.
        next.push_back(c);
        all_counts[c] = count;
      }
    }
    current = std::move(next);
  }

  // Sweep candidates the frequency structure moved away from: anything
  // not needed for kRetainGenerations consecutive mines gets dropped
  // (and recounted from scratch in the unlikely event it returns), so
  // the memo — and the per-dirty-id resync cost, which scans it — stays
  // proportional to the current lattice instead of all history.
  for (auto it = tracked_.begin(); it != tracked_.end();) {
    if (it->second.last_needed_gen + kRetainGenerations <= mine_generation_) {
      it = tracked_.erase(it);
    } else {
      ++it;
    }
  }

  return RulesFromCounts(all_counts, n, options_);
}

std::vector<std::pair<std::string, double>> SuggestFromRules(
    const std::vector<AssociationRule>& rules,
    const std::vector<std::string>& context, size_t limit) {
  std::set<std::string> have(context.begin(), context.end());
  std::vector<std::pair<std::string, double>> suggestions;
  std::set<std::string> suggested;
  for (const AssociationRule& rule : rules) {
    if (suggestions.size() >= limit) break;
    if (have.count(rule.consequent) > 0) continue;
    if (suggested.count(rule.consequent) > 0) continue;
    bool applicable = true;
    for (const std::string& item : rule.antecedent) {
      if (have.count(item) == 0) {
        applicable = false;
        break;
      }
    }
    if (!applicable) continue;
    suggestions.emplace_back(rule.consequent, rule.confidence);
    suggested.insert(rule.consequent);
  }
  return suggestions;
}

}  // namespace cqms::miner
