#ifndef CQMS_MINER_POPULARITY_H_
#define CQMS_MINER_POPULARITY_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "storage/query_store.h"

namespace cqms::miner {

/// Time-decayed popularity statistics over the query log. Ranking
/// functions (§2.3) and the tutorial generator both need "most popular"
/// lists; exponential decay keeps them current as interests shift.
///
/// Incremental maintenance: with decay disabled (half_life == 0 — the
/// default) every event weighs exactly 1.0, so score updates are exact
/// integer arithmetic in doubles and the tracker can fold a mutation
/// delta in place (Resync) instead of rescanning the log, producing
/// scores bit-identical to a full Build in any order. EnableDeltas()
/// turns on the per-id contribution bookkeeping this needs (the stored
/// items to subtract when a record is rewritten or deleted — the
/// record itself has already changed by the time the change feed fires).
/// With decay enabled, scores depend on "now", so the miner falls back
/// to full rebuilds (still O(n), never the bottleneck).
class PopularityTracker {
 public:
  struct Options {
    /// Weight of an event halves every `half_life` (0 = no decay).
    Micros half_life = 0;
  };

  /// Builds scores from the entire (non-deleted) log as of time `now`.
  void Build(const storage::QueryStore& store, Micros now, Options options);

  /// Convenience overload: no decay.
  void Build(const storage::QueryStore& store, Micros now);

  /// Opts into per-id contribution tracking so Resync works. Takes
  /// effect at the next Build.
  void EnableDeltas(bool on) { track_contributions_ = on; }

  /// True when Resync may be used instead of a rebuild: contribution
  /// tracking is on, a Build has run with it, and decay is off.
  bool CanApplyDeltas() const {
    return contributions_built_ && options_.half_life <= 0;
  }

  /// Re-derives one record's contribution from its current state:
  /// subtracts whatever the record contributed when last seen, then
  /// adds its current contribution if it is live (not deleted, parsed).
  /// Order-free and idempotent — the consumer feeds it every dirty id
  /// of a change-feed delta, in any order. Requires CanApplyDeltas().
  void Resync(const storage::QueryStore& store, storage::QueryId id);

  double TableScore(const std::string& table) const;
  double SkeletonScore(uint64_t skeleton_fp) const;
  double AttributeScore(const std::string& relation, const std::string& attribute) const;

  /// Top-n tables by score, best first.
  std::vector<std::pair<std::string, double>> TopTables(size_t n) const;

  /// Top-n logged queries *using `table`*, best first, scored by the
  /// popularity of their canonical form. Used by the tutorial generator.
  std::vector<storage::QueryId> TopQueriesForTable(const storage::QueryStore& store,
                                                   const std::string& table,
                                                   size_t n) const;

  // Full score maps, for equality assertions in tests and for
  // dashboards; keys with score 0 are never present.
  const std::map<std::string, double>& table_scores() const {
    return table_scores_;
  }
  const std::map<uint64_t, double>& skeleton_scores() const {
    return skeleton_scores_;
  }
  const std::map<std::string, double>& attribute_scores() const {
    return attribute_scores_;
  }
  const std::map<uint64_t, double>& fingerprint_scores() const {
    return fingerprint_scores_;
  }

 private:
  /// What one record added to the score maps when last folded in —
  /// kept so a later Resync can subtract it exactly.
  struct Contribution {
    std::vector<std::string> tables;
    std::vector<std::string> attribute_keys;  ///< "rel.attr"
    uint64_t skeleton_fp = 0;
    uint64_t fingerprint = 0;
  };

  double Decay(Micros age) const;
  /// Adds (weight +1) or subtracts (weight -1) a contribution; erases
  /// keys whose score reaches zero so the maps stay equal to what a
  /// fresh Build produces.
  void Apply(const Contribution& c, double weight);
  static Contribution ContributionOf(const storage::QueryRecord& record);

  Options options_;
  Micros now_ = 0;
  bool track_contributions_ = false;
  bool contributions_built_ = false;
  std::map<std::string, double> table_scores_;
  std::map<uint64_t, double> skeleton_scores_;
  std::map<std::string, double> attribute_scores_;
  std::map<uint64_t, double> fingerprint_scores_;
  /// Present only for ids currently folded into the scores.
  std::unordered_map<storage::QueryId, Contribution> contributions_;
};

}  // namespace cqms::miner

#endif  // CQMS_MINER_POPULARITY_H_
