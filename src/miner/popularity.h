#ifndef CQMS_MINER_POPULARITY_H_
#define CQMS_MINER_POPULARITY_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/query_store.h"

namespace cqms::miner {

/// Time-decayed popularity statistics over the query log. Ranking
/// functions (§2.3) and the tutorial generator both need "most popular"
/// lists; exponential decay keeps them current as interests shift.
class PopularityTracker {
 public:
  struct Options {
    /// Weight of an event halves every `half_life` (0 = no decay).
    Micros half_life = 0;
  };

  /// Builds scores from the entire (non-deleted) log as of time `now`.
  void Build(const storage::QueryStore& store, Micros now, Options options);

  /// Convenience overload: no decay.
  void Build(const storage::QueryStore& store, Micros now);

  double TableScore(const std::string& table) const;
  double SkeletonScore(uint64_t skeleton_fp) const;
  double AttributeScore(const std::string& relation, const std::string& attribute) const;

  /// Top-n tables by score, best first.
  std::vector<std::pair<std::string, double>> TopTables(size_t n) const;

  /// Top-n logged queries *using `table`*, best first, scored by the
  /// popularity of their canonical form. Used by the tutorial generator.
  std::vector<storage::QueryId> TopQueriesForTable(const storage::QueryStore& store,
                                                   const std::string& table,
                                                   size_t n) const;

 private:
  double Decay(Micros age) const;

  Options options_;
  Micros now_ = 0;
  std::map<std::string, double> table_scores_;
  std::map<uint64_t, double> skeleton_scores_;
  std::map<std::string, double> attribute_scores_;
  std::map<uint64_t, double> fingerprint_scores_;
};

}  // namespace cqms::miner

#endif  // CQMS_MINER_POPULARITY_H_
