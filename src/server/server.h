#ifndef CQMS_SERVER_SERVER_H_
#define CQMS_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/frame_codec.h"
#include "common/status.h"
#include "core/cqms.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "repl/follower_host.h"

namespace cqms::repl {
class Follower;
class WalShipper;
}  // namespace cqms::repl

namespace cqms::server {

/// Server identity reported by Hello and Stats. The minor revision
/// tracks net::kProtocolMinorVersion (backward-compatible additions).
constexpr char kServerVersion[] = "cqms_serverd/1 proto 1.2";

struct ServerOptions {
  /// Bind address. The daemon is loopback-by-default: exposing a lab's
  /// query history beyond the host is an explicit operator decision.
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (tests, benches); read the
  /// outcome from CqmsServer::port().
  uint16_t port = 0;

  /// Read-op worker threads (Search, Recommend): each executes against a
  /// pinned immutable read view, so they scale with cores and never
  /// block the writer.
  size_t workers = 4;

  /// Accepted-connection ceiling; excess connections are accepted and
  /// immediately closed (counted in Stats as rejected).
  size_t max_conns = 256;
  /// Per-frame payload ceiling, enforced before any payload byte is
  /// trusted. Oversized frames are a protocol error: typed response,
  /// then disconnect.
  size_t max_frame_bytes = 4u << 20;
  /// Close connections with no complete frame for this long (0 = never).
  /// In-flight requests keep a connection alive.
  int64_t idle_timeout_ms = 60000;
  /// Requests that wait in a dispatch queue longer than this are
  /// answered with kDeadlineExceeded instead of executing — a stuck
  /// writer or a hostile flood cannot pin every worker behind stale
  /// work (0 = never).
  int64_t request_timeout_ms = 10000;
  /// Per-connection response backlog ceiling; a client that stops
  /// reading while pipelining is disconnected past this.
  size_t max_outbox_bytes = 64u << 20;

  /// Use the portable poll() loop even where epoll is available
  /// (exercised in tests; non-Linux builds always take it).
  bool use_poll = false;

  /// Searches slower than this (planner execution, microseconds) are
  /// appended to the slow-query log with their trace summary. 0
  /// disables slow-query logging entirely.
  int64_t slow_query_micros = 0;
  /// JSONL file the slow-query log appends to. Empty with
  /// slow_query_micros set is a Start() error.
  std::string slow_query_log_path;

  /// View publication knobs applied when the server enables concurrent
  /// reads on its Cqms (no-op if the caller already enabled them).
  storage::ViewOptions view_options;

  /// Non-empty ("host:port") runs the server as a live read replica of
  /// that primary: reads (Search, Recommend, Browse, ShowSession, Stats,
  /// MetricsDump) are served from the replicated store, every mutation
  /// is rejected with a typed kNotPrimary carrying this address so
  /// failover clients can redirect. The daemon wires a repl::Follower
  /// to the server's writer thread (docs/replication.md).
  std::string follow_primary;
  /// Primary only: heartbeat cadence on replication subscriptions, the
  /// followers' liveness signal during write silence. Effective
  /// granularity is bounded below by the event-loop poll timeout
  /// (~100ms). 0 disables heartbeats.
  int64_t repl_heartbeat_ms = 500;
};

/// Lock-free per-op counters. Latencies go into an obs::Histogram
/// (power-of-two microsecond buckets); percentiles are the upper bound
/// of the bucket holding the requested rank, clamped to the observed
/// min/max, and 0 for an op never recorded (2x-granular,
/// allocation-free).
struct OpCounters {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  obs::Histogram latency;

  void RecordLatency(uint64_t micros) { latency.Record(micros); }
  uint64_t Percentile(double p) const { return latency.Percentile(p); }
  uint64_t max_micros() const { return latency.max(); }
};

/// The CQMS network daemon core: one event-loop thread (epoll, or
/// poll() as fallback) owning every socket, a worker pool executing
/// read ops against pinned read views, and one writer thread owning
/// every mutation — the process-level materialization of the store's
/// single-writer / multi-reader contract (docs/server.md).
///
/// Responses may be sent out of order; clients pipeline batches of
/// requests and match responses by request id.
class CqmsServer : public repl::FollowerHost {
 public:
  /// `cqms` must outlive the server. All prior setup (EnableDurability,
  /// seeding) must happen before Start(); after Start() the server's
  /// writer thread owns all mutations. In follower mode the instance
  /// may later be replaced wholesale through InstallCqms (snapshot
  /// re-bootstrap) — the original must still outlive the server.
  CqmsServer(Cqms* cqms, ServerOptions options = {});
  ~CqmsServer() override;

  CqmsServer(const CqmsServer&) = delete;
  CqmsServer& operator=(const CqmsServer&) = delete;

  /// Binds, listens and spawns the loop, worker and writer threads.
  Status Start();

  /// The bound port (after Start; useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// Begins a graceful shutdown: stop accepting, stop reading, finish
  /// every queued request, flush every response, final checkpoint when
  /// durability is enabled, then exit the threads. Async-signal-safe
  /// (a SIGTERM handler may call it directly).
  void RequestShutdown();

  /// Blocks until a requested shutdown completes. Idempotent.
  void Wait();

  /// RequestShutdown + Wait (also run by the destructor if needed).
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of the Stats op's payload (also served over the wire).
  net::StatsResult StatsSnapshot() const;

  // --- repl::FollowerHost --------------------------------------------------

  /// Runs `fn` on the writer thread, blocking until it completes. Every
  /// successfully enqueued closure is guaranteed to run (the writer
  /// drains its queue before exiting); once the queue has stopped the
  /// call fails fast with kUnavailable instead of enqueueing.
  Status RunOnWriter(std::function<Status()> fn) override;

  /// Atomically swaps the instance served to new requests. In-flight
  /// handlers finish against the instance they grabbed at task start.
  void InstallCqms(std::shared_ptr<Cqms> cqms) override;

  /// Follower mode: lets StatsSnapshot report replication link health.
  /// Call before Start(); the follower must outlive the server's Wait().
  void SetFollower(repl::Follower* follower) { follower_ = follower; }

  /// The instance currently serving requests. Normally the constructor
  /// argument; in follower mode a snapshot re-bootstrap swaps it. The
  /// replication tests reach through this to compare replica state
  /// byte-for-byte against the primary.
  std::shared_ptr<Cqms> CurrentCqms() const { return current_cqms(); }

 private:
  struct Connection;
  struct Task;
  class Poller;
  class EpollPoller;
  class PollPoller;
  class TaskQueue;

  void LoopThread();
  void WorkerThread();
  void WriterThread();

  void AcceptNew();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn,
                     std::string payload);
  /// Appends one response frame to the connection's outbox and wakes
  /// the loop (callable from any thread; drops silently once closed).
  void SendPayload(const std::shared_ptr<Connection>& conn,
                   const std::string& payload);
  void SendError(const std::shared_ptr<Connection>& conn, uint64_t request_id,
                 net::Op op, const Status& error);
  /// Writes pending outbox bytes; arms/disarms EPOLLOUT. Loop thread.
  void FlushConn(const std::shared_ptr<Connection>& conn);
  void CloseConn(const std::shared_ptr<Connection>& conn);
  void SweepIdle();
  void NotifyLoop();

  // Handlers. Read handlers run on workers against pinned views; write
  // handlers run on the single writer thread.
  std::string HandleSearch(const Task& task);
  std::string HandleRecommend(const Task& task);
  std::string HandleWriterOp(const Task& task);
  std::string HandleStats(const Task& task);
  std::string HandleMetricsDump(const Task& task);
  void ExecuteTask(const Task& task);

  OpCounters& CountersFor(net::Op op);
  const OpCounters& CountersFor(net::Op op) const;

  /// The instance new requests execute against. Normally the
  /// constructor argument (non-owning alias); in follower mode,
  /// InstallCqms replaces it with a restored instance.
  std::shared_ptr<Cqms> current_cqms() const;

  bool follower_mode() const { return !options_.follow_primary.empty(); }

  /// The constructor argument: primary-only wiring (shipper, final
  /// checkpoint) that never survives an InstallCqms swap goes through
  /// this, never through current_cqms().
  Cqms* cqms_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::unique_ptr<Poller> poller_;
  std::thread loop_thread_;
  std::vector<std::thread> worker_threads_;
  std::thread writer_thread_;

  std::unique_ptr<TaskQueue> read_queue_;
  std::unique_ptr<TaskQueue> write_queue_;

  // Loop-thread-owned connection table.
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  // Connections with freshly enqueued output, handed from any thread to
  // the loop thread.
  std::mutex pending_out_mu_;
  std::vector<std::shared_ptr<Connection>> pending_out_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> active_conns_{0};
  std::atomic<uint64_t> total_conns_{0};
  std::atomic<uint64_t> rejected_conns_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  int64_t start_micros_ = 0;

  /// Indexed by raw op value (kMinOp..kMaxOp); slot 0 unused.
  OpCounters op_counters_[net::kMaxOp + 1];

  /// Open iff options_.slow_query_micros > 0 (see Start()).
  obs::SlowQueryLog slow_log_;

  /// Primary with durability: WAL shipping engine, hooked into the
  /// DurableStore for the server's lifetime (Start..Wait).
  std::unique_ptr<repl::WalShipper> shipper_;
  /// Follower mode: borrowed link-health source for Stats (see
  /// SetFollower); null until the daemon wires it.
  repl::Follower* follower_ = nullptr;

  mutable std::mutex cqms_mu_;
  std::shared_ptr<Cqms> live_cqms_;  ///< See current_cqms().

  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace cqms::server

#endif  // CQMS_SERVER_SERVER_H_
