#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include "obs/log.h"
#include "obs/trace.h"
#include "repl/follower.h"
#include "repl/wal_shipper.h"
#include "sql/diff.h"
#include "storage/record_builder.h"

namespace cqms::server {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::string(strerror(errno)));
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

// --- internal types --------------------------------------------------------
// (OpCounters latency lives in obs::Histogram now — see server.h.)

struct CqmsServer::Connection {
  explicit Connection(size_t max_frame_bytes) : decoder(max_frame_bytes) {}

  int fd = -1;
  /// Monotonic accept ordinal, carried into protocol-error log lines so
  /// operators can correlate one misbehaving client across events.
  uint64_t id = 0;
  FrameDecoder decoder;
  bool handshaken = false;
  /// Loop-owned: false once the server stops consuming this
  /// connection's input (protocol error, shutdown drain).
  bool reading = true;
  bool close_after_flush = false;
  int64_t last_active_us = 0;
  std::atomic<int> inflight{0};

  /// Non-zero once this connection subscribed as a replication
  /// follower (written on the writer thread, read at CloseConn on the
  /// loop thread).
  std::atomic<uint64_t> repl_follower_id{0};

  std::mutex out_mu;
  std::string outbox;  ///< Encoded frames awaiting write.
  size_t out_off = 0;
  bool closed = false;     ///< fd closed; drop late responses.
  bool overflow = false;   ///< Outbox ceiling breached; hard-close.
  bool want_write = false; /// Loop-owned: EPOLLOUT currently armed.

  size_t PendingOut() {
    std::lock_guard<std::mutex> lock(out_mu);
    return outbox.size() - out_off;
  }
};

struct CqmsServer::Task {
  std::shared_ptr<Connection> conn;
  uint64_t request_id = 0;
  net::Op op = net::Op::kHello;
  std::string body;
  int64_t enqueue_us = 0;
  /// Non-null: a bare writer-thread closure (replication frame apply)
  /// instead of a wire request; every other field is ignored.
  std::function<void()> work;
};

class CqmsServer::TaskQueue {
 public:
  /// False once stopped (and drained).
  bool Pop(Task* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stopped_ || !tasks_.empty(); });
    if (tasks_.empty()) return false;
    *out = std::move(tasks_.front());
    tasks_.pop_front();
    return true;
  }

  /// False (task dropped) once Stop() ran. A true return guarantees the
  /// task will be popped: the consumer only exits on stopped + empty,
  /// and Stop and Push serialize on the same mutex — the guarantee
  /// RunOnWriter's unbounded completion wait rests on.
  bool Push(Task task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return false;
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  bool Empty() {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.empty();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  bool stopped_ = false;
};

// --- pollers ---------------------------------------------------------------

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class CqmsServer::Poller {
 public:
  virtual ~Poller() = default;
  virtual Status Add(int fd, bool want_read, bool want_write) = 0;
  virtual Status Update(int fd, bool want_read, bool want_write) = 0;
  virtual void Remove(int fd) = 0;
  virtual void Wait(int timeout_ms, std::vector<PollEvent>* out) = 0;
};

/// Portable fallback: rebuilds the pollfd array per wait. O(conns) per
/// iteration — fine for the connection counts the fallback targets.
class CqmsServer::PollPoller : public Poller {
 public:
  Status Add(int fd, bool want_read, bool want_write) override {
    want_[fd] = Events(want_read, want_write);
    return Status::Ok();
  }
  Status Update(int fd, bool want_read, bool want_write) override {
    want_[fd] = Events(want_read, want_write);
    return Status::Ok();
  }
  void Remove(int fd) override { want_.erase(fd); }

  void Wait(int timeout_ms, std::vector<PollEvent>* out) override {
    fds_.clear();
    for (const auto& [fd, events] : want_) {
      fds_.push_back(pollfd{fd, events, 0});
    }
    int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out->push_back(ev);
    }
  }

 private:
  static short Events(bool r, bool w) {
    return static_cast<short>((r ? POLLIN : 0) | (w ? POLLOUT : 0));
  }
  std::unordered_map<int, short> want_;
  std::vector<pollfd> fds_;
};

#if defined(__linux__)
class CqmsServer::EpollPoller : public Poller {
 public:
  EpollPoller() : ep_(epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (ep_ >= 0) ::close(ep_);
  }

  bool valid() const { return ep_ >= 0; }

  Status Add(int fd, bool want_read, bool want_write) override {
    epoll_event ev = Event(fd, want_read, want_write);
    if (epoll_ctl(ep_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return ErrnoStatus("epoll_ctl(ADD)");
    }
    return Status::Ok();
  }

  Status Update(int fd, bool want_read, bool want_write) override {
    epoll_event ev = Event(fd, want_read, want_write);
    if (epoll_ctl(ep_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      return ErrnoStatus("epoll_ctl(MOD)");
    }
    return Status::Ok();
  }

  void Remove(int fd) override { epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr); }

  void Wait(int timeout_ms, std::vector<PollEvent>* out) override {
    epoll_event events[64];
    int n = epoll_wait(ep_, events, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      PollEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & EPOLLERR) != 0;
      out->push_back(ev);
    }
  }

 private:
  static epoll_event Event(int fd, bool r, bool w) {
    epoll_event ev;
    ev.events = (r ? EPOLLIN : 0u) | (w ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ev;
  }
  int ep_;
};
#endif  // __linux__

// --- lifecycle -------------------------------------------------------------

CqmsServer::CqmsServer(Cqms* cqms, ServerOptions options)
    : cqms_(cqms), options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  // Non-owning alias: the caller keeps ownership of the initial
  // instance. InstallCqms may later swap in an owned replacement.
  live_cqms_ = std::shared_ptr<Cqms>(cqms, [](Cqms*) {});
}

CqmsServer::~CqmsServer() { Shutdown(); }

std::shared_ptr<Cqms> CqmsServer::current_cqms() const {
  std::lock_guard<std::mutex> lock(cqms_mu_);
  return live_cqms_;
}

void CqmsServer::InstallCqms(std::shared_ptr<Cqms> cqms) {
  std::lock_guard<std::mutex> lock(cqms_mu_);
  live_cqms_ = std::move(cqms);
}

Status CqmsServer::RunOnWriter(std::function<Status()> fn) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::Unavailable("server is not running");
  }
  struct Completion {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
  };
  auto completion = std::make_shared<Completion>();
  Task task;
  task.work = [fn = std::move(fn), completion] {
    Status s = fn();
    std::lock_guard<std::mutex> lock(completion->mu);
    completion->status = std::move(s);
    completion->done = true;
    completion->cv.notify_all();
  };
  if (!write_queue_->Push(std::move(task))) {
    return Status::Unavailable("server writer has stopped");
  }
  // Unbounded wait is safe: a successful Push guarantees the writer
  // pops and runs the closure before it exits.
  std::unique_lock<std::mutex> lock(completion->mu);
  completion->cv.wait(lock, [&] { return completion->done; });
  return completion->status;
}

Status CqmsServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return Status::InvalidArgument("server already started");

  if (options_.slow_query_micros > 0) {
    if (options_.slow_query_log_path.empty()) {
      return Status::InvalidArgument(
          "slow_query_micros set but slow_query_log_path is empty");
    }
    if (!slow_log_.Open(options_.slow_query_log_path)) {
      return Status::IoError("cannot open slow-query log: " +
                             options_.slow_query_log_path);
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (!SetNonBlocking(listen_fd_)) return ErrnoStatus("fcntl(listen)");

  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparsable bind address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("bind " + options_.host + ":" +
                       std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) return ErrnoStatus("listen");
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return ErrnoStatus("pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

#if defined(__linux__)
  if (!options_.use_poll) {
    auto ep = std::make_unique<EpollPoller>();
    if (ep->valid()) poller_ = std::move(ep);
  }
#endif
  if (poller_ == nullptr) poller_ = std::make_unique<PollPoller>();
  CQMS_RETURN_IF_ERROR(poller_->Add(listen_fd_, true, false));
  CQMS_RETURN_IF_ERROR(poller_->Add(wake_read_fd_, true, false));

  // From here on the server's writer thread owns all mutations; turning
  // on the read-view pipeline now (still single-threaded) is safe.
  if (!cqms_->store()->views_enabled()) {
    cqms_->EnableConcurrentReads(options_.view_options);
  }

  // Primary with durability: tail the WAL into the shipping engine.
  // Installed before any thread exists, so the writer thread observes
  // the hook from its first mutation.
  if (!follower_mode() && cqms_->durable() != nullptr) {
    shipper_ = std::make_unique<repl::WalShipper>(cqms_->durable_store(),
                                                  cqms_->store());
    cqms_->durable_store()->SetShippingHook(shipper_.get());
  }

  read_queue_ = std::make_unique<TaskQueue>();
  write_queue_ = std::make_unique<TaskQueue>();
  start_micros_ = NowMicros();
  running_.store(true, std::memory_order_release);

  loop_thread_ = std::thread(&CqmsServer::LoopThread, this);
  writer_thread_ = std::thread(&CqmsServer::WriterThread, this);
  worker_threads_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back(&CqmsServer::WorkerThread, this);
  }
  started_ = true;
  return Status::Ok();
}

void CqmsServer::RequestShutdown() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void CqmsServer::Shutdown() {
  RequestShutdown();
  Wait();
}

void CqmsServer::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_ || joined_) return;
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop drained every queued request and flushed every response
  // before exiting; release the workers and the writer.
  read_queue_->Stop();
  write_queue_->Stop();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  if (writer_thread_.joinable()) writer_thread_.join();
  // The writer is gone: no more WAL appends, safe to unhook shipping.
  if (shipper_ != nullptr) cqms_->durable_store()->SetShippingHook(nullptr);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
  running_.store(false, std::memory_order_release);
  joined_ = true;
}

void CqmsServer::NotifyLoop() {
  if (wake_write_fd_ >= 0) {
    char byte = 'w';
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

// --- event loop ------------------------------------------------------------

void CqmsServer::LoopThread() {
  std::vector<PollEvent> events;
  std::vector<std::shared_ptr<Connection>> flushable;
  int64_t last_sweep_us = NowMicros();
  int64_t last_heartbeat_us = last_sweep_us;
  bool draining = false;

  while (true) {
    if (!draining && stop_requested_.load(std::memory_order_acquire)) {
      draining = true;
      if (listen_fd_ >= 0) {
        poller_->Remove(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // Stop consuming input: every already-dispatched request still
      // completes and flushes, nothing new is read.
      for (auto& [fd, conn] : conns_) {
        if (conn->reading) {
          conn->reading = false;
          poller_->Update(fd, false, conn->want_write);
        }
      }
    }

    // Flush connections whose outbox grew since the last iteration.
    {
      std::lock_guard<std::mutex> lock(pending_out_mu_);
      flushable.swap(pending_out_);
    }
    for (const std::shared_ptr<Connection>& conn : flushable) {
      if (conn->fd >= 0 && conns_.count(conn->fd) != 0) FlushConn(conn);
    }
    flushable.clear();

    if (draining) {
      bool outboxes_empty = true;
      for (auto& [fd, conn] : conns_) {
        (void)fd;
        if (conn->PendingOut() > 0) {
          outboxes_empty = false;
          break;
        }
      }
      if (inflight_.load(std::memory_order_acquire) == 0 &&
          read_queue_->Empty() && write_queue_->Empty() && outboxes_empty) {
        break;
      }
    }

    events.clear();
    poller_->Wait(draining ? 10 : 100, &events);
    for (const PollEvent& ev : events) {
      if (ev.fd == wake_read_fd_) {
        char buf[256];
        while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (ev.fd == listen_fd_) {
        if (!draining) AcceptNew();
        continue;
      }
      auto it = conns_.find(ev.fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (ev.error) {
        CloseConn(conn);
        continue;
      }
      if (ev.writable) FlushConn(conn);
      if (ev.readable && conns_.count(ev.fd) != 0) HandleReadable(conn);
    }

    // Idle sweep, at most a few times per second.
    int64_t now = NowMicros();
    if (!draining && options_.idle_timeout_ms > 0 &&
        now - last_sweep_us > 200 * 1000) {
      last_sweep_us = now;
      SweepIdle();
    }

    // Replication heartbeats: followers read them as liveness during
    // write silence.
    if (!draining && shipper_ != nullptr && options_.repl_heartbeat_ms > 0 &&
        now - last_heartbeat_us > options_.repl_heartbeat_ms * 1000) {
      last_heartbeat_us = now;
      shipper_->HeartbeatTick();
    }
  }

  // Drained: close everything.
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    remaining.push_back(conn);
  }
  for (const std::shared_ptr<Connection>& conn : remaining) CloseConn(conn);
}

void CqmsServer::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error; retried by epoll.
    if (conns_.size() >= options_.max_conns) {
      rejected_conns_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(options_.max_frame_bytes);
    conn->fd = fd;
    conn->last_active_us = NowMicros();
    if (!poller_->Add(fd, true, false).ok()) {
      ::close(fd);
      continue;
    }
    conn->id = total_conns_.fetch_add(1, std::memory_order_relaxed) + 1;
    conns_.emplace(fd, std::move(conn));
    active_conns_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CqmsServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  if (!conn->reading) {
    // Still drain the socket so the peer is not wedged on a full send
    // buffer, but discard the bytes.
    char sink[4096];
    while (::read(conn->fd, sink, sizeof(sink)) > 0) {
    }
    return;
  }
  char buf[65536];
  bool peer_closed = false;
  while (true) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      conn->last_active_us = NowMicros();
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed = true;
    break;
  }

  std::string payload;
  while (conn->reading) {
    FrameDecoder::Next next = conn->decoder.Poll(&payload);
    if (next == FrameDecoder::Next::kNeedMore) break;
    if (next == FrameDecoder::Next::kError) {
      // Stream synchronization is lost: answer with a typed protocol
      // error the client can log, then disconnect.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      CQMS_LOG(kWarn, "conn %llu: framing error: %s",
               static_cast<unsigned long long>(conn->id),
               conn->decoder.error().ToString().c_str());
      SendError(conn, 0, net::Op::kHello, conn->decoder.error());
      conn->reading = false;
      conn->close_after_flush = true;
      if (conns_.count(conn->fd) != 0) {
        poller_->Update(conn->fd, false, conn->want_write);
      }
      break;
    }
    DispatchFrame(conn, std::move(payload));
    if (conns_.count(conn->fd) == 0) return;  // dispatch closed it
  }

  if (peer_closed && conns_.count(conn->fd) != 0) CloseConn(conn);
}

void CqmsServer::DispatchFrame(const std::shared_ptr<Connection>& conn,
                               std::string payload) {
  net::RequestEnvelope env;
  if (!net::DecodeRequestEnvelope(payload, &env)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    CQMS_LOG(kWarn, "conn %llu: malformed request envelope (%zu bytes)",
             static_cast<unsigned long long>(conn->id), payload.size());
    SendError(conn, 0, net::Op::kHello,
              Status::InvalidArgument("malformed request envelope"));
    conn->reading = false;
    conn->close_after_flush = true;
    poller_->Update(conn->fd, false, conn->want_write);
    return;
  }

  OpCounters& counters = CountersFor(env.op);
  counters.count.fetch_add(1, std::memory_order_relaxed);
  counters.bytes_in.fetch_add(payload.size() + kFrameHeaderBytes,
                              std::memory_order_relaxed);

  if (!conn->handshaken) {
    if (env.op != net::Op::kHello) {
      SendError(conn, env.request_id, env.op,
                Status::InvalidArgument("handshake required before any op"));
      conn->reading = false;
      conn->close_after_flush = true;
      poller_->Update(conn->fd, false, conn->want_write);
      return;
    }
    net::HelloRequest hello;
    BinaryReader r(env.body);
    if (!net::DecodeHelloRequest(&r, &hello) || !r.AtEnd()) {
      SendError(conn, env.request_id, env.op,
                Status::InvalidArgument("malformed Hello body"));
      conn->reading = false;
      conn->close_after_flush = true;
      poller_->Update(conn->fd, false, conn->want_write);
      return;
    }
    if (hello.protocol_version != net::kProtocolVersion) {
      SendError(conn, env.request_id, env.op,
                Status::Unsupported(
                    "protocol version mismatch: server speaks " +
                    std::to_string(net::kProtocolVersion) + ", client sent " +
                    std::to_string(hello.protocol_version)));
      conn->reading = false;
      conn->close_after_flush = true;
      poller_->Update(conn->fd, false, conn->want_write);
      return;
    }
    conn->handshaken = true;
    net::HelloResponse resp;
    resp.protocol_version = net::kProtocolVersion;
    resp.server_version = kServerVersion;
    std::shared_ptr<const storage::ReadViewState> view =
        current_cqms()->CurrentReadView();
    resp.store_size = view != nullptr ? view->size() : 0;
    BinaryWriter w;
    net::BeginResponse(&w, env.request_id, env.op);
    net::EncodeHelloResponse(&w, resp);
    SendPayload(conn, w.data());
    return;
  }

  if (env.op == net::Op::kHello) {
    SendError(conn, env.request_id, env.op,
              Status::InvalidArgument("duplicate handshake"));
    return;
  }

  if (stop_requested_.load(std::memory_order_acquire)) {
    SendError(conn, env.request_id, env.op,
              Status::Unavailable("server is shutting down"));
    return;
  }

  if (follower_mode()) {
    switch (env.op) {
      case net::Op::kSearch:
      case net::Op::kRecommend:
      case net::Op::kBrowse:
      case net::Op::kShowSession:
      case net::Op::kStats:
      case net::Op::kMetricsDump:
        break;  // Reads serve from the replicated store.
      default:
        // Mutations (and chained replication subscriptions) belong on
        // the primary; the typed error carries its address so failover
        // clients redirect without a config lookup.
        SendError(conn, env.request_id, env.op,
                  Status::NotPrimary(
                      net::FormatNotPrimary(options_.follow_primary)));
        return;
    }
  }

  if (env.op == net::Op::kReplAck) {
    // Fire-and-forget progress report from a follower; cheap enough to
    // absorb inline on the loop thread.
    net::ReplAckRequest ack;
    BinaryReader r(env.body);
    if (!net::DecodeReplAckRequest(&r, &ack) || !r.AtEnd()) {
      SendError(conn, env.request_id, env.op,
                Status::InvalidArgument("malformed ReplAck body"));
      return;
    }
    uint64_t follower_id =
        conn->repl_follower_id.load(std::memory_order_relaxed);
    if (shipper_ != nullptr && follower_id != 0) {
      shipper_->Ack(follower_id, ack.acked_sequence);
    }
    BinaryWriter w;
    net::BeginResponse(&w, env.request_id, env.op);
    SendPayload(conn, w.data());
    return;
  }

  if (env.op == net::Op::kStats || env.op == net::Op::kMetricsDump) {
    // Introspection ops execute inline on the loop thread: they touch
    // only atomics, never the store, and must answer even when every
    // worker is wedged behind slow queries.
    Task task;
    task.conn = conn;
    task.request_id = env.request_id;
    task.op = env.op;
    task.enqueue_us = NowMicros();
    SendPayload(conn, env.op == net::Op::kStats ? HandleStats(task)
                                                : HandleMetricsDump(task));
    CountersFor(env.op).RecordLatency(
        static_cast<uint64_t>(NowMicros() - task.enqueue_us));
    return;
  }

  Task task;
  task.conn = conn;
  task.request_id = env.request_id;
  task.op = env.op;
  task.body.assign(env.body.data(), env.body.size());
  task.enqueue_us = NowMicros();
  conn->inflight.fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (env.op == net::Op::kSearch || env.op == net::Op::kRecommend) {
    read_queue_->Push(std::move(task));
  } else {
    write_queue_->Push(std::move(task));
  }
}

void CqmsServer::SendPayload(const std::shared_ptr<Connection>& conn,
                             const std::string& payload) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) return;
    AppendFrame(&conn->outbox, payload);
    if (conn->outbox.size() - conn->out_off > options_.max_outbox_bytes) {
      conn->overflow = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(pending_out_mu_);
    pending_out_.push_back(conn);
  }
  NotifyLoop();
}

void CqmsServer::SendError(const std::shared_ptr<Connection>& conn,
                           uint64_t request_id, net::Op op,
                           const Status& error) {
  CountersFor(op).errors.fetch_add(1, std::memory_order_relaxed);
  BinaryWriter w;
  net::EncodeErrorResponse(&w, request_id, op, error);
  SendPayload(conn, w.data());
}

void CqmsServer::FlushConn(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0 || conns_.count(conn->fd) == 0) return;
  bool kill = false;
  bool empty = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) return;
    if (conn->overflow) {
      kill = true;
    } else {
      while (conn->out_off < conn->outbox.size()) {
        ssize_t n = ::write(conn->fd, conn->outbox.data() + conn->out_off,
                            conn->outbox.size() - conn->out_off);
        if (n > 0) {
          conn->out_off += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        kill = true;  // EPIPE / ECONNRESET: peer is gone.
        break;
      }
      if (conn->out_off == conn->outbox.size()) {
        conn->outbox.clear();
        conn->out_off = 0;
        empty = true;
      } else if (conn->out_off > (1u << 20)) {
        conn->outbox.erase(0, conn->out_off);
        conn->out_off = 0;
      }
    }
  }
  if (kill) {
    CloseConn(conn);
    return;
  }
  if (empty && conn->close_after_flush &&
      conn->inflight.load(std::memory_order_acquire) == 0) {
    CloseConn(conn);
    return;
  }
  bool want_write = !empty;
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    poller_->Update(conn->fd, conn->reading, want_write);
  }
}

void CqmsServer::CloseConn(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  auto it = conns_.find(conn->fd);
  if (it == conns_.end() || it->second != conn) return;
  uint64_t follower_id = conn->repl_follower_id.load(std::memory_order_relaxed);
  if (follower_id != 0 && shipper_ != nullptr) {
    shipper_->RemoveFollower(follower_id);
  }
  poller_->Remove(conn->fd);
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->closed = true;
    ::close(conn->fd);
  }
  conns_.erase(it);
  conn->fd = -1;
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void CqmsServer::SweepIdle() {
  int64_t now = NowMicros();
  int64_t limit_us = options_.idle_timeout_ms * 1000;
  std::vector<std::shared_ptr<Connection>> idle;
  for (auto& [fd, conn] : conns_) {
    (void)fd;
    if (conn->inflight.load(std::memory_order_acquire) > 0) continue;
    if (conn->PendingOut() > 0) continue;
    if (now - conn->last_active_us > limit_us) idle.push_back(conn);
  }
  for (const std::shared_ptr<Connection>& conn : idle) CloseConn(conn);
}

// --- request execution -----------------------------------------------------

void CqmsServer::WorkerThread() {
  Task task;
  while (read_queue_->Pop(&task)) {
    ExecuteTask(task);
    task = Task();
  }
}

void CqmsServer::WriterThread() {
  Task task;
  while (write_queue_->Pop(&task)) {
    ExecuteTask(task);
    task = Task();
  }
  // Drained and stopped: leave a durable state behind (the graceful-
  // shutdown contract: every acknowledged write survives reopen even
  // without WAL replay).
  if (cqms_->durable() != nullptr) cqms_->Checkpoint();
}

void CqmsServer::ExecuteTask(const Task& task) {
  if (task.work) {
    task.work();  // Bare writer closure: no connection, no response.
    return;
  }
  std::string payload;
  int64_t now = NowMicros();
  if (options_.request_timeout_ms > 0 &&
      now - task.enqueue_us > options_.request_timeout_ms * 1000) {
    CountersFor(task.op).errors.fetch_add(1, std::memory_order_relaxed);
    BinaryWriter w;
    net::EncodeErrorResponse(
        &w, task.request_id, task.op,
        Status::DeadlineExceeded("request exceeded queue deadline of " +
                                 std::to_string(options_.request_timeout_ms) +
                                 "ms"));
    payload = w.Take();
  } else {
    switch (task.op) {
      case net::Op::kSearch:
        payload = HandleSearch(task);
        break;
      case net::Op::kRecommend:
        payload = HandleRecommend(task);
        break;
      default:
        payload = HandleWriterOp(task);
        break;
    }
  }
  // An empty payload means the handler streamed its own responses
  // (ReplSubscribe pushes the subscribe result + bootstrap directly).
  if (!payload.empty()) {
    CountersFor(task.op).bytes_out.fetch_add(payload.size() + kFrameHeaderBytes,
                                             std::memory_order_relaxed);
    SendPayload(task.conn, payload);
  }
  CountersFor(task.op).RecordLatency(
      static_cast<uint64_t>(NowMicros() - task.enqueue_us));
  task.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  NotifyLoop();
}

std::string CqmsServer::HandleSearch(const Task& task) {
  net::SearchRequest req;
  BinaryReader r(task.body);
  auto fail = [&](const Status& s) {
    CountersFor(task.op).errors.fetch_add(1, std::memory_order_relaxed);
    BinaryWriter w;
    net::EncodeErrorResponse(&w, task.request_id, task.op, s);
    return w.Take();
  };
  if (!net::DecodeSearchRequest(&r, &req) || !r.AtEnd()) {
    return fail(Status::InvalidArgument("malformed Search body"));
  }
  if (req.spec.data.has_value() && req.spec.data->reexecute) {
    return fail(Status::Unsupported(
        "query-by-data re-execution is not available over the wire"));
  }
  storage::QueryRecord probe;
  const storage::QueryRecord* probe_ptr = nullptr;
  if (req.spec.similarity.has_value()) {
    probe = storage::BuildRecordFromText(req.spec.similarity->probe_text,
                                         req.viewer, 0,
                                         storage::SignatureMode::kTransient);
    probe_ptr = &probe;
  }
  metaquery::MetaQueryRequest mreq = net::ToMetaQueryRequest(req.spec, probe_ptr);

  // One ExecTrace serves both consumers: the wire response (client asked
  // with want_trace) and the slow-query log (execution crossed the
  // operator's threshold). Untraced searches keep a null pointer so the
  // planner pays nothing.
  obs::ExecTrace trace;
  const bool slow_enabled = options_.slow_query_micros > 0;
  if (req.spec.want_trace || slow_enabled) mreq.trace = &trace;
  const int64_t exec_start = NowMicros();
  std::shared_ptr<Cqms> cqms = current_cqms();
  metaquery::MetaQueryResponse mresp = cqms->Search(req.viewer, mreq);
  const int64_t exec_micros = NowMicros() - exec_start;
  if (slow_enabled && exec_micros >= options_.slow_query_micros) {
    slow_log_.Write(req.viewer, "Search", exec_micros, trace);
  }

  net::SearchResult out;
  out.matches.reserve(mresp.matches.size());
  for (const metaquery::MetaQueryMatch& m : mresp.matches) {
    out.matches.push_back({m.id, m.similarity, m.score});
  }
  out.generator = static_cast<uint8_t>(mresp.generator);
  out.candidates_considered = mresp.candidates_considered;
  if (req.spec.want_trace) {
    out.trace.emplace();
    out.trace->generator = trace.generator;
    out.trace->counters = trace.counters;
    out.trace->spans_micros = trace.spans;
  }

  BinaryWriter w;
  net::BeginResponse(&w, task.request_id, task.op);
  net::EncodeSearchResult(&w, out);
  return w.Take();
}

std::string CqmsServer::HandleRecommend(const Task& task) {
  net::RecommendRequest req;
  BinaryReader r(task.body);
  auto fail = [&](const Status& s) {
    CountersFor(task.op).errors.fetch_add(1, std::memory_order_relaxed);
    BinaryWriter w;
    net::EncodeErrorResponse(&w, task.request_id, task.op, s);
    return w.Take();
  };
  if (!net::DecodeRecommendRequest(&r, &req) || !r.AtEnd()) {
    return fail(Status::InvalidArgument("malformed Recommend body"));
  }

  // The in-process RecommendationEngine reads live records; here every
  // record fetch goes through a pinned view instead so recommendations
  // never race the writer (same over-fetch + fingerprint-dedup policy).
  storage::QueryRecord probe = storage::BuildRecordFromText(
      req.sql_text, req.viewer, 0, storage::SignatureMode::kTransient);
  if (probe.parse_failed()) {
    return fail(Status::ParseError("cannot recommend for unparsable text: " +
                                   probe.stats.error));
  }
  std::shared_ptr<Cqms> cqms = current_cqms();
  std::shared_ptr<const storage::ReadViewState> view = cqms->CurrentReadView();
  if (view == nullptr) return fail(Status::Internal("read views not enabled"));

  metaquery::MetaQueryRequest mreq;
  mreq.SimilarTo(probe);
  mreq.Limit(req.k * 4 + 8);
  metaquery::MetaQueryResponse mresp = cqms->Search(req.viewer, mreq);

  net::RecommendResult out;
  std::vector<uint64_t> seen_fingerprints;
  for (const metaquery::MetaQueryMatch& m : mresp.matches) {
    if (out.items.size() >= req.k) break;
    const storage::QueryRecord* rec = view->Get(m.id);
    if (rec == nullptr || rec->parse_failed()) continue;
    if (std::find(seen_fingerprints.begin(), seen_fingerprints.end(),
                  rec->fingerprint) != seen_fingerprints.end()) {
      continue;
    }
    seen_fingerprints.push_back(rec->fingerprint);
    net::RecommendationItem item;
    item.id = m.id;
    item.score = m.score;
    item.similarity = m.similarity;
    item.text = rec->text;
    item.diff = sql::DiffQueries(probe.components, rec->components).Summary();
    if (!rec->annotations.empty()) item.annotation = rec->annotations.back().text;
    out.items.push_back(std::move(item));
  }

  BinaryWriter w;
  net::BeginResponse(&w, task.request_id, task.op);
  net::EncodeRecommendResult(&w, out);
  return w.Take();
}

std::string CqmsServer::HandleWriterOp(const Task& task) {
  BinaryReader r(task.body);
  BinaryWriter w;
  std::shared_ptr<Cqms> cqms = current_cqms();
  auto fail = [&](const Status& s) {
    CountersFor(task.op).errors.fetch_add(1, std::memory_order_relaxed);
    BinaryWriter ew;
    net::EncodeErrorResponse(&ew, task.request_id, task.op, s);
    return ew.Take();
  };
  auto malformed = [&] {
    return fail(Status::InvalidArgument(std::string("malformed ") +
                                        net::OpName(task.op) + " body"));
  };
  auto from_status = [&](const Status& s) {
    if (!s.ok()) return fail(s);
    BinaryWriter ok;
    net::BeginResponse(&ok, task.request_id, task.op);
    return ok.Take();
  };

  switch (task.op) {
    case net::Op::kAppend: {
      net::AppendRequest req;
      if (!net::DecodeAppendRequest(&r, &req) || !r.AtEnd()) return malformed();
      if (req.user.empty()) {
        return fail(Status::InvalidArgument("Append requires a user"));
      }
      net::AppendResult result;
      if (req.execute) {
        profiler::ProfiledExecution exec = cqms->Execute(req.user, req.sql);
        result.id = exec.query_id;
        result.succeeded = exec.stats.succeeded;
        result.error = exec.stats.error;
        result.result_rows = exec.stats.result_rows;
        result.exec_micros = exec.stats.execution_micros;
      } else {
        result.id = cqms->profiler().LogOnly(req.sql, req.user);
        result.succeeded = true;
      }
      net::BeginResponse(&w, task.request_id, task.op);
      net::EncodeAppendResult(&w, result);
      return w.Take();
    }
    case net::Op::kRewrite: {
      net::RewriteRequest req;
      if (!net::DecodeRewriteRequest(&r, &req) || !r.AtEnd()) return malformed();
      return from_status(cqms->store()->RewriteQueryText(req.id, req.new_text));
    }
    case net::Op::kAnnotate: {
      net::AnnotateRequest req;
      if (!net::DecodeAnnotateRequest(&r, &req) || !r.AtEnd()) return malformed();
      return from_status(
          cqms->Annotate(req.id, req.author, req.text, req.fragment));
    }
    case net::Op::kSetVisibility: {
      net::SetVisibilityRequest req;
      if (!net::DecodeSetVisibilityRequest(&r, &req) || !r.AtEnd()) {
        return malformed();
      }
      return from_status(
          cqms->SetVisibility(req.requester, req.id, req.visibility));
    }
    case net::Op::kDelete: {
      net::DeleteRequest req;
      if (!net::DecodeDeleteRequest(&r, &req) || !r.AtEnd()) return malformed();
      return from_status(cqms->DeleteQuery(req.requester, req.id, req.is_admin));
    }
    case net::Op::kRegisterUser: {
      net::RegisterUserRequest req;
      if (!net::DecodeRegisterUserRequest(&r, &req) || !r.AtEnd()) {
        return malformed();
      }
      if (req.user.empty()) {
        return fail(Status::InvalidArgument("RegisterUser requires a user"));
      }
      cqms->RegisterUser(req.user, req.groups);
      return from_status(Status::Ok());
    }
    case net::Op::kBrowse: {
      net::BrowseRequest req;
      if (!net::DecodeBrowseRequest(&r, &req) || !r.AtEnd()) return malformed();
      net::TextResult text;
      text.text = cqms->BrowseLog(req.viewer, req.max_sessions);
      net::BeginResponse(&w, task.request_id, task.op);
      net::EncodeTextResult(&w, text);
      return w.Take();
    }
    case net::Op::kShowSession: {
      net::ShowSessionRequest req;
      if (!net::DecodeShowSessionRequest(&r, &req) || !r.AtEnd()) {
        return malformed();
      }
      Result<std::string> rendered = cqms->ShowSession(req.viewer, req.session_id);
      if (!rendered.ok()) return fail(rendered.status());
      net::TextResult text;
      text.text = *rendered;
      net::BeginResponse(&w, task.request_id, task.op);
      net::EncodeTextResult(&w, text);
      return w.Take();
    }
    case net::Op::kCheckpoint: {
      if (!r.AtEnd()) return malformed();
      return from_status(cqms->Checkpoint());
    }
    case net::Op::kMaintain: {
      net::MaintainRequest req;
      if (!net::DecodeMaintainRequest(&r, &req) || !r.AtEnd()) {
        return malformed();
      }
      cqms->RunMaintenance();
      if (req.run_mining) cqms->RunMining();
      return from_status(Status::Ok());
    }
    case net::Op::kReplSubscribe: {
      net::ReplSubscribeRequest req;
      if (!net::DecodeReplSubscribeRequest(&r, &req) || !r.AtEnd()) {
        return malformed();
      }
      if (shipper_ == nullptr) {
        return fail(Status::Unsupported(
            "replication requires durability on the primary "
            "(--durability-dir)"));
      }
      // Running on the writer thread, the store is quiescent: the
      // shipper can scan the WAL (or encode a snapshot) and register
      // the follower without a frame slipping in between. It streams
      // the subscribe response itself; the empty return tells
      // ExecuteTask not to send one.
      std::shared_ptr<Connection> conn = task.conn;
      uint64_t follower_id = shipper_->Subscribe(
          req, task.request_id,
          [this, conn](std::string payload) { SendPayload(conn, payload); });
      conn->repl_follower_id.store(follower_id, std::memory_order_relaxed);
      return std::string();
    }
    default:
      return fail(Status::Unsupported(std::string("op ") +
                                      net::OpName(task.op) +
                                      " is not servable"));
  }
}

std::string CqmsServer::HandleStats(const Task& task) {
  net::StatsResult stats = StatsSnapshot();
  BinaryWriter w;
  net::BeginResponse(&w, task.request_id, task.op);
  net::EncodeStatsResult(&w, stats);
  return w.Take();
}

std::string CqmsServer::HandleMetricsDump(const Task& task) {
  // Process-wide registry first (planner, storage, miner, WAL series),
  // then the server's own per-op counters appended in the same
  // exposition dialect so one dump covers every layer.
  std::string text = obs::MetricsRegistry::Global().ExpositionText();
  text += "cqms_server_uptime_micros ";
  text += std::to_string(static_cast<uint64_t>(NowMicros() - start_micros_));
  text += '\n';
  text += "cqms_server_connections_active ";
  text += std::to_string(active_conns_.load(std::memory_order_relaxed));
  text += '\n';
  text += "cqms_server_connections_total ";
  text += std::to_string(total_conns_.load(std::memory_order_relaxed));
  text += '\n';
  text += "cqms_server_connections_rejected_total ";
  text += std::to_string(rejected_conns_.load(std::memory_order_relaxed));
  text += '\n';
  text += "cqms_server_protocol_errors_total ";
  text += std::to_string(protocol_errors_.load(std::memory_order_relaxed));
  text += '\n';
  for (uint8_t op = net::kMinOp; op <= net::kMaxOp; ++op) {
    const OpCounters& c = op_counters_[op];
    uint64_t count = c.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    std::string lower = net::OpName(static_cast<net::Op>(op));
    for (char& ch : lower) ch = static_cast<char>(std::tolower(ch));
    text += "cqms_" + lower + "_total " + std::to_string(count) + '\n';
    text += "cqms_" + lower + "_errors_total " +
            std::to_string(c.errors.load(std::memory_order_relaxed)) + '\n';
    text += "cqms_" + lower + "_p99_micros " + std::to_string(c.Percentile(99)) +
            '\n';
  }

  net::TextResult result;
  result.text = std::move(text);
  BinaryWriter w;
  net::BeginResponse(&w, task.request_id, task.op);
  net::EncodeTextResult(&w, result);
  return w.Take();
}

net::StatsResult CqmsServer::StatsSnapshot() const {
  net::StatsResult out;
  out.server_version = kServerVersion;
  out.uptime_micros = static_cast<uint64_t>(NowMicros() - start_micros_);
  out.active_connections = active_conns_.load(std::memory_order_relaxed);
  out.total_connections = total_conns_.load(std::memory_order_relaxed);
  out.rejected_connections = rejected_conns_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  std::shared_ptr<Cqms> cqms = current_cqms();
  std::shared_ptr<const storage::ReadViewState> view = cqms->CurrentReadView();
  out.store_size = view != nullptr ? view->size() : 0;
  out.published_sequence = cqms->store()->published_sequence();
  if (const storage::DurableStore* durable = cqms->durable()) {
    out.durable_read_only = durable->read_only();
    out.checkpoint_failure_streak = durable->checkpoint_failure_streak();
    out.checkpoints_backed_off = durable->checkpoints_backed_off();
  }
  if (view != nullptr) out.arena_garbage_bytes = view->scoring().arena_garbage();
  if (follower_mode()) {
    out.role = 2;
    out.primary_address = options_.follow_primary;
    if (follower_ != nullptr) {
      repl::Follower::Stats repl = follower_->GetStats();
      out.repl_connected = repl.connected;
      out.repl_applied_sequence = repl.applied_sequence;
      out.repl_primary_sequence = repl.primary_sequence;
    }
  } else {
    out.role = 1;
    if (shipper_ != nullptr) {
      repl::WalShipper::Stats repl = shipper_->GetStats();
      out.repl_followers = repl.followers;
      out.repl_min_acked_sequence = repl.min_acked_sequence;
      out.repl_backlog_bytes = cqms_->durable()->repl_backlog_bytes();
    }
  }
  for (uint8_t op = net::kMinOp; op <= net::kMaxOp; ++op) {
    const OpCounters& c = op_counters_[op];
    uint64_t count = c.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    net::OpStatsRow row;
    row.op = op;
    row.count = count;
    row.errors = c.errors.load(std::memory_order_relaxed);
    row.bytes_in = c.bytes_in.load(std::memory_order_relaxed);
    row.bytes_out = c.bytes_out.load(std::memory_order_relaxed);
    row.p50_micros = c.Percentile(50);
    row.p99_micros = c.Percentile(99);
    row.max_micros = c.max_micros();
    out.per_op.push_back(row);
  }
  return out;
}

OpCounters& CqmsServer::CountersFor(net::Op op) {
  return op_counters_[static_cast<uint8_t>(op)];
}

const OpCounters& CqmsServer::CountersFor(net::Op op) const {
  return op_counters_[static_cast<uint8_t>(op)];
}

}  // namespace cqms::server
