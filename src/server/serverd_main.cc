// cqms_serverd: the CQMS network daemon.
//
// Serves the full CQMS surface (search, append, annotate, recommend,
// browse, admin) over the length-prefixed binary protocol documented in
// docs/server.md. Prints "LISTENING <port>" once ready; SIGTERM/SIGINT
// trigger a graceful drain (finish queued requests, flush responses,
// final checkpoint when durable).
//
// Stdout carries only the supervision handshake ("LISTENING <port>",
// "SHUTDOWN clean") so wrappers can parse it; all diagnostics go to
// stderr through the leveled logger (--log-level).

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <memory>

#include "netclient/failover.h"
#include "obs/log.h"
#include "repl/follower.h"
#include "server/server.h"
#include "workload/synthetic.h"

namespace {

cqms::server::CqmsServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --host H               bind address (default 127.0.0.1)\n"
               "  --port N               bind port (default 0 = ephemeral)\n"
               "  --workers N            read-op worker threads (default 4)\n"
               "  --max-conns N          connection ceiling (default 256)\n"
               "  --max-frame-bytes N    per-frame payload ceiling (default 4MiB)\n"
               "  --idle-timeout-ms N    close idle connections (0 = never)\n"
               "  --request-timeout-ms N queue deadline per request (0 = never)\n"
               "  --durability-dir DIR   enable WAL+snapshot persistence\n"
               "  --follow HOST:PORT     run as a live read replica of that\n"
               "                         primary (mutations answer kNotPrimary)\n"
               "  --repl-heartbeat-ms N  primary: replication heartbeat cadence\n"
               "                         (default 500, 0 = off)\n"
               "  --demo-rows N          populate the demo lake schema with N\n"
               "                         rows per table (so Append can execute)\n"
               "  --use-poll             use the portable poll() event loop\n"
               "  --log-level LEVEL      debug|info|warn|error (default info)\n"
               "  --slow-query-micros N  log searches slower than N us (0 = off)\n"
               "  --slow-query-log PATH  JSONL file for the slow-query log\n",
               argv0);
}

bool ParseSize(const char* s, uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cqms::server::ServerOptions options;
  std::string durability_dir;
  uint64_t demo_rows = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    uint64_t n = 0;
    if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port" && ParseSize(next(), &n)) {
      options.port = static_cast<uint16_t>(n);
    } else if (arg == "--workers" && ParseSize(next(), &n)) {
      options.workers = n;
    } else if (arg == "--max-conns" && ParseSize(next(), &n)) {
      options.max_conns = n;
    } else if (arg == "--max-frame-bytes" && ParseSize(next(), &n)) {
      options.max_frame_bytes = n;
    } else if (arg == "--idle-timeout-ms" && ParseSize(next(), &n)) {
      options.idle_timeout_ms = static_cast<int64_t>(n);
    } else if (arg == "--request-timeout-ms" && ParseSize(next(), &n)) {
      options.request_timeout_ms = static_cast<int64_t>(n);
    } else if (arg == "--durability-dir") {
      durability_dir = next();
    } else if (arg == "--follow") {
      options.follow_primary = next();
    } else if (arg == "--repl-heartbeat-ms" && ParseSize(next(), &n)) {
      options.repl_heartbeat_ms = static_cast<int64_t>(n);
    } else if (arg == "--demo-rows" && ParseSize(next(), &n)) {
      demo_rows = n;
    } else if (arg == "--use-poll") {
      options.use_poll = true;
    } else if (arg == "--log-level") {
      cqms::obs::LogLevel level;
      const char* text = next();
      if (!cqms::obs::ParseLogLevel(text, &level)) {
        std::fprintf(stderr, "unknown log level: %s\n", text);
        return 2;
      }
      cqms::obs::SetLogLevel(level);
    } else if (arg == "--slow-query-micros" && ParseSize(next(), &n)) {
      options.slow_query_micros = static_cast<int64_t>(n);
    } else if (arg == "--slow-query-log") {
      options.slow_query_log_path = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown or malformed flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (!options.follow_primary.empty() && !durability_dir.empty()) {
    // A follower's store is a replica of the primary's durable log;
    // layering a local WAL under it would double-apply on restart.
    std::fprintf(stderr, "--follow and --durability-dir are exclusive\n");
    return 2;
  }

  cqms::Cqms cqms;

  // Order matters: durability must see a pristine store, so enable it
  // before demo data or any served request.
  if (!durability_dir.empty()) {
    cqms::Status s = cqms.EnableDurability(durability_dir);
    if (!s.ok()) {
      CQMS_LOG(kError, "EnableDurability(%s): %s", durability_dir.c_str(),
               s.ToString().c_str());
      return 1;
    }
    CQMS_LOG(kInfo, "durability enabled in %s", durability_dir.c_str());
  }
  if (demo_rows > 0) {
    cqms::Status s =
        cqms::workload::PopulateLakeDatabase(cqms.database(), demo_rows);
    if (!s.ok()) {
      CQMS_LOG(kError, "PopulateLakeDatabase: %s", s.ToString().c_str());
      return 1;
    }
    CQMS_LOG(kInfo, "demo lake schema populated (%llu rows/table)",
             static_cast<unsigned long long>(demo_rows));
  }

  cqms::server::CqmsServer server(&cqms, options);

  // Follower mode: a repl::Follower streams the primary's WAL into the
  // server's writer thread; the server serves reads and answers every
  // mutation with kNotPrimary (docs/replication.md).
  std::unique_ptr<cqms::repl::Follower> follower;
  if (!options.follow_primary.empty()) {
    auto ep = cqms::netclient::ParseEndpoint(options.follow_primary);
    if (!ep.ok()) {
      std::fprintf(stderr, "--follow: %s\n", ep.status().ToString().c_str());
      return 2;
    }
    cqms::repl::FollowerOptions fopts;
    fopts.primary_host = ep->host;
    fopts.primary_port = ep->port;
    fopts.name = options.host + ":" + std::to_string(options.port);
    fopts.view_options = options.view_options;
    // Non-owning alias: `cqms` outlives both server and follower.
    std::shared_ptr<cqms::Cqms> live(&cqms, [](cqms::Cqms*) {});
    follower = std::make_unique<cqms::repl::Follower>(&server, std::move(live),
                                                      fopts);
    server.SetFollower(follower.get());
  }

  cqms::Status s = server.Start();
  if (!s.ok()) {
    CQMS_LOG(kError, "Start: %s", s.ToString().c_str());
    return 1;
  }
  if (follower != nullptr) follower->Start();

  g_server = &server;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  CQMS_LOG(kInfo, "%s serving on %s:%u (%zu workers)",
           cqms::server::kServerVersion, options.host.c_str(), server.port(),
           options.workers);
  if (options.slow_query_micros > 0) {
    CQMS_LOG(kInfo, "slow-query log: >=%lldus -> %s",
             static_cast<long long>(options.slow_query_micros),
             options.slow_query_log_path.c_str());
  }

  // The stdout handshake stays raw printf: supervising scripts and the
  // e2e smoke parse these two lines verbatim.
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  server.Wait();
  // After Wait the writer queue rejects new work, so the follower's
  // in-flight apply fails fast instead of deadlocking.
  if (follower != nullptr) follower->Stop();
  CQMS_LOG(kInfo, "shutdown complete");
  std::printf("SHUTDOWN clean\n");
  return 0;
}
