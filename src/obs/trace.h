#ifndef CQMS_OBS_TRACE_H_
#define CQMS_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cqms::obs {

/// Per-request execution trace. A caller that wants one hangs a pointer
/// off the request; a null pointer means tracing is off and the
/// instrumented code must not pay for it (every site is `if (trace)`).
///
/// Counters and spans are append-only (name, value) pairs so the trace
/// carries whatever the executing path found notable without a fixed
/// schema; the wire and JSON encodings preserve insertion order.
struct ExecTrace {
  /// Candidate generator that actually ran ("posting_intersection",
  /// "lsh_buckets", "table_union", "full_scan").
  std::string generator;
  /// e.g. {"candidates", 812}, {"visibility_cache_hits", 790}.
  std::vector<std::pair<std::string, uint64_t>> counters;
  /// Phase timings in microseconds from the monotonic clock,
  /// e.g. {"generate_candidates", 41}.
  std::vector<std::pair<std::string, uint64_t>> spans;

  void Count(std::string_view name, uint64_t value) {
    counters.emplace_back(std::string(name), value);
  }
  void Span(std::string_view name, uint64_t micros) {
    spans.emplace_back(std::string(name), micros);
  }

  /// First counter with `name`, or `fallback` if absent.
  uint64_t CounterOr(std::string_view name, uint64_t fallback = 0) const {
    for (const auto& [k, v] : counters) {
      if (k == name) return v;
    }
    return fallback;
  }

  /// Compact single-object JSON, used by the slow-query log and the
  /// CLI's --explain rendering.
  std::string ToJson() const {
    std::string out = "{\"generator\":\"";
    out += generator;
    out += "\",\"counters\":{";
    bool first = true;
    for (const auto& [k, v] : counters) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += k;
      out += "\":";
      out += std::to_string(v);
    }
    out += "},\"spans_micros\":{";
    first = true;
    for (const auto& [k, v] : spans) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += k;
      out += "\":";
      out += std::to_string(v);
    }
    out += "}}";
    return out;
  }
};

}  // namespace cqms::obs

#endif  // CQMS_OBS_TRACE_H_
