#ifndef CQMS_OBS_SLOW_LOG_H_
#define CQMS_OBS_SLOW_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/trace.h"

namespace cqms::obs {

/// Append-only JSONL slow-query log. One object per line:
///   {"ts":"...","viewer":"...","op":"Search","micros":N,
///    "trace":{...ExecTrace::ToJson()...}}
/// Writes are mutex-serialized and flushed per line; this sits off the
/// hot path (only queries past the threshold reach it).
class SlowQueryLog {
 public:
  ~SlowQueryLog();

  /// Opens (appends to) `path`. Returns false on failure.
  bool Open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  void Write(std::string_view viewer, std::string_view op, int64_t micros,
             const ExecTrace& trace);

  uint64_t entries_written() const;

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t entries_ = 0;
};

}  // namespace cqms::obs

#endif  // CQMS_OBS_SLOW_LOG_H_
