#include "obs/slow_log.h"

#include <ctime>

namespace cqms::obs {

SlowQueryLog::~SlowQueryLog() {
  if (file_ != nullptr) std::fclose(file_);
}

bool SlowQueryLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) return false;
  path_ = path;
  return true;
}

namespace {

// JSON string escaping for the viewer field (queries never appear raw;
// only the trace summary does, and its keys are code-controlled).
void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void SlowQueryLog::Write(std::string_view viewer, std::string_view op,
                         int64_t micros, const ExecTrace& trace) {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char stamp[64];
  std::snprintf(stamp, sizeof stamp, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ts.tv_nsec / 1000000));

  std::string line = "{\"ts\":\"";
  line += stamp;
  line += "\",\"viewer\":\"";
  AppendEscaped(&line, viewer);
  line += "\",\"op\":\"";
  AppendEscaped(&line, op);
  line += "\",\"micros\":";
  line += std::to_string(micros);
  line += ",\"trace\":";
  line += trace.ToJson();
  line += "}\n";

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ++entries_;
}

uint64_t SlowQueryLog::entries_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

}  // namespace cqms::obs
