#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace cqms::obs {

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max via CAS loops; contention is rare (only on new extremes).
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

uint64_t Histogram::Percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target sample (1-based, ceil).
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) {
      uint64_t v = BucketUpperBound(i);
      // Clamp to the observed range: the top bucket's nominal bound can
      // be far past any real sample, and bucket 0's bound (0) can sit
      // below the observed minimum.
      v = std::min(v, max());
      v = std::max(v, min());
      return v;
    }
  }
  return max();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      MetricSample::Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.name == name && e.kind == kind) return &e;
  }
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.name.assign(name.data(), name.size());
  e.kind = kind;
  return &e;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return &FindOrCreate(name, MetricSample::Kind::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return &FindOrCreate(name, MetricSample::Kind::kGauge)->gauge;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return &FindOrCreate(name, MetricSample::Kind::kHistogram)->histogram;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const Entry& e : entries_) {
      MetricSample s;
      s.name = e.name;
      s.kind = e.kind;
      switch (e.kind) {
        case MetricSample::Kind::kCounter:
          s.value = static_cast<int64_t>(e.counter.value());
          break;
        case MetricSample::Kind::kGauge:
          s.value = e.gauge.value();
          break;
        case MetricSample::Kind::kHistogram:
          s.count = e.histogram.count();
          s.sum = e.histogram.sum();
          s.min = e.histogram.min();
          s.max = e.histogram.max();
          s.p50 = e.histogram.Percentile(50);
          s.p99 = e.histogram.Percentile(99);
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

namespace {

// "cqms_x_total{k=\"v\"}" + suffix "_count" -> "cqms_x_total_count{k=\"v\"}".
std::string WithSuffix(const std::string& name, const char* suffix) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

// Same, but merges a `stat="p50"` label into any existing label set.
std::string WithStatLabel(const std::string& name, const char* stat) {
  size_t brace = name.find('{');
  std::string out;
  if (brace == std::string::npos) {
    out = name + "{stat=\"" + stat + "\"}";
  } else {
    out = name.substr(0, name.size() - 1) + ",stat=\"" + stat + "\"}";
  }
  return out;
}

void AppendLine(std::string* out, const std::string& name, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out->append(name);
  out->push_back(' ');
  out->append(buf);
  out->push_back('\n');
}

}  // namespace

std::string MetricsRegistry::ExpositionText() const {
  std::string out;
  for (const MetricSample& s : Snapshot()) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        AppendLine(&out, s.name, static_cast<uint64_t>(s.value));
        break;
      case MetricSample::Kind::kGauge: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(s.value));
        out.append(s.name);
        out.push_back(' ');
        out.append(buf);
        out.push_back('\n');
        break;
      }
      case MetricSample::Kind::kHistogram:
        AppendLine(&out, WithSuffix(s.name, "_count"), s.count);
        AppendLine(&out, WithSuffix(s.name, "_sum"), s.sum);
        AppendLine(&out, WithStatLabel(s.name, "min"), s.min);
        AppendLine(&out, WithStatLabel(s.name, "p50"), s.p50);
        AppendLine(&out, WithStatLabel(s.name, "p99"), s.p99);
        AppendLine(&out, WithStatLabel(s.name, "max"), s.max);
        break;
    }
  }
  return out;
}

}  // namespace cqms::obs
