#include "obs/log.h"

#include <cstdio>
#include <ctime>
#include <mutex>

namespace cqms::obs {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<LogSink> g_sink{nullptr};
std::mutex g_stderr_mu;

void StderrSink(LogLevel /*level*/, const std::string& line) {
  // One mutex-guarded write so concurrent connection threads don't
  // interleave partial lines.
  std::lock_guard<std::mutex> lock(g_stderr_mu);
  std::fputs(line.c_str(), stderr);
  std::fputc('\n', stderr);
}

}  // namespace

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) { g_sink.store(sink, std::memory_order_release); }

void Log(LogLevel level, const char* format, ...) {
  if (!LogEnabled(level)) return;

  char message[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof message, format, args);
  va_end(args);

  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char stamp[64];
  std::snprintf(stamp, sizeof stamp, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ts.tv_nsec / 1000000));

  std::string line;
  line.reserve(64 + std::char_traits<char>::length(message));
  line += stamp;
  line += ' ';
  line += LogLevelName(level);
  line += ' ';
  line += message;

  LogSink sink = g_sink.load(std::memory_order_acquire);
  (sink ? sink : StderrSink)(level, line);
}

}  // namespace cqms::obs
