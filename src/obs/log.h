#ifndef CQMS_OBS_LOG_H_
#define CQMS_OBS_LOG_H_

#include <atomic>
#include <cstdarg>
#include <string>
#include <string_view>

namespace cqms::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Parses "debug" / "info" / "warn" / "error" (case-sensitive);
/// returns false and leaves *out untouched on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);
const char* LogLevelName(LogLevel level);

/// Minimum level that gets emitted; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Lines below the minimum level are dropped before formatting.
bool LogEnabled(LogLevel level);

/// Sink for a fully formatted line (no trailing newline). Default sink
/// writes to stderr — never stdout, which the daemon reserves for its
/// LISTENING/SHUTDOWN handshake. Tests may install their own.
using LogSink = void (*)(LogLevel level, const std::string& line);
void SetLogSink(LogSink sink);  // nullptr restores the stderr sink

/// Emits "<ISO8601 UTC> <LEVEL> <printf-formatted message>" to the
/// current sink if `level` passes the threshold.
void Log(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace cqms::obs

#define CQMS_LOG(level, ...)                                      \
  do {                                                            \
    if (::cqms::obs::LogEnabled(::cqms::obs::LogLevel::level)) {  \
      ::cqms::obs::Log(::cqms::obs::LogLevel::level, __VA_ARGS__); \
    }                                                             \
  } while (0)

#endif  // CQMS_OBS_LOG_H_
