#ifndef CQMS_OBS_METRICS_H_
#define CQMS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cqms::obs {

/// Lock-free process-wide metrics primitives. Write paths are single
/// relaxed atomic RMWs so they can sit on planner / WAL / publish hot
/// paths; reads (Snapshot / exposition) tolerate being slightly torn
/// across *different* series but are monotonic per series.
///
/// Series are identified by name. Labels are embedded Prometheus-style
/// in the name itself (`cqms_planner_queries_total{generator="lsh"}`);
/// the registry treats the whole string as the key and the exposition
/// encoder emits it verbatim, so no label-matching machinery is needed.

/// Monotonic counter, striped across cache-line-aligned cells so
/// concurrent writers (e.g. 8 planner threads bumping the same series
/// once per query) do not bounce one cache line between cores. Each
/// thread writes its own cell; value() sums the stripes, so reads are
/// monotonic but may miss in-flight adds.
class Counter {
 public:
  void Add(uint64_t delta) {
    cells_[ThreadStripe()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static size_t ThreadStripe() {
    static std::atomic<size_t> next{0};
    thread_local const size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
  }
  Cell cells_[kStripes];
};

/// Last-write-wins signed gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two histogram over non-negative integer samples (latencies
/// in microseconds, byte counts). Bucket i holds samples whose value v
/// satisfies 2^(i-1) <= v < 2^i (bucket 0 holds v == 0), i.e. the same
/// `64 - clz(v)` indexing the server's latency counters used, capped at
/// the top bucket. Also tracks count / sum / observed min / max so
/// percentile queries can clamp to the observed range instead of
/// extrapolating past it.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Observed maximum; 0 when empty.
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Observed minimum; 0 when empty.
  uint64_t min() const;

  /// Value at or below which `p` (0..100) percent of samples fall,
  /// resolved to the upper bound of the containing bucket and clamped
  /// to the observed [min, max]. Returns 0 for an empty histogram.
  uint64_t Percentile(double p) const;

  uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

  static int BucketIndex(uint64_t value) {
    if (value == 0) return 0;
    int idx = 64 - __builtin_clzll(value);
    return idx < kBuckets ? idx : kBuckets - 1;
  }
  /// Inclusive upper bound of bucket i (2^i - 1).
  static uint64_t BucketUpperBound(int i) {
    if (i >= 63) return ~0ull;
    return (1ull << i) - 1;
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ull};
  std::atomic<uint64_t> max_{0};
};

/// One series in a Snapshot().
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  // Counter / gauge value (counters are stored non-negative).
  int64_t value = 0;
  // Histogram-only.
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
};

/// Name-keyed registry with stable pointers: a series, once created,
/// lives for the registry's lifetime at a fixed address, so callers
/// resolve it once (function-local static) and write lock-free forever
/// after. The mutex guards registration and enumeration only.
class MetricsRegistry {
 public:
  /// Process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Coherent-enough view of every series, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus-style text exposition. Histograms are flattened to
  /// `<name>_count`, `<name>_sum`, and `{stat=...}` quantile gauges;
  /// when a name carries embedded labels the suffix is inserted before
  /// the `{`.
  std::string ExpositionText() const;

 private:
  struct Entry {
    std::string name;
    MetricSample::Kind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };
  Entry* FindOrCreate(std::string_view name, MetricSample::Kind kind);

  mutable std::mutex mu_;
  std::deque<Entry> entries_;  // deque: stable addresses across growth
};

}  // namespace cqms::obs

#endif  // CQMS_OBS_METRICS_H_
