#ifndef CQMS_METAQUERY_META_QUERY_EXECUTOR_H_
#define CQMS_METAQUERY_META_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "metaquery/feature_query.h"
#include "metaquery/knn.h"
#include "metaquery/parse_tree_query.h"
#include "metaquery/query_by_data.h"
#include "metaquery/text_search.h"
#include "storage/query_store.h"

namespace cqms::metaquery {

/// The CQMS Meta-Query Executor (Figure 4): the single online entry point
/// for all four classes of meta-queries the paper identifies (§4.2) —
/// keyword, complex feature/structure conditions, output conditions, and
/// kNN — with access control applied on every path.
class MetaQueryExecutor {
 public:
  /// `store` must outlive the executor.
  explicit MetaQueryExecutor(const storage::QueryStore* store) : store_(store) {}

  // Class 1: keyword / substring.
  std::vector<storage::QueryId> Keyword(const std::string& viewer,
                                        const std::string& words,
                                        bool match_all = true) const {
    return KeywordSearch(*store_, viewer, words, match_all);
  }
  std::vector<storage::QueryId> Substring(const std::string& viewer,
                                          const std::string& needle) const {
    return SubstringSearch(*store_, viewer, needle);
  }

  // Class 2a: feature conditions (programmatic).
  std::vector<storage::QueryId> ByFeature(const std::string& viewer,
                                          const FeatureQuery& query) const {
    return query.Evaluate(*store_, viewer);
  }

  // Class 2b: feature conditions (SQL over the feature relations).
  /// Runs arbitrary SQL against the Figure-1 feature relations. When the
  /// result exposes a `qid` column, rows whose query is not visible to
  /// `viewer` are removed — SQL meta-querying cannot bypass the ACL.
  Result<db::QueryResult> Sql(const std::string& viewer,
                              const std::string& meta_sql) const;

  // Class 2c: parse-tree structure conditions.
  std::vector<storage::QueryId> ByStructure(const std::string& viewer,
                                            const StructuralPattern& pattern) const {
    return StructuralSearch(*store_, viewer, pattern);
  }

  // Class 3: conditions on query outputs.
  std::vector<storage::QueryId> ByData(const std::string& viewer,
                                       const std::vector<DataExample>& examples,
                                       const QueryByDataOptions& options = {}) const {
    return QueryByData(*store_, viewer, examples, options);
  }

  // Class 4: kNN.
  std::vector<Neighbor> Knn(const std::string& viewer,
                            const storage::QueryRecord& probe, size_t k,
                            const SimilarityWeights& weights = {},
                            const RankingOptions& ranking = {}) const {
    return KnnSearch(*store_, viewer, probe, k, weights, ranking);
  }
  Result<std::vector<Neighbor>> KnnText(const std::string& viewer,
                                        const std::string& sql_text, size_t k,
                                        const SimilarityWeights& weights = {},
                                        const RankingOptions& ranking = {}) const {
    return KnnSearchText(*store_, viewer, sql_text, k, weights, ranking);
  }

 private:
  const storage::QueryStore* store_;
};

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_META_QUERY_EXECUTOR_H_
