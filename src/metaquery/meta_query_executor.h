#ifndef CQMS_METAQUERY_META_QUERY_EXECUTOR_H_
#define CQMS_METAQUERY_META_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "metaquery/feature_query.h"
#include "metaquery/knn.h"
#include "metaquery/meta_query_planner.h"
#include "metaquery/meta_query_request.h"
#include "metaquery/parse_tree_query.h"
#include "metaquery/query_by_data.h"
#include "metaquery/text_search.h"
#include "storage/query_store.h"

namespace cqms::metaquery {

/// The CQMS Meta-Query Executor (Figure 4): the single online entry point
/// for all four classes of meta-queries the paper identifies (§4.2) —
/// keyword, complex feature/structure conditions, output conditions, and
/// kNN — with access control applied on every path.
///
/// Since the unified redesign there is exactly one pipeline behind it:
/// every method builds a MetaQueryRequest (a conjunction of composable
/// predicates plus one RankingOptions) and hands it to the
/// MetaQueryPlanner. Call `Execute` directly to *combine* predicates —
/// "queries touching `lineage` with skeleton X, similar to this probe,
/// ranked by popularity" is one request — which the per-class wrappers
/// cannot express.
///
/// Thread model: the executor itself is stateless (Execute never
/// mutates it), so one executor serves any number of concurrent caller
/// threads. When the store has read views enabled, each Execute pins
/// the current published view and runs entirely against that immutable
/// snapshot — visibility memoization lives in the view's per-(viewer,
/// thread) cache pool, staying warm across a thread's queries. Without
/// views, Execute runs against the live store with a call-local cache
/// (single-threaded original behavior, same results).
class MetaQueryExecutor {
 public:
  /// `store` must outlive the executor.
  explicit MetaQueryExecutor(const storage::QueryStore* store)
      : store_(store) {}

  /// The unified entry point: runs any predicate combination through
  /// the planner, against the current published view when the store has
  /// one (see the class comment).
  MetaQueryResponse Execute(const std::string& viewer,
                            const MetaQueryRequest& request) const;

  // --- legacy per-class entry points: thin one-predicate wrappers ------

  // Class 1: keyword / substring.
  std::vector<storage::QueryId> Keyword(const std::string& viewer,
                                        const std::string& words,
                                        bool match_all = true) const {
    MetaQueryRequest request;
    request.WithKeywords(words, match_all).InLogOrder();
    request.ranking.exclude_flagged = false;
    return Execute(viewer, request).Ids();
  }
  std::vector<storage::QueryId> Substring(const std::string& viewer,
                                          const std::string& needle) const {
    MetaQueryRequest request;
    request.WithSubstring(needle).InLogOrder();
    request.ranking.exclude_flagged = false;
    return Execute(viewer, request).Ids();
  }

  // Class 2a: feature conditions (programmatic).
  std::vector<storage::QueryId> ByFeature(const std::string& viewer,
                                          const FeatureQuery& query) const {
    MetaQueryRequest request;
    request.WithFeature(query).InLogOrder();
    request.ranking.exclude_flagged = false;
    return Execute(viewer, request).Ids();
  }

  // Class 2b: feature conditions (SQL over the feature relations).
  /// Runs arbitrary SQL against the Figure-1 feature relations. When the
  /// result exposes a `qid` column, rows whose query is not visible to
  /// `viewer` are removed — SQL meta-querying cannot bypass the ACL.
  /// Live-store only (the feature database is not part of published
  /// views): call from the writer thread, never concurrently with
  /// mutations.
  Result<db::QueryResult> Sql(const std::string& viewer,
                              const std::string& meta_sql) const;

  // Class 2c: parse-tree structure conditions.
  std::vector<storage::QueryId> ByStructure(const std::string& viewer,
                                            const StructuralPattern& pattern) const {
    MetaQueryRequest request;
    request.WithStructure(pattern).InLogOrder();
    request.ranking.exclude_flagged = false;
    return Execute(viewer, request).Ids();
  }

  // Class 3: conditions on query outputs.
  std::vector<storage::QueryId> ByData(const std::string& viewer,
                                       const std::vector<DataExample>& examples,
                                       const QueryByDataOptions& options = {}) const {
    MetaQueryRequest request;
    request.WithData(examples, options).InLogOrder();
    request.ranking.exclude_flagged = false;
    return Execute(viewer, request).Ids();
  }

  // Class 4: kNN.
  std::vector<Neighbor> Knn(const std::string& viewer,
                            const storage::QueryRecord& probe, size_t k,
                            const SimilarityWeights& weights = {},
                            const RankingOptions& ranking = {}) const {
    if (k == 0) return {};
    MetaQueryRequest request;
    request.SimilarTo(probe, weights).RankedBy(ranking).Limit(k);
    MetaQueryResponse resp = Execute(viewer, request);
    std::vector<Neighbor> out;
    out.reserve(resp.matches.size());
    for (const MetaQueryMatch& m : resp.matches) {
      out.push_back({m.id, m.similarity, m.score});
    }
    return out;
  }
  Result<std::vector<Neighbor>> KnnText(const std::string& viewer,
                                        const std::string& sql_text, size_t k,
                                        const SimilarityWeights& weights = {},
                                        const RankingOptions& ranking = {}) const;

 private:
  const storage::QueryStore* store_;
};

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_META_QUERY_EXECUTOR_H_
