#include "metaquery/feature_query.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "sql/components.h"

namespace cqms::metaquery {

FeatureQuery& FeatureQuery::UsesTable(std::string table) {
  tables_.push_back(ToLower(table));
  return *this;
}

FeatureQuery& FeatureQuery::UsesAttribute(std::string relation,
                                          std::string attribute) {
  attributes_.emplace_back(ToLower(relation), ToLower(attribute));
  return *this;
}

FeatureQuery& FeatureQuery::HasPredicateOn(std::string relation,
                                           std::string attribute, std::string op) {
  predicates_.push_back({ToLower(relation), ToLower(attribute), std::move(op)});
  return *this;
}

FeatureQuery& FeatureQuery::ByUser(std::string user) {
  user_ = std::move(user);
  return *this;
}

FeatureQuery& FeatureQuery::MaxExecutionMicros(int64_t micros) {
  max_execution_micros_ = micros;
  return *this;
}

FeatureQuery& FeatureQuery::MaxResultRows(uint64_t rows) {
  max_result_rows_ = rows;
  return *this;
}

FeatureQuery& FeatureQuery::MinResultRows(uint64_t rows) {
  min_result_rows_ = rows;
  return *this;
}

FeatureQuery& FeatureQuery::SucceededOnly() {
  succeeded_only_ = true;
  return *this;
}

std::vector<storage::QueryId> FeatureQuery::Evaluate(
    const storage::QueryStore& store, const std::string& viewer) const {
  // Candidate generation: intersect the most selective index lists we
  // have; fall back to a full scan if no indexed condition is present.
  std::vector<const std::vector<storage::QueryId>*> lists;
  for (const std::string& t : tables_) {
    lists.push_back(&store.QueriesUsingTable(t));
  }
  for (const auto& [rel, attr] : attributes_) {
    lists.push_back(&store.QueriesUsingAttribute(rel, attr));
  }
  for (const auto& p : predicates_) {
    lists.push_back(&store.QueriesUsingAttribute(p.relation, p.attribute));
  }
  if (user_.has_value()) {
    lists.push_back(&store.QueriesByUser(*user_));
  }

  std::vector<storage::QueryId> candidates;
  if (lists.empty()) {
    candidates.reserve(store.size());
    for (const auto& r : store.records()) candidates.push_back(r.id);
  } else {
    std::sort(lists.begin(), lists.end(),
              [](const auto* a, const auto* b) { return a->size() < b->size(); });
    candidates = *lists[0];
    for (size_t i = 1; i < lists.size() && !candidates.empty(); ++i) {
      std::vector<storage::QueryId> next;
      std::set_intersection(candidates.begin(), candidates.end(),
                            lists[i]->begin(), lists[i]->end(),
                            std::back_inserter(next));
      candidates = std::move(next);
    }
  }

  std::vector<storage::QueryId> out;
  for (storage::QueryId id : candidates) {
    if (!store.Visible(viewer, id)) continue;
    const storage::QueryRecord* r = store.Get(id);
    if (r == nullptr) continue;
    if (MatchesRecord(*r)) out.push_back(id);
  }
  return out;
}

bool FeatureQuery::MatchesRecord(const storage::QueryRecord& r) const {
  if (succeeded_only_ && !r.stats.succeeded) return false;
  if (max_execution_micros_ && r.stats.execution_micros > *max_execution_micros_) {
    return false;
  }
  if (max_result_rows_ && r.stats.result_rows > *max_result_rows_) return false;
  if (min_result_rows_ && r.stats.result_rows < *min_result_rows_) return false;
  if (user_ && r.user != *user_) return false;
  // Verify indexed conditions exactly against the current record, never
  // trusting a posting list the candidate may have come from.
  for (const std::string& t : tables_) {
    if (std::find(r.components.tables.begin(), r.components.tables.end(), t) ==
        r.components.tables.end()) {
      return false;
    }
  }
  for (const auto& [rel, attr] : attributes_) {
    if (std::find(r.components.attributes.begin(), r.components.attributes.end(),
                  std::make_pair(rel, attr)) == r.components.attributes.end()) {
      return false;
    }
  }
  // Verify predicate conditions exactly (the index only knows the
  // attribute was referenced somewhere).
  for (const auto& pc : predicates_) {
    bool found = false;
    for (const auto& p : r.components.predicates) {
      if (p.relation == pc.relation && p.attribute == pc.attribute &&
          (pc.op.empty() || p.op == pc.op)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Result<std::string> GenerateMetaQueryFromPartial(
    const sql::SelectStatement& partial) {
  sql::QueryComponents c = sql::CollectComponents(partial);
  if (c.tables.empty()) {
    return Status::InvalidArgument(
        "partial query references no tables; nothing to search for");
  }

  std::string sql = "SELECT Q.qid, Q.qtext FROM Queries Q";
  std::string where;
  int alias_counter = 0;

  auto add_condition = [&](const std::string& cond) {
    if (!where.empty()) where += " AND ";
    where += cond;
  };

  for (const std::string& table : c.tables) {
    std::string alias = "D" + std::to_string(++alias_counter);
    sql += ", DataSources " + alias;
    add_condition("Q.qid = " + alias + ".qid");
    add_condition(alias + ".relname = '" + SqlEscape(table) + "'");
  }

  // Attributes with a known relation (resolved in the partial query)
  // become Attributes joins, mirroring Figure 1's A1/A2 pattern.
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& [rel, attr] : c.attributes) {
    if (rel.empty() || !seen.insert({rel, attr}).second) continue;
    std::string alias = "A" + std::to_string(++alias_counter);
    sql += ", Attributes " + alias;
    add_condition("Q.qid = " + alias + ".qid");
    add_condition(alias + ".attrname = '" + SqlEscape(attr) + "'");
    add_condition(alias + ".relname = '" + SqlEscape(rel) + "'");
  }

  if (!where.empty()) sql += " WHERE " + where;
  return sql;
}

}  // namespace cqms::metaquery
