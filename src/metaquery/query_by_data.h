#ifndef CQMS_METAQUERY_QUERY_BY_DATA_H_
#define CQMS_METAQUERY_QUERY_BY_DATA_H_

#include <vector>

#include "db/database.h"
#include "storage/query_store.h"

namespace cqms::metaquery {

/// One labeled example for query-by-data (§2.2): the user asks for "all
/// queries whose output includes Lake Washington but not Lake Union".
/// An example is a partial tuple; a result row *matches* the example when
/// every example cell appears somewhere in the row (subset-of-row
/// semantics, so examples work across queries with different projections).
struct DataExample {
  db::Row cells;
  bool positive = true;  ///< Must appear (true) vs. must not appear (false).
};

struct QueryByDataOptions {
  /// When a stored output summary is incomplete (sampled), the sample
  /// alone cannot prove a *negative* example absent nor guarantee a
  /// positive is found. With a database provided, such queries are
  /// re-executed to check exactly — the expensive-but-exact fallback the
  /// paper anticipates ("supporting query-by-data efficiently is a
  /// challenging problem").
  const db::Database* reexecute_on = nullptr;
  /// Skip queries with no stored output at all (instead of re-running).
  bool skip_without_summary = true;
};

/// Returns true when `row` matches `example.cells` (every cell equal to
/// some row cell).
bool RowMatchesExample(const db::Row& row, const db::Row& example);

/// Per-record core of QueryByData, shared with the meta-query planner:
/// true when `record` (already known visible) satisfies every example
/// under `options` — failed/unparsed queries never match; complete
/// summaries decide directly; inconclusive summaries re-execute when a
/// database is provided, else follow `skip_without_summary`.
bool RecordSatisfiesDataExamples(const storage::QueryRecord& record,
                                 const std::vector<DataExample>& examples,
                                 const QueryByDataOptions& options);

/// Finds visible queries whose output satisfies all examples. Queries
/// are classifiers; examples are the labeled training tuples.
std::vector<storage::QueryId> QueryByData(const storage::QueryStore& store,
                                          const std::string& viewer,
                                          const std::vector<DataExample>& examples,
                                          const QueryByDataOptions& options = {});

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_QUERY_BY_DATA_H_
