#ifndef CQMS_METAQUERY_KNN_H_
#define CQMS_METAQUERY_KNN_H_

#include <string>
#include <vector>

#include "metaquery/similarity.h"
#include "storage/query_store.h"

namespace cqms::metaquery {

/// How kNN results are scored. The paper asks "how to construct ranking
/// functions that combine similarity measures together and with other
/// desired properties (e.g. high popularity, efficient runtime, small
/// result cardinality)" (§2.3) — these weights are that function.
struct RankingOptions {
  double w_similarity = 0.70;
  double w_popularity = 0.15;  ///< log-scaled canonical-duplicate count.
  double w_quality = 0.10;     ///< maintenance-assigned quality score.
  double w_recency = 0.05;     ///< newer queries rank higher.
  /// Exclude queries flagged broken/obsolete/deleted.
  bool exclude_flagged = true;
  /// Drop candidates below this similarity before ranking.
  double min_similarity = 0.05;
};

/// One kNN result.
struct Neighbor {
  storage::QueryId id = storage::kInvalidQueryId;
  double similarity = 0;  ///< Raw combined similarity in [0,1].
  double score = 0;       ///< Ranked score (similarity + boosts).
};

/// Finds the k logged queries most similar to `probe`, visible to
/// `viewer`, ranked by the composite score. Candidate generation uses
/// the table index (queries sharing at least one table with the probe);
/// probes with no tables fall back to a full scan.
std::vector<Neighbor> KnnSearch(const storage::QueryStore& store,
                                const std::string& viewer,
                                const storage::QueryRecord& probe, size_t k,
                                const SimilarityWeights& weights = {},
                                const RankingOptions& ranking = {});

/// Convenience: builds a transient probe record from SQL text (not
/// logged), then searches. Fails on unparsable text.
Result<std::vector<Neighbor>> KnnSearchText(const storage::QueryStore& store,
                                            const std::string& viewer,
                                            const std::string& sql_text, size_t k,
                                            const SimilarityWeights& weights = {},
                                            const RankingOptions& ranking = {});

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_KNN_H_
