#ifndef CQMS_METAQUERY_KNN_H_
#define CQMS_METAQUERY_KNN_H_

#include <string>
#include <vector>

#include "metaquery/similarity.h"
#include "storage/query_store.h"

namespace cqms::metaquery {

/// How kNN results are scored. The paper asks "how to construct ranking
/// functions that combine similarity measures together and with other
/// desired properties (e.g. high popularity, efficient runtime, small
/// result cardinality)" (§2.3) — these weights are that function.
struct RankingOptions {
  double w_similarity = 0.70;
  double w_popularity = 0.15;  ///< log-scaled canonical-duplicate count.
  double w_quality = 0.10;     ///< maintenance-assigned quality score.
  double w_recency = 0.05;     ///< newer queries rank higher.
  /// Exclude queries flagged broken/obsolete/deleted.
  bool exclude_flagged = true;
  /// Drop candidates below this similarity before ranking.
  double min_similarity = 0.05;
};

/// How kNN candidates are generated. The default draws candidates from
/// the store's MinHash/LSH index (sub-linear in log size) once the log
/// is large enough for the approximation to pay off; small logs and
/// table-less probes use the exhaustive table-index/full-scan path.
struct CandidateOptions {
  /// Master switch; false forces the exhaustive table-index scan
  /// (benchmarks use it to keep the brute-force series measurable).
  bool use_lsh = true;
  /// Below this log size the exhaustive path runs instead: scoring a
  /// few hundred candidates at ~54ns each is faster than any index
  /// probe, and the results stay exactly equal to brute force.
  size_t lsh_min_log_size = 1024;
  /// Probe only the first N bands of the index (0 = all configured
  /// bands). Fewer bands = fewer candidates = faster, lower recall;
  /// see docs/lsh_tuning.md.
  size_t probe_bands = 0;
};

/// Which structure produced a similarity candidate set.
enum class KnnCandidateSource {
  kLshBuckets,  ///< MinHash band buckets (approximate, sub-linear).
  kTableUnion,  ///< Union of the probe's table posting lists (exact).
  kFullScan,    ///< Table-less probe: every record.
};

/// Candidate set for one probe. For a full scan, `ids` is left empty and
/// the caller iterates the whole log (avoids materializing an iota
/// vector per query).
struct KnnCandidates {
  std::vector<storage::QueryId> ids;
  KnnCandidateSource source = KnnCandidateSource::kFullScan;
  bool full_scan() const { return source == KnnCandidateSource::kFullScan; }
};

/// Shared candidate generation for similarity probes — the one policy
/// both the legacy kNN entry point and the meta-query planner use, so
/// their results agree by construction. Large logs: LSH bucket lookup
/// over the probe's MinHash sketch — sub-linear and approximate:
/// neighbors below the banding's similarity threshold can be missed,
/// which the default banding accepts because query-log top-k is
/// dominated by near-duplicate re-renders (docs/lsh_tuning.md has the
/// recall knobs). Small logs (or LSH disabled): the exhaustive
/// table-index union via the probe signature's interned table Symbols.
/// Probes with no tables scan the whole log either way.
KnnCandidates KnnCandidateIds(const storage::StoreView& store,
                              const storage::QueryRecord& probe,
                              const CandidateOptions& options);

/// Live-store convenience (wraps the store in a StoreView facade).
KnnCandidates KnnCandidateIds(const storage::QueryStore& store,
                              const storage::QueryRecord& probe,
                              const CandidateOptions& options);

/// One kNN result.
struct Neighbor {
  storage::QueryId id = storage::kInvalidQueryId;
  double similarity = 0;  ///< Raw combined similarity in [0,1].
  double score = 0;       ///< Ranked score (similarity + boosts).
};

/// Finds the k logged queries most similar to `probe`, visible to
/// `viewer`, ranked by the composite score. Candidate generation is
/// governed by `candidates` (see KnnCandidateIds). Since the unified
/// meta-query redesign this is a thin wrapper: it builds a
/// one-predicate MetaQueryRequest and runs it through the
/// MetaQueryPlanner's columnar scoring loop.
std::vector<Neighbor> KnnSearch(const storage::QueryStore& store,
                                const std::string& viewer,
                                const storage::QueryRecord& probe, size_t k,
                                const SimilarityWeights& weights = {},
                                const RankingOptions& ranking = {},
                                const CandidateOptions& candidates = {});

/// The pre-planner scoring loop, kept verbatim as the ground-truth
/// reference: reads candidates through the record deque and the
/// fingerprint hash index instead of the scoring columns. The planner
/// equality suite asserts KnnSearch == KnnSearchReference on every
/// probe; do not optimize this.
std::vector<Neighbor> KnnSearchReference(const storage::QueryStore& store,
                                         const std::string& viewer,
                                         const storage::QueryRecord& probe,
                                         size_t k,
                                         const SimilarityWeights& weights = {},
                                         const RankingOptions& ranking = {},
                                         const CandidateOptions& candidates = {});

/// Convenience: builds a transient probe record from SQL text (not
/// logged), then searches. Fails on unparsable text.
Result<std::vector<Neighbor>> KnnSearchText(const storage::QueryStore& store,
                                            const std::string& viewer,
                                            const std::string& sql_text, size_t k,
                                            const SimilarityWeights& weights = {},
                                            const RankingOptions& ranking = {},
                                            const CandidateOptions& candidates = {});

}  // namespace cqms::metaquery

#endif  // CQMS_METAQUERY_KNN_H_
