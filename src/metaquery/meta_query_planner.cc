#include "metaquery/meta_query_planner.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/clock.h"
#include "common/interner.h"
#include "common/sorted_vector.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace cqms::metaquery {

using storage::QueryId;
using storage::QueryRecord;
using storage::ScoringColumns;

namespace {

// Per-generator registry series, resolved once per process so an
// Execute pays exactly three relaxed fetch_adds plus two for the
// visibility-cache tallies — nothing name-keyed on the hot path.
struct PlannerSeries {
  obs::Counter* queries;
  obs::Counter* candidates;
  obs::Counter* matches;
};

PlannerSeries MakeSeries(const char* label) {
  auto& reg = obs::MetricsRegistry::Global();
  std::string tag = std::string("{generator=\"") + label + "\"}";
  PlannerSeries s;
  s.queries = reg.GetCounter("cqms_planner_queries_total" + tag);
  s.candidates = reg.GetCounter("cqms_planner_candidates_total" + tag);
  s.matches = reg.GetCounter("cqms_planner_matches_total" + tag);
  return s;
}

const PlannerSeries& SeriesFor(CandidateGenerator g) {
  static const PlannerSeries series[4] = {
      MakeSeries("posting_intersection"), MakeSeries("lsh_buckets"),
      MakeSeries("table_union"), MakeSeries("full_scan")};
  return series[static_cast<int>(g)];
}

obs::Counter* VisibilityHitsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "cqms_planner_visibility_cache_hits_total");
  return c;
}

obs::Counter* VisibilityMissesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "cqms_planner_visibility_cache_misses_total");
  return c;
}

}  // namespace

MetaQueryResponse MetaQueryPlanner::Execute(
    const std::string& viewer, const MetaQueryRequest& request) const {
  // Route through the backing object's (viewer, thread) cache pool so
  // repeated queries keep their memoized ACL decisions warm.
  if (view_.view() != nullptr) {
    return Execute(request, &view_.view()->CacheFor(viewer));
  }
  return Execute(request, &view_.live_store()->CacheFor(viewer));
}

MetaQueryResponse MetaQueryPlanner::Execute(
    const MetaQueryRequest& request,
    storage::VisibilityCache* visibility) const {
  MetaQueryResponse resp;
  const storage::StoreView& store = view_;
  const ScoringColumns& cols = store.scoring();

  // Tracing is opt-in per request; with trace == nullptr the only cost
  // below is one timer start and a handful of relaxed counter adds.
  obs::ExecTrace* const trace = request.trace;
  WallTimer timer;
  Micros last_mark = 0;
  auto span = [&](const char* name) {
    if (trace == nullptr) return;
    Micros now = timer.ElapsedMicros();
    trace->Span(name, static_cast<uint64_t>(now - last_mark));
    last_mark = now;
  };
  const uint64_t vis_hits_before = visibility->acl_hits();
  const uint64_t vis_misses_before = visibility->acl_misses();

  // --- resolve the keyword predicate to interned token Symbols once ----
  // A token the interner has never seen occurs in no logged query:
  // match-all becomes unsatisfiable, match-any drops the token.
  std::vector<Symbol> keyword_syms;
  if (request.keyword.has_value()) {
    std::vector<std::string> words = ExtractWords(request.keyword->words);
    if (words.empty()) return resp;  // KeywordSearch semantics: no match.
    for (const std::string& w : words) {
      Symbol s = GlobalInterner().Find(w);
      if (s == kInvalidSymbol) {
        if (request.keyword->match_all) return resp;
        continue;
      }
      keyword_syms.push_back(s);
    }
    if (keyword_syms.empty()) return resp;  // match-any, all unknown.
  }
  // An empty substring needle matches nothing (SubstringSearch semantics).
  if (request.substring.has_value() && request.substring->empty()) return resp;

  // --- gather every posting list the predicates are backed by ----------
  std::deque<std::vector<QueryId>> owned;  // storage for materialized unions
  std::vector<const std::vector<QueryId>*> lists;
  if (request.keyword.has_value()) {
    if (request.keyword->match_all) {
      for (Symbol s : keyword_syms) {
        const std::vector<QueryId>& ids = store.QueriesWithKeywordSymbol(s);
        if (ids.empty()) return resp;
        lists.push_back(&ids);
      }
    } else {
      // match-any: one union list, still intersectable with the rest.
      std::vector<QueryId> merged;
      for (Symbol s : keyword_syms) {
        const std::vector<QueryId>& ids = store.QueriesWithKeywordSymbol(s);
        merged.insert(merged.end(), ids.begin(), ids.end());
      }
      SortUnique(&merged);
      if (merged.empty()) return resp;
      owned.push_back(std::move(merged));
      lists.push_back(&owned.back());
    }
  }
  if (request.feature.has_value()) {
    const FeatureQuery& f = *request.feature;
    for (const std::string& t : f.tables()) {
      lists.push_back(&store.QueriesUsingTable(t));
    }
    for (const auto& [rel, attr] : f.attributes()) {
      lists.push_back(&store.QueriesUsingAttribute(rel, attr));
    }
    for (const auto& pc : f.predicates()) {
      lists.push_back(&store.QueriesUsingAttribute(pc.relation, pc.attribute));
    }
    if (f.user().has_value()) {
      lists.push_back(&store.QueriesByUser(*f.user()));
    }
  }
  if (request.structure.has_value()) {
    for (const std::string& t : request.structure->required_tables) {
      lists.push_back(&store.QueriesUsingTable(t));
    }
  }

  span("resolve_predicates");

  // --- choose the candidate generator ----------------------------------
  const QueryRecord* probe =
      request.similarity.has_value() ? request.similarity->probe : nullptr;
  std::vector<QueryId> candidates;
  bool full_scan = false;
  if (!lists.empty()) {
    // Exact generator: intersect smallest-first; the smallest list is
    // the selectivity estimate that bounds the loop.
    resp.generator = CandidateGenerator::kPostingIntersection;
    std::sort(lists.begin(), lists.end(),
              [](const auto* a, const auto* b) { return a->size() < b->size(); });
    candidates = *lists[0];
    for (size_t i = 1; i < lists.size() && !candidates.empty(); ++i) {
      std::vector<QueryId> next;
      std::set_intersection(candidates.begin(), candidates.end(),
                            lists[i]->begin(), lists[i]->end(),
                            std::back_inserter(next));
      candidates = std::move(next);
    }
  } else if (probe != nullptr) {
    KnnCandidates kc =
        KnnCandidateIds(store, *probe, request.similarity->candidates);
    full_scan = kc.full_scan();
    candidates = std::move(kc.ids);
    switch (kc.source) {
      case KnnCandidateSource::kLshBuckets:
        resp.generator = CandidateGenerator::kLshBuckets;
        break;
      case KnnCandidateSource::kTableUnion:
        resp.generator = CandidateGenerator::kTableUnion;
        break;
      case KnnCandidateSource::kFullScan:
        resp.generator = CandidateGenerator::kFullScan;
        break;
    }
  } else {
    full_scan = true;
    resp.generator = CandidateGenerator::kFullScan;
  }
  resp.candidates_considered = full_scan ? store.size() : candidates.size();
  span("generate_candidates");

  // --- one filter + scoring pass over the candidates -------------------
  const bool score_mode = request.order == ResultOrder::kScore;
  // Keyword membership is implied when the keyword posting lists were
  // part of the intersection (today: always, keywords are always
  // indexed); the guard keeps correctness if generator policy evolves.
  const bool recheck_keyword =
      request.keyword.has_value() &&
      resp.generator != CandidateGenerator::kPostingIntersection;
  // Same trust argument for the feature conditions: when the candidates
  // came from intersecting this query's own posting lists and every
  // condition is index-backed (IndexCovered), membership is already
  // exact — the indexes are purged on rewrite — so the per-candidate
  // record fetch is pure overhead.
  const bool recheck_feature =
      request.feature.has_value() &&
      (resp.generator != CandidateGenerator::kPostingIntersection ||
       !request.feature->IndexCovered());
  const bool probe_sig_valid = probe != nullptr && probe->signature.valid;
  SignatureView probe_view;
  if (probe_sig_valid) probe_view = ViewOfSignature(*probe);
  const std::string lowered_needle =
      request.substring.has_value() ? ToLower(*request.substring) : std::string();

  // Loop-invariant ranking normalizers, hoisted (identical arithmetic to
  // the kNN reference path).
  const Micros max_ts = std::max<Micros>(1, store.max_timestamp());
  const double inv_log_size =
      1.0 / std::log1p(static_cast<double>(store.size()) + 1.0);

  std::vector<MetaQueryMatch> matched;
  if (!full_scan) matched.reserve(std::min<size_t>(candidates.size(), 1024));

  auto consider = [&](QueryId id) {
    if (!visibility->VisibleId(id)) return;
    uint32_t flags = cols.flags(id);
    if (request.ranking.exclude_flagged &&
        (flags & (storage::kFlagSchemaBroken | storage::kFlagObsolete)) != 0) {
      return;
    }
    if (recheck_keyword) {
      if (request.keyword->match_all) {
        for (Symbol s : keyword_syms) {
          if (!cols.TokenPresent(id, s)) return;
        }
      } else {
        bool any = false;
        for (Symbol s : keyword_syms) {
          if (cols.TokenPresent(id, s)) {
            any = true;
            break;
          }
        }
        if (!any) return;
      }
    }
    if (request.substring.has_value() &&
        cols.lowered_text(id).find(lowered_needle) == std::string_view::npos) {
      return;
    }
    // Predicates below need the record struct; fetch it lazily so pure
    // keyword/substring/similarity requests never leave the columns.
    if (request.structure.has_value() &&
        !MatchesPattern(*store.Get(id), *request.structure)) {
      return;
    }
    if (recheck_feature && !request.feature->MatchesRecord(*store.Get(id))) {
      return;
    }
    double sim = 0;
    if (probe != nullptr) {
      sim = probe_sig_valid && cols.signature_valid(id)
                ? CombinedSimilarity(probe_view, ViewOfColumns(cols, id),
                                     request.similarity->weights)
                : CombinedSimilarity(*probe, *store.Get(id),
                                     request.similarity->weights);
      if (sim < request.ranking.min_similarity) return;
    }
    // Most expensive last: query-by-data may re-execute the query.
    if (request.data.has_value() &&
        !RecordSatisfiesDataExamples(*store.Get(id), request.data->examples,
                                     request.data->options)) {
      return;
    }
    MetaQueryMatch m;
    m.id = id;
    m.similarity = sim;
    if (score_mode) {
      double popularity =
          std::log1p(static_cast<double>(cols.popularity(id))) * inv_log_size;
      double recency = max_ts > 0 ? static_cast<double>(cols.timestamp(id)) /
                                        static_cast<double>(max_ts)
                                  : 0;
      m.score = request.ranking.w_similarity * sim +
                request.ranking.w_popularity * popularity +
                request.ranking.w_quality * cols.quality(id) +
                request.ranking.w_recency * recency;
    }
    matched.push_back(m);
  };

  if (full_scan) {
    const QueryId n = static_cast<QueryId>(store.size());
    for (QueryId id = 0; id < n; ++id) consider(id);
  } else {
    for (QueryId id : candidates) consider(id);
  }
  span("filter_score");
  const size_t matched_prefilter = matched.size();

  if (score_mode) {
    size_t keep = request.limit == 0 ? matched.size()
                                     : std::min(request.limit, matched.size());
    std::partial_sort(matched.begin(), matched.begin() + keep, matched.end(),
                      [](const MetaQueryMatch& a, const MetaQueryMatch& b) {
                        if (a.score != b.score) return a.score > b.score;
                        return a.id < b.id;
                      });
    matched.resize(keep);
  } else if (request.limit != 0 && matched.size() > request.limit) {
    matched.resize(request.limit);
  }
  span("rank");
  resp.matches = std::move(matched);

  // --- flush instrumentation -------------------------------------------
  const uint64_t vis_hits = visibility->acl_hits() - vis_hits_before;
  const uint64_t vis_misses = visibility->acl_misses() - vis_misses_before;
  const PlannerSeries& series = SeriesFor(resp.generator);
  series.queries->Increment();
  series.candidates->Add(resp.candidates_considered);
  series.matches->Add(resp.matches.size());
  VisibilityHitsCounter()->Add(vis_hits);
  VisibilityMissesCounter()->Add(vis_misses);
  if (trace != nullptr) {
    trace->generator = CandidateGeneratorName(resp.generator);
    trace->Count("candidates", resp.candidates_considered);
    trace->Count("matches_prefilter", matched_prefilter);
    trace->Count("matches", resp.matches.size());
    trace->Count("visibility_cache_hits", vis_hits);
    trace->Count("visibility_cache_misses", vis_misses);
  }
  return resp;
}

}  // namespace cqms::metaquery
