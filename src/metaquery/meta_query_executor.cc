#include "metaquery/meta_query_executor.h"

#include <algorithm>

namespace cqms::metaquery {

Result<db::QueryResult> MetaQueryExecutor::Sql(const std::string& viewer,
                                               const std::string& meta_sql) const {
  CQMS_ASSIGN_OR_RETURN(db::QueryResult result,
                        store_->feature_db().ExecuteSql(meta_sql));
  // Visibility: filter on the qid column when present.
  auto it = std::find(result.column_names.begin(), result.column_names.end(), "qid");
  if (it != result.column_names.end()) {
    size_t qid_col = static_cast<size_t>(it - result.column_names.begin());
    std::vector<db::Row> kept;
    kept.reserve(result.rows.size());
    for (db::Row& r : result.rows) {
      const db::Value& v = r[qid_col];
      if (v.type() == db::ValueType::kInt &&
          store_->Visible(viewer, v.AsInt())) {
        kept.push_back(std::move(r));
      }
    }
    result.rows = std::move(kept);
  }
  return result;
}

}  // namespace cqms::metaquery
