#include "metaquery/meta_query_executor.h"

#include <algorithm>

#include "storage/record_builder.h"

namespace cqms::metaquery {

storage::VisibilityCache& MetaQueryExecutor::CacheFor(
    const std::string& viewer) const {
  auto it = caches_.find(viewer);
  if (it == caches_.end()) {
    // Each cache holds a byte per record, so an unbounded viewer set
    // would retain O(viewers * log size). Resetting wholesale past the
    // cap is crude but correct (caches only memoize) and keeps the
    // common many-searches-per-viewer case warm.
    if (caches_.size() >= kMaxViewerCaches) caches_.clear();
    it = caches_.emplace(viewer, storage::VisibilityCache(store_, viewer)).first;
  }
  return it->second;
}

Result<db::QueryResult> MetaQueryExecutor::Sql(const std::string& viewer,
                                               const std::string& meta_sql) const {
  CQMS_ASSIGN_OR_RETURN(db::QueryResult result,
                        store_->feature_db().ExecuteSql(meta_sql));
  // Visibility: filter on the qid column when present.
  auto it = std::find(result.column_names.begin(), result.column_names.end(), "qid");
  if (it != result.column_names.end()) {
    size_t qid_col = static_cast<size_t>(it - result.column_names.begin());
    storage::VisibilityCache& cache = CacheFor(viewer);
    std::vector<db::Row> kept;
    kept.reserve(result.rows.size());
    for (db::Row& r : result.rows) {
      const db::Value& v = r[qid_col];
      if (v.type() == db::ValueType::kInt && v.AsInt() >= 0 &&
          static_cast<size_t>(v.AsInt()) < store_->size() &&
          cache.VisibleId(v.AsInt())) {
        kept.push_back(std::move(r));
      }
    }
    result.rows = std::move(kept);
  }
  return result;
}

Result<std::vector<Neighbor>> MetaQueryExecutor::KnnText(
    const std::string& viewer, const std::string& sql_text, size_t k,
    const SimilarityWeights& weights, const RankingOptions& ranking) const {
  storage::QueryRecord probe = storage::BuildRecordFromText(
      sql_text, viewer, 0, storage::SignatureMode::kTransient);
  if (probe.parse_failed()) {
    return Status::ParseError("probe query does not parse: " + probe.stats.error);
  }
  return Knn(viewer, probe, k, weights, ranking);
}

}  // namespace cqms::metaquery
