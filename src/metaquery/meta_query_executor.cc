#include "metaquery/meta_query_executor.h"

#include <algorithm>

#include "storage/record_builder.h"

namespace cqms::metaquery {

MetaQueryResponse MetaQueryExecutor::Execute(
    const std::string& viewer, const MetaQueryRequest& request) const {
  if (store_->views_enabled()) {
    // Concurrent path: pin the current published view for the whole
    // execution — planner, scoring and visibility all read the same
    // immutable snapshot, untouched by whatever the writer does
    // meanwhile. The view pools visibility caches per (viewer, thread),
    // so repeated queries from one serving thread stay memoized.
    storage::PinnedView view = store_->PinView();
    MetaQueryPlanner planner{storage::StoreView(*view)};
    return planner.Execute(request, &view->CacheFor(viewer));
  }
  // Live path (views never enabled): identical to the single-threaded
  // original. The store pools visibility caches per (viewer, thread),
  // so repeated queries keep their memoized ACL decisions warm.
  MetaQueryPlanner planner(store_);
  return planner.Execute(request, &store_->CacheFor(viewer));
}

Result<db::QueryResult> MetaQueryExecutor::Sql(const std::string& viewer,
                                               const std::string& meta_sql) const {
  CQMS_ASSIGN_OR_RETURN(db::QueryResult result,
                        store_->feature_db().ExecuteSql(meta_sql));
  // Visibility: filter on the qid column when present.
  auto it = std::find(result.column_names.begin(), result.column_names.end(), "qid");
  if (it != result.column_names.end()) {
    size_t qid_col = static_cast<size_t>(it - result.column_names.begin());
    storage::VisibilityCache& cache = store_->CacheFor(viewer);
    std::vector<db::Row> kept;
    kept.reserve(result.rows.size());
    for (db::Row& r : result.rows) {
      const db::Value& v = r[qid_col];
      if (v.type() == db::ValueType::kInt && v.AsInt() >= 0 &&
          static_cast<size_t>(v.AsInt()) < store_->size() &&
          cache.VisibleId(v.AsInt())) {
        kept.push_back(std::move(r));
      }
    }
    result.rows = std::move(kept);
  }
  return result;
}

Result<std::vector<Neighbor>> MetaQueryExecutor::KnnText(
    const std::string& viewer, const std::string& sql_text, size_t k,
    const SimilarityWeights& weights, const RankingOptions& ranking) const {
  storage::QueryRecord probe = storage::BuildRecordFromText(
      sql_text, viewer, 0, storage::SignatureMode::kTransient);
  if (probe.parse_failed()) {
    return Status::ParseError("probe query does not parse: " + probe.stats.error);
  }
  return Knn(viewer, probe, k, weights, ranking);
}

}  // namespace cqms::metaquery
