#include "metaquery/similarity.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/string_util.h"
#include "sql/diff.h"

namespace cqms::metaquery {

namespace {

double Jaccard(const std::set<std::string>& a, const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  for (const auto& x : small) {
    if (large.count(x) > 0) ++inter;
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::set<std::string> PredicateSkeletons(const sql::QueryComponents& c) {
  std::set<std::string> out;
  for (const auto& p : c.predicates) out.insert(p.Skeleton());
  return out;
}

std::set<std::string> AttributeSet(const sql::QueryComponents& c) {
  std::set<std::string> out;
  for (const auto& [rel, attr] : c.attributes) out.insert(rel + "." + attr);
  return out;
}

}  // namespace

SignatureView ViewOfSignature(const storage::QueryRecord& record) {
  const storage::SimilaritySignature& sig = record.signature;
  SignatureView v;
  v.tables = sig.tables.data();
  v.n_tables = sig.tables.size();
  v.skeletons = sig.predicate_skeletons.data();
  v.n_skeletons = sig.predicate_skeletons.size();
  v.attributes = sig.attributes.data();
  v.n_attributes = sig.attributes.size();
  v.projections = sig.projections.data();
  v.n_projections = sig.projections.size();
  v.tokens = sig.text_tokens.data();
  v.n_tokens = sig.text_tokens.size();
  v.output_rows = sig.output_rows.data();
  v.n_output = sig.output_rows.size();
  v.output_empty_computed = sig.output_empty_computed;
  v.parsed = !record.parse_failed();
  return v;
}

SignatureView ViewOfColumns(const storage::ScoringColumns& cols,
                            storage::QueryId id) {
  SignatureView v;
  storage::ScoringColumns::SymbolSpan s = cols.tables(id);
  v.tables = s.data;
  v.n_tables = s.size;
  s = cols.skeletons(id);
  v.skeletons = s.data;
  v.n_skeletons = s.size;
  s = cols.attributes(id);
  v.attributes = s.data;
  v.n_attributes = s.size;
  s = cols.projections(id);
  v.projections = s.data;
  v.n_projections = s.size;
  s = cols.tokens(id);
  v.tokens = s.data;
  v.n_tokens = s.size;
  storage::ScoringColumns::HashSpan h = cols.output_rows(id);
  v.output_rows = h.data;
  v.n_output = h.size;
  v.output_empty_computed = cols.output_empty_computed(id);
  v.parsed = !cols.parse_failed(id);
  return v;
}

double FeatureSimilarity(const SignatureView& a, const SignatureView& b) {
  double tables = SpanJaccard(a.tables, a.n_tables, b.tables, b.n_tables);
  double preds =
      SpanJaccard(a.skeletons, a.n_skeletons, b.skeletons, b.n_skeletons);
  double attrs =
      SpanJaccard(a.attributes, a.n_attributes, b.attributes, b.n_attributes);
  double projs = SpanJaccard(a.projections, a.n_projections, b.projections,
                             b.n_projections);
  return 0.35 * tables + 0.30 * preds + 0.20 * attrs + 0.15 * projs;
}

double TextSimilarity(const SignatureView& a, const SignatureView& b) {
  return SpanJaccard(a.tokens, a.n_tokens, b.tokens, b.n_tokens);
}

double OutputSimilarity(const SignatureView& a, const SignatureView& b) {
  if (a.n_output == 0 && b.n_output == 0) {
    if (a.output_empty_computed && b.output_empty_computed) return 1.0;
    return -1.0;
  }
  if (a.n_output == 0 || b.n_output == 0) return -1.0;
  return SpanJaccard(a.output_rows, a.n_output, b.output_rows, b.n_output);
}

double CombinedSimilarity(const SignatureView& a, const SignatureView& b,
                          const SimilarityWeights& weights) {
  double total_weight = 0;
  double total = 0;
  if (a.parsed && b.parsed && weights.feature > 0) {
    total += weights.feature * FeatureSimilarity(a, b);
    total_weight += weights.feature;
  }
  if (weights.text > 0) {
    total += weights.text * TextSimilarity(a, b);
    total_weight += weights.text;
  }
  if (weights.output > 0) {
    double out_sim = OutputSimilarity(a, b);
    if (out_sim >= 0) {
      total += weights.output * out_sim;
      total_weight += weights.output;
    }
  }
  return total_weight == 0 ? 0 : total / total_weight;
}

double FeatureSimilarity(const storage::SimilaritySignature& a,
                         const storage::SimilaritySignature& b) {
  double tables = SortedJaccard(a.tables, b.tables);
  double preds = SortedJaccard(a.predicate_skeletons, b.predicate_skeletons);
  double attrs = SortedJaccard(a.attributes, b.attributes);
  double projs = SortedJaccard(a.projections, b.projections);
  return 0.35 * tables + 0.30 * preds + 0.20 * attrs + 0.15 * projs;
}

double TextSimilarity(const storage::SimilaritySignature& a,
                      const storage::SimilaritySignature& b) {
  return SortedJaccard(a.text_tokens, b.text_tokens);
}

double OutputSimilarity(const storage::SimilaritySignature& a,
                        const storage::SimilaritySignature& b) {
  if (a.output_rows.empty() && b.output_rows.empty()) {
    if (a.output_empty_computed && b.output_empty_computed) return 1.0;
    return -1.0;
  }
  if (a.output_rows.empty() || b.output_rows.empty()) return -1.0;
  return SortedJaccard(a.output_rows, b.output_rows);
}

double FeatureSimilarity(const sql::QueryComponents& a, const sql::QueryComponents& b) {
  std::set<std::string> ta(a.tables.begin(), a.tables.end());
  std::set<std::string> tb(b.tables.begin(), b.tables.end());
  std::set<std::string> pa(a.projections.begin(), a.projections.end());
  std::set<std::string> pb(b.projections.begin(), b.projections.end());
  double tables = Jaccard(ta, tb);
  double preds = Jaccard(PredicateSkeletons(a), PredicateSkeletons(b));
  double attrs = Jaccard(AttributeSet(a), AttributeSet(b));
  double projs = Jaccard(pa, pb);
  return 0.35 * tables + 0.30 * preds + 0.20 * attrs + 0.15 * projs;
}

double TextSimilarity(const storage::QueryRecord& a, const storage::QueryRecord& b) {
  auto wa = ExtractWords(a.text);
  auto wb = ExtractWords(b.text);
  return Jaccard(std::set<std::string>(wa.begin(), wa.end()),
                 std::set<std::string>(wb.begin(), wb.end()));
}

double OutputSimilarity(const storage::OutputSummary& a,
                        const storage::OutputSummary& b) {
  if (a.sample_rows.empty() && b.sample_rows.empty()) {
    // Two empty outputs are trivially identical if both were computed.
    if (a.total_rows == 0 && b.total_rows == 0 && !a.column_names.empty() &&
        !b.column_names.empty()) {
      return 1.0;
    }
    return -1.0;
  }
  if (a.sample_rows.empty() || b.sample_rows.empty()) return -1.0;
  std::set<std::string> ha, hb;
  for (const db::Row& r : a.sample_rows) ha.insert(db::RowToString(r));
  for (const db::Row& r : b.sample_rows) hb.insert(db::RowToString(r));
  return Jaccard(ha, hb);
}

double CombinedSimilarity(const storage::QueryRecord& a, const storage::QueryRecord& b,
                          const SimilarityWeights& weights) {
  if (!a.signature.valid || !b.signature.valid) {
    return CombinedSimilarityReference(a, b, weights);
  }
  return CombinedSimilarity(ViewOfSignature(a), ViewOfSignature(b), weights);
}

double CombinedSimilarityReference(const storage::QueryRecord& a,
                                   const storage::QueryRecord& b,
                                   const SimilarityWeights& weights) {
  double total_weight = 0;
  double total = 0;
  if (!a.parse_failed() && !b.parse_failed() && weights.feature > 0) {
    total += weights.feature * FeatureSimilarity(a.components, b.components);
    total_weight += weights.feature;
  }
  if (weights.text > 0) {
    total += weights.text * TextSimilarity(a, b);
    total_weight += weights.text;
  }
  if (weights.output > 0) {
    double out_sim = OutputSimilarity(a.summary, b.summary);
    if (out_sim >= 0) {
      total += weights.output * out_sim;
      total_weight += weights.output;
    }
  }
  return total_weight == 0 ? 0 : total / total_weight;
}

double NormalizedEditDistance(const sql::QueryComponents& a,
                              const sql::QueryComponents& b) {
  sql::QueryDiff diff = sql::DiffQueries(a, b);
  size_t size_a = a.tables.size() + a.predicates.size() + a.projections.size();
  size_t size_b = b.tables.size() + b.predicates.size() + b.projections.size();
  size_t denom = std::max<size_t>(1, std::max(size_a, size_b));
  double d = static_cast<double>(diff.Distance()) / static_cast<double>(denom);
  return std::min(1.0, d);
}

}  // namespace cqms::metaquery
