#include "metaquery/query_by_data.h"

namespace cqms::metaquery {

bool RowMatchesExample(const db::Row& row, const db::Row& example) {
  for (const db::Value& cell : example) {
    bool found = false;
    for (const db::Value& v : row) {
      if (!v.is_null() && !cell.is_null() && v.Compare(cell) == 0) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

namespace {

/// Checks examples against a concrete set of rows. Returns true when all
/// positive examples appear and no negative example does.
bool RowsSatisfyExamples(const std::vector<db::Row>& rows,
                         const std::vector<DataExample>& examples) {
  for (const DataExample& ex : examples) {
    bool found = false;
    for (const db::Row& r : rows) {
      if (RowMatchesExample(r, ex.cells)) {
        found = true;
        break;
      }
    }
    if (ex.positive != found) return false;
  }
  return true;
}

}  // namespace

bool RecordSatisfiesDataExamples(const storage::QueryRecord& r,
                                 const std::vector<DataExample>& examples,
                                 const QueryByDataOptions& options) {
  if (!r.stats.succeeded || r.parse_failed()) return false;

  const bool has_summary = !r.summary.column_names.empty();
  if (has_summary && r.summary.complete) {
    return RowsSatisfyExamples(r.summary.sample_rows, examples);
  }

  // Incomplete or missing summary: the sample is inconclusive.
  if (options.reexecute_on != nullptr && r.Ast() != nullptr) {
    auto exec = options.reexecute_on->Execute(*r.Ast());
    return exec.ok() && RowsSatisfyExamples(exec->rows, examples);
  }
  if (has_summary && !options.skip_without_summary) {
    // Best-effort: decide on the sample alone.
    return RowsSatisfyExamples(r.summary.sample_rows, examples);
  }
  return false;
}

std::vector<storage::QueryId> QueryByData(const storage::QueryStore& store,
                                          const std::string& viewer,
                                          const std::vector<DataExample>& examples,
                                          const QueryByDataOptions& options) {
  std::vector<storage::QueryId> out;
  for (const storage::QueryRecord& r : store.records()) {
    if (!store.Visible(viewer, r.id)) continue;
    if (RecordSatisfiesDataExamples(r, examples, options)) out.push_back(r.id);
  }
  return out;
}

}  // namespace cqms::metaquery
