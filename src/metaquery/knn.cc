#include "metaquery/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "storage/record_builder.h"

namespace cqms::metaquery {

std::vector<Neighbor> KnnSearch(const storage::QueryStore& store,
                                const std::string& viewer,
                                const storage::QueryRecord& probe, size_t k,
                                const SimilarityWeights& weights,
                                const RankingOptions& ranking,
                                const CandidateOptions& candidate_options) {
  // Candidate generation. Large logs: LSH bucket lookup over the probe's
  // MinHash sketch — sub-linear and approximate: neighbors below the
  // banding's similarity threshold can be missed, which the default
  // banding accepts because query-log top-k is dominated by near-
  // duplicate re-renders (see docs/lsh_tuning.md for the recall knobs).
  // Small logs (or LSH disabled): the exhaustive table-index path, whose
  // sorted posting lists union via a flat merge (QueriesUsingAnyTable).
  // Probes with no tables scan the whole log either way.
  std::vector<storage::QueryId> candidates;
  if (!probe.parse_failed() && !probe.components.tables.empty()) {
    bool use_lsh = candidate_options.use_lsh &&
                   store.size() >= candidate_options.lsh_min_log_size;
    if (use_lsh && probe.sketch.valid && !probe.sketch.empty()) {
      candidates =
          store.LshCandidates(probe.sketch, candidate_options.probe_bands);
    } else {
      candidates = store.QueriesUsingAnyTable(probe.components.tables);
    }
  } else {
    candidates.resize(store.size());
    std::iota(candidates.begin(), candidates.end(), storage::QueryId{0});
  }

  // Maintained by QueryStore::Append — no per-call log scan.
  Micros max_ts = std::max<Micros>(1, store.max_timestamp());

  // Loop-invariant popularity normalizer, hoisted out of the (possibly
  // thousands-deep) scoring loop.
  double inv_log_size =
      1.0 / std::log1p(static_cast<double>(store.size()) + 1.0);

  storage::VisibilityCache visibility(store, viewer);
  std::vector<Neighbor> scored;
  scored.reserve(candidates.size());
  for (storage::QueryId id : candidates) {
    const storage::QueryRecord* r = store.Get(id);
    if (r == nullptr || !visibility.Visible(*r)) continue;
    if (ranking.exclude_flagged &&
        (r->HasFlag(storage::kFlagSchemaBroken) ||
         r->HasFlag(storage::kFlagObsolete))) {
      continue;
    }
    double sim = CombinedSimilarity(probe, *r, weights);
    if (sim < ranking.min_similarity) continue;

    double popularity =
        std::log1p(static_cast<double>(store.PopularityOf(r->fingerprint))) *
        inv_log_size;
    double recency = max_ts > 0 ? static_cast<double>(r->timestamp) /
                                      static_cast<double>(max_ts)
                                : 0;
    double score = ranking.w_similarity * sim +
                   ranking.w_popularity * popularity +
                   ranking.w_quality * r->quality + ranking.w_recency * recency;
    scored.push_back({id, sim, score});
  }

  size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  scored.resize(keep);
  return scored;
}

Result<std::vector<Neighbor>> KnnSearchText(const storage::QueryStore& store,
                                            const std::string& viewer,
                                            const std::string& sql_text, size_t k,
                                            const SimilarityWeights& weights,
                                            const RankingOptions& ranking,
                                            const CandidateOptions& candidates) {
  storage::QueryRecord probe = storage::BuildRecordFromText(
      sql_text, viewer, 0, storage::SignatureMode::kTransient);
  if (probe.parse_failed()) {
    return Status::ParseError("probe query does not parse: " + probe.stats.error);
  }
  return KnnSearch(store, viewer, probe, k, weights, ranking, candidates);
}

}  // namespace cqms::metaquery
