#include "metaquery/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "metaquery/meta_query_planner.h"
#include "obs/metrics.h"
#include "storage/record_builder.h"

namespace cqms::metaquery {

namespace {

// Candidate-generation health series: how often the sub-linear LSH path
// actually runs, how many band buckets it probes, how fat its candidate
// sets are, and how often a probe degrades to table-union or full scan.
struct KnnSeries {
  obs::Counter* lsh_probes;
  obs::Counter* lsh_bands_probed;
  obs::Counter* lsh_candidates;
  obs::Counter* table_union_fallbacks;
  obs::Counter* full_scan_fallbacks;
};

const KnnSeries& Series() {
  static const KnnSeries s = [] {
    auto& reg = obs::MetricsRegistry::Global();
    KnnSeries k;
    k.lsh_probes = reg.GetCounter("cqms_knn_lsh_probes_total");
    k.lsh_bands_probed = reg.GetCounter("cqms_knn_lsh_bands_probed_total");
    k.lsh_candidates = reg.GetCounter("cqms_knn_lsh_candidates_total");
    k.table_union_fallbacks =
        reg.GetCounter("cqms_knn_table_union_fallbacks_total");
    k.full_scan_fallbacks =
        reg.GetCounter("cqms_knn_full_scan_fallbacks_total");
    return k;
  }();
  return s;
}

}  // namespace

KnnCandidates KnnCandidateIds(const storage::QueryStore& store,
                              const storage::QueryRecord& probe,
                              const CandidateOptions& options) {
  return KnnCandidateIds(storage::StoreView(store), probe, options);
}

KnnCandidates KnnCandidateIds(const storage::StoreView& store,
                              const storage::QueryRecord& probe,
                              const CandidateOptions& options) {
  KnnCandidates out;
  if (!probe.parse_failed() && !probe.components.tables.empty()) {
    bool use_lsh =
        options.use_lsh && store.size() >= options.lsh_min_log_size;
    if (use_lsh && probe.sketch.valid && !probe.sketch.empty()) {
      out.ids = store.LshCandidates(probe.sketch, options.probe_bands);
      out.source = KnnCandidateSource::kLshBuckets;
      const KnnSeries& s = Series();
      s.lsh_probes->Increment();
      size_t index_bands = store.lsh().bands();
      s.lsh_bands_probed->Add(options.probe_bands == 0
                                  ? index_bands
                                  : std::min(options.probe_bands, index_bands));
      s.lsh_candidates->Add(out.ids.size());
      return out;
    }
    // The probe signature's tables are the interned Symbols the posting
    // lists are keyed by (transient probes resolve known tables to their
    // real ids, so unseen tables simply have no postings). Hand-built
    // records without a signature fall back to the string lookup.
    out.ids = probe.signature.valid
                  ? store.QueriesUsingAnyTableSymbol(probe.signature.tables)
                  : store.QueriesUsingAnyTable(probe.components.tables);
    out.source = KnnCandidateSource::kTableUnion;
    Series().table_union_fallbacks->Increment();
    return out;
  }
  out.source = KnnCandidateSource::kFullScan;
  Series().full_scan_fallbacks->Increment();
  return out;
}

std::vector<Neighbor> KnnSearch(const storage::QueryStore& store,
                                const std::string& viewer,
                                const storage::QueryRecord& probe, size_t k,
                                const SimilarityWeights& weights,
                                const RankingOptions& ranking,
                                const CandidateOptions& candidate_options) {
  // limit=0 means "all" to the planner; k=0 means "none" here.
  if (k == 0) return {};
  MetaQueryRequest request;
  request.SimilarTo(probe, weights, candidate_options)
      .RankedBy(ranking)
      .Limit(k);
  MetaQueryPlanner planner(&store);
  MetaQueryResponse resp = planner.Execute(viewer, request);
  std::vector<Neighbor> out;
  out.reserve(resp.matches.size());
  for (const MetaQueryMatch& m : resp.matches) {
    out.push_back({m.id, m.similarity, m.score});
  }
  return out;
}

std::vector<Neighbor> KnnSearchReference(
    const storage::QueryStore& store, const std::string& viewer,
    const storage::QueryRecord& probe, size_t k,
    const SimilarityWeights& weights, const RankingOptions& ranking,
    const CandidateOptions& candidate_options) {
  KnnCandidates generated = KnnCandidateIds(store, probe, candidate_options);
  std::vector<storage::QueryId> candidates = std::move(generated.ids);
  if (generated.full_scan()) {
    candidates.resize(store.size());
    std::iota(candidates.begin(), candidates.end(), storage::QueryId{0});
  }

  // Maintained by QueryStore::Append — no per-call log scan.
  Micros max_ts = std::max<Micros>(1, store.max_timestamp());

  // Loop-invariant popularity normalizer, hoisted out of the (possibly
  // thousands-deep) scoring loop.
  double inv_log_size =
      1.0 / std::log1p(static_cast<double>(store.size()) + 1.0);

  storage::VisibilityCache& visibility = store.CacheFor(viewer);
  std::vector<Neighbor> scored;
  scored.reserve(candidates.size());
  for (storage::QueryId id : candidates) {
    const storage::QueryRecord* r = store.Get(id);
    if (r == nullptr || !visibility.Visible(*r)) continue;
    if (ranking.exclude_flagged &&
        (r->HasFlag(storage::kFlagSchemaBroken) ||
         r->HasFlag(storage::kFlagObsolete))) {
      continue;
    }
    double sim = CombinedSimilarity(probe, *r, weights);
    if (sim < ranking.min_similarity) continue;

    double popularity =
        std::log1p(static_cast<double>(store.PopularityOf(r->fingerprint))) *
        inv_log_size;
    double recency = max_ts > 0 ? static_cast<double>(r->timestamp) /
                                      static_cast<double>(max_ts)
                                : 0;
    double score = ranking.w_similarity * sim +
                   ranking.w_popularity * popularity +
                   ranking.w_quality * r->quality + ranking.w_recency * recency;
    scored.push_back({id, sim, score});
  }

  size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  scored.resize(keep);
  return scored;
}

Result<std::vector<Neighbor>> KnnSearchText(const storage::QueryStore& store,
                                            const std::string& viewer,
                                            const std::string& sql_text, size_t k,
                                            const SimilarityWeights& weights,
                                            const RankingOptions& ranking,
                                            const CandidateOptions& candidates) {
  storage::QueryRecord probe = storage::BuildRecordFromText(
      sql_text, viewer, 0, storage::SignatureMode::kTransient);
  if (probe.parse_failed()) {
    return Status::ParseError("probe query does not parse: " + probe.stats.error);
  }
  return KnnSearch(store, viewer, probe, k, weights, ranking, candidates);
}

}  // namespace cqms::metaquery
