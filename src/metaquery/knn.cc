#include "metaquery/knn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "storage/record_builder.h"

namespace cqms::metaquery {

std::vector<Neighbor> KnnSearch(const storage::QueryStore& store,
                                const std::string& viewer,
                                const storage::QueryRecord& probe, size_t k,
                                const SimilarityWeights& weights,
                                const RankingOptions& ranking) {
  // Candidate generation: the store's posting lists are sorted, so the
  // union is a flat merge (QueriesUsingAnyTable) instead of a std::set.
  std::vector<storage::QueryId> candidates;
  if (!probe.parse_failed() && !probe.components.tables.empty()) {
    candidates = store.QueriesUsingAnyTable(probe.components.tables);
  } else {
    candidates.resize(store.size());
    std::iota(candidates.begin(), candidates.end(), storage::QueryId{0});
  }

  // Maintained by QueryStore::Append — no per-call log scan.
  Micros max_ts = std::max<Micros>(1, store.max_timestamp());

  storage::VisibilityCache visibility(store, viewer);
  std::vector<Neighbor> scored;
  scored.reserve(candidates.size());
  for (storage::QueryId id : candidates) {
    const storage::QueryRecord* r = store.Get(id);
    if (r == nullptr || !visibility.Visible(*r)) continue;
    if (ranking.exclude_flagged &&
        (r->HasFlag(storage::kFlagSchemaBroken) ||
         r->HasFlag(storage::kFlagObsolete))) {
      continue;
    }
    double sim = CombinedSimilarity(probe, *r, weights);
    if (sim < ranking.min_similarity) continue;

    double popularity =
        std::log1p(static_cast<double>(store.PopularityOf(r->fingerprint))) /
        std::log1p(static_cast<double>(store.size()) + 1.0);
    double recency = max_ts > 0 ? static_cast<double>(r->timestamp) /
                                      static_cast<double>(max_ts)
                                : 0;
    double score = ranking.w_similarity * sim +
                   ranking.w_popularity * popularity +
                   ranking.w_quality * r->quality + ranking.w_recency * recency;
    scored.push_back({id, sim, score});
  }

  size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  scored.resize(keep);
  return scored;
}

Result<std::vector<Neighbor>> KnnSearchText(const storage::QueryStore& store,
                                            const std::string& viewer,
                                            const std::string& sql_text, size_t k,
                                            const SimilarityWeights& weights,
                                            const RankingOptions& ranking) {
  storage::QueryRecord probe = storage::BuildRecordFromText(
      sql_text, viewer, 0, storage::SignatureMode::kTransient);
  if (probe.parse_failed()) {
    return Status::ParseError("probe query does not parse: " + probe.stats.error);
  }
  return KnnSearch(store, viewer, probe, k, weights, ranking);
}

}  // namespace cqms::metaquery
